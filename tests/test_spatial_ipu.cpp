// Tests for the spatially decomposed IPU: the §5 claim that the paper's
// alignment optimizations are orthogonal to the decomposition scheme.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/ipu.h"
#include "core/spatial_ipu.h"

namespace mpipu {
namespace {

AccumulatorConfig unbounded_acc() {
  AccumulatorConfig acc;
  acc.frac_bits = 100;
  acc.lossless = true;
  return acc;
}

std::vector<Fp16> random_fp16(Rng& rng, int n) {
  std::vector<Fp16> v;
  while (static_cast<int>(v.size()) < n) {
    const Fp16 f = Fp16::from_bits(static_cast<uint32_t>(rng.next_u64()));
    if (f.is_finite()) v.push_back(f);
  }
  return v;
}

TEST(SpatialIpu, MultiplierCount) {
  // Spatial FP16 costs 9x the multipliers of the temporal design.
  EXPECT_EQ(SpatialIpu::multipliers_per_input<kFp16Format>(), 9);
  EXPECT_EQ(SpatialIpu::multipliers_per_input<kBf16Format>(), 4);
}

TEST(SpatialIpu, LosslessForAnyAdderWidth) {
  // Same invariant as the temporal MC-IPU: banding the *combined* shifts
  // loses nothing with an unbounded accumulator.
  Rng rng(301);
  for (int w : {10, 12, 16, 28, 40}) {
    SpatialIpuConfig cfg;
    cfg.n_inputs = 8;
    cfg.adder_tree_width = w;
    cfg.software_precision = 58;
    cfg.multi_cycle = true;
    cfg.accumulator = unbounded_acc();
    SpatialIpu ipu(cfg);
    for (int t = 0; t < 600; ++t) {
      const auto a = random_fp16(rng, 8);
      const auto b = random_fp16(rng, 8);
      ipu.reset_accumulator();
      ipu.fp_accumulate<kFp16Format>(a, b);
      EXPECT_TRUE(ipu.read_raw() == exact_fp_inner_product<kFp16Format>(a, b))
          << "w=" << w << " t=" << t;
    }
  }
}

TEST(SpatialIpu, AgreesWithTemporalIpuBitForBit) {
  // Temporal and spatial decompositions of the same arithmetic: identical
  // results when both are lossless.
  Rng rng(302);
  SpatialIpuConfig scfg;
  scfg.n_inputs = 16;
  scfg.adder_tree_width = 16;
  scfg.software_precision = 28;
  scfg.accumulator = unbounded_acc();
  SpatialIpu spatial(scfg);
  IpuConfig tcfg;
  tcfg.n_inputs = 16;
  tcfg.adder_tree_width = 16;
  tcfg.software_precision = 28;
  tcfg.multi_cycle = true;
  tcfg.accumulator = unbounded_acc();
  Ipu temporal(tcfg);
  for (int t = 0; t < 1500; ++t) {
    const auto a = random_fp16(rng, 16);
    const auto b = random_fp16(rng, 16);
    spatial.reset_accumulator();
    temporal.reset_accumulator();
    spatial.fp_accumulate<kFp16Format>(a, b);
    temporal.fp_accumulate<kFp16Format>(a, b);
    EXPECT_TRUE(spatial.read_raw() == temporal.read_raw()) << t;
  }
}

TEST(SpatialIpu, ConcentratedExponentsFinishInOneCycleAtWideTrees) {
  // With w = 28 (sp = 19), the nibble-significance span (14) plus small
  // alignments fits one band: single cycle -- 9x temporal throughput.
  SpatialIpuConfig cfg;
  cfg.n_inputs = 16;
  cfg.adder_tree_width = 28;
  cfg.software_precision = 28;
  SpatialIpu ipu(cfg);
  Rng rng(303);
  std::vector<Fp16> a, b;
  for (int k = 0; k < 16; ++k) {
    a.push_back(Fp16::from_double(1.0 + rng.uniform(0.0, 1.0)));  // exp 0..1
    b.push_back(Fp16::from_double(1.0 + rng.uniform(0.0, 1.0)));
  }
  EXPECT_EQ(ipu.fp_accumulate<kFp16Format>(a, b), 1);
}

TEST(SpatialIpu, NarrowTreesMultiCycleEvenWhenAligned) {
  // With w = 16 (sp = 7) the 14-bit significance span alone needs 3 bands:
  // the spatial design needs wider trees than the temporal one -- the
  // area/width trade-off between the two schemes.
  SpatialIpuConfig cfg;
  cfg.n_inputs = 4;
  cfg.adder_tree_width = 16;
  cfg.software_precision = 28;
  SpatialIpu ipu(cfg);
  const std::vector<Fp16> a(4, Fp16::from_bits(0x3FFF));  // dense mantissas
  const std::vector<Fp16> b(4, Fp16::from_bits(0x3FFF));
  const int cycles = ipu.fp_accumulate<kFp16Format>(a, b);
  EXPECT_EQ(cycles, 3);  // significance span 0..14 over sp=7 -> 3 bands
}

TEST(SpatialIpu, CyclesGrowWithAlignmentSpread) {
  SpatialIpuConfig cfg;
  cfg.n_inputs = 2;
  cfg.adder_tree_width = 28;  // sp = 19
  cfg.software_precision = 28;
  SpatialIpu ipu(cfg);
  int prev = 0;
  for (int D : {0, 10, 20, 28}) {
    const std::vector<Fp16> a = {Fp16::from_fields(false, 28, 0x3FF),
                                 Fp16::from_fields(false, static_cast<uint32_t>(28 - D), 0x3FF)};
    const std::vector<Fp16> b = {Fp16::from_bits(0x3FFF), Fp16::from_bits(0x3FFF)};
    ipu.reset_accumulator();
    const int cycles = ipu.fp_accumulate<kFp16Format>(a, b);
    EXPECT_GE(cycles, prev) << D;
    prev = cycles;
  }
  EXPECT_GE(prev, 2);
}

TEST(SpatialIpu, Bf16FourLanesExact) {
  Rng rng(304);
  SpatialIpuConfig cfg;
  cfg.n_inputs = 8;
  cfg.adder_tree_width = 30;
  cfg.software_precision = 40;
  cfg.accumulator = unbounded_acc();
  SpatialIpu ipu(cfg);
  for (int t = 0; t < 500; ++t) {
    std::vector<Bf16> a, b;
    for (int k = 0; k < 8; ++k) {
      a.push_back(Bf16::from_double(rng.laplace(0.0, 4.0)));
      b.push_back(Bf16::from_double(rng.laplace(0.0, 4.0)));
    }
    ipu.reset_accumulator();
    ipu.fp_accumulate<kBf16Format>(a, b);
    EXPECT_TRUE(ipu.read_raw() == exact_fp_inner_product<kBf16Format>(a, b)) << t;
  }
}

}  // namespace
}  // namespace mpipu
