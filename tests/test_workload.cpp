// Tests for distributions, quantizer and the network zoo.
#include <gtest/gtest.h>

#include <cmath>

#include "workload/distributions.h"
#include "workload/networks.h"
#include "workload/quantizer.h"

namespace mpipu {
namespace {

// --- Distributions -----------------------------------------------------------

class DistTest : public ::testing::TestWithParam<ValueDist> {};

TEST_P(DistTest, SamplesAreFiniteAndSeedDeterministic) {
  Rng r1(9), r2(9);
  for (int i = 0; i < 2000; ++i) {
    const double a = sample_value(r1, GetParam(), 1.0);
    const double b = sample_value(r2, GetParam(), 1.0);
    EXPECT_TRUE(std::isfinite(a));
    EXPECT_EQ(a, b);
  }
}

TEST_P(DistTest, ScaleScalesMagnitude) {
  Rng r1(10), r2(10);
  double m1 = 0.0, m2 = 0.0;
  for (int i = 0; i < 5000; ++i) {
    m1 += std::fabs(sample_value(r1, GetParam(), 1.0));
    m2 += std::fabs(sample_value(r2, GetParam(), 4.0));
  }
  EXPECT_NEAR(m2 / m1, 4.0, 0.1);
}

INSTANTIATE_TEST_SUITE_P(AllDists, DistTest,
                         ::testing::Values(ValueDist::kLaplace, ValueDist::kNormal,
                                           ValueDist::kUniform, ValueDist::kHalfNormal,
                                           ValueDist::kBackwardWide));

TEST(Distributions, LaplaceMatchesTheoreticalMoments) {
  Rng rng(11);
  double sum = 0.0, abs_sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.laplace(0.0, 2.0);
    sum += v;
    abs_sum += std::fabs(v);
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);       // mean 0
  EXPECT_NEAR(abs_sum / n, 2.0, 0.05);   // E|X| = b
}

TEST(Distributions, HalfNormalIsNonNegative) {
  Rng rng(12);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_GE(sample_value(rng, ValueDist::kHalfNormal, 1.0), 0.0);
  }
}

TEST(Distributions, BackwardWideSpansManyOctaves) {
  Rng rng(13);
  double min_mag = 1e30, max_mag = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double m = std::fabs(sample_value(rng, ValueDist::kBackwardWide, 1.0));
    min_mag = std::min(min_mag, m);
    max_mag = std::max(max_mag, m);
  }
  EXPECT_GT(std::log2(max_mag / min_mag), 15.0);  // ~18 octaves by design
}

TEST(ExponentPoolTest, DrawsMatchDistributionExponents) {
  Rng rng(14);
  ExponentPool pool(rng, ValueDist::kNormal, 1.0, 4096);
  Rng rng2(15);
  for (int i = 0; i < 1000; ++i) {
    const int e = pool.draw(rng2);
    EXPECT_GE(e, kFp16Format.min_exp());
    EXPECT_LE(e, kFp16Format.max_exp());
  }
}

// --- Quantizer -----------------------------------------------------------------

TEST(Quantizer, FitSymmetricCoversMaxMagnitude) {
  const std::vector<double> vals = {-3.0, 1.0, 2.5};
  const QuantParams qp = fit_symmetric(vals, 8);
  EXPECT_EQ(qp.qmin(), -128);
  EXPECT_EQ(qp.qmax(), 127);
  EXPECT_DOUBLE_EQ(qp.scale, 3.0 / 127.0);
  const auto q = quantize(vals, qp);
  EXPECT_EQ(q[0], -127);
  EXPECT_EQ(q[2], 106);
}

TEST(Quantizer, UnsignedRange) {
  const std::vector<double> vals = {0.0, 1.0, 4.0};
  const QuantParams qp = fit_symmetric(vals, 4, /*is_unsigned=*/true);
  EXPECT_EQ(qp.qmin(), 0);
  EXPECT_EQ(qp.qmax(), 15);
  const auto q = quantize(vals, qp);
  EXPECT_EQ(q[2], 15);
}

TEST(Quantizer, RoundTripErrorBoundedByHalfStep) {
  Rng rng(16);
  for (int bits : {4, 8, 12}) {
    std::vector<double> vals;
    for (int i = 0; i < 500; ++i) vals.push_back(rng.normal(0.0, 1.0));
    const QuantParams qp = fit_symmetric(vals, bits);
    const auto q = quantize(vals, qp);
    const auto back = dequantize(q, qp);
    for (size_t i = 0; i < vals.size(); ++i) {
      EXPECT_LE(std::fabs(back[i] - vals[i]), qp.scale * 0.5 + 1e-12) << bits;
    }
  }
}

TEST(Quantizer, SaturatesOutOfRange) {
  QuantParams qp;
  qp.scale = 1.0;
  qp.bits = 4;
  const std::vector<double> vals = {100.0, -100.0};
  const auto q = quantize(vals, qp);
  EXPECT_EQ(q[0], 7);
  EXPECT_EQ(q[1], -8);
}

TEST(Quantizer, AccumulatorDequantization) {
  QuantParams qa;
  qa.scale = 0.5;
  QuantParams qb;
  qb.scale = 0.25;
  EXPECT_DOUBLE_EQ(dequantize_accumulator(16, qa, qb), 2.0);
}

// --- Networks --------------------------------------------------------------------

TEST(Networks, ResNet18MacCountIsRight) {
  // ResNet-18 conv MACs for 224x224 ~ 1.81e9 (published FLOPs ~3.6G).
  const Network net = resnet18_forward();
  EXPECT_NEAR(static_cast<double>(net.total_macs()), 1.81e9, 0.1e9);
}

TEST(Networks, ResNet50MacCountIsRight) {
  // ResNet-50 conv MACs ~ 3.8e9-4.1e9.
  const Network net = resnet50_forward();
  EXPECT_NEAR(static_cast<double>(net.total_macs()), 3.95e9, 0.35e9);
}

TEST(Networks, InceptionV3MacCountIsRight) {
  // InceptionV3 conv MACs ~ 5.7e9 (published ~5.7G MACs for 299x299).
  const Network net = inception_v3_forward();
  EXPECT_NEAR(static_cast<double>(net.total_macs()), 5.7e9, 0.8e9);
}

TEST(Networks, BackwardMirrorsForwardShapes) {
  const Network fwd = resnet18_forward();
  const Network bwd = resnet18_backward();
  // conv1 has no data gradient; everything else appears once, transposed.
  EXPECT_EQ(bwd.layers.size(), fwd.layers.size() - 1);
  for (const auto& g : bwd.layers) {
    EXPECT_GT(g.cin, 0);
    EXPECT_GT(g.cout, 0);
    EXPECT_EQ(g.stride, 1);
  }
  // Total backward MACs are within 2x of forward (equal up to stride edges).
  const double ratio = static_cast<double>(bwd.total_macs()) /
                       static_cast<double>(fwd.total_macs() - fwd.layers[0].macs());
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 2.0);
}

TEST(Networks, StudyCasesMatchPaperSection41) {
  const auto cases = paper_study_cases();
  ASSERT_EQ(cases.size(), 4u);
  EXPECT_EQ(cases[0].name, "resnet18-fwd");
  EXPECT_EQ(cases[1].name, "resnet50-fwd");
  EXPECT_EQ(cases[2].name, "inceptionv3-fwd");
  EXPECT_EQ(cases[3].name, "resnet18-bwd");
  // Backward tensors use the wide-dynamic-range generator.
  EXPECT_EQ(static_cast<int>(cases[3].tensor_stats.activation_dist),
            static_cast<int>(ValueDist::kBackwardWide));
}

TEST(Networks, AllLayersWellFormed) {
  for (const auto& net : paper_study_cases()) {
    for (const auto& l : net.layers) {
      EXPECT_GT(l.cin, 0) << net.name << " " << l.name;
      EXPECT_GT(l.cout, 0);
      EXPECT_GT(l.kh, 0);
      EXPECT_GT(l.kw, 0);
      EXPECT_GT(l.hout, 0);
      EXPECT_GT(l.wout, 0);
      EXPECT_GE(l.repeat, 1);
      EXPECT_GT(l.macs(), 0);
    }
  }
}

}  // namespace
}  // namespace mpipu
