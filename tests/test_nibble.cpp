// Tests for the nibble (temporal) decomposition onto 5-bit signed lanes.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/nibble.h"

namespace mpipu {
namespace {

TEST(NibbleInt, CountsMatchPaper) {
  // INT8 x INT12 -> 2 x 3 nibbles -> six iterations (paper Section 2.1).
  EXPECT_EQ(int_nibble_count(8), 2);
  EXPECT_EQ(int_nibble_count(12), 3);
  EXPECT_EQ(int_nibble_count(4), 1);
  EXPECT_EQ(int_nibble_count(16), 4);
  EXPECT_EQ(int_nibble_count(5), 2);
}

TEST(NibbleInt, SignedDigitsFitLanes) {
  Rng rng(11);
  for (int bits : {4, 8, 12, 16}) {
    const int64_t lo = -(int64_t{1} << (bits - 1));
    const int64_t hi = (int64_t{1} << (bits - 1)) - 1;
    for (int t = 0; t < 5000; ++t) {
      const int64_t v = rng.uniform_int(lo, hi);
      const NibbleOperand d = decompose_int(v, bits);
      for (int k = 0; k < d.count; ++k) {
        EXPECT_GE(d.v[static_cast<size_t>(k)], -15);
        EXPECT_LE(d.v[static_cast<size_t>(k)], 15);
      }
      EXPECT_EQ(d.recompose_scaled(0), v);
    }
  }
}

TEST(NibbleInt, SignedExhaustiveInt8) {
  for (int v = -128; v <= 127; ++v) {
    const NibbleOperand d = decompose_int(v, 8);
    ASSERT_EQ(d.count, 2);
    EXPECT_EQ(d.recompose_scaled(0), v);
    EXPECT_GE(d.v[1], -8);
    EXPECT_LE(d.v[1], 7);
    EXPECT_GE(d.v[0], 0);
    EXPECT_LE(d.v[0], 15);
  }
}

TEST(NibbleInt, UnsignedExhaustiveInt8) {
  for (int v = 0; v <= 255; ++v) {
    const NibbleOperand d = decompose_int_unsigned(v, 8);
    ASSERT_EQ(d.count, 2);
    EXPECT_EQ(d.recompose_scaled(0), v);
  }
}

TEST(NibbleInt, UnsignedInt4SingleLane) {
  // Paper: signed or unsigned INT4 both run in a single iteration.
  for (int v = 0; v <= 15; ++v) {
    const NibbleOperand d = decompose_int_unsigned(v, 4);
    ASSERT_EQ(d.count, 1);
    EXPECT_EQ(d.v[0], v);
  }
  for (int v = -8; v <= 7; ++v) {
    ASSERT_EQ(decompose_int(v, 4).count, 1);
    EXPECT_EQ(decompose_int(v, 4).v[0], v);
  }
}

TEST(NibbleFp, Fp16LayoutMatchesPaperSection22) {
  // Paper: N2 = M11..M7, N1 = {0, M6..M3}, N0 = {0, M2..M0, 0}.
  // Take magnitude m = 0b110_1011_0101 (0x6B5), positive.
  Decoded d;
  d.sign = false;
  d.exp = 0;
  d.magnitude = 0x6B5;  // 0110 1011 0101 over 11 bits: 110 1011 0101
  const NibbleOperand nb = decompose_fp<kFp16Format>(d);
  ASSERT_EQ(nb.count, 3);
  EXPECT_EQ(nb.v[2], 0xD);               // m[10:7] = 1101
  EXPECT_EQ(nb.v[1], 0x6);               // m[6:3]  = 0110
  EXPECT_EQ(nb.v[0], (0x5 << 1) & 0xF);  // m[2:0] << 1 = 1010
  EXPECT_EQ(nb.weight_exp[0], -1);
  EXPECT_EQ(nb.weight_exp[1], 3);
  EXPECT_EQ(nb.weight_exp[2], 7);
}

TEST(NibbleFp, CountsPerFormat) {
  EXPECT_EQ(fp_nibble_count(kFp16Format), 3);  // 9 iterations
  EXPECT_EQ(fp_nibble_count(kBf16Format), 2);  // 4 iterations (Appendix B)
  EXPECT_EQ(fp_nibble_count(kTf32Format), 3);
  EXPECT_EQ(fp_pad_bits(kFp16Format), 1);      // the implicit left shift
  EXPECT_EQ(fp_pad_bits(kBf16Format), 0);
}

TEST(NibbleFp, ExhaustiveFp16RecomposeIdentity) {
  for (uint32_t raw = 0; raw < 0x10000; ++raw) {
    const Fp16 f = Fp16::from_bits(raw);
    if (!f.is_finite()) continue;
    const Decoded d = f.decode();
    const NibbleOperand nb = decompose_fp<kFp16Format>(d);
    // sum v_k * 2^(w_k + 1) == signed_magnitude * 2 (scale clears the -1).
    EXPECT_EQ(nb.recompose_scaled(1), int64_t{d.signed_magnitude()} * 2) << raw;
    for (int k = 0; k < nb.count; ++k) {
      EXPECT_GE(nb.v[static_cast<size_t>(k)], -15);
      EXPECT_LE(nb.v[static_cast<size_t>(k)], 15);
    }
  }
}

TEST(NibbleFp, ExhaustiveBf16RecomposeIdentity) {
  for (uint32_t raw = 0; raw < 0x10000; ++raw) {
    const Bf16 f = Bf16::from_bits(raw);
    if (!f.is_finite()) continue;
    const Decoded d = f.decode();
    const NibbleOperand nb = decompose_fp<kBf16Format>(d);
    EXPECT_EQ(nb.recompose_scaled(0), d.signed_magnitude());
  }
}

TEST(NibbleFp, LaneProductBound) {
  // |lane| <= 15 so |product| <= 225 -- the constant in Theorem 1.
  for (int a = -15; a <= 15; ++a) {
    for (int b = -15; b <= 15; ++b) {
      EXPECT_LE(std::abs(multiply_lane(static_cast<int8_t>(a), static_cast<int8_t>(b))),
                kMaxLaneProduct);
    }
  }
}

TEST(NibbleFp, ProductDecompositionIdentity) {
  // The nine nibble products weighted by 2^(wi+wj) recompose the full
  // magnitude product -- the algebraic core of the temporal decomposition.
  Rng rng(5);
  for (int t = 0; t < 20000; ++t) {
    const Fp16 fa = Fp16::from_bits(static_cast<uint32_t>(rng.next_u64()));
    const Fp16 fb = Fp16::from_bits(static_cast<uint32_t>(rng.next_u64()));
    if (!fa.is_finite() || !fb.is_finite()) continue;
    const Decoded da = fa.decode(), db = fb.decode();
    const NibbleOperand na = decompose_fp<kFp16Format>(da);
    const NibbleOperand nb = decompose_fp<kFp16Format>(db);
    int64_t sum_scaled = 0;  // scaled by 2^2 to clear weight -2
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        const int w = na.weight_exp[static_cast<size_t>(i)] + nb.weight_exp[static_cast<size_t>(j)];
        sum_scaled += static_cast<int64_t>(multiply_lane(na.v[static_cast<size_t>(i)],
                                                         nb.v[static_cast<size_t>(j)]))
                      << (w + 2);
      }
    }
    const int64_t expect =
        int64_t{da.signed_magnitude()} * int64_t{db.signed_magnitude()} << 2;
    EXPECT_EQ(sum_scaled, expect);
  }
}

}  // namespace
}  // namespace mpipu
