// Tests for the high-level Session/RunSpec API (src/api):
//
//  * Session::run is bit-exact vs the equivalent hand-wired ConvEngine
//    layer chain (the facade adds no numeric behaviour of its own);
//  * run_batch determinism: 1 thread and N threads produce identical
//    output tensors and identical stats reductions;
//  * PrecisionPolicy dispatch: INT layers on the FP-only spatial datapath
//    are rejected with a clear error before anything executes;
//  * Session::estimate reproduces simulate_network for the same config
//    (one RunSpec drives both paths);
//  * Model construction/validation and RunReport JSON emission.
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "api/session.h"
#include "common/rng.h"

namespace mpipu {
namespace {

DatapathConfig small_datapath(DecompositionScheme scheme = DecompositionScheme::kTemporal) {
  DatapathConfig cfg = DatapathConfig::for_scheme(scheme);
  cfg.n_inputs = 16;
  cfg.adder_tree_width = 16;
  cfg.software_precision = 28;
  cfg.multi_cycle = true;
  return cfg;
}

/// Tiny 3-layer CNN with real weights: fp16 -> int8 -> fp16 under the
/// mixed policy used below.
Model tiny_model(Rng& rng) {
  std::vector<ModelLayer> layers(3);
  layers[0].name = "conv1";
  layers[0].filters = random_filters(rng, 6, 3, 3, 3, ValueDist::kNormal, 0.3);
  layers[0].spec.pad = 1;
  layers[0].relu = true;
  layers[1].name = "conv2";
  layers[1].filters = random_filters(rng, 8, 6, 3, 3, ValueDist::kNormal, 0.15);
  layers[1].spec.pad = 1;
  layers[1].relu = true;
  layers[1].pool = PoolOp::kMax2;
  layers[2].name = "head";
  layers[2].filters = random_filters(rng, 4, 8, 1, 1, ValueDist::kNormal, 0.2);
  return Model::from_layers("tiny3", std::move(layers));
}

PrecisionPolicy mixed_policy() {
  PrecisionPolicy policy = PrecisionPolicy::all_fp16(AccumKind::kFp32);
  policy.set_layer("conv2", LayerPrecision::int_bits(8, 8));
  return policy;
}

TEST(SessionRun, BitExactVsHandWiredConvEngineChain) {
  Rng rng(21);
  const Model model = tiny_model(rng);
  const Tensor input = random_tensor(rng, 3, 12, 12, ValueDist::kHalfNormal, 1.0);

  RunSpec spec;
  spec.datapath = small_datapath();
  spec.policy = mixed_policy();
  spec.threads = 1;
  Session session(spec);
  const RunReport report = session.run(model, input);

  // The equivalent hand-wired chain on one ConvEngine.
  ConvEngineConfig ec;
  ec.datapath = spec.datapath;
  ec.accum = AccumKind::kFp32;
  ec.threads = 1;
  ConvEngine engine(ec);
  const auto& layers = model.layers();
  Tensor x = relu(engine.conv_fp16(input, layers[0].filters, layers[0].spec));
  x = maxpool2(relu(engine.conv_int(x, layers[1].filters, layers[1].spec, 8, 8)));
  x = engine.conv_fp16(x, layers[2].filters, layers[2].spec);

  ASSERT_EQ(report.output.data.size(), x.data.size());
  for (size_t i = 0; i < x.data.size(); ++i) {
    EXPECT_EQ(report.output.data[i], x.data[i]) << "elt " << i;
  }
  EXPECT_EQ(report.totals, engine.stats());
  ASSERT_EQ(report.layers.size(), 3u);
  EXPECT_EQ(report.layers[0].precision, "fp16+fp32acc");
  EXPECT_EQ(report.layers[1].precision, "int8x8");
  EXPECT_GT(report.layers[1].stats.int_ops, 0);
  EXPECT_EQ(report.layers[1].stats.fp_ops, 0);
  EXPECT_GT(report.end_to_end.snr_db, 20.0);
}

TEST(SessionRunBatch, ThreadCountInvariantTensorsAndStats) {
  Rng rng(22);
  const Model model = tiny_model(rng);
  std::vector<Tensor> inputs;
  for (int i = 0; i < 3; ++i) {
    inputs.push_back(random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0));
  }

  RunSpec spec;
  spec.datapath = small_datapath();
  spec.policy = mixed_policy();
  spec.threads = 1;
  Session s1(spec);
  spec.threads = 3;
  Session s3(spec);

  const BatchRunReport b1 = s1.run_batch(model, inputs);
  const BatchRunReport b3 = s3.run_batch(model, inputs);
  ASSERT_EQ(b1.runs.size(), inputs.size());
  ASSERT_EQ(b3.runs.size(), inputs.size());
  EXPECT_EQ(b1.totals, b3.totals);
  for (size_t r = 0; r < inputs.size(); ++r) {
    const RunReport& r1 = b1.runs[r];
    const RunReport& r3 = b3.runs[r];
    ASSERT_EQ(r1.output.data.size(), r3.output.data.size());
    for (size_t i = 0; i < r1.output.data.size(); ++i) {
      EXPECT_EQ(r1.output.data[i], r3.output.data[i]) << "run " << r << " elt " << i;
    }
    ASSERT_EQ(r1.layers.size(), r3.layers.size());
    for (size_t l = 0; l < r1.layers.size(); ++l) {
      EXPECT_EQ(r1.layers[l].stats, r3.layers[l].stats) << "run " << r << " layer " << l;
    }
  }
}

TEST(SessionRun, RejectsIntLayerOnSpatialDatapath) {
  Rng rng(23);
  const Model model = tiny_model(rng);
  const Tensor input = random_tensor(rng, 3, 8, 8, ValueDist::kHalfNormal, 1.0);

  RunSpec spec;
  spec.datapath = small_datapath(DecompositionScheme::kSpatial);
  spec.policy = mixed_policy();  // conv2 wants INT8x8
  Session session(spec);
  try {
    session.run(model, input);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("conv2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("int8x8"), std::string::npos) << msg;
    EXPECT_NE(msg.find("spatial"), std::string::npos) << msg;
  }

  // The same model runs fine on spatial with an all-FP16 policy.
  spec.policy = PrecisionPolicy::all_fp16();
  Session fp_session(spec);
  EXPECT_GT(fp_session.run(model, input).totals.fp_ops, 0);
}

TEST(SessionEstimate, ReproducesSimulateNetworkForSameConfig) {
  Network net;
  net.name = "tiny";
  net.tensor_stats = forward_stats();
  ConvLayer l;
  l.name = "L";
  l.cin = 64;
  l.cout = 64;
  l.kh = l.kw = 3;
  l.hout = l.wout = 14;
  net.layers = {l};

  const TileConfig tile = big_tile(16, 28, 16);
  SimOptions opts;
  opts.sampled_steps = 300;

  RunSpec spec;
  spec.datapath = tile.datapath;
  spec.tile = tile;
  spec.sim = opts;
  Session session(spec);

  const NetworkSimResult direct = simulate_network(net, tile, opts);
  const NetworkSimResult api = session.estimate(Model::from_network(net));
  EXPECT_EQ(api.total_cycles, direct.total_cycles);
  ASSERT_EQ(api.layers.size(), direct.layers.size());
  EXPECT_EQ(api.layers[0].cycles_per_step, direct.layers[0].cycles_per_step);
}

TEST(SessionEstimate, AdHocModelDerivesShapeTable) {
  Rng rng(24);
  const Model model = tiny_model(rng);
  const Network table = model.shape_table(12, 12);
  ASSERT_EQ(table.layers.size(), 3u);
  EXPECT_EQ(table.layers[0].hout, 12);  // pad-1 3x3 keeps dims
  EXPECT_EQ(table.layers[1].hout, 12);
  EXPECT_EQ(table.layers[2].hout, 6);   // conv2's maxpool halves dims
  EXPECT_EQ(table.layers[2].cin, 8);

  RunSpec spec;
  spec.datapath = small_datapath();
  spec.tile = big_tile(16, 28);
  spec.sim.sampled_steps = 100;
  Session session(spec);
  const NetworkSimResult r = session.estimate(model, 12, 12);
  EXPECT_GT(r.total_cycles, 0.0);
  EXPECT_EQ(r.layers.size(), 3u);

  // Ad-hoc models need input dims to derive the table.
  EXPECT_THROW(session.estimate(model), std::invalid_argument);
  // Mismatched tile/datapath widths are rejected: one RunSpec, one n.
  RunSpec bad = spec;
  bad.tile = small_tile(16, 28);  // c_unroll = 8 != n_inputs = 16
  EXPECT_THROW(Session(bad).estimate(model, 12, 12), std::invalid_argument);
}

TEST(SessionRun, WithEstimateAttachesSimResult) {
  Rng rng(25);
  const Model model = tiny_model(rng);
  const Tensor input = random_tensor(rng, 3, 12, 12, ValueDist::kHalfNormal, 1.0);
  RunSpec spec;
  spec.datapath = small_datapath();
  spec.tile = big_tile(16, 28);
  spec.sim.sampled_steps = 100;
  Session session(spec);
  RunOptions opts;
  opts.with_estimate = true;
  const RunReport report = session.run(model, input, opts);
  ASSERT_TRUE(report.estimate.has_value());
  EXPECT_GT(report.estimate->total_cycles, 0.0);
  EXPECT_EQ(report.estimate->layers.size(), 3u);
}

TEST(ModelValidation, RejectsBadConstructions) {
  EXPECT_THROW(Model::from_layers("empty", {}), std::invalid_argument);

  Rng rng(26);
  std::vector<ModelLayer> broken(2);
  broken[0].name = "a";
  broken[0].filters = random_filters(rng, 4, 3, 3, 3, ValueDist::kNormal, 0.2);
  broken[1].name = "b";
  broken[1].filters = random_filters(rng, 4, 5, 3, 3, ValueDist::kNormal, 0.2);
  EXPECT_THROW(Model::from_layers("broken", std::move(broken)),
               std::invalid_argument);

  // Shape-table models are estimate-only until weights are materialized.
  Network net;
  net.name = "chain";
  net.tensor_stats = forward_stats();
  ConvLayer l;
  l.cin = 4;
  l.cout = 4;
  l.kh = l.kw = 3;
  l.hout = l.wout = 8;
  l.name = "c1";
  net.layers.push_back(l);
  l.name = "c2";
  net.layers.push_back(l);
  Model shape_model = Model::from_network(net);
  EXPECT_FALSE(shape_model.has_weights());

  RunSpec spec;
  spec.datapath = small_datapath();
  Session session(spec);
  const Tensor input(4, 8, 8);
  EXPECT_THROW(session.run(shape_model, input), std::invalid_argument);

  shape_model.materialize_weights(7);
  ASSERT_TRUE(shape_model.has_weights());
  EXPECT_EQ(session.run(shape_model, input).layers.size(), 2u);

  // Branchy tables (repeat > 1) cannot be materialized.
  net.layers[0].repeat = 2;
  Model branchy = Model::from_network(net);
  EXPECT_THROW(branchy.materialize_weights(7), std::invalid_argument);

  // Rows chaining on channels but not spatially under same-padding are
  // rejected too: run() and estimate() would silently disagree on shapes.
  Network skewed;
  skewed.name = "skewed";
  skewed.tensor_stats = forward_stats();
  ConvLayer s = l;
  s.repeat = 1;
  s.name = "s1";
  skewed.layers.push_back(s);
  s.name = "s2";
  s.hout = s.wout = 6;  // recorded without padding; same-pad would give 8
  skewed.layers.push_back(s);
  EXPECT_THROW(Model::from_network(skewed).materialize_weights(7),
               std::invalid_argument);
}

TEST(PrecisionPolicyTest, PresetsAndOverridePriority) {
  const PrecisionPolicy p = PrecisionPolicy::int8_except_first_last();
  EXPECT_EQ(p.resolve(0, 4, "a"), LayerPrecision::fp16(AccumKind::kFp32));
  EXPECT_EQ(p.resolve(3, 4, "d"), LayerPrecision::fp16(AccumKind::kFp32));
  EXPECT_EQ(p.resolve(1, 4, "b"), LayerPrecision::int_bits(8, 8));

  PrecisionPolicy q = PrecisionPolicy::int8_except_first_last();
  q.set_layer("b", LayerPrecision::int_bits(4, 4));
  q.set_layer(size_t{0}, LayerPrecision::fp16(AccumKind::kFp16));
  EXPECT_EQ(q.resolve(1, 4, "b"), LayerPrecision::int_bits(4, 4));
  EXPECT_EQ(q.resolve(0, 4, "a"), LayerPrecision::fp16(AccumKind::kFp16));

  EXPECT_EQ(LayerPrecision::fp16(AccumKind::kFp16).to_string(), "fp16+fp16acc");
  EXPECT_EQ(LayerPrecision::int_bits(4, 8).to_string(), "int4x8");
}

TEST(RunReportJson, EmitsStructuredDocument) {
  Rng rng(27);
  const Model model = tiny_model(rng);
  const Tensor input = random_tensor(rng, 3, 8, 8, ValueDist::kHalfNormal, 1.0);
  RunSpec spec;
  spec.datapath = small_datapath();
  spec.policy = mixed_policy();
  Session session(spec);
  const RunReport report = session.run(model, input);

  const std::string json = report.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* key : {"\"model\"", "\"scheme\"", "\"totals\"", "\"cycles\"",
                          "\"end_to_end\"", "\"snr_db\"", "\"layers\"",
                          "\"precision\"", "\"int8x8\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Compact mode emits no newlines.
  EXPECT_EQ(report.to_json(0).find('\n'), std::string::npos);

  BatchRunReport batch = session.run_batch(model, {input});
  const std::string bjson = batch.to_json();
  EXPECT_NE(bjson.find("\"batch\""), std::string::npos);
  EXPECT_NE(bjson.find("\"runs\""), std::string::npos);
}

// Regression: the compile-on-first-use cache used to be unsynchronized, so
// two threads hitting one Session raced the lookup/rotate/evict sequence
// (and worse, an eviction could destroy a CompiledModel another thread was
// mid-run on).  Hammer one Session from 8 threads with more distinct models
// than the cache holds, so compiles, hits, LRU rotations and evictions all
// interleave; every thread checks its outputs against a serial baseline.
TEST(SessionThreadSafety, ConcurrentRunsShareOneSession) {
  constexpr int kThreads = 8;
  constexpr int kModels = 10;  // > kMaxCompiledCacheEntries: forces eviction
  constexpr int kRounds = 6;

  RunSpec spec;
  spec.datapath = small_datapath();
  spec.policy = mixed_policy();
  spec.threads = 1;

  std::vector<Model> models;
  std::vector<Tensor> inputs;
  std::vector<Tensor> expected;
  {
    Rng rng(404);
    Session serial(spec);
    for (int m = 0; m < kModels; ++m) {
      models.push_back(tiny_model(rng));
      inputs.push_back(
          random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0));
      expected.push_back(serial.run(models.back(), inputs.back()).output);
    }
  }

  Session shared(spec);
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        // Each thread walks the model list from its own offset so lookups,
        // misses and evictions collide from the first round.
        const int m = (t + r * 3) % kModels;
        const RunReport rep =
            shared.run(models[static_cast<size_t>(m)],
                       inputs[static_cast<size_t>(m)]);
        if (rep.output.data != expected[static_cast<size_t>(m)].data) {
          ++mismatches[static_cast<size_t>(t)];
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[static_cast<size_t>(t)], 0) << "thread " << t;
  }
}

}  // namespace
}  // namespace mpipu
