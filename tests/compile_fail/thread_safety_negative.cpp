// NEGATIVE compile test for the thread-safety annotations.
//
// This TU is NOT part of any build target.  tools/lint/
// check_thread_safety_negative.py (the `thread_safety_negative` ctest)
// compiles it with `clang++ -fsyntax-only -Wthread-safety -Werror` and
// asserts the compile FAILS -- proving the analysis in
// common/annotated_mutex.h actually rejects bad lock discipline, rather
// than the annotations having quietly degraded to no-ops (wrong macro
// spelling, a lost attribute, a broken friend declaration).
//
// Each block below is one deliberate, comment-documented violation.  The
// same TU compiled with -DMPIPU_TS_POSITIVE drops every violation and must
// PASS: that control run proves a failure of the negative run comes from
// the analysis, not from a bad include path or flag.
#include "common/annotated_mutex.h"

namespace {

class Counter {
 public:
  // VIOLATION 1: writes a guarded member with no lock held.
  // Expected diagnostic: "writing variable 'value_' requires holding
  // mutex 'mu_' exclusively".
  void unguarded_write() {
#ifndef MPIPU_TS_POSITIVE
    value_ += 1;
#else
    mpipu::MutexLock lock(mu_);
    value_ += 1;
#endif
  }

  // VIOLATION 2: calls a REQUIRES function without acquiring the mutex.
  // Expected diagnostic: "calling function 'bump_locked' requires holding
  // mutex 'mu_' exclusively".
  void missing_requires() {
#ifndef MPIPU_TS_POSITIVE
    bump_locked();
#else
    mpipu::MutexLock lock(mu_);
    bump_locked();
#endif
  }

  // VIOLATION 3: re-enters an EXCLUDES function with the lock held --
  // self-deadlock by contract.  Expected diagnostic: "cannot call function
  // 'unguarded_write' while mutex 'mu_' is held".
  void excludes_violation() MPIPU_EXCLUDES(mu_) {
    mpipu::MutexLock lock(mu_);
#ifndef MPIPU_TS_POSITIVE
    excludes_violation();
#endif
    value_ += 1;
  }

  // VIOLATION 4: manual lock() with a return path that never unlocks.
  // Expected diagnostic: "mutex 'mu_' is still held at the end of
  // function".
  void leaked_lock() {
#ifndef MPIPU_TS_POSITIVE
    mu_.lock();
    value_ += 1;
#else
    mpipu::MutexLock lock(mu_);
    value_ += 1;
#endif
  }

 private:
  void bump_locked() MPIPU_REQUIRES(mu_) { value_ += 1; }

  mpipu::Mutex mu_;
  int value_ MPIPU_GUARDED_BY(mu_) = 0;
};

// VIOLATION 5: the condvar-wait predicate reads guarded state but is not
// annotated MPIPU_REQUIRES(mu) -- the mirror image of the worker_loop
// pattern in serve/serving_runtime.cpp, which annotates its predicate.
// Expected diagnostic: "reading variable 'ready' requires holding mutex
// 'mu'".
struct Waiter {
  mpipu::Mutex mu;
  mpipu::CondVar cv;
  bool ready MPIPU_GUARDED_BY(mu) = false;

  void wait_for_ready() {
    mpipu::UniqueLock lock(mu);
#ifndef MPIPU_TS_POSITIVE
    cv.wait(lock, [this] { return ready; });
#else
    cv.wait(lock, [this]() MPIPU_REQUIRES(mu) { return ready; });
#endif
  }
};

}  // namespace

// Odr-use everything so -fsyntax-only still analyzes the bodies.
void thread_safety_negative_anchor() {
  Counter c;
  c.unguarded_write();
  c.missing_requires();
  c.excludes_violation();
  c.leaked_lock();
  Waiter w;
  w.wait_for_ready();
}
