// Tests for multi-tile partitioning (sim/partition.h) and its two
// consumers:
//
//  * partitioner invariants: shards are balanced-contiguous, disjoint, and
//    their union is the full layer (channels/rows AND MACs); the critical
//    shard's broadcast steps equal layer_broadcast_steps; halo accounting;
//  * multi-tile cycle sim: per-tile utilization/imbalance/critical-tile
//    reporting, exact zero imbalance for evenly divisible couts, idle
//    tiles when the extent is smaller than the tile count;
//  * Release-mode tile validation: an ipus_per_cluster that does not
//    divide ipus_per_tile is rejected with std::invalid_argument in EVERY
//    build mode (the num_clusters() assert vanishes under NDEBUG);
//  * host-sharded execution (RunSpec.partition.shard_host): byte-identical
//    outputs, per-layer stats and totals vs unsharded execution across
//    decomposition schemes x FP16/INT8 x thread counts x partition kinds;
//  * row_concat round-trips row shards exactly.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "api/session.h"
#include "common/rng.h"
#include "nn/elementwise.h"
#include "sim/cycle_sim.h"
#include "sim/partition.h"

namespace mpipu {
namespace {

ConvLayer simple_layer(int cin, int cout, int k, int hw) {
  ConvLayer l;
  l.name = "L";
  l.cin = cin;
  l.cout = cout;
  l.kh = l.kw = k;
  l.hout = l.wout = hw;
  return l;
}

Network one_layer_net(ConvLayer layer) {
  Network n;
  n.name = "one";
  n.tensor_stats = forward_stats();
  n.layers = {std::move(layer)};
  return n;
}

int64_t ceil_div64(int64_t a, int64_t b) { return (a + b - 1) / b; }

// ---------------------------------------------------------------------------
// Partitioner invariants
// ---------------------------------------------------------------------------

void expect_covers_extent(const std::vector<ShardRange>& shards,
                          PartitionKind kind, int extent) {
  // Contiguous, disjoint, in order, union == [0, extent).
  int at = 0;
  for (const ShardRange& s : shards) {
    const int begin = kind == PartitionKind::kOutputChannel ? s.co_begin
                                                            : s.row_begin;
    const int end =
        kind == PartitionKind::kOutputChannel ? s.co_end : s.row_end;
    EXPECT_EQ(begin, at);
    EXPECT_LE(begin, end);
    at = end;
  }
  EXPECT_EQ(at, extent);
}

TEST(Partition, BalancedContiguousBothKinds) {
  for (const PartitionKind kind :
       {PartitionKind::kOutputChannel, PartitionKind::kSpatialRows}) {
    for (const auto& [cout, hout, tiles] :
         std::vector<std::tuple<int, int, int>>{
             {64, 14, 4}, {65, 13, 4}, {7, 5, 3}, {2, 2, 4}, {1, 1, 1}}) {
      const auto shards = partition_output(cout, hout, tiles, kind);
      ASSERT_EQ(shards.size(), static_cast<size_t>(tiles));
      const int extent = kind == PartitionKind::kOutputChannel ? cout : hout;
      expect_covers_extent(shards, kind, extent);
      int max_size = 0, min_size = extent + 1;
      for (const ShardRange& s : shards) {
        EXPECT_EQ(s.tile, &s - shards.data());
        const int size =
            kind == PartitionKind::kOutputChannel ? s.cout() : s.rows();
        max_size = std::max(max_size, size);
        min_size = std::min(min_size, size);
        // The non-partitioned axis always spans the full extent.
        if (kind == PartitionKind::kOutputChannel) {
          EXPECT_EQ(s.row_begin, 0);
          EXPECT_EQ(s.row_end, hout);
        } else {
          EXPECT_EQ(s.co_begin, 0);
          EXPECT_EQ(s.co_end, cout);
        }
      }
      // Balanced within one; the largest shard is exactly ceil(E/T) -- the
      // legacy critical-tile size.
      EXPECT_LE(max_size - min_size, 1);
      EXPECT_EQ(max_size, static_cast<int>(ceil_div64(extent, tiles)));
    }
  }
}

TEST(Partition, RejectsBadArguments) {
  EXPECT_THROW(partition_output(8, 8, 0, PartitionKind::kOutputChannel),
               std::invalid_argument);
  EXPECT_THROW(partition_output(-1, 8, 2, PartitionKind::kOutputChannel),
               std::invalid_argument);
  EXPECT_THROW(partition_layer(simple_layer(3, 8, 3, 8), -2,
                               PartitionKind::kSpatialRows),
               std::invalid_argument);
}

TEST(Partition, ShardUnionConservesMacs) {
  for (const PartitionKind kind :
       {PartitionKind::kOutputChannel, PartitionKind::kSpatialRows}) {
    for (const int tiles : {1, 3, 4, 7}) {
      const ConvLayer layer = simple_layer(64, 65, 3, 13);
      const LayerPartition part = partition_layer(layer, tiles, kind);
      ASSERT_EQ(part.shards.size(), static_cast<size_t>(tiles));
      EXPECT_EQ(part.total_macs(), layer.macs())
          << partition_kind_name(kind) << " x " << tiles;
    }
  }
}

TEST(Partition, SpatialHaloRows) {
  // 3x3 stride-1: interior boundaries share kh - stride = 2 input rows.
  const ConvLayer layer = simple_layer(16, 16, 3, 12);
  const LayerPartition part =
      partition_layer(layer, 4, PartitionKind::kSpatialRows);
  EXPECT_EQ(part.shards[0].halo_rows, 2);  // next neighbour only
  EXPECT_EQ(part.shards[1].halo_rows, 4);  // both neighbours
  EXPECT_EQ(part.shards[2].halo_rows, 4);
  EXPECT_EQ(part.shards[3].halo_rows, 2);  // prev neighbour only
  // Single tile: no neighbours, no halo.  Output-channel: never a halo.
  EXPECT_EQ(partition_layer(layer, 1, PartitionKind::kSpatialRows)
                .shards[0]
                .halo_rows,
            0);
  for (const LayerShard& s :
       partition_layer(layer, 4, PartitionKind::kOutputChannel).shards) {
    EXPECT_EQ(s.halo_rows, 0);
  }
  // Stride >= kh: windows never overlap, so no halo anywhere.
  ConvLayer strided = simple_layer(16, 16, 3, 8);
  strided.stride = 3;
  for (const LayerShard& s :
       partition_layer(strided, 4, PartitionKind::kSpatialRows).shards) {
    EXPECT_EQ(s.halo_rows, 0);
  }
}

TEST(Partition, CriticalShardStepsMatchLayerBroadcastSteps) {
  const TileConfig big = baseline2();  // (16,16,2,2) x 4 tiles
  for (const ConvLayer& layer :
       {simple_layer(64, 64, 3, 14), simple_layer(3, 64, 7, 112),
        simple_layer(16, 128, 1, 4), simple_layer(64, 65, 3, 13),
        simple_layer(16, 2, 1, 4)}) {
    const LayerPartition part =
        partition_layer(layer, big.num_tiles, PartitionKind::kOutputChannel);
    int64_t critical = 0;
    int64_t sum = 0;
    for (const LayerShard& s : part.shards) {
      const int64_t steps = tile_broadcast_steps(s.layer, big);
      critical = std::max(critical, steps);
      sum += steps;
      EXPECT_LE(steps, layer_broadcast_steps(layer, big));
    }
    EXPECT_EQ(critical, layer_broadcast_steps(layer, big)) << layer.cout;
    // Evenly divisible couts: every shard identical, so the per-tile sum is
    // exactly num_tiles x the critical count.
    if (layer.cout % (big.num_tiles * big.k_unroll) == 0) {
      EXPECT_EQ(sum, critical * big.num_tiles);
    }
  }
}

TEST(Partition, IdleTilesGetZeroSteps) {
  // cout = 2 over 4 tiles: shards of 0/1 channels -- two tiles idle.
  const TileConfig big = baseline2();
  const LayerPartition part =
      partition_layer(simple_layer(16, 2, 1, 4), 4,
                      PartitionKind::kOutputChannel);
  int idle = 0;
  for (const LayerShard& s : part.shards) {
    if (s.range.empty()) {
      ++idle;
      EXPECT_EQ(tile_broadcast_steps(s.layer, big), 0);
    }
  }
  EXPECT_EQ(idle, 2);
}

// ---------------------------------------------------------------------------
// Multi-tile cycle sim
// ---------------------------------------------------------------------------

TEST(MultiTileSim, EvenSplitHasExactlyZeroImbalance) {
  SimOptions opts;
  opts.sampled_steps = 200;
  // 64 cout over 4 tiles x k_unroll 16: every shard identical.
  const auto r =
      simulate_network(one_layer_net(simple_layer(64, 64, 3, 14)), baseline2(),
                       opts);
  ASSERT_EQ(r.layers.size(), 1u);
  const LayerSimResult& l = r.layers[0];
  ASSERT_EQ(l.tiles.size(), 4u);
  EXPECT_EQ(l.imbalance, 0.0);  // exact: equal shards share one stream
  EXPECT_EQ(r.mean_tile_utilization, 1.0);
  for (const TileSimResult& t : l.tiles) {
    EXPECT_EQ(t.steps, l.total_steps);
    EXPECT_EQ(t.cycles, l.total_cycles);
    EXPECT_EQ(t.utilization, 1.0);
  }
  EXPECT_EQ(r.partition, "output_channel");
  EXPECT_EQ(r.num_tiles, 4);
}

TEST(MultiTileSim, UnevenSplitReportsImbalanceAndCriticalTile) {
  SimOptions opts;
  opts.sampled_steps = 200;
  // 65 cout over 4 tiles: shards 16,16,16,17 -> the 17-channel shard needs
  // 2 K-groups vs 1 -- tile 3 is critical and roughly 2x the others.
  const auto r = simulate_network(one_layer_net(simple_layer(64, 65, 3, 14)),
                                  baseline2(), opts);
  const LayerSimResult& l = r.layers[0];
  ASSERT_EQ(l.tiles.size(), 4u);
  EXPECT_EQ(l.critical_tile, 3);
  EXPECT_GT(l.imbalance, 0.0);
  EXPECT_EQ(l.tiles[3].utilization, 1.0);
  EXPECT_EQ(l.total_cycles, l.tiles[3].cycles);
  for (int i = 0; i < 3; ++i) {
    EXPECT_LT(l.tiles[i].utilization, 1.0);
    EXPECT_GT(l.tiles[i].utilization, 0.0);
    EXPECT_EQ(l.tiles[i].steps, l.tiles[0].steps);
  }
  EXPECT_LT(r.mean_tile_utilization, 1.0);
  EXPECT_GT(r.mean_tile_utilization, 0.0);
}

TEST(MultiTileSim, IdleTilesReportZeroUtilization) {
  SimOptions opts;
  opts.sampled_steps = 100;
  const auto r = simulate_network(one_layer_net(simple_layer(16, 2, 1, 8)),
                                  baseline2(), opts);
  const LayerSimResult& l = r.layers[0];
  int idle = 0;
  for (const TileSimResult& t : l.tiles) {
    if (t.steps == 0) {
      ++idle;
      EXPECT_EQ(t.cycles, 0.0);
      EXPECT_EQ(t.utilization, 0.0);
    }
  }
  EXPECT_EQ(idle, 2);
  EXPECT_GT(l.imbalance, 0.0);
}

TEST(MultiTileSim, SpatialRowsPartition) {
  SimOptions opts;
  opts.sampled_steps = 200;
  PartitionSpec part;
  part.kind = PartitionKind::kSpatialRows;
  const auto r = simulate_network(one_layer_net(simple_layer(64, 64, 3, 14)),
                                  baseline2(), opts, part);
  EXPECT_EQ(r.partition, "spatial_rows");
  const LayerSimResult& l = r.layers[0];
  ASSERT_EQ(l.tiles.size(), 4u);
  // 14 rows over 4 tiles (h_unroll 2): bands of 3/4 rows -> 2 row-groups
  // each -- identical steps, zero imbalance for this geometry.
  for (const TileSimResult& t : l.tiles) EXPECT_GT(t.steps, 0);
  EXPECT_GE(l.imbalance, 0.0);
  EXPECT_EQ(l.tiles[static_cast<size_t>(l.critical_tile)].utilization, 1.0);
}

TEST(MultiTileSim, SampledStepsClampIsHonest) {
  // steps_total < sampled_steps: the sampler must clamp to the true count,
  // not scale a longer window.  1x1 conv, 2x2 output on a (16,16,2,2) tile
  // -> exactly 1 broadcast step per tile.
  SimOptions opts;
  opts.sampled_steps = 100;
  const auto r = simulate_network(one_layer_net(simple_layer(16, 16, 1, 2)),
                                  baseline2(), opts);
  const LayerSimResult& l = r.layers[0];
  EXPECT_EQ(l.total_steps, 1);
  // One step, single-cycle baseline: 9 nibble iterations exactly.
  EXPECT_EQ(l.total_cycles, l.cycles_per_step * 1.0);
  EXPECT_NEAR(l.total_cycles, 9.0, 1e-12);
}

TEST(MultiTileSim, RejectsNonPositiveSampledSteps) {
  SimOptions opts;
  opts.sampled_steps = 0;
  EXPECT_THROW(simulate_network(one_layer_net(simple_layer(16, 16, 3, 8)),
                                baseline2(), opts),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Release-mode tile validation (the historical silent-truncation bug)
// ---------------------------------------------------------------------------

TEST(TileValidation, IndivisibleClusterRejectedInEveryBuildMode) {
  TileConfig t = baseline2();        // ipus_per_tile = 64
  t.ipus_per_cluster = 7;            // 64 % 7 != 0
  EXPECT_THROW(t.validate(), std::invalid_argument);
  // Surfaced through simulate_network even when NDEBUG disabled the
  // num_clusters() assert (the bug: integer division silently simulated
  // fewer IPUs than configured).
  EXPECT_THROW(simulate_network(one_layer_net(simple_layer(64, 64, 3, 14)), t),
               std::invalid_argument);
}

TEST(TileValidation, BadFieldsRejected) {
  for (auto mutate : std::vector<void (*)(TileConfig&)>{
           [](TileConfig& t) { t.c_unroll = 0; },
           [](TileConfig& t) { t.k_unroll = -1; },
           [](TileConfig& t) { t.h_unroll = 0; },
           [](TileConfig& t) { t.w_unroll = 0; },
           [](TileConfig& t) { t.num_tiles = 0; },
           [](TileConfig& t) { t.input_buffer_depth = 0; },
           [](TileConfig& t) { t.ipus_per_cluster = 0; }}) {
    TileConfig t = baseline2();
    mutate(t);
    EXPECT_THROW(t.validate(), std::invalid_argument);
  }
  EXPECT_NO_THROW(baseline1().validate());
  EXPECT_NO_THROW(baseline2().validate());
}

TEST(TileValidation, SurfacedThroughSessionEstimate) {
  RunSpec spec;
  spec.datapath = DatapathConfig::for_scheme(DecompositionScheme::kTemporal);
  spec.datapath.n_inputs = 16;
  spec.tile = big_tile(16, 28);
  spec.tile.ipus_per_cluster = 6;  // 64 % 6 != 0
  spec.sim.sampled_steps = 50;
  Session session(spec);
  Rng rng(7);
  std::vector<ModelLayer> layers(1);
  layers[0].name = "conv";
  layers[0].filters = random_filters(rng, 8, 3, 3, 3, ValueDist::kNormal, 0.3);
  const Model model = Model::from_layers("m", std::move(layers));
  EXPECT_THROW(session.estimate(model, 8, 8), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// row_concat
// ---------------------------------------------------------------------------

TEST(RowConcat, RoundTripsRowShards) {
  Rng rng(11);
  const Tensor full = random_tensor(rng, 3, 7, 5, ValueDist::kNormal, 1.0);
  // Slice rows [0,3) and [3,7) per channel, then re-join.
  Tensor top(3, 3, 5), bottom(3, 4, 5);
  for (int c = 0; c < 3; ++c) {
    for (int y = 0; y < 7; ++y) {
      for (int x = 0; x < 5; ++x) {
        if (y < 3) top.at(c, y, x) = full.at(c, y, x);
        else bottom.at(c, y - 3, x) = full.at(c, y, x);
      }
    }
  }
  const Tensor joined = row_concat({&top, &bottom});
  ASSERT_EQ(joined.data.size(), full.data.size());
  for (size_t i = 0; i < full.data.size(); ++i) {
    EXPECT_EQ(joined.data[i], full.data[i]) << i;
  }
}

TEST(RowConcat, RejectsMismatchedShapes) {
  const Tensor a(2, 3, 4), b(3, 3, 4), c(2, 3, 5);
  EXPECT_THROW(row_concat({&a, &b}), std::invalid_argument);  // channels
  EXPECT_THROW(row_concat({&a, &c}), std::invalid_argument);  // width
  EXPECT_THROW(row_concat({&a}), std::invalid_argument);      // arity
}

// ---------------------------------------------------------------------------
// Host-sharded execution byte-identity
// ---------------------------------------------------------------------------

DatapathConfig small_datapath(DecompositionScheme scheme) {
  DatapathConfig cfg = DatapathConfig::for_scheme(scheme);
  cfg.n_inputs = 16;
  cfg.adder_tree_width = 16;
  cfg.software_precision = 28;
  cfg.multi_cycle = true;
  return cfg;
}

/// Tiny 3-layer CNN with real weights; couts 6/8/4 exercise both evenly
/// divisible and ragged shard splits over 4 tiles.
Model tiny_model(Rng& rng) {
  std::vector<ModelLayer> layers(3);
  layers[0].name = "conv1";
  layers[0].filters = random_filters(rng, 6, 3, 3, 3, ValueDist::kNormal, 0.3);
  layers[0].spec.pad = 1;
  layers[0].relu = true;
  layers[1].name = "conv2";
  layers[1].filters = random_filters(rng, 8, 6, 3, 3, ValueDist::kNormal, 0.15);
  layers[1].spec.pad = 1;
  layers[1].relu = true;
  layers[1].pool = PoolOp::kMax2;
  layers[2].name = "head";
  layers[2].filters = random_filters(rng, 4, 8, 1, 1, ValueDist::kNormal, 0.2);
  return Model::from_layers("tiny3", std::move(layers));
}

void expect_reports_identical(const RunReport& a, const RunReport& b) {
  ASSERT_EQ(a.output.data.size(), b.output.data.size());
  for (size_t i = 0; i < a.output.data.size(); ++i) {
    ASSERT_EQ(a.output.data[i], b.output.data[i]) << "output elt " << i;
  }
  EXPECT_EQ(a.totals, b.totals);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (size_t l = 0; l < a.layers.size(); ++l) {
    EXPECT_EQ(a.layers[l].stats, b.layers[l].stats) << "layer " << l;
  }
  // The serialized documents must agree byte for byte (covers error
  // metrics and field ordering -- everything the report carries).
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(HostSharding, ByteIdenticalAcrossSchemesPrecisionsThreadsAndKinds) {
  Rng rng(42);
  const Model model = tiny_model(rng);
  const Tensor input =
      random_tensor(rng, 3, 12, 12, ValueDist::kHalfNormal, 1.0);

  struct Case {
    DecompositionScheme scheme;
    bool with_int;
  };
  for (const Case& c : {Case{DecompositionScheme::kTemporal, true},
                        Case{DecompositionScheme::kSerial, true},
                        Case{DecompositionScheme::kSpatial, false}}) {
    for (const PartitionKind kind :
         {PartitionKind::kOutputChannel, PartitionKind::kSpatialRows}) {
      for (const int threads : {1, 3}) {
        RunSpec spec;
        spec.datapath = small_datapath(c.scheme);
        spec.tile = big_tile(16, 28);  // num_tiles = 4
        spec.policy = PrecisionPolicy::all_fp16(AccumKind::kFp32);
        if (c.with_int) {
          spec.policy.set_layer("conv2", LayerPrecision::int_bits(8, 8));
        }
        spec.threads = threads;
        spec.sim.sampled_steps = 50;
        spec.partition.kind = kind;

        spec.partition.shard_host = false;
        Session plain(spec);
        const RunReport base = plain.run(model, input);

        spec.partition.shard_host = true;
        Session sharded(spec);
        const RunReport shard = sharded.run(model, input);

        SCOPED_TRACE(std::string(scheme_name(c.scheme)) + " / " +
                     partition_kind_name(kind) + " / threads=" +
                     std::to_string(threads));
        expect_reports_identical(base, shard);
      }
    }
  }
}

TEST(HostSharding, SingleTileIsUnsharded) {
  // num_tiles = 1: shard_host must be a no-op (single shard falls through
  // to the plain executor).
  Rng rng(43);
  const Model model = tiny_model(rng);
  const Tensor input =
      random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0);
  RunSpec spec;
  spec.datapath = small_datapath(DecompositionScheme::kTemporal);
  spec.tile = big_tile(16, 28);
  spec.tile.num_tiles = 1;
  spec.tile.ipus_per_cluster = 64;
  spec.threads = 1;
  spec.sim.sampled_steps = 50;

  Session plain(spec);
  const RunReport base = plain.run(model, input);
  spec.partition.shard_host = true;
  Session sharded(spec);
  expect_reports_identical(base, sharded.run(model, input));
}

}  // namespace
}  // namespace mpipu
