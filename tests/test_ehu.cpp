// Tests for the Exponent Handling Unit (paper Fig. 5), including the
// Fig. 4 walk-through example.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/ehu.h"

namespace mpipu {
namespace {

Decoded dec(int exp, int32_t mag = 1, bool sign = false) {
  Decoded d;
  d.exp = exp;
  d.magnitude = mag;
  d.sign = sign;
  return d;
}

TEST(Ehu, StagesOnSimpleInput) {
  // Products with exponents 3+1=4, 0+0=0, -2+3=1.
  const std::vector<Decoded> a = {dec(3), dec(0), dec(-2)};
  const std::vector<Decoded> b = {dec(1), dec(0), dec(3)};
  EhuOptions opts;
  opts.software_precision = 28;
  opts.safe_precision = 19;
  const EhuResult r = run_ehu(a, b, opts);
  EXPECT_EQ(r.product_exp, (std::vector<int>{4, 0, 1}));
  EXPECT_EQ(r.max_exp, 4);
  EXPECT_EQ(r.align, (std::vector<int>{0, 4, 3}));
  EXPECT_EQ(r.masked, (std::vector<uint8_t>{false, false, false}));
  EXPECT_EQ(r.mc_cycles, 1);
}

TEST(Ehu, Figure4WalkThrough) {
  // Paper Fig. 4: sp = 5, product exponents (10, 2, 3, 8) -> alignments
  // (0, 8, 7, 2).  Cycle 0 serves A and D (alignment in [0,5)), cycle 1
  // serves B and C (alignment in [5,10)): two cycles total.
  const std::vector<Decoded> a = {dec(10), dec(2), dec(3), dec(8)};
  const std::vector<Decoded> b = {dec(0), dec(0), dec(0), dec(0)};
  EhuOptions opts;
  opts.software_precision = 28;
  opts.safe_precision = 5;  // MC-IPU(14): sp = 14 - 9
  const EhuResult r = run_ehu(a, b, opts);
  EXPECT_EQ(r.align, (std::vector<int>{0, 8, 7, 2}));
  EXPECT_EQ(r.band, (std::vector<int>{0, 1, 1, 0}));
  EXPECT_EQ(r.mc_cycles, 2);
  EXPECT_EQ(r.mc_cycles_skip_empty, 2);
}

TEST(Ehu, MaskingAtSoftwarePrecision) {
  const std::vector<Decoded> a = {dec(30), dec(0), dec(13)};
  const std::vector<Decoded> b = {dec(0), dec(0), dec(0)};
  EhuOptions opts;
  opts.software_precision = 16;
  opts.safe_precision = 7;
  const EhuResult r = run_ehu(a, b, opts);
  EXPECT_EQ(r.align, (std::vector<int>{0, 30, 17}));
  EXPECT_EQ(r.masked, (std::vector<uint8_t>{false, true, true}));
  // Masked products cost no cycles.
  EXPECT_EQ(r.mc_cycles, 1);
  EXPECT_EQ(r.band, (std::vector<int>{0, -1, -1}));
}

TEST(Ehu, BoundaryAlignmentExactlyAtPrecisionIsKept) {
  const std::vector<Decoded> a = {dec(16), dec(0)};
  const std::vector<Decoded> b = {dec(0), dec(0)};
  EhuOptions opts;
  opts.software_precision = 16;
  opts.safe_precision = 7;
  const EhuResult r = run_ehu(a, b, opts);
  EXPECT_EQ(r.masked, (std::vector<uint8_t>{false, false}));  // 16 <= 16
  EXPECT_EQ(r.band, (std::vector<int>{0, 2}));             // 16/7 = 2
  EXPECT_EQ(r.mc_cycles, 3);
}

TEST(Ehu, EmptyBandStillCostsCycleUnlessSkipping) {
  // Alignments {0, 15}: with sp=5 bands are {0, 3} -- bands 1 and 2 empty.
  const std::vector<Decoded> a = {dec(15), dec(0)};
  const std::vector<Decoded> b = {dec(0), dec(0)};
  EhuOptions opts;
  opts.software_precision = 28;
  opts.safe_precision = 5;
  const EhuResult r = run_ehu(a, b, opts);
  EXPECT_EQ(r.mc_cycles, 4);            // serve loop advances threshold by sp
  EXPECT_EQ(r.mc_cycles_skip_empty, 2);  // only two occupied bands
}

TEST(Ehu, AllMaskedStillOneCycle) {
  const std::vector<Decoded> a = {dec(30), dec(28)};
  const std::vector<Decoded> b = {dec(0), dec(-20)};
  EhuOptions opts;
  opts.software_precision = 8;
  opts.safe_precision = 3;
  const EhuResult r = run_ehu(a, b, opts);
  EXPECT_EQ(r.masked, (std::vector<uint8_t>{false, true}));
  EXPECT_EQ(r.mc_cycles, 1);
}

TEST(Ehu, SingleInputAlwaysOneCycle) {
  const std::vector<Decoded> a = {dec(-7)};
  const std::vector<Decoded> b = {dec(9)};
  EhuOptions opts;
  opts.safe_precision = 3;
  const EhuResult r = run_ehu(a, b, opts);
  EXPECT_EQ(r.max_exp, 2);
  EXPECT_EQ(r.align, (std::vector<int>{0}));
  EXPECT_EQ(r.mc_cycles, 1);
}

TEST(Ehu, PropertyCyclesMatchMaxUnmaskedAlignment) {
  Rng rng(77);
  for (int t = 0; t < 5000; ++t) {
    const int n = static_cast<int>(rng.uniform_int(1, 16));
    std::vector<Decoded> a, b;
    for (int k = 0; k < n; ++k) {
      a.push_back(dec(static_cast<int>(rng.uniform_int(-14, 15))));
      b.push_back(dec(static_cast<int>(rng.uniform_int(-14, 15))));
    }
    EhuOptions opts;
    opts.software_precision = static_cast<int>(rng.uniform_int(4, 32));
    opts.safe_precision = static_cast<int>(rng.uniform_int(1, 20));
    const EhuResult r = run_ehu(a, b, opts);
    int dmax = 0;
    int nonempty = 0;
    std::vector<bool> used(64, false);
    for (int k = 0; k < n; ++k) {
      EXPECT_GE(r.align[static_cast<size_t>(k)], 0);
      if (r.masked[static_cast<size_t>(k)]) {
        EXPECT_GT(r.align[static_cast<size_t>(k)], opts.software_precision);
        EXPECT_EQ(r.band[static_cast<size_t>(k)], -1);
        continue;
      }
      EXPECT_LE(r.align[static_cast<size_t>(k)], opts.software_precision);
      dmax = std::max(dmax, r.align[static_cast<size_t>(k)]);
      const int band = r.band[static_cast<size_t>(k)];
      EXPECT_EQ(band, r.align[static_cast<size_t>(k)] / opts.safe_precision);
      if (!used[static_cast<size_t>(band)]) {
        used[static_cast<size_t>(band)] = true;
        ++nonempty;
      }
    }
    EXPECT_EQ(r.mc_cycles, dmax / opts.safe_precision + 1);
    EXPECT_EQ(r.mc_cycles_skip_empty, std::max(nonempty, 1));
    EXPECT_LE(r.mc_cycles_skip_empty, r.mc_cycles);
  }
}

}  // namespace
}  // namespace mpipu
