// Tests for the zero-skipping sparse extension (paper §5 future work):
// dynamically skipping nibble iterations whose lane products are all zero.
// The invariant: skipping changes cycle counts, never values.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/ipu.h"
#include "core/reference.h"

namespace mpipu {
namespace {

IpuConfig base_cfg(bool skip) {
  IpuConfig cfg;
  cfg.n_inputs = 16;
  cfg.adder_tree_width = 16;
  cfg.software_precision = 28;
  cfg.multi_cycle = true;
  cfg.skip_zero_iterations = skip;
  return cfg;
}

TEST(SparseSkip, ValuesIdenticalWithAndWithoutSkipping) {
  Rng rng(71);
  Ipu plain(base_cfg(false)), skipping(base_cfg(true));
  for (int t = 0; t < 2000; ++t) {
    std::vector<Fp16> a, b;
    for (int k = 0; k < 16; ++k) {
      // Heavy sparsity: many exact zeros and small-magnitude values.
      const double va = rng.bernoulli(0.5) ? 0.0 : rng.normal(0.0, 1.0);
      const double vb = rng.bernoulli(0.3) ? 0.0 : rng.normal(0.0, 0.05);
      a.push_back(Fp16::from_double(va));
      b.push_back(Fp16::from_double(vb));
    }
    plain.reset_accumulator();
    skipping.reset_accumulator();
    plain.fp_accumulate<kFp16Format>(a, b);
    skipping.fp_accumulate<kFp16Format>(a, b);
    EXPECT_TRUE(plain.read_raw() == skipping.read_raw()) << t;
  }
  EXPECT_GT(skipping.stats().skipped_iterations, 0);
  EXPECT_EQ(plain.stats().skipped_iterations, 0);
  EXPECT_LT(skipping.stats().cycles, plain.stats().cycles);
}

TEST(SparseSkip, AllZeroVectorSkipsEverything) {
  Ipu ipu(base_cfg(true));
  const std::vector<Fp16> a(16, Fp16::zero());
  const std::vector<Fp16> b(16, Fp16::from_double(2.0));
  EXPECT_EQ(ipu.fp_accumulate<kFp16Format>(a, b), 0);
  EXPECT_EQ(ipu.stats().skipped_iterations, 9);
  EXPECT_TRUE(ipu.read_raw().is_zero());
}

TEST(SparseSkip, DenseDataSkipsNothing) {
  // Full-magnitude FP16 values have all three nibbles nonzero.
  Ipu ipu(base_cfg(true));
  const std::vector<Fp16> a(16, Fp16::from_bits(0x3FFF));  // 1.1111111111b
  const std::vector<Fp16> b(16, Fp16::from_bits(0x3FFF));
  EXPECT_EQ(ipu.fp_accumulate<kFp16Format>(a, b), 9);
  EXPECT_EQ(ipu.stats().skipped_iterations, 0);
}

TEST(SparseSkip, PowerOfTwoValuesSkipLowNibbles) {
  // 1.0 has magnitude 100_0000_0000b: only the top nibble is nonzero, so
  // only iteration (2,2) survives -- an 8/9 cycle saving.
  Ipu ipu(base_cfg(true));
  const std::vector<Fp16> a(16, Fp16::one()), b(16, Fp16::from_double(2.0));
  EXPECT_EQ(ipu.fp_accumulate<kFp16Format>(a, b), 1);
  EXPECT_EQ(ipu.stats().skipped_iterations, 8);
  EXPECT_EQ(ipu.read_fp<kFp32Format>().to_double(), 32.0);
}

TEST(SparseSkip, IntModeSkipsZeroNibbles) {
  Ipu ipu(base_cfg(true));
  // Small positive INT8 values: the high nibble of every lane is zero,
  // so 3 of the 4 INT8xINT8 iterations vanish.
  std::vector<int32_t> a, b;
  int64_t expect = 0;
  Rng rng(72);
  for (int k = 0; k < 16; ++k) {
    a.push_back(static_cast<int32_t>(rng.uniform_int(0, 15)));
    b.push_back(static_cast<int32_t>(rng.uniform_int(0, 15)));
    expect += int64_t{a.back()} * b.back();
  }
  const int cycles = ipu.int_accumulate(a, b, 8, 8);
  EXPECT_EQ(cycles, 1);
  EXPECT_EQ(ipu.stats().skipped_iterations, 3);
  EXPECT_EQ(ipu.read_int(), expect);
}

TEST(SparseSkip, IntModeValuesUnchangedUnderRandomSparsity) {
  Rng rng(73);
  IpuConfig cfg = base_cfg(true);
  Ipu ipu(cfg);
  for (int t = 0; t < 1000; ++t) {
    ipu.reset_accumulator();
    std::vector<int32_t> a, b;
    for (int k = 0; k < 16; ++k) {
      a.push_back(rng.bernoulli(0.6) ? 0
                                     : static_cast<int32_t>(rng.uniform_int(-128, 127)));
      b.push_back(rng.bernoulli(0.6) ? 0
                                     : static_cast<int32_t>(rng.uniform_int(-128, 127)));
    }
    ipu.int_accumulate(a, b, 8, 8);
    EXPECT_EQ(ipu.read_int(), exact_int_inner_product(a, b)) << t;
  }
}

TEST(SparseSkip, SkipRateGrowsWithSparsity) {
  Rng rng(74);
  double prev_rate = -1.0;
  for (double sparsity : {0.0, 0.3, 0.6, 0.9}) {
    Ipu ipu(base_cfg(true));
    for (int t = 0; t < 300; ++t) {
      std::vector<Fp16> a, b;
      for (int k = 0; k < 16; ++k) {
        a.push_back(Fp16::from_double(rng.bernoulli(sparsity) ? 0.0
                                                              : rng.normal(0.0, 1.0)));
        b.push_back(Fp16::from_double(rng.normal(0.0, 1.0)));
      }
      ipu.reset_accumulator();
      ipu.fp_accumulate<kFp16Format>(a, b);
    }
    const double rate = static_cast<double>(ipu.stats().skipped_iterations) /
                        static_cast<double>(ipu.stats().nibble_iterations);
    // All-lane-zero nibbles are rare until sparsity is high (a skip needs
    // every one of the 16 lanes to vanish), so require monotone
    // non-decreasing rates and a substantial rate only at 90% sparsity.
    EXPECT_GE(rate, prev_rate) << sparsity;
    prev_rate = rate;
  }
  EXPECT_GT(prev_rate, 0.15);  // 90% sparsity skips a good share
}

}  // namespace
}  // namespace mpipu
