// Tests for the compile-once / run-many API (api/compiled_model.h):
//
//  * CompiledModel::run is byte-identical to Session::run -- outputs,
//    per-layer stats, totals, errors, cycles, and the serialized report --
//    for all three decomposition schemes and FP16/INT precision modes;
//  * concurrent execution determinism: M requests on K host threads against
//    ONE CompiledModel are byte-identical to the same requests run
//    serially;
//  * the policy is resolved at compile time and never re-resolved: mutating
//    the policy after compile changes nothing, recompiling does;
//  * compile-time validation: weightless models, INT on the FP-only spatial
//    scheme, missing input dims, collapsing geometry, and run-time shape
//    mismatches are all rejected with std::invalid_argument;
//  * the ConvEngine stats contract: counters accumulate across calls
//    (legacy) until reset_stats(), while CompiledModel reports are per-call.
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "api/session.h"
#include "common/rng.h"

namespace mpipu {
namespace {

DatapathConfig small_datapath(DecompositionScheme scheme) {
  DatapathConfig cfg = DatapathConfig::for_scheme(scheme);
  cfg.n_inputs = 16;
  cfg.adder_tree_width = 16;
  cfg.software_precision = 28;
  cfg.multi_cycle = true;
  return cfg;
}

/// Tiny 3-layer CNN with real weights (mirrors test_session's fixture).
Model tiny_model(Rng& rng) {
  std::vector<ModelLayer> layers(3);
  layers[0].name = "conv1";
  layers[0].filters = random_filters(rng, 6, 3, 3, 3, ValueDist::kNormal, 0.3);
  layers[0].spec.pad = 1;
  layers[0].relu = true;
  layers[1].name = "conv2";
  layers[1].filters = random_filters(rng, 8, 6, 3, 3, ValueDist::kNormal, 0.15);
  layers[1].spec.pad = 1;
  layers[1].relu = true;
  layers[1].pool = PoolOp::kMax2;
  layers[2].name = "head";
  layers[2].filters = random_filters(rng, 4, 8, 1, 1, ValueDist::kNormal, 0.2);
  return Model::from_layers("tiny3", std::move(layers));
}

void expect_tensors_identical(const Tensor& a, const Tensor& b,
                              const char* what) {
  ASSERT_EQ(a.data.size(), b.data.size()) << what;
  for (size_t i = 0; i < a.data.size(); ++i) {
    ASSERT_EQ(a.data[i], b.data[i]) << what << " elt " << i;
  }
}

void expect_reports_identical(const RunReport& a, const RunReport& b) {
  expect_tensors_identical(a.output, b.output, "output");
  expect_tensors_identical(a.reference_output, b.reference_output, "reference");
  EXPECT_EQ(a.totals, b.totals);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (size_t l = 0; l < a.layers.size(); ++l) {
    EXPECT_EQ(a.layers[l].layer, b.layers[l].layer);
    EXPECT_EQ(a.layers[l].precision, b.layers[l].precision);
    EXPECT_EQ(a.layers[l].stats, b.layers[l].stats) << "layer " << l;
  }
  // The serialized documents must agree byte for byte (covers error
  // metrics, estimate payloads, field ordering -- everything).
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(CompiledModelTest, ByteIdenticalToSessionRunAllSchemesAndModes) {
  Rng rng(31);
  const Model model = tiny_model(rng);
  const Tensor input = random_tensor(rng, 3, 12, 12, ValueDist::kHalfNormal, 1.0);

  struct Case {
    DecompositionScheme scheme;
    bool with_int;
    AccumKind accum;
  };
  const Case cases[] = {
      {DecompositionScheme::kTemporal, true, AccumKind::kFp32},
      {DecompositionScheme::kTemporal, false, AccumKind::kFp16},
      {DecompositionScheme::kSerial, true, AccumKind::kFp32},
      {DecompositionScheme::kSpatial, false, AccumKind::kFp32},  // FP-only
  };
  for (const Case& c : cases) {
    RunSpec spec;
    spec.datapath = small_datapath(c.scheme);
    spec.policy = PrecisionPolicy::all_fp16(c.accum);
    if (c.with_int) {
      spec.policy.set_layer("conv2", LayerPrecision::int_bits(8, 8));
    }
    spec.threads = 1;
    Session session(spec);
    const RunReport via_session = session.run(model, input);

    const CompiledModel compiled = session.compile(model, {12, 12});
    const RunReport via_compiled = compiled.run(input);

    EXPECT_EQ(via_compiled.scheme, scheme_name(c.scheme));
    expect_reports_identical(via_compiled, via_session);
    EXPECT_GT(via_compiled.totals.cycles, 0);
  }
}

TEST(CompiledModelTest, WithEstimateMatchesSessionAndBatchComputesItOnce) {
  Rng rng(32);
  const Model model = tiny_model(rng);
  const Tensor input = random_tensor(rng, 3, 12, 12, ValueDist::kHalfNormal, 1.0);
  RunSpec spec;
  spec.datapath = small_datapath(DecompositionScheme::kTemporal);
  spec.tile = big_tile(16, 28);
  spec.sim.sampled_steps = 100;
  Session session(spec);
  RunOptions opts;
  opts.with_estimate = true;

  const RunReport rs = session.run(model, input, opts);
  const CompiledModel compiled = session.compile(model, {12, 12});
  const RunReport rc = compiled.run(input, opts);
  ASSERT_TRUE(rc.estimate.has_value());
  EXPECT_EQ(rc.estimate->total_cycles, rs.estimate->total_cycles);
  EXPECT_EQ(rc.to_json(), rs.to_json());

  const BatchRunReport batch = compiled.run_batch({input, input}, opts);
  ASSERT_EQ(batch.runs.size(), 2u);
  EXPECT_EQ(batch.runs[0].estimate->total_cycles, rs.estimate->total_cycles);
  EXPECT_EQ(batch.runs[1].estimate->total_cycles, rs.estimate->total_cycles);
}

TEST(CompiledModelTest, ConcurrentCallersAreByteIdenticalToSerial) {
  Rng rng(33);
  const Model model = tiny_model(rng);
  constexpr int kRequests = 6;
  constexpr int kThreads = 4;
  std::vector<Tensor> inputs;
  for (int i = 0; i < kRequests; ++i) {
    inputs.push_back(random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0));
  }

  RunSpec spec;
  spec.datapath = small_datapath(DecompositionScheme::kTemporal);
  spec.policy = PrecisionPolicy::all_fp16(AccumKind::kFp32);
  spec.policy.set_layer("conv2", LayerPrecision::int_bits(8, 8));
  spec.threads = 1;  // serving mode: parallelism across requests
  const CompiledModel compiled =
      Session(spec).compile(model, {10, 10});

  // Serial ground truth.
  std::vector<RunReport> serial;
  for (const Tensor& in : inputs) serial.push_back(compiled.run(in));

  // K host threads hammer the one CompiledModel; every request is issued by
  // several threads at once (maximum contention on the shared plan).
  std::vector<std::vector<RunReport>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (const Tensor& in : inputs) {
        per_thread[static_cast<size_t>(t)].push_back(compiled.run(in));
      }
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(per_thread[static_cast<size_t>(t)].size(), serial.size());
    for (size_t r = 0; r < serial.size(); ++r) {
      expect_reports_identical(per_thread[static_cast<size_t>(t)][r],
                               serial[r]);
    }
  }
}

TEST(CompiledModelTest, PolicyIsFrozenAtCompileTime) {
  Rng rng(34);
  const Model model = tiny_model(rng);
  const Tensor input = random_tensor(rng, 3, 8, 8, ValueDist::kHalfNormal, 1.0);

  RunSpec spec;
  spec.datapath = small_datapath(DecompositionScheme::kTemporal);
  spec.policy = PrecisionPolicy::all_fp16(AccumKind::kFp32);
  const CompiledModel compiled =
      CompiledModel::compile(model, spec, {8, 8});
  ASSERT_EQ(compiled.layer_precisions().size(), 3u);
  EXPECT_EQ(compiled.layer_precisions()[1],
            LayerPrecision::fp16(AccumKind::kFp32));
  const RunReport before = compiled.run(input);

  // Mutating the policy object the model was compiled from must not leak
  // into the existing plan: there is no re-resolution after compile.
  spec.policy.set_layer("conv2", LayerPrecision::int_bits(8, 8));
  const RunReport after = compiled.run(input);
  EXPECT_EQ(after.layers[1].precision, "fp16+fp32acc");
  expect_reports_identical(after, before);

  // Recompiling against the mutated spec is how precision changes land.
  const CompiledModel recompiled = CompiledModel::compile(model, spec, {8, 8});
  EXPECT_EQ(recompiled.layer_precisions()[1], LayerPrecision::int_bits(8, 8));
  const RunReport recompiled_run = recompiled.run(input);
  EXPECT_EQ(recompiled_run.layers[1].precision, "int8x8");
  EXPECT_GT(recompiled_run.layers[1].stats.int_ops, 0);
}

TEST(CompiledModelTest, CompileTimeValidationErrors) {
  Rng rng(35);
  const Model model = tiny_model(rng);

  RunSpec spec;
  spec.datapath = small_datapath(DecompositionScheme::kTemporal);
  Session session(spec);

  // Missing input dims.
  EXPECT_THROW(session.compile(model, {}), std::invalid_argument);
  EXPECT_THROW(session.compile(model, {0, 12}), std::invalid_argument);

  // Weightless (shape-table) model.
  Network net;
  net.name = "shapes";
  net.tensor_stats = forward_stats();
  ConvLayer l;
  l.name = "c1";
  l.cin = 4;
  l.cout = 4;
  l.kh = l.kw = 3;
  l.hout = l.wout = 8;
  net.layers.push_back(l);
  EXPECT_THROW(session.compile(Model::from_network(net), {8, 8}),
               std::invalid_argument);

  // INT policy on the FP-only spatial scheme, rejected at compile with a
  // diagnostic naming the layer, the precision, and the scheme.
  RunSpec spatial = spec;
  spatial.datapath = small_datapath(DecompositionScheme::kSpatial);
  spatial.policy.set_layer("conv2", LayerPrecision::int_bits(8, 8));
  try {
    (void)Session(spatial).compile(model, {12, 12});  // must throw, not return
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("conv2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("int8x8"), std::string::npos) << msg;
    EXPECT_NE(msg.find("spatial"), std::string::npos) << msg;
  }

  // Geometry that collapses mid-chain (conv2's maxpool on a 2x2 map gives
  // 1x1; the 3x3 pad-1 conv still works there, but a 4x4 pad-0 kernel
  // cannot fit): build a model whose second layer underflows.
  std::vector<ModelLayer> bad(2);
  bad[0].name = "a";
  bad[0].filters = random_filters(rng, 4, 3, 3, 3, ValueDist::kNormal, 0.2);
  bad[1].name = "b";
  bad[1].filters = random_filters(rng, 4, 4, 4, 4, ValueDist::kNormal, 0.2);
  const Model collapsing = Model::from_layers("collapses", std::move(bad));
  EXPECT_THROW(session.compile(collapsing, {4, 4}), std::invalid_argument);

  // Run-time shape mismatch against the compiled geometry.
  const CompiledModel compiled = session.compile(model, {12, 12});
  EXPECT_THROW(compiled.run(Tensor(3, 10, 10)), std::invalid_argument);
  EXPECT_THROW(compiled.run(Tensor(4, 12, 12)), std::invalid_argument);
  EXPECT_NO_THROW(compiled.run(Tensor(3, 12, 12)));
}

TEST(CompiledModelTest, FingerprintAndMatchesTrackModelContent) {
  Rng rng(36);
  const Model model = tiny_model(rng);
  RunSpec spec;
  spec.datapath = small_datapath(DecompositionScheme::kTemporal);
  const CompiledModel compiled = CompiledModel::compile(model, spec, {8, 8});

  EXPECT_EQ(compiled.fingerprint(), model_fingerprint(model));
  EXPECT_TRUE(compiled.matches(model));

  // A one-ulp weight change flips both the fingerprint and the exact match.
  Model tweaked = model;
  std::vector<ModelLayer> layers = tweaked.layers();
  layers[1].filters.data[0] += 1e-6;
  tweaked = Model::from_layers("tiny3", std::move(layers));
  EXPECT_NE(model_fingerprint(tweaked), compiled.fingerprint());
  EXPECT_FALSE(compiled.matches(tweaked));
}

TEST(CompiledModelTest, CacheDistinguishesModelsByShapeTableStats) {
  // Two from_network models with byte-identical (seeded) weights, names and
  // layer specs but different tensor statistics / recorded shapes wrap
  // different shape tables -- exactly what estimate() consumes.  The
  // compile cache must not serve one model's estimate for the other.
  Network net_a;
  net_a.name = "twin";
  net_a.tensor_stats = forward_stats();
  ConvLayer l;
  l.name = "c1";
  l.cin = 4;
  l.cout = 4;
  l.kh = l.kw = 3;
  l.hout = l.wout = 8;
  net_a.layers.push_back(l);
  Network net_b = net_a;
  net_b.tensor_stats = backward_stats();  // same shapes, wider exponents

  Model model_a = Model::from_network(net_a);
  Model model_b = Model::from_network(net_b);
  model_a.materialize_weights(7);
  model_b.materialize_weights(7);  // same seed + dist: identical weights
  ASSERT_EQ(model_a.layers()[0].filters.data, model_b.layers()[0].filters.data);
  EXPECT_EQ(model_fingerprint(model_a), model_fingerprint(model_b));

  RunSpec spec;
  spec.datapath = small_datapath(DecompositionScheme::kTemporal);
  spec.tile = big_tile(16, 28);
  spec.sim.sampled_steps = 100;
  Session session(spec);
  RunOptions opts;
  opts.with_estimate = true;
  const Tensor input(4, 8, 8);
  const RunReport ra = session.run(model_a, input, opts);
  const RunReport rb = session.run(model_b, input, opts);
  // matches() (the exact second stage) must have rejected the cache hit:
  // backward stats spread alignments far wider, so the estimates differ.
  EXPECT_NE(ra.estimate->total_cycles, rb.estimate->total_cycles);
  EXPECT_FALSE(session.compile(model_a, {8, 8}).matches(model_b));
}

TEST(CompiledModelTest, SessionCompileCacheReusesAndRecompiles) {
  Rng rng(37);
  const Model model = tiny_model(rng);
  const Tensor a = random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0);
  const Tensor b = random_tensor(rng, 3, 12, 12, ValueDist::kHalfNormal, 1.0);

  RunSpec spec;
  spec.datapath = small_datapath(DecompositionScheme::kTemporal);
  Session session(spec);
  // Same model at two input geometries, interleaved: both plans stay
  // cached, outputs stay deterministic across repeats.
  const RunReport a1 = session.run(model, a);
  const RunReport b1 = session.run(model, b);
  const RunReport a2 = session.run(model, a);
  const RunReport b2 = session.run(model, b);
  expect_reports_identical(a2, a1);
  expect_reports_identical(b2, b1);
}

TEST(ConvEngineStats, AccumulateAcrossCallsUntilReset) {
  Rng rng(38);
  const Tensor input = random_tensor(rng, 4, 6, 6, ValueDist::kNormal, 1.0);
  const FilterBank filters =
      random_filters(rng, 4, 4, 3, 3, ValueDist::kNormal, 0.2);
  ConvSpec spec;
  spec.pad = 1;

  ConvEngineConfig ec;
  ec.datapath = DatapathConfig::for_scheme(DecompositionScheme::kTemporal);
  ec.threads = 1;
  ConvEngine engine(ec);

  engine.conv_fp16(input, filters, spec);
  const DatapathStats once = engine.stats();
  EXPECT_GT(once.fp_ops, 0);

  // Legacy contract: counters accumulate silently across calls.
  engine.conv_fp16(input, filters, spec);
  DatapathStats twice_expected = once;
  twice_expected += once;
  EXPECT_EQ(engine.stats(), twice_expected);

  // reset_stats zeroes the aggregate without touching numeric behaviour.
  engine.reset_stats();
  EXPECT_EQ(engine.stats(), DatapathStats{});
  const Tensor again = engine.conv_fp16(input, filters, spec);
  EXPECT_EQ(engine.stats(), once);
  (void)again;
}

}  // namespace
}  // namespace mpipu
