// The chaos wall: the serving runtime's fault-tolerance contract under
// randomized fault schedules, hostile traffic, and shutdowns racing it all.
//
// The contract (serving_runtime.h):
//   1. EXACTLY-ONCE, TYPED: every submitted future resolves exactly once
//      with a typed ServeResult -- .get() never throws, whatever faults
//      fire.  (A double-resolve would abort inside std::promise, so a
//      passing run is a proof, not a spot check.)
//   2. CONSERVATION: submitted == completed + every shed counter + failed
//      + in_flight, in EVERY metrics() snapshot -- sampled concurrently
//      while the chaos runs, and exact (in_flight == 0) at rest.
//   3. RECOVERY: once the fault plan is disabled, the breaker closes via
//      its half-open probe and the runtime returns to full service.
//
// Each scenario derives everything -- server config, fault schedule,
// traffic mix (bad geometry, zero deadlines, duplicate inputs), shutdown
// timing -- from one seed, and the wall runs every seed under both kDrain
// and kAbort.  Assertions are structural (counts that add up, typed
// reasons), never timing-based: the wall must pass on any scheduler,
// including under ThreadSanitizer's ~10x slowdown.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "serve/fault.h"
#include "serve/serve_client.h"
#include "serve/serving_runtime.h"

namespace mpipu::serve {
namespace {

DatapathConfig chaos_datapath() {
  DatapathConfig cfg = DatapathConfig::for_scheme(DecompositionScheme::kTemporal);
  cfg.n_inputs = 16;
  cfg.adder_tree_width = 16;
  cfg.software_precision = 28;
  cfg.multi_cycle = true;
  return cfg;
}

RunSpec chaos_spec() {
  RunSpec spec;
  spec.datapath = chaos_datapath();
  spec.policy = PrecisionPolicy::all_fp16(AccumKind::kFp32);
  spec.threads = 1;
  return spec;
}

Model tiny_model(Rng& rng, const std::string& name) {
  std::vector<ModelLayer> layers(2);
  layers[0].name = "conv1";
  layers[0].filters = random_filters(rng, 4, 3, 3, 3, ValueDist::kNormal, 0.3);
  layers[0].spec.pad = 1;
  layers[0].relu = true;
  layers[1].name = "head";
  layers[1].filters = random_filters(rng, 2, 4, 1, 1, ValueDist::kNormal, 0.2);
  return Model::from_layers(name, std::move(layers));
}

/// One seeded chaos scenario: randomized config + fault schedule + traffic,
/// shut down mid-stream with `mode`, then audit every outcome.
void run_chaos_scenario(uint64_t seed, ServingRuntime::Shutdown mode) {
  SCOPED_TRACE("seed " + std::to_string(seed) + ", " +
               (mode == ServingRuntime::Shutdown::kDrain ? "drain" : "abort"));
  Rng rng(9000 + seed);

  // Scenario shape, all seed-derived.
  ServerConfig cfg;
  cfg.workers = 1 + static_cast<int>(seed % 3);
  cfg.queue_capacity = (seed % 2 == 0) ? 8 : 32;
  cfg.max_batch = 1 << (seed % 3);  // 1, 2, 4
  cfg.batch_window_s = (seed % 2 == 0) ? 0.0 : 0.001;
  cfg.coalesce_identical = (seed % 3 != 2);
  cfg.validate_at_admission = (seed % 2 == 0);
  cfg.breaker.failure_threshold = (seed % 2 == 0) ? 3 : 0;
  cfg.breaker.open_cooldown_s = 0.005;
  cfg.stall_budget_s = (seed % 2 == 0) ? 0.0005 : 0.0;
  FaultPlan::Config fault_cfg;
  fault_cfg.seed = seed;
  fault_cfg.throw_prob = 0.15;
  fault_cfg.delay_prob = 0.15;
  fault_cfg.delay_s = 0.0005;
  fault_cfg.window_stall_s = 0.0002;
  cfg.faults = std::make_shared<FaultPlan>(fault_cfg);

  ServingRuntime rt(chaos_spec(), cfg);
  const ModelHandle ha = rt.load(tiny_model(rng, "chaos_a"), 10, 10);
  const ModelHandle hb = rt.load(tiny_model(rng, "chaos_b"), 10, 10);

  // Traffic material: a small catalog (duplicates exercise coalescing) and
  // two malformed tensors (wrong shape / torn data).
  std::vector<Tensor> goods;
  for (int i = 0; i < 3; ++i) {
    goods.push_back(random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0));
  }
  std::vector<Tensor> bads;
  bads.push_back(random_tensor(rng, 3, 8, 8, ValueDist::kHalfNormal, 1.0));
  bads.push_back(goods[0]);
  bads.back().data.pop_back();

  // Concurrent conservation audit: every snapshot taken WHILE the chaos
  // runs must balance.
  std::atomic<bool> stop_sampling{false};
  std::atomic<uint64_t> snapshots{0}, violations{0};
  std::thread sampler([&] {
    while (!stop_sampling.load(std::memory_order_acquire)) {
      if (!rt.metrics().conserved()) {
        violations.fetch_add(1, std::memory_order_acq_rel);
      }
      snapshots.fetch_add(1, std::memory_order_acq_rel);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // Three submitter threads, each with its own seeded request mix.  The
  // futures are harvested afterwards; submissions racing the shutdown are
  // part of the scenario (they must shed kShutdown, typed).
  constexpr int kThreads = 3;
  constexpr int kPerThread = 24;
  std::vector<std::vector<std::future<ServeResult>>> futs(kThreads);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      Rng trng(seed * 100 + static_cast<uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        const ModelHandle h = trng.uniform_int(0, 1) == 0 ? ha : hb;
        const bool bad = trng.uniform_int(0, 7) == 0;
        const Tensor& input =
            bad ? bads[static_cast<size_t>(trng.uniform_int(0, 1))]
                : goods[static_cast<size_t>(trng.uniform_int(0, 2))];
        SubmitOptions opts;
        const int roll = trng.uniform_int(0, 9);
        if (roll == 0) {
          opts.timeout_s = 0.0;  // expired on arrival
        } else if (roll <= 2) {
          opts.timeout_s = 0.002;
        }
        futs[static_cast<size_t>(t)].push_back(rt.submit(h, input, opts));
        if (trng.uniform_int(0, 3) == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(
              static_cast<int64_t>(trng.uniform_int(0, 300))));
        }
      }
    });
  }

  // Let traffic build, then shut down UNDER the submitters.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  rt.shutdown(mode);
  for (std::thread& s : submitters) s.join();

  // Audit: every future resolves (get() returning at all proves it; a
  // typed value proves no exception ever reached a promise).
  std::map<RejectReason, uint64_t> tally;
  for (auto& per_thread : futs) {
    for (auto& f : per_thread) {
      const ServeResult r = f.get();
      ++tally[r.rejected];
      if (r.ok()) {
        EXPECT_GT(r.report.output.data.size(), 0u);
        EXPECT_GE(r.batch_size, 1);
      } else {
        EXPECT_EQ(r.batch_size, 0);
        if (r.rejected == RejectReason::kBadInput ||
            r.rejected == RejectReason::kExecError) {
          EXPECT_FALSE(r.error.empty());
        }
      }
      if (mode == ServingRuntime::Shutdown::kDrain) {
        // A drain never abandons an accepted request: kShutdown results can
        // only come from submissions made after stopping_ flipped, which
        // resolve at submit() -- so no drain-specific check here; the
        // conservation audit below covers the accounting.
      }
    }
  }
  stop_sampling.store(true, std::memory_order_release);
  sampler.join();

  EXPECT_EQ(violations.load(), 0u)
      << "conservation violated in " << violations.load() << " of "
      << snapshots.load() << " concurrent snapshots";
  EXPECT_GT(snapshots.load(), 0u);

  // The final ledger: at rest, the runtime's counters must reproduce the
  // per-reason tally of what the futures actually delivered -- exactly.
  const ServerMetrics m = rt.metrics();
  EXPECT_TRUE(m.conserved());
  EXPECT_EQ(m.in_flight, 0u);
  EXPECT_EQ(m.submitted, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(m.completed, tally[RejectReason::kNone]);
  EXPECT_EQ(m.shed_queue_full, tally[RejectReason::kQueueFull]);
  EXPECT_EQ(m.shed_deadline, tally[RejectReason::kDeadline]);
  EXPECT_EQ(m.shed_shutdown, tally[RejectReason::kShutdown]);
  EXPECT_EQ(m.shed_bad_input, tally[RejectReason::kBadInput]);
  EXPECT_EQ(m.shed_unhealthy, tally[RejectReason::kUnhealthy]);
  EXPECT_EQ(m.failed, tally[RejectReason::kExecError]);
}

TEST(ServeChaos, RandomizedFaultSchedulesUnderDrain) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    run_chaos_scenario(seed, ServingRuntime::Shutdown::kDrain);
  }
}

TEST(ServeChaos, RandomizedFaultSchedulesUnderAbort) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    run_chaos_scenario(seed, ServingRuntime::Shutdown::kAbort);
  }
}

TEST(ServeChaos, RuntimeReturnsToFullServiceAfterFaultsClear) {
  Rng rng(9100);
  const Model model = tiny_model(rng, "chaos_recovery");
  const Tensor input = random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0);

  ManualClock clock;
  auto faults = std::make_shared<FaultPlan>(
      FaultPlan::Config{.seed = 7, .throw_prob = 1.0});
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 1;
  cfg.breaker.failure_threshold = 2;
  cfg.breaker.open_cooldown_s = 1.0;
  cfg.faults = faults;
  cfg.clock = &clock;
  ServingRuntime rt(chaos_spec(), cfg);
  const ModelHandle h = rt.load(model, 10, 10);

  // Fault phase: executions fail until the breaker opens, then submissions
  // shed kUnhealthy without touching a worker.
  EXPECT_EQ(rt.serve(h, input).rejected, RejectReason::kExecError);
  EXPECT_EQ(rt.serve(h, input).rejected, RejectReason::kExecError);
  EXPECT_EQ(rt.serve(h, input).rejected, RejectReason::kUnhealthy);

  // Faults clear, the cooldown elapses: the half-open probe succeeds and
  // service is FULLY restored -- a long run of consecutive successes with
  // the breaker closed throughout.
  faults->set_enabled(false);
  clock.advance(cfg.breaker.open_cooldown_s + 0.1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(rt.serve(h, input).ok()) << "post-recovery request " << i;
  }
  const ServerMetrics m = rt.metrics();
  EXPECT_EQ(m.completed, 20u);
  ASSERT_EQ(m.models.size(), 1u);
  EXPECT_EQ(m.models[0].state, BreakerState::kClosed);
  EXPECT_EQ(m.models[0].times_opened, 1u);  // never re-opened after recovery
  EXPECT_TRUE(m.conserved());
  EXPECT_EQ(m.in_flight, 0u);
}

TEST(ServeChaos, RetryClientRidesOutTransientChaos) {
  Rng rng(9200);
  const Model model = tiny_model(rng, "chaos_client");
  std::vector<Tensor> catalog;
  for (int i = 0; i < 2; ++i) {
    catalog.push_back(random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0));
  }

  // Moderate chaos, breaker off: every failure surfaces to the client,
  // whose retry budget has to absorb it.
  auto faults = std::make_shared<FaultPlan>(FaultPlan::Config{
      .seed = 13, .throw_prob = 0.3, .delay_prob = 0.2, .delay_s = 0.0003});
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = 4;
  cfg.breaker.failure_threshold = 0;
  cfg.faults = faults;
  ServingRuntime rt(chaos_spec(), cfg);
  const ModelHandle h = rt.load(model, 10, 10);

  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_s = 0.0002;
  policy.max_backoff_s = 0.002;

  // One client per thread (the documented threading model).
  constexpr int kThreads = 3;
  constexpr int kCalls = 12;
  std::atomic<uint64_t> ok_calls{0}, typed_rejects{0};
  std::vector<std::thread> threads;
  std::vector<ClientStats> stats(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ServeClient client(rt, policy, /*jitter_seed=*/100 + static_cast<uint64_t>(t));
      Rng trng(300 + static_cast<uint64_t>(t));
      for (int i = 0; i < kCalls; ++i) {
        const ServeResult r = client.call(
            h, catalog[static_cast<size_t>(trng.uniform_int(0, 1))]);
        if (r.ok()) {
          ok_calls.fetch_add(1, std::memory_order_acq_rel);
        } else {
          // Gave up after max_attempts: still a typed rejection.
          EXPECT_EQ(r.rejected, RejectReason::kExecError);
          typed_rejects.fetch_add(1, std::memory_order_acq_rel);
        }
      }
      stats[static_cast<size_t>(t)] = client.stats();
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(ok_calls.load() + typed_rejects.load(),
            static_cast<uint64_t>(kThreads * kCalls));
  // P(6 consecutive throws) ~ 0.03% per call at throw = 0.3 -- retries make
  // the overwhelming majority of calls land.
  EXPECT_GT(ok_calls.load(), static_cast<uint64_t>(kThreads * kCalls / 2));
  uint64_t attempts = 0, calls = 0;
  for (const ClientStats& s : stats) {
    EXPECT_EQ(s.calls, static_cast<uint64_t>(kCalls));
    EXPECT_GE(s.attempts, s.calls);
    EXPECT_EQ(s.retries + s.calls + s.hedges, s.attempts);
    attempts += s.attempts;
    calls += s.calls;
  }
  EXPECT_GE(attempts, calls);

  const ServerMetrics m = rt.metrics();
  EXPECT_TRUE(m.conserved());
  EXPECT_EQ(m.in_flight, 0u);
  EXPECT_EQ(m.submitted, attempts);
  EXPECT_EQ(m.completed, ok_calls.load());
}

}  // namespace
}  // namespace mpipu::serve
