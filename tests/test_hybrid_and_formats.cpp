// Tests for Appendix B features: hybrid FP x INT operation and the custom
// FP formats (BFloat16, TF32) on the same nibble datapath.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/ipu.h"
#include "core/reference.h"

namespace mpipu {
namespace {

AccumulatorConfig unbounded_acc() {
  AccumulatorConfig acc;
  acc.frac_bits = 100;
  acc.lossless = true;
  return acc;
}

// --- Hybrid FP16 x INT -------------------------------------------------------

class HybridTest : public ::testing::TestWithParam<int> {};  // param: b_bits

TEST_P(HybridTest, MatchesExactRealReference) {
  const int b_bits = GetParam();
  Rng rng(static_cast<uint64_t>(b_bits) * 77);
  IpuConfig cfg;
  cfg.n_inputs = 16;
  cfg.adder_tree_width = 38;
  cfg.software_precision = 58;
  cfg.multi_cycle = false;
  cfg.accumulator = unbounded_acc();
  Ipu ipu(cfg);
  for (int t = 0; t < 1000; ++t) {
    std::vector<Fp16> a;
    std::vector<int32_t> q;
    double expect = 0.0;
    for (int k = 0; k < 16; ++k) {
      a.push_back(Fp16::from_double(rng.normal(0.0, 2.0)));
      q.push_back(static_cast<int32_t>(
          rng.uniform_int(-(int64_t{1} << (b_bits - 1)), (int64_t{1} << (b_bits - 1)) - 1)));
      expect += a.back().to_double() * q.back();
    }
    ipu.reset_accumulator();
    const int cycles = ipu.fp_int_accumulate<kFp16Format>(a, q, b_bits);
    EXPECT_EQ(cycles, 3 * int_nibble_count(b_bits));
    // The wide datapath is lossless: result equals the real-valued sum
    // exactly (it fits a double here: 11-bit x b_bits products).
    EXPECT_DOUBLE_EQ(ipu.read_raw().to_double_value(), expect) << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, HybridTest, ::testing::Values(4, 8, 12),
                         [](const auto& inst) {
                           return "int" + std::to_string(inst.param);
                         });

TEST(HybridTest2, UnsignedWeights) {
  Rng rng(99);
  IpuConfig cfg;
  cfg.n_inputs = 8;
  cfg.adder_tree_width = 38;
  cfg.software_precision = 58;
  cfg.multi_cycle = false;
  cfg.accumulator = unbounded_acc();
  Ipu ipu(cfg);
  std::vector<Fp16> a;
  std::vector<int32_t> q;
  double expect = 0.0;
  for (int k = 0; k < 8; ++k) {
    a.push_back(Fp16::from_double(rng.normal(0.0, 1.0)));
    q.push_back(static_cast<int32_t>(rng.uniform_int(0, 255)));
    expect += a.back().to_double() * q.back();
  }
  ipu.fp_int_accumulate<kFp16Format>(a, q, 8, /*b_unsigned=*/true);
  EXPECT_DOUBLE_EQ(ipu.read_raw().to_double_value(), expect);
}

TEST(HybridTest2, McModeAgreesWithSingleCycle) {
  Rng rng(100);
  IpuConfig mc;
  mc.n_inputs = 8;
  mc.adder_tree_width = 12;
  mc.software_precision = 28;
  mc.multi_cycle = true;
  mc.accumulator = unbounded_acc();
  IpuConfig sc = mc;
  sc.adder_tree_width = 38;
  sc.multi_cycle = false;
  Ipu ipu_mc(mc), ipu_sc(sc);
  for (int t = 0; t < 500; ++t) {
    std::vector<Fp16> a;
    std::vector<int32_t> q;
    for (int k = 0; k < 8; ++k) {
      a.push_back(Fp16::from_double(rng.laplace(0.0, 4.0)));
      q.push_back(static_cast<int32_t>(rng.uniform_int(-8, 7)));
    }
    ipu_mc.reset_accumulator();
    ipu_sc.reset_accumulator();
    ipu_mc.fp_int_accumulate<kFp16Format>(a, q, 4);
    ipu_sc.fp_int_accumulate<kFp16Format>(a, q, 4);
    EXPECT_TRUE(ipu_mc.read_raw() == ipu_sc.read_raw()) << t;
  }
}

TEST(HybridTest2, Int4WeightsCostThreeIterations) {
  // FP16 x INT4: 3 FP nibbles x 1 INT nibble = 3 iterations -- a third of
  // the FP16 x FP16 cost, the hybrid efficiency the paper motivates.
  IpuConfig cfg;
  cfg.n_inputs = 4;
  Ipu ipu(cfg);
  const std::vector<Fp16> a(4, Fp16::one());
  const std::vector<int32_t> q(4, 3);
  EXPECT_EQ(ipu.fp_int_accumulate<kFp16Format>(a, q, 4), 3);
  EXPECT_EQ(ipu.read_fp<kFp32Format>().to_double(), 12.0);
}

// --- BFloat16 / TF32 ----------------------------------------------------------

template <typename T>
class CustomFormatTest : public ::testing::Test {};

using CustomFormats = ::testing::Types<Bf16, Tf32>;
TYPED_TEST_SUITE(CustomFormatTest, CustomFormats);

TYPED_TEST(CustomFormatTest, WideDatapathMatchesExactReference) {
  // Appendix B: supporting 8-bit exponents only needs a wider EHU range;
  // the nibble datapath is unchanged.  Keep exponents moderate so the exact
  // FixedPoint reference stays within int128.
  Rng rng(200);
  IpuConfig cfg;
  cfg.n_inputs = 8;
  cfg.adder_tree_width = 40;
  cfg.software_precision = 40;
  cfg.multi_cycle = false;
  cfg.accumulator.frac_bits = 100;
  cfg.accumulator.lossless = true;
  Ipu ipu(cfg);
  for (int t = 0; t < 2000; ++t) {
    std::vector<TypeParam> a, b;
    for (int k = 0; k < 8; ++k) {
      a.push_back(TypeParam::from_double(rng.laplace(0.0, 8.0)));
      b.push_back(TypeParam::from_double(rng.laplace(0.0, 8.0)));
    }
    ipu.reset_accumulator();
    ipu.fp_accumulate<TypeParam::format>(a, b);
    EXPECT_TRUE(ipu.read_raw() == exact_fp_inner_product<TypeParam::format>(a, b)) << t;
  }
}

TYPED_TEST(CustomFormatTest, IterationCountMatchesNibbleCount) {
  IpuConfig cfg;
  cfg.n_inputs = 2;
  Ipu ipu(cfg);
  const std::vector<TypeParam> a(2, TypeParam::one()), b(2, TypeParam::one());
  const int k = fp_nibble_count(TypeParam::format);
  EXPECT_EQ(ipu.fp_accumulate<TypeParam::format>(a, b), k * k);
}

TEST(CustomFormats, Bf16CheaperThanFp16AndTf32) {
  // BF16's 8-bit significand fits 2 nibbles -> 4 iterations vs 9.
  IpuConfig cfg;
  cfg.n_inputs = 1;
  Ipu ipu(cfg);
  const std::vector<Bf16> b16(1, Bf16::one());
  const std::vector<Tf32> t32(1, Tf32::one());
  const std::vector<Fp16> f16(1, Fp16::one());
  EXPECT_EQ(ipu.fp_accumulate<kBf16Format>(b16, b16), 4);
  EXPECT_EQ(ipu.fp_accumulate<kTf32Format>(t32, t32), 9);
  EXPECT_EQ(ipu.fp_accumulate<kFp16Format>(f16, f16), 9);
}

TEST(CustomFormats, ExponentRangeRequiresWiderEhu) {
  // The BF16/TF32 product-exponent span is ~2x FP16's 58 bits: the reason
  // Appendix B says "larger shift units and adders might be needed".
  const int fp16_span = 2 * (kFp16Format.max_exp() - kFp16Format.min_exp());
  const int bf16_span = 2 * (kBf16Format.max_exp() - kBf16Format.min_exp());
  EXPECT_EQ(fp16_span, 58);
  EXPECT_GT(bf16_span, 2 * fp16_span);
}

}  // namespace
}  // namespace mpipu
