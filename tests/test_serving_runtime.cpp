// Tests for the serving runtime (src/serve): the semantics the header
// promises, pinned under real thread interleavings.
//
//  * byte-identity: everything served through the queue/batcher -- batched,
//    coalesced or alone -- matches a direct CompiledModel::run of the same
//    input exactly (outputs AND per-layer stats);
//  * overload: a saturating client against a tiny bounded queue sheds
//    kQueueFull, and completed + shed always accounts for every submission;
//  * deadlines: an expired request is shed at dispatch without executing;
//  * shutdown: kDrain completes every accepted request, kAbort resolves the
//    still-queued ones as kShutdown, submissions after shutdown are
//    rejected immediately;
//  * the load() plan cache: content dedup, LRU eviction, handle lifetime;
//  * fault tolerance: admission-time bad-input shedding, per-request
//    isolation of a poisoned batch, the circuit breaker's full
//    open/half-open/closed cycle under a ManualClock, the watchdog's stall
//    accounting, and shutdown racing a lingering batch window;
//  * the conservation invariant -- every submission accounted for, exactly
//    once, in every metrics() snapshot including mid-flight ones;
//  * FaultPlan schedule determinism and the MPIPU_FAULT grammar;
//  * ServeClient retry/backoff/give-up behavior (virtual clock: the whole
//    backoff schedule runs in zero wall time);
//  * traffic synthesis (open-loop schedules) and the shared nearest-rank
//    percentile helper.
//
// Timing-dependent assertions are deliberately loose (>= 1 shed, counts
// that add up) -- the tests must pass on any scheduler.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/percentile.h"
#include "common/rng.h"
#include "serve/fault.h"
#include "serve/health.h"
#include "serve/serve_client.h"
#include "serve/serving_runtime.h"
#include "serve/traffic.h"

namespace mpipu::serve {
namespace {

DatapathConfig small_datapath() {
  DatapathConfig cfg = DatapathConfig::for_scheme(DecompositionScheme::kTemporal);
  cfg.n_inputs = 16;
  cfg.adder_tree_width = 16;
  cfg.software_precision = 28;
  cfg.multi_cycle = true;
  return cfg;
}

RunSpec serving_spec() {
  RunSpec spec;
  spec.datapath = small_datapath();
  spec.policy = PrecisionPolicy::all_fp16(AccumKind::kFp32);
  spec.threads = 1;
  return spec;
}

/// Small 2-layer CNN (fast: the default request payload).
Model fast_model(Rng& rng, const std::string& name = "serve_fast") {
  std::vector<ModelLayer> layers(2);
  layers[0].name = "conv1";
  layers[0].filters = random_filters(rng, 4, 3, 3, 3, ValueDist::kNormal, 0.3);
  layers[0].spec.pad = 1;
  layers[0].relu = true;
  layers[1].name = "head";
  layers[1].filters = random_filters(rng, 2, 4, 1, 1, ValueDist::kNormal, 0.2);
  return Model::from_layers(name, std::move(layers));
}

/// Wider 3-layer CNN (slow: used to hold a worker busy while the queue
/// builds up behind it).
Model slow_model(Rng& rng) {
  std::vector<ModelLayer> layers(3);
  layers[0].name = "conv1";
  layers[0].filters =
      random_filters(rng, 16, 3, 3, 3, ValueDist::kNormal, 0.3);
  layers[0].spec.pad = 1;
  layers[0].relu = true;
  layers[1].name = "conv2";
  layers[1].filters =
      random_filters(rng, 16, 16, 3, 3, ValueDist::kNormal, 0.15);
  layers[1].spec.pad = 1;
  layers[1].relu = true;
  layers[2].name = "head";
  layers[2].filters =
      random_filters(rng, 4, 16, 1, 1, ValueDist::kNormal, 0.2);
  return Model::from_layers("serve_slow", std::move(layers));
}

TEST(ServingRuntime, BatchedAndCoalescedResultsAreByteIdentical) {
  Rng rng(7001);
  const Model slow = slow_model(rng);
  const Model fast = fast_model(rng);
  const Tensor plug = random_tensor(rng, 3, 16, 16, ValueDist::kHalfNormal, 1.0);
  std::vector<Tensor> catalog;
  for (int i = 0; i < 3; ++i) {
    catalog.push_back(random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0));
  }

  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 4;
  cfg.queue_capacity = 64;
  ServingRuntime rt(serving_spec(), cfg);
  const ModelHandle hs = rt.load(slow, 16, 16);
  const ModelHandle hf = rt.load(fast, 10, 10);

  // Direct baselines (no queue, no batcher) from the same compiled plans.
  std::vector<RunReport> direct;
  for (const Tensor& in : catalog) {
    direct.push_back(rt.model(hf)->run(in, cfg.run_options));
  }

  // The plug occupies the worker while the 12 fast requests pile up, so
  // batches (and in-batch duplicates) form deterministically.
  std::future<ServeResult> plug_fut = rt.submit(hs, plug);
  constexpr int kRequests = 12;
  std::vector<std::future<ServeResult>> futs;
  for (int i = 0; i < kRequests; ++i) {
    futs.push_back(rt.submit(hf, catalog[static_cast<size_t>(i % 3)]));
  }

  ASSERT_TRUE(plug_fut.get().ok());
  int batched = 0, coalesced = 0;
  for (int i = 0; i < kRequests; ++i) {
    ServeResult r = futs[static_cast<size_t>(i)].get();
    ASSERT_TRUE(r.ok()) << "request " << i << " rejected: "
                        << reject_reason_name(r.rejected);
    const RunReport& want = direct[static_cast<size_t>(i % 3)];
    ASSERT_EQ(r.report.output.data.size(), want.output.data.size());
    EXPECT_EQ(r.report.output.data, want.output.data) << "request " << i;
    // Per-layer stats byte-identity (via the shared JSON emitter).
    ASSERT_EQ(r.report.layers.size(), want.layers.size());
    EXPECT_EQ(to_json_value(r.report.totals).dump(0),
              to_json_value(want.totals).dump(0));
    if (r.batch_size > 1) ++batched;
    if (r.coalesced) ++coalesced;
    EXPECT_GE(r.total_s, r.queue_wait_s);
  }
  // With the worker plugged, the 12 queued requests must have formed
  // multi-request batches; 4 requests over a 3-input catalog guarantees a
  // duplicate in every full batch.
  EXPECT_GT(batched, 0);
  EXPECT_GT(coalesced, 0);

  const ServerMetrics m = rt.metrics();
  EXPECT_EQ(m.submitted, static_cast<uint64_t>(kRequests) + 1);
  EXPECT_EQ(m.completed, static_cast<uint64_t>(kRequests) + 1);
  EXPECT_EQ(m.coalesced, static_cast<uint64_t>(coalesced));
  EXPECT_GT(m.batches, 0u);
  EXPECT_GE(m.queue_high_water, 2u);
  EXPECT_EQ(m.latency.count, m.completed);
  EXPECT_GE(m.latency.p99_s, m.latency.p50_s);
}

TEST(ServingRuntime, CoalescingOffStillByteIdentical) {
  Rng rng(7002);
  const Model fast = fast_model(rng);
  const Tensor input = random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0);

  ServerConfig cfg;
  cfg.coalesce_identical = false;
  cfg.max_batch = 4;
  ServingRuntime rt(serving_spec(), cfg);
  const ModelHandle h = rt.load(fast, 10, 10);
  const RunReport want = rt.model(h)->run(input, cfg.run_options);

  std::vector<std::future<ServeResult>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(rt.submit(h, input));
  for (auto& f : futs) {
    ServeResult r = f.get();
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.coalesced);
    EXPECT_EQ(r.report.output.data, want.output.data);
  }
  EXPECT_EQ(rt.metrics().coalesced, 0u);
}

TEST(ServingRuntime, SaturatingClientShedsQueueFull) {
  Rng rng(7003);
  const Model slow = slow_model(rng);
  const Tensor input = random_tensor(rng, 3, 16, 16, ValueDist::kHalfNormal, 1.0);

  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 2;
  cfg.max_batch = 1;  // drain one at a time: the queue stays full
  ServingRuntime rt(serving_spec(), cfg);
  const ModelHandle h = rt.load(slow, 16, 16);

  constexpr int kRequests = 24;
  std::vector<std::future<ServeResult>> futs;
  for (int i = 0; i < kRequests; ++i) futs.push_back(rt.submit(h, input));

  uint64_t ok = 0, shed = 0;
  for (auto& f : futs) {
    const ServeResult r = f.get();
    if (r.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(r.rejected, RejectReason::kQueueFull);
      EXPECT_EQ(r.batch_size, 0);
      ++shed;
    }
  }
  // Submission is microseconds per request against a multi-millisecond
  // service time and a 2-deep queue: shedding is unavoidable, and at least
  // the in-flight + queued requests complete.
  EXPECT_GE(shed, 1u);
  EXPECT_GE(ok, 1u);
  EXPECT_EQ(ok + shed, static_cast<uint64_t>(kRequests));

  const ServerMetrics m = rt.metrics();
  EXPECT_EQ(m.submitted, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(m.completed, ok);
  EXPECT_EQ(m.shed_queue_full, shed);
  EXPECT_LE(m.queue_high_water, cfg.queue_capacity);
}

TEST(ServingRuntime, PerModelAdmissionCapIsolatesAGreedyModel) {
  Rng rng(7004);
  const Model slow = slow_model(rng);
  const Model fast = fast_model(rng);
  const Tensor slow_in = random_tensor(rng, 3, 16, 16, ValueDist::kHalfNormal, 1.0);
  const Tensor fast_in = random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0);

  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 64;
  cfg.per_model_queue_cap = 2;
  cfg.max_batch = 1;
  ServingRuntime rt(serving_spec(), cfg);
  const ModelHandle hs = rt.load(slow, 16, 16);
  const ModelHandle hf = rt.load(fast, 10, 10);

  // The greedy model floods; its queue share is capped at 2, so the fast
  // model's request is still admitted.
  std::vector<std::future<ServeResult>> greedy;
  for (int i = 0; i < 16; ++i) greedy.push_back(rt.submit(hs, slow_in));
  std::future<ServeResult> precious = rt.submit(hf, fast_in);

  EXPECT_TRUE(precious.get().ok());
  uint64_t shed = 0;
  for (auto& f : greedy) {
    if (!f.get().ok()) ++shed;
  }
  EXPECT_GE(shed, 1u);
  EXPECT_EQ(rt.metrics().shed_queue_full, shed);
}

TEST(ServingRuntime, ExpiredDeadlineShedsWithoutExecuting) {
  Rng rng(7005);
  const Model slow = slow_model(rng);
  const Model fast = fast_model(rng);
  const Tensor slow_in = random_tensor(rng, 3, 16, 16, ValueDist::kHalfNormal, 1.0);
  const Tensor fast_in = random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0);

  ServerConfig cfg;
  cfg.workers = 1;
  ServingRuntime rt(serving_spec(), cfg);
  const ModelHandle hs = rt.load(slow, 16, 16);
  const ModelHandle hf = rt.load(fast, 10, 10);

  // The slow request occupies the worker; the zero-timeout fast request
  // expires while queued (it cannot join the slow batch: batches are
  // same-model) and must be shed at dispatch, not executed.
  std::future<ServeResult> blocker = rt.submit(hs, slow_in);
  SubmitOptions expired;
  expired.timeout_s = 0.0;
  const ServeResult r = rt.serve(hf, fast_in, expired);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.rejected, RejectReason::kDeadline);
  EXPECT_TRUE(blocker.get().ok());
  EXPECT_EQ(rt.metrics().shed_deadline, 1u);

  // A generous deadline passes untouched.
  SubmitOptions plenty;
  plenty.timeout_s = 60.0;
  EXPECT_TRUE(rt.serve(hf, fast_in, plenty).ok());
}

TEST(ServingRuntime, DrainCompletesEveryAcceptedRequest) {
  Rng rng(7006);
  const Model fast = fast_model(rng);
  const Tensor input = random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0);

  auto rt = std::make_unique<ServingRuntime>(serving_spec(), ServerConfig{});
  const ModelHandle h = rt->load(fast, 10, 10);
  constexpr int kRequests = 10;
  std::vector<std::future<ServeResult>> futs;
  for (int i = 0; i < kRequests; ++i) futs.push_back(rt->submit(h, input));

  rt->shutdown(ServingRuntime::Shutdown::kDrain);
  for (auto& f : futs) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(rt->metrics().completed, static_cast<uint64_t>(kRequests));

  // After shutdown, submissions resolve kShutdown immediately (no throw).
  const ServeResult late = rt->serve(h, input);
  EXPECT_EQ(late.rejected, RejectReason::kShutdown);
  rt.reset();  // destructor's second shutdown is a no-op
}

TEST(ServingRuntime, AbortShedsQueuedButFinishesInFlight) {
  Rng rng(7007);
  const Model slow = slow_model(rng);
  const Tensor input = random_tensor(rng, 3, 16, 16, ValueDist::kHalfNormal, 1.0);

  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 1;  // one request per dispatch: the rest stay queued
  ServingRuntime rt(serving_spec(), cfg);
  const ModelHandle h = rt.load(slow, 16, 16);

  constexpr int kRequests = 8;
  std::vector<std::future<ServeResult>> futs;
  for (int i = 0; i < kRequests; ++i) futs.push_back(rt.submit(h, input));
  rt.shutdown(ServingRuntime::Shutdown::kAbort);

  uint64_t ok = 0, shed = 0;
  for (auto& f : futs) {
    const ServeResult r = f.get();
    if (r.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(r.rejected, RejectReason::kShutdown);
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, static_cast<uint64_t>(kRequests));
  // Multi-millisecond service vs a microsecond abort: most of the queue is
  // still pending when the abort lands.
  EXPECT_GE(shed, 1u);
  EXPECT_EQ(rt.metrics().shed_shutdown, shed);
}

TEST(ServingRuntime, PlanCacheDedupsAndEvictsLru) {
  Rng rng(7008);
  const Model a = fast_model(rng, "serve_a");
  const Model b = fast_model(rng, "serve_b");
  const Model c = fast_model(rng, "serve_c");

  ServerConfig cfg;
  cfg.max_models = 2;
  ServingRuntime rt(serving_spec(), cfg);

  const ModelHandle ha = rt.load(a, 10, 10);
  EXPECT_EQ(rt.load(a, 10, 10), ha);  // content dedup
  EXPECT_EQ(rt.loaded_count(), 1u);
  // Same content at different geometry is a distinct plan.
  const ModelHandle ha8 = rt.load(a, 8, 8);
  EXPECT_NE(ha8, ha);
  EXPECT_EQ(rt.loaded_count(), 2u);

  // Touch ha (LRU refresh), then load two more: ha survives, ha8 and the
  // next victim fall off the back of the 2-entry cache.
  EXPECT_EQ(rt.load(a, 10, 10), ha);
  rt.load(b, 10, 10);
  rt.load(c, 10, 10);
  EXPECT_EQ(rt.loaded_count(), 2u);
  EXPECT_THROW(rt.model(ha), std::out_of_range);
  EXPECT_THROW({
    Tensor in = random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0);
    (void)rt.submit(ha, std::move(in));  // must throw, not return a future
  }, std::out_of_range);
}

TEST(ServingRuntime, MetricsJsonHasTheContractKeys) {
  Rng rng(7009);
  const Model fast = fast_model(rng);
  ServingRuntime rt(serving_spec());
  const ModelHandle h = rt.load(fast, 10, 10);
  ASSERT_TRUE(
      rt.serve(h, random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0))
          .ok());

  const std::string json = rt.metrics().to_json_value().dump();
  for (const char* key :
       {"\"submitted\"", "\"completed\"", "\"shed_queue_full\"",
        "\"shed_deadline\"", "\"shed_shutdown\"", "\"shed_bad_input\"",
        "\"shed_unhealthy\"", "\"failed\"", "\"in_flight\"", "\"conserved\"",
        "\"coalesced\"", "\"batches\"", "\"isolation_fallbacks\"",
        "\"watchdog_stalls\"", "\"queue_high_water\"", "\"batch_size_hist\"",
        "\"models\"", "\"breaker\"", "\"times_opened\"",
        "\"currently_stalled\"", "\"p50_s\"", "\"p95_s\"", "\"p99_s\"",
        "\"throughput_rps\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

// ---------------------------------------------------------------------------
// Fault tolerance: validation, isolation, breaker, watchdog, fault plans,
// and the retry client.
// ---------------------------------------------------------------------------

TEST(ServingFaults, BadInputShedsAtAdmissionWithoutExecuting) {
  Rng rng(7101);
  const Model fast = fast_model(rng);
  ServingRuntime rt(serving_spec());
  const ModelHandle h = rt.load(fast, 10, 10);

  // Wrong geometry: shed immediately, typed, with the mismatch message.
  const ServeResult wrong_shape =
      rt.serve(h, random_tensor(rng, 3, 8, 8, ValueDist::kHalfNormal, 1.0));
  EXPECT_EQ(wrong_shape.rejected, RejectReason::kBadInput);
  EXPECT_FALSE(wrong_shape.error.empty());
  EXPECT_EQ(wrong_shape.batch_size, 0);

  // Right shape but a short data vector: also caught at admission.
  Tensor torn = random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0);
  torn.data.pop_back();
  EXPECT_EQ(rt.serve(h, torn).rejected, RejectReason::kBadInput);

  const ServerMetrics m = rt.metrics();
  EXPECT_EQ(m.shed_bad_input, 2u);
  EXPECT_EQ(m.completed, 0u);
  EXPECT_EQ(m.batches, 0u);  // nothing ever executed
  EXPECT_TRUE(m.conserved());
  ASSERT_EQ(m.models.size(), 1u);
  EXPECT_EQ(m.models[0].bad_inputs, 2u);
  // Bad input is the client's fault: the breaker stays closed.
  EXPECT_EQ(m.models[0].state, BreakerState::kClosed);
}

TEST(ServingFaults, BadBatchmateIsIsolatedNotPoisoning) {
  Rng rng(7102);
  const Model slow = slow_model(rng);
  const Model fast = fast_model(rng);
  const Tensor plug = random_tensor(rng, 3, 16, 16, ValueDist::kHalfNormal, 1.0);
  const Tensor good_a = random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0);
  const Tensor good_b = random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0);
  const Tensor bad = random_tensor(rng, 3, 8, 8, ValueDist::kHalfNormal, 1.0);

  // The regression this pins: before per-request isolation, ONE bad input
  // reaching run_batch failed every batchmate.  Admission validation is
  // turned OFF so the bad tensor actually reaches execution.
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 4;
  cfg.validate_at_admission = false;
  ServingRuntime rt(serving_spec(), cfg);
  const ModelHandle hs = rt.load(slow, 16, 16);
  const ModelHandle hf = rt.load(fast, 10, 10);
  const RunReport want_a = rt.model(hf)->run(good_a, cfg.run_options);
  const RunReport want_b = rt.model(hf)->run(good_b, cfg.run_options);

  // Plug the worker so good_a, bad, good_b queue up into one batch.
  std::future<ServeResult> plug_fut = rt.submit(hs, plug);
  std::future<ServeResult> fa = rt.submit(hf, good_a);
  std::future<ServeResult> fbad = rt.submit(hf, bad);
  std::future<ServeResult> fb = rt.submit(hf, good_b);
  ASSERT_TRUE(plug_fut.get().ok());

  const ServeResult ra = fa.get();
  const ServeResult rbad = fbad.get();
  const ServeResult rb = fb.get();

  // The bad request resolves typed (never an exception on the future)...
  EXPECT_EQ(rbad.rejected, RejectReason::kBadInput);
  EXPECT_FALSE(rbad.error.empty());
  // ...and its batchmates complete ok, byte-identical to direct runs.
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra.report.output.data, want_a.output.data);
  EXPECT_EQ(rb.report.output.data, want_b.output.data);
  EXPECT_EQ(ra.batch_size, 3);  // all three shared the dispatch

  const ServerMetrics m = rt.metrics();
  EXPECT_GE(m.isolation_fallbacks, 1u);
  EXPECT_EQ(m.shed_bad_input, 1u);
  EXPECT_EQ(m.completed, 3u);  // plug + the two good batchmates
  EXPECT_EQ(m.in_flight, 0u);
  EXPECT_TRUE(m.conserved());
}

TEST(ServingFaults, ConservationInvariantHoldsMidFlight) {
  Rng rng(7103);
  const Model slow = slow_model(rng);
  const Tensor input = random_tensor(rng, 3, 16, 16, ValueDist::kHalfNormal, 1.0);

  ServerConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 4;
  cfg.max_batch = 2;
  ServingRuntime rt(serving_spec(), cfg);
  const ModelHandle h = rt.load(slow, 16, 16);

  // A metrics reader hammers snapshots while a saturating client submits:
  // conserved() must hold in EVERY snapshot, not just at rest.
  std::atomic<bool> done{false};
  std::atomic<uint64_t> violations{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (!rt.metrics().conserved()) {
        violations.fetch_add(1, std::memory_order_acq_rel);
      }
    }
  });

  constexpr int kRequests = 32;
  std::vector<std::future<ServeResult>> futs;
  for (int i = 0; i < kRequests; ++i) futs.push_back(rt.submit(h, input));
  uint64_t ok = 0, shed = 0;
  for (auto& f : futs) {
    if (f.get().ok()) ++ok; else ++shed;
  }
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(violations.load(), 0u);
  const ServerMetrics m = rt.metrics();
  EXPECT_TRUE(m.conserved());
  EXPECT_EQ(m.in_flight, 0u);  // at rest, nothing is unaccounted
  EXPECT_EQ(m.submitted, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(m.completed, ok);
  EXPECT_EQ(m.shed_queue_full, shed);
}

TEST(ServingFaults, BreakerOpensFastShedsAndRecoversViaProbe) {
  Rng rng(7104);
  const Model fast = fast_model(rng);
  const Tensor input = random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0);

  ManualClock clock;
  auto faults = std::make_shared<FaultPlan>(
      FaultPlan::Config{.seed = 1, .throw_prob = 1.0});
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 1;
  cfg.breaker.failure_threshold = 3;
  cfg.breaker.open_cooldown_s = 5.0;
  cfg.faults = faults;
  cfg.clock = &clock;
  ServingRuntime rt(serving_spec(), cfg);
  const ModelHandle h = rt.load(fast, 10, 10);

  // Every execution attempt throws: three consecutive failures open the
  // breaker.
  for (int i = 0; i < 3; ++i) {
    const ServeResult r = rt.serve(h, input);
    EXPECT_EQ(r.rejected, RejectReason::kExecError) << "request " << i;
    EXPECT_FALSE(r.error.empty());
  }
  {
    const ServerMetrics m = rt.metrics();
    ASSERT_EQ(m.models.size(), 1u);
    EXPECT_EQ(m.models[0].state, BreakerState::kOpen);
    EXPECT_EQ(m.models[0].times_opened, 1u);
    EXPECT_EQ(m.failed, 3u);
    EXPECT_GT(m.models[0].cooldown_remaining_s, 0.0);
  }

  // Open breaker: submissions fail fast as kUnhealthy, nothing executes.
  const uint64_t batches_before = rt.metrics().batches;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(rt.serve(h, input).rejected, RejectReason::kUnhealthy);
  }
  EXPECT_EQ(rt.metrics().batches, batches_before);
  EXPECT_EQ(rt.metrics().shed_unhealthy, 4u);

  // Cooldown elapses (one virtual advance), faults clear: the next request
  // is the half-open probe, succeeds, and closes the breaker.
  clock.advance(cfg.breaker.open_cooldown_s + 0.1);
  faults->set_enabled(false);
  EXPECT_TRUE(rt.serve(h, input).ok());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(rt.serve(h, input).ok());

  const ServerMetrics m = rt.metrics();
  EXPECT_EQ(m.models[0].state, BreakerState::kClosed);
  EXPECT_EQ(m.models[0].consecutive_failures, 0);
  EXPECT_EQ(m.completed, 6u);
  EXPECT_TRUE(m.conserved());
  EXPECT_EQ(m.in_flight, 0u);
}

TEST(ServingFaults, WatchdogCountsStallsAgainstTheBudget) {
  Rng rng(7105);
  const Model fast = fast_model(rng);
  const Tensor input = random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0);

  // Every execution is delayed 50 virtual ms against a 5 ms budget; under
  // the ManualClock the delay is an instant advance, so the test sees
  // deterministic stalls in zero wall time.
  ManualClock clock;
  auto faults = std::make_shared<FaultPlan>(
      FaultPlan::Config{.seed = 2, .delay_prob = 1.0, .delay_s = 0.05});
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 1;
  cfg.stall_budget_s = 0.005;
  cfg.faults = faults;
  cfg.clock = &clock;
  ServingRuntime rt(serving_spec(), cfg);
  const ModelHandle h = rt.load(fast, 10, 10);

  for (int i = 0; i < 3; ++i) EXPECT_TRUE(rt.serve(h, input).ok());

  const ServerMetrics m = rt.metrics();
  EXPECT_EQ(m.watchdog_stalls, 3u);
  ASSERT_EQ(m.models.size(), 1u);
  EXPECT_EQ(m.models[0].stall_events, 3u);
  EXPECT_GE(m.models[0].longest_exec_s, 0.05);
  EXPECT_FALSE(m.models[0].currently_stalled);  // nothing executing now
  // A stall is slowness, not failure: the breaker never saw a thing.
  EXPECT_EQ(m.models[0].state, BreakerState::kClosed);
  EXPECT_EQ(m.failed, 0u);
}

TEST(ServingFaults, DrainRacesTheBatchWindow) {
  Rng rng(7106);
  const Model fast = fast_model(rng);
  const Tensor input = random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0);

  // A 30 s batch window would block a naive drain for 30 s.  The leader
  // must abandon the linger when stopping_ flips and execute what it has.
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 8;
  cfg.batch_window_s = 30.0;
  auto rt = std::make_unique<ServingRuntime>(serving_spec(), cfg);
  const ModelHandle h = rt->load(fast, 10, 10);

  std::future<ServeResult> fut = rt->submit(h, input);
  // Give the leader a moment to enter the window, then drain under it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto t0 = std::chrono::steady_clock::now();
  rt->shutdown(ServingRuntime::Shutdown::kDrain);
  const double shutdown_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  EXPECT_TRUE(fut.get().ok());  // drain completes the accepted request
  EXPECT_LT(shutdown_s, 10.0);  // and does NOT sit out the 30 s window
  const ServerMetrics m = rt->metrics();
  EXPECT_TRUE(m.conserved());
  EXPECT_EQ(m.in_flight, 0u);
  rt.reset();
}

TEST(ServingFaults, AbortRacesTheBatchWindow) {
  Rng rng(7107);
  const Model fast = fast_model(rng);
  const Tensor input = random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0);

  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 8;
  cfg.batch_window_s = 30.0;
  ServingRuntime rt(serving_spec(), cfg);
  const ModelHandle h = rt.load(fast, 10, 10);

  std::vector<std::future<ServeResult>> futs;
  for (int i = 0; i < 4; ++i) futs.push_back(rt.submit(h, input));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto t0 = std::chrono::steady_clock::now();
  rt.shutdown(ServingRuntime::Shutdown::kAbort);
  const double shutdown_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(shutdown_s, 10.0);

  // Whatever the leader had gathered completes; the rest shed kShutdown.
  // Either way every future resolves typed.
  uint64_t ok = 0, shed = 0;
  for (auto& f : futs) {
    const ServeResult r = f.get();
    if (r.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(r.rejected, RejectReason::kShutdown);
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, 4u);
  const ServerMetrics m = rt.metrics();
  EXPECT_TRUE(m.conserved());
  EXPECT_EQ(m.in_flight, 0u);
  EXPECT_EQ(m.completed, ok);
  EXPECT_EQ(m.shed_shutdown, shed);
}

TEST(FaultPlan, ScheduleIsDeterministicPerSeed) {
  FaultPlan::Config cfg;
  cfg.seed = 42;
  cfg.throw_prob = 0.3;
  cfg.delay_prob = 0.3;
  cfg.delay_s = 0.001;
  FaultPlan a(cfg), b(cfg);

  // Same seed, same fate for every index -- whichever thread asks.
  int throws = 0, delays = 0;
  for (uint64_t i = 0; i < 512; ++i) {
    const FaultDecision da = a.decision_for(i);
    const FaultDecision db = b.decision_for(i);
    EXPECT_EQ(static_cast<int>(da.kind), static_cast<int>(db.kind)) << i;
    if (da.kind == FaultDecision::Kind::kThrow) ++throws;
    if (da.kind == FaultDecision::Kind::kDelay) {
      ++delays;
      EXPECT_EQ(da.delay_s, 0.001);
    }
  }
  // ~30% each at n = 512: loose bounds, but never zero and never all.
  EXPECT_GT(throws, 64);
  EXPECT_LT(throws, 448);
  EXPECT_GT(delays, 32);

  // A different seed produces a different schedule somewhere.
  cfg.seed = 43;
  FaultPlan c(cfg);
  bool differs = false;
  for (uint64_t i = 0; i < 512 && !differs; ++i) {
    differs = static_cast<int>(a.decision_for(i).kind) !=
              static_cast<int>(c.decision_for(i).kind);
  }
  EXPECT_TRUE(differs);

  // next_attempt() walks the same schedule in index order.
  EXPECT_EQ(static_cast<int>(a.next_attempt().kind),
            static_cast<int>(b.decision_for(0).kind));
  EXPECT_EQ(static_cast<int>(a.next_attempt().kind),
            static_cast<int>(b.decision_for(1).kind));
  EXPECT_EQ(a.attempts(), 2u);
}

TEST(FaultPlan, WindowEnableAndParseGrammar) {
  // after/until fence the faulted index range.
  FaultPlan::Config cfg;
  cfg.throw_prob = 1.0;
  cfg.first_attempt = 4;
  cfg.last_attempt = 6;
  FaultPlan plan(cfg);
  for (uint64_t i = 0; i < 10; ++i) {
    const bool faulted =
        plan.decision_for(i).kind == FaultDecision::Kind::kThrow;
    EXPECT_EQ(faulted, i >= 4 && i < 6) << i;
  }

  // Disabled: everything is kNone, but the counter still advances so
  // re-enabling stays schedule-aligned.
  plan.set_enabled(false);
  EXPECT_EQ(static_cast<int>(plan.next_attempt().kind),
            static_cast<int>(FaultDecision::Kind::kNone));
  EXPECT_EQ(plan.attempts(), 1u);
  EXPECT_EQ(plan.window_stall_s(), 0.0);

  // The MPIPU_FAULT grammar.
  const FaultPlan::Config parsed =
      FaultPlan::parse("seed=9,throw=0.25,delay=0.5:0.002,stall=0.01,after=3,until=100");
  EXPECT_EQ(parsed.seed, 9u);
  EXPECT_EQ(parsed.throw_prob, 0.25);
  EXPECT_EQ(parsed.delay_prob, 0.5);
  EXPECT_EQ(parsed.delay_s, 0.002);
  EXPECT_EQ(parsed.window_stall_s, 0.01);
  EXPECT_EQ(parsed.first_attempt, 3u);
  EXPECT_EQ(parsed.last_attempt, 100u);

  // A typo'd chaos knob must not silently run a clean experiment.
  EXPECT_THROW(FaultPlan::parse("thorw=0.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("throw"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("throw=1.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("delay=0.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("delay=0.5:-1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("seed=banana"), std::invalid_argument);
}

TEST(CircuitBreakerUnit, FullOpenHalfOpenClosedCycle) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 2;
  cfg.open_cooldown_s = 10.0;
  cfg.half_open_probes = 1;
  CircuitBreaker br(cfg);

  // Closed: admits; one failure is not enough.
  EXPECT_EQ(br.admit(0.0), AdmitDecision::kAdmit);
  br.on_failure(0.0);
  EXPECT_EQ(br.state(), BreakerState::kClosed);
  // A success resets the consecutive count.
  br.on_success(0.5);
  EXPECT_EQ(br.consecutive_failures(), 0);
  // Two consecutive failures open it.
  br.on_failure(1.0);
  br.on_failure(1.5);
  EXPECT_EQ(br.state(), BreakerState::kOpen);
  EXPECT_EQ(br.times_opened(), 1u);
  EXPECT_NEAR(br.cooldown_remaining(2.0), 9.5, 1e-12);

  // During the cooldown: shed.  A straggler failure does not restart it.
  EXPECT_EQ(br.admit(5.0), AdmitDecision::kShed);
  br.on_failure(6.0);
  EXPECT_EQ(br.times_opened(), 1u);

  // Cooldown over: exactly one probe slot; the second concurrent request
  // sheds until the probe resolves.
  EXPECT_EQ(br.admit(12.0), AdmitDecision::kProbe);
  EXPECT_EQ(br.state(), BreakerState::kHalfOpen);
  EXPECT_EQ(br.admit(12.0), AdmitDecision::kShed);
  // The probe fails: re-open for another cooldown.
  br.on_failure(12.5);
  EXPECT_EQ(br.state(), BreakerState::kOpen);
  EXPECT_EQ(br.times_opened(), 2u);

  // Second cooldown, this time the probe never executes (shed later in the
  // admission chain): release_probe frees the slot for the next request.
  EXPECT_EQ(br.admit(23.0), AdmitDecision::kProbe);
  br.release_probe();
  EXPECT_EQ(br.admit(23.0), AdmitDecision::kProbe);
  // The probe succeeds: closed, full service.
  br.on_success(23.5);
  EXPECT_EQ(br.state(), BreakerState::kClosed);
  EXPECT_EQ(br.admit(24.0), AdmitDecision::kAdmit);

  // threshold = 0 disables the breaker entirely.
  CircuitBreaker off(CircuitBreakerConfig{.failure_threshold = 0});
  for (int i = 0; i < 10; ++i) off.on_failure(static_cast<double>(i));
  EXPECT_EQ(off.admit(100.0), AdmitDecision::kAdmit);
  EXPECT_EQ(off.state(), BreakerState::kClosed);
}

TEST(ServeClientUnit, BackoffScheduleAndRetryGates) {
  Rng rng(7108);
  const Model fast = fast_model(rng);
  ManualClock clock;
  ServerConfig cfg;
  cfg.clock = &clock;
  ServingRuntime rt(serving_spec(), cfg);
  rt.load(fast, 10, 10);

  RetryPolicy policy;
  policy.initial_backoff_s = 0.01;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 0.04;
  policy.jitter = 0.0;
  ServeClient client(rt, policy);

  // jitter = 0: the schedule is the pure capped exponential.
  EXPECT_DOUBLE_EQ(client.backoff_s(0), 0.01);
  EXPECT_DOUBLE_EQ(client.backoff_s(1), 0.02);
  EXPECT_DOUBLE_EQ(client.backoff_s(2), 0.04);
  EXPECT_DOUBLE_EQ(client.backoff_s(3), 0.04);  // capped

  // With jitter, every draw lands in [1 - jitter, 1] x base and two
  // differently-seeded clients de-synchronize.
  RetryPolicy jp = policy;
  jp.jitter = 0.5;
  ServeClient j1(rt, jp, /*jitter_seed=*/11), j2(rt, jp, /*jitter_seed=*/22);
  bool differed = false;
  for (int i = 0; i < 16; ++i) {
    const double b1 = j1.backoff_s(0), b2 = j2.backoff_s(0);
    EXPECT_GE(b1, 0.005 - 1e-12);
    EXPECT_LE(b1, 0.01 + 1e-12);
    if (b1 != b2) differed = true;
  }
  EXPECT_TRUE(differed);

  // The per-reason gates.
  EXPECT_TRUE(ServeClient::retryable(policy, RejectReason::kQueueFull));
  EXPECT_TRUE(ServeClient::retryable(policy, RejectReason::kUnhealthy));
  EXPECT_TRUE(ServeClient::retryable(policy, RejectReason::kExecError));
  EXPECT_FALSE(ServeClient::retryable(policy, RejectReason::kDeadline));
  EXPECT_FALSE(ServeClient::retryable(policy, RejectReason::kBadInput));
  EXPECT_FALSE(ServeClient::retryable(policy, RejectReason::kShutdown));
  EXPECT_FALSE(ServeClient::retryable(policy, RejectReason::kNone));
}

TEST(ServeClientUnit, RetriesThroughTransientFaultsThenGivesUp) {
  Rng rng(7109);
  const Model fast = fast_model(rng);
  const Tensor input = random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0);
  const Tensor bad = random_tensor(rng, 3, 8, 8, ValueDist::kHalfNormal, 1.0);

  // Each serve() burns two fault-plan attempts when it fails (the batch
  // attempt, then the per-request isolation attempt): until=4 means the
  // first two calls fail and the third succeeds.
  ManualClock clock;
  auto faults = std::make_shared<FaultPlan>(
      FaultPlan::Config{.seed = 3, .throw_prob = 1.0, .last_attempt = 4});
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 1;
  cfg.breaker.failure_threshold = 0;  // isolate retry behavior from breaking
  cfg.faults = faults;
  cfg.clock = &clock;
  ServingRuntime rt(serving_spec(), cfg);
  const ModelHandle h = rt.load(fast, 10, 10);

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.jitter = 0.0;
  ServeClient client(rt, policy);

  // Transient failures: attempt 1 and 2 fail, attempt 3 succeeds -- and the
  // backoff sleeps advanced the ManualClock instead of wall time.
  const double t0 = clock.now();
  const ServeResult r = client.call(h, input);
  EXPECT_TRUE(r.ok());
  EXPECT_NEAR(clock.now() - t0, 0.01 + 0.02, 1e-9);
  ClientStats s = client.stats();
  EXPECT_EQ(s.calls, 1u);
  EXPECT_EQ(s.attempts, 3u);
  EXPECT_EQ(s.retries, 2u);
  EXPECT_EQ(s.gave_up, 0u);

  // A deterministic rejection is never retried.
  const ServeResult rb = client.call(h, bad);
  EXPECT_EQ(rb.rejected, RejectReason::kBadInput);
  s = client.stats();
  EXPECT_EQ(s.calls, 2u);
  EXPECT_EQ(s.attempts, 4u);  // exactly one more submission
  EXPECT_EQ(s.gave_up, 0u);

  // Permanent faults: the client retries max_attempts times, then returns
  // the last typed rejection.
  auto forever = std::make_shared<FaultPlan>(
      FaultPlan::Config{.seed = 4, .throw_prob = 1.0});
  ServerConfig cfg2 = cfg;
  cfg2.faults = forever;
  ServingRuntime rt2(serving_spec(), cfg2);
  const ModelHandle h2 = rt2.load(fast, 10, 10);
  ServeClient client2(rt2, policy);
  const ServeResult rf = client2.call(h2, input);
  EXPECT_EQ(rf.rejected, RejectReason::kExecError);
  const ClientStats s2 = client2.stats();
  EXPECT_EQ(s2.attempts, 3u);
  EXPECT_EQ(s2.gave_up, 1u);
  EXPECT_TRUE(rt2.metrics().conserved());
}

TEST(Traffic, PoissonArrivalsAreAscendingDeterministicAndRateTrue) {
  Rng a(42), b(42);
  const std::vector<double> t1 = poisson_arrivals(a, 200.0, 4000);
  const std::vector<double> t2 = poisson_arrivals(b, 200.0, 4000);
  EXPECT_EQ(t1, t2);  // deterministic from the seed
  ASSERT_EQ(t1.size(), 4000u);
  EXPECT_GT(t1.front(), 0.0);
  for (size_t i = 1; i < t1.size(); ++i) EXPECT_GE(t1[i], t1[i - 1]);
  // Mean rate within 10% at n = 4000.
  const double rate = 4000.0 / t1.back();
  EXPECT_NEAR(rate, 200.0, 20.0);
  EXPECT_THROW(poisson_arrivals(a, 0.0, 1), std::invalid_argument);
}

TEST(Traffic, BurstyArrivalsClusterAndMatchTheMeanRate) {
  Rng rng(43);
  BurstyConfig cfg;
  cfg.burst_rate_rps = 500.0;
  cfg.idle_rate_rps = 0.0;
  cfg.mean_burst_s = 0.05;
  cfg.mean_idle_s = 0.2;
  const std::vector<double> t = bursty_arrivals(rng, cfg, 2000);
  ASSERT_EQ(t.size(), 2000u);
  for (size_t i = 1; i < t.size(); ++i) EXPECT_GE(t[i], t[i - 1]);
  // Long-run rate approaches the analytic mean (loose: dwell times are
  // exponential, so 2000 arrivals span ~40 cycles).
  const double mean = bursty_mean_rate(cfg);
  EXPECT_NEAR(mean, 100.0, 1e-9);  // 500 * 0.05 / 0.25
  const double rate = 2000.0 / t.back();
  EXPECT_GT(rate, mean * 0.5);
  EXPECT_LT(rate, mean * 2.0);
  // On/off traffic must contain gaps far above the in-burst mean gap.
  double max_gap = 0.0;
  for (size_t i = 1; i < t.size(); ++i) max_gap = std::max(max_gap, t[i] - t[i - 1]);
  EXPECT_GT(max_gap, 0.05);
}

TEST(Traffic, ZipfIndicesSkewTowardTheHead) {
  Rng rng(44);
  const int kCatalog = 16;
  const std::vector<int> idx = zipf_indices(rng, 1.2, kCatalog, 8000);
  std::vector<int> hist(kCatalog, 0);
  for (int v : idx) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, kCatalog);
    ++hist[static_cast<size_t>(v)];
  }
  // Head dominance: index 0 beats index 1, and the top-4 carry most mass.
  EXPECT_GT(hist[0], hist[1]);
  int top4 = hist[0] + hist[1] + hist[2] + hist[3];
  EXPECT_GT(top4, 8000 / 2);
  // s = 0 degenerates to (roughly) uniform: no index gets > 20%.
  const std::vector<int> uni = zipf_indices(rng, 0.0, kCatalog, 8000);
  std::vector<int> uhist(kCatalog, 0);
  for (int v : uni) ++uhist[static_cast<size_t>(v)];
  for (int c : uhist) EXPECT_LT(c, 8000 / 5);
}

TEST(Percentile, NearestRankMatchesTheDefinition) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  EXPECT_EQ(percentile_nearest_rank_sorted(v, 50), 50.0);
  EXPECT_EQ(percentile_nearest_rank_sorted(v, 95), 95.0);
  EXPECT_EQ(percentile_nearest_rank_sorted(v, 99), 99.0);
  EXPECT_EQ(percentile_nearest_rank_sorted(v, 100), 100.0);

  // The double-arithmetic trap: ceil(0.95 * 20) evaluates to 20 in floating
  // point; the integer nearest-rank is 19.
  std::vector<double> w;
  for (int i = 1; i <= 20; ++i) w.push_back(static_cast<double>(i));
  EXPECT_EQ(percentile_nearest_rank_sorted(w, 95), 19.0);
  EXPECT_EQ(percentile_nearest_rank_sorted(w, 50), 10.0);

  EXPECT_EQ(percentile_nearest_rank_sorted({}, 95), 0.0);
  const LatencySummary s = summarize_latencies({3.0, 1.0, 2.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.p50_s, 2.0);
  EXPECT_EQ(s.p99_s, 3.0);
  EXPECT_EQ(s.max_s, 3.0);
  EXPECT_NEAR(s.mean_s, 2.0, 1e-12);
}

}  // namespace
}  // namespace mpipu::serve
