// Tests for the serving runtime (src/serve): the semantics the header
// promises, pinned under real thread interleavings.
//
//  * byte-identity: everything served through the queue/batcher -- batched,
//    coalesced or alone -- matches a direct CompiledModel::run of the same
//    input exactly (outputs AND per-layer stats);
//  * overload: a saturating client against a tiny bounded queue sheds
//    kQueueFull, and completed + shed always accounts for every submission;
//  * deadlines: an expired request is shed at dispatch without executing;
//  * shutdown: kDrain completes every accepted request, kAbort resolves the
//    still-queued ones as kShutdown, submissions after shutdown are
//    rejected immediately;
//  * the load() plan cache: content dedup, LRU eviction, handle lifetime;
//  * traffic synthesis (open-loop schedules) and the shared nearest-rank
//    percentile helper.
//
// Timing-dependent assertions are deliberately loose (>= 1 shed, counts
// that add up) -- the tests must pass on any scheduler.
#include <gtest/gtest.h>

#include <future>
#include <stdexcept>
#include <vector>

#include "common/percentile.h"
#include "common/rng.h"
#include "serve/serving_runtime.h"
#include "serve/traffic.h"

namespace mpipu::serve {
namespace {

DatapathConfig small_datapath() {
  DatapathConfig cfg = DatapathConfig::for_scheme(DecompositionScheme::kTemporal);
  cfg.n_inputs = 16;
  cfg.adder_tree_width = 16;
  cfg.software_precision = 28;
  cfg.multi_cycle = true;
  return cfg;
}

RunSpec serving_spec() {
  RunSpec spec;
  spec.datapath = small_datapath();
  spec.policy = PrecisionPolicy::all_fp16(AccumKind::kFp32);
  spec.threads = 1;
  return spec;
}

/// Small 2-layer CNN (fast: the default request payload).
Model fast_model(Rng& rng, const std::string& name = "serve_fast") {
  std::vector<ModelLayer> layers(2);
  layers[0].name = "conv1";
  layers[0].filters = random_filters(rng, 4, 3, 3, 3, ValueDist::kNormal, 0.3);
  layers[0].spec.pad = 1;
  layers[0].relu = true;
  layers[1].name = "head";
  layers[1].filters = random_filters(rng, 2, 4, 1, 1, ValueDist::kNormal, 0.2);
  return Model::from_layers(name, std::move(layers));
}

/// Wider 3-layer CNN (slow: used to hold a worker busy while the queue
/// builds up behind it).
Model slow_model(Rng& rng) {
  std::vector<ModelLayer> layers(3);
  layers[0].name = "conv1";
  layers[0].filters =
      random_filters(rng, 16, 3, 3, 3, ValueDist::kNormal, 0.3);
  layers[0].spec.pad = 1;
  layers[0].relu = true;
  layers[1].name = "conv2";
  layers[1].filters =
      random_filters(rng, 16, 16, 3, 3, ValueDist::kNormal, 0.15);
  layers[1].spec.pad = 1;
  layers[1].relu = true;
  layers[2].name = "head";
  layers[2].filters =
      random_filters(rng, 4, 16, 1, 1, ValueDist::kNormal, 0.2);
  return Model::from_layers("serve_slow", std::move(layers));
}

TEST(ServingRuntime, BatchedAndCoalescedResultsAreByteIdentical) {
  Rng rng(7001);
  const Model slow = slow_model(rng);
  const Model fast = fast_model(rng);
  const Tensor plug = random_tensor(rng, 3, 16, 16, ValueDist::kHalfNormal, 1.0);
  std::vector<Tensor> catalog;
  for (int i = 0; i < 3; ++i) {
    catalog.push_back(random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0));
  }

  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 4;
  cfg.queue_capacity = 64;
  ServingRuntime rt(serving_spec(), cfg);
  const ModelHandle hs = rt.load(slow, 16, 16);
  const ModelHandle hf = rt.load(fast, 10, 10);

  // Direct baselines (no queue, no batcher) from the same compiled plans.
  std::vector<RunReport> direct;
  for (const Tensor& in : catalog) {
    direct.push_back(rt.model(hf)->run(in, cfg.run_options));
  }

  // The plug occupies the worker while the 12 fast requests pile up, so
  // batches (and in-batch duplicates) form deterministically.
  std::future<ServeResult> plug_fut = rt.submit(hs, plug);
  constexpr int kRequests = 12;
  std::vector<std::future<ServeResult>> futs;
  for (int i = 0; i < kRequests; ++i) {
    futs.push_back(rt.submit(hf, catalog[static_cast<size_t>(i % 3)]));
  }

  ASSERT_TRUE(plug_fut.get().ok());
  int batched = 0, coalesced = 0;
  for (int i = 0; i < kRequests; ++i) {
    ServeResult r = futs[static_cast<size_t>(i)].get();
    ASSERT_TRUE(r.ok()) << "request " << i << " rejected: "
                        << reject_reason_name(r.rejected);
    const RunReport& want = direct[static_cast<size_t>(i % 3)];
    ASSERT_EQ(r.report.output.data.size(), want.output.data.size());
    EXPECT_EQ(r.report.output.data, want.output.data) << "request " << i;
    // Per-layer stats byte-identity (via the shared JSON emitter).
    ASSERT_EQ(r.report.layers.size(), want.layers.size());
    EXPECT_EQ(to_json_value(r.report.totals).dump(0),
              to_json_value(want.totals).dump(0));
    if (r.batch_size > 1) ++batched;
    if (r.coalesced) ++coalesced;
    EXPECT_GE(r.total_s, r.queue_wait_s);
  }
  // With the worker plugged, the 12 queued requests must have formed
  // multi-request batches; 4 requests over a 3-input catalog guarantees a
  // duplicate in every full batch.
  EXPECT_GT(batched, 0);
  EXPECT_GT(coalesced, 0);

  const ServerMetrics m = rt.metrics();
  EXPECT_EQ(m.submitted, static_cast<uint64_t>(kRequests) + 1);
  EXPECT_EQ(m.completed, static_cast<uint64_t>(kRequests) + 1);
  EXPECT_EQ(m.coalesced, static_cast<uint64_t>(coalesced));
  EXPECT_GT(m.batches, 0u);
  EXPECT_GE(m.queue_high_water, 2u);
  EXPECT_EQ(m.latency.count, m.completed);
  EXPECT_GE(m.latency.p99_s, m.latency.p50_s);
}

TEST(ServingRuntime, CoalescingOffStillByteIdentical) {
  Rng rng(7002);
  const Model fast = fast_model(rng);
  const Tensor input = random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0);

  ServerConfig cfg;
  cfg.coalesce_identical = false;
  cfg.max_batch = 4;
  ServingRuntime rt(serving_spec(), cfg);
  const ModelHandle h = rt.load(fast, 10, 10);
  const RunReport want = rt.model(h)->run(input, cfg.run_options);

  std::vector<std::future<ServeResult>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(rt.submit(h, input));
  for (auto& f : futs) {
    ServeResult r = f.get();
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.coalesced);
    EXPECT_EQ(r.report.output.data, want.output.data);
  }
  EXPECT_EQ(rt.metrics().coalesced, 0u);
}

TEST(ServingRuntime, SaturatingClientShedsQueueFull) {
  Rng rng(7003);
  const Model slow = slow_model(rng);
  const Tensor input = random_tensor(rng, 3, 16, 16, ValueDist::kHalfNormal, 1.0);

  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 2;
  cfg.max_batch = 1;  // drain one at a time: the queue stays full
  ServingRuntime rt(serving_spec(), cfg);
  const ModelHandle h = rt.load(slow, 16, 16);

  constexpr int kRequests = 24;
  std::vector<std::future<ServeResult>> futs;
  for (int i = 0; i < kRequests; ++i) futs.push_back(rt.submit(h, input));

  uint64_t ok = 0, shed = 0;
  for (auto& f : futs) {
    const ServeResult r = f.get();
    if (r.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(r.rejected, RejectReason::kQueueFull);
      EXPECT_EQ(r.batch_size, 0);
      ++shed;
    }
  }
  // Submission is microseconds per request against a multi-millisecond
  // service time and a 2-deep queue: shedding is unavoidable, and at least
  // the in-flight + queued requests complete.
  EXPECT_GE(shed, 1u);
  EXPECT_GE(ok, 1u);
  EXPECT_EQ(ok + shed, static_cast<uint64_t>(kRequests));

  const ServerMetrics m = rt.metrics();
  EXPECT_EQ(m.submitted, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(m.completed, ok);
  EXPECT_EQ(m.shed_queue_full, shed);
  EXPECT_LE(m.queue_high_water, cfg.queue_capacity);
}

TEST(ServingRuntime, PerModelAdmissionCapIsolatesAGreedyModel) {
  Rng rng(7004);
  const Model slow = slow_model(rng);
  const Model fast = fast_model(rng);
  const Tensor slow_in = random_tensor(rng, 3, 16, 16, ValueDist::kHalfNormal, 1.0);
  const Tensor fast_in = random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0);

  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 64;
  cfg.per_model_queue_cap = 2;
  cfg.max_batch = 1;
  ServingRuntime rt(serving_spec(), cfg);
  const ModelHandle hs = rt.load(slow, 16, 16);
  const ModelHandle hf = rt.load(fast, 10, 10);

  // The greedy model floods; its queue share is capped at 2, so the fast
  // model's request is still admitted.
  std::vector<std::future<ServeResult>> greedy;
  for (int i = 0; i < 16; ++i) greedy.push_back(rt.submit(hs, slow_in));
  std::future<ServeResult> precious = rt.submit(hf, fast_in);

  EXPECT_TRUE(precious.get().ok());
  uint64_t shed = 0;
  for (auto& f : greedy) {
    if (!f.get().ok()) ++shed;
  }
  EXPECT_GE(shed, 1u);
  EXPECT_EQ(rt.metrics().shed_queue_full, shed);
}

TEST(ServingRuntime, ExpiredDeadlineShedsWithoutExecuting) {
  Rng rng(7005);
  const Model slow = slow_model(rng);
  const Model fast = fast_model(rng);
  const Tensor slow_in = random_tensor(rng, 3, 16, 16, ValueDist::kHalfNormal, 1.0);
  const Tensor fast_in = random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0);

  ServerConfig cfg;
  cfg.workers = 1;
  ServingRuntime rt(serving_spec(), cfg);
  const ModelHandle hs = rt.load(slow, 16, 16);
  const ModelHandle hf = rt.load(fast, 10, 10);

  // The slow request occupies the worker; the zero-timeout fast request
  // expires while queued (it cannot join the slow batch: batches are
  // same-model) and must be shed at dispatch, not executed.
  std::future<ServeResult> blocker = rt.submit(hs, slow_in);
  SubmitOptions expired;
  expired.timeout_s = 0.0;
  const ServeResult r = rt.serve(hf, fast_in, expired);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.rejected, RejectReason::kDeadline);
  EXPECT_TRUE(blocker.get().ok());
  EXPECT_EQ(rt.metrics().shed_deadline, 1u);

  // A generous deadline passes untouched.
  SubmitOptions plenty;
  plenty.timeout_s = 60.0;
  EXPECT_TRUE(rt.serve(hf, fast_in, plenty).ok());
}

TEST(ServingRuntime, DrainCompletesEveryAcceptedRequest) {
  Rng rng(7006);
  const Model fast = fast_model(rng);
  const Tensor input = random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0);

  auto rt = std::make_unique<ServingRuntime>(serving_spec(), ServerConfig{});
  const ModelHandle h = rt->load(fast, 10, 10);
  constexpr int kRequests = 10;
  std::vector<std::future<ServeResult>> futs;
  for (int i = 0; i < kRequests; ++i) futs.push_back(rt->submit(h, input));

  rt->shutdown(ServingRuntime::Shutdown::kDrain);
  for (auto& f : futs) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(rt->metrics().completed, static_cast<uint64_t>(kRequests));

  // After shutdown, submissions resolve kShutdown immediately (no throw).
  const ServeResult late = rt->serve(h, input);
  EXPECT_EQ(late.rejected, RejectReason::kShutdown);
  rt.reset();  // destructor's second shutdown is a no-op
}

TEST(ServingRuntime, AbortShedsQueuedButFinishesInFlight) {
  Rng rng(7007);
  const Model slow = slow_model(rng);
  const Tensor input = random_tensor(rng, 3, 16, 16, ValueDist::kHalfNormal, 1.0);

  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 1;  // one request per dispatch: the rest stay queued
  ServingRuntime rt(serving_spec(), cfg);
  const ModelHandle h = rt.load(slow, 16, 16);

  constexpr int kRequests = 8;
  std::vector<std::future<ServeResult>> futs;
  for (int i = 0; i < kRequests; ++i) futs.push_back(rt.submit(h, input));
  rt.shutdown(ServingRuntime::Shutdown::kAbort);

  uint64_t ok = 0, shed = 0;
  for (auto& f : futs) {
    const ServeResult r = f.get();
    if (r.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(r.rejected, RejectReason::kShutdown);
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, static_cast<uint64_t>(kRequests));
  // Multi-millisecond service vs a microsecond abort: most of the queue is
  // still pending when the abort lands.
  EXPECT_GE(shed, 1u);
  EXPECT_EQ(rt.metrics().shed_shutdown, shed);
}

TEST(ServingRuntime, PlanCacheDedupsAndEvictsLru) {
  Rng rng(7008);
  const Model a = fast_model(rng, "serve_a");
  const Model b = fast_model(rng, "serve_b");
  const Model c = fast_model(rng, "serve_c");

  ServerConfig cfg;
  cfg.max_models = 2;
  ServingRuntime rt(serving_spec(), cfg);

  const ModelHandle ha = rt.load(a, 10, 10);
  EXPECT_EQ(rt.load(a, 10, 10), ha);  // content dedup
  EXPECT_EQ(rt.loaded_count(), 1u);
  // Same content at different geometry is a distinct plan.
  const ModelHandle ha8 = rt.load(a, 8, 8);
  EXPECT_NE(ha8, ha);
  EXPECT_EQ(rt.loaded_count(), 2u);

  // Touch ha (LRU refresh), then load two more: ha survives, ha8 and the
  // next victim fall off the back of the 2-entry cache.
  EXPECT_EQ(rt.load(a, 10, 10), ha);
  rt.load(b, 10, 10);
  rt.load(c, 10, 10);
  EXPECT_EQ(rt.loaded_count(), 2u);
  EXPECT_THROW(rt.model(ha), std::out_of_range);
  EXPECT_THROW({
    Tensor in = random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0);
    rt.submit(ha, std::move(in));
  }, std::out_of_range);
}

TEST(ServingRuntime, MetricsJsonHasTheContractKeys) {
  Rng rng(7009);
  const Model fast = fast_model(rng);
  ServingRuntime rt(serving_spec());
  const ModelHandle h = rt.load(fast, 10, 10);
  rt.serve(h, random_tensor(rng, 3, 10, 10, ValueDist::kHalfNormal, 1.0));

  const std::string json = rt.metrics().to_json_value().dump();
  for (const char* key :
       {"\"submitted\"", "\"completed\"", "\"shed_queue_full\"",
        "\"shed_deadline\"", "\"shed_shutdown\"", "\"coalesced\"",
        "\"batches\"", "\"queue_high_water\"", "\"batch_size_hist\"",
        "\"p50_s\"", "\"p95_s\"", "\"p99_s\"", "\"throughput_rps\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(Traffic, PoissonArrivalsAreAscendingDeterministicAndRateTrue) {
  Rng a(42), b(42);
  const std::vector<double> t1 = poisson_arrivals(a, 200.0, 4000);
  const std::vector<double> t2 = poisson_arrivals(b, 200.0, 4000);
  EXPECT_EQ(t1, t2);  // deterministic from the seed
  ASSERT_EQ(t1.size(), 4000u);
  EXPECT_GT(t1.front(), 0.0);
  for (size_t i = 1; i < t1.size(); ++i) EXPECT_GE(t1[i], t1[i - 1]);
  // Mean rate within 10% at n = 4000.
  const double rate = 4000.0 / t1.back();
  EXPECT_NEAR(rate, 200.0, 20.0);
  EXPECT_THROW(poisson_arrivals(a, 0.0, 1), std::invalid_argument);
}

TEST(Traffic, BurstyArrivalsClusterAndMatchTheMeanRate) {
  Rng rng(43);
  BurstyConfig cfg;
  cfg.burst_rate_rps = 500.0;
  cfg.idle_rate_rps = 0.0;
  cfg.mean_burst_s = 0.05;
  cfg.mean_idle_s = 0.2;
  const std::vector<double> t = bursty_arrivals(rng, cfg, 2000);
  ASSERT_EQ(t.size(), 2000u);
  for (size_t i = 1; i < t.size(); ++i) EXPECT_GE(t[i], t[i - 1]);
  // Long-run rate approaches the analytic mean (loose: dwell times are
  // exponential, so 2000 arrivals span ~40 cycles).
  const double mean = bursty_mean_rate(cfg);
  EXPECT_NEAR(mean, 100.0, 1e-9);  // 500 * 0.05 / 0.25
  const double rate = 2000.0 / t.back();
  EXPECT_GT(rate, mean * 0.5);
  EXPECT_LT(rate, mean * 2.0);
  // On/off traffic must contain gaps far above the in-burst mean gap.
  double max_gap = 0.0;
  for (size_t i = 1; i < t.size(); ++i) max_gap = std::max(max_gap, t[i] - t[i - 1]);
  EXPECT_GT(max_gap, 0.05);
}

TEST(Traffic, ZipfIndicesSkewTowardTheHead) {
  Rng rng(44);
  const int kCatalog = 16;
  const std::vector<int> idx = zipf_indices(rng, 1.2, kCatalog, 8000);
  std::vector<int> hist(kCatalog, 0);
  for (int v : idx) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, kCatalog);
    ++hist[static_cast<size_t>(v)];
  }
  // Head dominance: index 0 beats index 1, and the top-4 carry most mass.
  EXPECT_GT(hist[0], hist[1]);
  int top4 = hist[0] + hist[1] + hist[2] + hist[3];
  EXPECT_GT(top4, 8000 / 2);
  // s = 0 degenerates to (roughly) uniform: no index gets > 20%.
  const std::vector<int> uni = zipf_indices(rng, 0.0, kCatalog, 8000);
  std::vector<int> uhist(kCatalog, 0);
  for (int v : uni) ++uhist[static_cast<size_t>(v)];
  for (int c : uhist) EXPECT_LT(c, 8000 / 5);
}

TEST(Percentile, NearestRankMatchesTheDefinition) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  EXPECT_EQ(percentile_nearest_rank_sorted(v, 50), 50.0);
  EXPECT_EQ(percentile_nearest_rank_sorted(v, 95), 95.0);
  EXPECT_EQ(percentile_nearest_rank_sorted(v, 99), 99.0);
  EXPECT_EQ(percentile_nearest_rank_sorted(v, 100), 100.0);

  // The double-arithmetic trap: ceil(0.95 * 20) evaluates to 20 in floating
  // point; the integer nearest-rank is 19.
  std::vector<double> w;
  for (int i = 1; i <= 20; ++i) w.push_back(static_cast<double>(i));
  EXPECT_EQ(percentile_nearest_rank_sorted(w, 95), 19.0);
  EXPECT_EQ(percentile_nearest_rank_sorted(w, 50), 10.0);

  EXPECT_EQ(percentile_nearest_rank_sorted({}, 95), 0.0);
  const LatencySummary s = summarize_latencies({3.0, 1.0, 2.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.p50_s, 2.0);
  EXPECT_EQ(s.p99_s, 3.0);
  EXPECT_EQ(s.max_s, 3.0);
  EXPECT_NEAR(s.mean_s, 2.0, 1e-12);
}

}  // namespace
}  // namespace mpipu::serve
