// Tests for the unified Datapath interface (core/datapath.h) and the
// scheme-generic ConvEngine (nn/conv_engine.h):
//
//  * wrapping transparency: Datapath::dot bit-matches the directly
//    constructed Ipu / SerialIpu / SpatialIpu on values AND cycles;
//  * cross-scheme agreement: with an exact accumulator and MC banding all
//    three schemes reproduce reference.h's exact inner product bit for bit
//    (the §5 orthogonality claim at the value level);
//  * the scheme-generic service-cycle model used for tile costing matches
//    the cycles the bit-accurate units actually report;
//  * ConvEngine determinism: 1 thread and N threads produce identical
//    tensors and identical aggregate stats, and match the legacy
//    single-threaded conv_ipu_* wrappers;
//  * ThreadPool partition correctness.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/datapath.h"
#include "core/ipu.h"
#include "core/reference.h"
#include "core/serial_ipu.h"
#include "core/spatial_ipu.h"
#include "nn/conv.h"

namespace mpipu {
namespace {

constexpr auto kAllSchemes = {DecompositionScheme::kTemporal,
                              DecompositionScheme::kSerial,
                              DecompositionScheme::kSpatial};

std::vector<Fp16> random_fp16_bits(Rng& rng, int n) {
  std::vector<Fp16> v;
  while (static_cast<int>(v.size()) < n) {
    const Fp16 f = Fp16::from_bits(static_cast<uint32_t>(rng.next_u64()));
    if (f.is_finite()) v.push_back(f);
  }
  return v;
}

AccumulatorConfig unbounded_acc() {
  AccumulatorConfig acc;
  acc.frac_bits = 100;
  acc.lossless = true;
  return acc;
}

DatapathConfig base_config(DecompositionScheme scheme, int w) {
  // for_scheme matches each scheme's standalone defaults (spatial gets
  // skip_empty_bands, the footgun the preset exists to defuse).
  DatapathConfig cfg = DatapathConfig::for_scheme(scheme);
  cfg.n_inputs = 16;
  cfg.adder_tree_width = w;
  cfg.software_precision = 28;
  cfg.multi_cycle = true;
  return cfg;
}

// --- Wrapping transparency: Datapath == direct scheme calls ------------------

TEST(DatapathWrapping, TemporalBitMatchesDirectIpu) {
  Rng rng(1);
  for (int w : {12, 16, 28}) {
    const DatapathConfig cfg = base_config(DecompositionScheme::kTemporal, w);
    auto dp = make_datapath(cfg);
    IpuConfig icfg;
    icfg.n_inputs = cfg.n_inputs;
    icfg.adder_tree_width = w;
    icfg.software_precision = cfg.software_precision;
    icfg.multi_cycle = cfg.multi_cycle;
    Ipu ipu(icfg);
    for (int t = 0; t < 500; ++t) {
      const auto a = random_fp16_bits(rng, 16);
      const auto b = random_fp16_bits(rng, 16);
      const DotResult r = dp->dot(a, b);
      ipu.reset_accumulator();
      const int cycles = ipu.fp_accumulate<kFp16Format>(a, b);
      EXPECT_TRUE(r.raw == ipu.read_raw()) << "w=" << w << " trial " << t;
      EXPECT_EQ(r.cycles, cycles) << "w=" << w << " trial " << t;
    }
  }
}

TEST(DatapathWrapping, SerialBitMatchesDirectSerialIpu) {
  Rng rng(2);
  for (int w : {13, 16, 28}) {
    const DatapathConfig cfg = base_config(DecompositionScheme::kSerial, w);
    auto dp = make_datapath(cfg);
    SerialIpuConfig scfg;
    scfg.n_inputs = cfg.n_inputs;
    scfg.adder_tree_width = w;
    scfg.software_precision = cfg.software_precision;
    scfg.multi_cycle = cfg.multi_cycle;
    SerialIpu ipu(scfg);
    for (int t = 0; t < 500; ++t) {
      const auto a = random_fp16_bits(rng, 16);
      const auto b = random_fp16_bits(rng, 16);
      const DotResult r = dp->dot(a, b);
      ipu.reset_accumulator();
      const int cycles = ipu.fp_accumulate(a, b);
      EXPECT_TRUE(r.raw == ipu.read_raw()) << "w=" << w << " trial " << t;
      EXPECT_EQ(r.cycles, cycles) << "w=" << w << " trial " << t;
    }
  }
}

TEST(DatapathWrapping, SpatialBitMatchesDirectSpatialIpu) {
  Rng rng(3);
  for (int w : {16, 28, 40}) {
    // base_config routes through DatapathConfig::for_scheme, so a spatial
    // config cycle-counts like a directly constructed SpatialIpu without
    // touching skip_empty_bands by hand.
    const DatapathConfig cfg = base_config(DecompositionScheme::kSpatial, w);
    EXPECT_TRUE(cfg.skip_empty_bands);
    auto dp = make_datapath(cfg);
    SpatialIpuConfig scfg;
    scfg.n_inputs = cfg.n_inputs;
    scfg.adder_tree_width = w;
    scfg.software_precision = cfg.software_precision;
    scfg.multi_cycle = cfg.multi_cycle;
    scfg.skip_empty_bands = true;
    SpatialIpu ipu(scfg);
    for (int t = 0; t < 500; ++t) {
      const auto a = random_fp16_bits(rng, 16);
      const auto b = random_fp16_bits(rng, 16);
      const DotResult r = dp->dot(a, b);
      ipu.reset_accumulator();
      const int cycles = ipu.fp_accumulate<kFp16Format>(a, b);
      EXPECT_TRUE(r.raw == ipu.read_raw()) << "w=" << w << " trial " << t;
      EXPECT_EQ(r.cycles, cycles) << "w=" << w << " trial " << t;
    }
  }
}

TEST(DatapathWrapping, SerialWidthIsClampedToProductWidth) {
  DatapathConfig cfg = base_config(DecompositionScheme::kSerial, 10);
  EXPECT_EQ(cfg.effective_adder_tree_width(), 13);
  EXPECT_EQ(cfg.safe_precision(), 1);
  auto dp = make_datapath(cfg);  // must not trip SerialIpu's width assert
  Rng rng(4);
  const auto a = random_fp16_bits(rng, 16);
  const auto b = random_fp16_bits(rng, 16);
  EXPECT_GE(dp->dot(a, b).cycles, 12);
}

TEST(DatapathPresets, ForSchemeMatchesStandaloneDefaults) {
  EXPECT_FALSE(DatapathConfig::for_scheme(DecompositionScheme::kTemporal)
                   .skip_empty_bands);
  EXPECT_FALSE(DatapathConfig::for_scheme(DecompositionScheme::kSerial)
                   .skip_empty_bands);
  const DatapathConfig sp = DatapathConfig::spatial_defaults();
  EXPECT_EQ(sp.scheme, DecompositionScheme::kSpatial);
  EXPECT_TRUE(sp.skip_empty_bands);
  EXPECT_EQ(sp, DatapathConfig::for_scheme(DecompositionScheme::kSpatial));
}

// --- Cross-scheme agreement (§5 orthogonality at the value level) ------------

TEST(DatapathCrossScheme, AllSchemesMatchExactReferenceWithUnboundedAccumulator) {
  // MC banding is lossless for every scheme when the accumulator keeps all
  // bits and the software precision covers the FP16 worst case (58).
  Rng rng(5);
  for (auto scheme : kAllSchemes) {
    DatapathConfig cfg = base_config(scheme, 14);
    cfg.software_precision = 58;
    cfg.accumulator = unbounded_acc();
    auto dp = make_datapath(cfg);
    for (int t = 0; t < 800; ++t) {
      const auto a = random_fp16_bits(rng, 16);
      const auto b = random_fp16_bits(rng, 16);
      const FixedPoint exact = exact_fp_inner_product<kFp16Format>(a, b);
      EXPECT_TRUE(dp->dot(a, b).raw == exact)
          << scheme_name(scheme) << " trial " << t;
    }
  }
}

TEST(DatapathCrossScheme, SchemesAgreeBitForBitUnderSharedMasking) {
  // Same software precision, exact accumulator, MC mode: all three schemes
  // mask the same products and lose nothing else, so they agree exactly --
  // on values; cycle counts are where the schemes differ.
  Rng rng(6);
  DatapathConfig cfg = base_config(DecompositionScheme::kTemporal, 16);
  cfg.software_precision = 16;  // FP16-accumulation masking regime
  cfg.accumulator = unbounded_acc();
  std::vector<std::unique_ptr<Datapath>> dps;
  for (auto scheme : kAllSchemes) {
    cfg.scheme = scheme;
    dps.push_back(make_datapath(cfg));
  }
  for (int t = 0; t < 1500; ++t) {
    const auto a = random_fp16_bits(rng, 16);
    const auto b = random_fp16_bits(rng, 16);
    const DotResult r0 = dps[0]->dot(a, b);
    for (size_t s = 1; s < dps.size(); ++s) {
      const DotResult rs = dps[s]->dot(a, b);
      EXPECT_TRUE(rs.raw == r0.raw)
          << scheme_name(dps[s]->config().scheme) << " trial " << t;
    }
  }
}

TEST(DatapathCrossScheme, IntModeExactWhereSupported) {
  Rng rng(7);
  for (auto scheme : {DecompositionScheme::kTemporal, DecompositionScheme::kSerial}) {
    auto dp = make_datapath(base_config(scheme, 16));
    ASSERT_TRUE(dp->supports_int(8, 8));
    for (int t = 0; t < 300; ++t) {
      std::vector<int32_t> a, b;
      for (int k = 0; k < 16; ++k) {
        a.push_back(static_cast<int32_t>(rng.uniform_int(-128, 127)));
        b.push_back(static_cast<int32_t>(rng.uniform_int(-128, 127)));
      }
      dp->reset_accumulator();
      dp->int_accumulate(a, b, 8, 8);
      EXPECT_EQ(dp->read_int(), exact_int_inner_product(a, b))
          << scheme_name(scheme) << " trial " << t;
    }
  }
  EXPECT_FALSE(make_datapath(base_config(DecompositionScheme::kSpatial, 16))
                   ->supports_int(8, 8));
}

// --- Tile-costing model vs bit-accurate cycles -------------------------------

TEST(DatapathCostModel, ServiceCyclesMatchBitAccurateUnits) {
  // The exponent-only service model (fp16_op_service_cycles) drives the
  // cycle simulator's tile costing; it must agree with what the bit-level
  // units actually charge, for every scheme.
  Rng rng(8);
  for (auto scheme : kAllSchemes) {
    for (int w : {14, 16, 28}) {
      const DatapathConfig cfg = base_config(scheme, w);  // preset handles
                                                          // skip_empty_bands
      auto dp = make_datapath(cfg);
      std::vector<int> exps(16);
      for (int t = 0; t < 400; ++t) {
        const auto a = random_fp16_bits(rng, 16);
        const auto b = random_fp16_bits(rng, 16);
        for (int k = 0; k < 16; ++k) {
          exps[static_cast<size_t>(k)] =
              a[static_cast<size_t>(k)].decode().exp + b[static_cast<size_t>(k)].decode().exp;
        }
        EXPECT_EQ(fp16_op_service_cycles(exps, cfg), dp->dot(a, b).cycles)
            << scheme_name(scheme) << " w=" << w << " trial " << t;
      }
    }
  }
}

// --- ConvEngine determinism ---------------------------------------------------

TEST(ConvEngineDeterminism, ThreadCountDoesNotChangeOutputOrStats) {
  Rng rng(9);
  const Tensor input = random_tensor(rng, 6, 10, 10, ValueDist::kNormal, 1.0);
  const FilterBank filters = random_filters(rng, 5, 6, 3, 3, ValueDist::kNormal, 0.3);
  ConvSpec spec;
  spec.pad = 1;
  for (auto scheme : kAllSchemes) {
    ConvEngineConfig ec;
    ec.datapath = base_config(scheme, 16);
    ec.accum = AccumKind::kFp32;
    ec.threads = 1;
    ConvEngine serial_engine(ec);
    const Tensor out1 = serial_engine.conv_fp16(input, filters, spec);
    ec.threads = 4;
    ConvEngine parallel_engine(ec);
    const Tensor outn = parallel_engine.conv_fp16(input, filters, spec);
    ASSERT_EQ(out1.data.size(), outn.data.size());
    for (size_t i = 0; i < out1.data.size(); ++i) {
      EXPECT_EQ(out1.data[i], outn.data[i]) << scheme_name(scheme) << " elt " << i;
    }
    EXPECT_EQ(serial_engine.stats(), parallel_engine.stats()) << scheme_name(scheme);
  }
}

TEST(ConvEngineDeterminism, IntConvThreadCountDoesNotChangeOutputOrStats) {
  Rng rng(10);
  const Tensor input = random_tensor(rng, 8, 8, 8, ValueDist::kHalfNormal, 1.0);
  const FilterBank filters = random_filters(rng, 4, 8, 3, 3, ValueDist::kNormal, 0.2);
  ConvSpec spec;
  ConvEngineConfig ec;
  ec.datapath = base_config(DecompositionScheme::kTemporal, 16);
  ec.threads = 1;
  ConvEngine e1(ec);
  ec.threads = 3;
  ConvEngine e3(ec);
  const Tensor out1 = e1.conv_int(input, filters, spec, 8, 8);
  const Tensor out3 = e3.conv_int(input, filters, spec, 8, 8);
  for (size_t i = 0; i < out1.data.size(); ++i) {
    EXPECT_EQ(out1.data[i], out3.data[i]) << i;
  }
  EXPECT_EQ(e1.stats(), e3.stats());
}

TEST(ConvEngineDeterminism, MatchesLegacyWrapper) {
  Rng rng(11);
  const Tensor input = random_tensor(rng, 4, 9, 9, ValueDist::kNormal, 1.0);
  const FilterBank filters = random_filters(rng, 3, 4, 3, 3, ValueDist::kNormal, 0.3);
  ConvSpec spec;
  spec.pad = 1;
  IpuConfig icfg;
  icfg.n_inputs = 16;
  icfg.adder_tree_width = 16;
  IpuConvStats wrapper_stats;
  const Tensor legacy =
      conv_ipu_fp16(input, filters, spec, icfg, AccumKind::kFp32, &wrapper_stats);

  ConvEngineConfig ec;
  ec.datapath = datapath_config_from_ipu(icfg);
  ec.threads = 4;
  ConvEngine engine(ec);
  const Tensor threaded = engine.conv_fp16(input, filters, spec);
  for (size_t i = 0; i < legacy.data.size(); ++i) {
    EXPECT_EQ(legacy.data[i], threaded.data[i]) << i;
  }
  EXPECT_EQ(wrapper_stats.cycles, engine.stats().cycles);
  EXPECT_EQ(wrapper_stats.fp_ops, engine.stats().fp_ops);
}

// --- ThreadPool ---------------------------------------------------------------

TEST(ThreadPoolTest, PartitionCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    for (int64_t total : {0, 1, 3, 7, 100, 1000}) {
      std::vector<std::atomic<int>> hits(static_cast<size_t>(total));
      pool.parallel_for(total, [&](int64_t begin, int64_t end, int slot) {
        EXPECT_GE(slot, 0);
        EXPECT_LT(slot, threads);
        for (int64_t i = begin; i < end; ++i) {
          hits[static_cast<size_t>(i)].fetch_add(1);
        }
      });
      for (int64_t i = 0; i < total; ++i) {
        EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
            << "threads=" << threads << " total=" << total << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> sum{0};
    pool.parallel_for(100, [&](int64_t begin, int64_t end, int) {
      for (int64_t i = begin; i < end; ++i) sum.fetch_add(i);
    });
    EXPECT_EQ(sum.load(), 99 * 100 / 2);
  }
}

}  // namespace
}  // namespace mpipu
