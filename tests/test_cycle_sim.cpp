// Tests for the cycle-accurate tile simulator: mapping arithmetic, stall
// behaviour, clustering benefits, precision/cycle monotonicity.
#include <gtest/gtest.h>

#include <type_traits>

#include "sim/cycle_sim.h"

namespace mpipu {
namespace {

ConvLayer simple_layer(int cin, int cout, int k, int hw) {
  ConvLayer l;
  l.name = "L";
  l.cin = cin;
  l.cout = cout;
  l.kh = l.kw = k;
  l.hout = l.wout = hw;
  return l;
}

Network tiny_net(LayerTensorStats stats) {
  Network n;
  n.name = "tiny";
  n.tensor_stats = stats;
  n.layers = {simple_layer(64, 64, 3, 14)};
  return n;
}

TEST(Mapping, BroadcastStepArithmetic) {
  const TileConfig big = baseline2();  // (16,16,2,2) x 4 tiles
  // 64 cin -> 4 chunks of 16; 64 cout over 4 tiles -> 16/tile -> 1 K-group;
  // 14x14 output over 2x2 -> 7*7 = 49 groups; 3x3 kernel -> 9 positions.
  EXPECT_EQ(layer_broadcast_steps(simple_layer(64, 64, 3, 14), big), 9 * 4 * 1 * 49);
  // Partial channel chunk rounds up.
  EXPECT_EQ(layer_broadcast_steps(simple_layer(3, 64, 7, 112), big),
            49LL * 1 * 1 * 56 * 56);
  // cout = 128 over 4 tiles = 32 -> 2 K-groups.
  EXPECT_EQ(layer_broadcast_steps(simple_layer(16, 128, 1, 4), big), 1 * 1 * 2 * 4);
}

TEST(Mapping, SmallTileHasMoreSteps) {
  const ConvLayer l = simple_layer(64, 64, 3, 28);
  const int64_t big = layer_broadcast_steps(l, baseline2());
  const int64_t small = layer_broadcast_steps(l, baseline1());
  // Small tile has 1/4 the multipliers -> 4x the steps.
  EXPECT_EQ(small, big * 4);
}

TEST(CycleSim, BaselineRunsNineCyclesPerStep) {
  // 38b adder tree, single-cycle: every op is 9 nibble iterations, so the
  // steady-state rate is exactly 9 cycles/step regardless of data.
  SimOptions opts;
  opts.sampled_steps = 400;
  const auto r = simulate_network(tiny_net(forward_stats()), baseline2(), opts);
  ASSERT_EQ(r.layers.size(), 1u);
  EXPECT_NEAR(r.layers[0].cycles_per_step, 9.0, 0.1);
  EXPECT_NEAR(r.layers[0].avg_iteration_cycles, 1.0, 1e-9);
}

TEST(CycleSim, NarrowAdderTreeIsSlowerAndWideIsBaselineEqual) {
  SimOptions opts;
  opts.sampled_steps = 400;
  const Network net = tiny_net(forward_stats());
  const auto base = simulate_network(net, baseline2(), opts);
  double prev = 1e18;
  for (int w : {12, 16, 20, 28}) {
    const auto r = simulate_network(net, big_tile(w, 28), opts);
    EXPECT_GE(r.total_cycles, base.total_cycles * 0.999) << w;
    // Monotone: wider trees are never slower.
    EXPECT_LE(r.total_cycles, prev * 1.02) << w;
    prev = r.total_cycles;
  }
  // w=38 covers the 28b software precision in one cycle: equals baseline.
  const auto wide = simulate_network(net, big_tile(38, 28), opts);
  EXPECT_NEAR(wide.normalized_to(base), 1.0, 1e-6);
}

TEST(CycleSim, ClusteringReducesExecutionTime) {
  SimOptions opts;
  opts.sampled_steps = 600;
  const Network net = tiny_net(backward_stats());  // wide alignments: stalls
  const auto whole_tile = simulate_network(net, big_tile(16, 28, 64), opts);
  const auto clustered = simulate_network(net, big_tile(16, 28, 4), opts);
  EXPECT_LT(clustered.total_cycles, whole_tile.total_cycles);
}

TEST(CycleSim, ClusterSizeMonotonicity) {
  SimOptions opts;
  opts.sampled_steps = 500;
  const Network net = tiny_net(forward_stats());
  double prev = 0.0;
  for (int cluster : {4, 8, 16, 32, 64}) {
    const auto r = simulate_network(net, big_tile(16, 28, cluster), opts);
    EXPECT_GE(r.total_cycles, prev * 0.98) << cluster;  // bigger cluster, slower
    prev = r.total_cycles;
  }
}

TEST(CycleSim, BackwardWorkloadCostsMoreThanForward) {
  SimOptions opts;
  opts.sampled_steps = 500;
  const TileConfig tile = big_tile(16, 28, 64);
  const auto fwd = simulate_network(tiny_net(forward_stats()), tile, opts);
  const auto bwd = simulate_network(tiny_net(backward_stats()), tile, opts);
  EXPECT_GT(bwd.layers[0].avg_iteration_cycles, fwd.layers[0].avg_iteration_cycles);
}

TEST(CycleSim, EightInputIpusNeedFewerCyclesPerIterationThanSixteen) {
  // Fewer products per IPU -> smaller max alignment (paper §4.3).
  SimOptions opts;
  opts.sampled_steps = 500;
  const Network net = tiny_net(forward_stats());
  const auto small = simulate_network(net, small_tile(12, 28, 32), opts);
  const auto big = simulate_network(net, big_tile(12, 28, 64), opts);
  EXPECT_LT(small.layers[0].avg_iteration_cycles, big.layers[0].avg_iteration_cycles);
}

TEST(CycleSim, DeterministicForFixedSeed) {
  SimOptions opts;
  opts.sampled_steps = 200;
  const Network net = tiny_net(forward_stats());
  const auto a = simulate_network(net, big_tile(16, 28, 16), opts);
  const auto b = simulate_network(net, big_tile(16, 28, 16), opts);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
}

TEST(CycleSim, TotalCyclesScaleWithSteps) {
  SimOptions opts;
  opts.sampled_steps = 300;
  Network net = tiny_net(forward_stats());
  const auto r1 = simulate_network(net, baseline2(), opts);
  net.layers[0].repeat = 2;
  const auto r2 = simulate_network(net, baseline2(), opts);
  EXPECT_NEAR(r2.total_cycles / r1.total_cycles, 2.0, 0.05);
}

TEST(AlignmentHistogramTest, ForwardConcentratedBackwardWide) {
  // The Fig. 9 shape: forward alignments cluster near zero with ~1% above
  // 8; backward alignments are spread much wider.
  const auto fwd = alignment_histogram(resnet18_forward(), 8, 800);
  const auto bwd = alignment_histogram(resnet18_backward(), 8, 800);
  EXPECT_GT(fwd.fraction(0) + fwd.fraction(1) + fwd.fraction(2) + fwd.fraction(3) +
                fwd.fraction(4),
            0.5);
  EXPECT_LT(fwd.fraction_above(8), 0.05);
  EXPECT_GT(bwd.fraction_above(8), fwd.fraction_above(8) * 3);
}

TEST(SimOptionsTest, IterationsPerOpDerivesFromScheme) {
  // Since the removal of the deprecated SimOptions.iterations_per_op
  // override, the scheme is the only derivation point for the per-op base
  // step count.
  const SimOptions opts;
  EXPECT_EQ(opts.effective_iterations_per_op(DecompositionScheme::kTemporal), 9);
  EXPECT_EQ(opts.effective_iterations_per_op(DecompositionScheme::kSerial), 12);
  EXPECT_EQ(opts.effective_iterations_per_op(DecompositionScheme::kSpatial), 1);
  EXPECT_EQ(opts.effective_iterations_per_op(DecompositionScheme::kTemporal),
            fp16_iterations_per_op(DecompositionScheme::kTemporal));
}

TEST(SimOptionsTest, SchemeDerivationMatchesServiceCycleModel) {
  // The derived base count is exactly the unbanded service time of an op
  // (fp16_op_service_cycles with multi_cycle off), per scheme.
  for (auto s : {DecompositionScheme::kTemporal, DecompositionScheme::kSerial,
                 DecompositionScheme::kSpatial}) {
    DatapathConfig cfg = DatapathConfig::for_scheme(s);
    cfg.multi_cycle = false;
    cfg.skip_empty_bands = false;
    const std::vector<int> exps{0, 1, 2, 3};
    EXPECT_EQ(fp16_op_service_cycles(exps, cfg),
              SimOptions{}.effective_iterations_per_op(s))
        << scheme_name(s);
  }
}

TEST(CycleSim, StallFractionBoundedAndBuffersHelp) {
  SimOptions opts;
  opts.sampled_steps = 500;
  const Network net = tiny_net(backward_stats());
  TileConfig shallow = big_tile(16, 28, 8);
  shallow.input_buffer_depth = 1;
  TileConfig deep = shallow;
  deep.input_buffer_depth = 16;
  const auto r_shallow = simulate_network(net, shallow, opts);
  const auto r_deep = simulate_network(net, deep, opts);
  EXPECT_LE(r_deep.total_cycles, r_shallow.total_cycles * 1.001);
}

// Pins the removal of the dead `exponent_pool` knob (PR 10): it was carried
// by SimOptions through PR 9 but never read anywhere, so a caller setting it
// got silently ignored.  If someone re-adds the member, this fails until the
// simulator actually consumes it (at which point delete this test).
template <typename T, typename = void>
struct HasExponentPool : std::false_type {};
template <typename T>
struct HasExponentPool<T, std::void_t<decltype(std::declval<T>().exponent_pool)>>
    : std::true_type {};

TEST(SimOptionsTest, ExponentPoolKnobStaysRemoved) {
  static_assert(!HasExponentPool<SimOptions>::value,
                "SimOptions.exponent_pool was removed as dead config in PR 10; "
                "re-adding it requires wiring it into simulate_network");
  SUCCEED();
}

}  // namespace
}  // namespace mpipu
