// Parameterized property sweeps over the (adder width, input count,
// accumulation destination) grid -- the quantitative backbone of §3.1
// expressed as testable thresholds.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "analysis/error_metrics.h"
#include "common/rng.h"
#include "core/ipu.h"
#include "core/reference.h"
#include "workload/distributions.h"

namespace mpipu {
namespace {

// --- Accuracy thresholds per destination format -------------------------------

using SweepParam = std::tuple<int /*w*/, int /*n*/>;

class PrecisionSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  static constexpr int kTrials = 800;

  /// Median contaminated bits of IPU(w) vs exact, rounded to AccF.
  template <FpFormat AccF>
  double median_contamination(int w, int n, uint64_t seed) {
    Rng rng(seed);
    IpuConfig cfg;
    cfg.n_inputs = n;
    cfg.adder_tree_width = w;
    cfg.software_precision = w;
    cfg.multi_cycle = false;
    Ipu ipu(cfg);
    std::vector<double> contam;
    for (int t = 0; t < kTrials; ++t) {
      const auto a = sample_fp16(rng, ValueDist::kLaplace, 1.0, n);
      const auto b = sample_fp16(rng, ValueDist::kLaplace, 1.0, n);
      ipu.reset_accumulator();
      ipu.fp_accumulate<kFp16Format>(a, b);
      const auto got = Soft<AccF>::round_from_fixed(ipu.read_raw());
      const auto want = Soft<AccF>::round_from_fixed(exact_fp_inner_product<kFp16Format>(a, b));
      contam.push_back(
          static_cast<double>(contaminated_bits(got.raw_bits(), want.raw_bits(), AccF)));
    }
    return median(contam);
  }
};

TEST_P(PrecisionSweep, SixteenBitsSufficeForFp16Accumulation) {
  const auto [w, n] = GetParam();
  const double med = median_contamination<kFp16Format>(w, n, 0xABC + static_cast<uint64_t>(w));
  if (w >= 16) {
    EXPECT_EQ(med, 0.0) << "w=" << w << " n=" << n;
  }
  if (w <= 8) {
    EXPECT_GT(med, 0.0) << "w=" << w << " n=" << n;  // visibly contaminated
  }
}

TEST_P(PrecisionSweep, TwentyEightBitsSufficeForFp32Accumulation) {
  const auto [w, n] = GetParam();
  const double med = median_contamination<kFp32Format>(w, n, 0xDEF + static_cast<uint64_t>(w));
  if (w >= 28) {
    EXPECT_EQ(med, 0.0) << "w=" << w << " n=" << n;
  }
  if (w <= 12) {
    EXPECT_GT(med, 3.0) << "w=" << w << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PrecisionSweep,
    ::testing::Combine(::testing::Values(8, 12, 16, 20, 28, 33),
                       ::testing::Values(8, 16, 32)),
    [](const auto& inst) {
      return "w" + std::to_string(std::get<0>(inst.param)) + "_n" +
             std::to_string(std::get<1>(inst.param));
    });

// --- MC/SC equivalence over the full grid --------------------------------------

class McScEquivalence : public ::testing::TestWithParam<SweepParam> {};

TEST_P(McScEquivalence, McIpuEqualsWideSingleCycleAtSameSoftwarePrecision) {
  // MC-IPU(w) with software precision P computes the same value as a
  // single-cycle IPU whose window covers P fully (w' = P + 10), for every
  // (w, n) -- the guarantee that lets designers shrink adder trees freely.
  const auto [w, n] = GetParam();
  if (w - 9 < 1 || w > 28) GTEST_SKIP();
  const int P = 20;
  IpuConfig mc;
  mc.n_inputs = n;
  mc.adder_tree_width = w;
  mc.software_precision = P;
  mc.multi_cycle = true;
  mc.accumulator.frac_bits = 100;
  mc.accumulator.lossless = true;
  IpuConfig sc = mc;
  sc.adder_tree_width = P + 10;
  sc.multi_cycle = false;
  Ipu mc_ipu(mc), sc_ipu(sc);
  Rng rng(0xE0 + static_cast<uint64_t>(w) * 31 + static_cast<uint64_t>(n));
  for (int t = 0; t < 500; ++t) {
    std::vector<Fp16> a, b;
    while (static_cast<int>(a.size()) < n) {
      const Fp16 fa = Fp16::from_bits(static_cast<uint32_t>(rng.next_u64()));
      const Fp16 fb = Fp16::from_bits(static_cast<uint32_t>(rng.next_u64()));
      if (fa.is_finite() && fb.is_finite()) {
        a.push_back(fa);
        b.push_back(fb);
      }
    }
    mc_ipu.reset_accumulator();
    sc_ipu.reset_accumulator();
    mc_ipu.fp_accumulate<kFp16Format>(a, b);
    sc_ipu.fp_accumulate<kFp16Format>(a, b);
    ASSERT_TRUE(mc_ipu.read_raw() == sc_ipu.read_raw()) << "w=" << w << " n=" << n
                                                        << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, McScEquivalence,
    ::testing::Combine(::testing::Values(10, 12, 16, 24, 28), ::testing::Values(4, 16)),
    [](const auto& inst) {
      return "w" + std::to_string(std::get<0>(inst.param)) + "_n" +
             std::to_string(std::get<1>(inst.param));
    });

// --- Error scales as predicted by the window bound ------------------------------

TEST(PrecisionScaling, MeanErrorHalvesPerExtraWindowBit) {
  // Section 3.1's exponential error decay: mean |err| of IPU(w) vs exact
  // drops ~2x per extra bit of w (until exactness).
  Rng rng(0xBEE);
  std::vector<double> means;
  for (int w : {10, 12, 14, 16, 18, 20}) {
    IpuConfig cfg;
    cfg.n_inputs = 16;
    cfg.adder_tree_width = w;
    cfg.software_precision = w;
    cfg.multi_cycle = false;
    cfg.accumulator.frac_bits = 100;
    cfg.accumulator.lossless = true;
    Ipu ipu(cfg);
    double total = 0.0;
    for (int t = 0; t < 1500; ++t) {
      const auto a = sample_fp16(rng, ValueDist::kNormal, 1.0, 16);
      const auto b = sample_fp16(rng, ValueDist::kNormal, 1.0, 16);
      ipu.reset_accumulator();
      ipu.fp_accumulate<kFp16Format>(a, b);
      total += absolute_error(ipu.read_raw(), exact_fp_inner_product<kFp16Format>(a, b));
    }
    means.push_back(total / 1500.0);
  }
  for (size_t i = 1; i < means.size(); ++i) {
    const double ratio = means[i - 1] / means[i];  // per 2 bits of w
    EXPECT_GT(ratio, 2.0) << i;   // at least ~1 bit/bit of decay
    EXPECT_LT(ratio, 32.0) << i;  // and no cliff (masking steepens the tail)
  }
}

}  // namespace
}  // namespace mpipu
