// Unit tests for the non-normalized accumulator (paper Fig. 1 right side):
// exponent tracking, swap-then-right-shift, architectural truncation and
// width clamping.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/accumulator.h"

namespace mpipu {
namespace {

TEST(Accumulator, StartsEmptyAndZero) {
  Accumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_TRUE(acc.value().is_zero());
  EXPECT_FALSE(acc.overflowed());
}

TEST(Accumulator, FirstAddSetsExponent) {
  Accumulator acc;
  acc.add(100, 5);
  EXPECT_FALSE(acc.empty());
  EXPECT_EQ(acc.exponent(), 5);
  EXPECT_EQ(static_cast<int64_t>(acc.register_value()), 100);
}

TEST(Accumulator, SameExponentAddsExactly) {
  Accumulator acc;
  acc.add(100, 3);
  acc.add(-30, 3);
  EXPECT_EQ(static_cast<int64_t>(acc.register_value()), 70);
  EXPECT_EQ(acc.exponent(), 3);
}

TEST(Accumulator, LowerExponentInputIsRightShifted) {
  Accumulator acc;
  acc.add(100, 10);
  // Input 4 exponents below: mantissa >> 4, floor.
  acc.add(33, 6);  // 33 >> 4 == 2
  EXPECT_EQ(static_cast<int64_t>(acc.register_value()), 102);
  EXPECT_EQ(acc.exponent(), 10);
  // Negative mantissa floors toward -inf, like a 2's complement shifter.
  acc.add(-33, 6);  // -33 >> 4 == -3
  EXPECT_EQ(static_cast<int64_t>(acc.register_value()), 99);
}

TEST(Accumulator, HigherExponentInputTriggersSwap) {
  // Swap: the *register* is shifted down instead of the input -- the
  // datapath's trick to avoid a left shifter.
  Accumulator acc;
  acc.add(0b1011, 0);
  acc.add(1, 2);  // register >>= 2 (0b10), then add
  EXPECT_EQ(acc.exponent(), 2);
  EXPECT_EQ(static_cast<int64_t>(acc.register_value()), 0b10 + 1);
}

TEST(Accumulator, SwapDiscardsOnlyBitsBelowNewLsb) {
  Accumulator acc;
  acc.add(0b1100, 0);  // low 2 bits zero: swap by 2 is exact
  acc.add(5, 2);
  EXPECT_EQ(static_cast<int64_t>(acc.register_value()), 0b11 + 5);
}

TEST(Accumulator, ValueSemanticsTrackFracBits) {
  AccumulatorConfig cfg;
  cfg.frac_bits = 30;
  Accumulator acc(cfg);
  acc.add(int128{3} << 30, 4);  // value = 3 * 2^4
  EXPECT_EQ(acc.value().to_double_value(), 48.0);
}

TEST(Accumulator, ZeroAddOnEmptyStaysEmpty) {
  Accumulator acc;
  acc.add(0, 7);
  EXPECT_TRUE(acc.empty());
  EXPECT_TRUE(acc.value().is_zero());
}

TEST(Accumulator, ZeroAddOnNonEmptyCanStillRaiseExponent) {
  // A zero adder-tree result with a larger max_exp still updates the
  // exponent register and shifts the magnitude (hardware behaviour).
  Accumulator acc;
  acc.add(0b111, 0);
  acc.add(0, 1);
  EXPECT_EQ(acc.exponent(), 1);
  EXPECT_EQ(static_cast<int64_t>(acc.register_value()), 0b11);
}

TEST(Accumulator, WidthClampSetsOverflowFlag) {
  AccumulatorConfig cfg;
  cfg.frac_bits = 4;
  cfg.t = 0;
  cfg.l = 0;  // register width = 7 bits: range [-64, 63]
  Accumulator acc(cfg);
  acc.add(60, 0);
  EXPECT_FALSE(acc.overflowed());
  acc.add(60, 0);
  EXPECT_TRUE(acc.overflowed());
  EXPECT_EQ(static_cast<int64_t>(acc.register_value()), 63);  // saturated
}

TEST(Accumulator, InSpecWorkloadNeverOverflows) {
  // The paper provisions t = ceil_log2(n) and l = ceil_log2(d): adding n*d
  // worst-case products must not overflow.
  AccumulatorConfig cfg;
  cfg.frac_bits = 30;
  cfg.t = 4;   // n = 16
  cfg.l = 9;   // d = 512
  Accumulator acc(cfg);
  // Worst-case adder-tree result per op: 16 lanes x the max FP16 magnitude
  // product (2047^2, strictly below 2^22) at the accumulator scale
  // 2^(30 - 20): the "< 4" integer-part bound the 3 int bits provision for.
  const int128 worst = int128{16} * 2047 * 2047 * (int128{1} << 10);
  for (int i = 0; i < 512; ++i) acc.add(worst, 0);
  EXPECT_FALSE(acc.overflowed());
}

TEST(Accumulator, LosslessModeIsExact) {
  AccumulatorConfig cfg;
  cfg.lossless = true;
  Accumulator acc(cfg);
  Accumulator plain;  // frac 30, truncating
  Rng rng(3);
  FixedPoint expect(0, 0);
  for (int i = 0; i < 200; ++i) {
    const int64_t m = rng.uniform_int(-1000000, 1000000);
    const int e = static_cast<int>(rng.uniform_int(-20, 20));
    acc.add(m, e);
    expect = expect + FixedPoint(m, e - cfg.frac_bits);
  }
  EXPECT_TRUE(acc.value() == expect);
}

TEST(Accumulator, ResetClearsEverything) {
  Accumulator acc;
  acc.add(123, 9);
  acc.reset();
  EXPECT_TRUE(acc.empty());
  EXPECT_TRUE(acc.value().is_zero());
}

TEST(Accumulator, TruncationMatchesExactWithinOneLsb) {
  // Property: for monotone same-exponent streams, the truncating
  // accumulator differs from exact accumulation by less than the number of
  // shifted adds, each contributing < 1 register LSB.
  Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    AccumulatorConfig cfg;
    Accumulator acc(cfg);
    FixedPoint exact(0, 0);
    const int base_exp = static_cast<int>(rng.uniform_int(-10, 10));
    int shifted_adds = 0;
    for (int i = 0; i < 50; ++i) {
      const int64_t m = rng.uniform_int(-(1 << 20), 1 << 20);
      const int e = base_exp - static_cast<int>(rng.uniform_int(0, 12));
      if (e < base_exp) ++shifted_adds;
      acc.add(m, e);
      exact = exact + FixedPoint(m, e - cfg.frac_bits);
    }
    // Align both to the final LSB and compare.
    const int lsb = acc.exponent() - cfg.frac_bits;
    const double err = (exact - acc.value()).to_double_value();
    const double lsb_weight = std::ldexp(1.0, lsb);
    EXPECT_LE(std::fabs(err), (shifted_adds + 1.0) * lsb_weight) << trial;
  }
}

}  // namespace
}  // namespace mpipu
