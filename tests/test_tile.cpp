// Tests for tile configurations and their invariants (§4.1 geometry).
#include <gtest/gtest.h>

#include "sim/tile.h"

namespace mpipu {
namespace {

TEST(Tile, BigTileGeometryMatchesPaper) {
  const TileConfig t = big_tile(28, 28);
  EXPECT_EQ(t.c_unroll, 16);
  EXPECT_EQ(t.k_unroll, 16);
  EXPECT_EQ(t.h_unroll, 2);
  EXPECT_EQ(t.w_unroll, 2);
  EXPECT_EQ(t.num_tiles, 4);
  EXPECT_EQ(t.ipus_per_tile(), 64);
  EXPECT_EQ(t.multipliers_per_tile(), 1024);
  EXPECT_EQ(t.total_multipliers(), 4096);
}

TEST(Tile, SmallTileGeometryMatchesPaper) {
  const TileConfig t = small_tile(28, 28);
  EXPECT_EQ(t.multipliers_per_tile(), 256);
  EXPECT_EQ(t.total_multipliers(), 1024);
  EXPECT_EQ(t.ipus_per_tile(), 32);
}

TEST(Tile, ClusterCounts) {
  EXPECT_EQ(big_tile(16, 28, 64).num_clusters(), 1);
  EXPECT_EQ(big_tile(16, 28, 1).num_clusters(), 64);
  EXPECT_EQ(big_tile(16, 28, 8).num_clusters(), 8);
  EXPECT_EQ(small_tile(16, 28, 4).num_clusters(), 8);
}

TEST(Tile, MultiCycleFlagFollowsPrecisionCoverage) {
  // w >= P + 10 covers every unmasked shift in the single-cycle window.
  EXPECT_TRUE(big_tile(12, 28).datapath.multi_cycle);
  EXPECT_TRUE(big_tile(28, 28).datapath.multi_cycle);
  EXPECT_FALSE(big_tile(38, 28).datapath.multi_cycle);
  EXPECT_FALSE(big_tile(26, 16).datapath.multi_cycle);
  EXPECT_TRUE(big_tile(25, 16).datapath.multi_cycle);
}

TEST(Tile, BaselinesAreSingleCycle38Bit) {
  const TileConfig b1 = baseline1();
  const TileConfig b2 = baseline2();
  EXPECT_EQ(b1.datapath.adder_tree_width, 38);
  EXPECT_EQ(b2.datapath.adder_tree_width, 38);
  EXPECT_FALSE(b1.datapath.multi_cycle);
  EXPECT_FALSE(b2.datapath.multi_cycle);
  EXPECT_EQ(b1.c_unroll, 8);
  EXPECT_EQ(b2.c_unroll, 16);
  // Baseline peak rates (1 GHz): 1 and 4 TOPS worth of 4x4 MACs.
  EXPECT_EQ(b1.total_multipliers(), 1024);
  EXPECT_EQ(b2.total_multipliers(), 4096);
}

TEST(Tile, IpuConfigInheritsGeometry) {
  const TileConfig t = big_tile(20, 28, 8);
  EXPECT_EQ(t.datapath.n_inputs, t.c_unroll);
  EXPECT_EQ(t.datapath.adder_tree_width, 20);
  EXPECT_EQ(t.datapath.software_precision, 28);
  EXPECT_EQ(t.datapath.accumulator.t, 4);  // ceil_log2(16)
  EXPECT_TRUE(t.datapath.skip_empty_bands);
}

}  // namespace
}  // namespace mpipu
