// Concurrency stress for the graph execution paths: N host threads
// hammering ONE graph CompiledModel (branchy topology: residual add +
// concat fan-in, mixed FP16/INT policy) must be byte-identical to the same
// requests run serially, across repeat runs, for every scheme -- pinning
// the PR 4 reentrancy contract (shared const plans, per-call scratch) on
// the new parallel-branch dispatch, which is exactly where a shared-scratch
// bug would first appear.  Also pins 1-vs-N *pool* threads (intra-call
// parallelism) against the same serial ground truth.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "api/session.h"
#include "common/rng.h"
#include "workload/graph_builders.h"

namespace mpipu {
namespace {

DatapathConfig small_datapath(DecompositionScheme scheme) {
  DatapathConfig cfg = DatapathConfig::for_scheme(scheme);
  cfg.n_inputs = 16;
  cfg.adder_tree_width = 16;
  cfg.software_precision = 28;
  cfg.multi_cycle = true;
  return cfg;
}

/// Residual stage into an Inception-style 3-way concat, at test-size
/// channel counts (the paper-size builders are exercised in
/// test_graph_model / test_golden_graph; stress wants many runs, so the
/// per-run cost must stay tiny): both join types, a projection skip, and
/// two multi-node waves in one model.
GraphModel stress_graph() {
  GraphModel::Builder b("stress-graph");
  ConvSpec pad1;
  pad1.pad = 1;
  const int in = b.input();
  const int blk = append_resnet_basic_block(b, "res", in, 3, 6, 1);
  const int b1 = b.conv_shape("cat.a", 4, 6, 1, 1, ConvSpec{}, blk, true);
  const int b2a = b.conv_shape("cat.b1", 5, 6, 3, 3, pad1, blk, true);
  const int b2 = b.conv_shape("cat.b2", 4, 5, 3, 3, pad1, b2a);
  const int b3 = b.conv_shape("cat.c", 3, 6, 1, 1, ConvSpec{}, blk, true);
  const int cat = b.concat("cat.join", {b1, b2, b3}, true);
  b.conv_shape("head", 4, 11, 1, 1, ConvSpec{}, cat);
  GraphModel g = b.build();
  g.materialize_weights(0x57E55);
  return g;
}

void expect_reports_identical(const RunReport& a, const RunReport& b,
                              const char* what) {
  ASSERT_EQ(a.output.data.size(), b.output.data.size()) << what;
  for (size_t i = 0; i < a.output.data.size(); ++i) {
    ASSERT_EQ(a.output.data[i], b.output.data[i]) << what << " elt " << i;
  }
  ASSERT_EQ(a.layers.size(), b.layers.size()) << what;
  for (size_t l = 0; l < a.layers.size(); ++l) {
    EXPECT_EQ(a.layers[l].stats, b.layers[l].stats)
        << what << " node " << a.layers[l].layer;
  }
  EXPECT_EQ(a.totals, b.totals) << what;
  // Full serialized agreement: errors, estimates, ordering, everything.
  EXPECT_EQ(a.to_json(), b.to_json()) << what;
}

TEST(GraphStress, HostThreadsHammeringOneCompiledModelMatchSerial) {
  const GraphModel graph = stress_graph();
  Rng rng(0x57E56);
  constexpr int kRequests = 4;
  constexpr int kHostThreads = 8;
  constexpr int kRepeats = 3;  // each thread re-runs the stream: repeat-run
                               // determinism under maximum plan contention
  std::vector<Tensor> inputs;
  for (int i = 0; i < kRequests; ++i) {
    inputs.push_back(random_tensor(rng, 3, 7, 7, ValueDist::kHalfNormal, 1.0));
  }

  for (DecompositionScheme scheme :
       {DecompositionScheme::kTemporal, DecompositionScheme::kSerial,
        DecompositionScheme::kSpatial}) {
    RunSpec spec;
    spec.datapath = small_datapath(scheme);
    spec.policy = PrecisionPolicy::all_fp16(AccumKind::kFp32);
    if (scheme != DecompositionScheme::kSpatial) {
      // Mixed precision: quantize the residual trunk, keep branches FP16.
      spec.policy.set_layer("res.conv2", LayerPrecision::int_bits(8, 8));
      spec.policy.set_layer("cat.b1", LayerPrecision::int_bits(8, 8));
    }
    spec.threads = 1;  // serving mode: parallelism across requests
    const CompiledModel compiled = Session(spec).compile(graph, {7, 7});

    std::vector<RunReport> serial;
    for (const Tensor& in : inputs) serial.push_back(compiled.run(in));

    std::vector<std::vector<RunReport>> per_thread(kHostThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kHostThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int r = 0; r < kRepeats; ++r) {
          for (const Tensor& in : inputs) {
            per_thread[static_cast<size_t>(t)].push_back(compiled.run(in));
          }
        }
      });
    }
    for (auto& th : threads) th.join();

    for (int t = 0; t < kHostThreads; ++t) {
      const auto& mine = per_thread[static_cast<size_t>(t)];
      ASSERT_EQ(mine.size(), static_cast<size_t>(kRepeats * kRequests));
      for (size_t r = 0; r < mine.size(); ++r) {
        expect_reports_identical(mine[r], serial[r % inputs.size()],
                                 scheme_name(scheme));
      }
    }
  }
}

TEST(GraphStress, PoolThreadCountNeverChangesResults) {
  // Intra-call parallelism: the same graph compiled at 1, 2 and 5 pool
  // threads -- single-node waves split pixels, multi-node waves split
  // branches; tensors, per-node stats and reports must be identical.
  const GraphModel graph = stress_graph();
  Rng rng(0x57E57);
  const Tensor input = random_tensor(rng, 3, 8, 8, ValueDist::kHalfNormal, 1.0);

  for (DecompositionScheme scheme :
       {DecompositionScheme::kTemporal, DecompositionScheme::kSerial,
        DecompositionScheme::kSpatial}) {
    RunSpec spec;
    spec.datapath = small_datapath(scheme);
    spec.threads = 1;
    const RunReport r1 = Session(spec).compile(graph, {8, 8}).run(input);
    for (int threads : {2, 5}) {
      spec.threads = threads;
      const RunReport rn = Session(spec).compile(graph, {8, 8}).run(input);
      ASSERT_EQ(rn.output.data, r1.output.data)
          << scheme_name(scheme) << " " << threads << " threads";
      EXPECT_EQ(rn.totals, r1.totals) << scheme_name(scheme);
      ASSERT_EQ(rn.layers.size(), r1.layers.size());
      for (size_t l = 0; l < r1.layers.size(); ++l) {
        EXPECT_EQ(rn.layers[l].stats, r1.layers[l].stats)
            << scheme_name(scheme) << " node " << r1.layers[l].layer;
      }
    }
  }
}

TEST(GraphStress, ConcurrentCallersOnSharedSessionCompiledGraphViaRunBatch) {
  // The Session facade path under load: run_batch on a multi-threaded pool
  // with branch dispatch inside, repeated -- results must be stable across
  // repeats (the compile cache serves one immutable plan throughout).
  const GraphModel graph = stress_graph();
  Rng rng(0x57E58);
  std::vector<Tensor> inputs;
  for (int i = 0; i < 3; ++i) {
    inputs.push_back(random_tensor(rng, 3, 6, 6, ValueDist::kHalfNormal, 1.0));
  }
  RunSpec spec;
  spec.datapath = small_datapath(DecompositionScheme::kTemporal);
  spec.threads = 3;
  Session session(spec);
  const BatchRunReport first = session.run_batch(graph, inputs);
  const BatchRunReport second = session.run_batch(graph, inputs);
  EXPECT_EQ(first.to_json(), second.to_json());
}

}  // namespace
}  // namespace mpipu
