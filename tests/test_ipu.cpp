// Core datapath property tests: INT-mode exactness, FP-mode equivalence with
// the exact reference, Proposition 1, MC-IPU losslessness, cycle accounting.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/ipu.h"
#include "core/reference.h"

namespace mpipu {
namespace {

// An accumulator wide enough that it never truncates: isolates the
// multiplier / shifter / adder-tree path from the architectural
// accumulator truncation.
AccumulatorConfig unbounded_acc() {
  AccumulatorConfig acc;
  acc.frac_bits = 100;  // keeps every datapath rescale a left shift
  acc.lossless = true;  // exact accumulation across operations
  return acc;
}

std::vector<Fp16> random_fp16_vec(Rng& rng, int n, double scale = 1.0) {
  std::vector<Fp16> v;
  v.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) v.push_back(Fp16::from_double(rng.normal(0.0, scale)));
  return v;
}

std::vector<Fp16> random_fp16_bits(Rng& rng, int n) {
  std::vector<Fp16> v;
  while (static_cast<int>(v.size()) < n) {
    const Fp16 f = Fp16::from_bits(static_cast<uint32_t>(rng.next_u64()));
    if (f.is_finite()) v.push_back(f);
  }
  return v;
}

// --- INT mode ----------------------------------------------------------------

struct IntModeParam {
  int a_bits, b_bits;
  bool a_unsigned, b_unsigned;
};

class IpuIntMode : public ::testing::TestWithParam<IntModeParam> {};

TEST_P(IpuIntMode, BitExactAgainstInt64Reference) {
  const auto p = GetParam();
  Rng rng(static_cast<uint64_t>(p.a_bits * 131 + p.b_bits * 17 + p.a_unsigned * 3 +
                                p.b_unsigned));
  IpuConfig cfg;
  cfg.n_inputs = 16;
  cfg.adder_tree_width = 12;  // INT mode must be exact even at tiny w
  Ipu ipu(cfg);
  for (int trial = 0; trial < 300; ++trial) {
    ipu.reset_accumulator();
    std::vector<int32_t> a, b;
    int64_t expect = 0;
    const int depth = static_cast<int>(rng.uniform_int(1, 8));
    int cycles = 0;
    for (int d = 0; d < depth; ++d) {
      a.clear();
      b.clear();
      for (int k = 0; k < 16; ++k) {
        const int64_t alo = p.a_unsigned ? 0 : -(int64_t{1} << (p.a_bits - 1));
        const int64_t ahi = p.a_unsigned ? (int64_t{1} << p.a_bits) - 1
                                         : (int64_t{1} << (p.a_bits - 1)) - 1;
        const int64_t blo = p.b_unsigned ? 0 : -(int64_t{1} << (p.b_bits - 1));
        const int64_t bhi = p.b_unsigned ? (int64_t{1} << p.b_bits) - 1
                                         : (int64_t{1} << (p.b_bits - 1)) - 1;
        a.push_back(static_cast<int32_t>(rng.uniform_int(alo, ahi)));
        b.push_back(static_cast<int32_t>(rng.uniform_int(blo, bhi)));
      }
      expect += exact_int_inner_product(a, b);
      cycles += ipu.int_accumulate(a, b, p.a_bits, p.b_bits, p.a_unsigned, p.b_unsigned);
    }
    EXPECT_EQ(ipu.read_int(), expect);
    // Cycle count: Ka * Kb nibble iterations per op.
    EXPECT_EQ(cycles, depth * int_nibble_count(p.a_bits) * int_nibble_count(p.b_bits));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWidths, IpuIntMode,
    ::testing::Values(IntModeParam{4, 4, false, false}, IntModeParam{4, 4, true, true},
                      IntModeParam{4, 4, true, false}, IntModeParam{8, 4, false, false},
                      IntModeParam{8, 8, false, false}, IntModeParam{8, 8, true, true},
                      IntModeParam{8, 12, false, false}, IntModeParam{12, 12, false, false},
                      IntModeParam{16, 8, false, false}, IntModeParam{16, 16, false, false}),
    [](const auto& inst) {
      const auto& p = inst.param;
      return (p.a_unsigned ? "u" : "s") + std::to_string(p.a_bits) + "x" +
             (p.b_unsigned ? "u" : "s") + std::to_string(p.b_bits);
    });

TEST(IpuIntMode, PaperExampleInt8xInt12TakesSixIterations) {
  IpuConfig cfg;
  Ipu ipu(cfg);
  const std::vector<int32_t> a(16, 100), b(16, -1000);
  EXPECT_EQ(ipu.int_accumulate(a, b, 8, 12), 6);
  EXPECT_EQ(ipu.read_int(), 16 * 100 * -1000);
}

// --- FP mode: exactness of the wide datapath ----------------------------------

TEST(IpuFpMode, WideSingleCycleIpuMatchesExactReferenceBitForBit) {
  // IPU(80) with alignment allowance 58 and an unbounded accumulator must
  // reproduce the exact FP-IP: the window never truncates (Proposition 1:
  // 58 < 80-9) and neither does the accumulator.
  Rng rng(101);
  IpuConfig cfg;
  cfg.n_inputs = 16;
  cfg.adder_tree_width = 80;
  cfg.software_precision = 58;
  cfg.multi_cycle = false;
  cfg.accumulator = unbounded_acc();
  Ipu ipu(cfg);
  for (int t = 0; t < 3000; ++t) {
    const auto a = random_fp16_bits(rng, 16);
    const auto b = random_fp16_bits(rng, 16);
    ipu.reset_accumulator();
    ipu.fp_accumulate<kFp16Format>(a, b);
    const FixedPoint exact = exact_fp_inner_product<kFp16Format>(a, b);
    EXPECT_TRUE(ipu.read_raw() == exact) << "trial " << t;
    EXPECT_EQ(ipu.read_fp<kFp32Format>().raw_bits(),
              Fp32::round_from_fixed(exact).raw_bits());
    EXPECT_EQ(ipu.read_fp<kFp16Format>().raw_bits(),
              Fp16::round_from_fixed(exact).raw_bits());
  }
}

TEST(IpuFpMode, McIpuIsLosslessForAnyAdderWidth) {
  // The multi-cycle mechanism itself loses nothing: band-relative local
  // shifts are exact (Proposition 1) and with an unbounded accumulator the
  // band-base shifts are exact too.  So MC-IPU(w) == exact reference for
  // any w, even w = 12 << the 58-bit worst case.
  Rng rng(102);
  for (int w : {10, 12, 14, 16, 20, 28}) {
    IpuConfig cfg;
    cfg.n_inputs = 8;
    cfg.adder_tree_width = w;
    cfg.software_precision = 58;
    cfg.multi_cycle = true;
    cfg.accumulator = unbounded_acc();
    Ipu ipu(cfg);
    for (int t = 0; t < 800; ++t) {
      const auto a = random_fp16_bits(rng, 8);
      const auto b = random_fp16_bits(rng, 8);
      ipu.reset_accumulator();
      ipu.fp_accumulate<kFp16Format>(a, b);
      const FixedPoint exact = exact_fp_inner_product<kFp16Format>(a, b);
      EXPECT_TRUE(ipu.read_raw() == exact) << "w=" << w << " trial " << t;
    }
  }
}

TEST(IpuFpMode, Proposition1SafeAlignmentsAreExact) {
  // Construct inputs whose alignments are all < w - 9; the single-cycle
  // IPU(w) must then be exact (with an unbounded accumulator).
  Rng rng(103);
  for (int w : {12, 16, 20, 28}) {
    const int sp = w - 9;
    IpuConfig cfg;
    cfg.n_inputs = 16;
    cfg.adder_tree_width = w;
    cfg.software_precision = 58;
    cfg.multi_cycle = false;
    cfg.accumulator = unbounded_acc();
    Ipu ipu(cfg);
    for (int t = 0; t < 500; ++t) {
      // Operand exponents within a band of sp/2 keep product alignments
      // within sp - 1.
      std::vector<Fp16> a, b;
      for (int k = 0; k < 16; ++k) {
        const auto ea = static_cast<uint32_t>(rng.uniform_int(8, 8 + (sp - 1) / 2));
        const auto eb = static_cast<uint32_t>(rng.uniform_int(8, 8 + sp / 2 - (sp - 1) / 2));
        a.push_back(Fp16::from_fields(rng.bernoulli(0.5), ea,
                                      static_cast<uint32_t>(rng.uniform_int(0, 1023))));
        b.push_back(Fp16::from_fields(rng.bernoulli(0.5), eb,
                                      static_cast<uint32_t>(rng.uniform_int(0, 1023))));
      }
      ipu.reset_accumulator();
      ipu.fp_accumulate<kFp16Format>(a, b);
      EXPECT_TRUE(ipu.read_raw() == exact_fp_inner_product<kFp16Format>(a, b))
          << "w=" << w << " trial " << t;
    }
  }
}

TEST(IpuFpMode, McAndSingleCycleAgreeWhenWindowCoversSoftwarePrecision) {
  // With software precision P and w >= P + 10, the single-cycle window
  // keeps every unmasked bit, so single-cycle and MC datapaths agree
  // exactly (same masking, unbounded accumulator).
  Rng rng(104);
  const int P = 16;
  IpuConfig sc_cfg;
  sc_cfg.n_inputs = 8;
  sc_cfg.adder_tree_width = P + 10;
  sc_cfg.software_precision = P;
  sc_cfg.multi_cycle = false;
  sc_cfg.accumulator = unbounded_acc();
  IpuConfig mc_cfg = sc_cfg;
  mc_cfg.adder_tree_width = 12;
  mc_cfg.multi_cycle = true;
  Ipu sc(sc_cfg), mc(mc_cfg);
  for (int t = 0; t < 2000; ++t) {
    const auto a = random_fp16_bits(rng, 8);
    const auto b = random_fp16_bits(rng, 8);
    sc.reset_accumulator();
    mc.reset_accumulator();
    sc.fp_accumulate<kFp16Format>(a, b);
    mc.fp_accumulate<kFp16Format>(a, b);
    EXPECT_TRUE(sc.read_raw() == mc.read_raw()) << t;
  }
}

TEST(IpuFpMode, ZeroVectorsGiveZero) {
  IpuConfig cfg;
  Ipu ipu(cfg);
  const std::vector<Fp16> a(16, Fp16::zero()), b(16, Fp16::from_double(3.5));
  ipu.fp_accumulate<kFp16Format>(a, b);
  EXPECT_EQ(ipu.read_fp<kFp16Format>().raw_bits(), Fp16::zero().raw_bits());
  EXPECT_TRUE(ipu.read_raw().is_zero());
}

TEST(IpuFpMode, SingleProductIsAlwaysExactlyRepresented) {
  // n=1: no alignment at all; any IPU must return the exactly-rounded
  // product for every finite FP16 pair (sampled).
  Rng rng(105);
  IpuConfig cfg;
  cfg.n_inputs = 1;
  cfg.adder_tree_width = 12;
  cfg.multi_cycle = true;
  Ipu ipu(cfg);
  for (int t = 0; t < 30000; ++t) {
    const auto a = random_fp16_bits(rng, 1);
    const auto b = random_fp16_bits(rng, 1);
    ipu.reset_accumulator();
    const int cycles = ipu.fp_accumulate<kFp16Format>(a, b);
    EXPECT_EQ(cycles, 9);  // 3x3 nibble iterations, one cycle each
    double expect = a[0].to_double() * b[0].to_double();
    // The accumulator has no signed-zero concept; a -0 product reads back +0.
    if (expect == 0.0) expect = 0.0;
    EXPECT_EQ(ipu.read_fp<kFp32Format>().raw_bits(), Fp32::from_double(expect).raw_bits());
  }
}

TEST(IpuFpMode, SubnormalInputsHandledExactly) {
  IpuConfig cfg;
  cfg.n_inputs = 4;
  cfg.adder_tree_width = 80;
  cfg.software_precision = 58;
  cfg.multi_cycle = false;
  cfg.accumulator = unbounded_acc();
  Ipu ipu(cfg);
  const std::vector<Fp16> a = {Fp16::min_subnormal(), Fp16::min_subnormal(true),
                               Fp16::from_bits(0x03FF), Fp16::from_double(1.0)};
  const std::vector<Fp16> b = {Fp16::min_subnormal(), Fp16::from_double(2.0),
                               Fp16::from_bits(0x0001), Fp16::min_subnormal()};
  ipu.fp_accumulate<kFp16Format>(a, b);
  EXPECT_TRUE(ipu.read_raw() == exact_fp_inner_product<kFp16Format>(a, b));
}

// --- Accumulation across multiple FP-IP ops -----------------------------------

TEST(IpuFpMode, MultiOpAccumulationMatchesReference) {
  Rng rng(106);
  IpuConfig cfg;
  cfg.n_inputs = 16;
  cfg.adder_tree_width = 80;
  cfg.software_precision = 58;
  cfg.multi_cycle = false;
  cfg.accumulator = unbounded_acc();
  Ipu ipu(cfg);
  for (int t = 0; t < 300; ++t) {
    ipu.reset_accumulator();
    FixedPoint exact(0, 0);
    const int depth = static_cast<int>(rng.uniform_int(2, 16));
    for (int d = 0; d < depth; ++d) {
      const auto a = random_fp16_vec(rng, 16, 4.0);
      const auto b = random_fp16_vec(rng, 16, 4.0);
      ipu.fp_accumulate<kFp16Format>(a, b);
      exact = exact + exact_fp_inner_product<kFp16Format>(a, b);
    }
    EXPECT_TRUE(ipu.read_raw() == exact) << t;
  }
}

// --- Cycle accounting ----------------------------------------------------------

TEST(IpuCycles, SingleCycleIpuAlwaysNineCyclesPerFp16Op) {
  Rng rng(107);
  IpuConfig cfg;
  cfg.n_inputs = 16;
  cfg.adder_tree_width = 16;
  cfg.software_precision = 16;
  cfg.multi_cycle = false;
  Ipu ipu(cfg);
  for (int t = 0; t < 200; ++t) {
    const auto a = random_fp16_bits(rng, 16);
    const auto b = random_fp16_bits(rng, 16);
    EXPECT_EQ(ipu.fp_accumulate<kFp16Format>(a, b), 9);
  }
}

TEST(IpuCycles, McCyclesFollowMaxAlignment) {
  // Two products with alignment 0 and D: cycles = 9 * (D / sp + 1) while
  // D <= software precision; beyond that the big product is masked and we
  // are back to 9 cycles.
  IpuConfig cfg;
  cfg.n_inputs = 2;
  cfg.adder_tree_width = 14;  // sp = 5, as in Fig. 4
  cfg.software_precision = 28;
  cfg.multi_cycle = true;
  Ipu ipu(cfg);
  // Keep both exponent fields >= 1 (normals) so the alignment is exactly D.
  for (int D = 0; D <= 24; ++D) {
    const std::vector<Fp16> a = {Fp16::from_fields(false, 25, 0),
                                 Fp16::from_fields(false, static_cast<uint32_t>(25 - D), 0)};
    const std::vector<Fp16> b = {Fp16::one(), Fp16::one()};
    ipu.reset_accumulator();
    const int cycles = ipu.fp_accumulate<kFp16Format>(a, b);
    const int expect = D <= 28 ? 9 * (D / 5 + 1) : 9;
    EXPECT_EQ(cycles, expect) << "D=" << D;
  }
}

TEST(IpuCycles, SkipEmptyBandsAblation) {
  // Alignments {0, 15} with sp = 5: serve loop costs 4 cycles, the
  // skip-empty EHU only 2.
  IpuConfig cfg;
  cfg.n_inputs = 2;
  cfg.adder_tree_width = 14;
  cfg.software_precision = 28;
  cfg.multi_cycle = true;
  const std::vector<Fp16> a = {Fp16::from_fields(false, 25, 0),
                               Fp16::from_fields(false, 10, 0)};
  const std::vector<Fp16> b = {Fp16::one(), Fp16::one()};
  Ipu plain(cfg);
  EXPECT_EQ(plain.fp_accumulate<kFp16Format>(a, b), 9 * 4);
  cfg.skip_empty_bands = true;
  Ipu skipping(cfg);
  EXPECT_EQ(skipping.fp_accumulate<kFp16Format>(a, b), 9 * 2);
  // Same value either way.
  EXPECT_TRUE(plain.read_raw() == skipping.read_raw());
}

TEST(IpuStatsTest, CountersAccumulate) {
  Rng rng(108);
  IpuConfig cfg;
  cfg.n_inputs = 8;
  cfg.adder_tree_width = 12;
  cfg.software_precision = 28;
  Ipu ipu(cfg);
  const auto a = random_fp16_bits(rng, 8);
  const auto b = random_fp16_bits(rng, 8);
  ipu.fp_accumulate<kFp16Format>(a, b);
  const std::vector<int32_t> ia(8, 3), ib(8, -2);
  ipu.int_accumulate(ia, ib, 4, 4);
  EXPECT_EQ(ipu.stats().fp_ops, 1);
  EXPECT_EQ(ipu.stats().int_ops, 1);
  EXPECT_EQ(ipu.stats().nibble_iterations, 9 + 1);
  EXPECT_GE(ipu.stats().cycles, 10);
}

// --- BFloat16 path (Appendix B) ------------------------------------------------

TEST(IpuBf16, FourIterationsAndExactWideResult) {
  Rng rng(109);
  IpuConfig cfg;
  cfg.n_inputs = 8;
  cfg.adder_tree_width = 80;
  cfg.software_precision = 120;  // BF16 products span a much wider range
  cfg.multi_cycle = false;
  cfg.accumulator = unbounded_acc();
  Ipu ipu(cfg);
  for (int t = 0; t < 1000; ++t) {
    std::vector<Bf16> a, b;
    for (int k = 0; k < 8; ++k) {
      // Keep exponents moderate so the unbounded accumulator suffices.
      a.push_back(Bf16::from_double(rng.normal(0.0, 2.0)));
      b.push_back(Bf16::from_double(rng.normal(0.0, 2.0)));
    }
    ipu.reset_accumulator();
    const int cycles = ipu.fp_accumulate<kBf16Format>(a, b);
    EXPECT_EQ(cycles, 4);  // 2x2 nibble iterations
    EXPECT_TRUE(ipu.read_raw() == exact_fp_inner_product<kBf16Format>(a, b)) << t;
  }
}

}  // namespace
}  // namespace mpipu
