// Tests for the analytical hardware model, including the paper's published
// relative area/power claims (§4.2) that the model is calibrated against.
#include <gtest/gtest.h>

#include "model/hw_model.h"

namespace mpipu {
namespace {

TEST(HwModel, ComponentCountsPositive) {
  const GateBreakdown g = tile_gates(proposed_design(28, 64));
  EXPECT_GT(g.mult, 0.0);
  EXPECT_GT(g.wbuf, 0.0);
  EXPECT_GT(g.shifter, 0.0);
  EXPECT_GT(g.adder_tree, 0.0);
  EXPECT_GT(g.accumulator, 0.0);
  EXPECT_GT(g.ehu, 0.0);
}

TEST(HwModel, IntOnlyDesignHasNoFpLogic) {
  const GateBreakdown g = tile_gates(int_only_design());
  EXPECT_EQ(g.shifter, 0.0);
  EXPECT_EQ(g.ehu, 0.0);
  EXPECT_GT(g.accumulator, 0.0);  // still has an INT accumulator
}

TEST(HwModel, PaperClaim38To28SavesAboutSeventeenPercent) {
  // §4.2 (1): "By just dropping the adder tree precision from 38 to 28
  // bits ... area and power are reduced by 17% and 15%".
  const double a38 = tile_gates(nvdla_like_design()).total();
  const double a28 = tile_gates(proposed_design(28, 64)).total();
  const double saving = 1.0 - a28 / a38;
  EXPECT_GT(saving, 0.12);
  EXPECT_LT(saving, 0.22);
  const double p38 = tile_power(nvdla_like_design(), true).total();
  const double p28 = tile_power(proposed_design(28, 64), true).total();
  const double psaving = 1.0 - p28 / p38;
  EXPECT_GT(psaving, 0.10);
  EXPECT_LT(psaving, 0.25);
}

TEST(HwModel, PaperClaim12BitSavesAboutThirtyNinePercent) {
  // §4.2 (2): "tile area can be reduced by up to 39% when reducing adder
  // tree precision to 12 bits".
  const double a38 = tile_gates(nvdla_like_design()).total();
  const double a12 = tile_gates(proposed_design(12, 64)).total();
  const double saving = 1.0 - a12 / a38;
  EXPECT_GT(saving, 0.32);
  EXPECT_LT(saving, 0.46);
}

TEST(HwModel, PaperClaimMcIpu12CostsAboutFortyThreePercentOverIntOnly) {
  // §4.2 (3): "In comparison with INT only IPU, MC-IPU(12) can support FP16
  // with a 43% increase in area".
  const double a_int = tile_gates(int_only_design()).total();
  const double a_12 = tile_gates(proposed_design(12, 64)).total();
  const double increase = a_12 / a_int - 1.0;
  EXPECT_GT(increase, 0.33);
  EXPECT_LT(increase, 0.53);
}

TEST(HwModel, AreaMonotoneInAdderTreeWidth) {
  double prev = 0.0;
  for (int w : {12, 16, 20, 24, 28, 38}) {
    const double a = tile_gates(proposed_design(w, 64)).total();
    EXPECT_GT(a, prev);
    prev = a;
  }
}

TEST(HwModel, BaselineThroughputMatchesPaperSection41) {
  // Baseline2: 4 TOPS (4x4) and 455 GFLOPS; Baseline1: 1 TOPS / 113 GFLOPS.
  const DesignConfig b2 = nvdla_like_design();
  EXPECT_NEAR(peak_tops(b2, 4, 4), 4.096, 0.01);
  EXPECT_NEAR(fp16_tflops(b2) * 1000.0, 455.0, 1.0);
  DesignConfig b1 = proposed_design(38, 32, /*big=*/false);
  b1.tile.datapath.multi_cycle = false;
  EXPECT_NEAR(peak_tops(b1, 4, 4), 1.024, 0.01);
  EXPECT_NEAR(fp16_tflops(b1) * 1000.0, 113.8, 1.0);
}

TEST(HwModel, TemporalIterationsScaleThroughput) {
  const DesignConfig d = proposed_design(28, 64);
  EXPECT_NEAR(peak_tops(d, 8, 4) * 2.0, peak_tops(d, 4, 4), 1e-9);
  EXPECT_NEAR(peak_tops(d, 8, 8) * 4.0, peak_tops(d, 4, 4), 1e-9);
  EXPECT_NEAR(peak_tops(d, 8, 12) * 6.0, peak_tops(d, 4, 4), 1e-9);
}

TEST(HwModel, Table1IntColumns) {
  // INT8-only design runs 4x4 no faster than 8x8 (single 8x8 multiplier).
  const DesignConfig i8 = int8_only_design();
  EXPECT_EQ(peak_tops(i8, 4, 4), peak_tops(i8, 8, 8));
  EXPECT_EQ(fp16_tflops(i8), 0.0);
  // INT4-only: 8x4 halves, 8x8 quarters.
  const DesignConfig i4 = int4_only_design();
  EXPECT_NEAR(peak_tops(i4, 8, 4) * 2.0, peak_tops(i4, 4, 4), 1e-9);
  EXPECT_NEAR(peak_tops(i4, 8, 8) * 4.0, peak_tops(i4, 4, 4), 1e-9);
}

TEST(HwModel, Table1OrderingTopsPerMm2At4x4) {
  // At 4x4, the INT4-only design leads, then MC-IPU4, and wide-multiplier
  // or wide-adder designs trail (Table 1 row 1 ordering).
  const double int4 = tops_per_mm2(int4_only_design(), 4, 4);
  const double mc4 = tops_per_mm2(mc_ipu4_design(), 4, 4);
  const double mc84 = tops_per_mm2(mc_ipu84_design(), 4, 4);
  const double mc8 = tops_per_mm2(mc_ipu8_design(), 4, 4);
  const double nvdla = tops_per_mm2(nvdla_table_design(), 4, 4);
  const double fp16 = tops_per_mm2(fp16_fma_design(), 4, 4);
  EXPECT_GT(int4, mc4);
  EXPECT_GT(mc4, mc84);
  EXPECT_GT(mc84, mc8);
  EXPECT_GT(mc8, nvdla);
  EXPECT_GT(nvdla, fp16);
}

TEST(HwModel, Table1Fp16RowFavorsWideMultipliers) {
  // FP16xFP16 row: the FP16 FMA and 8x8 designs beat the nibble designs in
  // raw FP16 density (the proposed design wins on INT density instead).
  const double mc4 = tflops_per_mm2(mc_ipu4_design(), 1.3);
  const double mc8 = tflops_per_mm2(mc_ipu8_design(), 1.1);
  const double fma = tflops_per_mm2(fp16_fma_design(), 1.0);
  EXPECT_GT(mc8, mc4);
  EXPECT_GT(fma, mc4);
}

TEST(HwModel, IntModePowerBelowFpModePower) {
  // FP-only logic is data-gated in INT mode.
  const DesignConfig d = proposed_design(28, 64);
  EXPECT_LT(total_power_w(d, /*fp_mode=*/false), total_power_w(d, /*fp_mode=*/true));
}

TEST(HwModel, EhuSharingMakesAreaClusterIndependent) {
  // EHUs are time-multiplexed across ~9 IPUs regardless of cluster count
  // (paper §2.2), so the area model does not charge for clustering.
  const double one_cluster = tile_gates(proposed_design(16, 64)).total();
  const double sixteen_clusters = tile_gates(proposed_design(16, 4)).total();
  EXPECT_DOUBLE_EQ(sixteen_clusters, one_cluster);
  EXPECT_GT(tile_gates(proposed_design(16, 4)).ehu, 0.0);
}

TEST(HwModel, EfficiencyHeadlineClaimsDirection) {
  // §4.4: the (12,1)/(16,1) design points improve TOPS/mm^2 and TOPS/W over
  // the NO-OPT baseline by tens of percent.
  const DesignConfig base = nvdla_like_design();
  for (int w : {12, 16}) {
    const DesignConfig opt = proposed_design(w, 4);
    const double area_gain = tops_per_mm2(opt, 4, 4) / tops_per_mm2(base, 4, 4) - 1.0;
    const double power_gain = tops_per_w(opt, 4, 4) / tops_per_w(base, 4, 4) - 1.0;
    EXPECT_GT(area_gain, 0.25) << w;   // paper: up to 46%
    EXPECT_LT(area_gain, 0.75) << w;
    EXPECT_GT(power_gain, 0.30) << w;  // paper: up to 63-74%
    EXPECT_LT(power_gain, 1.00) << w;
  }
}

}  // namespace
}  // namespace mpipu
