// Integration tests: convolution on the bit-accurate IPU datapath vs the
// exact reference -- the mechanism behind the paper's §3.1 accuracy claims.
#include <gtest/gtest.h>

#include "nn/conv.h"

namespace mpipu {
namespace {

IpuConfig wide_ipu() {
  IpuConfig cfg;
  cfg.n_inputs = 16;
  cfg.adder_tree_width = 38;
  cfg.software_precision = 58;
  cfg.multi_cycle = false;
  cfg.accumulator.frac_bits = 100;
  cfg.accumulator.lossless = true;
  return cfg;
}

TEST(ConvReference, KnownTinyCase) {
  Tensor in(1, 3, 3);
  for (int i = 0; i < 9; ++i) in.data[static_cast<size_t>(i)] = i + 1;
  FilterBank f(1, 1, 2, 2);
  f.at(0, 0, 0, 0) = 1.0;
  f.at(0, 0, 0, 1) = 2.0;
  f.at(0, 0, 1, 0) = 3.0;
  f.at(0, 0, 1, 1) = 4.0;
  const Tensor out = conv_reference(in, f, ConvSpec{});
  ASSERT_EQ(out.h, 2);
  ASSERT_EQ(out.w, 2);
  // top-left: 1*1 + 2*2 + 4*3 + 5*4 = 37
  EXPECT_DOUBLE_EQ(out.at(0, 0, 0), 37.0);
  EXPECT_DOUBLE_EQ(out.at(0, 0, 1), 47.0);
  EXPECT_DOUBLE_EQ(out.at(0, 1, 0), 67.0);
  EXPECT_DOUBLE_EQ(out.at(0, 1, 1), 77.0);
}

TEST(ConvReference, PaddingAndStride) {
  Tensor in(1, 4, 4);
  for (auto& v : in.data) v = 1.0;
  FilterBank f(1, 1, 3, 3);
  for (auto& v : f.data) v = 1.0;
  ConvSpec spec;
  spec.pad = 1;
  spec.stride = 2;
  const Tensor out = conv_reference(in, f, spec);
  ASSERT_EQ(out.h, 2);
  ASSERT_EQ(out.w, 2);
  EXPECT_DOUBLE_EQ(out.at(0, 0, 0), 4.0);  // corner sees 2x2 of ones
  EXPECT_DOUBLE_EQ(out.at(0, 1, 1), 9.0);  // interior sees full 3x3
}

TEST(ConvIpu, WideIpuConvIsExactOnFp16Inputs) {
  // With FP16-rounded inputs and a lossless datapath, the IPU conv must
  // agree with the double reference exactly up to one final FP32 rounding.
  Rng rng(21);
  Tensor in = random_tensor(rng, 8, 6, 6, ValueDist::kNormal, 1.0).rounded_to_fp16();
  FilterBank f =
      random_filters(rng, 4, 8, 3, 3, ValueDist::kNormal, 0.1).rounded_to_fp16();
  const Tensor ref = conv_reference(in, f, ConvSpec{});
  const Tensor got = conv_ipu_fp16(in, f, ConvSpec{}, wide_ipu(), AccumKind::kFp32);
  const AgreementStats s = compare_outputs(got, ref);
  // Every output within half an FP32 ULP of the exact value.
  EXPECT_EQ(s.mismatched_fp16, 0);
  EXPECT_LT(s.max_rel_err, 1e-6);
}

TEST(ConvIpu, Precision16MatchesReferenceThroughFp16Rounding) {
  // §3.1: 16-bit IPU precision with FP16 accumulation maintains agreement.
  Rng rng(22);
  Tensor in = random_tensor(rng, 16, 8, 8, ValueDist::kHalfNormal, 1.0).rounded_to_fp16();
  FilterBank f =
      random_filters(rng, 8, 16, 3, 3, ValueDist::kNormal, 0.05).rounded_to_fp16();
  IpuConfig cfg;
  cfg.n_inputs = 16;
  cfg.adder_tree_width = 28;
  cfg.software_precision = 28;
  cfg.multi_cycle = true;
  const Tensor ref = conv_reference(in, f, ConvSpec{});
  const Tensor got = conv_ipu_fp16(in, f, ConvSpec{}, cfg, AccumKind::kFp32);
  const AgreementStats s = compare_outputs(got, ref);
  EXPECT_GT(s.snr_db, 55.0);
  EXPECT_LT(static_cast<double>(s.mismatched_fp16) / static_cast<double>(s.total), 0.02);
}

TEST(ConvIpu, LowPrecisionDegradesGracefully) {
  Rng rng(23);
  Tensor in = random_tensor(rng, 16, 6, 6, ValueDist::kHalfNormal, 1.0).rounded_to_fp16();
  FilterBank f =
      random_filters(rng, 4, 16, 3, 3, ValueDist::kNormal, 0.05).rounded_to_fp16();
  const Tensor ref = conv_reference(in, f, ConvSpec{});
  double prev_snr = -100.0;
  for (int w : {8, 12, 16, 24}) {
    IpuConfig cfg;
    cfg.n_inputs = 16;
    cfg.adder_tree_width = w;
    cfg.software_precision = w;
    cfg.multi_cycle = false;
    const Tensor got = conv_ipu_fp16(in, f, ConvSpec{}, cfg, AccumKind::kFp32);
    const double snr = compare_outputs(got, ref).snr_db;
    EXPECT_GE(snr, prev_snr - 3.0) << w;  // approximately monotone
    prev_snr = snr;
  }
  EXPECT_GT(prev_snr, 50.0);
}

TEST(ConvIpu, IntConvMatchesQuantizedReference) {
  Rng rng(24);
  Tensor in = random_tensor(rng, 8, 5, 5, ValueDist::kHalfNormal, 1.0);
  FilterBank f = random_filters(rng, 4, 8, 3, 3, ValueDist::kNormal, 0.1);
  IpuConfig cfg;
  cfg.n_inputs = 8;
  cfg.adder_tree_width = 12;
  for (int bits : {4, 8}) {
    const Tensor got = conv_ipu_int(in, f, ConvSpec{}, cfg, bits, bits);
    // Build the quantized reference by hand.
    const QuantParams qa = fit_symmetric(in.data, bits);
    const QuantParams qw = fit_symmetric(f.data, bits);
    Tensor in_q = in;
    in_q.data = dequantize(quantize(in.data, qa), qa);
    FilterBank f_q = f;
    f_q.data = dequantize(quantize(f.data, qw), qw);
    const Tensor ref = conv_reference(in_q, f_q, ConvSpec{});
    const AgreementStats s = compare_outputs(got, ref);
    EXPECT_LT(s.max_abs_err, 1e-9) << bits;  // INT mode is exact
  }
}

TEST(ConvIpu, Int4CoarserThanInt8) {
  Rng rng(25);
  Tensor in = random_tensor(rng, 8, 6, 6, ValueDist::kHalfNormal, 1.0);
  FilterBank f = random_filters(rng, 4, 8, 3, 3, ValueDist::kNormal, 0.1);
  IpuConfig cfg;
  cfg.n_inputs = 8;
  const Tensor ref = conv_reference(in, f, ConvSpec{});
  const double snr4 =
      compare_outputs(conv_ipu_int(in, f, ConvSpec{}, cfg, 4, 4), ref).snr_db;
  const double snr8 =
      compare_outputs(conv_ipu_int(in, f, ConvSpec{}, cfg, 8, 8), ref).snr_db;
  EXPECT_GT(snr8, snr4 + 10.0);
  EXPECT_GT(snr4, 10.0);
}

TEST(ConvIpu, CyclesAccountNineIterationsPerOp) {
  Rng rng(26);
  Tensor in = random_tensor(rng, 16, 4, 4, ValueDist::kNormal, 1.0).rounded_to_fp16();
  FilterBank f =
      random_filters(rng, 2, 16, 1, 1, ValueDist::kNormal, 0.1).rounded_to_fp16();
  IpuConvStats stats;
  conv_ipu_fp16(in, f, ConvSpec{}, wide_ipu(), AccumKind::kFp32, &stats);
  // 2 cout * 16 pixels * 1 chunk = 32 ops, 9 cycles each (single-cycle IPU).
  EXPECT_EQ(stats.fp_ops, 32);
  EXPECT_EQ(stats.cycles, 32 * 9);
}

TEST(Pooling, ReluAndMaxpool) {
  Tensor t(1, 2, 2);
  t.data = {-1.0, 2.0, 3.0, -4.0};
  const Tensor r = relu(t);
  EXPECT_EQ(r.data[0], 0.0);
  EXPECT_EQ(r.data[1], 2.0);
  const Tensor p = maxpool2(t);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p.data[0], 3.0);
}

}  // namespace
}  // namespace mpipu
