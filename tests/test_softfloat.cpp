// Unit and property tests for the soft floating point substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "common/rng.h"
#include "softfloat/softfloat.h"

namespace mpipu {
namespace {

// --- Classification & field plumbing ---------------------------------------

TEST(Fp16, ClassifiesSpecialValues) {
  EXPECT_TRUE(Fp16::zero().is_zero());
  EXPECT_TRUE(Fp16::zero(true).is_zero());
  EXPECT_TRUE(Fp16::zero(true).sign());
  EXPECT_TRUE(Fp16::infinity().is_inf());
  EXPECT_TRUE(Fp16::infinity(true).is_inf());
  EXPECT_TRUE(Fp16::quiet_nan().is_nan());
  EXPECT_TRUE(Fp16::min_subnormal().is_subnormal());
  EXPECT_TRUE(Fp16::min_normal().is_normal());
  EXPECT_TRUE(Fp16::max_finite().is_normal());
  EXPECT_TRUE(Fp16::one().is_normal());
}

TEST(Fp16, KnownEncodings) {
  EXPECT_EQ(Fp16::one().raw_bits(), 0x3C00u);
  EXPECT_EQ(Fp16::infinity().raw_bits(), 0x7C00u);
  EXPECT_EQ(Fp16::max_finite().raw_bits(), 0x7BFFu);
  EXPECT_EQ(Fp16::min_subnormal().raw_bits(), 0x0001u);
  EXPECT_EQ(Fp16::min_normal().raw_bits(), 0x0400u);
  EXPECT_EQ(Fp16::from_double(-2.0).raw_bits(), 0xC000u);
  EXPECT_EQ(Fp16::from_double(65504.0).raw_bits(), 0x7BFFu);
  EXPECT_EQ(Fp16::from_double(0.5).raw_bits(), 0x3800u);
}

TEST(Fp16, FormatConstants) {
  EXPECT_EQ(kFp16Format.bias(), 15);
  EXPECT_EQ(kFp16Format.min_exp(), -14);
  EXPECT_EQ(kFp16Format.max_exp(), 15);
  EXPECT_EQ(kFp16Format.sig_bits(), 11);
  EXPECT_EQ(kFp32Format.bias(), 127);
  EXPECT_EQ(kBf16Format.bias(), 127);
  EXPECT_EQ(kBf16Format.sig_bits(), 8);
  EXPECT_EQ(kTf32Format.sig_bits(), 11);
}

TEST(Fp16, DecodeMagnitudeAndExponent) {
  // 1.0: magnitude 1.0000000000b = 1024, exp 0.
  Decoded d = Fp16::one().decode();
  EXPECT_FALSE(d.sign);
  EXPECT_EQ(d.exp, 0);
  EXPECT_EQ(d.magnitude, 1024);
  // Smallest subnormal: magnitude 1 at exp -14.
  d = Fp16::min_subnormal().decode();
  EXPECT_EQ(d.exp, -14);
  EXPECT_EQ(d.magnitude, 1);
  // Max finite: magnitude 2047 at exp 15.
  d = Fp16::max_finite().decode();
  EXPECT_EQ(d.exp, 15);
  EXPECT_EQ(d.magnitude, 2047);
}

TEST(Fp16, ProductExponentRangeMatchesPaper) {
  // Paper: FP16 product exponents span [-28, 30], so alignments reach 58.
  const int lo = Fp16::min_subnormal().decode().exp + Fp16::min_subnormal().decode().exp;
  const int hi = Fp16::max_finite().decode().exp + Fp16::max_finite().decode().exp;
  EXPECT_EQ(lo, -28);
  EXPECT_EQ(hi, 30);
  EXPECT_EQ(hi - lo, 58);
}

// --- Round trips against the host oracle -----------------------------------

TEST(Fp16, ExhaustiveToDoubleFromDoubleRoundTrip) {
  // Every finite FP16 encoding must survive fp16 -> double -> fp16.
  for (uint32_t raw = 0; raw < 0x10000; ++raw) {
    const Fp16 f = Fp16::from_bits(raw);
    if (f.is_nan()) continue;
    const Fp16 back = Fp16::from_double(f.to_double());
    EXPECT_EQ(back.raw_bits(), f.raw_bits()) << "raw=" << raw;
  }
}

TEST(Bf16, ExhaustiveRoundTrip) {
  for (uint32_t raw = 0; raw < 0x10000; ++raw) {
    const Bf16 f = Bf16::from_bits(raw);
    if (f.is_nan()) continue;
    EXPECT_EQ(Bf16::from_double(f.to_double()).raw_bits(), f.raw_bits());
  }
}

TEST(Fp32, RandomRoundTripAgainstHostFloat) {
  Rng rng(1);
  for (int i = 0; i < 200000; ++i) {
    const auto raw = static_cast<uint32_t>(rng.next_u64());
    float host;
    std::memcpy(&host, &raw, 4);
    if (std::isnan(host)) continue;
    const Fp32 f = Fp32::from_bits(raw);
    EXPECT_EQ(f.to_double(), static_cast<double>(host)) << raw;
    EXPECT_EQ(Fp32::from_double(static_cast<double>(host)).raw_bits(), raw);
  }
}

TEST(Fp16, FromDoubleMatchesHostRounding) {
  // The host converts double -> float with RNE; for values whose double
  // representation is exact, double -> fp16 must agree with the two-step
  // double -> float -> fp16 when no double rounding occurs.  Use a directed
  // corpus of hard cases instead: ties, subnormal boundaries, overflow.
  struct Case {
    double in;
    uint32_t expect;
  };
  const Case cases[] = {
      {0.0, 0x0000},        {-0.0, 0x8000},
      {1.0, 0x3C00},        {1.0009765625, 0x3C01},  // 1 + 2^-10
      {1.00048828125, 0x3C00},                        // tie 1 + 2^-11 -> even
      {1.0014648437500, 0x3C02},                      // tie -> even (up)
      {65504.0, 0x7BFF},    {65520.0, 0x7C00},        // tie at inf boundary
      {65519.9, 0x7BFF},    {1e6, 0x7C00},
      {5.960464477539063e-08, 0x0001},                // min subnormal
      {2.9802322387695312e-08, 0x0000},               // tie subnormal -> 0
      {2.98023223876953125e-08 * 1.0000001, 0x0001},
      {6.097555160522461e-05, 0x03FF},                // max subnormal
      {6.103515625e-05, 0x0400},                      // min normal
  };
  for (const auto& c : cases) {
    EXPECT_EQ(Fp16::from_double(c.in).raw_bits(), c.expect) << c.in;
  }
}

TEST(Fp16, NanAndInfHandling) {
  EXPECT_TRUE(Fp16::from_double(std::nan("")).is_nan());
  EXPECT_TRUE(Fp16::from_double(std::numeric_limits<double>::infinity()).is_inf());
  EXPECT_TRUE(Fp16::from_double(-std::numeric_limits<double>::infinity()).is_inf());
  EXPECT_TRUE(Fp16::from_double(-std::numeric_limits<double>::infinity()).sign());
  EXPECT_TRUE(std::isnan(Fp16::quiet_nan().to_double()));
}

// --- FixedPoint rounding path ----------------------------------------------

TEST(RoundFromFixed, ExactValuesUnchanged) {
  for (uint32_t raw = 0; raw < 0x10000; ++raw) {
    const Fp16 f = Fp16::from_bits(raw);
    // FixedPoint has no signed zero, so -0 legitimately round-trips to +0.
    if (!f.is_finite() || f.is_zero()) continue;
    EXPECT_EQ(Fp16::round_from_fixed(f.to_fixed()).raw_bits(), raw);
  }
}

TEST(RoundFromFixed, RoundsToNearestEven) {
  // 1 + 2^-11 is exactly between 1.0 and 1+2^-10: ties to even -> 1.0.
  EXPECT_EQ(Fp16::round_from_fixed(FixedPoint((1 << 11) + 1, -11)).raw_bits(), 0x3C00u);
  // 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9: ties to even -> 1+2^-9.
  EXPECT_EQ(Fp16::round_from_fixed(FixedPoint((1 << 11) + 3, -11)).raw_bits(), 0x3C02u);
  // Just above the tie rounds up.
  EXPECT_EQ(Fp16::round_from_fixed(FixedPoint((1 << 12) + 3, -12)).raw_bits(), 0x3C01u);
}

TEST(RoundFromFixed, CarryPropagationRenormalizes) {
  // 1.1111111111|1 b (11 ones after implicit bit) rounds up to 2.0.
  EXPECT_EQ(Fp16::round_from_fixed(FixedPoint((1 << 12) - 1, -11)).raw_bits(), 0x4000u);
  // Max finite + half ULP ties to even -> inf.
  const FixedPoint tie(0xFFF, 15 - 11);  // 2047.5 * 2^5
  EXPECT_TRUE(Fp16::round_from_fixed(tie).is_inf());
}

TEST(RoundFromFixed, SubnormalRange) {
  // 0.5 * min_subnormal ties to zero (even).
  EXPECT_EQ(Fp16::round_from_fixed(FixedPoint(1, -25)).raw_bits(), 0x0000u);
  // 0.75 * min_subnormal rounds to min_subnormal.
  EXPECT_EQ(Fp16::round_from_fixed(FixedPoint(3, -26)).raw_bits(), 0x0001u);
  // 1.5 * min_subnormal ties to even -> 2 quanta.
  EXPECT_EQ(Fp16::round_from_fixed(FixedPoint(3, -25)).raw_bits(), 0x0002u);
  // Max subnormal + half quantum ties up into min normal.
  EXPECT_EQ(Fp16::round_from_fixed(FixedPoint((1 << 11) - 1, -25)).raw_bits(), 0x0400u);
}

TEST(RoundFromFixed, RandomAgainstHostDouble) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const int64_t mant = rng.uniform_int(-(1 << 30), 1 << 30);
    const int lsb = static_cast<int>(rng.uniform_int(-40, 10));
    const FixedPoint fx(mant, lsb);
    const double exact = fx.to_double_value();
    // Host double holds (31-bit mantissa, small exponent) exactly, and
    // from_double implements the same RNE: results must agree bit for bit.
    EXPECT_EQ(Fp16::round_from_fixed(fx).raw_bits(), Fp16::from_double(exact).raw_bits())
        << mant << " * 2^" << lsb;
    EXPECT_EQ(Fp32::round_from_fixed(fx).raw_bits(), Fp32::from_double(exact).raw_bits());
  }
}

// --- FixedPoint algebra ------------------------------------------------------

TEST(FixedPoint, AdditionAndAlignment) {
  const FixedPoint a(3, 2);    // 12
  const FixedPoint b(5, -1);   // 2.5
  EXPECT_EQ((a + b).to_double_value(), 14.5);
  EXPECT_EQ((a - b).to_double_value(), 9.5);
  EXPECT_TRUE(FixedPoint(4, 0) == FixedPoint(1, 2));
}

TEST(FixedPoint, TruncationFloors) {
  EXPECT_EQ(FixedPoint(7, 0).truncated_to_lsb(1).mantissa(), 3);
  EXPECT_EQ(FixedPoint(-7, 0).truncated_to_lsb(1).mantissa(), -4);  // floor
  EXPECT_EQ(FixedPoint(7, 0).truncated_to_lsb(-2).mantissa(), 28);  // exact
}

// --- Parameterized sweep over formats ---------------------------------------

template <typename T>
class SoftFormatTest : public ::testing::Test {};

using Formats = ::testing::Types<Fp16, Bf16, Tf32, Fp32>;
TYPED_TEST_SUITE(SoftFormatTest, Formats);

TYPED_TEST(SoftFormatTest, DecodeEncodeIdentityOnRandomFiniteValues) {
  Rng rng(42);
  for (int i = 0; i < 20000; ++i) {
    const auto raw = static_cast<uint32_t>(rng.next_u64());
    const TypeParam f = TypeParam::from_bits(raw);
    if (!f.is_finite()) continue;
    const Decoded d = f.decode();
    const double v = std::ldexp(static_cast<double>(d.signed_magnitude()),
                                d.exp - TypeParam::format.man_bits);
    EXPECT_EQ(v, f.to_double());
    EXPECT_EQ(TypeParam::round_from_fixed(f.to_fixed()).raw_bits(), f.raw_bits());
  }
}

TYPED_TEST(SoftFormatTest, OrderingOfMagnitudeMatchesDouble) {
  Rng rng(43);
  for (int i = 0; i < 20000; ++i) {
    const TypeParam a = TypeParam::from_bits(static_cast<uint32_t>(rng.next_u64()));
    const TypeParam b = TypeParam::from_bits(static_cast<uint32_t>(rng.next_u64()));
    if (!a.is_finite() || !b.is_finite()) continue;
    // FixedPoint is backed by int128: exact subtraction needs the two
    // values' significant bits to span < 128 bits.  (The datapath only ever
    // subtracts FP16-product-scale values, far inside that limit.)
    if (!a.is_zero() && !b.is_zero() &&
        std::abs(a.decode().exp - b.decode().exp) > 90) {
      continue;
    }
    const FixedPoint d = a.to_fixed() - b.to_fixed();
    const double dd = a.to_double() - b.to_double();
    EXPECT_EQ(d.mantissa() > 0, dd > 0);
    EXPECT_EQ(d.mantissa() == 0, dd == 0);
  }
}

}  // namespace
}  // namespace mpipu
