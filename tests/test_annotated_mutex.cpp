// The annotated mutex wrappers (common/annotated_mutex.h) must behave
// exactly like the std primitives they wrap -- the thread-safety
// annotations are compile-time only and may not change runtime semantics.
// These tests pin the runtime half of that contract: mutual exclusion,
// try-lock, condvar wait/notify/timeout, and the ManualClock + CondVar
// timed-wait interplay the batching window relies on (deadlines read
// through the virtual clock, the wait itself on real time).
//
// The compile-time half lives in tests/compile_fail/
// thread_safety_negative.cpp (the `thread_safety_negative` ctest), which
// proves a clang build REJECTS bad lock discipline.
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/annotated_mutex.h"
#include "common/clock.h"

namespace mpipu {
namespace {

TEST(MutexLockTest, MutualExclusionUnderContention) {
  Mutex mu;
  int counter = 0;  // deliberately non-atomic: the lock is the protection
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(MutexTest, TryLockReflectsOwnership) {
  Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  EXPECT_FALSE(mu.try_lock());  // non-recursive, like std::mutex
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(TryMutexLockTest, OwnsLockOnlyWhenUncontended) {
  Mutex mu;
  {
    TryMutexLock first(mu);
    ASSERT_TRUE(first.owns_lock());
    TryMutexLock second(mu);
    EXPECT_FALSE(second.owns_lock());  // held: must not block, must not own
  }
  // Both scopes closed; the lock must be free again (a non-owning
  // TryMutexLock must NOT unlock in its destructor).
  TryMutexLock third(mu);
  EXPECT_TRUE(third.owns_lock());
}

TEST(CondVarTest, PredicateWaitSeesNotifiedState) {
  Mutex mu;
  CondVar cv;
  bool ready MPIPU_GUARDED_BY(mu) = false;
  int observed = 0;

  std::thread waiter([&] {
    UniqueLock lock(mu);
    cv.wait(lock, [&]() MPIPU_REQUIRES(mu) { return ready; });
    observed = 1;
  });
  // Unconditional notify first: the waiter's predicate loop must absorb the
  // spurious-style wakeup (ready is still false).
  cv.notify_all();
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.notify_all();
  waiter.join();
  EXPECT_EQ(observed, 1);
}

TEST(CondVarTest, WaitForTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  UniqueLock lock(mu);
  const auto status = cv.wait_for(lock, std::chrono::milliseconds(10));
  EXPECT_EQ(status, std::cv_status::timeout);
}

TEST(CondVarTest, WaitUntilWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool done MPIPU_GUARDED_BY(mu) = false;

  std::thread notifier([&] {
    MutexLock lock(mu);
    done = true;
    cv.notify_one();
  });

  bool woke = false;
  {
    UniqueLock lock(mu);
    // Generous real-time deadline; the notify arrives long before it.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!done) {
      if (cv.wait_until(lock, deadline) == std::cv_status::timeout) break;
    }
    woke = done;
  }
  notifier.join();
  EXPECT_TRUE(woke);
}

// The batching-window pattern from serve/serving_runtime.cpp in miniature:
// the DEADLINE is decided through the virtual clock (ManualClock in tests),
// while the cv wait itself runs on short real-time slices.  Virtual time
// standing still must keep the loop waiting; advancing it past the budget
// must end the wait without any notify.
TEST(CondVarClockTest, ManualClockDeadlineGovernsTimedWaitLoop) {
  ManualClock clock(100.0);
  Mutex mu;
  CondVar cv;
  constexpr double kBudgetS = 5.0;
  const double deadline = clock.now() + kBudgetS;

  std::atomic<int> wait_rounds{0};
  std::atomic<bool> finished{false};

  std::thread worker([&] {
    UniqueLock lock(mu);
    while (clock.now() < deadline) {
      wait_rounds.fetch_add(1, std::memory_order_relaxed);
      // Short REAL wait slice; timeout is expected and benign -- only the
      // virtual deadline decides whether the loop continues.
      (void)cv.wait_for(lock, std::chrono::milliseconds(1));
    }
    finished.store(true, std::memory_order_release);
  });

  // Let the worker spin a few slices with virtual time frozen: it must
  // still be looping (the real-time timeouts alone must not end it).
  while (wait_rounds.load(std::memory_order_relaxed) < 3) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(finished.load(std::memory_order_acquire));

  clock.advance(kBudgetS + 1.0);  // one advance elapses the whole budget
  worker.join();
  EXPECT_TRUE(finished.load(std::memory_order_acquire));
  EXPECT_GE(clock.now(), deadline);
}

// sleep_for on a ManualClock advances virtual time instantly -- a waiter
// blocked on a condvar while another thread "sleeps" through the budget
// must observe the full advance on wake.
TEST(CondVarClockTest, ManualSleepAdvancesTimeForWaiters) {
  ManualClock clock(0.0);
  Mutex mu;
  CondVar cv;
  bool slept MPIPU_GUARDED_BY(mu) = false;

  std::thread sleeper([&] {
    clock.sleep_for(30.0);  // instant under ManualClock
    MutexLock lock(mu);
    slept = true;
    cv.notify_one();
  });

  double seen = -1.0;
  {
    UniqueLock lock(mu);
    cv.wait(lock, [&]() MPIPU_REQUIRES(mu) { return slept; });
    seen = clock.now();
  }
  sleeper.join();
  EXPECT_DOUBLE_EQ(seen, 30.0);
}

}  // namespace
}  // namespace mpipu
