// Golden-vector regression for graph execution: fixed-seed residual and
// concat blocks are run per scheme and their outputs digested (FNV-1a over
// the raw output doubles, plus stats counters and sampled values) into a
// JSON document emitted through the repo's single Json emitter.  The
// serialized document must match tests/golden/graph_golden.json byte for
// byte -- ANY drift in the datapath, the graph executor, the policy
// resolution, the stats accounting or the JSON emitter itself fails here.
//
// Intentional changes: regenerate with
//
//   MPIPU_UPDATE_GOLDEN=1 ./test_golden_graph
//
// and commit the diff (review it -- every changed byte is a behaviour
// change shipped to every downstream consumer).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "api/session.h"
#include "common/rng.h"
#include "workload/graph_builders.h"

namespace mpipu {
namespace {

const char* kGoldenRelPath = "/tests/golden/graph_golden.json";

uint64_t fnv1a_doubles(const std::vector<double>& v) {
  uint64_t h = 1469598103934665603ull;
  for (double d : v) {
    unsigned char b[sizeof(double)];
    std::memcpy(b, &d, sizeof(double));
    for (size_t i = 0; i < sizeof(double); ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  return h;
}

std::string hex64(uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// One golden case: run `graph` under `spec` on the fixed-seed input and
/// digest everything a regression should pin.
Json run_case(const char* label, const GraphModel& graph, int input_c,
              int input_h, int input_w, const RunSpec& spec) {
  Rng rng(0x601D);  // one fixed input per geometry; weights are per-graph
  const Tensor input = random_tensor(rng, input_c, input_h, input_w,
                                     ValueDist::kHalfNormal, 1.0);
  Session session(spec);
  const CompiledModel compiled =
      session.compile(graph, {input_h, input_w});
  const RunReport report = compiled.run(input);

  Json j = Json::object();
  j.set("case", label);
  j.set("scheme", report.scheme);
  j.set("input_digest", hex64(fnv1a_doubles(input.data)));
  j.set("output_shape", std::to_string(report.output.c) + "x" +
                            std::to_string(report.output.h) + "x" +
                            std::to_string(report.output.w));
  j.set("output_digest", hex64(fnv1a_doubles(report.output.data)));
  j.set("reference_digest", hex64(fnv1a_doubles(report.reference_output.data)));
  j.set("fp_ops", report.totals.fp_ops);
  j.set("int_ops", report.totals.int_ops);
  j.set("cycles", report.totals.cycles);
  j.set("nibble_iterations", report.totals.nibble_iterations);
  Json samples = Json::array();
  for (size_t i = 0; i < report.output.data.size() && i < 4; ++i) {
    samples.push(report.output.data[i]);
  }
  j.set("output_samples", std::move(samples));
  Json nodes = Json::array();
  for (const LayerRunReport& l : report.layers) {
    Json n = Json::object();
    n.set("node", l.layer);
    n.set("precision", l.precision);
    n.set("cycles", l.stats.cycles);
    nodes.push(std::move(n));
  }
  j.set("nodes", std::move(nodes));
  return j;
}

std::string build_golden_document() {
  // One residual block and one concat block per scheme, INT8 extras on the
  // schemes that support INT.  Weights/inputs are fixed-seed; graphs are
  // the workload builders so the goldens also pin builder topology.
  GraphModel residual = resnet_basic_block_graph(4, 6, 2, "golden-residual");
  residual.materialize_weights(0xA11CE);
  GraphModel concat = inception_a_block_graph(5, "golden-concat");
  concat.materialize_weights(0xB0B);

  Json cases = Json::array();
  for (DecompositionScheme scheme :
       {DecompositionScheme::kTemporal, DecompositionScheme::kSerial,
        DecompositionScheme::kSpatial}) {
    RunSpec spec;
    spec.datapath = DatapathConfig::for_scheme(scheme);
    spec.datapath.n_inputs = 16;
    spec.datapath.adder_tree_width = 16;
    spec.datapath.software_precision = 28;
    spec.datapath.multi_cycle = true;
    spec.threads = 1;
    cases.push(run_case("residual", residual, 4, 9, 9, spec));
    cases.push(run_case("concat", concat, 5, 7, 7, spec));
    if (scheme != DecompositionScheme::kSpatial) {
      RunSpec int_spec = spec;
      int_spec.policy = PrecisionPolicy::all_int(8);
      cases.push(run_case("residual-int8", residual, 4, 9, 9, int_spec));
    }
  }
  Json root = Json::object();
  root.set("golden", "graph-execution");
  root.set("format_version", 1);
  root.set("cases", std::move(cases));
  return root.dump() + "\n";
}

TEST(GoldenGraph, SerializedDigestsMatchCommittedFileByteForByte) {
  const std::string path = std::string(MPIPU_SOURCE_DIR) + kGoldenRelPath;
  const std::string document = build_golden_document();

  if (std::getenv("MPIPU_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << document;
    GTEST_SKIP() << "golden file regenerated at " << path
                 << " -- review and commit the diff";
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " -- run MPIPU_UPDATE_GOLDEN=1 ./test_golden_graph once and commit it";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string committed = buf.str();

  // Byte-for-byte: locate the first divergence for a usable diagnostic.
  if (document != committed) {
    size_t at = 0;
    while (at < document.size() && at < committed.size() &&
           document[at] == committed[at]) {
      ++at;
    }
    const size_t lo = at > 60 ? at - 60 : 0;
    FAIL() << "golden drift at byte " << at << ":\n  committed: ..."
           << committed.substr(lo, 120) << "\n  computed:  ..."
           << document.substr(lo, 120)
           << "\nIf intentional, regenerate with MPIPU_UPDATE_GOLDEN=1 and "
              "commit the diff.";
  }
}

}  // namespace
}  // namespace mpipu
