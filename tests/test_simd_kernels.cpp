// Differential tests for the portable SIMD kernel layer (core/simd).
//
// Two walls, both pinned against the scalar reference implementations:
//
//  * kernel-level: every KernelTable entry of every compiled vector backend
//    must produce byte-identical outputs to the scalar table over ragged
//    view lengths (vector body + scalar tail), empty bands, all-masked
//    lanes and all-zero operand planes;
//  * datapath-level: a scheme unit running with a vector backend forced
//    must produce bit-identical accumulator values, per-op cycle counts
//    and stats to the same unit running scalar-forced, across scheme x
//    {FP16, INT8, INT4} x adder-tree width x mode sweeps (including the
//    configs that route through the fused whole-op kernels and the ones
//    that fall back to the scalar oracle).
//
// When only the scalar backend is compiled in (the default build without
// MPIPU_NATIVE) the differential tests skip -- there is nothing to diff.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "core/datapath.h"
#include "core/simd/simd.h"

namespace mpipu {
namespace {

using simd::Backend;
using simd::KernelTable;

/// Every vector backend compiled into this binary.
std::vector<Backend> vector_backends() {
  std::vector<Backend> v;
  for (Backend b : {Backend::kAvx2, Backend::kNeon}) {
    if (simd::backend_compiled(b)) v.push_back(b);
  }
  return v;
}

/// Restores the startup backend selection on scope exit.
struct BackendGuard {
  ~BackendGuard() { simd::reset_backend(); }
};

// View lengths covering empty vector bodies, exact vector widths and ragged
// scalar tails; the fused kernels cap at kFusedLanes.
constexpr size_t kSizes[] = {1, 5, 8, 13, 16, 31, 37};
constexpr size_t kFusedSizes[] = {1, 5, 8, 13, 16};

std::vector<int8_t> random_nibbles(Rng& rng, size_t n, bool all_zero = false) {
  std::vector<int8_t> v(n, 0);
  if (!all_zero) {
    for (auto& x : v) x = static_cast<int8_t>(rng.uniform_int(-15, 15));
  }
  return v;
}

/// Serve-band plane: lane bands in [-1, bands), padded through `pad` with
/// -1 (the driver-owned-plane contract of the fused kernels).
std::vector<int32_t> random_bands(Rng& rng, size_t n, int bands, size_t pad,
                                  bool all_masked = false) {
  std::vector<int32_t> v(std::max(n, pad), -1);
  for (size_t k = 0; k < n; ++k) {
    v[k] = all_masked ? -1
                      : static_cast<int32_t>(rng.uniform_int(-1, bands - 1));
  }
  return v;
}

std::vector<int32_t> random_i32(Rng& rng, size_t n, int64_t lo, int64_t hi,
                                size_t pad = 0) {
  std::vector<int32_t> v(std::max(n, pad), 0);
  for (size_t k = 0; k < n; ++k) {
    v[k] = static_cast<int32_t>(rng.uniform_int(lo, hi));
  }
  return v;
}

// --- kernel-level equality ---------------------------------------------------

TEST(SimdKernels, EhuStagesMatchScalar) {
  const auto vecs = vector_backends();
  if (vecs.empty()) GTEST_SKIP() << "only the scalar backend is compiled in";
  const KernelTable& S = *simd::kernels_for(Backend::kScalar);
  Rng rng(11);
  for (Backend b : vecs) {
    const KernelTable& V = *simd::kernels_for(b);
    for (size_t n : kSizes) {
      for (int trial = 0; trial < 20; ++trial) {
        const auto ea = random_i32(rng, n, -2000, 2000);
        const auto eb = random_i32(rng, n, -2000, 2000);
        std::vector<int32_t> sum_s(n), sum_v(n);
        int32_t mx_s, mn_s, mx_v, mn_v;
        S.sum_minmax_i32(ea.data(), eb.data(), sum_s.data(), n, &mx_s, &mn_s);
        V.sum_minmax_i32(ea.data(), eb.data(), sum_v.data(), n, &mx_v, &mn_v);
        EXPECT_EQ(sum_s, sum_v);
        EXPECT_EQ(mx_s, mx_v);
        EXPECT_EQ(mn_s, mn_v);

        std::vector<int32_t> al_s(n), al_v(n);
        S.rsub_i32(mx_s, sum_s.data(), al_s.data(), n);
        V.rsub_i32(mx_s, sum_s.data(), al_v.data(), n);
        EXPECT_EQ(al_s, al_v);

        // mask_and_band needs 0 <= align < 2^16 and 1 <= sp < 2^16.
        const auto align = random_i32(rng, n, 0, 65535);
        const int32_t soft = static_cast<int32_t>(rng.uniform_int(0, 100));
        const int32_t sp = static_cast<int32_t>(rng.uniform_int(1, 40));
        std::vector<int32_t> band_s(n), band_v(n);
        std::vector<uint8_t> m_s(n), m_v(n);
        S.mask_and_band_i32(align.data(), n, soft, sp, band_s.data(), m_s.data());
        V.mask_and_band_i32(align.data(), n, soft, sp, band_v.data(), m_v.data());
        EXPECT_EQ(band_s, band_v);
        EXPECT_EQ(m_s, m_v);

        std::vector<int32_t> sb_s(n), up_s(n), dn_s(n), sb_v(n), up_v(n), dn_v(n);
        for (int sc = 0; sc < 2; ++sc) {
          S.serve_shifts_i32(align.data(), band_s.data(), n, sp - 1, sp, sc, 28,
                             sb_s.data(), up_s.data(), dn_s.data());
          V.serve_shifts_i32(align.data(), band_s.data(), n, sp - 1, sp, sc, 28,
                             sb_v.data(), up_v.data(), dn_v.data());
          EXPECT_EQ(sb_s, sb_v);
          EXPECT_EQ(up_s, up_v);
          EXPECT_EQ(dn_s, dn_v);
        }
      }
    }
  }
}

TEST(SimdKernels, EhuFusedMatchesScalar) {
  const auto vecs = vector_backends();
  if (vecs.empty()) GTEST_SKIP() << "only the scalar backend is compiled in";
  const KernelTable& S = *simd::kernels_for(Backend::kScalar);
  Rng rng(12);
  for (Backend b : vecs) {
    const KernelTable& V = *simd::kernels_for(b);
    for (size_t n : kSizes) {
      for (int trial = 0; trial < 30; ++trial) {
        // Narrow spreads exercise the banding math; the wide-spread trial
        // exercises the magic-divide bail (both backends must agree on it).
        const bool wide = trial % 10 == 9;
        const auto ea = random_i32(rng, n, -60, 60);
        auto eb = random_i32(rng, n, -60, 60);
        if (wide && n > 0) eb[n - 1] = -200000;
        const int32_t soft = static_cast<int32_t>(rng.uniform_int(0, 60));
        const int32_t sp = static_cast<int32_t>(rng.uniform_int(1, 30));
        std::vector<int32_t> al_s(n), bd_s(n), al_v(n), bd_v(n);
        int32_t me_s, mb_s, nm_s, ma_s, me_v, mb_v, nm_v, ma_v;
        uint32_t occ_s, occ_v;
        const bool ok_s =
            S.ehu_fused_i32(ea.data(), eb.data(), n, soft, sp, al_s.data(),
                            bd_s.data(), &me_s, &occ_s, &mb_s, &nm_s, &ma_s);
        const bool ok_v =
            V.ehu_fused_i32(ea.data(), eb.data(), n, soft, sp, al_v.data(),
                            bd_v.data(), &me_v, &occ_v, &mb_v, &nm_v, &ma_v);
        ASSERT_EQ(ok_s, ok_v) << "n=" << n << " trial " << trial;
        if (!ok_s) continue;  // outputs unspecified on the bail path
        EXPECT_EQ(al_s, al_v);
        EXPECT_EQ(bd_s, bd_v);
        EXPECT_EQ(me_s, me_v);
        EXPECT_EQ(occ_s, occ_v);
        EXPECT_EQ(mb_s, mb_v);
        EXPECT_EQ(nm_s, nm_v);
        EXPECT_EQ(ma_s, ma_v);
      }
    }
  }
}

TEST(SimdKernels, NibbleBandSumsMatchScalar) {
  const auto vecs = vector_backends();
  if (vecs.empty()) GTEST_SKIP() << "only the scalar backend is compiled in";
  const KernelTable& S = *simd::kernels_for(Backend::kScalar);
  Rng rng(13);
  for (Backend b : vecs) {
    const KernelTable& V = *simd::kernels_for(b);
    for (size_t n : kSizes) {
      for (int trial = 0; trial < 20; ++trial) {
        const int bands = static_cast<int>(rng.uniform_int(1, simd::kMaxBands));
        const bool zero_planes = trial == 0;
        const auto pa = random_nibbles(rng, n, zero_planes);
        const auto pb = random_nibbles(rng, n, zero_planes);
        const auto band = random_bands(rng, n, bands, n, trial == 1);
        const auto up = random_i32(rng, n, 0, 7);
        const auto down = random_i32(rng, n, 0, trial % 2 == 0 ? 0 : 5);
        int64_t s_s[simd::kMaxBands] = {0}, s_v[simd::kMaxBands] = {0};
        S.nibble_band_sums_i32(pa.data(), pb.data(), band.data(), up.data(),
                               down.data(), n, bands, s_s);
        V.nibble_band_sums_i32(pa.data(), pb.data(), band.data(), up.data(),
                               down.data(), n, bands, s_v);
        for (int c = 0; c < bands; ++c) EXPECT_EQ(s_s[c], s_v[c]) << c;
        int64_t l_s[simd::kMaxBands] = {0}, l_v[simd::kMaxBands] = {0};
        S.nibble_band_sums_i64(pa.data(), pb.data(), band.data(), up.data(),
                               down.data(), n, bands, l_s);
        V.nibble_band_sums_i64(pa.data(), pb.data(), band.data(), up.data(),
                               down.data(), n, bands, l_v);
        for (int c = 0; c < bands; ++c) EXPECT_EQ(l_s[c], l_v[c]) << c;
      }
    }
  }
}

TEST(SimdKernels, NibbleFused3x3MatchesScalar) {
  const auto vecs = vector_backends();
  if (vecs.empty()) GTEST_SKIP() << "only the scalar backend is compiled in";
  const KernelTable& S = *simd::kernels_for(Backend::kScalar);
  Rng rng(14);
  constexpr size_t kStride = 32;
  for (Backend b : vecs) {
    const KernelTable& V = *simd::kernels_for(b);
    for (size_t n : kFusedSizes) {
      for (int trial = 0; trial < 30; ++trial) {
        const int bands = static_cast<int>(rng.uniform_int(1, simd::kMaxBands));
        const bool zero_planes = trial == 0;
        // 3 nibble planes each, plane-major; pads past n are live-looking
        // noise the kernel must ignore.
        std::vector<int8_t> a(3 * kStride), bb(3 * kStride);
        for (auto& x : a) x = static_cast<int8_t>(rng.uniform_int(-15, 15));
        for (auto& x : bb) x = static_cast<int8_t>(rng.uniform_int(-15, 15));
        if (zero_planes) {
          for (int i = 0; i < 3; ++i) {
            std::memset(a.data() + i * kStride, 0, n);
            std::memset(bb.data() + i * kStride, 0, n);
          }
        }
        const auto band =
            random_bands(rng, n, bands, simd::kFusedLanes, trial == 1);
        auto up = random_i32(rng, n, 0, 7, simd::kFusedLanes);
        int64_t s_s[9 * simd::kMaxBands], s_v[9 * simd::kMaxBands];
        uint32_t nz_s = 0, nz_v = 0;
        S.nibble_fused3x3_i16(a.data(), kStride, bb.data(), kStride,
                              band.data(), up.data(), n, bands, s_s, &nz_s);
        V.nibble_fused3x3_i16(a.data(), kStride, bb.data(), kStride,
                              band.data(), up.data(), n, bands, s_v, &nz_v);
        EXPECT_EQ(nz_s, nz_v) << "n=" << n << " trial " << trial;
        for (int i = 0; i < 9 * simd::kMaxBands; ++i) {
          EXPECT_EQ(s_s[i], s_v[i]) << "slot " << i << " n=" << n;
        }
        if (zero_planes) EXPECT_EQ(nz_s, 0u);
      }
    }
  }
}

TEST(SimdKernels, SerialKernelsMatchScalar) {
  const auto vecs = vector_backends();
  if (vecs.empty()) GTEST_SKIP() << "only the scalar backend is compiled in";
  const KernelTable& S = *simd::kernels_for(Backend::kScalar);
  Rng rng(15);
  for (Backend b : vecs) {
    const KernelTable& V = *simd::kernels_for(b);
    for (size_t n : kSizes) {
      for (int trial = 0; trial < 20; ++trial) {
        const auto a_sm = random_i32(rng, n, -2047, 2047);
        const auto b_sm = random_i32(rng, n, -2047, 2047);
        std::vector<uint32_t> mag_s(n), mag_v(n);
        std::vector<int32_t> p_s(n), p_v(n);
        S.serial_lanes_i32(a_sm.data(), b_sm.data(), n, mag_s.data(), p_s.data());
        V.serial_lanes_i32(a_sm.data(), b_sm.data(), n, mag_v.data(), p_v.data());
        EXPECT_EQ(mag_s, mag_v);
        EXPECT_EQ(p_s, p_v);

        const auto up = random_i32(rng, n, 0, 4);
        const auto down = random_i32(rng, n, 0, trial % 2 == 0 ? 0 : 3);
        std::vector<int32_t> v_s(n), v_v(n);
        S.shifted_lanes_i32(p_s.data(), up.data(), down.data(), n, v_s.data());
        V.shifted_lanes_i32(p_s.data(), up.data(), down.data(), n, v_v.data());
        EXPECT_EQ(v_s, v_v);
        std::vector<int64_t> w_s(n), w_v(n);
        S.shifted_lanes_i64(p_s.data(), up.data(), down.data(), n, w_s.data());
        V.shifted_lanes_i64(p_s.data(), up.data(), down.data(), n, w_v.data());
        EXPECT_EQ(w_s, w_v);

        const int bands = static_cast<int>(rng.uniform_int(1, simd::kMaxBands));
        const auto band = random_bands(rng, n, bands, n, trial == 1);
        const int t = static_cast<int>(rng.uniform_int(0, simd::kSerialSteps - 1));
        int64_t s_s[simd::kMaxBands] = {0}, s_v[simd::kMaxBands] = {0};
        S.serial_band_sums_i32(v_s.data(), mag_s.data(), t, band.data(), n,
                               bands, s_s);
        V.serial_band_sums_i32(v_s.data(), mag_s.data(), t, band.data(), n,
                               bands, s_v);
        for (int c = 0; c < bands; ++c) EXPECT_EQ(s_s[c], s_v[c]) << c;
        int64_t l_s[simd::kMaxBands] = {0}, l_v[simd::kMaxBands] = {0};
        S.serial_band_sums_i64(w_s.data(), mag_s.data(), t, band.data(), n,
                               bands, l_s);
        V.serial_band_sums_i64(w_s.data(), mag_s.data(), t, band.data(), n,
                               bands, l_v);
        for (int c = 0; c < bands; ++c) EXPECT_EQ(l_s[c], l_v[c]) << c;
      }
    }
  }
}

TEST(SimdKernels, SerialFusedMatchesScalar) {
  const auto vecs = vector_backends();
  if (vecs.empty()) GTEST_SKIP() << "only the scalar backend is compiled in";
  const KernelTable& S = *simd::kernels_for(Backend::kScalar);
  Rng rng(16);
  for (Backend b : vecs) {
    const KernelTable& V = *simd::kernels_for(b);
    for (size_t n : kFusedSizes) {
      for (int trial = 0; trial < 30; ++trial) {
        const int bands = static_cast<int>(rng.uniform_int(1, simd::kMaxBands));
        // |v| < 2^15 (the guard <= 4 driver bound), mag < 2^13, zero pads.
        const auto v =
            random_i32(rng, n, -32752, 32752, simd::kFusedLanes);
        std::vector<uint32_t> mag(simd::kFusedLanes, 0);
        for (size_t k = 0; k < n; ++k) {
          mag[k] = static_cast<uint32_t>(rng.uniform_int(0, (1 << 13) - 1));
        }
        const auto band =
            random_bands(rng, n, bands, simd::kFusedLanes, trial == 1);
        int64_t s_s[simd::kMaxBands * simd::kSerialSteps];
        int64_t s_v[simd::kMaxBands * simd::kSerialSteps];
        S.serial_fused_i16(v.data(), mag.data(), band.data(), n, bands, s_s);
        V.serial_fused_i16(v.data(), mag.data(), band.data(), n, bands, s_v);
        for (int i = 0; i < bands * simd::kSerialSteps; ++i) {
          EXPECT_EQ(s_s[i], s_v[i]) << "slot " << i << " n=" << n;
        }
      }
    }
  }
}

TEST(SimdKernels, SpatialKernelsMatchScalar) {
  const auto vecs = vector_backends();
  if (vecs.empty()) GTEST_SKIP() << "only the scalar backend is compiled in";
  const KernelTable& S = *simd::kernels_for(Backend::kScalar);
  Rng rng(17);
  constexpr int kPlanes = 5;
  for (Backend b : vecs) {
    const KernelTable& V = *simd::kernels_for(b);
    for (size_t n : kSizes) {
      const size_t stride = (n + 31) & ~size_t{31};
      for (int trial = 0; trial < 20; ++trial) {
        // EHU-style inputs: align in the magic-divide-exact range, some
        // lanes masked via a negative EHU band.
        const auto align = random_i32(rng, n, 0, 60000);
        const auto ehu_band = random_bands(rng, n, 4, n, trial == 1);
        const int32_t sp = static_cast<int32_t>(rng.uniform_int(1, 30));
        const int32_t guard = sp - 1;
        const int32_t offs0 = 16;
        std::vector<int32_t> bd_s(kPlanes * stride), up_s(kPlanes * stride);
        std::vector<int32_t> bd_v(kPlanes * stride), up_v(kPlanes * stride);
        int32_t mb_s = 0, mb_v = 0;
        uint32_t occ_s = 0, occ_v = 0;
        S.diag_bands_i32(align.data(), ehu_band.data(), n, offs0, kPlanes, sp,
                         guard, stride, bd_s.data(), up_s.data(), &mb_s, &occ_s);
        V.diag_bands_i32(align.data(), ehu_band.data(), n, offs0, kPlanes, sp,
                         guard, stride, bd_v.data(), up_v.data(), &mb_v, &occ_v);
        EXPECT_EQ(mb_s, mb_v);
        EXPECT_EQ(occ_s, occ_v);
        for (int s = 0; s < kPlanes; ++s) {
          for (size_t k = 0; k < n; ++k) {
            const size_t i = static_cast<size_t>(s) * stride + k;
            EXPECT_EQ(bd_s[i], bd_v[i]) << "plane " << s << " lane " << k;
            EXPECT_EQ(up_s[i], up_v[i]) << "plane " << s << " lane " << k;
          }
        }

        // Diagonal products from random nibble planes (3 planes each side).
        std::vector<int8_t> pa(3 * stride), pb(3 * stride);
        for (auto& x : pa) x = static_cast<int8_t>(rng.uniform_int(-15, 15));
        for (auto& x : pb) x = static_cast<int8_t>(rng.uniform_int(-15, 15));
        std::vector<int16_t> d_s(kPlanes * stride, 0), d_v(kPlanes * stride, 0);
        S.fp16_diag_products(pa.data(), stride, pb.data(), stride, n,
                             d_s.data(), stride);
        V.fp16_diag_products(pa.data(), stride, pb.data(), stride, n,
                             d_v.data(), stride);
        for (int s = 0; s < kPlanes; ++s) {
          for (size_t k = 0; k < n; ++k) {
            const size_t i = static_cast<size_t>(s) * stride + k;
            EXPECT_EQ(d_s[i], d_v[i]) << "plane " << s << " lane " << k;
          }
        }

        // Band sums over all planes in one call; clamp bands and up-shifts
        // into the i32-safe range for the narrow variant.
        const int bands = std::min<int>(simd::kMaxBands, mb_s + 1);
        std::vector<int32_t> up_c(up_s);
        for (auto& u : up_c) u = std::min(u, 7);
        std::vector<int32_t> bd_c(bd_s);
        for (auto& c : bd_c) c = std::min(c, bands - 1);
        int64_t sums_s[simd::kMaxBands], sums_v[simd::kMaxBands];
        S.diag_band_sums_planes_i32(d_s.data(), bd_c.data(), up_c.data(),
                                    stride, kPlanes, n, bands, sums_s);
        V.diag_band_sums_planes_i32(d_s.data(), bd_c.data(), up_c.data(),
                                    stride, kPlanes, n, bands, sums_v);
        for (int c = 0; c < bands; ++c) EXPECT_EQ(sums_s[c], sums_v[c]) << c;
        S.diag_band_sums_planes_i64(d_s.data(), bd_c.data(), up_c.data(),
                                    stride, kPlanes, n, bands, sums_s);
        V.diag_band_sums_planes_i64(d_s.data(), bd_c.data(), up_c.data(),
                                    stride, kPlanes, n, bands, sums_v);
        for (int c = 0; c < bands; ++c) EXPECT_EQ(sums_s[c], sums_v[c]) << c;
      }
    }
  }
}

TEST(SimdKernels, IntKernelsMatchScalar) {
  const auto vecs = vector_backends();
  if (vecs.empty()) GTEST_SKIP() << "only the scalar backend is compiled in";
  const KernelTable& S = *simd::kernels_for(Backend::kScalar);
  Rng rng(18);
  for (Backend b : vecs) {
    const KernelTable& V = *simd::kernels_for(b);
    for (size_t n : kSizes) {
      for (int trial = 0; trial < 20; ++trial) {
        const auto pa = random_nibbles(rng, n, trial == 0);
        const auto pb = random_nibbles(rng, n, trial == 0);
        EXPECT_EQ(S.dot_i8(pa.data(), pb.data(), n),
                  V.dot_i8(pa.data(), pb.data(), n));
        const auto a = random_i32(rng, n, -4095, 4095);
        const auto bits = random_i32(rng, n, 0, (1 << 12) - 1);
        const int t = static_cast<int>(rng.uniform_int(0, 11));
        EXPECT_EQ(S.bit_masked_sum_i32(a.data(), bits.data(), t, n),
                  V.bit_masked_sum_i32(a.data(), bits.data(), t, n));
      }
    }
  }
}

// --- datapath-level equality -------------------------------------------------

std::vector<Fp16> random_fp16_bits(Rng& rng, int n) {
  std::vector<Fp16> v;
  while (static_cast<int>(v.size()) < n) {
    const Fp16 f = Fp16::from_bits(static_cast<uint32_t>(rng.next_u64()));
    if (f.is_finite()) v.push_back(f);
  }
  return v;
}

constexpr auto kAllSchemes = {DecompositionScheme::kTemporal,
                              DecompositionScheme::kSerial,
                              DecompositionScheme::kSpatial};

/// Runs the same FP16 op sequence scalar-forced and vector-forced on fresh
/// units and asserts bit-identical values, cycles and stats.
void diff_fp16_config(const DatapathConfig& cfg, Backend vec, uint64_t seed) {
  // Generate the op sequence once (lengths ragged against n_inputs, raw
  // FP16 bit patterns for full exponent spread -- this drives both the
  // fused fast paths and their wide-spread scalar-oracle fallbacks).
  Rng rng(seed);
  struct Op {
    std::vector<Fp16> a, b;
  };
  std::vector<Op> ops;
  for (int t = 0; t < 60; ++t) {
    const int len = static_cast<int>(rng.uniform_int(1, cfg.n_inputs));
    ops.push_back({random_fp16_bits(rng, len), random_fp16_bits(rng, len)});
  }

  BackendGuard guard;
  ASSERT_TRUE(simd::force_backend(Backend::kScalar));
  auto ref = make_datapath(cfg);
  std::vector<DotResult> want;
  for (const Op& op : ops) want.push_back(ref->dot(op.a, op.b));
  const DatapathStats want_stats = ref->stats();

  ASSERT_TRUE(simd::force_backend(vec));
  auto dut = make_datapath(cfg);
  for (size_t i = 0; i < ops.size(); ++i) {
    const DotResult got = dut->dot(ops[i].a, ops[i].b);
    ASSERT_TRUE(got.raw == want[i].raw)
        << simd::backend_name(vec) << " vs scalar: value mismatch, op " << i
        << ", scheme " << scheme_name(cfg.scheme) << ", w="
        << cfg.adder_tree_width << ", sp=" << cfg.software_precision
        << ", mc=" << cfg.multi_cycle;
    ASSERT_EQ(got.cycles, want[i].cycles)
        << simd::backend_name(vec) << " vs scalar: cycle mismatch, op " << i
        << ", scheme " << scheme_name(cfg.scheme) << ", w="
        << cfg.adder_tree_width;
  }
  EXPECT_TRUE(dut->stats() == want_stats)
      << "stats diverged on " << scheme_name(cfg.scheme);
}

TEST(SimdDatapath, Fp16BitIdenticalAcrossBackends) {
  const auto vecs = vector_backends();
  if (vecs.empty()) GTEST_SKIP() << "only the scalar backend is compiled in";
  uint64_t seed = 100;
  for (Backend vec : vecs) {
    for (auto scheme : kAllSchemes) {
      for (int w : {10, 13, 16, 28, 38}) {
        for (bool mc : {true, false}) {
          for (int sp : {16, 28}) {
            DatapathConfig cfg = DatapathConfig::for_scheme(scheme);
            cfg.n_inputs = 16;
            cfg.adder_tree_width = w;
            cfg.software_precision = sp;
            cfg.multi_cycle = mc;
            diff_fp16_config(cfg, vec, ++seed);
          }
        }
      }
    }
  }
}

TEST(SimdDatapath, Fp16SkipFlagsBitIdentical) {
  const auto vecs = vector_backends();
  if (vecs.empty()) GTEST_SKIP() << "only the scalar backend is compiled in";
  uint64_t seed = 900;
  for (Backend vec : vecs) {
    for (auto scheme : kAllSchemes) {
      for (int w : {16, 28}) {
        DatapathConfig cfg = DatapathConfig::for_scheme(scheme);
        cfg.n_inputs = 16;
        cfg.adder_tree_width = w;
        cfg.software_precision = 28;
        cfg.multi_cycle = true;
        cfg.skip_empty_bands = true;
        cfg.skip_zero_iterations = scheme == DecompositionScheme::kTemporal;
        diff_fp16_config(cfg, vec, ++seed);
      }
    }
  }
}

TEST(SimdDatapath, IntModesBitIdenticalAcrossBackends) {
  const auto vecs = vector_backends();
  if (vecs.empty()) GTEST_SKIP() << "only the scalar backend is compiled in";
  Rng rng(200);
  for (Backend vec : vecs) {
    for (auto scheme : kAllSchemes) {
      for (auto [a_bits, b_bits] :
           {std::pair{8, 8}, std::pair{4, 4}, std::pair{8, 4}}) {
        DatapathConfig cfg = DatapathConfig::for_scheme(scheme);
        cfg.n_inputs = 16;
        cfg.adder_tree_width = 28;
        {
          auto probe = make_datapath(cfg);
          if (!probe->supports_int(a_bits, b_bits)) continue;
        }
        struct Op {
          std::vector<int32_t> a, b;
        };
        std::vector<Op> ops;
        for (int t = 0; t < 40; ++t) {
          const int len = static_cast<int>(rng.uniform_int(1, cfg.n_inputs));
          Op op;
          const int64_t amax = (1 << (a_bits - 1)) - 1;
          const int64_t bmax = (1 << (b_bits - 1)) - 1;
          op.a = random_i32(rng, static_cast<size_t>(len), -amax, amax);
          op.b = random_i32(rng, static_cast<size_t>(len), -bmax, bmax);
          ops.push_back(std::move(op));
        }

        BackendGuard guard;
        ASSERT_TRUE(simd::force_backend(Backend::kScalar));
        auto ref = make_datapath(cfg);
        std::vector<std::pair<int64_t, int>> want;
        for (const Op& op : ops) {
          const int cycles = ref->int_accumulate(op.a, op.b, a_bits, b_bits);
          want.push_back({ref->read_int(), cycles});
        }
        const DatapathStats want_stats = ref->stats();

        ASSERT_TRUE(simd::force_backend(vec));
        auto dut = make_datapath(cfg);
        for (size_t i = 0; i < ops.size(); ++i) {
          const int cycles =
              dut->int_accumulate(ops[i].a, ops[i].b, a_bits, b_bits);
          ASSERT_EQ(dut->read_int(), want[i].first)
              << scheme_name(scheme) << " INT" << a_bits << "x" << b_bits
              << " op " << i;
          ASSERT_EQ(cycles, want[i].second)
              << scheme_name(scheme) << " INT" << a_bits << "x" << b_bits
              << " op " << i;
        }
        EXPECT_TRUE(dut->stats() == want_stats);
      }
    }
  }
}

}  // namespace
}  // namespace mpipu
