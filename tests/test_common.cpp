// Unit tests for the common substrate: bit utilities, FixedPoint, RNG.
#include <gtest/gtest.h>

#include <cmath>

#include "common/bits.h"
#include "common/fixed_point.h"
#include "common/rng.h"

namespace mpipu {
namespace {

// --- bits.h -----------------------------------------------------------------

TEST(Bits, AsrFloorsNegative) {
  EXPECT_EQ(asr(7, 1), 3);
  EXPECT_EQ(asr(-7, 1), -4);
  EXPECT_EQ(asr(-1, 100), -1);
  EXPECT_EQ(asr(int128{1} << 100, 100), 1);
  EXPECT_EQ(asr(5, 0), 5);
  EXPECT_EQ(asr(-12345, 127), -1);
  EXPECT_EQ(asr(12345, 127), 0);
}

TEST(Bits, ShlRoundTrips) {
  for (int s = 0; s < 100; ++s) {
    EXPECT_EQ(asr(shl(-3, s), s), -3);
    EXPECT_EQ(asr(shl(3, s), s), 3);
  }
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0xF, 4), -1);
  EXPECT_EQ(sign_extend(0x7, 4), 7);
  EXPECT_EQ(sign_extend(0x8, 4), -8);
  EXPECT_EQ(sign_extend(0xFF, 9), 255);
  EXPECT_EQ(sign_extend(int128{1} << 126, 128), int128{1} << 126);
}

TEST(Bits, FitsAndTruncateAndSaturate) {
  EXPECT_TRUE(fits_signed(7, 4));
  EXPECT_FALSE(fits_signed(8, 4));
  EXPECT_TRUE(fits_signed(-8, 4));
  EXPECT_FALSE(fits_signed(-9, 4));
  EXPECT_EQ(truncate_signed(0x1F, 4), -1);
  EXPECT_EQ(truncate_signed(16, 4), 0);
  EXPECT_EQ(saturate_signed(100, 4), 7);
  EXPECT_EQ(saturate_signed(-100, 4), -8);
  EXPECT_EQ(saturate_signed(5, 4), 5);
}

TEST(Bits, MsbAndMagnitude) {
  EXPECT_EQ(msb_index(0), -1);
  EXPECT_EQ(msb_index(1), 0);
  EXPECT_EQ(msb_index(0x80), 7);
  EXPECT_EQ(magnitude_bits(0), 0);
  EXPECT_EQ(magnitude_bits(-1), 1);
  EXPECT_EQ(magnitude_bits(255), 8);
  EXPECT_EQ(magnitude_bits(-256), 9);
}

TEST(Bits, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(16), 4);
  EXPECT_EQ(ceil_log2(17), 5);
}

TEST(Bits, ToDoubleLargeValues) {
  EXPECT_EQ(to_double(int128{1} << 100), std::ldexp(1.0, 100));
  EXPECT_EQ(to_double(-(int128{1} << 100)), -std::ldexp(1.0, 100));
  EXPECT_EQ(to_double(int128{0}), 0.0);
  EXPECT_EQ(to_double(int128{-42}), -42.0);
}

// --- FixedPoint ---------------------------------------------------------------

TEST(FixedPointTest, NormalizedStripsTrailingZeros) {
  const FixedPoint a(8, 0);
  const FixedPoint n = a.normalized();
  EXPECT_EQ(n.mantissa(), 1);
  EXPECT_EQ(n.lsb_exp(), 3);
  EXPECT_TRUE(a == n);
  EXPECT_EQ(FixedPoint(0, 5).normalized().lsb_exp(), 0);
}

TEST(FixedPointTest, AdditionAcrossWideScaleGap) {
  // Thanks to normalization, values ~2^90 apart still add exactly.
  const FixedPoint big(int128{1} << 20, 70);   // 2^90
  const FixedPoint small(3, -5);               // 3 * 2^-5
  const FixedPoint sum = big + small;
  EXPECT_TRUE(sum - big == small);
  EXPECT_TRUE(sum - small == big);
}

TEST(FixedPointTest, EqualityIsRepresentationIndependent) {
  EXPECT_TRUE(FixedPoint(4, 0) == FixedPoint(1, 2));
  EXPECT_TRUE(FixedPoint(0, 100) == FixedPoint(0, -100));
  EXPECT_FALSE(FixedPoint(1, 0) == FixedPoint(1, 1));
}

TEST(FixedPointTest, ToDoubleMatchesLdexp) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const int64_t m = rng.uniform_int(-(1LL << 40), 1LL << 40);
    const int e = static_cast<int>(rng.uniform_int(-60, 60));
    EXPECT_EQ(FixedPoint(m, e).to_double_value(), std::ldexp(static_cast<double>(m), e));
  }
}

TEST(FixedPointTest, TruncatedToLsbIdempotent) {
  const FixedPoint a(0b10111, -3);
  const FixedPoint t = a.truncated_to_lsb(0);
  EXPECT_EQ(t.mantissa(), 0b10);
  EXPECT_EQ(t.lsb_exp(), 0);
  EXPECT_TRUE(t.truncated_to_lsb(0) == t);
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(6);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMoments) {
  Rng rng(7);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(1.0, 2.0);
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 1.0, 0.05);
  EXPECT_NEAR(sq / n - (sum / n) * (sum / n), 4.0, 0.15);
}

TEST(RngTest, LogUniformSignedCoversRangeAndSigns) {
  Rng rng(8);
  int pos = 0, neg = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.log_uniform_signed(-10.0, 0.0);
    EXPECT_GE(std::fabs(v), std::exp2(-10.0) * 0.999);
    EXPECT_LE(std::fabs(v), 1.001);
    (v > 0 ? pos : neg)++;
  }
  EXPECT_GT(pos, 4000);
  EXPECT_GT(neg, 4000);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

}  // namespace
}  // namespace mpipu
