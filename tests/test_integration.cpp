// Cross-module integration tests: full pipelines spanning workload ->
// datapath -> analysis -> simulator -> model, i.e. the paths the benchmark
// harnesses exercise, locked down at small scale.
#include <gtest/gtest.h>

#include "analysis/error_metrics.h"
#include "model/hw_model.h"
#include "nn/conv.h"
#include "sim/cycle_sim.h"
#include "workload/quantizer.h"

namespace mpipu {
namespace {

TEST(Integration, QuantizedIntConvTracksFp16ConvAsBitsGrow) {
  // quantize -> INT conv on the datapath -> dequantize must approach the
  // FP16 datapath conv as the integer width grows.
  Rng rng(81);
  Tensor in = random_tensor(rng, 8, 6, 6, ValueDist::kHalfNormal, 1.0);
  FilterBank f = random_filters(rng, 4, 8, 3, 3, ValueDist::kNormal, 0.1);
  IpuConfig cfg;
  cfg.n_inputs = 8;
  cfg.adder_tree_width = 28;
  cfg.software_precision = 28;
  const Tensor fp_out =
      conv_ipu_fp16(in.rounded_to_fp16(), f.rounded_to_fp16(), ConvSpec{}, cfg,
                    AccumKind::kFp32);
  double prev_snr = -100.0;
  for (int bits : {4, 8, 12}) {
    const Tensor int_out = conv_ipu_int(in, f, ConvSpec{}, cfg, bits, bits);
    const double snr = compare_outputs(int_out, fp_out).snr_db;
    EXPECT_GT(snr, prev_snr);
    prev_snr = snr;
  }
  EXPECT_GT(prev_snr, 45.0);  // INT12 ~ FP16-grade
}

TEST(Integration, PaperStudyCasesSimulateEndToEnd) {
  // Smoke the full Fig. 8 pipeline at tiny sampling: all four networks,
  // both tiles, sane normalized results.
  SimOptions opts;
  opts.sampled_steps = 60;
  for (const auto& net : paper_study_cases()) {
    const auto base = simulate_network(net, baseline2(), opts);
    EXPECT_GT(base.total_cycles, 0.0);
    EXPECT_EQ(base.layers.size(), net.layers.size());
    const auto mc = simulate_network(net, big_tile(16, 28, 8), opts);
    const double norm = mc.normalized_to(base);
    EXPECT_GE(norm, 0.99) << net.name;
    EXPECT_LT(norm, 10.0) << net.name;
  }
}

TEST(Integration, SimulatedSlowdownFeedsEfficiencyModel) {
  // Fig. 10 pipeline: simulator slowdown -> effective TFLOPS -> efficiency.
  SimOptions opts;
  opts.sampled_steps = 100;
  const Network net = resnet18_forward();
  const auto base = simulate_network(net, baseline2(), opts);
  DesignConfig d = proposed_design(16, 4, /*big=*/true);
  const auto run = simulate_network(net, d.tile, opts);
  const double slowdown = run.normalized_to(base);
  EXPECT_GT(slowdown, 1.0);
  const double eff = tflops_per_mm2(d, slowdown);
  const double peak_eff = tflops_per_mm2(d, 1.0);
  EXPECT_GT(eff, 0.0);
  EXPECT_LT(eff, peak_eff);
  EXPECT_NEAR(eff * slowdown, peak_eff, 1e-9);
}

TEST(Integration, DatapathErrorWithinAnalyticBoundOnWorkloadTensors) {
  // Workload generator -> datapath -> Theorem-1-style bound, end to end.
  Rng rng(82);
  IpuConfig cfg;
  cfg.n_inputs = 16;
  cfg.adder_tree_width = 16;
  cfg.software_precision = 16;
  cfg.multi_cycle = false;
  cfg.accumulator.frac_bits = 100;
  cfg.accumulator.lossless = true;
  Ipu ipu(cfg);
  for (int t = 0; t < 500; ++t) {
    const auto a = sample_fp16(rng, ValueDist::kHalfNormal, 1.0, 16);
    const auto b = sample_fp16(rng, ValueDist::kNormal, 0.05, 16);
    int max_exp = INT32_MIN;
    for (int k = 0; k < 16; ++k) {
      max_exp = std::max(max_exp, a[static_cast<size_t>(k)].decode().exp +
                                      b[static_cast<size_t>(k)].decode().exp);
    }
    ipu.reset_accumulator();
    ipu.fp_accumulate<kFp16Format>(a, b);
    const double err =
        absolute_error(ipu.read_raw(), exact_fp_inner_product<kFp16Format>(a, b));
    EXPECT_LE(err, window_truncation_operation_bound(16, 16, max_exp)) << t;
  }
}

TEST(Integration, AlignmentHistogramPredictsSimulatorCycles) {
  // Consistency between the two Fig. 9 consumers: if the histogram says
  // alignments rarely exceed sp, the simulator should report few
  // multi-cycle iterations, and vice versa for backward.
  SimOptions opts;
  opts.sampled_steps = 150;
  const TileConfig tile = big_tile(20, 28, 64);  // sp = 11
  const auto fwd_hist = alignment_histogram(resnet18_forward(), 16, 1500);
  const auto fwd_run = simulate_network(resnet18_forward(), tile, opts);
  const auto bwd_hist = alignment_histogram(resnet18_backward(), 16, 1500);
  const auto bwd_run = simulate_network(resnet18_backward(), tile, opts);
  double fwd_cycles = 0.0, bwd_cycles = 0.0;
  for (const auto& l : fwd_run.layers) fwd_cycles += l.avg_iteration_cycles;
  for (const auto& l : bwd_run.layers) bwd_cycles += l.avg_iteration_cycles;
  fwd_cycles /= static_cast<double>(fwd_run.layers.size());
  bwd_cycles /= static_cast<double>(bwd_run.layers.size());
  EXPECT_GT(bwd_hist.fraction_above(11), fwd_hist.fraction_above(11));
  EXPECT_GT(bwd_cycles, fwd_cycles);
}

TEST(Integration, ModelAndSimulatorAgreeOnBaselineFlops) {
  // 455 GFLOPS for Baseline2 implies exactly 9 cycles/op in the simulator.
  SimOptions opts;
  opts.sampled_steps = 100;
  Network net;
  net.name = "x";
  net.tensor_stats = forward_stats();
  ConvLayer l;
  l.name = "l";
  l.cin = l.cout = 64;
  l.kh = l.kw = 1;
  l.hout = l.wout = 8;
  net.layers = {l};
  const auto run = simulate_network(net, baseline2(), opts);
  EXPECT_NEAR(run.layers[0].cycles_per_step, 9.0, 0.2);
  EXPECT_NEAR(fp16_tflops(nvdla_like_design(), 1.0) * 9.0,
              peak_tops(nvdla_like_design(), 4, 4), 1e-9);
}

}  // namespace
}  // namespace mpipu
