// Tests for DAG-structured models (api/graph_model.h + the graph execution
// core in api/compiled_model.cpp):
//
//  * residual (add) and branch/concat blocks execute end-to-end and are
//    bit-exact against a hand-wired ConvEngine evaluation of the same
//    topology, for all three decomposition schemes and FP16/INT modes;
//  * parallel-branch dispatch is deterministic: 1 and N pool threads
//    produce identical outputs, per-node stats and serialized reports;
//  * estimate(graph) reproduces simulate_network on the equivalent shape
//    table, and resnet18_graph()'s table at 224x224 carries exactly the
//    MACs of the hand-built resnet18_forward() table;
//  * compile-time topology validation: cycles, multiple inputs/outputs,
//    join shape mismatches, channel breaks, collapsing geometry and
//    weightless graphs are all rejected with std::invalid_argument;
//  * PrecisionPolicy resolves over conv nodes only (joins carry no
//    precision), with first/last meaning first/last conv in execution
//    order.
#include <gtest/gtest.h>

#include <stdexcept>

#include "api/session.h"
#include "common/rng.h"
#include "nn/elementwise.h"
#include "workload/graph_builders.h"

namespace mpipu {
namespace {

DatapathConfig small_datapath(DecompositionScheme scheme) {
  DatapathConfig cfg = DatapathConfig::for_scheme(scheme);
  cfg.n_inputs = 16;
  cfg.adder_tree_width = 16;
  cfg.software_precision = 28;
  cfg.multi_cycle = true;
  return cfg;
}

const FilterBank& filters_of(const GraphModel& g, const std::string& name) {
  for (const GraphNode& nd : g.nodes()) {
    if (nd.name == name) return nd.filters;
  }
  throw std::runtime_error("no node named " + name);
}

void expect_tensors_identical(const Tensor& a, const Tensor& b,
                              const char* what) {
  ASSERT_EQ(a.c, b.c) << what;
  ASSERT_EQ(a.h, b.h) << what;
  ASSERT_EQ(a.w, b.w) << what;
  for (size_t i = 0; i < a.data.size(); ++i) {
    ASSERT_EQ(a.data[i], b.data[i]) << what << " elt " << i;
  }
}

TEST(GraphModelTest, ResidualBlockBitExactVsHandWiredAllSchemes) {
  GraphModel block = resnet_basic_block_graph(4, 6, 2);
  block.materialize_weights(101);
  Rng rng(102);
  const Tensor input = random_tensor(rng, 4, 9, 9, ValueDist::kHalfNormal, 1.0);

  for (DecompositionScheme scheme :
       {DecompositionScheme::kTemporal, DecompositionScheme::kSerial,
        DecompositionScheme::kSpatial}) {
    RunSpec spec;
    spec.datapath = small_datapath(scheme);
    spec.threads = 1;
    Session session(spec);
    const RunReport report = session.run(block, input);

    // Hand-wired: the same topology evaluated call by call on one
    // ConvEngine (stride-2 projection block: conv1+relu, conv2, 1x1 down,
    // add, relu).
    ConvEngineConfig ec;
    ec.datapath = spec.datapath;
    ec.accum = AccumKind::kFp32;
    ec.threads = 1;
    ConvEngine engine(ec);
    ConvSpec s31;
    s31.stride = 2;
    s31.pad = 1;
    ConvSpec s11;
    s11.pad = 1;
    ConvSpec sd;
    sd.stride = 2;
    const Tensor c1 =
        relu(engine.conv_fp16(input, filters_of(block, "block.conv1"), s31));
    const Tensor c2 =
        engine.conv_fp16(c1, filters_of(block, "block.conv2"), s11);
    const Tensor skip =
        engine.conv_fp16(input, filters_of(block, "block.down"), sd);
    const Tensor expected = relu(tensor_add(c2, skip));

    expect_tensors_identical(report.output, expected, scheme_name(scheme));
    EXPECT_EQ(report.totals, engine.stats()) << scheme_name(scheme);

    // CompiledModel path agrees byte for byte with the Session path.
    const CompiledModel compiled = session.compile(block, {9, 9});
    const RunReport direct = compiled.run(input);
    EXPECT_EQ(direct.to_json(), report.to_json()) << scheme_name(scheme);

    // Per-node reports: 3 convs + 1 add, joins carry zero datapath work.
    ASSERT_EQ(report.layers.size(), 4u);
    EXPECT_EQ(report.layers.back().layer, "block.add");
    EXPECT_EQ(report.layers.back().precision, "add");
    EXPECT_EQ(report.layers.back().stats, DatapathStats{});
    EXPECT_GT(report.end_to_end.snr_db, 20.0);
  }
}

TEST(GraphModelTest, IdentitySkipAndIntPolicyBitExactVsHandWired) {
  // Identity-skip block (cin == cout, stride 1) under an INT8 policy on
  // the trunk convs: the skip adds the *unquantized* input back in, and
  // the hand-wired chain must reproduce the mixed path bit for bit.
  GraphModel block = resnet_basic_block_graph(5, 5, 1);
  block.materialize_weights(103);
  Rng rng(104);
  const Tensor input = random_tensor(rng, 5, 8, 8, ValueDist::kHalfNormal, 1.0);

  for (DecompositionScheme scheme :
       {DecompositionScheme::kTemporal, DecompositionScheme::kSerial}) {
    RunSpec spec;
    spec.datapath = small_datapath(scheme);
    spec.policy = PrecisionPolicy::all_int(8);
    spec.threads = 1;
    Session session(spec);
    const RunReport report = session.run(block, input);

    ConvEngineConfig ec;
    ec.datapath = spec.datapath;
    ec.threads = 1;
    ConvEngine engine(ec);
    ConvSpec s11;
    s11.pad = 1;
    const Tensor c1 = relu(
        engine.conv_int(input, filters_of(block, "block.conv1"), s11, 8, 8));
    const Tensor c2 =
        engine.conv_int(c1, filters_of(block, "block.conv2"), s11, 8, 8);
    const Tensor expected = relu(tensor_add(c2, input));

    expect_tensors_identical(report.output, expected, scheme_name(scheme));
    ASSERT_EQ(report.layers.size(), 3u);  // conv1, conv2, add
    EXPECT_EQ(report.layers[0].precision, "int8x8");
    EXPECT_GT(report.totals.int_ops, 0);
    EXPECT_EQ(report.totals.fp_ops, 0);
  }
}

TEST(GraphModelTest, InceptionBlockConcatBitExactVsHandWired) {
  GraphModel block = inception_a_block_graph(6, "incA");
  block.materialize_weights(105);
  Rng rng(106);
  const Tensor input = random_tensor(rng, 6, 7, 7, ValueDist::kHalfNormal, 1.0);

  RunSpec spec;
  spec.datapath = small_datapath(DecompositionScheme::kTemporal);
  spec.threads = 1;
  Session session(spec);
  const RunReport report = session.run(block, input);

  ConvEngineConfig ec;
  ec.datapath = spec.datapath;
  ec.accum = AccumKind::kFp32;
  ec.threads = 1;
  ConvEngine engine(ec);
  ConvSpec s1;
  ConvSpec s5;
  s5.pad = 2;
  ConvSpec s3;
  s3.pad = 1;
  const Tensor b1 =
      relu(engine.conv_fp16(input, filters_of(block, "mixed5.b1x1"), s1));
  const Tensor b5r =
      relu(engine.conv_fp16(input, filters_of(block, "mixed5.b5x5r"), s1));
  const Tensor b5 =
      relu(engine.conv_fp16(b5r, filters_of(block, "mixed5.b5x5"), s5));
  const Tensor b3r =
      relu(engine.conv_fp16(input, filters_of(block, "mixed5.b3x3r"), s1));
  const Tensor b3a =
      relu(engine.conv_fp16(b3r, filters_of(block, "mixed5.b3x3a"), s3));
  const Tensor b3b =
      relu(engine.conv_fp16(b3a, filters_of(block, "mixed5.b3x3b"), s3));
  const Tensor bp =
      relu(engine.conv_fp16(input, filters_of(block, "mixed5.pool1x1"), s1));
  const Tensor expected = channel_concat({&b1, &b5, &b3b, &bp});

  ASSERT_EQ(report.output.c, 64 + 64 + 96 + 32);
  expect_tensors_identical(report.output, expected, "inception-a");
  EXPECT_EQ(report.totals, engine.stats());
  EXPECT_EQ(report.layers.back().precision, "concat");
}

TEST(GraphModelTest, ParallelBranchDispatchIsThreadCountInvariant) {
  GraphModel block = inception_a_block_graph(5, "incA");
  block.materialize_weights(107);
  Rng rng(108);
  const Tensor input = random_tensor(rng, 5, 6, 6, ValueDist::kHalfNormal, 1.0);

  for (DecompositionScheme scheme :
       {DecompositionScheme::kTemporal, DecompositionScheme::kSerial,
        DecompositionScheme::kSpatial}) {
    RunSpec spec;
    spec.datapath = small_datapath(scheme);
    spec.threads = 1;
    Session s1(spec);
    spec.threads = 4;
    Session s4(spec);

    const RunReport r1 = s1.run(block, input);
    const RunReport r4 = s4.run(block, input);
    expect_tensors_identical(r1.output, r4.output, scheme_name(scheme));
    EXPECT_EQ(r1.totals, r4.totals) << scheme_name(scheme);
    ASSERT_EQ(r1.layers.size(), r4.layers.size());
    for (size_t l = 0; l < r1.layers.size(); ++l) {
      EXPECT_EQ(r1.layers[l].stats, r4.layers[l].stats)
          << scheme_name(scheme) << " node " << r1.layers[l].layer;
    }
  }
}

TEST(GraphModelTest, EstimateAgreesWithSimulateNetworkOnEquivalentTable) {
  GraphModel block = resnet_basic_block_graph(8, 8, 2);  // projection skip

  RunSpec spec;
  spec.datapath = small_datapath(DecompositionScheme::kTemporal);
  spec.tile = big_tile(16, 28);
  spec.sim.sampled_steps = 64;
  Session session(spec);

  const NetworkSimResult via_graph = session.estimate(block, 14, 14);
  const NetworkSimResult via_table = session.estimate(block.shape_table(14, 14));
  EXPECT_EQ(via_graph.total_cycles, via_table.total_cycles);
  ASSERT_EQ(via_graph.layers.size(), 3u);  // conv rows only, no join rows
  EXPECT_EQ(to_json_value(via_graph).dump(), to_json_value(via_table).dump());

  // A compiled graph attaches the same estimate to its reports.
  GraphModel weighted = block;
  weighted.materialize_weights(109);
  const CompiledModel compiled = session.compile(weighted, {14, 14});
  EXPECT_EQ(compiled.estimate().total_cycles, via_table.total_cycles);
}

TEST(GraphModelTest, Resnet18GraphMatchesHandBuiltTableMacs) {
  const Network graph_table = resnet18_graph().shape_table(224, 224);
  const Network hand_built = resnet18_forward();
  // The hand-built table collapses repeats; the graph unrolls every block.
  // Work must agree exactly.
  EXPECT_EQ(graph_table.total_macs(), hand_built.total_macs());
  EXPECT_EQ(graph_table.layers.size(), 20u);
  // Spot-check geometry: conv1 at 112x112, stage outputs at 56/28/14/7.
  EXPECT_EQ(graph_table.layers[0].hout, 112);
  EXPECT_EQ(graph_table.layers.back().hout, 7);
}

TEST(GraphModelTest, TopologyValidationErrors) {
  RunSpec spec;
  spec.datapath = small_datapath(DecompositionScheme::kTemporal);
  Session session(spec);
  Rng rng(110);
  const FilterBank f433 = random_filters(rng, 4, 4, 3, 3, ValueDist::kNormal, 0.2);
  ConvSpec pad1;
  pad1.pad = 1;

  const auto expect_invalid = [&](std::vector<GraphNode> nodes,
                                  const char* what) {
    GraphModel g = GraphModel::from_nodes("bad", std::move(nodes));
    EXPECT_THROW(session.compile(g, {8, 8}), std::invalid_argument) << what;
  };

  GraphNode in;
  in.op = GraphNode::Op::kInput;
  in.name = "input";
  GraphNode conv;
  conv.op = GraphNode::Op::kConv;
  conv.name = "c1";
  conv.inputs = {0};
  conv.filters = f433;
  conv.spec = pad1;

  // No input node.
  expect_invalid({conv}, "no input");
  // Two input nodes.
  {
    GraphNode in2 = in;
    in2.name = "input2";
    expect_invalid({in, in2, conv}, "two inputs");
  }
  // Cycle: two convs feeding each other.
  {
    GraphNode a = conv, b = conv;
    a.name = "a";
    a.inputs = {2};
    b.name = "b";
    b.inputs = {1};
    expect_invalid({in, a, b}, "cycle");
  }
  // Two outputs (both convs are sinks).
  {
    GraphNode a = conv, b = conv;
    b.name = "c2";
    expect_invalid({in, a, b}, "two outputs");
  }
  // Add with mismatched channels: 4-ch conv + 6-ch conv.
  {
    GraphNode a = conv;
    GraphNode b = conv;
    b.name = "c2";
    b.filters = random_filters(rng, 6, 4, 3, 3, ValueDist::kNormal, 0.2);
    GraphNode j;
    j.op = GraphNode::Op::kAdd;
    j.name = "join";
    j.inputs = {1, 2};
    expect_invalid({in, a, b, j}, "add shape mismatch");
  }
  // Concat with mismatched spatial dims (stride-2 vs stride-1 branches).
  {
    GraphNode a = conv;
    GraphNode b = conv;
    b.name = "c2";
    b.spec.stride = 2;
    GraphNode j;
    j.op = GraphNode::Op::kConcat;
    j.name = "join";
    j.inputs = {1, 2};
    expect_invalid({in, a, b, j}, "concat spatial mismatch");
  }
  // Channel break into a conv.
  {
    GraphNode a = conv;
    GraphNode b = conv;
    b.name = "c2";
    b.inputs = {1};
    b.filters = random_filters(rng, 4, 7, 3, 3, ValueDist::kNormal, 0.2);
    expect_invalid({in, a, b}, "channel break");
  }
  // Input channels not inferable: input feeds only a join.
  {
    GraphNode j;
    j.op = GraphNode::Op::kAdd;
    j.name = "join";
    j.inputs = {0, 0};
    expect_invalid({in, j}, "uninferable input channels");
  }
  // Builder rejects forward references outright.
  {
    GraphModel::Builder b("fwd");
    const int i0 = b.input();
    EXPECT_THROW(b.add("j", i0, 5), std::invalid_argument);
  }
  // Weightless (shape-only) graphs are estimate-only until materialized.
  {
    GraphModel g = resnet_basic_block_graph(4, 4, 1);
    EXPECT_FALSE(g.has_weights());
    EXPECT_THROW(session.compile(g, {8, 8}), std::invalid_argument);
    EXPECT_THROW(session.run(g, Tensor(4, 8, 8)), std::invalid_argument);
    EXPECT_NO_THROW(session.estimate(g, 8, 8));  // estimate-only is fine
    g.materialize_weights(1);
    EXPECT_TRUE(g.has_weights());
    EXPECT_NO_THROW(session.run(g, Tensor(4, 8, 8)));
  }
  // Collapsing geometry: 3x3 no-pad conv on a 2x2 input.
  {
    GraphModel g = resnet_basic_block_graph(4, 4, 1);
    g.materialize_weights(2);
    EXPECT_NO_THROW(session.compile(g, {4, 4}));
    GraphModel::Builder b("collapse");
    const int i0 = b.input();
    b.conv_shape("c1", 4, 4, 3, 3, ConvSpec{}, i0);
    GraphModel small = b.build();
    small.materialize_weights(3);
    EXPECT_THROW(session.compile(small, {2, 2}), std::invalid_argument);
  }
}

TEST(GraphModelTest, PolicyResolvesOverConvNodesInExecutionOrder) {
  // Diamond: conv1 -> {left, right} -> concat -> head.  Execution order of
  // convs is conv1, left, right, head; first/last must hit conv1 and head,
  // and a name override must land on exactly that branch conv.
  GraphModel::Builder b("diamond");
  const int in = b.input();
  const int c1 = b.conv_shape("conv1", 4, 3, 3, 3, ConvSpec{.stride = 1, .pad = 1}, in);
  const int left = b.conv_shape("left", 4, 4, 3, 3, ConvSpec{.stride = 1, .pad = 1}, c1);
  const int right = b.conv_shape("right", 4, 4, 1, 1, ConvSpec{}, c1);
  const int cat = b.concat("cat", {left, right});
  b.conv_shape("head", 2, 8, 1, 1, ConvSpec{}, cat);
  GraphModel g = b.build();
  g.materialize_weights(7);

  RunSpec spec;
  spec.datapath = small_datapath(DecompositionScheme::kTemporal);
  spec.policy = PrecisionPolicy::int8_except_first_last();
  spec.policy.set_layer("right", LayerPrecision::fp16(AccumKind::kFp16));
  Session session(spec);
  const CompiledModel compiled = session.compile(g, {8, 8});

  const std::vector<LayerPrecision>& p = compiled.layer_precisions();
  ASSERT_EQ(p.size(), 4u);  // conv nodes only
  EXPECT_EQ(p[0], LayerPrecision::fp16(AccumKind::kFp32));  // first conv
  EXPECT_EQ(p[1], LayerPrecision::int_bits(8, 8));          // interior
  EXPECT_EQ(p[2], LayerPrecision::fp16(AccumKind::kFp16));  // name override
  EXPECT_EQ(p[3], LayerPrecision::fp16(AccumKind::kFp32));  // last conv

  Rng rng(8);
  const Tensor input = random_tensor(rng, 3, 8, 8, ValueDist::kHalfNormal, 1.0);
  const RunReport report = compiled.run(input);
  ASSERT_EQ(report.layers.size(), 5u);  // 4 convs + the concat join
  EXPECT_EQ(report.layers[0].layer, "conv1");
  EXPECT_EQ(report.layers[1].layer, "left");
  EXPECT_EQ(report.layers[2].layer, "right");
  EXPECT_EQ(report.layers[3].layer, "cat");
  EXPECT_EQ(report.layers[3].precision, "concat");
  EXPECT_EQ(report.layers[4].layer, "head");
}

TEST(GraphModelTest, SessionCacheKeepsGraphAndChainEntriesApart) {
  // A chain Model and a GraphModel deliberately sharing a name: the cache
  // must never serve one for the other, and graph repeat runs must be
  // byte-identical cache hits.
  Rng rng(111);
  std::vector<ModelLayer> layers(1);
  layers[0].name = "c1";
  layers[0].filters = random_filters(rng, 4, 3, 3, 3, ValueDist::kNormal, 0.2);
  layers[0].spec.pad = 1;
  const Model chain = Model::from_layers("twin", std::move(layers));

  GraphModel::Builder b("twin");
  const int in = b.input();
  b.conv_shape("c1", 4, 3, 3, 3, ConvSpec{.stride = 1, .pad = 1}, in);
  GraphModel graph = b.build();
  graph.materialize_weights(112);

  RunSpec spec;
  spec.datapath = small_datapath(DecompositionScheme::kTemporal);
  Session session(spec);
  const Tensor input = random_tensor(rng, 3, 8, 8, ValueDist::kHalfNormal, 1.0);

  const RunReport g1 = session.run(graph, input);
  const RunReport c1 = session.run(chain, input);
  const RunReport g2 = session.run(graph, input);
  const RunReport c2 = session.run(chain, input);
  EXPECT_EQ(g1.to_json(), g2.to_json());
  EXPECT_EQ(c1.to_json(), c2.to_json());
  // Different weights -> different outputs proves no cross-serving.
  EXPECT_NE(g1.output.data, c1.output.data);

  const CompiledModel cg = session.compile(graph, {8, 8});
  EXPECT_TRUE(cg.is_graph());
  EXPECT_TRUE(cg.matches(graph));
  EXPECT_FALSE(cg.matches(chain));
  EXPECT_EQ(cg.fingerprint(), graph_fingerprint(graph));

  // Content tracking: a one-ulp weight change breaks the match.
  GraphModel tweaked = graph;
  EXPECT_TRUE(tweaked == graph);
  std::vector<GraphNode> nodes = tweaked.nodes();
  nodes[1].filters.data[0] += 1e-6;
  GraphModel changed = GraphModel::from_nodes("twin", std::move(nodes));
  EXPECT_FALSE(cg.matches(changed));
  EXPECT_NE(graph_fingerprint(changed), cg.fingerprint());
}

TEST(GraphModelTest, MaterializePreservesRealWeightsOnMixedBuilders) {
  // A builder mixing trained conv() weights with conv_shape() placeholders:
  // materialize_weights must fill ONLY the placeholders.
  Rng rng(115);
  const FilterBank trained =
      random_filters(rng, 4, 3, 3, 3, ValueDist::kNormal, 0.2);
  ConvSpec pad1;
  pad1.pad = 1;
  GraphModel::Builder b("mixed");
  const int in = b.input();
  const int c1 = b.conv("trained", trained, pad1, in, /*relu=*/true);
  b.conv_shape("random", 4, 4, 3, 3, pad1, c1);
  GraphModel g = b.build();
  EXPECT_FALSE(g.has_weights());
  g.materialize_weights(116);
  EXPECT_TRUE(g.has_weights());
  EXPECT_EQ(filters_of(g, "trained").data, trained.data);
  // The placeholder got real (nonzero) weights.
  double sum = 0.0;
  for (double v : filters_of(g, "random").data) sum += v * v;
  EXPECT_GT(sum, 0.0);
  // Re-materializing with another seed re-rolls only the placeholder too.
  GraphModel g2 = g;
  g2.materialize_weights(117);
  EXPECT_EQ(filters_of(g2, "trained").data, trained.data);
  EXPECT_NE(filters_of(g2, "random").data, filters_of(g, "random").data);
}

TEST(GraphModelTest, ReferenceAndBatchPaths) {
  GraphModel block = resnet_basic_block_graph(3, 5, 1, "refblock");
  block.materialize_weights(113);
  Rng rng(114);
  std::vector<Tensor> inputs;
  for (int i = 0; i < 2; ++i) {
    inputs.push_back(random_tensor(rng, 3, 6, 6, ValueDist::kHalfNormal, 1.0));
  }

  RunSpec spec;
  spec.datapath = small_datapath(DecompositionScheme::kTemporal);
  spec.tile = big_tile(16, 28);
  spec.sim.sampled_steps = 32;
  Session session(spec);

  // Session::reference mirrors the graph exactly: it must equal the
  // reference_output the run report carries.
  const RunReport report = session.run(block, inputs[0]);
  const Tensor ref = Session::reference(block, inputs[0]);
  expect_tensors_identical(report.reference_output, ref, "reference");

  RunOptions opts;
  opts.with_estimate = true;
  const BatchRunReport batch = session.run_batch(block, inputs, opts);
  ASSERT_EQ(batch.runs.size(), 2u);
  ASSERT_TRUE(batch.runs[0].estimate.has_value());
  EXPECT_EQ(batch.runs[0].estimate->total_cycles,
            batch.runs[1].estimate->total_cycles);
  DatapathStats sum;
  sum += batch.runs[0].totals;
  sum += batch.runs[1].totals;
  EXPECT_EQ(batch.totals, sum);
}

}  // namespace
}  // namespace mpipu
