// Differential fuzzing (deterministic seeds): random IPU configurations x
// random operand streams, cross-checked against the exact reference and
// against each other; plus random DAG topologies (chains, diamonds,
// residual blocks, concat fan-ins) cross-checked between the graph
// execution core, the Session facade and a hand-wired ConvEngine
// evaluation.  Complements the targeted property tests with broad
// configuration coverage.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/error_metrics.h"
#include "api/session.h"
#include "common/rng.h"
#include "core/ipu.h"
#include "core/spatial_ipu.h"
#include "nn/elementwise.h"

namespace mpipu {
namespace {

std::vector<Fp16> random_fp16(Rng& rng, int n) {
  std::vector<Fp16> v;
  while (static_cast<int>(v.size()) < n) {
    const Fp16 f = Fp16::from_bits(static_cast<uint32_t>(rng.next_u64()));
    if (f.is_finite()) v.push_back(f);
  }
  return v;
}

TEST(FuzzDifferential, RandomConfigsLosslessWhenUnbounded) {
  // Any (w, n, mc, skip) with full software precision and an unbounded
  // accumulator must be exact -- if not, the datapath drops bits somewhere
  // it architecturally shouldn't.
  Rng rng(0xF0021);
  for (int cfg_trial = 0; cfg_trial < 60; ++cfg_trial) {
    IpuConfig cfg;
    cfg.n_inputs = static_cast<int>(rng.uniform_int(1, 32));
    cfg.multi_cycle = rng.bernoulli(0.7);
    cfg.adder_tree_width =
        cfg.multi_cycle ? static_cast<int>(rng.uniform_int(10, 40))
                        : static_cast<int>(rng.uniform_int(68, 90));
    cfg.software_precision = 58;
    cfg.skip_empty_bands = rng.bernoulli(0.5);
    cfg.skip_zero_iterations = rng.bernoulli(0.5);
    cfg.accumulator.frac_bits = 100;
    cfg.accumulator.lossless = true;
    Ipu ipu(cfg);
    for (int t = 0; t < 60; ++t) {
      const auto a = random_fp16(rng, cfg.n_inputs);
      const auto b = random_fp16(rng, cfg.n_inputs);
      ipu.reset_accumulator();
      ipu.fp_accumulate<kFp16Format>(a, b);
      ASSERT_TRUE(ipu.read_raw() == exact_fp_inner_product<kFp16Format>(a, b))
          << "cfg " << cfg_trial << " (w=" << cfg.adder_tree_width
          << ", n=" << cfg.n_inputs << ", mc=" << cfg.multi_cycle << ") trial " << t;
    }
  }
}

TEST(FuzzDifferential, KnobsNeverChangeValuesOnlyCycles) {
  // skip_empty_bands and skip_zero_iterations are performance knobs: for
  // identical (w, n, P) the accumulated value must be bit-identical across
  // all four combinations.
  Rng rng(0xF0022);
  for (int cfg_trial = 0; cfg_trial < 25; ++cfg_trial) {
    IpuConfig base;
    base.n_inputs = static_cast<int>(rng.uniform_int(2, 16));
    base.adder_tree_width = static_cast<int>(rng.uniform_int(10, 30));
    base.software_precision = static_cast<int>(rng.uniform_int(8, 32));
    base.multi_cycle = true;
    std::vector<Ipu> variants;
    for (int m = 0; m < 4; ++m) {
      IpuConfig c = base;
      c.skip_empty_bands = m & 1;
      c.skip_zero_iterations = m & 2;
      variants.emplace_back(c);
    }
    for (int t = 0; t < 80; ++t) {
      const auto a = random_fp16(rng, base.n_inputs);
      const auto b = random_fp16(rng, base.n_inputs);
      for (auto& v : variants) {
        v.reset_accumulator();
        v.fp_accumulate<kFp16Format>(a, b);
      }
      for (int m = 1; m < 4; ++m) {
        ASSERT_TRUE(variants[0].read_raw() == variants[static_cast<size_t>(m)].read_raw())
            << cfg_trial << "/" << t << " variant " << m;
      }
    }
  }
}

TEST(FuzzDifferential, ErrorBoundedPerSampleAndShrinksOnAverageAsWindowWidens) {
  // Per-sample, truncation error is not monotone in w (floors at different
  // positions can cancel); the sound properties are (a) every sample stays
  // within the analytic window bound for its w, and (b) the *average* error
  // is non-increasing as w widens.
  Rng rng(0xF0023);
  const std::vector<int> widths = {12, 20, 28, 38};
  std::vector<double> total_err(widths.size(), 0.0);
  for (int t = 0; t < 400; ++t) {
    const auto a = random_fp16(rng, 16);
    const auto b = random_fp16(rng, 16);
    const FixedPoint exact = exact_fp_inner_product<kFp16Format>(a, b);
    int max_exp = INT32_MIN;
    for (int k = 0; k < 16; ++k) {
      max_exp = std::max(max_exp, a[static_cast<size_t>(k)].decode().exp +
                                      b[static_cast<size_t>(k)].decode().exp);
    }
    for (size_t wi = 0; wi < widths.size(); ++wi) {
      const int w = widths[wi];
      IpuConfig cfg;
      cfg.n_inputs = 16;
      cfg.adder_tree_width = w;
      cfg.software_precision = w;
      cfg.multi_cycle = false;
      cfg.accumulator.frac_bits = 100;
      cfg.accumulator.lossless = true;
      Ipu ipu(cfg);
      ipu.fp_accumulate<kFp16Format>(a, b);
      const double err = absolute_error(ipu.read_raw(), exact);
      EXPECT_LE(err, window_truncation_operation_bound(16, w, max_exp))
          << "w=" << w << " trial " << t;
      total_err[wi] += err;
    }
  }
  for (size_t wi = 1; wi < widths.size(); ++wi) {
    EXPECT_LE(total_err[wi], total_err[wi - 1]) << widths[wi];
  }
}

TEST(FuzzDifferential, TemporalAndSpatialAgreeUnderRandomConfigs) {
  Rng rng(0xF0024);
  for (int cfg_trial = 0; cfg_trial < 30; ++cfg_trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 16));
    const int w = static_cast<int>(rng.uniform_int(10, 34));
    IpuConfig tcfg;
    tcfg.n_inputs = n;
    tcfg.adder_tree_width = w;
    tcfg.software_precision = 58;
    tcfg.multi_cycle = true;
    tcfg.accumulator.frac_bits = 100;
    tcfg.accumulator.lossless = true;
    SpatialIpuConfig scfg;
    scfg.n_inputs = n;
    scfg.adder_tree_width = w;
    scfg.software_precision = 58;
    scfg.multi_cycle = true;
    scfg.accumulator = tcfg.accumulator;
    Ipu temporal(tcfg);
    SpatialIpu spatial(scfg);
    for (int t = 0; t < 60; ++t) {
      const auto a = random_fp16(rng, n);
      const auto b = random_fp16(rng, n);
      temporal.reset_accumulator();
      spatial.reset_accumulator();
      temporal.fp_accumulate<kFp16Format>(a, b);
      spatial.fp_accumulate<kFp16Format>(a, b);
      ASSERT_TRUE(temporal.read_raw() == spatial.read_raw())
          << cfg_trial << "/" << t << " w=" << w << " n=" << n;
    }
  }
}

// ---------------------------------------------------------------------------
// Random DAG topologies: the graph execution core (parallel-branch waves,
// prepared/packed plans) vs the Session facade vs a node-by-node hand-wired
// ConvEngine chain must agree bit for bit, for every scheme and precision
// mode that scheme supports.
// ---------------------------------------------------------------------------

int rint(Rng& rng, int lo, int hi) {
  return static_cast<int>(rng.uniform_int(lo, hi));
}

/// A dims-preserving random conv (1x1, or 3x3 with pad 1) onto `from`.
int fuzz_conv(GraphModel::Builder& b, Rng& rng, int& serial, int from, int cin,
              int cout, bool relu) {
  const int k = rng.bernoulli(0.5) ? 1 : 3;
  ConvSpec spec;
  spec.pad = (k - 1) / 2;
  FilterBank f = random_filters(rng, cout, cin, k, k, ValueDist::kNormal, 0.3);
  return b.conv("n" + std::to_string(serial++), std::move(f), spec, from, relu);
}

/// Deterministic-seed random DAG: a handful of structural steps, each a
/// chain conv, a residual block (branch + add, identity or conv skip), or a
/// concat fan-in of 2-3 branches.  Tracks (c, h, w) so every join agrees by
/// construction; the returned graph carries real weights.
GraphModel random_dag(Rng& rng, int& input_c, int& input_h, int& input_w) {
  GraphModel::Builder b("fuzz-dag");
  int c = rint(rng, 2, 5);
  const int h = rint(rng, 5, 8);
  const int w = rint(rng, 5, 8);
  input_c = c;
  input_h = h;
  input_w = w;
  int serial = 0;
  int cur = b.input();
  // The input node needs a direct conv consumer to pin its channel count.
  const int c_first = rint(rng, 2, 5);
  cur = fuzz_conv(b, rng, serial, cur, c, c_first, true);
  c = c_first;
  const int steps = rint(rng, 1, 3);
  for (int s = 0; s < steps; ++s) {
    switch (rint(rng, 0, 2)) {
      case 0: {  // chain conv
        const int cout = rint(rng, 2, 6);
        cur = fuzz_conv(b, rng, serial, cur, c, cout, rng.bernoulli(0.7));
        c = cout;
        break;
      }
      case 1: {  // residual block: branch of 1-2 convs back onto cur
        int t = cur;
        int tc = c;
        const int depth = rint(rng, 1, 2);
        for (int d = 0; d < depth; ++d) {
          const int cout = d + 1 == depth ? c : rint(rng, 2, 6);
          t = fuzz_conv(b, rng, serial, t, tc, cout, d + 1 != depth);
          tc = cout;
        }
        cur = b.add("add" + std::to_string(serial++), t, cur,
                    rng.bernoulli(0.7));
        break;
      }
      default: {  // concat fan-in of 2-3 branches
        const int branches = rint(rng, 2, 3);
        std::vector<int> ends;
        int c_total = 0;
        for (int br = 0; br < branches; ++br) {
          int t = cur;
          int tc = c;
          const int depth = rint(rng, 1, 2);
          for (int d = 0; d < depth; ++d) {
            const int cout = rint(rng, 2, 4);
            t = fuzz_conv(b, rng, serial, t, tc, cout, rng.bernoulli(0.5));
            tc = cout;
          }
          ends.push_back(t);
          c_total += tc;
        }
        cur = b.concat("cat" + std::to_string(serial++), std::move(ends),
                       rng.bernoulli(0.5));
        c = c_total;
        break;
      }
    }
  }
  if (rng.bernoulli(0.5)) {  // optional 1x1 head
    fuzz_conv(b, rng, serial, cur, c, rint(rng, 2, 4), false);
  }
  return b.build();
}

/// Node-by-node evaluation on one ConvEngine -- the "obviously correct"
/// wiring of the same topology (builder order is topological by
/// construction, so plain list order works).
Tensor eval_hand_wired(const GraphModel& g, const Tensor& input,
                       ConvEngine& engine, bool use_int) {
  std::vector<Tensor> acts(g.nodes().size());
  for (size_t i = 0; i < g.nodes().size(); ++i) {
    const GraphNode& nd = g.nodes()[i];
    Tensor y;
    switch (nd.op) {
      case GraphNode::Op::kInput:
        acts[i] = input;
        continue;
      case GraphNode::Op::kConv: {
        const Tensor& x = acts[static_cast<size_t>(nd.inputs[0])];
        y = use_int ? engine.conv_int(x, nd.filters, nd.spec, 8, 8)
                    : engine.conv_fp16(x, nd.filters, nd.spec);
        break;
      }
      case GraphNode::Op::kAdd:
      case GraphNode::Op::kConcat: {
        std::vector<const Tensor*> parts;
        for (int p : nd.inputs) {
          parts.push_back(&acts[static_cast<size_t>(p)]);
        }
        y = nd.op == GraphNode::Op::kAdd ? tensor_add(parts)
                                         : channel_concat(parts);
        break;
      }
    }
    acts[i] = apply_post_ops(std::move(y), nd.relu, nd.pool);
  }
  return acts.back();
}

TEST(FuzzDifferential, RandomDagsAgreeAcrossSchemesModesAndExecutors) {
  Rng rng(0xF0026);
  for (int trial = 0; trial < 12; ++trial) {
    int input_c = 0, input_h = 0, input_w = 0;
    const GraphModel graph = random_dag(rng, input_c, input_h, input_w);
    const Tensor input = random_tensor(rng, input_c, input_h, input_w,
                                       ValueDist::kHalfNormal, 1.0);

    for (DecompositionScheme scheme :
         {DecompositionScheme::kTemporal, DecompositionScheme::kSerial,
          DecompositionScheme::kSpatial}) {
      for (const bool use_int : {false, true}) {
        if (use_int && scheme == DecompositionScheme::kSpatial) {
          continue;  // spatial is FP-only
        }
        RunSpec spec;
        spec.datapath = DatapathConfig::for_scheme(scheme);
        spec.datapath.n_inputs = 16;
        spec.datapath.adder_tree_width = 16;
        spec.datapath.software_precision = 28;
        spec.datapath.multi_cycle = true;
        spec.policy = use_int ? PrecisionPolicy::all_int(8)
                              : PrecisionPolicy::all_fp16(AccumKind::kFp32);
        spec.threads = 1;

        Session session(spec);
        const RunReport via_session = session.run(graph, input);

        const CompiledModel compiled =
            session.compile(graph, {input_h, input_w});
        const RunReport via_compiled = compiled.run(input);

        ConvEngineConfig ec;
        ec.datapath = spec.datapath;
        ec.accum = AccumKind::kFp32;
        ec.threads = 1;
        ConvEngine engine(ec);
        const Tensor expected = eval_hand_wired(graph, input, engine, use_int);

        ASSERT_EQ(via_session.output.data.size(), expected.data.size())
            << "trial " << trial << " " << scheme_name(scheme);
        for (size_t i = 0; i < expected.data.size(); ++i) {
          ASSERT_EQ(via_session.output.data[i], expected.data[i])
              << "trial " << trial << " " << scheme_name(scheme)
              << (use_int ? " int8" : " fp16") << " elt " << i;
        }
        ASSERT_EQ(via_session.to_json(), via_compiled.to_json())
            << "trial " << trial << " " << scheme_name(scheme);
        ASSERT_EQ(via_session.totals, engine.stats())
            << "trial " << trial << " " << scheme_name(scheme);
      }
    }
  }
}

TEST(FuzzDifferential, Fp8FormatsWorkThroughTheGenericMachinery) {
  // The Soft<> template and nibble decomposition are format-generic: FP8
  // e4m3 / e5m2 (not in the paper, a modern extension) decompose into one
  // 5-bit lane and run exactly.
  constexpr FpFormat kE4M3{4, 3};
  constexpr FpFormat kE5M2{5, 2};
  static_assert(fp_nibble_count(kE4M3) == 1);
  static_assert(fp_nibble_count(kE5M2) == 1);
  Rng rng(0xF0025);
  IpuConfig cfg;
  cfg.n_inputs = 16;
  cfg.adder_tree_width = 40;
  cfg.software_precision = 40;
  cfg.multi_cycle = false;
  cfg.accumulator.frac_bits = 100;
  cfg.accumulator.lossless = true;
  Ipu ipu(cfg);
  for (int t = 0; t < 2000; ++t) {
    std::vector<Soft<kE4M3>> a, b;
    for (int k = 0; k < 16; ++k) {
      a.push_back(Soft<kE4M3>::from_double(rng.normal(0.0, 2.0)));
      b.push_back(Soft<kE4M3>::from_double(rng.normal(0.0, 2.0)));
    }
    ipu.reset_accumulator();
    const int cycles = ipu.fp_accumulate<kE4M3>(a, b);
    EXPECT_EQ(cycles, 1);  // 1x1 nibble iteration: FP8 is single-cycle
    EXPECT_TRUE(ipu.read_raw() == exact_fp_inner_product<kE4M3>(a, b)) << t;
  }
  // Round-trip sanity for both FP8 flavors.
  for (uint32_t raw = 0; raw < 0x100; ++raw) {
    const auto e43 = Soft<kE4M3>::from_bits(raw);
    if (e43.is_finite()) {
      EXPECT_EQ(Soft<kE4M3>::from_double(e43.to_double()).raw_bits(), raw);
    }
    const auto e52 = Soft<kE5M2>::from_bits(raw);
    if (e52.is_finite()) {
      EXPECT_EQ(Soft<kE5M2>::from_double(e52.to_double()).raw_bits(), raw);
    }
  }
}

}  // namespace
}  // namespace mpipu
