// Differential tests for the prepared-operand fast path (core/prepared.h):
// the prepared pipeline must be bit- AND cycle-identical to the per-op
// reference paths it replaces, for
//
//   * all three decomposition schemes x {FP16, FP32} accumulation regimes
//     (software precision 16 / 28 with the matching readout),
//   * INT mode (temporal digit planes, serial raw-value streaming),
//   * full convolutions including border-pixel clip classes (pad/stride
//     combinations) and the skip_zero_iterations sparse ablation,
//   * the allocation-free EHU overloads (Decoded spans, exponent planes,
//     and scratch reuse across calls) against the allocating one.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "common/rng.h"
#include "core/datapath.h"
#include "core/ipu.h"
#include "core/serial_ipu.h"
#include "core/spatial_ipu.h"
#include "nn/conv.h"
#include "workload/quantizer.h"

namespace mpipu {
namespace {

constexpr auto kAllSchemes = {DecompositionScheme::kTemporal,
                              DecompositionScheme::kSerial,
                              DecompositionScheme::kSpatial};

std::vector<Fp16> random_fp16_bits(Rng& rng, int n, double zero_prob = 0.0) {
  std::vector<Fp16> v;
  while (static_cast<int>(v.size()) < n) {
    if (zero_prob > 0.0 && rng.uniform(0.0, 1.0) < zero_prob) {
      v.push_back(Fp16::zero(rng.uniform(0.0, 1.0) < 0.5));
      continue;
    }
    const Fp16 f = Fp16::from_bits(static_cast<uint32_t>(rng.next_u64()));
    if (f.is_finite()) v.push_back(f);
  }
  return v;
}

DatapathConfig base_config(DecompositionScheme scheme, int w, int software_precision) {
  DatapathConfig cfg = DatapathConfig::for_scheme(scheme);
  cfg.n_inputs = 16;
  cfg.adder_tree_width = w;
  cfg.software_precision = software_precision;
  cfg.multi_cycle = true;
  return cfg;
}

// --- EHU overloads -----------------------------------------------------------

Decoded dec(int exp) {
  Decoded d;
  d.exp = exp;
  d.magnitude = 1;
  return d;
}

TEST(PreparedEhu, ScratchAndPlaneOverloadsMatchAllocating) {
  Rng rng(21);
  EhuResult scratch;  // deliberately reused across trials: stale state must
                      // never leak into a later, smaller op
  for (int t = 0; t < 2000; ++t) {
    const int n = static_cast<int>(rng.uniform_int(1, 16));
    std::vector<Decoded> a, b;
    std::vector<int32_t> ea, eb;
    for (int k = 0; k < n; ++k) {
      a.push_back(dec(static_cast<int>(rng.uniform_int(-28, 16))));
      b.push_back(dec(static_cast<int>(rng.uniform_int(-28, 16))));
      ea.push_back(a.back().exp);
      eb.push_back(b.back().exp);
    }
    EhuOptions opts;
    opts.software_precision = static_cast<int>(rng.uniform_int(4, 32));
    opts.safe_precision = static_cast<int>(rng.uniform_int(1, 20));

    const EhuResult ref = run_ehu(a, b, opts);
    run_ehu(std::span<const Decoded>(a), std::span<const Decoded>(b), opts,
            scratch);
    EXPECT_EQ(scratch.product_exp, ref.product_exp);
    EXPECT_EQ(scratch.max_exp, ref.max_exp);
    EXPECT_EQ(scratch.align, ref.align);
    EXPECT_EQ(scratch.masked, ref.masked);
    EXPECT_EQ(scratch.band, ref.band);
    EXPECT_EQ(scratch.mc_cycles, ref.mc_cycles);
    EXPECT_EQ(scratch.mc_cycles_skip_empty, ref.mc_cycles_skip_empty);

    run_ehu(std::span<const int32_t>(ea), std::span<const int32_t>(eb), opts,
            scratch);
    EXPECT_EQ(scratch.product_exp, ref.product_exp);
    EXPECT_EQ(scratch.max_exp, ref.max_exp);
    EXPECT_EQ(scratch.align, ref.align);
    EXPECT_EQ(scratch.masked, ref.masked);
    EXPECT_EQ(scratch.band, ref.band);
    EXPECT_EQ(scratch.mc_cycles, ref.mc_cycles);
    EXPECT_EQ(scratch.mc_cycles_skip_empty, ref.mc_cycles_skip_empty);
  }
}

TEST(PreparedEhu, ProductAlignmentsMatchesRunEhuStages) {
  Rng rng(22);
  for (int t = 0; t < 500; ++t) {
    const int n = static_cast<int>(rng.uniform_int(1, 16));
    std::vector<Decoded> a, b;
    for (int k = 0; k < n; ++k) {
      a.push_back(dec(static_cast<int>(rng.uniform_int(-28, 16))));
      b.push_back(dec(static_cast<int>(rng.uniform_int(-28, 16))));
    }
    EhuOptions opts;  // defaults; alignments do not depend on the options
    EXPECT_EQ(product_alignments(a, b), run_ehu(a, b, opts).align);
  }
}

// --- Datapath prepared vs per-op, all schemes x accumulation regimes --------

/// Per-op reference driven through the original (template) entry points of
/// the directly constructed scheme units.
struct PerOpRef {
  std::function<void()> reset;
  std::function<int(std::span<const Fp16>, std::span<const Fp16>)> accumulate;
  std::function<FixedPoint()> raw;
};

// Scheme-config mappers mirroring make_datapath's (kept local: the wrapped
// configs are an implementation detail of datapath.cpp).
IpuConfig TemporalOnly(const DatapathConfig& cfg) {
  IpuConfig c;
  c.n_inputs = cfg.n_inputs;
  c.adder_tree_width = cfg.effective_adder_tree_width();
  c.software_precision = cfg.software_precision;
  c.multi_cycle = cfg.multi_cycle;
  c.skip_empty_bands = cfg.skip_empty_bands;
  c.skip_zero_iterations = cfg.skip_zero_iterations;
  return c;
}

SerialIpuConfig SerialOnly(const DatapathConfig& cfg) {
  SerialIpuConfig c;
  c.n_inputs = cfg.n_inputs;
  c.adder_tree_width =
      cfg.scheme == DecompositionScheme::kSerial ? cfg.effective_adder_tree_width() : 16;
  c.software_precision = cfg.software_precision;
  c.multi_cycle = cfg.multi_cycle;
  return c;
}

SpatialIpuConfig SpatialOnly(const DatapathConfig& cfg) {
  SpatialIpuConfig c;
  c.n_inputs = cfg.n_inputs;
  c.adder_tree_width = cfg.effective_adder_tree_width();
  c.software_precision = cfg.software_precision;
  c.multi_cycle = cfg.multi_cycle;
  c.skip_empty_bands = cfg.skip_empty_bands;
  return c;
}

PerOpRef make_ref(DecompositionScheme scheme, Ipu& ipu, SerialIpu& serial,
                  SpatialIpu& spatial) {
  switch (scheme) {
    case DecompositionScheme::kTemporal:
      return {[&] { ipu.reset_accumulator(); },
              [&](std::span<const Fp16> a, std::span<const Fp16> b) {
                return ipu.fp_accumulate<kFp16Format>(a, b);
              },
              [&] { return ipu.read_raw(); }};
    case DecompositionScheme::kSerial:
      return {[&] { serial.reset_accumulator(); },
              [&](std::span<const Fp16> a, std::span<const Fp16> b) {
                return serial.fp_accumulate(a, b);
              },
              [&] { return serial.read_raw(); }};
    case DecompositionScheme::kSpatial:
      return {[&] { spatial.reset_accumulator(); },
              [&](std::span<const Fp16> a, std::span<const Fp16> b) {
                return spatial.fp_accumulate<kFp16Format>(a, b);
              },
              [&] { return spatial.read_raw(); }};
  }
  return {};
}

TEST(PreparedDatapath, BitAndCycleIdenticalToPerOpAllSchemesBothRegimes) {
  Rng rng(23);
  for (auto scheme : kAllSchemes) {
    for (int w : {13, 16, 28}) {
      for (int soft_prec : {16, 28}) {  // FP16- vs FP32-accumulation regime
        const DatapathConfig cfg = base_config(scheme, w, soft_prec);
        auto dp = make_datapath(cfg);

        Ipu ipu(TemporalOnly(cfg));
        SerialIpu serial(SerialOnly(cfg));
        SpatialIpu spatial(SpatialOnly(cfg));
        PerOpRef ref = make_ref(scheme, ipu, serial, spatial);

        for (int t = 0; t < 150; ++t) {
          // Multi-op accumulation chains exercise the accumulator hand-off
          // between prepared ops (2 chunks of 16 without reset).
          const auto a = random_fp16_bits(rng, 32);
          const auto b = random_fp16_bits(rng, 32);
          PreparedFp16 pa(a), pb(b);
          dp->reset_accumulator();
          ref.reset();
          int prep_cycles = 0, ref_cycles = 0;
          for (size_t c0 = 0; c0 < a.size(); c0 += 16) {
            prep_cycles +=
                dp->fp16_accumulate_prepared(pa.view(c0, 16), pb.view(c0, 16));
            ref_cycles += ref.accumulate(
                std::span<const Fp16>(a).subspan(c0, 16),
                std::span<const Fp16>(b).subspan(c0, 16));
          }
          EXPECT_TRUE(dp->read_raw() == ref.raw())
              << scheme_name(scheme) << " w=" << w << " sp=" << soft_prec
              << " trial " << t;
          EXPECT_EQ(prep_cycles, ref_cycles)
              << scheme_name(scheme) << " w=" << w << " sp=" << soft_prec
              << " trial " << t;
          // Both accumulation destinations round from the same raw bits.
          EXPECT_EQ(dp->read_fp16().raw_bits(),
                    Fp16::round_from_fixed(ref.raw()).raw_bits());
          EXPECT_EQ(dp->read_fp32().raw_bits(),
                    Fp32::round_from_fixed(ref.raw()).raw_bits());
        }
      }
    }
  }
}

// --- Sparse ablation ---------------------------------------------------------

TEST(PreparedDatapath, SkipZeroIterationsAblationMatchesTemplatePath) {
  Rng rng(24);
  IpuConfig cfg;
  cfg.n_inputs = 16;
  cfg.adder_tree_width = 16;
  cfg.skip_zero_iterations = true;
  Ipu template_path(cfg);
  Ipu prepared_path(cfg);
  for (int t = 0; t < 400; ++t) {
    const auto a = random_fp16_bits(rng, 16, /*zero_prob=*/0.6);
    const auto b = random_fp16_bits(rng, 16, /*zero_prob=*/0.6);
    PreparedFp16 pa(a), pb(b);
    template_path.reset_accumulator();
    prepared_path.reset_accumulator();
    const int ct = template_path.fp_accumulate<kFp16Format>(a, b);
    const int cp = prepared_path.fp16_accumulate_prepared(pa.view(), pb.view());
    EXPECT_EQ(cp, ct) << t;
    EXPECT_TRUE(prepared_path.read_raw() == template_path.read_raw()) << t;
  }
  // Whole-run statistics agree counter for counter (including the skipped-
  // iteration and masked-product counts the ablation is about).
  EXPECT_EQ(prepared_path.stats().skipped_iterations,
            template_path.stats().skipped_iterations);
  EXPECT_GT(prepared_path.stats().skipped_iterations, 0);
  EXPECT_EQ(prepared_path.stats().cycles, template_path.stats().cycles);
  EXPECT_EQ(prepared_path.stats().nibble_iterations,
            template_path.stats().nibble_iterations);
  EXPECT_EQ(prepared_path.stats().masked_products,
            template_path.stats().masked_products);
  EXPECT_EQ(prepared_path.stats().multi_cycle_iterations,
            template_path.stats().multi_cycle_iterations);
  EXPECT_EQ(prepared_path.stats().max_alignment_seen,
            template_path.stats().max_alignment_seen);
}

// --- INT mode ----------------------------------------------------------------

TEST(PreparedDatapath, IntPreparedMatchesPerOpTemporalAndSerial) {
  Rng rng(25);
  for (auto scheme :
       {DecompositionScheme::kTemporal, DecompositionScheme::kSerial}) {
    for (bool skip_zero : {false, true}) {
      DatapathConfig cfg = base_config(scheme, 16, 28);
      cfg.skip_zero_iterations = skip_zero;
      auto dp = make_datapath(cfg);
      Ipu ipu(TemporalOnly(cfg));
      SerialIpu serial(SerialOnly(cfg));
      for (int t = 0; t < 300; ++t) {
        std::vector<int32_t> a, b;
        for (int k = 0; k < 16; ++k) {
          // Mix in zeros so the temporal skip-zero ablation actually skips.
          a.push_back(rng.uniform(0.0, 1.0) < 0.3
                          ? 0
                          : static_cast<int32_t>(rng.uniform_int(-128, 127)));
          b.push_back(rng.uniform(0.0, 1.0) < 0.3
                          ? 0
                          : static_cast<int32_t>(rng.uniform_int(-128, 127)));
        }
        PreparedInt pa, pb;
        pa.assign(a, 8);
        pb.assign(b, 8);
        dp->reset_accumulator();
        const int cp = dp->int_accumulate_prepared(pa.view(), pb.view(), 8, 8);
        int cr;
        int64_t ref_val;
        if (scheme == DecompositionScheme::kTemporal) {
          ipu.reset_accumulator();
          cr = ipu.int_accumulate(a, b, 8, 8);
          ref_val = ipu.read_int();
        } else {
          serial.reset_accumulator();
          cr = serial.int_accumulate(a, b, 12, 8);
          ref_val = serial.read_int();
        }
        if (scheme == DecompositionScheme::kSerial) {
          // The serial unit charges b_bits cycles regardless of a_bits.
          EXPECT_EQ(cp, cr) << t;
        } else {
          EXPECT_EQ(cp, cr) << "skip_zero=" << skip_zero << " trial " << t;
        }
        EXPECT_EQ(dp->read_int(), ref_val) << scheme_name(scheme) << " " << t;
      }
    }
  }
}

// --- Convolution: clip classes, strides, both accumulation destinations -----

/// Single-threaded per-op convolution reference (the PR 2 engine loop):
/// per-pixel Fp16 gather + the scheme's original per-op entry points.
Tensor per_op_conv_fp16(const PerOpRef& ref,
                        std::function<double()> read_out, int n_inputs,
                        const Tensor& input, const FilterBank& filters,
                        const ConvSpec& spec, int64_t* cycles_out) {
  std::vector<Fp16> in16(input.data.size()), flt16(filters.data.size());
  for (size_t i = 0; i < input.data.size(); ++i) {
    in16[i] = Fp16::from_double(input.data[i]);
  }
  for (size_t i = 0; i < filters.data.size(); ++i) {
    flt16[i] = Fp16::from_double(filters.data[i]);
  }
  const int ho = spec.out_dim(input.h, filters.kh);
  const int wo = spec.out_dim(input.w, filters.kw);
  Tensor out(filters.cout, ho, wo);
  int64_t cycles = 0;
  std::vector<Fp16> pa, pb;
  for (int y = 0; y < ho; ++y) {
    for (int x = 0; x < wo; ++x) {
      pa.clear();
      pb.clear();
      std::vector<int32_t> filter_off;
      for (int ky = 0; ky < filters.kh; ++ky) {
        for (int kx = 0; kx < filters.kw; ++kx) {
          const int iy = y * spec.stride + ky - spec.pad;
          const int ix = x * spec.stride + kx - spec.pad;
          if (iy < 0 || iy >= input.h || ix < 0 || ix >= input.w) continue;
          for (int ci = 0; ci < input.c; ++ci) {
            pa.push_back(in16[(static_cast<size_t>(ci) * input.h + iy) *
                                  static_cast<size_t>(input.w) +
                              ix]);
            filter_off.push_back(static_cast<int32_t>(
                (static_cast<size_t>(ci) * filters.kh + ky) *
                    static_cast<size_t>(filters.kw) +
                kx));
          }
        }
      }
      const int len = static_cast<int>(pa.size());
      const size_t block =
          static_cast<size_t>(filters.cin) * filters.kh * filters.kw;
      for (int co = 0; co < filters.cout; ++co) {
        pb.resize(static_cast<size_t>(len));
        for (int t = 0; t < len; ++t) {
          pb[static_cast<size_t>(t)] =
              flt16[static_cast<size_t>(co) * block +
                    static_cast<size_t>(filter_off[static_cast<size_t>(t)])];
        }
        ref.reset();
        for (int c0 = 0; c0 < len; c0 += n_inputs) {
          const auto chunk = static_cast<size_t>(std::min(n_inputs, len - c0));
          cycles += ref.accumulate(
              std::span<const Fp16>(pa).subspan(static_cast<size_t>(c0), chunk),
              std::span<const Fp16>(pb).subspan(static_cast<size_t>(c0), chunk));
        }
        out.at(co, y, x) = read_out();
      }
    }
  }
  if (cycles_out) *cycles_out = cycles;
  return out;
}

TEST(PreparedConv, BorderClipClassesAndStridesMatchPerOpAllSchemes) {
  Rng rng(26);
  const Tensor input = random_tensor(rng, 5, 7, 9, ValueDist::kNormal, 1.0);
  const FilterBank filters =
      random_filters(rng, 4, 5, 3, 3, ValueDist::kNormal, 0.3);
  struct Geometry {
    int stride, pad;
  };
  for (const Geometry g : {Geometry{1, 0}, Geometry{1, 1}, Geometry{1, 2},
                           Geometry{2, 1}}) {
    ConvSpec spec;
    spec.stride = g.stride;
    spec.pad = g.pad;
    for (auto scheme : kAllSchemes) {
      for (AccumKind accum : {AccumKind::kFp16, AccumKind::kFp32}) {
        const DatapathConfig cfg = base_config(scheme, 16, 28);
        Ipu ipu(TemporalOnly(cfg));
        SerialIpu serial(SerialOnly(cfg));
        SpatialIpu spatial(SpatialOnly(cfg));
        PerOpRef ref = make_ref(scheme, ipu, serial, spatial);
        auto read_out = [&]() {
          const FixedPoint raw = ref.raw();
          return accum == AccumKind::kFp16
                     ? Fp16::round_from_fixed(raw).to_double()
                     : Fp32::round_from_fixed(raw).to_double();
        };
        int64_t ref_cycles = 0;
        const Tensor expect = per_op_conv_fp16(ref, read_out, cfg.n_inputs,
                                               input, filters, spec, &ref_cycles);

        for (int threads : {1, 3}) {
          ConvEngineConfig ec;
          ec.datapath = cfg;
          ec.accum = accum;
          ec.threads = threads;
          ConvEngine engine(ec);
          const Tensor got = engine.conv_fp16(input, filters, spec);
          ASSERT_EQ(got.data.size(), expect.data.size());
          for (size_t i = 0; i < got.data.size(); ++i) {
            EXPECT_EQ(got.data[i], expect.data[i])
                << scheme_name(scheme) << " stride=" << g.stride
                << " pad=" << g.pad << " threads=" << threads << " elt " << i;
          }
          EXPECT_EQ(engine.stats().cycles, ref_cycles)
              << scheme_name(scheme) << " stride=" << g.stride
              << " pad=" << g.pad << " threads=" << threads;
        }
      }
    }
  }
}

TEST(PreparedConv, SparseAblationConvMatchesPerOp) {
  Rng rng(27);
  // Half the activations are exactly zero (post-ReLU-style sparsity).
  Tensor input = random_tensor(rng, 4, 6, 6, ValueDist::kNormal, 1.0);
  for (auto& v : input.data) {
    if (rng.uniform(0.0, 1.0) < 0.5) v = 0.0;
  }
  const FilterBank filters =
      random_filters(rng, 3, 4, 3, 3, ValueDist::kNormal, 0.3);
  ConvSpec spec;
  spec.pad = 1;
  DatapathConfig cfg = base_config(DecompositionScheme::kTemporal, 16, 28);
  cfg.skip_zero_iterations = true;

  Ipu ipu(TemporalOnly(cfg));
  SerialIpu serial(SerialOnly(cfg));
  SpatialIpu spatial(SpatialOnly(cfg));
  PerOpRef ref = make_ref(cfg.scheme, ipu, serial, spatial);
  int64_t ref_cycles = 0;
  const Tensor expect = per_op_conv_fp16(
      ref, [&] { return Fp32::round_from_fixed(ref.raw()).to_double(); },
      cfg.n_inputs, input, filters, spec, &ref_cycles);

  ConvEngineConfig ec;
  ec.datapath = cfg;
  ec.accum = AccumKind::kFp32;
  ec.threads = 1;
  ConvEngine engine(ec);
  const Tensor got = engine.conv_fp16(input, filters, spec);
  for (size_t i = 0; i < got.data.size(); ++i) {
    EXPECT_EQ(got.data[i], expect.data[i]) << i;
  }
  EXPECT_EQ(engine.stats().cycles, ref_cycles);
  EXPECT_EQ(engine.stats().skipped_iterations, ipu.stats().skipped_iterations);
  EXPECT_GT(engine.stats().skipped_iterations, 0);
}

TEST(PreparedConv, IntConvMatchesPerOpQuantizedLoop) {
  Rng rng(28);
  const Tensor input = random_tensor(rng, 4, 6, 7, ValueDist::kHalfNormal, 1.0);
  const FilterBank filters =
      random_filters(rng, 3, 4, 3, 3, ValueDist::kNormal, 0.2);
  ConvSpec spec;
  spec.pad = 1;
  for (auto scheme :
       {DecompositionScheme::kTemporal, DecompositionScheme::kSerial}) {
    const DatapathConfig cfg = base_config(scheme, 16, 28);

    // Per-op reference: quantize once, gather per pixel, INT-accumulate per
    // op through the direct units.
    const QuantParams qa = fit_symmetric(input.data, 8);
    const QuantParams qw = fit_symmetric(filters.data, 8);
    const std::vector<int32_t> in_q = quantize(input.data, qa);
    const std::vector<int32_t> flt_q = quantize(filters.data, qw);
    Ipu ipu(TemporalOnly(cfg));
    SerialIpu serial(SerialOnly(cfg));
    const int ho = spec.out_dim(input.h, filters.kh);
    const int wo = spec.out_dim(input.w, filters.kw);
    Tensor expect(filters.cout, ho, wo);
    std::vector<int32_t> pa, pb;
    for (int y = 0; y < ho; ++y) {
      for (int x = 0; x < wo; ++x) {
        pa.clear();
        std::vector<int32_t> filter_off;
        for (int ky = 0; ky < filters.kh; ++ky) {
          for (int kx = 0; kx < filters.kw; ++kx) {
            const int iy = y * spec.stride + ky - spec.pad;
            const int ix = x * spec.stride + kx - spec.pad;
            if (iy < 0 || iy >= input.h || ix < 0 || ix >= input.w) continue;
            for (int c = 0; c < input.c; ++c) {
              pa.push_back(in_q[(static_cast<size_t>(c) * input.h + iy) *
                                    static_cast<size_t>(input.w) +
                                ix]);
              filter_off.push_back(static_cast<int32_t>(
                  (static_cast<size_t>(c) * filters.kh + ky) *
                      static_cast<size_t>(filters.kw) +
                  kx));
            }
          }
        }
        const int len = static_cast<int>(pa.size());
        const size_t block =
            static_cast<size_t>(filters.cin) * filters.kh * filters.kw;
        for (int co = 0; co < filters.cout; ++co) {
          pb.resize(static_cast<size_t>(len));
          for (int t = 0; t < len; ++t) {
            pb[static_cast<size_t>(t)] =
                flt_q[static_cast<size_t>(co) * block +
                      static_cast<size_t>(filter_off[static_cast<size_t>(t)])];
          }
          int64_t acc = 0;
          for (int c0 = 0; c0 < len; c0 += cfg.n_inputs) {
            const auto chunk =
                static_cast<size_t>(std::min(cfg.n_inputs, len - c0));
            const auto sa =
                std::span<const int32_t>(pa).subspan(static_cast<size_t>(c0), chunk);
            const auto sb =
                std::span<const int32_t>(pb).subspan(static_cast<size_t>(c0), chunk);
            if (scheme == DecompositionScheme::kTemporal) {
              ipu.reset_accumulator();
              ipu.int_accumulate(sa, sb, 8, 8);
              acc += ipu.read_int();
            } else {
              serial.reset_accumulator();
              serial.int_accumulate(sa, sb, 8, 8);
              acc += serial.read_int();
            }
          }
          expect.at(co, y, x) = dequantize_accumulator(acc, qa, qw);
        }
      }
    }

    ConvEngineConfig ec;
    ec.datapath = cfg;
    ec.threads = 2;
    ConvEngine engine(ec);
    const Tensor got = engine.conv_int(input, filters, spec, 8, 8);
    for (size_t i = 0; i < got.data.size(); ++i) {
      EXPECT_EQ(got.data[i], expect.data[i]) << scheme_name(scheme) << " " << i;
    }
  }
}

// --- Prepared plane plumbing -------------------------------------------------

TEST(PreparedPlanes, GatherMatchesDirectPreparation) {
  Rng rng(29);
  const auto pool = random_fp16_bits(rng, 256);
  PreparedFp16 planes(pool);
  Ipu a_path{IpuConfig{}}, b_path{IpuConfig{}};
  for (int t = 0; t < 200; ++t) {
    std::vector<int32_t> rel;
    std::vector<Fp16> direct;
    const int32_t base = static_cast<int32_t>(rng.uniform_int(0, 64));
    for (int k = 0; k < 16; ++k) {
      rel.push_back(static_cast<int32_t>(rng.uniform_int(0, 191)));
      direct.push_back(pool[static_cast<size_t>(base + rel.back())]);
    }
    PreparedFp16 gathered;
    gathered.resize(16);
    gathered.gather(planes, rel, base);
    const PreparedFp16 prepared(direct);
    a_path.reset_accumulator();
    b_path.reset_accumulator();
    const int ca = a_path.fp16_accumulate_prepared(gathered.view(), gathered.view());
    const int cb = b_path.fp16_accumulate_prepared(prepared.view(), prepared.view());
    EXPECT_EQ(ca, cb) << t;
    EXPECT_TRUE(a_path.read_raw() == b_path.read_raw()) << t;
  }
}

}  // namespace
}  // namespace mpipu
