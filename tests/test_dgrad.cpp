// Tests for the data-gradient (backward) convolution path: the bit-level
// counterpart of the simulator's backward workload (§4.3, Fig. 9(b)).
#include <gtest/gtest.h>

#include "nn/conv.h"

namespace mpipu {
namespace {

TEST(Dgrad, TransposeIsAnInvolutionOnShapes) {
  Rng rng(91);
  const FilterBank f = random_filters(rng, 6, 4, 3, 3, ValueDist::kNormal, 0.1);
  const FilterBank t = transpose_for_dgrad(f);
  EXPECT_EQ(t.cout, 4);
  EXPECT_EQ(t.cin, 6);
  const FilterBank tt = transpose_for_dgrad(t);
  EXPECT_EQ(tt.data, f.data);
}

TEST(Dgrad, ShapeInvertsStride1Conv) {
  Rng rng(92);
  const Tensor x = random_tensor(rng, 4, 9, 9, ValueDist::kNormal, 1.0);
  const FilterBank f = random_filters(rng, 6, 4, 3, 3, ValueDist::kNormal, 0.1);
  for (int pad : {0, 1}) {
    ConvSpec spec;
    spec.pad = pad;
    const Tensor y = conv_reference(x, f, spec);
    const Tensor gx = dgrad_reference(y, f, pad);
    EXPECT_EQ(gx.c, x.c) << pad;
    EXPECT_EQ(gx.h, x.h) << pad;
    EXPECT_EQ(gx.w, x.w) << pad;
  }
}

TEST(Dgrad, MatchesManualAdjointOnTinyCase) {
  // For y = conv(x, w), the adjoint satisfies <y, conv(x, w)> = <dgrad(y), x>
  // for any gradient tensor g:  sum(g * conv(x,w)) == sum(dgrad(g) * x).
  Rng rng(93);
  const Tensor x = random_tensor(rng, 3, 6, 6, ValueDist::kNormal, 1.0);
  const FilterBank f = random_filters(rng, 2, 3, 3, 3, ValueDist::kNormal, 0.5);
  ConvSpec spec;
  spec.pad = 1;
  const Tensor y = conv_reference(x, f, spec);
  const Tensor g = random_tensor(rng, 2, 6, 6, ValueDist::kNormal, 1.0);
  const Tensor gx = dgrad_reference(g, f, 1);
  double lhs = 0.0, rhs = 0.0;
  for (size_t i = 0; i < y.data.size(); ++i) lhs += g.data[i] * y.data[i];
  for (size_t i = 0; i < x.data.size(); ++i) rhs += gx.data[i] * x.data[i];
  EXPECT_NEAR(lhs, rhs, 1e-9 * std::max(std::fabs(lhs), 1.0));
}

TEST(Dgrad, IpuPathAgreesWithReference) {
  Rng rng(94);
  const Tensor g =
      random_tensor(rng, 8, 7, 7, ValueDist::kBackwardWide, 1.0).rounded_to_fp16();
  const FilterBank f =
      random_filters(rng, 8, 4, 3, 3, ValueDist::kNormal, 0.1).rounded_to_fp16();
  IpuConfig cfg;
  cfg.n_inputs = 16;
  cfg.adder_tree_width = 28;
  cfg.software_precision = 28;
  cfg.multi_cycle = true;
  const Tensor ref = dgrad_reference(g, f, 1);
  const Tensor got = dgrad_ipu_fp16(g, f, 1, cfg, AccumKind::kFp32);
  const AgreementStats s = compare_outputs(got, ref);
  EXPECT_GT(s.snr_db, 50.0);
}

TEST(Dgrad, BackwardTensorsCostMoreAlignmentCyclesThanForward) {
  // The bit-level confirmation of Fig. 9: gradient-like values multi-cycle
  // far more often than activation-like ones on a narrow MC-IPU.
  Rng rng(95);
  IpuConfig cfg;
  cfg.n_inputs = 16;
  cfg.adder_tree_width = 12;
  cfg.software_precision = 28;
  cfg.multi_cycle = true;
  const FilterBank f =
      random_filters(rng, 4, 8, 3, 3, ValueDist::kNormal, 0.1).rounded_to_fp16();
  IpuConvStats fwd_stats, bwd_stats;
  const Tensor act =
      random_tensor(rng, 8, 7, 7, ValueDist::kHalfNormal, 1.0).rounded_to_fp16();
  conv_ipu_fp16(act, f, ConvSpec{}, cfg, AccumKind::kFp32, &fwd_stats);
  const Tensor grad =
      random_tensor(rng, 4, 7, 7, ValueDist::kBackwardWide, 1.0).rounded_to_fp16();
  dgrad_ipu_fp16(grad, f, 0, cfg, AccumKind::kFp32, &bwd_stats);
  const double fwd_cpi = static_cast<double>(fwd_stats.cycles) /
                         static_cast<double>(fwd_stats.fp_ops);
  const double bwd_cpi = static_cast<double>(bwd_stats.cycles) /
                         static_cast<double>(bwd_stats.fp_ops);
  EXPECT_GT(bwd_cpi, fwd_cpi * 1.2);
}

}  // namespace
}  // namespace mpipu
