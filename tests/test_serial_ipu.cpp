// Tests for the bit-serial MC-SER datapath (Table 1, §4.5).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/ipu.h"
#include "core/serial_ipu.h"

namespace mpipu {
namespace {

SerialIpuConfig wide_cfg() {
  SerialIpuConfig cfg;
  cfg.n_inputs = 16;
  cfg.adder_tree_width = 80;
  cfg.software_precision = 58;
  cfg.multi_cycle = false;
  cfg.accumulator.frac_bits = 100;
  cfg.accumulator.lossless = true;
  return cfg;
}

std::vector<Fp16> random_fp16(Rng& rng, int n) {
  std::vector<Fp16> v;
  while (static_cast<int>(v.size()) < n) {
    const Fp16 f = Fp16::from_bits(static_cast<uint32_t>(rng.next_u64()));
    if (f.is_finite()) v.push_back(f);
  }
  return v;
}

TEST(SerialIpu, IntModeBitExact) {
  Rng rng(61);
  SerialIpuConfig cfg;
  SerialIpu ipu(cfg);
  for (int trial = 0; trial < 500; ++trial) {
    ipu.reset_accumulator();
    std::vector<int32_t> a, b;
    for (int k = 0; k < 16; ++k) {
      a.push_back(static_cast<int32_t>(rng.uniform_int(-2048, 2047)));  // 12-bit
      b.push_back(static_cast<int32_t>(rng.uniform_int(-128, 127)));    // 8-bit
    }
    const int cycles = ipu.int_accumulate(a, b, 12, 8);
    EXPECT_EQ(cycles, 8);  // bit-serial over the weight
    EXPECT_EQ(ipu.read_int(), exact_int_inner_product(a, b));
  }
}

TEST(SerialIpu, IntModeCyclesScaleWithWeightBits) {
  SerialIpu ipu(SerialIpuConfig{});
  const std::vector<int32_t> a(4, 100), b4(4, 7), b16(4, 1234);
  EXPECT_EQ(ipu.int_accumulate(a, b4, 12, 4), 4);
  ipu.reset_accumulator();
  EXPECT_EQ(ipu.int_accumulate(a, b16, 12, 16), 16);
  EXPECT_EQ(ipu.read_int(), 4 * 100 * 1234);
}

TEST(SerialIpu, IntModeNegativeWeights) {
  SerialIpu ipu(SerialIpuConfig{});
  const std::vector<int32_t> a = {5, -7, 11, -13};
  const std::vector<int32_t> b = {-8, 7, -1, -128};
  ipu.int_accumulate(a, b, 12, 8);
  EXPECT_EQ(ipu.read_int(), exact_int_inner_product(a, b));
}

TEST(SerialIpu, FpWideDatapathMatchesExactReference) {
  Rng rng(62);
  SerialIpu ipu(wide_cfg());
  for (int t = 0; t < 2000; ++t) {
    const auto a = random_fp16(rng, 16);
    const auto b = random_fp16(rng, 16);
    ipu.reset_accumulator();
    const int cycles = ipu.fp_accumulate(a, b);
    EXPECT_EQ(cycles, 12);  // 12 serial steps, single alignment band
    EXPECT_TRUE(ipu.read_raw() == exact_fp_inner_product<kFp16Format>(a, b)) << t;
  }
}

TEST(SerialIpu, FpMcModeIsLossless) {
  // MC banding on the serial datapath is exact with an unbounded
  // accumulator, exactly like the nibble IPU.
  Rng rng(63);
  SerialIpuConfig cfg = wide_cfg();
  cfg.adder_tree_width = 16;  // sp = 4
  cfg.multi_cycle = true;
  SerialIpu ipu(cfg);
  for (int t = 0; t < 1000; ++t) {
    const auto a = random_fp16(rng, 16);
    const auto b = random_fp16(rng, 16);
    ipu.reset_accumulator();
    ipu.fp_accumulate(a, b);
    EXPECT_TRUE(ipu.read_raw() == exact_fp_inner_product<kFp16Format>(a, b)) << t;
  }
}

TEST(SerialIpu, FpCyclesAreTwelvePerBand) {
  // Two products with alignment D: bands = D / sp + 1, cycles = 12 * bands.
  SerialIpuConfig cfg;
  cfg.n_inputs = 2;
  cfg.adder_tree_width = 16;  // sp = 4
  cfg.software_precision = 28;
  cfg.multi_cycle = true;
  SerialIpu ipu(cfg);
  for (int D = 0; D <= 24; D += 4) {
    const std::vector<Fp16> a = {Fp16::from_fields(false, 25, 0),
                                 Fp16::from_fields(false, static_cast<uint32_t>(25 - D), 0)};
    const std::vector<Fp16> b = {Fp16::one(), Fp16::one()};
    ipu.reset_accumulator();
    EXPECT_EQ(ipu.fp_accumulate(a, b), 12 * (D / 4 + 1)) << D;
  }
}

TEST(SerialIpu, FpMatchesNibbleIpuRoundedResults) {
  // Different decompositions, same arithmetic: serial and nibble datapaths
  // agree bit-for-bit when both are lossless.
  Rng rng(64);
  SerialIpu serial(wide_cfg());
  IpuConfig ncfg;
  ncfg.n_inputs = 16;
  ncfg.adder_tree_width = 80;
  ncfg.software_precision = 58;
  ncfg.multi_cycle = false;
  ncfg.accumulator.frac_bits = 100;
  ncfg.accumulator.lossless = true;
  Ipu nibble(ncfg);
  for (int t = 0; t < 1000; ++t) {
    const auto a = random_fp16(rng, 16);
    const auto b = random_fp16(rng, 16);
    serial.reset_accumulator();
    nibble.reset_accumulator();
    serial.fp_accumulate(a, b);
    nibble.fp_accumulate<kFp16Format>(a, b);
    EXPECT_TRUE(serial.read_raw() == nibble.read_raw()) << t;
  }
}

TEST(SerialIpu, StatsAccumulate) {
  SerialIpu ipu(SerialIpuConfig{});
  const std::vector<Fp16> a(4, Fp16::one()), b(4, Fp16::one());
  const std::vector<int32_t> ia(4, 1), ib(4, 1);
  ipu.fp_accumulate(a, b);
  ipu.int_accumulate(ia, ib, 12, 4);
  EXPECT_EQ(ipu.stats().fp_ops, 1);
  EXPECT_EQ(ipu.stats().int_ops, 1);
  EXPECT_EQ(ipu.stats().cycles, 12 + 4);
}

}  // namespace
}  // namespace mpipu
