// Tests for soft-float arithmetic: correct rounding against host oracles,
// special-value propagation, and the FMA-chain baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/rng.h"
#include "core/reference.h"
#include "softfloat/arith.h"

namespace mpipu {
namespace {

// --- Multiplication ------------------------------------------------------------

TEST(SoftMul, ExhaustiveGridAgainstHost) {
  // FP16 x FP16 products are exact in double, so double -> fp16 is a single
  // correct rounding: a strict oracle.  Sweep a structured grid (all
  // exponents x several mantissas, both signs) -- ~1.4M cases.
  const uint32_t mans[] = {0, 1, 0x155, 0x2AA, 0x3FF};
  for (uint32_t ea = 0; ea < 31; ++ea) {
    for (uint32_t eb = 0; eb < 31; ++eb) {
      for (uint32_t ma : mans) {
        for (uint32_t mb : mans) {
          for (int signs = 0; signs < 4; ++signs) {
            const Fp16 a = Fp16::from_fields(signs & 1, ea, ma);
            const Fp16 b = Fp16::from_fields(signs & 2, eb, mb);
            const Fp16 got = soft_mul(a, b);
            const Fp16 want = Fp16::from_double(a.to_double() * b.to_double());
            ASSERT_EQ(got.raw_bits(), want.raw_bits())
                << a.to_double() << " * " << b.to_double();
          }
        }
      }
    }
  }
}

TEST(SoftMul, RandomAgainstHost) {
  Rng rng(31);
  for (int t = 0; t < 200000; ++t) {
    const Fp16 a = Fp16::from_bits(static_cast<uint32_t>(rng.next_u64()));
    const Fp16 b = Fp16::from_bits(static_cast<uint32_t>(rng.next_u64()));
    if (a.is_nan() || b.is_nan()) continue;
    const Fp16 got = soft_mul(a, b);
    const double want = a.to_double() * b.to_double();
    if (std::isnan(want)) {
      EXPECT_TRUE(got.is_nan());
    } else {
      EXPECT_EQ(got.raw_bits(), Fp16::from_double(want).raw_bits());
    }
  }
}

TEST(SoftMul, SpecialValues) {
  EXPECT_TRUE(soft_mul(Fp16::infinity(), Fp16::zero()).is_nan());
  EXPECT_TRUE(soft_mul(Fp16::quiet_nan(), Fp16::one()).is_nan());
  EXPECT_TRUE(soft_mul(Fp16::infinity(), Fp16::one(true)).is_inf());
  EXPECT_TRUE(soft_mul(Fp16::infinity(), Fp16::one(true)).sign());
  EXPECT_TRUE(soft_mul(Fp16::max_finite(), Fp16::max_finite()).is_inf());  // overflow
  // Underflow to subnormal / zero.
  EXPECT_EQ(soft_mul(Fp16::min_subnormal(), Fp16::min_subnormal()).raw_bits(), 0u);
  EXPECT_EQ(soft_mul(Fp16::min_normal(), Fp16::one()).raw_bits(),
            Fp16::min_normal().raw_bits());
}

// --- Addition --------------------------------------------------------------------

TEST(SoftAdd, RandomAgainstHost) {
  // FP16 + FP16 is exact in double (alignment <= 42 bits): strict oracle.
  Rng rng(32);
  for (int t = 0; t < 200000; ++t) {
    const Fp16 a = Fp16::from_bits(static_cast<uint32_t>(rng.next_u64()));
    const Fp16 b = Fp16::from_bits(static_cast<uint32_t>(rng.next_u64()));
    if (!a.is_finite() || !b.is_finite()) continue;
    const Fp16 got = soft_add(a, b);
    const double want = a.to_double() + b.to_double();
    EXPECT_EQ(got.raw_bits(), Fp16::from_double(want).raw_bits())
        << a.to_double() << " + " << b.to_double();
  }
}

TEST(SoftAdd, CancellationAndZeroSigns) {
  const Fp16 x = Fp16::from_double(1.5);
  const Fp16 nx = Fp16::from_double(-1.5);
  EXPECT_EQ(soft_add(x, nx).raw_bits(), 0u);           // exact cancel -> +0
  EXPECT_EQ(soft_add(Fp16::zero(), Fp16::zero(true)).raw_bits(), 0u);
  EXPECT_EQ(soft_add(Fp16::zero(true), Fp16::zero(true)).raw_bits(), 0x8000u);
  EXPECT_TRUE(soft_add(Fp16::infinity(), Fp16::infinity(true)).is_nan());
  EXPECT_TRUE(soft_add(Fp16::infinity(), Fp16::max_finite()).is_inf());
}

TEST(SoftSub, MatchesAddOfNegation) {
  Rng rng(33);
  for (int t = 0; t < 50000; ++t) {
    const Fp16 a = Fp16::from_bits(static_cast<uint32_t>(rng.next_u64()));
    const Fp16 b = Fp16::from_bits(static_cast<uint32_t>(rng.next_u64()));
    if (!a.is_finite() || !b.is_finite()) continue;
    EXPECT_EQ(soft_sub(a, b).raw_bits(),
              Fp16::from_double(a.to_double() - b.to_double()).raw_bits());
  }
}

// --- Conversions -------------------------------------------------------------------

TEST(SoftConvert, Fp16ToFp32IsExact) {
  for (uint32_t raw = 0; raw < 0x10000; ++raw) {
    const Fp16 f = Fp16::from_bits(raw);
    if (f.is_nan()) continue;
    const Fp32 wide = soft_convert<kFp16Format, kFp32Format>(f);
    EXPECT_EQ(wide.to_double(), f.to_double()) << raw;
  }
}

TEST(SoftConvert, Fp32ToFp16MatchesHostDowncast) {
  Rng rng(34);
  for (int t = 0; t < 200000; ++t) {
    const auto raw = static_cast<uint32_t>(rng.next_u64());
    const Fp32 f = Fp32::from_bits(raw);
    if (f.is_nan()) continue;
    EXPECT_EQ((soft_convert<kFp32Format, kFp16Format>(f)).raw_bits(),
              Fp16::from_double(f.to_double()).raw_bits());
  }
}

TEST(SoftConvert, Fp32ToBf16Truncation) {
  // 1.0 + epsilon_bf16/2 ties to even.
  const Fp32 tie = Fp32::from_double(1.0 + std::exp2(-8));
  EXPECT_EQ((soft_convert<kFp32Format, kBf16Format>(tie)).raw_bits(),
            Bf16::from_double(1.0).raw_bits());
}

// --- FMA ---------------------------------------------------------------------------

TEST(SoftFma, SingleRoundingAgainstFloat128) {
  // fp16*fp16 + fp32 fits a __float128 exactly (span < 113 bits), and the
  // host's __float128 -> float cast rounds correctly: a strict oracle.
  Rng rng(35);
  for (int t = 0; t < 100000; ++t) {
    const Fp16 a = Fp16::from_bits(static_cast<uint32_t>(rng.next_u64()));
    const Fp16 b = Fp16::from_bits(static_cast<uint32_t>(rng.next_u64()));
    const Fp32 c = Fp32::from_double(rng.normal(0.0, 100.0));
    if (!a.is_finite() || !b.is_finite()) continue;
    const Fp32 got = soft_fma<kFp16Format, kFp32Format>(a, b, c);
    const __float128 exact = static_cast<__float128>(a.to_double()) *
                                 static_cast<__float128>(b.to_double()) +
                             static_cast<__float128>(c.to_double());
    if (exact == 0) continue;  // signed-zero conventions differ; skip
    const float want = static_cast<float>(exact);
    EXPECT_EQ(got.to_double(), static_cast<double>(want))
        << a.to_double() << "*" << b.to_double() << "+" << c.to_double();
  }
}

TEST(SoftFma, SpecialValues) {
  EXPECT_TRUE(
      (soft_fma<kFp16Format, kFp32Format>(Fp16::infinity(), Fp16::zero(), Fp32::one()))
          .is_nan());
  EXPECT_TRUE((soft_fma<kFp16Format, kFp32Format>(Fp16::infinity(), Fp16::one(),
                                                  Fp32::infinity(true)))
                  .is_nan());
  EXPECT_TRUE(
      (soft_fma<kFp16Format, kFp32Format>(Fp16::one(), Fp16::one(), Fp32::infinity()))
          .is_inf());
}

TEST(FmaChain, OrderDependentRoundingDiffersFromSingleRounding) {
  // The FMA chain rounds after every element; the exact-then-round result
  // differs on adversarial inputs (the error-model contrast the paper's
  // IPU exploits).  Construct a big + small + small... case where the
  // chain loses the small terms for FP16 accumulation.
  std::vector<Fp16> a, b;
  a.push_back(Fp16::from_double(2048.0));
  b.push_back(Fp16::one());
  for (int i = 0; i < 8; ++i) {
    a.push_back(Fp16::from_double(0.5));  // 0.5 each, 4.0 total
    b.push_back(Fp16::one());
  }
  const Fp16 chain = fma_chain_inner_product<kFp16Format, kFp16Format>(a, b);
  const Fp16 exact = exact_fp_inner_product_rounded<kFp16Format, kFp16Format>(a, b);
  // Exact: 2052 -> same fp16 bucket as 2052; chain: each +0.5 rounds back
  // to 2048 (ULP at 2048 is 2), losing everything.
  EXPECT_EQ(chain.to_double(), 2048.0);
  EXPECT_EQ(exact.to_double(), 2052.0);
}

TEST(FmaChain, AgreesWithExactForBenignInputs) {
  Rng rng(36);
  int mismatches = 0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    std::vector<Fp16> a, b;
    for (int i = 0; i < 16; ++i) {
      a.push_back(Fp16::from_double(rng.normal(0.0, 1.0)));
      b.push_back(Fp16::from_double(rng.normal(0.0, 1.0)));
    }
    const Fp32 chain = fma_chain_inner_product<kFp16Format, kFp32Format>(a, b);
    const Fp32 exact = exact_fp_inner_product_rounded<kFp16Format, kFp32Format>(a, b);
    mismatches += chain.raw_bits() != exact.raw_bits();
    // Per-step rounding drifts by at most ~n ULPs of FP32 at the partial
    // sums' scale (O(10) here): a small absolute bound.  Relative error can
    // look large when the final sum cancels toward zero.
    const double e = exact.to_double();
    EXPECT_LT(std::fabs(chain.to_double() - e), 1e-4);
  }
  // The chain still agrees bit-for-bit reasonably often; mostly it is a
  // couple of ULPs off (the single-rounding IPU is strictly better).
  EXPECT_LT(mismatches, trials);
  EXPECT_GT(mismatches, 0);
}

}  // namespace
}  // namespace mpipu
