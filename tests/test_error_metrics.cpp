// Tests for the §3.1 error metrics and the Theorem 1 analytical bound.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/error_metrics.h"
#include "common/rng.h"
#include "core/ipu.h"
#include "core/reference.h"

namespace mpipu {
namespace {

TEST(ErrorMetrics, AbsoluteError) {
  EXPECT_EQ(absolute_error(FixedPoint(5, 0), FixedPoint(3, 0)), 2.0);
  EXPECT_EQ(absolute_error(FixedPoint(3, 0), FixedPoint(5, 0)), 2.0);
  EXPECT_EQ(absolute_error(FixedPoint(7, -1), FixedPoint(7, -1)), 0.0);
  EXPECT_EQ(absolute_error(FixedPoint(1, 3), FixedPoint(1, 0)), 7.0);
}

TEST(ErrorMetrics, RelativeErrorPct) {
  EXPECT_EQ(absolute_relative_error_pct(FixedPoint(11, 0), FixedPoint(10, 0)), 10.0);
  EXPECT_EQ(absolute_relative_error_pct(FixedPoint(0, 0), FixedPoint(0, 0)), 0.0);
  EXPECT_TRUE(std::isinf(absolute_relative_error_pct(FixedPoint(1, 0), FixedPoint(0, 0))));
}

TEST(ErrorMetrics, ContaminatedBits) {
  const FpFormat f = kFp16Format;
  EXPECT_EQ(contaminated_bits(0x3C00, 0x3C00, f), 0);
  EXPECT_EQ(contaminated_bits(0x3C01, 0x3C00, f), 1);   // 1 ULP -> 1 bit
  EXPECT_EQ(contaminated_bits(0x3C02, 0x3C00, f), 2);   // 2 ULP -> 2 bits
  EXPECT_EQ(contaminated_bits(0x3C03, 0x3C00, f), 2);   // 3 ULP -> 2 bits
  EXPECT_EQ(contaminated_bits(0x3C04, 0x3C00, f), 3);
  // Sign straddle: +1ULP vs -1ULP around zero is 2 encoding steps.
  EXPECT_EQ(contaminated_bits(0x0001, 0x8001, f), 2);
  // Symmetric.
  EXPECT_EQ(contaminated_bits(0x3C00, 0x3C07, f), contaminated_bits(0x3C07, 0x3C00, f));
}

TEST(Theorem1, IterationBoundFormula) {
  // 225 * 2^(4(i+j)-22) * 2^(max-precision) * (n-1).
  EXPECT_DOUBLE_EQ(theorem1_iteration_bound(2, 2, 2, 16, 0),
                   225.0 * std::exp2(16 - 22) * std::exp2(-16));
  EXPECT_DOUBLE_EQ(theorem1_iteration_bound(0, 0, 17, 20, 5),
                   225.0 * std::exp2(-22) * std::exp2(5 - 20) * 16);
  EXPECT_EQ(theorem1_iteration_bound(1, 1, 1, 10, 0), 0.0);  // n=1: no error
}

TEST(Theorem1, MostSignificantIterationsDominate) {
  // Remark 1: iterations with the largest i+j contribute the largest bound.
  double prev = 0.0;
  for (int s = 0; s <= 4; ++s) {
    const double b = theorem1_iteration_bound(s / 2, s - s / 2, 8, 16, 0);
    EXPECT_GT(b, prev);
    prev = b;
  }
}

TEST(Theorem1, MeasuredIpuErrorNeverExceedsWindowBound) {
  // Property test: the single-cycle IPU(precision)'s absolute error against
  // the exact reference is always within the rigorous window-truncation
  // bound; the paper's Theorem 1 bound (tighter constant, see
  // error_metrics.h) should hold for the overwhelming majority of samples.
  Rng rng(55);
  int64_t paper_bound_violations = 0, samples = 0;
  for (int precision : {8, 12, 16, 20, 26}) {
    IpuConfig cfg;
    cfg.n_inputs = 16;
    cfg.adder_tree_width = precision;
    cfg.software_precision = precision;
    cfg.multi_cycle = false;
    cfg.accumulator.frac_bits = 100;
    cfg.accumulator.lossless = true;
    Ipu ipu(cfg);
    for (int t = 0; t < 400; ++t) {
      std::vector<Fp16> a, b;
      for (int k = 0; k < 16; ++k) {
        a.push_back(Fp16::from_double(rng.laplace(0.0, 2.0)));
        b.push_back(Fp16::from_double(rng.laplace(0.0, 2.0)));
      }
      // max_exp exactly as the EHU sees it (exponent fields only; zeros
      // carry the subnormal exponent).
      int max_exp = INT32_MIN;
      for (int k = 0; k < 16; ++k) {
        max_exp = std::max(max_exp, a[static_cast<size_t>(k)].decode().exp +
                                        b[static_cast<size_t>(k)].decode().exp);
      }
      ipu.reset_accumulator();
      ipu.fp_accumulate<kFp16Format>(a, b);
      const double err =
          absolute_error(ipu.read_raw(), exact_fp_inner_product<kFp16Format>(a, b));
      EXPECT_LE(err, window_truncation_operation_bound(16, precision, max_exp))
          << "precision=" << precision << " trial=" << t;
      paper_bound_violations += err > theorem1_operation_bound(16, precision, max_exp);
      ++samples;
    }
  }
  // The paper's published constant (225 = a fully dropped lane product)
  // under-counts partial floor truncation by up to 2^10/225 ~ 4.6x, so it
  // is exceeded on a sizable minority of samples; the corrected window
  // bound above is never exceeded.  Record that the paper bound still
  // holds for the majority (documented in EXPERIMENTS.md).
  EXPECT_LT(static_cast<double>(paper_bound_violations), 0.5 * static_cast<double>(samples));
  // And the two bounds differ by exactly the constant ratio.
  EXPECT_NEAR(window_truncation_operation_bound(16, 20, 0, 3) /
                  theorem1_operation_bound(16, 20, 0, 3),
              1024.0 / 225.0, 1e-9);
}

TEST(Stats, MedianMeanPercentile) {
  EXPECT_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_EQ(median({}), 0.0);
  EXPECT_EQ(median({7.0}), 7.0);
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(mean(v), 2.5);
  EXPECT_EQ(percentile({1.0, 2.0, 3.0, 4.0, 5.0}, 0.0), 1.0);
  EXPECT_EQ(percentile({1.0, 2.0, 3.0, 4.0, 5.0}, 100.0), 5.0);
  EXPECT_EQ(percentile({1.0, 2.0, 3.0, 4.0, 5.0}, 50.0), 3.0);
}

TEST(Histogram, CountsAndFractions) {
  IntHistogram h(10);
  for (int i = 0; i < 8; ++i) h.add(0);
  h.add(5);
  h.add(30);  // overflow bin
  EXPECT_EQ(h.total(), 10);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.8);
  EXPECT_DOUBLE_EQ(h.fraction(5), 0.1);
  EXPECT_DOUBLE_EQ(h.fraction_above(8), 0.1);
  EXPECT_DOUBLE_EQ(h.fraction_above(0), 0.2);
  EXPECT_EQ(h.count(11), 1);  // overflow aggregates
}

}  // namespace
}  // namespace mpipu
