// IEEE-754-style binary floating point format descriptors.
//
// The paper's datapath handles FP16 natively and is extensible to BFloat16
// and TF32 (Appendix B): all are sign/exponent/mantissa formats differing
// only in field widths.  `FpFormat` captures a format as a compile-time
// constant so the soft-float value type, the nibble decomposition and the
// exponent-handling unit can all be written once and instantiated per type.
#pragma once

#include <cstdint>

namespace mpipu {

struct FpFormat {
  int exp_bits;
  int man_bits;

  constexpr int total_bits() const { return 1 + exp_bits + man_bits; }
  constexpr int bias() const { return (1 << (exp_bits - 1)) - 1; }
  /// Unbiased exponent of the smallest normal (== exponent of subnormals).
  constexpr int min_exp() const { return 1 - bias(); }
  /// Unbiased exponent of the largest finite normal.
  constexpr int max_exp() const { return (1 << exp_bits) - 2 - bias(); }
  /// Number of significant magnitude bits including the implicit bit.
  constexpr int sig_bits() const { return man_bits + 1; }
  constexpr uint32_t exp_mask() const { return (1u << exp_bits) - 1; }
  constexpr uint32_t man_mask() const { return (1u << man_bits) - 1; }
};

inline constexpr FpFormat kFp16Format{5, 10};
inline constexpr FpFormat kFp32Format{8, 23};
inline constexpr FpFormat kBf16Format{8, 7};
inline constexpr FpFormat kTf32Format{8, 10};

}  // namespace mpipu
