// IEEE-style arithmetic on the soft formats: multiply, add, conversions and
// a fused multiply-add.  Everything is computed exactly via FixedPoint and
// rounded once (RNE), which is precisely IEEE 754 correct rounding for
// these operations.
//
// This powers the "typical FP16 FMA" comparison datapath (Table 1's FP16
// column and the ablation benches): a conventional accelerator computes an
// inner product as a *chain* of FMAs, rounding the accumulator at every
// step, whereas the paper's IPU aligns products against one max exponent
// and rounds once.  The two error models differ and the ablation bench
// quantifies it.
#pragma once

#include <cassert>
#include <span>

#include "common/fixed_point.h"
#include "softfloat/softfloat.h"

namespace mpipu {

namespace detail {

template <FpFormat F>
bool propagate_special2(Soft<F> a, Soft<F> b, Soft<F>* out, bool is_mul) {
  if (a.is_nan() || b.is_nan()) {
    *out = Soft<F>::quiet_nan();
    return true;
  }
  if (is_mul) {
    if (a.is_inf() || b.is_inf()) {
      // inf * 0 = NaN, otherwise signed inf.
      if (a.is_zero() || b.is_zero()) {
        *out = Soft<F>::quiet_nan();
      } else {
        *out = Soft<F>::infinity(a.sign() != b.sign());
      }
      return true;
    }
  } else {
    if (a.is_inf() && b.is_inf()) {
      *out = a.sign() == b.sign() ? a : Soft<F>::quiet_nan();
      return true;
    }
    if (a.is_inf()) {
      *out = a;
      return true;
    }
    if (b.is_inf()) {
      *out = b;
      return true;
    }
  }
  return false;
}

}  // namespace detail

/// Correctly rounded (RNE) multiplication.
template <FpFormat F>
Soft<F> soft_mul(Soft<F> a, Soft<F> b) {
  Soft<F> special;
  if (detail::propagate_special2(a, b, &special, /*is_mul=*/true)) return special;
  const bool sign = a.sign() != b.sign();
  if (a.is_zero() || b.is_zero()) return Soft<F>::zero(sign);
  const Decoded da = a.decode(), db = b.decode();
  const FixedPoint prod(static_cast<int128>(da.signed_magnitude()) * db.signed_magnitude(),
                        da.exp + db.exp - 2 * F.man_bits);
  Soft<F> r = Soft<F>::round_from_fixed(prod);
  return r;  // sign is carried by the signed magnitudes
}

/// Correctly rounded (RNE) addition.  Note: exact cancellation yields +0,
/// matching IEEE RNE semantics.
template <FpFormat F>
Soft<F> soft_add(Soft<F> a, Soft<F> b) {
  Soft<F> special;
  if (detail::propagate_special2(a, b, &special, /*is_mul=*/false)) return special;
  if (a.is_zero() && b.is_zero()) {
    // IEEE: (+0) + (-0) = +0 under RNE; equal signs keep the sign.
    return Soft<F>::zero(a.sign() && b.sign());
  }
  const FixedPoint sum = a.to_fixed() + b.to_fixed();
  if (sum.is_zero()) return Soft<F>::zero();
  return Soft<F>::round_from_fixed(sum);
}

template <FpFormat F>
Soft<F> soft_sub(Soft<F> a, Soft<F> b) {
  const Soft<F> neg_b =
      b.is_nan() ? b : Soft<F>::from_fields(!b.sign(), b.exp_field(), b.man_field());
  return soft_add(a, neg_b);
}

/// Correctly rounded conversion between formats (e.g. FP32 -> FP16
/// downcast, FP16 -> FP32 exact widening).
template <FpFormat In, FpFormat Out>
Soft<Out> soft_convert(Soft<In> v) {
  if (v.is_nan()) return Soft<Out>::quiet_nan();
  if (v.is_inf()) return Soft<Out>::infinity(v.sign());
  if (v.is_zero()) return Soft<Out>::zero(v.sign());
  return Soft<Out>::round_from_fixed(v.to_fixed());
}

/// Fused multiply-add with mixed precision: acc + a*b where a, b are In and
/// the accumulator is Out (the mixed-precision-training FMA: FP16 operands,
/// FP32 accumulate).  Single rounding, as a hardware FMA performs.
template <FpFormat In, FpFormat Out>
Soft<Out> soft_fma(Soft<In> a, Soft<In> b, Soft<Out> acc) {
  if (a.is_nan() || b.is_nan() || acc.is_nan()) return Soft<Out>::quiet_nan();
  if (a.is_inf() || b.is_inf()) {
    if (a.is_zero() || b.is_zero()) return Soft<Out>::quiet_nan();
    const bool psign = a.sign() != b.sign();
    if (acc.is_inf() && acc.sign() != psign) return Soft<Out>::quiet_nan();
    return Soft<Out>::infinity(psign);
  }
  if (acc.is_inf()) return acc;
  const Decoded da = a.decode(), db = b.decode();
  const FixedPoint prod(static_cast<int128>(da.signed_magnitude()) * db.signed_magnitude(),
                        da.exp + db.exp - 2 * In.man_bits);
  const FixedPoint sum = prod + acc.to_fixed();
  if (sum.is_zero()) return Soft<Out>::zero();
  return Soft<Out>::round_from_fixed(sum);
}

/// A conventional FMA-chain inner product: the baseline error model the
/// paper's single-rounding IPU is compared against.  Rounds the accumulator
/// after every element.
template <FpFormat In, FpFormat Out>
Soft<Out> fma_chain_inner_product(std::span<const Soft<In>> a,
                                  std::span<const Soft<In>> b) {
  assert(a.size() == b.size());
  Soft<Out> acc = Soft<Out>::zero();
  for (size_t i = 0; i < a.size(); ++i) acc = soft_fma<In, Out>(a[i], b[i], acc);
  return acc;
}

}  // namespace mpipu
