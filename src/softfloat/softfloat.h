// Bit-accurate software floating point value type.
//
// `Soft<Format>` stores the raw encoding and exposes exactly the views the
// accelerator datapath needs:
//   * classification (zero / subnormal / normal / inf / nan),
//   * the *signed magnitude* decomposition the paper uses: magnitude is the
//     sig_bits()-wide integer `1.mantissa` (normal) or `0.mantissa`
//     (subnormal), with value  (-1)^s * magnitude * 2^(E - man_bits)  where
//     E is the unbiased exponent (min_exp() for subnormals),
//   * exact conversion to/from FixedPoint, and round-to-nearest-even
//     encoding from an exact FixedPoint (used to round the accumulator back
//     to FP16/FP32, and to convert workload doubles to FP16).
//
// No host floating point is used on any datapath path; `to_double` exists
// only for reporting and test oracles.
#pragma once

#include <cassert>
#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <string>

#include "common/bits.h"
#include "common/fixed_point.h"
#include "softfloat/format.h"

namespace mpipu {

/// Sign/exponent/magnitude view of a finite FP value.
/// value = (-1)^sign * magnitude * 2^(exp - (sig_bits-1))
/// i.e. `magnitude` is an integer in [0, 2^sig_bits) whose implicit binary
/// point sits after its MSB position.
struct Decoded {
  bool sign = false;
  int exp = 0;        ///< Unbiased exponent (min_exp for zero/subnormal).
  int32_t magnitude = 0;  ///< sig_bits-wide unsigned integer.

  int32_t signed_magnitude() const { return sign ? -magnitude : magnitude; }
};

template <FpFormat F>
class Soft {
 public:
  static constexpr FpFormat format = F;
  using StorageT = uint32_t;

  constexpr Soft() = default;

  static constexpr Soft from_bits(uint32_t raw) {
    Soft s;
    s.bits_ = raw & low_mask32(F.total_bits());
    return s;
  }

  static constexpr Soft from_fields(bool sign, uint32_t exp_field, uint32_t man_field) {
    assert(exp_field <= F.exp_mask());
    assert(man_field <= F.man_mask());
    return from_bits((static_cast<uint32_t>(sign) << (F.exp_bits + F.man_bits)) |
                     (exp_field << F.man_bits) | man_field);
  }

  static constexpr Soft zero(bool sign = false) { return from_fields(sign, 0, 0); }
  static constexpr Soft infinity(bool sign = false) { return from_fields(sign, F.exp_mask(), 0); }
  static constexpr Soft quiet_nan() {
    return from_fields(false, F.exp_mask(), 1u << (F.man_bits - 1));
  }
  static constexpr Soft max_finite(bool sign = false) {
    return from_fields(sign, F.exp_mask() - 1, F.man_mask());
  }
  static constexpr Soft min_subnormal(bool sign = false) { return from_fields(sign, 0, 1); }
  static constexpr Soft min_normal(bool sign = false) { return from_fields(sign, 1, 0); }
  static constexpr Soft one(bool sign = false) {
    return from_fields(sign, static_cast<uint32_t>(F.bias()), 0);
  }

  constexpr uint32_t raw_bits() const { return bits_; }
  constexpr bool sign() const { return (bits_ >> (F.exp_bits + F.man_bits)) & 1u; }
  constexpr uint32_t exp_field() const { return (bits_ >> F.man_bits) & F.exp_mask(); }
  constexpr uint32_t man_field() const { return bits_ & F.man_mask(); }

  constexpr bool is_zero() const { return exp_field() == 0 && man_field() == 0; }
  constexpr bool is_subnormal() const { return exp_field() == 0 && man_field() != 0; }
  constexpr bool is_normal() const { return exp_field() != 0 && exp_field() != F.exp_mask(); }
  constexpr bool is_inf() const { return exp_field() == F.exp_mask() && man_field() == 0; }
  constexpr bool is_nan() const { return exp_field() == F.exp_mask() && man_field() != 0; }
  constexpr bool is_finite() const { return exp_field() != F.exp_mask(); }

  /// Signed-magnitude decomposition (paper §2.2 / Appendix A.2).
  /// Precondition: finite.
  constexpr Decoded decode() const {
    assert(is_finite());
    Decoded d;
    d.sign = sign();
    if (exp_field() == 0) {
      d.exp = F.min_exp();
      d.magnitude = static_cast<int32_t>(man_field());
    } else {
      d.exp = static_cast<int>(exp_field()) - F.bias();
      d.magnitude = static_cast<int32_t>(man_field() | (1u << F.man_bits));
    }
    return d;
  }

  /// Exact value as a FixedPoint (finite only).
  constexpr FixedPoint to_fixed() const {
    const Decoded d = decode();
    return FixedPoint(d.signed_magnitude(), d.exp - F.man_bits);
  }

  /// Round an exact FixedPoint to this format with round-to-nearest-even.
  /// Overflow produces +/-inf; underflow produces subnormals or signed zero.
  static Soft round_from_fixed(const FixedPoint& fx);

  /// Exact conversion to host double (all formats here fit in double).
  double to_double() const {
    if (is_nan()) return std::numeric_limits<double>::quiet_NaN();
    if (is_inf()) return sign() ? -std::numeric_limits<double>::infinity()
                                : std::numeric_limits<double>::infinity();
    const Decoded d = decode();
    if (d.magnitude == 0) return d.sign ? -0.0 : 0.0;
    return std::ldexp(static_cast<double>(d.signed_magnitude()), d.exp - F.man_bits);
  }

  /// Nearest representable value of a host double (RNE), used for workload
  /// synthesis.  NaN maps to quiet NaN, overflow saturates to inf.
  static Soft from_double(double v);

  friend constexpr bool operator==(Soft a, Soft b) { return a.bits_ == b.bits_; }

  std::string to_string() const;

 private:
  static constexpr uint32_t low_mask32(int n) {
    return n >= 32 ? ~0u : ((1u << n) - 1u);
  }

  uint32_t bits_ = 0;
};

using Fp16 = Soft<kFp16Format>;
using Fp32 = Soft<kFp32Format>;
using Bf16 = Soft<kBf16Format>;
using Tf32 = Soft<kTf32Format>;

// ---------------------------------------------------------------------------
// Implementation
// ---------------------------------------------------------------------------

template <FpFormat F>
Soft<F> Soft<F>::round_from_fixed(const FixedPoint& fx) {
  if (fx.is_zero()) return zero();
  const bool neg = fx.mantissa() < 0;
  uint128 mag = neg ? static_cast<uint128>(-fx.mantissa()) : static_cast<uint128>(fx.mantissa());
  int lsb = fx.lsb_exp();

  // Normalize: we want `sig_bits` significant bits with the MSB at weight
  // 2^exp. msb position p: value = mag * 2^lsb, MSB weight = 2^(p + lsb).
  int p = msb_index(mag);
  int exp = p + lsb;

  // Target LSB weight for a normal with exponent `exp` is exp - man_bits.
  // For values below the normal range, the LSB weight is pinned at
  // min_exp - man_bits (subnormal quantum).
  int target_lsb = (exp < F.min_exp() ? F.min_exp() : exp) - F.man_bits;

  auto shift_round = [&](int s) -> uint128 {
    // Round mag / 2^s to nearest even.
    if (s <= 0) return mag << (-s);
    // Shifted entirely below half an ULP (mag < 2^127 so s >= 128 implies
    // s >= msb + 2): rounds to zero.  Keeps low_mask in range.
    if (s >= 128) return 0;
    const uint128 floor_v = mag >> s;
    const uint128 rem = mag & low_mask(s);
    const uint128 half = uint128{1} << (s - 1);
    if (rem > half || (rem == half && (floor_v & 1))) return floor_v + 1;
    return floor_v;
  };

  uint128 sig = shift_round(target_lsb - lsb);
  // Rounding can carry out (e.g. 1.111..1 -> 10.00..0): renormalize.
  if (msb_index(sig) + target_lsb > exp) {
    exp = msb_index(sig) + target_lsb;
    if (exp >= F.min_exp() && msb_index(sig) > F.man_bits) {
      // Re-round at the (possibly new) quantum; a carry-out always leaves a
      // power of two so this shift is exact.
      sig >>= (msb_index(sig) - F.man_bits);
    }
  }

  if (sig == 0) return zero(neg);
  if (exp > F.max_exp()) return infinity(neg);

  if (exp < F.min_exp()) {
    // Subnormal (or rounded up into min normal).
    assert(msb_index(sig) <= F.man_bits);
    return from_fields(neg, (sig >> F.man_bits) & 1 ? 1u : 0u,
                       static_cast<uint32_t>(sig & F.man_mask()));
  }
  assert(msb_index(sig) == F.man_bits);
  return from_fields(neg, static_cast<uint32_t>(exp + F.bias()),
                     static_cast<uint32_t>(sig & F.man_mask()));
}

template <FpFormat F>
Soft<F> Soft<F>::from_double(double v) {
  if (std::isnan(v)) return quiet_nan();
  if (std::isinf(v)) return infinity(v < 0);
  if (v == 0.0) return zero(std::signbit(v));
  // Express the double exactly as FixedPoint (53-bit significand).
  int e;
  const double frac = std::frexp(v, &e);  // v = frac * 2^e, |frac| in [0.5,1)
  const auto mant = static_cast<int64_t>(std::ldexp(frac, 53));
  return round_from_fixed(FixedPoint(mant, e - 53));
}

template <FpFormat F>
std::string Soft<F>::to_string() const {
  if (is_nan()) return "nan";
  if (is_inf()) return sign() ? "-inf" : "+inf";
  return std::to_string(to_double());
}

}  // namespace mpipu
