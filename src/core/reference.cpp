#include "core/reference.h"

#include <cassert>

namespace mpipu {

int64_t exact_int_inner_product(std::span<const int32_t> a, std::span<const int32_t> b) {
  assert(a.size() == b.size());
  int64_t acc = 0;
  for (size_t k = 0; k < a.size(); ++k) {
    acc += static_cast<int64_t>(a[k]) * static_cast<int64_t>(b[k]);
  }
  return acc;
}

}  // namespace mpipu
