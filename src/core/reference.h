// Exact (bit-true, lossless) reference models -- paper Fig. 12 pseudocode.
//
// The exact FP inner product aligns every product to the maximum exponent
// with full width (the worst case for FP16 is 58 bits of alignment plus a
// 22-bit product, i.e. an 80-bit adder) and only rounds once, at the very
// end, to the destination format.  It is the golden model every approximate
// datapath in this repo is validated against.
#pragma once

#include <cstdint>
#include <span>

#include "common/fixed_point.h"
#include "softfloat/softfloat.h"

namespace mpipu {

/// Exact sum of products of two finite FP vectors as a FixedPoint.
template <FpFormat F>
FixedPoint exact_fp_inner_product(std::span<const Soft<F>> a, std::span<const Soft<F>> b) {
  assert(a.size() == b.size());
  FixedPoint acc(0, 0);
  for (size_t k = 0; k < a.size(); ++k) {
    const Decoded da = a[k].decode();
    const Decoded db = b[k].decode();
    const int128 prod =
        static_cast<int128>(da.signed_magnitude()) * static_cast<int128>(db.signed_magnitude());
    // value = prod * 2^(Ea + Eb - 2*man_bits)
    acc = acc + FixedPoint(prod, da.exp + db.exp - 2 * F.man_bits);
  }
  return acc;
}

/// Exact FP-IP rounded once (RNE) to the destination format, emulating an
/// FP32-CPU-style computation (paper's comparison baseline).
template <FpFormat In, FpFormat Out>
Soft<Out> exact_fp_inner_product_rounded(std::span<const Soft<In>> a,
                                         std::span<const Soft<In>> b) {
  return Soft<Out>::round_from_fixed(exact_fp_inner_product<In>(a, b));
}

/// Exact integer inner product (reference for INT mode).
int64_t exact_int_inner_product(std::span<const int32_t> a, std::span<const int32_t> b);

}  // namespace mpipu
