#include "core/ehu.h"

#include <algorithm>
#include <cassert>

namespace mpipu {

EhuResult run_ehu(std::span<const Decoded> a, std::span<const Decoded> b,
                  const EhuOptions& opts) {
  assert(a.size() == b.size());
  assert(opts.safe_precision >= 1);
  const size_t n = a.size();

  EhuResult r;
  r.product_exp.resize(n);
  r.align.resize(n);
  r.masked.assign(n, false);
  r.band.assign(n, -1);

  // Stage 1: elementwise exponent sums.
  for (size_t k = 0; k < n; ++k) r.product_exp[k] = a[k].exp + b[k].exp;

  // Stage 2: maximum product exponent.
  r.max_exp = *std::max_element(r.product_exp.begin(), r.product_exp.end());

  // Stage 3 + 4: alignments and software-precision masking.
  for (size_t k = 0; k < n; ++k) {
    r.align[k] = r.max_exp - r.product_exp[k];
    r.masked[k] = r.align[k] > opts.software_precision;
  }

  // Stage 5: serve loop.  Band c serves alignments in [c*sp, (c+1)*sp).
  int max_band = 0;
  std::vector<bool> band_used;
  for (size_t k = 0; k < n; ++k) {
    if (r.masked[k]) continue;
    const int c = r.align[k] / opts.safe_precision;
    r.band[k] = c;
    max_band = std::max(max_band, c);
    if (static_cast<size_t>(c) >= band_used.size()) band_used.resize(static_cast<size_t>(c) + 1, false);
    band_used[static_cast<size_t>(c)] = true;
  }
  r.mc_cycles = max_band + 1;
  r.mc_cycles_skip_empty =
      static_cast<int>(std::count(band_used.begin(), band_used.end(), true));
  if (r.mc_cycles_skip_empty == 0) r.mc_cycles_skip_empty = 1;  // all masked
  return r;
}

std::vector<int> product_alignments(std::span<const Decoded> a, std::span<const Decoded> b) {
  EhuOptions opts;
  opts.software_precision = 1 << 20;  // no masking
  opts.safe_precision = 1 << 20;
  return run_ehu(a, b, opts).align;
}

}  // namespace mpipu
