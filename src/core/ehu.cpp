#include "core/ehu.h"

#include <algorithm>
#include <cassert>

#include "core/simd/simd.h"

namespace mpipu {

namespace {

/// Stages 2-3 from an already-filled product_exp plane.
void alignment_from_product_exps(EhuResult& r) {
  assert(!r.product_exp.empty());  // an op has at least one operand pair
  r.max_exp = *std::max_element(r.product_exp.begin(), r.product_exp.end());
  const size_t n = r.product_exp.size();
  r.align.resize(n);
  for (size_t k = 0; k < n; ++k) r.align[k] = r.max_exp - r.product_exp[k];
}

/// Stages 4-5 (masking + serve-loop band assignment) on top of stages 1-3.
void mask_and_band(EhuResult& r, const EhuOptions& opts) {
  assert(opts.safe_precision >= 1);
  const size_t n = r.product_exp.size();
  r.masked.assign(n, 0);
  r.band.assign(n, -1);
  r.band_used.clear();

  int max_band = 0;
  for (size_t k = 0; k < n; ++k) {
    if (r.align[k] > opts.software_precision) {
      r.masked[k] = 1;
      continue;
    }
    const int c = r.align[k] / opts.safe_precision;
    r.band[k] = c;
    max_band = std::max(max_band, c);
    if (static_cast<size_t>(c) >= r.band_used.size()) {
      r.band_used.resize(static_cast<size_t>(c) + 1, 0);
    }
    r.band_used[static_cast<size_t>(c)] = 1;
  }
  r.mc_cycles = max_band + 1;
  r.mc_cycles_skip_empty = static_cast<int>(
      std::count(r.band_used.begin(), r.band_used.end(), uint8_t{1}));
  if (r.mc_cycles_skip_empty == 0) r.mc_cycles_skip_empty = 1;  // all masked
}

}  // namespace

void ehu_alignment_stages(std::span<const Decoded> a, std::span<const Decoded> b,
                          EhuResult& r) {
  assert(a.size() == b.size());
  const size_t n = a.size();
  r.product_exp.resize(n);
  for (size_t k = 0; k < n; ++k) r.product_exp[k] = a[k].exp + b[k].exp;
  alignment_from_product_exps(r);
}

void run_ehu(std::span<const Decoded> a, std::span<const Decoded> b,
             const EhuOptions& opts, EhuResult& out) {
  ehu_alignment_stages(a, b, out);
  mask_and_band(out, opts);
}

void run_ehu(std::span<const int32_t> a_exp, std::span<const int32_t> b_exp,
             const EhuOptions& opts, EhuResult& out) {
  assert(a_exp.size() == b_exp.size());
  const size_t n = a_exp.size();
  out.product_exp.resize(n);

  // Prepared-path fast lane: exponent planes are contiguous int32, so
  // stages 1-3 (and usually 4-5) run through the SIMD kernels.  Values are
  // identical to the scalar stages by construction (elementwise adds,
  // exact max/min reductions, exact magic-multiply division).
  if (simd::active_backend() != simd::Backend::kScalar && n > 0) {
    const simd::KernelTable& K = simd::kernels();
    int32_t mx = 0, mn = 0;
    K.sum_minmax_i32(a_exp.data(), b_exp.data(), out.product_exp.data(), n,
                     &mx, &mn);
    out.max_exp = mx;
    out.align.resize(n);
    K.rsub_i32(mx, out.product_exp.data(), out.align.data(), n);
    // The vector band kernel divides by sp via a magic multiply that is
    // exact for alignments below 2^16 (max alignment = mx - mn); fall back
    // to the scalar stages 4-5 on wider spreads.
    if (opts.safe_precision < 65536 &&
        static_cast<int64_t>(mx) - static_cast<int64_t>(mn) < 65536) {
      out.masked.resize(n);
      out.band.resize(n);
      K.mask_and_band_i32(out.align.data(), n, opts.software_precision,
                          opts.safe_precision, out.band.data(),
                          out.masked.data());
      // Occupancy / cycle-count wrap-up, exactly as mask_and_band derives
      // them from the band plane.
      out.band_used.clear();
      int max_band = 0;
      for (size_t k = 0; k < n; ++k) {
        const int c = out.band[k];
        if (c < 0) continue;
        max_band = std::max(max_band, c);
        if (static_cast<size_t>(c) >= out.band_used.size()) {
          out.band_used.resize(static_cast<size_t>(c) + 1, 0);
        }
        out.band_used[static_cast<size_t>(c)] = 1;
      }
      out.mc_cycles = max_band + 1;
      out.mc_cycles_skip_empty = static_cast<int>(
          std::count(out.band_used.begin(), out.band_used.end(), uint8_t{1}));
      if (out.mc_cycles_skip_empty == 0) out.mc_cycles_skip_empty = 1;
    } else {
      mask_and_band(out, opts);
    }
    return;
  }

  for (size_t k = 0; k < n; ++k) out.product_exp[k] = a_exp[k] + b_exp[k];
  alignment_from_product_exps(out);
  mask_and_band(out, opts);
}

EhuResult run_ehu(std::span<const Decoded> a, std::span<const Decoded> b,
                  const EhuOptions& opts) {
  EhuResult r;
  run_ehu(a, b, opts, r);
  return r;
}

std::vector<int> product_alignments(std::span<const Decoded> a, std::span<const Decoded> b) {
  EhuResult r;
  ehu_alignment_stages(a, b, r);
  return std::move(r.align);
}

}  // namespace mpipu
