// Exponent Handling Unit (EHU) -- paper Section 2.2 and Figure 5.
//
// For one FP inner-product operation over n operand pairs, the EHU:
//   stage 1: adds the unbiased operand exponents elementwise -> product exps,
//   stage 2: reduces them to the maximum exponent,
//   stage 3: computes each product's alignment (right-shift) amount as
//            max_exp - product_exp,
//   stage 4: masks products whose alignment exceeds the *software precision*
//            (they cannot affect the kept accumulator bits),
//   stage 5 (MC-IPU only): the serve loop.  In cycle k, products whose
//            alignment is below the threshold (k+1)*sp and not yet served
//            are dispatched; sp is the IPU's safe precision (w - 9,
//            Proposition 1).  The loop runs until every unmasked product is
//            served, so a nibble iteration costs floor(d_max / sp) + 1
//            cycles, where d_max is the largest unmasked alignment.
//
// One EHU is shared by all nibble iterations of an FP-IP op (the exponents
// do not change across iterations), and in a real tile it is time-multiplexed
// between IPUs; the area model (src/model) accounts for that sharing.
//
// The EHU sits on the innermost per-op path of every scheme, so the
// scratch-reuse overloads below run allocation-free once their EhuResult is
// warm: every field (including the stage-5 `band_used` occupancy scratch)
// is a reused vector.  The exponent-plane overload serves the
// prepared-operand fast path (core/prepared.h), where operands were decoded
// once per tensor and only their exponent planes reach the EHU.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "softfloat/softfloat.h"

namespace mpipu {

/// Result of the EHU's combinational stages for one FP-IP operation.
struct EhuResult {
  std::vector<int> product_exp;  ///< stage 1: Ea_k + Eb_k.
  int max_exp = 0;               ///< stage 2.
  std::vector<int> align;        ///< stage 3: max_exp - product_exp (>= 0).
  /// stage 4: nonzero iff align > software_precision.  (uint8_t, not
  /// vector<bool>: the serve loops test it per lane per cycle.)
  std::vector<uint8_t> masked;
  /// stage 5: band (serve-cycle) index per product; -1 for masked products.
  /// Band c covers alignments [c*sp, (c+1)*sp).
  std::vector<int> band;
  /// Number of serve cycles the MC-IPU needs per nibble iteration.
  int mc_cycles = 1;
  /// Number of *non-empty* bands (cycle count when the EHU can skip empty
  /// bands -- an ablation knob, see EhuOptions::skip_empty_bands).
  int mc_cycles_skip_empty = 1;
  /// Stage-5 occupancy scratch (band index -> served anything); kept here so
  /// repeated run_ehu calls into the same EhuResult never allocate.
  std::vector<uint8_t> band_used;
};

struct EhuOptions {
  /// Alignments strictly greater than this are masked (stage 4).  This is
  /// the software accuracy requirement: 16 for FP16 accumulation, 28 for
  /// FP32 accumulation (paper Section 3.1).
  int software_precision = 28;
  /// Safe precision sp = w - 9 of the attached (MC-)IPU; only used for the
  /// serve loop / band assignment.
  int safe_precision = 19;
  /// If true, cycles are counted as the number of non-empty bands (a
  /// "smarter" EHU); the paper's serve loop advances the threshold by sp
  /// every cycle, i.e. false.
  bool skip_empty_bands = false;
};

/// Run the EHU over decoded operand pairs into caller-owned scratch;
/// allocation-free once `out`'s vectors have grown to the op width.  Zero
/// operands participate with their encoding's subnormal exponent exactly as
/// the hardware (which only looks at exponent fields) would.
void run_ehu(std::span<const Decoded> a, std::span<const Decoded> b,
             const EhuOptions& opts, EhuResult& out);

/// Same, over pre-decoded exponent planes (the prepared-operand fast path).
void run_ehu(std::span<const int32_t> a_exp, std::span<const int32_t> b_exp,
             const EhuOptions& opts, EhuResult& out);

/// Allocating convenience wrapper over the scratch-reuse overload.
EhuResult run_ehu(std::span<const Decoded> a, std::span<const Decoded> b,
                  const EhuOptions& opts);

/// Stages 1-3 only (exponent sums, max reduction, alignments) into
/// `out.product_exp` / `out.max_exp` / `out.align`, leaving masking and band
/// assignment untouched.  This is the one home of the exponent/alignment
/// arithmetic: run_ehu layers stages 4-5 on top, and product_alignments is
/// a thin wrapper -- the banding model is never reimplemented.
void ehu_alignment_stages(std::span<const Decoded> a, std::span<const Decoded> b,
                          EhuResult& out);

/// Convenience: alignment histogram input -- product exponent differences
/// (stage 3 outputs) without masking or band assignment.
std::vector<int> product_alignments(std::span<const Decoded> a, std::span<const Decoded> b);

}  // namespace mpipu
