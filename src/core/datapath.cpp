#include "core/datapath.h"

#include <array>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "core/ipu.h"
#include "core/nibble.h"
#include "core/serial_ipu.h"
#include "core/spatial_ipu.h"

namespace mpipu {

const char* scheme_name(DecompositionScheme s) {
  switch (s) {
    case DecompositionScheme::kTemporal: return "temporal";
    case DecompositionScheme::kSerial: return "serial";
    case DecompositionScheme::kSpatial: return "spatial";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------------
// Temporal: wraps Ipu (nibble iterations).
// ---------------------------------------------------------------------------

class TemporalDatapath final : public Datapath {
 public:
  explicit TemporalDatapath(const DatapathConfig& cfg)
      : Datapath(cfg), ipu_(to_ipu_config(cfg)) {}

  static IpuConfig to_ipu_config(const DatapathConfig& cfg) {
    IpuConfig c;
    c.n_inputs = cfg.n_inputs;
    c.adder_tree_width = cfg.effective_adder_tree_width();
    c.software_precision = cfg.software_precision;
    c.multi_cycle = cfg.multi_cycle;
    c.skip_empty_bands = cfg.skip_empty_bands;
    c.skip_zero_iterations = cfg.skip_zero_iterations;
    c.accumulator = cfg.accumulator;
    return c;
  }

  int multipliers() const override { return cfg_.n_inputs; }
  void reset_accumulator() override { ipu_.reset_accumulator(); }
  int fp16_accumulate_prepared(const PreparedFp16View& a,
                               const PreparedFp16View& b) override {
    return ipu_.fp16_accumulate_prepared(a, b);
  }
  FixedPoint read_raw() const override { return ipu_.read_raw(); }
  bool supports_int(int a_bits, int b_bits) const override {
    return a_bits >= 2 && b_bits >= 2 && a_bits <= 4 * kMaxNibbles &&
           b_bits <= 4 * kMaxNibbles;
  }
  int int_accumulate_prepared(const PreparedIntView& a, const PreparedIntView& b,
                              int a_bits, int b_bits) override {
    return ipu_.int_accumulate_prepared(a, b, a_bits, b_bits);
  }
  int64_t read_int() const override { return ipu_.read_int(); }
  DatapathStats stats() const override {
    const IpuStats& s = ipu_.stats();
    DatapathStats d;
    d.fp_ops = s.fp_ops;
    d.int_ops = s.int_ops;
    d.cycles = s.cycles;
    d.nibble_iterations = s.nibble_iterations;
    d.masked_products = s.masked_products;
    d.multi_cycle_ops = s.multi_cycle_iterations;
    d.skipped_iterations = s.skipped_iterations;
    return d;
  }

 private:
  Ipu ipu_;
};

// ---------------------------------------------------------------------------
// Serial: wraps SerialIpu (bit-serial weights, 12x1 lanes).
// ---------------------------------------------------------------------------

class SerialDatapath final : public Datapath {
 public:
  explicit SerialDatapath(const DatapathConfig& cfg)
      : Datapath(cfg), ipu_(to_serial_config(cfg)) {}

  static SerialIpuConfig to_serial_config(const DatapathConfig& cfg) {
    SerialIpuConfig c;
    c.n_inputs = cfg.n_inputs;
    c.adder_tree_width = cfg.effective_adder_tree_width();
    c.software_precision = cfg.software_precision;
    c.multi_cycle = cfg.multi_cycle;
    c.accumulator = cfg.accumulator;
    return c;
  }

  int multipliers() const override { return cfg_.n_inputs; }
  void reset_accumulator() override { ipu_.reset_accumulator(); }
  int fp16_accumulate_prepared(const PreparedFp16View& a,
                               const PreparedFp16View& b) override {
    return ipu_.fp16_accumulate_prepared(a, b);
  }
  FixedPoint read_raw() const override { return ipu_.read_raw(); }
  bool supports_int(int a_bits, int b_bits) const override {
    // Full-parallel multiplicand is a 12-bit lane; b streams bit-serially.
    return a_bits >= 2 && b_bits >= 2 && a_bits <= 12 && b_bits <= 32;
  }
  int int_accumulate_prepared(const PreparedIntView& a, const PreparedIntView& b,
                              int a_bits, int b_bits) override {
    // The bit-serial INT path streams raw two's-complement values; the
    // prepared digit planes are a temporal-scheme notion it never reads.
    return ipu_.int_accumulate(std::span<const int32_t>(a.value, a.n),
                               std::span<const int32_t>(b.value, b.n), a_bits,
                               b_bits);
  }
  int64_t read_int() const override { return ipu_.read_int(); }
  DatapathStats stats() const override {
    const SerialIpuStats& s = ipu_.stats();
    DatapathStats d;
    d.fp_ops = s.fp_ops;
    d.int_ops = s.int_ops;
    d.cycles = s.cycles;
    return d;
  }

 private:
  SerialIpu ipu_;
};

// ---------------------------------------------------------------------------
// Spatial: wraps SpatialIpu (all nibble products in parallel).
// ---------------------------------------------------------------------------

class SpatialDatapath final : public Datapath {
 public:
  explicit SpatialDatapath(const DatapathConfig& cfg)
      : Datapath(cfg), ipu_(to_spatial_config(cfg)) {}

  static SpatialIpuConfig to_spatial_config(const DatapathConfig& cfg) {
    SpatialIpuConfig c;
    c.n_inputs = cfg.n_inputs;
    c.adder_tree_width = cfg.effective_adder_tree_width();
    c.software_precision = cfg.software_precision;
    c.multi_cycle = cfg.multi_cycle;
    c.skip_empty_bands = cfg.skip_empty_bands;
    c.accumulator = cfg.accumulator;
    return c;
  }

  int multipliers() const override {
    return cfg_.n_inputs * SpatialIpu::multipliers_per_input<kFp16Format>();
  }
  void reset_accumulator() override { ipu_.reset_accumulator(); }
  int fp16_accumulate_prepared(const PreparedFp16View& a,
                               const PreparedFp16View& b) override {
    return ipu_.fp16_accumulate_prepared(a, b);
  }
  FixedPoint read_raw() const override { return ipu_.read_raw(); }
  bool supports_int(int, int) const override { return false; }
  // Hard aborts (not asserts): in a Release build a silent 0 here would
  // masquerade as a valid INT result.
  int int_accumulate_prepared(const PreparedIntView&, const PreparedIntView&,
                              int, int) override {
    std::fprintf(stderr, "Datapath: spatial scheme is FP-only\n");
    std::abort();
  }
  int64_t read_int() const override {
    std::fprintf(stderr, "Datapath: spatial scheme is FP-only\n");
    std::abort();
  }
  DatapathStats stats() const override {
    const SpatialIpuStats& s = ipu_.stats();
    DatapathStats d;
    d.fp_ops = s.fp_ops;
    d.cycles = s.cycles;
    d.multi_cycle_ops = s.multi_cycle_ops;
    return d;
  }

 private:
  SpatialIpu ipu_;
};

}  // namespace

std::unique_ptr<Datapath> make_datapath(const DatapathConfig& cfg) {
  assert(cfg.n_inputs >= 1);
  switch (cfg.scheme) {
    case DecompositionScheme::kTemporal:
      return std::make_unique<TemporalDatapath>(cfg);
    case DecompositionScheme::kSerial:
      return std::make_unique<SerialDatapath>(cfg);
    case DecompositionScheme::kSpatial:
      return std::make_unique<SpatialDatapath>(cfg);
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Scheme-generic tile costing.
// ---------------------------------------------------------------------------

int fp16_iterations_per_op(DecompositionScheme s) {
  switch (s) {
    case DecompositionScheme::kTemporal:
      return fp_nibble_count(kFp16Format) * fp_nibble_count(kFp16Format);  // 9
    case DecompositionScheme::kSerial:
      return kFp16Format.sig_bits() + 1;  // 12 weight-bit steps
    case DecompositionScheme::kSpatial:
      return 1;
  }
  return 1;
}

namespace {

/// Static nibble-significance offsets of the spatial scheme's nine FP16
/// lane products: top_weight - (wi + wj) with wi, wj in {-1, 3, 7}.
constexpr std::array<int, 9> fp16_spatial_offsets() {
  constexpr int kn = fp_nibble_count(kFp16Format);
  constexpr int z = fp_pad_bits(kFp16Format);
  constexpr int top_weight = 2 * (4 * (kn - 1) - z);
  std::array<int, 9> offs{};
  int idx = 0;
  for (int i = 0; i < kn; ++i) {
    for (int j = 0; j < kn; ++j) {
      offs[static_cast<size_t>(idx++)] = top_weight - (4 * i - z) - (4 * j - z);
    }
  }
  return offs;
}

}  // namespace

int fp16_op_service_cycles(std::span<const int> product_exps,
                           const DatapathConfig& cfg) {
  const int iters = fp16_iterations_per_op(cfg.scheme);
  int max_exp = kMaskedProductExp;
  for (int e : product_exps) max_exp = std::max(max_exp, e);
  if (!cfg.multi_cycle || max_exp == kMaskedProductExp) return iters;

  const int sp = std::max(cfg.safe_precision(), 1);
  const bool spatial = cfg.scheme == DecompositionScheme::kSpatial;
  static constexpr std::array<int, 9> kSpatialOffsets = fp16_spatial_offsets();

  uint64_t occupied = 0;  // bit b set <=> band b occupied
  for (int e : product_exps) {
    if (e == kMaskedProductExp) continue;
    const int d = max_exp - e;
    if (d > cfg.software_precision) continue;
    if (spatial) {
      for (int off : kSpatialOffsets) {
        occupied |= uint64_t{1} << std::min((d + off) / sp, 63);
      }
    } else {
      occupied |= uint64_t{1} << std::min(d / sp, 63);
    }
  }
  int bands;
  if (cfg.skip_empty_bands) {
    bands = std::max(1, __builtin_popcountll(occupied));
  } else {
    bands = occupied == 0 ? 1 : 64 - __builtin_clzll(occupied);
  }
  return iters * bands;
}

}  // namespace mpipu
