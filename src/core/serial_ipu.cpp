#include "core/serial_ipu.h"

#include <algorithm>
#include <cassert>

#include "core/simd/simd.h"

namespace mpipu {

SerialIpu::SerialIpu(const SerialIpuConfig& cfg) : cfg_(cfg), acc_(cfg.accumulator) {
  assert(cfg_.n_inputs >= 1);
  assert(cfg_.adder_tree_width >= 13 || !cfg_.multi_cycle);
  assert(!cfg_.multi_cycle || cfg_.safe_precision() >= 1);
}

void SerialIpu::reset_accumulator() {
  acc_.reset();
  int_acc_ = 0;
}

int SerialIpu::fp_accumulate(std::span<const Fp16> a, std::span<const Fp16> b) {
  assert(a.size() == b.size());
  assert(static_cast<int>(a.size()) <= cfg_.n_inputs);
  const size_t n = a.size();
  constexpr FpFormat F = kFp16Format;
  constexpr int kSteps = 12;  // 11 magnitude bits + 1 pad (implicit shift)

  std::vector<Decoded> da(n), db(n);
  for (size_t k = 0; k < n; ++k) {
    da[k] = a[k].decode();
    db[k] = b[k].decode();
  }

  EhuOptions eopts;
  eopts.software_precision = cfg_.software_precision;
  eopts.safe_precision = std::max(cfg_.safe_precision(), 1);
  const EhuResult ehu = run_ehu(da, db, eopts);

  const int w = cfg_.adder_tree_width;
  const int guard = cfg_.window_guard();
  const int sp = cfg_.safe_precision();
  const bool single_cycle = !cfg_.multi_cycle;
  const int bands = single_cycle ? 1 : ehu.mc_cycles;

  // Weight magnitude padded left by one (same trick as the nibble IPU's N0
  // trailing zero): bit t of (mag << 1) carries weight 2^(t - 1).
  for (int t = 0; t < kSteps; ++t) {
    // value(step) = sum_k sm_a[k] * bit_t(mag_b[k]<<1) * sgn_b * 2^(t-1)
    //               * 2^(E_k - 2*man_bits)  aligned to max_exp.
    const int base_rescale =
        (t - 1) - 2 * F.man_bits - guard + acc_.config().frac_bits;
    for (int c = 0; c < bands; ++c) {
      int128 tree_sum = 0;
      for (size_t k = 0; k < n; ++k) {
        if (ehu.masked[k]) continue;
        if (!single_cycle && ehu.band[k] != c) continue;
        const uint32_t padded = static_cast<uint32_t>(db[k].magnitude) << 1;
        if (((padded >> t) & 1u) == 0) continue;
        const int32_t p = db[k].sign ? -da[k].signed_magnitude()
                                     : da[k].signed_magnitude();
        const int local_shift =
            single_cycle ? std::min(ehu.align[k], w) : ehu.align[k] - c * sp;
        const int net_shift = guard - local_shift;
        tree_sum += net_shift >= 0 ? shl(p, net_shift) : asr(p, -net_shift);
      }
      const int rescale = base_rescale - (single_cycle ? 0 : c * sp);
      acc_.add(rescale >= 0 ? shl(tree_sum, rescale) : asr(tree_sum, -rescale),
               ehu.max_exp);
    }
  }

  const int cycles = kSteps * bands;
  ++stats_.fp_ops;
  stats_.cycles += cycles;
  return cycles;
}

template <typename TreeInt>
int SerialIpu::run_prepared_fp16(const PreparedFp16View& a,
                                 const PreparedFp16View& b) {
  const size_t n = a.n;
  constexpr FpFormat F = kFp16Format;
  constexpr int kSteps = 12;  // 11 magnitude bits + 1 pad (implicit shift)

  EhuOptions eopts;
  eopts.software_precision = cfg_.software_precision;
  eopts.safe_precision = std::max(cfg_.safe_precision(), 1);
  run_ehu(std::span<const int32_t>(a.exp, n), std::span<const int32_t>(b.exp, n),
          eopts, ehu_);

  const int guard = cfg_.window_guard();
  const int sp = cfg_.safe_precision();
  const bool single_cycle = !cfg_.multi_cycle;
  const int bands = single_cycle ? 1 : ehu_.mc_cycles;
  sched_.build(ehu_, bands, single_cycle, guard, sp, cfg_.adder_tree_width);

  // Per-lane constants for the whole op: the padded weight magnitude whose
  // bits stream serially, and the multiplicand with the weight sign folded
  // in.  A zero weight magnitude never sets a bit, so losing the sign of a
  // signed zero is harmless.
  padded_mag_.resize(n);
  lane_p_.resize(n);
  for (size_t k = 0; k < n; ++k) {
    const int32_t smb = b.signed_mag[k];
    padded_mag_[k] = static_cast<uint32_t>(smb < 0 ? -smb : smb) << 1;
    lane_p_[k] = smb < 0 ? -a.signed_mag[k] : a.signed_mag[k];
  }

  const int frac_bits = acc_.config().frac_bits;
  for (int t = 0; t < kSteps; ++t) {
    const int base_rescale = (t - 1) - 2 * F.man_bits - guard + frac_bits;
    for (int c = 0; c < bands; ++c) {
      TreeInt tree_sum = 0;
      const int32_t* lane = sched_.order.data() + sched_.begin[static_cast<size_t>(c)];
      const int32_t* lane_end = sched_.order.data() + sched_.begin[static_cast<size_t>(c) + 1];
      for (; lane != lane_end; ++lane) {
        const auto k = static_cast<size_t>(*lane);
        if (((padded_mag_[k] >> t) & 1u) == 0) continue;
        const int s = sched_.net_shift[k];
        tree_sum += s >= 0 ? static_cast<TreeInt>(lane_p_[k]) << s
                           : static_cast<TreeInt>(lane_p_[k] >> -s);
      }
      const int rescale = base_rescale - (single_cycle ? 0 : c * sp);
      const auto tree128 = static_cast<int128>(tree_sum);
      acc_.add(rescale >= 0 ? shl(tree128, rescale) : asr(tree128, -rescale),
               ehu_.max_exp);
    }
  }

  const int cycles = kSteps * bands;
  ++stats_.fp_ops;
  stats_.cycles += cycles;
  return cycles;
}

template <bool kNarrow>
int SerialIpu::run_prepared_fp16_simd(const PreparedFp16View& a,
                                      const PreparedFp16View& b) {
  const size_t n = a.n;
  constexpr FpFormat F = kFp16Format;
  constexpr int kSteps = 12;  // 11 magnitude bits + 1 pad (implicit shift)
  const simd::KernelTable& K = simd::kernels();

  EhuOptions eopts;
  eopts.software_precision = cfg_.software_precision;
  eopts.safe_precision = std::max(cfg_.safe_precision(), 1);
  run_ehu(std::span<const int32_t>(a.exp, n), std::span<const int32_t>(b.exp, n),
          eopts, ehu_);

  const int guard = cfg_.window_guard();
  const int sp = cfg_.safe_precision();
  const bool single_cycle = !cfg_.multi_cycle;
  const int bands = single_cycle ? 1 : ehu_.mc_cycles;
  if (bands > simd::kMaxBands) return run_prepared_fp16<int64_t>(a, b);

  serve_band_.resize(n);
  up_.resize(n);
  down_.resize(n);
  K.serve_shifts_i32(ehu_.align.data(), ehu_.band.data(), n, guard, sp,
                     single_cycle ? 1 : 0, cfg_.adder_tree_width,
                     serve_band_.data(), up_.data(), down_.data());

  padded_mag_.resize(n);
  lane_p_.resize(n);
  K.serial_lanes_i32(a.signed_mag, b.signed_mag, n, padded_mag_.data(),
                     lane_p_.data());

  // The lane's net window shift is constant across all 12 bit steps, so the
  // shifted multiplicand is precomputed once (masked lanes shift by 0 and
  // are dropped by their -1 serve band in the band sums).
  if constexpr (kNarrow) {
    v32_.resize(n);
    K.shifted_lanes_i32(lane_p_.data(), up_.data(), down_.data(), n,
                        v32_.data());
  } else {
    v64_.resize(n);
    K.shifted_lanes_i64(lane_p_.data(), up_.data(), down_.data(), n,
                        v64_.data());
  }

  const int frac_bits = acc_.config().frac_bits;
  const bool fast = acc_.fast64_ok(
      kNarrow ? 31 : 62, (kSteps - 2) - 2 * F.man_bits - guard + frac_bits);
  for (int t = 0; t < kSteps; ++t) {
    int64_t sums[simd::kMaxBands] = {0};
    if constexpr (kNarrow) {
      K.serial_band_sums_i32(v32_.data(), padded_mag_.data(), t,
                             serve_band_.data(), n, bands, sums);
    } else {
      K.serial_band_sums_i64(v64_.data(), padded_mag_.data(), t,
                             serve_band_.data(), n, bands, sums);
    }
    const int base_rescale = (t - 1) - 2 * F.man_bits - guard + frac_bits;
    for (int c = 0; c < bands; ++c) {
      const int rescale = base_rescale - (single_cycle ? 0 : c * sp);
      if (fast) {
        acc_.add_tree64(sums[c], rescale, ehu_.max_exp);
        continue;
      }
      const auto tree128 = static_cast<int128>(sums[c]);
      acc_.add(rescale >= 0 ? shl(tree128, rescale) : asr(tree128, -rescale),
               ehu_.max_exp);
    }
  }

  const int cycles = kSteps * bands;
  ++stats_.fp_ops;
  stats_.cycles += cycles;
  return cycles;
}

int SerialIpu::run_prepared_fp16_fused(const PreparedFp16View& a,
                                       const PreparedFp16View& b) {
  const size_t n = a.n;
  constexpr FpFormat F = kFp16Format;
  constexpr int kSteps = simd::kSerialSteps;
  const simd::KernelTable& K = simd::kernels();

  const int guard = cfg_.window_guard();
  const int sp = cfg_.safe_precision();

  falign_.resize(simd::kFusedLanes);
  fband_.resize(simd::kFusedLanes);
  int32_t max_exp, max_band, n_masked, max_align;
  uint32_t occ;
  if (!K.ehu_fused_i32(a.exp, b.exp, n, cfg_.software_precision,
                       std::max(sp, 1), falign_.data(), fband_.data(), &max_exp,
                       &occ, &max_band, &n_masked, &max_align)) {
    return run_prepared_fp16<int64_t>(a, b);
  }
  const int bands = std::max(max_band, 0) + 1;
  if (bands > simd::kMaxBands) return run_prepared_fp16<int64_t>(a, b);

  // Serve planes padded through kFusedLanes (band -1, values 0) so the
  // fused kernel can run whole 16-lane registers.
  for (size_t k = n; k < simd::kFusedLanes; ++k) {
    falign_[k] = 0;
    fband_[k] = -1;
  }
  serve_band_.resize(simd::kFusedLanes);
  up_.resize(simd::kFusedLanes);
  down_.resize(simd::kFusedLanes);
  K.serve_shifts_i32(falign_.data(), fband_.data(), simd::kFusedLanes, guard,
                     sp, 0, cfg_.adder_tree_width, serve_band_.data(),
                     up_.data(), down_.data());

  padded_mag_.resize(simd::kFusedLanes);
  lane_p_.resize(simd::kFusedLanes);
  K.serial_lanes_i32(a.signed_mag, b.signed_mag, n, padded_mag_.data(),
                     lane_p_.data());
  for (size_t k = n; k < simd::kFusedLanes; ++k) {
    padded_mag_[k] = 0;
    lane_p_[k] = 0;
  }
  v32_.resize(simd::kFusedLanes);
  K.shifted_lanes_i32(lane_p_.data(), up_.data(), down_.data(),
                      simd::kFusedLanes, v32_.data());

  int64_t sums[simd::kMaxBands * kSteps];
  K.serial_fused_i16(v32_.data(), padded_mag_.data(), serve_band_.data(), n,
                     bands, sums);

  const int frac_bits = acc_.config().frac_bits;
  const bool fast = acc_.fast64_ok(
      31, (kSteps - 2) - 2 * F.man_bits - guard + frac_bits);
  for (int t = 0; t < kSteps; ++t) {
    const int base_rescale = (t - 1) - 2 * F.man_bits - guard + frac_bits;
    for (int c = 0; c < bands; ++c) {
      const int rescale = base_rescale - c * sp;
      const int64_t tree = sums[static_cast<size_t>(c) * kSteps + t];
      if (fast) {
        acc_.add_tree64(tree, rescale, max_exp);
        continue;
      }
      const auto tree128 = static_cast<int128>(tree);
      acc_.add(rescale >= 0 ? shl(tree128, rescale) : asr(tree128, -rescale),
               max_exp);
    }
  }

  const int cycles = kSteps * bands;
  ++stats_.fp_ops;
  stats_.cycles += cycles;
  return cycles;
}

int SerialIpu::fp16_accumulate_prepared(const PreparedFp16View& a,
                                        const PreparedFp16View& b) {
  assert(a.n == b.n);
  assert(static_cast<int>(a.n) <= cfg_.n_inputs);
  // 12-bit multiplicands shifted up to window_guard and summed over n lanes.
  const int tree_bits = std::max(cfg_.window_guard(), 0) + 12 +
                        ceil_log2(std::max(cfg_.n_inputs, 1)) + 1;
  if (simd::active_backend() != simd::Backend::kScalar) {
    // Whole-op fused kernel: MC mode makes every window shift an up-shift
    // of at most guard, and guard <= 4 keeps |p << guard| <= 2047 << 4 in
    // int16; 16 lanes of those stay far inside int32.
    const int guard = cfg_.window_guard();
    if (cfg_.multi_cycle && guard >= 0 && guard <= 4 && a.n >= 1 &&
        a.n <= simd::kFusedLanes) {
      return run_prepared_fp16_fused(a, b);
    }
    if (tree_bits <= 31) return run_prepared_fp16_simd<true>(a, b);
    if (tree_bits <= 62) return run_prepared_fp16_simd<false>(a, b);
  }
  return tree_bits <= 62 ? run_prepared_fp16<int64_t>(a, b)
                         : run_prepared_fp16<int128>(a, b);
}

int SerialIpu::int_accumulate(std::span<const int32_t> a, std::span<const int32_t> b,
                              int a_bits, int b_bits) {
  assert(a.size() == b.size());
  assert(a_bits <= 12 && b_bits <= 32);
  static_cast<void>(a_bits);  // only the asserts consume it
  const size_t n = a.size();
  for (size_t k = 0; k < n; ++k) {
    assert(fits_signed(a[k], a_bits));
    assert(fits_signed(b[k], b_bits));
  }
  // Serial over b's two's-complement bits; the top bit carries negative
  // weight.
  const bool use_simd = simd::active_backend() != simd::Backend::kScalar;
  const simd::KernelTable& K = simd::kernels();
  for (int t = 0; t < b_bits; ++t) {
    int64_t tree_sum;
    if (use_simd) {
      tree_sum = K.bit_masked_sum_i32(a.data(), b.data(), t, n);
      if (t == b_bits - 1) tree_sum = -tree_sum;
    } else {
      tree_sum = 0;
      for (size_t k = 0; k < n; ++k) {
        if (((b[k] >> t) & 1) == 0) continue;
        tree_sum += t == b_bits - 1 ? -int64_t{a[k]} : int64_t{a[k]};
      }
    }
    int_acc_ += tree_sum << t;
  }
  ++stats_.int_ops;
  stats_.cycles += b_bits;
  return b_bits;
}

}  // namespace mpipu
