// Internal declarations of the per-backend kernel tables (src/core/simd).
// The scalar table always exists; the vector tables return nullptr when
// their ISA is not compiled into this build (the MPIPU_NATIVE gate).
// tests/test_simd_kernels.cpp includes this header to pin each vector
// backend against the scalar reference kernel-by-kernel.
#pragma once

#include "core/simd/simd.h"

namespace mpipu::simd {

const KernelTable* scalar_kernel_table();  // never null
const KernelTable* avx2_kernel_table();    // null unless __AVX2__
const KernelTable* neon_kernel_table();    // null unless AArch64 NEON

}  // namespace mpipu::simd
