// Portable SIMD kernels for the prepared-operand serve loops.
//
// The bit-accurate scheme models (core/ipu.cpp, core/serial_ipu.cpp,
// core/spatial_ipu.h) keep their scalar serve loops verbatim as the oracle;
// this layer provides drop-in vector kernels that compute the exact same
// integer sums, shifts and band assignments -- byte-identical outputs,
// stats and cycle counts -- just faster.  Three backends:
//
//   * scalar -- plain-C++ reference implementations, always available; also
//     the oracle the equality tests (tests/test_simd_kernels.cpp) pin the
//     vector backends against.
//   * avx2   -- x86-64, compiled only when the build enables -march=native
//     (the MPIPU_NATIVE CMake gate) on an AVX2-capable host.
//   * neon   -- AArch64, compiled under the same gate on ARM hosts.
//
// Backend selection happens once at startup (best compiled-in backend) and
// can be overridden by the MPIPU_KERNEL environment variable
// ("scalar"/"avx2"/"neon"/"auto") or programmatically via force_backend()
// (the hook the differential tests use to run both backends in one
// process).  When the active backend is kScalar the schemes take their
// scalar oracle paths and this layer is never consulted for values.
//
// PADDING / ALIGNMENT CONTRACT -- what core/prepared.h guarantees:
//
//   * prepared nibble/digit data is plane-major (one contiguous plane per
//     nibble lane), with plane strides rounded up to kPreparedPlanePad (32)
//     elements, so plane starts sit on 32-byte boundaries relative to the
//     buffer base;
//   * the pad tail [size, stride) of every plane is zero-filled;
//   * views may window into the middle of a tensor (conv chunking), in
//     which case the bytes past view.n are LIVE neighbor data, not pad.
//
// Kernels therefore process whole vectors only below the view length and
// finish with a scalar tail -- they never read past `n` on caller-provided
// planes, so the zero pads are a layout/alignment guarantee, not a
// correctness dependency.
//
// FUSED WHOLE-OP KERNELS -- the serve loops issue one kernel call per op
// where possible (ops are small -- typically n_inputs <= 16 lanes -- so
// per-call fixed costs dominate the emulation wall clock).  The fused
// kernels additionally require their integer inputs to fit 16-bit lanes
// (the drivers check the config-derived bounds before dispatching) and,
// for the band-sum kernels, that the driver-owned serve planes are padded
// to kFusedLanes entries (band pad -1, shift/value pads 0).  Operand
// planes are still never read past n: the vector backends stage short
// views through zero-filled local buffers.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mpipu::simd {

/// Serve-band cap for the vector band-sum kernels: one vector accumulator
/// per band, so ops needing more bands than this fall back to the scalar
/// oracle (bit-identical either way; alignment spreads that wide are rare).
inline constexpr int kMaxBands = 8;

/// Lane capacity of the fused whole-op band-sum kernels: one op fits one
/// 16-bit-lane vector register.  Ops with more lanes use the per-stage
/// kernels instead (bit-identical either way).
inline constexpr size_t kFusedLanes = 16;

/// Bit steps of the serial scheme (11 magnitude bits + 1 pad); the fused
/// serial kernel hard-codes this many per-step sums.
inline constexpr int kSerialSteps = 12;

enum class Backend { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// Function-pointer table of every kernel, one instance per backend.  The
/// scheme hot loops fetch the active table once per op; entries a vector
/// backend does not implement point at the scalar reference functions.
struct KernelTable {
  // --- EHU alignment stages (core/ehu.cpp, prepared exponent planes) ---
  /// sum[k] = a[k] + b[k]; *mx / *mn = max / min over k.  n >= 1.
  void (*sum_minmax_i32)(const int32_t* a, const int32_t* b, int32_t* sum,
                         size_t n, int32_t* mx, int32_t* mn);
  /// out[k] = c - x[k].
  void (*rsub_i32)(int32_t c, const int32_t* x, int32_t* out, size_t n);
  /// Stages 4-5 per lane: masked[k] = align[k] > soft;
  /// band[k] = masked ? -1 : align[k] / sp.
  /// Exact for 0 <= align[k] < 65536 and 1 <= sp < 65536 (caller checks).
  void (*mask_and_band_i32)(const int32_t* align, size_t n, int32_t soft,
                            int32_t sp, int32_t* band, uint8_t* masked);

  // --- serve-loop constant planes (temporal + serial schemes) ---
  /// serve_band[k] = -1 for masked lanes (band[k] < 0), else 0 in
  /// single-cycle mode or band[k] in MC mode; up/down[k] = the split net
  /// window shift max(net, 0) / max(-net, 0), zero on masked lanes.
  void (*serve_shifts_i32)(const int32_t* align, const int32_t* band, size_t n,
                           int32_t guard, int32_t sp, int single_cycle,
                           int32_t window, int32_t* serve_band, int32_t* up,
                           int32_t* down);

  // --- temporal scheme: per-band adder-tree sums of one nibble iteration ---
  /// sums[c] += sum over k with band[k]==c of
  ///            ((int32)pa[k]*pb[k] >> down[k]) << up[k].
  /// _i32: every partial sum fits int32 (tree_bits <= 31).  bands <= kMaxBands.
  void (*nibble_band_sums_i32)(const int8_t* pa, const int8_t* pb,
                               const int32_t* band, const int32_t* up,
                               const int32_t* down, size_t n, int bands,
                               int64_t* sums);
  void (*nibble_band_sums_i64)(const int8_t* pa, const int8_t* pb,
                               const int32_t* band, const int32_t* up,
                               const int32_t* down, size_t n, int bands,
                               int64_t* sums);

  // --- serial scheme ---
  /// mag[k] = |b_sm[k]| << 1 (the padded weight magnitude);
  /// lane_p[k] = b_sm[k] < 0 ? -a_sm[k] : a_sm[k].
  void (*serial_lanes_i32)(const int32_t* a_sm, const int32_t* b_sm, size_t n,
                           uint32_t* mag, int32_t* lane_p);
  /// v[k] = (p[k] >> down[k]) << up[k], precomputed once per op.
  void (*shifted_lanes_i32)(const int32_t* p, const int32_t* up,
                            const int32_t* down, size_t n, int32_t* v);
  void (*shifted_lanes_i64)(const int32_t* p, const int32_t* up,
                            const int32_t* down, size_t n, int64_t* v);
  /// sums[c] += sum over k with band[k]==c and bit t of mag[k] set of v[k].
  void (*serial_band_sums_i32)(const int32_t* v, const uint32_t* mag, int t,
                               const int32_t* band, size_t n, int bands,
                               int64_t* sums);
  void (*serial_band_sums_i64)(const int64_t* v, const uint32_t* mag, int t,
                               const int32_t* band, size_t n, int bands,
                               int64_t* sums);

  // --- spatial scheme ---
  /// Diagonal pre-sums of the 3x3 FP16 nibble products:
  /// diag[s*d_stride + k] = sum over i+j==s of a_i[k] * b_j[k], s in [0, 5).
  /// |d| <= 3*225 fits int16.  a/b are plane-major nibble bases with the
  /// given strides.
  void (*fp16_diag_products)(const int8_t* a, size_t a_stride, const int8_t* b,
                             size_t b_stride, size_t n, int16_t* diag,
                             size_t d_stride);
  /// All `planes` per-diagonal band/up planes in one call (MC mode), plane
  /// s using offs_s = offs0 - 4*s: masked lanes (ehu_band[k] < 0) get band
  /// -1 / up 0; else shift = align[k] + offs_s, band = shift / sp,
  /// up = guard - (shift - band*sp).  Exact for shift < 65536.  Also
  /// returns the wrap-up reductions over unmasked lane products:
  /// *max_band = max band (-1 when every lane is masked) and *occupancy =
  /// OR of 1u << min(band, 31).
  void (*diag_bands_i32)(const int32_t* align, const int32_t* ehu_band,
                         size_t n, int32_t offs0, int planes, int32_t sp,
                         int32_t guard, size_t stride, int32_t* band,
                         int32_t* up, int32_t* max_band, uint32_t* occupancy);
  /// Whole-op spatial serve sums: for every plane s in [0, planes),
  /// sums[c] accumulates sum over k with band_s[k]==c of
  /// (int32)d_s[k] << up_s[k]; plane s of d/band/up starts at s*stride.
  /// SET semantics: writes sums[0, bands) (callers skip the pre-zeroing).
  void (*diag_band_sums_planes_i32)(const int16_t* d, const int32_t* band,
                                    const int32_t* up, size_t stride,
                                    int planes, size_t n, int bands,
                                    int64_t* sums);
  void (*diag_band_sums_planes_i64)(const int16_t* d, const int32_t* band,
                                    const int32_t* up, size_t stride,
                                    int planes, size_t n, int bands,
                                    int64_t* sums);

  // --- fused whole-op kernels (see the header comment) ---
  /// Fused EHU stages 1-5 on prepared exponent planes, one call per op:
  /// align[k] = mx - (ea[k] + eb[k]) with mx = max product exponent;
  /// band[k] = -1 where align[k] > soft, else align[k] / sp.  Also returns
  /// every wrap-up reduction the serve drivers need: *max_exp = mx,
  /// *occupancy = OR over unmasked lanes of 1u << min(band, 31),
  /// *max_band = max unmasked band (-1 when all lanes are masked),
  /// *n_masked = masked-lane count, *max_align = max unmasked alignment
  /// (INT32_MIN when all lanes are masked).  Returns false -- outputs
  /// unspecified -- when soft >= 2^16 or mx - mn >= 2^16 (the magic-divide
  /// bound); callers then fall back to the scalar oracle.  n >= 1.
  bool (*ehu_fused_i32)(const int32_t* ea, const int32_t* eb, size_t n,
                        int32_t soft, int32_t sp, int32_t* align,
                        int32_t* band, int32_t* max_exp, uint32_t* occupancy,
                        int32_t* max_band, int32_t* n_masked,
                        int32_t* max_align);
  /// All nine temporal FP16 nibble iterations of one op in a single call:
  /// sums[(i*3 + j)*kMaxBands + c] = sum over k with band[k]==c of
  /// ((int32)a_i[k] * b_j[k]) << up[k], and bit (i*3 + j) of *nz is set
  /// when any lane with band[k] >= 0 has a_i[k] != 0 && b_j[k] != 0 (the
  /// skip-zero-iteration predicate).  SET semantics on all kMaxBands sums
  /// slots per iteration (slots at c >= bands are zeroed).  Preconditions
  /// (the temporal driver checks): MC serve
  /// shifts (every down shift is zero), 0 <= up[k] <= 7 so each shifted
  /// product fits int16 (|a*b| <= 225, 225 << 7 < 2^15), n <= kFusedLanes,
  /// bands <= kMaxBands, band/up readable and padded through kFusedLanes.
  void (*nibble_fused3x3_i16)(const int8_t* a, size_t a_stride,
                              const int8_t* b, size_t b_stride,
                              const int32_t* band, const int32_t* up, size_t n,
                              int bands, int64_t* sums, uint32_t* nz);
  /// All kSerialSteps serial bit-steps of one op in a single call:
  /// sums[c*kSerialSteps + t] = sum over k with band[k]==c and bit t of
  /// mag[k] set of v[k].  SET semantics for c < bands.  Preconditions:
  /// |v[k]| < 2^15 (the driver checks guard <= 4: |v| <= 2047 << 4),
  /// mag[k] < 2^13, n <= kFusedLanes, bands <= kMaxBands, v/mag/band
  /// readable and padded through kFusedLanes (v/mag pads 0, band pads -1).
  void (*serial_fused_i16)(const int32_t* v, const uint32_t* mag,
                           const int32_t* band, size_t n, int bands,
                           int64_t* sums);

  // --- INT modes ---
  /// Exact dot product of two int8 digit planes (|a*b| <= 225 per lane).
  int64_t (*dot_i8)(const int8_t* a, const int8_t* b, size_t n);
  /// sum of a[k] over lanes whose bit t of b[k] is set; |a[k]| < 2^12.
  int64_t (*bit_masked_sum_i32)(const int32_t* a, const int32_t* b, int t,
                                size_t n);
};

/// The backend all scheme hot loops currently dispatch on.
Backend active_backend();

/// Kernel table of the active backend (kernels_for(active_backend())).
const KernelTable& kernels();

/// Table for a specific backend; nullptr when not compiled into this build.
const KernelTable* kernels_for(Backend b);

/// True when `b`'s kernels are compiled into this binary.
bool backend_compiled(Backend b);

/// Force the active backend (tests / debugging).  Returns false -- and
/// leaves the selection unchanged -- when `b` is not compiled in.
bool force_backend(Backend b);

/// Reset to the startup selection (best compiled backend, unless the
/// MPIPU_KERNEL environment variable pinned one).
void reset_backend();

const char* backend_name(Backend b);
/// Name of the active backend ("scalar" / "avx2" / "neon").
const char* backend_name();

}  // namespace mpipu::simd
