// AVX2 implementations of the SIMD kernel set (see simd.h for contracts).
//
// Compiled only when the build targets an AVX2-capable host (the
// MPIPU_NATIVE CMake gate passes -march=native); otherwise this TU is empty
// and avx2_kernel_table() reports the backend as unavailable.
//
// Bit-identity notes:
//   * every kernel processes floor(n / V) whole vectors and finishes with
//     the scalar reference loop -- no reads past n on caller planes;
//   * integer band sums are order-independent, so accumulating 8 lanes in
//     parallel and horizontally reducing at the end equals the scalar
//     left-to-right sum exactly;
//   * masked lanes carry band == -1 (never equal to a served band) and
//     up == down == 0 (shift counts stay in range), so their lane values
//     are computed and then discarded by the band mask;
//   * the _i32 band-sum kernels rely on the callers' tree-bits bound
//     (tree_bits <= 31): every partial sum of shifted products fits int32;
//   * band = align / sp uses the magic-multiply m = ceil(2^32 / sp):
//     floor(x * m / 2^32) == floor(x / sp) exactly for all 0 <= x < 2^16,
//     2 <= sp < 2^16 (sp == 1 short-circuits to a copy).
#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cstring>

#include "core/simd/kernels.h"

namespace mpipu::simd {
namespace {

inline int32_t hsum8_i32(__m256i v) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

inline int64_t hsum4_i64(__m256i v) {
  const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(v),
                                  _mm256_extracti128_si256(v, 1));
  return _mm_cvtsi128_si64(s) +
         _mm_cvtsi128_si64(_mm_unpackhi_epi64(s, s));
}

inline int32_t hmax8_i32(__m256i v) {
  __m128i s = _mm_max_epi32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  s = _mm_max_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_max_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

inline int32_t hmin8_i32(__m256i v) {
  __m128i s = _mm_min_epi32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  s = _mm_min_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_min_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

inline int32_t hor8_i32(__m256i v) {
  __m128i s = _mm_or_si128(_mm256_castsi256_si128(v),
                           _mm256_extracti128_si256(v, 1));
  s = _mm_or_si128(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_or_si128(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

/// Packs two 8-lane i32 vectors (every value fits int16) into one 16-lane
/// i16 vector in source order: lanes 0-7 from `lo`, 8-15 from `hi`.
inline __m256i pack32_16(__m256i lo, __m256i hi) {
  return _mm256_permute4x64_epi64(_mm256_packs_epi32(lo, hi), 0xD8);
}

/// Transposed reduction of four 8-lane i32 accumulators:
/// returns [hsum(r0), hsum(r1), hsum(r2), hsum(r3)].
inline __m128i red4_i32(__m256i r0, __m256i r1, __m256i r2, __m256i r3) {
  const __m256i h01 = _mm256_hadd_epi32(r0, r1);
  const __m256i h23 = _mm256_hadd_epi32(r2, r3);
  const __m256i h = _mm256_hadd_epi32(h01, h23);
  return _mm_add_epi32(_mm256_castsi256_si128(h),
                       _mm256_extracti128_si256(h, 1));
}

/// floor(x / d) for 8 unsigned lanes < 2^16, 2 <= d < 2^16, via the magic
/// multiplier m = ceil(2^32 / d).
inline __m256i divq_u32(__m256i x, __m256i m) {
  const __m256i pe = _mm256_mul_epu32(x, m);
  const __m256i po = _mm256_mul_epu32(_mm256_srli_epi64(x, 32), m);
  const __m256i hi_e = _mm256_srli_epi64(pe, 32);
  const __m256i hi_o = _mm256_and_si256(
      po, _mm256_set1_epi64x(static_cast<long long>(0xFFFFFFFF00000000ULL)));
  return _mm256_or_si256(hi_e, hi_o);
}

inline uint32_t magic_for(int32_t d) {
  return static_cast<uint32_t>(((uint64_t{1} << 32) + static_cast<uint64_t>(d) -
                                1) /
                               static_cast<uint64_t>(d));
}

}  // namespace

namespace avx2 {

void sum_minmax_i32(const int32_t* a, const int32_t* b, int32_t* sum, size_t n,
                    int32_t* mx, int32_t* mn) {
  size_t k = 0;
  __m256i vmx = _mm256_set1_epi32(INT32_MIN);
  __m256i vmn = _mm256_set1_epi32(INT32_MAX);
  for (; k + 8 <= n; k += 8) {
    const __m256i s = _mm256_add_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + k)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + k)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(sum + k), s);
    vmx = _mm256_max_epi32(vmx, s);
    vmn = _mm256_min_epi32(vmn, s);
  }
  int32_t smx = hmax8_i32(vmx), smn = hmin8_i32(vmn);
  for (; k < n; ++k) {
    const int32_t s = a[k] + b[k];
    sum[k] = s;
    smx = std::max(smx, s);
    smn = std::min(smn, s);
  }
  *mx = smx;
  *mn = smn;
}

void rsub_i32(int32_t c, const int32_t* x, int32_t* out, size_t n) {
  const __m256i vc = _mm256_set1_epi32(c);
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + k),
        _mm256_sub_epi32(vc, _mm256_loadu_si256(
                                 reinterpret_cast<const __m256i*>(x + k))));
  }
  for (; k < n; ++k) out[k] = c - x[k];
}

void mask_and_band_i32(const int32_t* align, size_t n, int32_t soft,
                       int32_t sp, int32_t* band, uint8_t* masked) {
  const __m256i vsoft = _mm256_set1_epi32(soft);
  const __m256i neg1 = _mm256_set1_epi32(-1);
  const __m256i vm =
      sp >= 2 ? _mm256_set1_epi32(static_cast<int32_t>(magic_for(sp)))
              : _mm256_setzero_si256();
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256i al =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(align + k));
    const __m256i msk = _mm256_cmpgt_epi32(al, vsoft);
    const __m256i q = sp >= 2 ? divq_u32(al, vm) : al;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(band + k),
                        _mm256_blendv_epi8(q, neg1, msk));
    const int bits = _mm256_movemask_ps(_mm256_castsi256_ps(msk));
    for (int t = 0; t < 8; ++t) masked[k + static_cast<size_t>(t)] = (bits >> t) & 1;
  }
  for (; k < n; ++k) {
    const bool m = align[k] > soft;
    masked[k] = m ? 1 : 0;
    band[k] = m ? -1 : align[k] / sp;
  }
}

void serve_shifts_i32(const int32_t* align, const int32_t* band, size_t n,
                      int32_t guard, int32_t sp, int single_cycle,
                      int32_t window, int32_t* serve_band, int32_t* up,
                      int32_t* down) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i neg1 = _mm256_set1_epi32(-1);
  const __m256i vguard = _mm256_set1_epi32(guard);
  const __m256i vsp = _mm256_set1_epi32(sp);
  const __m256i vwin = _mm256_set1_epi32(window);
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256i al =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(align + k));
    const __m256i bd =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(band + k));
    const __m256i msk = _mm256_cmpgt_epi32(zero, bd);  // masked: band < 0
    __m256i sb, local;
    if (single_cycle) {
      sb = zero;
      local = _mm256_min_epi32(al, vwin);
    } else {
      sb = bd;
      local = _mm256_sub_epi32(al, _mm256_mullo_epi32(bd, vsp));
    }
    const __m256i net = _mm256_sub_epi32(vguard, local);
    __m256i upv = _mm256_max_epi32(net, zero);
    __m256i dnv = _mm256_max_epi32(_mm256_sub_epi32(zero, net), zero);
    sb = _mm256_blendv_epi8(sb, neg1, msk);
    upv = _mm256_andnot_si256(msk, upv);
    dnv = _mm256_andnot_si256(msk, dnv);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(serve_band + k), sb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(up + k), upv);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(down + k), dnv);
  }
  for (; k < n; ++k) {
    if (band[k] < 0) {
      serve_band[k] = -1;
      up[k] = 0;
      down[k] = 0;
      continue;
    }
    const int32_t local =
        single_cycle ? std::min(align[k], window) : align[k] - band[k] * sp;
    const int32_t net = guard - local;
    serve_band[k] = single_cycle ? 0 : band[k];
    up[k] = net >= 0 ? net : 0;
    down[k] = net >= 0 ? 0 : -net;
  }
}

void nibble_band_sums_i32(const int8_t* pa, const int8_t* pb,
                          const int32_t* band, const int32_t* up,
                          const int32_t* down, size_t n, int bands,
                          int64_t* sums) {
  __m256i acc[kMaxBands];
  for (int c = 0; c < bands; ++c) acc[c] = _mm256_setzero_si256();
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256i a = _mm256_cvtepi8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(pa + k)));
    const __m256i b = _mm256_cvtepi8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(pb + k)));
    __m256i p = _mm256_mullo_epi32(a, b);
    p = _mm256_srav_epi32(
        p, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(down + k)));
    p = _mm256_sllv_epi32(
        p, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(up + k)));
    const __m256i bd =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(band + k));
    for (int c = 0; c < bands; ++c) {
      const __m256i m = _mm256_cmpeq_epi32(bd, _mm256_set1_epi32(c));
      acc[c] = _mm256_add_epi32(acc[c], _mm256_and_si256(p, m));
    }
  }
  for (int c = 0; c < bands; ++c) sums[c] += hsum8_i32(acc[c]);
  for (; k < n; ++k) {
    if (band[k] < 0) continue;
    int32_t p = static_cast<int32_t>(pa[k]) * static_cast<int32_t>(pb[k]);
    p = (p >> down[k]) << up[k];
    sums[band[k]] += p;
  }
}

void nibble_band_sums_i64(const int8_t* pa, const int8_t* pb,
                          const int32_t* band, const int32_t* up,
                          const int32_t* down, size_t n, int bands,
                          int64_t* sums) {
  __m256i acc[kMaxBands];
  for (int c = 0; c < bands; ++c) acc[c] = _mm256_setzero_si256();
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256i a = _mm256_cvtepi8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(pa + k)));
    const __m256i b = _mm256_cvtepi8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(pb + k)));
    const __m256i p32 = _mm256_srav_epi32(
        _mm256_mullo_epi32(a, b),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(down + k)));
    const __m256i up32 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(up + k));
    const __m256i bd =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(band + k));
    const __m256i p0 = _mm256_sllv_epi64(
        _mm256_cvtepi32_epi64(_mm256_castsi256_si128(p32)),
        _mm256_cvtepi32_epi64(_mm256_castsi256_si128(up32)));
    const __m256i p1 = _mm256_sllv_epi64(
        _mm256_cvtepi32_epi64(_mm256_extracti128_si256(p32, 1)),
        _mm256_cvtepi32_epi64(_mm256_extracti128_si256(up32, 1)));
    for (int c = 0; c < bands; ++c) {
      const __m256i m = _mm256_cmpeq_epi32(bd, _mm256_set1_epi32(c));
      const __m256i m0 = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(m));
      const __m256i m1 = _mm256_cvtepi32_epi64(_mm256_extracti128_si256(m, 1));
      acc[c] = _mm256_add_epi64(acc[c], _mm256_and_si256(p0, m0));
      acc[c] = _mm256_add_epi64(acc[c], _mm256_and_si256(p1, m1));
    }
  }
  for (int c = 0; c < bands; ++c) sums[c] += hsum4_i64(acc[c]);
  for (; k < n; ++k) {
    if (band[k] < 0) continue;
    const int32_t p = static_cast<int32_t>(pa[k]) * static_cast<int32_t>(pb[k]);
    sums[band[k]] += static_cast<int64_t>(p >> down[k]) << up[k];
  }
}

void serial_lanes_i32(const int32_t* a_sm, const int32_t* b_sm, size_t n,
                      uint32_t* mag, int32_t* lane_p) {
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b_sm + k));
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a_sm + k));
    const __m256i sgn = _mm256_srai_epi32(b, 31);  // -1 where b < 0
    const __m256i absb =
        _mm256_sub_epi32(_mm256_xor_si256(b, sgn), sgn);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(mag + k),
                        _mm256_slli_epi32(absb, 1));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(lane_p + k),
        _mm256_sub_epi32(_mm256_xor_si256(a, sgn), sgn));
  }
  for (; k < n; ++k) {
    const int32_t smb = b_sm[k];
    mag[k] = static_cast<uint32_t>(smb < 0 ? -smb : smb) << 1;
    lane_p[k] = smb < 0 ? -a_sm[k] : a_sm[k];
  }
}

void shifted_lanes_i32(const int32_t* p, const int32_t* up, const int32_t* down,
                       size_t n, int32_t* v) {
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + k));
    x = _mm256_srav_epi32(
        x, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(down + k)));
    x = _mm256_sllv_epi32(
        x, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(up + k)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(v + k), x);
  }
  for (; k < n; ++k) v[k] = (p[k] >> down[k]) << up[k];
}

void shifted_lanes_i64(const int32_t* p, const int32_t* up, const int32_t* down,
                       size_t n, int64_t* v) {
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m128i x32 = _mm_srav_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + k)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(down + k)));
    const __m256i x = _mm256_sllv_epi64(
        _mm256_cvtepi32_epi64(x32),
        _mm256_cvtepi32_epi64(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(up + k))));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(v + k), x);
  }
  for (; k < n; ++k) v[k] = static_cast<int64_t>(p[k] >> down[k]) << up[k];
}

void serial_band_sums_i32(const int32_t* v, const uint32_t* mag, int t,
                          const int32_t* band, size_t n, int bands,
                          int64_t* sums) {
  __m256i acc[kMaxBands];
  for (int c = 0; c < bands; ++c) acc[c] = _mm256_setzero_si256();
  const __m128i lsh = _mm_cvtsi32_si128(31 - t);
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256i m =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mag + k));
    // -1 where bit t of mag is set: (mag << (31 - t)) >> 31 arithmetically.
    const __m256i bit =
        _mm256_srai_epi32(_mm256_sll_epi32(m, lsh), 31);
    const __m256i p = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + k)), bit);
    const __m256i bd =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(band + k));
    for (int c = 0; c < bands; ++c) {
      const __m256i bm = _mm256_cmpeq_epi32(bd, _mm256_set1_epi32(c));
      acc[c] = _mm256_add_epi32(acc[c], _mm256_and_si256(p, bm));
    }
  }
  for (int c = 0; c < bands; ++c) sums[c] += hsum8_i32(acc[c]);
  for (; k < n; ++k) {
    if (band[k] < 0) continue;
    if (((mag[k] >> t) & 1u) == 0) continue;
    sums[band[k]] += v[k];
  }
}

void serial_band_sums_i64(const int64_t* v, const uint32_t* mag, int t,
                          const int32_t* band, size_t n, int bands,
                          int64_t* sums) {
  __m256i acc[kMaxBands];
  for (int c = 0; c < bands; ++c) acc[c] = _mm256_setzero_si256();
  const __m128i lsh = _mm_cvtsi32_si128(31 - t);
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m128i m =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(mag + k));
    const __m128i bit = _mm_srai_epi32(_mm_sll_epi32(m, lsh), 31);
    const __m128i bd =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(band + k));
    const __m256i p = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + k)),
        _mm256_cvtepi32_epi64(bit));
    for (int c = 0; c < bands; ++c) {
      const __m128i bm = _mm_cmpeq_epi32(bd, _mm_set1_epi32(c));
      acc[c] = _mm256_add_epi64(
          acc[c], _mm256_and_si256(p, _mm256_cvtepi32_epi64(bm)));
    }
  }
  for (int c = 0; c < bands; ++c) sums[c] += hsum4_i64(acc[c]);
  for (; k < n; ++k) {
    if (band[k] < 0) continue;
    if (((mag[k] >> t) & 1u) == 0) continue;
    sums[band[k]] += v[k];
  }
}

void fp16_diag_products(const int8_t* a, size_t a_stride, const int8_t* b,
                        size_t b_stride, size_t n, int16_t* diag,
                        size_t d_stride) {
  size_t k = 0;
  for (; k + 16 <= n; k += 16) {
    const __m256i a0 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + k)));
    const __m256i a1 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + a_stride + k)));
    const __m256i a2 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
        reinterpret_cast<const __m128i*>(a + 2 * a_stride + k)));
    const __m256i b0 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + k)));
    const __m256i b1 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + b_stride + k)));
    const __m256i b2 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
        reinterpret_cast<const __m128i*>(b + 2 * b_stride + k)));
    const __m256i d0 = _mm256_mullo_epi16(a0, b0);
    const __m256i d1 = _mm256_add_epi16(_mm256_mullo_epi16(a0, b1),
                                        _mm256_mullo_epi16(a1, b0));
    const __m256i d2 = _mm256_add_epi16(
        _mm256_add_epi16(_mm256_mullo_epi16(a0, b2), _mm256_mullo_epi16(a1, b1)),
        _mm256_mullo_epi16(a2, b0));
    const __m256i d3 = _mm256_add_epi16(_mm256_mullo_epi16(a1, b2),
                                        _mm256_mullo_epi16(a2, b1));
    const __m256i d4 = _mm256_mullo_epi16(a2, b2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(diag + k), d0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(diag + d_stride + k), d1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(diag + 2 * d_stride + k), d2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(diag + 3 * d_stride + k), d3);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(diag + 4 * d_stride + k), d4);
  }
  if (k < n) {
    const int8_t* a0 = a;
    const int8_t* a1 = a + a_stride;
    const int8_t* a2 = a + 2 * a_stride;
    const int8_t* b0 = b;
    const int8_t* b1 = b + b_stride;
    const int8_t* b2 = b + 2 * b_stride;
    for (; k < n; ++k) {
      const int16_t x0 = a0[k], x1 = a1[k], x2 = a2[k];
      const int16_t y0 = b0[k], y1 = b1[k], y2 = b2[k];
      diag[0 * d_stride + k] = static_cast<int16_t>(x0 * y0);
      diag[1 * d_stride + k] = static_cast<int16_t>(x0 * y1 + x1 * y0);
      diag[2 * d_stride + k] =
          static_cast<int16_t>(x0 * y2 + x1 * y1 + x2 * y0);
      diag[3 * d_stride + k] = static_cast<int16_t>(x1 * y2 + x2 * y1);
      diag[4 * d_stride + k] = static_cast<int16_t>(x2 * y2);
    }
  }
}

void diag_bands_i32(const int32_t* align, const int32_t* ehu_band, size_t n,
                    int32_t offs0, int planes, int32_t sp, int32_t guard,
                    size_t stride, int32_t* band, int32_t* up,
                    int32_t* max_band, uint32_t* occupancy) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i neg1 = _mm256_set1_epi32(-1);
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i v31 = _mm256_set1_epi32(31);
  const __m256i vsp = _mm256_set1_epi32(sp);
  const __m256i vguard = _mm256_set1_epi32(guard);
  const __m256i vm =
      sp >= 2 ? _mm256_set1_epi32(static_cast<int32_t>(magic_for(sp)))
              : _mm256_setzero_si256();
  __m256i mb_acc = neg1;
  __m256i occ_acc = zero;
  int32_t mb = -1;
  uint32_t occ = 0;
  for (int s = 0; s < planes; ++s) {
    const int32_t offs = offs0 - 4 * s;
    const __m256i voffs = _mm256_set1_epi32(offs);
    int32_t* bd_out = band + static_cast<size_t>(s) * stride;
    int32_t* up_out = up + static_cast<size_t>(s) * stride;
    size_t k = 0;
    for (; k + 8 <= n; k += 8) {
      const __m256i eb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ehu_band + k));
      const __m256i msk = _mm256_cmpgt_epi32(zero, eb);
      const __m256i shift = _mm256_add_epi32(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(align + k)),
          voffs);
      const __m256i c = sp >= 2 ? divq_u32(shift, vm) : shift;
      const __m256i local = _mm256_sub_epi32(shift, _mm256_mullo_epi32(c, vsp));
      const __m256i upv = _mm256_sub_epi32(vguard, local);
      const __m256i bd = _mm256_blendv_epi8(c, neg1, msk);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(bd_out + k), bd);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(up_out + k),
                          _mm256_andnot_si256(msk, upv));
      mb_acc = _mm256_max_epi32(mb_acc, bd);
      // Masked lanes: min(bd, 31) = -1, and sllv with a count > 31 yields
      // zero, so they drop out of the occupancy OR.
      occ_acc = _mm256_or_si256(
          occ_acc, _mm256_sllv_epi32(one, _mm256_min_epi32(bd, v31)));
    }
    for (; k < n; ++k) {
      if (ehu_band[k] < 0) {
        bd_out[k] = -1;
        up_out[k] = 0;
        continue;
      }
      const int32_t shift = align[k] + offs;
      const int32_t c = shift / sp;
      bd_out[k] = c;
      up_out[k] = guard - (shift - c * sp);
      mb = std::max(mb, c);
      occ |= 1u << std::min(c, 31);
    }
  }
  *max_band = std::max(mb, hmax8_i32(mb_acc));
  *occupancy = occ | static_cast<uint32_t>(hor8_i32(occ_acc));
}

void diag_band_sums_planes_i32(const int16_t* d, const int32_t* band,
                               const int32_t* up, size_t stride, int planes,
                               size_t n, int bands, int64_t* sums) {
  __m256i acc[kMaxBands];
  for (int c = 0; c < bands; ++c) acc[c] = _mm256_setzero_si256();
  int64_t tail[kMaxBands] = {0};
  for (int s = 0; s < planes; ++s) {
    const size_t off = static_cast<size_t>(s) * stride;
    const int16_t* ds = d + off;
    const int32_t* bs = band + off;
    const int32_t* us = up + off;
    size_t k = 0;
    for (; k + 8 <= n; k += 8) {
      const __m256i x = _mm256_sllv_epi32(
          _mm256_cvtepi16_epi32(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(ds + k))),
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(us + k)));
      const __m256i bd =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bs + k));
      for (int c = 0; c < bands; ++c) {
        const __m256i m = _mm256_cmpeq_epi32(bd, _mm256_set1_epi32(c));
        acc[c] = _mm256_add_epi32(acc[c], _mm256_and_si256(x, m));
      }
    }
    for (; k < n; ++k) {
      if (bs[k] < 0) continue;
      tail[bs[k]] += static_cast<int32_t>(ds[k]) << us[k];
    }
  }
  for (int c = 0; c < bands; ++c) sums[c] = hsum8_i32(acc[c]) + tail[c];
}

void diag_band_sums_planes_i64(const int16_t* d, const int32_t* band,
                               const int32_t* up, size_t stride, int planes,
                               size_t n, int bands, int64_t* sums) {
  __m256i acc[kMaxBands];
  for (int c = 0; c < bands; ++c) acc[c] = _mm256_setzero_si256();
  int64_t tail[kMaxBands] = {0};
  for (int s = 0; s < planes; ++s) {
    const size_t off = static_cast<size_t>(s) * stride;
    const int16_t* ds = d + off;
    const int32_t* bs = band + off;
    const int32_t* us = up + off;
    size_t k = 0;
    for (; k + 4 <= n; k += 4) {
      const __m128i d32 = _mm_cvtepi16_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(ds + k)));
      const __m256i x = _mm256_sllv_epi64(
          _mm256_cvtepi32_epi64(d32),
          _mm256_cvtepi32_epi64(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(us + k))));
      const __m128i bd =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(bs + k));
      for (int c = 0; c < bands; ++c) {
        const __m128i m = _mm_cmpeq_epi32(bd, _mm_set1_epi32(c));
        acc[c] = _mm256_add_epi64(
            acc[c], _mm256_and_si256(x, _mm256_cvtepi32_epi64(m)));
      }
    }
    for (; k < n; ++k) {
      if (bs[k] < 0) continue;
      tail[bs[k]] += static_cast<int64_t>(ds[k]) << us[k];
    }
  }
  for (int c = 0; c < bands; ++c) sums[c] = hsum4_i64(acc[c]) + tail[c];
}

bool ehu_fused_i32(const int32_t* ea, const int32_t* eb, size_t n, int32_t soft,
                   int32_t sp, int32_t* align, int32_t* band, int32_t* max_exp,
                   uint32_t* occupancy, int32_t* max_band, int32_t* n_masked,
                   int32_t* max_align) {
  // Pass 1: product exponents (staged in the align buffer) and max/min.
  __m256i vmx = _mm256_set1_epi32(INT32_MIN);
  __m256i vmn = _mm256_set1_epi32(INT32_MAX);
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256i s = _mm256_add_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ea + k)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(eb + k)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(align + k), s);
    vmx = _mm256_max_epi32(vmx, s);
    vmn = _mm256_min_epi32(vmn, s);
  }
  int32_t mx = hmax8_i32(vmx), mn = hmin8_i32(vmn);
  for (; k < n; ++k) {
    const int32_t s = ea[k] + eb[k];
    align[k] = s;
    mx = std::max(mx, s);
    mn = std::min(mn, s);
  }
  if (soft >= 65536 ||
      static_cast<int64_t>(mx) - static_cast<int64_t>(mn) >= 65536) {
    return false;
  }
  // Pass 2: alignments, bands and every wrap-up reduction.
  const __m256i zero = _mm256_setzero_si256();
  const __m256i neg1 = _mm256_set1_epi32(-1);
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i v31 = _mm256_set1_epi32(31);
  const __m256i vmin32 = _mm256_set1_epi32(INT32_MIN);
  const __m256i vmxv = _mm256_set1_epi32(mx);
  const __m256i vsoft = _mm256_set1_epi32(soft);
  const __m256i vm =
      sp >= 2 ? _mm256_set1_epi32(static_cast<int32_t>(magic_for(sp)))
              : _mm256_setzero_si256();
  __m256i occ_acc = zero, mb_acc = neg1, cnt_acc = zero, mal_acc = vmin32;
  k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256i al = _mm256_sub_epi32(
        vmxv, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(align + k)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(align + k), al);
    const __m256i msk = _mm256_cmpgt_epi32(al, vsoft);
    const __m256i q = sp >= 2 ? divq_u32(al, vm) : al;
    const __m256i bd = _mm256_blendv_epi8(q, neg1, msk);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(band + k), bd);
    occ_acc = _mm256_or_si256(
        occ_acc, _mm256_sllv_epi32(one, _mm256_min_epi32(bd, v31)));
    mb_acc = _mm256_max_epi32(mb_acc, bd);
    cnt_acc = _mm256_sub_epi32(cnt_acc, msk);  // masked lanes are -1
    mal_acc = _mm256_max_epi32(mal_acc, _mm256_blendv_epi8(al, vmin32, msk));
  }
  uint32_t occ = static_cast<uint32_t>(hor8_i32(occ_acc));
  int32_t mb = hmax8_i32(mb_acc);
  int32_t masked = hsum8_i32(cnt_acc);
  int32_t mal = hmax8_i32(mal_acc);
  for (; k < n; ++k) {
    const int32_t al = mx - align[k];
    align[k] = al;
    if (al > soft) {
      band[k] = -1;
      ++masked;
      continue;
    }
    const int32_t c = al / sp;
    band[k] = c;
    occ |= 1u << std::min(c, 31);
    mb = std::max(mb, c);
    mal = std::max(mal, al);
  }
  *max_exp = mx;
  *occupancy = occ;
  *max_band = mb;
  *n_masked = masked;
  *max_align = mal;
  return true;
}

void nibble_fused3x3_i16(const int8_t* a, size_t a_stride, const int8_t* b,
                         size_t b_stride, const int32_t* band,
                         const int32_t* up, size_t n, int bands, int64_t* sums,
                         uint32_t* nz) {
  // Operand planes are only readable through n (bytes past the view are
  // live neighbor data); short views go through zero-filled staging.
  __m256i a16[3], b16[3];
  if (n == kFusedLanes) {
    for (int i = 0; i < 3; ++i) {
      a16[i] = _mm256_cvtepi8_epi16(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(a + static_cast<size_t>(i) * a_stride)));
      b16[i] = _mm256_cvtepi8_epi16(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(b + static_cast<size_t>(i) * b_stride)));
    }
  } else {
    alignas(16) int8_t abuf[3][kFusedLanes] = {};
    alignas(16) int8_t bbuf[3][kFusedLanes] = {};
    for (int i = 0; i < 3; ++i) {
      std::memcpy(abuf[i], a + static_cast<size_t>(i) * a_stride, n);
      std::memcpy(bbuf[i], b + static_cast<size_t>(i) * b_stride, n);
    }
    for (int i = 0; i < 3; ++i) {
      a16[i] = _mm256_cvtepi8_epi16(
          _mm_load_si128(reinterpret_cast<const __m128i*>(abuf[i])));
      b16[i] = _mm256_cvtepi8_epi16(
          _mm_load_si128(reinterpret_cast<const __m128i*>(bbuf[i])));
    }
  }
  const __m256i band_lo =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(band));
  const __m256i band_hi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(band + 8));
  const __m256i one32 = _mm256_set1_epi32(1);
  const __m256i upmul = pack32_16(
      _mm256_sllv_epi32(one32, _mm256_loadu_si256(
                                   reinterpret_cast<const __m256i*>(up))),
      _mm256_sllv_epi32(one32, _mm256_loadu_si256(
                                   reinterpret_cast<const __m256i*>(up + 8))));
  const __m256i neg1 = _mm256_set1_epi32(-1);
  const __m256i live = pack32_16(_mm256_cmpgt_epi32(band_lo, neg1),
                                 _mm256_cmpgt_epi32(band_hi, neg1));
  __m256i bm[kMaxBands];
  for (int c = 0; c < bands; ++c) {
    bm[c] = pack32_16(_mm256_cmpeq_epi32(band_lo, _mm256_set1_epi32(c)),
                      _mm256_cmpeq_epi32(band_hi, _mm256_set1_epi32(c)));
  }
  const __m256i ones16 = _mm256_set1_epi16(1);
  const __m256i vzero = _mm256_setzero_si256();
  uint32_t nzm = 0;
  for (int i = 0; i < 3; ++i) {
    // (a << up) * b == (a * b) << up exactly: |a| <= 15, up <= 7 keeps the
    // shifted factor in int16; the product tops out at 1920 * 15 = 28800.
    const __m256i ash = _mm256_mullo_epi16(a16[i], upmul);
    for (int j = 0; j < 3; ++j) {
      const __m256i p = _mm256_mullo_epi16(ash, b16[j]);
      const __m256i pl = _mm256_and_si256(p, live);
      if (!_mm256_testz_si256(pl, pl)) nzm |= 1u << (i * 3 + j);
      int64_t* s = sums + static_cast<size_t>(i * 3 + j) * kMaxBands;
      for (int g = 0; g < kMaxBands; g += 4) {
        if (g >= bands) {
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(s + g), vzero);
          continue;
        }
        __m256i r[4];
        for (int c = 0; c < 4; ++c) {
          r[c] = g + c < bands
                     ? _mm256_madd_epi16(_mm256_and_si256(p, bm[g + c]), ones16)
                     : vzero;
        }
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(s + g),
            _mm256_cvtepi32_epi64(red4_i32(r[0], r[1], r[2], r[3])));
      }
    }
  }
  *nz = nzm;
}

void serial_fused_i16(const int32_t* v, const uint32_t* mag,
                      const int32_t* band, size_t n, int bands, int64_t* sums) {
  static_cast<void>(n);  // serve planes are driver-padded through kFusedLanes
  const __m256i v16 = pack32_16(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v)),
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + 8)));
  const __m256i m16 = pack32_16(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mag)),
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mag + 8)));
  const __m256i band_lo =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(band));
  const __m256i band_hi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(band + 8));
  const __m256i ones16 = _mm256_set1_epi16(1);
  __m256i bit[kSerialSteps];
  for (int t = 0; t < kSerialSteps; ++t) {
    bit[t] = _mm256_srai_epi16(_mm256_slli_epi16(m16, 15 - t), 15);
  }
  for (int c = 0; c < bands; ++c) {
    const __m256i bmc =
        pack32_16(_mm256_cmpeq_epi32(band_lo, _mm256_set1_epi32(c)),
                  _mm256_cmpeq_epi32(band_hi, _mm256_set1_epi32(c)));
    const __m256i vc = _mm256_and_si256(v16, bmc);
    int64_t* s = sums + static_cast<size_t>(c) * kSerialSteps;
    for (int g = 0; g < kSerialSteps; g += 4) {
      const __m128i t4 = red4_i32(
          _mm256_madd_epi16(_mm256_and_si256(vc, bit[g + 0]), ones16),
          _mm256_madd_epi16(_mm256_and_si256(vc, bit[g + 1]), ones16),
          _mm256_madd_epi16(_mm256_and_si256(vc, bit[g + 2]), ones16),
          _mm256_madd_epi16(_mm256_and_si256(vc, bit[g + 3]), ones16));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(s + g),
                          _mm256_cvtepi32_epi64(t4));
    }
  }
}

int64_t dot_i8(const int8_t* a, const int8_t* b, size_t n) {
  // int32 lane accumulators are safe up to ~2^22 blocks (madd pairs are
  // <= 2*225); chunk defensively far below that.
  int64_t total = 0;
  size_t k = 0;
  while (k + 16 <= n) {
    const size_t chunk_end = std::min(n, k + (size_t{1} << 20));
    __m256i acc = _mm256_setzero_si256();
    for (; k + 16 <= chunk_end; k += 16) {
      const __m256i va = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + k)));
      const __m256i vb = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + k)));
      acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
    }
    total += hsum8_i32(acc);
  }
  for (; k < n; ++k) {
    total += static_cast<int32_t>(a[k]) * static_cast<int32_t>(b[k]);
  }
  return total;
}

int64_t bit_masked_sum_i32(const int32_t* a, const int32_t* b, int t,
                           size_t n) {
  // |a| < 2^12 keeps int32 lane accumulators exact up to 2^19 lanes; chunk.
  const __m128i lsh = _mm_cvtsi32_si128(31 - t);
  int64_t total = 0;
  size_t k = 0;
  while (k + 8 <= n) {
    const size_t chunk_end = std::min(n, k + (size_t{1} << 18));
    __m256i acc = _mm256_setzero_si256();
    for (; k + 8 <= chunk_end; k += 8) {
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + k));
      const __m256i bit = _mm256_srai_epi32(_mm256_sll_epi32(vb, lsh), 31);
      acc = _mm256_add_epi32(
          acc, _mm256_and_si256(
                   _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + k)),
                   bit));
    }
    total += hsum8_i32(acc);
  }
  for (; k < n; ++k) {
    if ((b[k] >> t) & 1) total += a[k];
  }
  return total;
}

}  // namespace avx2

const KernelTable* avx2_kernel_table() {
  static const KernelTable t = {
      .sum_minmax_i32 = avx2::sum_minmax_i32,
      .rsub_i32 = avx2::rsub_i32,
      .mask_and_band_i32 = avx2::mask_and_band_i32,
      .serve_shifts_i32 = avx2::serve_shifts_i32,
      .nibble_band_sums_i32 = avx2::nibble_band_sums_i32,
      .nibble_band_sums_i64 = avx2::nibble_band_sums_i64,
      .serial_lanes_i32 = avx2::serial_lanes_i32,
      .shifted_lanes_i32 = avx2::shifted_lanes_i32,
      .shifted_lanes_i64 = avx2::shifted_lanes_i64,
      .serial_band_sums_i32 = avx2::serial_band_sums_i32,
      .serial_band_sums_i64 = avx2::serial_band_sums_i64,
      .fp16_diag_products = avx2::fp16_diag_products,
      .diag_bands_i32 = avx2::diag_bands_i32,
      .diag_band_sums_planes_i32 = avx2::diag_band_sums_planes_i32,
      .diag_band_sums_planes_i64 = avx2::diag_band_sums_planes_i64,
      .ehu_fused_i32 = avx2::ehu_fused_i32,
      .nibble_fused3x3_i16 = avx2::nibble_fused3x3_i16,
      .serial_fused_i16 = avx2::serial_fused_i16,
      .dot_i8 = avx2::dot_i8,
      .bit_masked_sum_i32 = avx2::bit_masked_sum_i32,
  };
  return &t;
}

}  // namespace mpipu::simd

#else  // !__AVX2__

#include "core/simd/kernels.h"

namespace mpipu::simd {
const KernelTable* avx2_kernel_table() { return nullptr; }
}  // namespace mpipu::simd

#endif
