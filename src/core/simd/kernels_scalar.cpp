// Scalar reference implementations of the SIMD kernel set.  These are the
// semantics the vector backends must match bit-for-bit; they also back any
// table entry a vector backend chooses not to implement.
#include <algorithm>

#include "core/simd/kernels.h"

namespace mpipu::simd {
namespace scalar {

void sum_minmax_i32(const int32_t* a, const int32_t* b, int32_t* sum, size_t n,
                    int32_t* mx, int32_t* mn) {
  int32_t smx = INT32_MIN, smn = INT32_MAX;
  for (size_t k = 0; k < n; ++k) {
    const int32_t s = a[k] + b[k];
    sum[k] = s;
    smx = std::max(smx, s);
    smn = std::min(smn, s);
  }
  *mx = smx;
  *mn = smn;
}

void rsub_i32(int32_t c, const int32_t* x, int32_t* out, size_t n) {
  for (size_t k = 0; k < n; ++k) out[k] = c - x[k];
}

void mask_and_band_i32(const int32_t* align, size_t n, int32_t soft, int32_t sp,
                       int32_t* band, uint8_t* masked) {
  for (size_t k = 0; k < n; ++k) {
    const bool m = align[k] > soft;
    masked[k] = m ? 1 : 0;
    band[k] = m ? -1 : align[k] / sp;
  }
}

void serve_shifts_i32(const int32_t* align, const int32_t* band, size_t n,
                      int32_t guard, int32_t sp, int single_cycle,
                      int32_t window, int32_t* serve_band, int32_t* up,
                      int32_t* down) {
  for (size_t k = 0; k < n; ++k) {
    if (band[k] < 0) {  // masked lane
      serve_band[k] = -1;
      up[k] = 0;
      down[k] = 0;
      continue;
    }
    const int32_t local = single_cycle ? std::min(align[k], window)
                                       : align[k] - band[k] * sp;
    const int32_t net = guard - local;
    serve_band[k] = single_cycle ? 0 : band[k];
    up[k] = net >= 0 ? net : 0;
    down[k] = net >= 0 ? 0 : -net;
  }
}

void nibble_band_sums_i32(const int8_t* pa, const int8_t* pb,
                          const int32_t* band, const int32_t* up,
                          const int32_t* down, size_t n, int bands,
                          int64_t* sums) {
  static_cast<void>(bands);
  for (size_t k = 0; k < n; ++k) {
    if (band[k] < 0) continue;
    int32_t p = static_cast<int32_t>(pa[k]) * static_cast<int32_t>(pb[k]);
    p = (p >> down[k]) << up[k];
    sums[band[k]] += p;
  }
}

void nibble_band_sums_i64(const int8_t* pa, const int8_t* pb,
                          const int32_t* band, const int32_t* up,
                          const int32_t* down, size_t n, int bands,
                          int64_t* sums) {
  static_cast<void>(bands);
  for (size_t k = 0; k < n; ++k) {
    if (band[k] < 0) continue;
    const int32_t p = static_cast<int32_t>(pa[k]) * static_cast<int32_t>(pb[k]);
    sums[band[k]] += static_cast<int64_t>(p >> down[k]) << up[k];
  }
}

void serial_lanes_i32(const int32_t* a_sm, const int32_t* b_sm, size_t n,
                      uint32_t* mag, int32_t* lane_p) {
  for (size_t k = 0; k < n; ++k) {
    const int32_t smb = b_sm[k];
    mag[k] = static_cast<uint32_t>(smb < 0 ? -smb : smb) << 1;
    lane_p[k] = smb < 0 ? -a_sm[k] : a_sm[k];
  }
}

void shifted_lanes_i32(const int32_t* p, const int32_t* up, const int32_t* down,
                       size_t n, int32_t* v) {
  for (size_t k = 0; k < n; ++k) v[k] = (p[k] >> down[k]) << up[k];
}

void shifted_lanes_i64(const int32_t* p, const int32_t* up, const int32_t* down,
                       size_t n, int64_t* v) {
  for (size_t k = 0; k < n; ++k) {
    v[k] = static_cast<int64_t>(p[k] >> down[k]) << up[k];
  }
}

void serial_band_sums_i32(const int32_t* v, const uint32_t* mag, int t,
                          const int32_t* band, size_t n, int bands,
                          int64_t* sums) {
  static_cast<void>(bands);
  for (size_t k = 0; k < n; ++k) {
    if (band[k] < 0) continue;
    if (((mag[k] >> t) & 1u) == 0) continue;
    sums[band[k]] += v[k];
  }
}

void serial_band_sums_i64(const int64_t* v, const uint32_t* mag, int t,
                          const int32_t* band, size_t n, int bands,
                          int64_t* sums) {
  static_cast<void>(bands);
  for (size_t k = 0; k < n; ++k) {
    if (band[k] < 0) continue;
    if (((mag[k] >> t) & 1u) == 0) continue;
    sums[band[k]] += v[k];
  }
}

void fp16_diag_products(const int8_t* a, size_t a_stride, const int8_t* b,
                        size_t b_stride, size_t n, int16_t* diag,
                        size_t d_stride) {
  const int8_t* a0 = a;
  const int8_t* a1 = a + a_stride;
  const int8_t* a2 = a + 2 * a_stride;
  const int8_t* b0 = b;
  const int8_t* b1 = b + b_stride;
  const int8_t* b2 = b + 2 * b_stride;
  for (size_t k = 0; k < n; ++k) {
    const int16_t x0 = a0[k], x1 = a1[k], x2 = a2[k];
    const int16_t y0 = b0[k], y1 = b1[k], y2 = b2[k];
    diag[0 * d_stride + k] = static_cast<int16_t>(x0 * y0);
    diag[1 * d_stride + k] = static_cast<int16_t>(x0 * y1 + x1 * y0);
    diag[2 * d_stride + k] = static_cast<int16_t>(x0 * y2 + x1 * y1 + x2 * y0);
    diag[3 * d_stride + k] = static_cast<int16_t>(x1 * y2 + x2 * y1);
    diag[4 * d_stride + k] = static_cast<int16_t>(x2 * y2);
  }
}

void diag_bands_i32(const int32_t* align, const int32_t* ehu_band, size_t n,
                    int32_t offs0, int planes, int32_t sp, int32_t guard,
                    size_t stride, int32_t* band, int32_t* up,
                    int32_t* max_band, uint32_t* occupancy) {
  int32_t mb = -1;
  uint32_t occ = 0;
  for (int s = 0; s < planes; ++s) {
    const int32_t offs = offs0 - 4 * s;
    int32_t* bd = band + static_cast<size_t>(s) * stride;
    int32_t* u = up + static_cast<size_t>(s) * stride;
    for (size_t k = 0; k < n; ++k) {
      if (ehu_band[k] < 0) {
        bd[k] = -1;
        u[k] = 0;
        continue;
      }
      const int32_t shift = align[k] + offs;
      const int32_t c = shift / sp;
      bd[k] = c;
      u[k] = guard - (shift - c * sp);
      mb = std::max(mb, c);
      occ |= 1u << std::min(c, 31);
    }
  }
  *max_band = mb;
  *occupancy = occ;
}

void diag_band_sums_planes_i32(const int16_t* d, const int32_t* band,
                               const int32_t* up, size_t stride, int planes,
                               size_t n, int bands, int64_t* sums) {
  for (int c = 0; c < bands; ++c) sums[c] = 0;
  for (int s = 0; s < planes; ++s) {
    const size_t off = static_cast<size_t>(s) * stride;
    for (size_t k = 0; k < n; ++k) {
      if (band[off + k] < 0) continue;
      sums[band[off + k]] += static_cast<int32_t>(d[off + k]) << up[off + k];
    }
  }
}

void diag_band_sums_planes_i64(const int16_t* d, const int32_t* band,
                               const int32_t* up, size_t stride, int planes,
                               size_t n, int bands, int64_t* sums) {
  for (int c = 0; c < bands; ++c) sums[c] = 0;
  for (int s = 0; s < planes; ++s) {
    const size_t off = static_cast<size_t>(s) * stride;
    for (size_t k = 0; k < n; ++k) {
      if (band[off + k] < 0) continue;
      sums[band[off + k]] += static_cast<int64_t>(d[off + k]) << up[off + k];
    }
  }
}

bool ehu_fused_i32(const int32_t* ea, const int32_t* eb, size_t n, int32_t soft,
                   int32_t sp, int32_t* align, int32_t* band, int32_t* max_exp,
                   uint32_t* occupancy, int32_t* max_band, int32_t* n_masked,
                   int32_t* max_align) {
  int32_t mx = INT32_MIN, mn = INT32_MAX;
  for (size_t k = 0; k < n; ++k) {
    const int32_t s = ea[k] + eb[k];
    mx = std::max(mx, s);
    mn = std::min(mn, s);
  }
  if (soft >= 65536 ||
      static_cast<int64_t>(mx) - static_cast<int64_t>(mn) >= 65536) {
    return false;
  }
  uint32_t occ = 0;
  int32_t mb = -1, masked = 0, mal = INT32_MIN;
  for (size_t k = 0; k < n; ++k) {
    const int32_t al = mx - (ea[k] + eb[k]);
    align[k] = al;
    if (al > soft) {
      band[k] = -1;
      ++masked;
      continue;
    }
    const int32_t c = al / sp;
    band[k] = c;
    occ |= 1u << std::min(c, 31);
    mb = std::max(mb, c);
    mal = std::max(mal, al);
  }
  *max_exp = mx;
  *occupancy = occ;
  *max_band = mb;
  *n_masked = masked;
  *max_align = mal;
  return true;
}

void nibble_fused3x3_i16(const int8_t* a, size_t a_stride, const int8_t* b,
                         size_t b_stride, const int32_t* band,
                         const int32_t* up, size_t n, int bands, int64_t* sums,
                         uint32_t* nz) {
  static_cast<void>(bands);
  uint32_t nzm = 0;
  for (int i = 0; i < 3; ++i) {
    const int8_t* pa = a + static_cast<size_t>(i) * a_stride;
    for (int j = 0; j < 3; ++j) {
      const int8_t* pb = b + static_cast<size_t>(j) * b_stride;
      int64_t* s = sums + static_cast<size_t>(i * 3 + j) * kMaxBands;
      for (int c = 0; c < kMaxBands; ++c) s[c] = 0;
      for (size_t k = 0; k < n; ++k) {
        if (band[k] < 0) continue;
        const int32_t p =
            static_cast<int32_t>(pa[k]) * static_cast<int32_t>(pb[k]);
        if (p != 0) nzm |= 1u << (i * 3 + j);
        s[band[k]] += p << up[k];
      }
    }
  }
  *nz = nzm;
}

void serial_fused_i16(const int32_t* v, const uint32_t* mag,
                      const int32_t* band, size_t n, int bands, int64_t* sums) {
  for (int c = 0; c < bands; ++c) {
    for (int t = 0; t < kSerialSteps; ++t) sums[c * kSerialSteps + t] = 0;
  }
  for (size_t k = 0; k < n; ++k) {
    if (band[k] < 0) continue;
    int64_t* s = sums + static_cast<size_t>(band[k]) * kSerialSteps;
    for (int t = 0; t < kSerialSteps; ++t) {
      if ((mag[k] >> t) & 1u) s[t] += v[k];
    }
  }
}

int64_t dot_i8(const int8_t* a, const int8_t* b, size_t n) {
  int64_t s = 0;
  for (size_t k = 0; k < n; ++k) {
    s += static_cast<int32_t>(a[k]) * static_cast<int32_t>(b[k]);
  }
  return s;
}

int64_t bit_masked_sum_i32(const int32_t* a, const int32_t* b, int t,
                           size_t n) {
  int64_t s = 0;
  for (size_t k = 0; k < n; ++k) {
    if ((b[k] >> t) & 1) s += a[k];
  }
  return s;
}

}  // namespace scalar

const KernelTable* scalar_kernel_table() {
  static const KernelTable t = {
      .sum_minmax_i32 = scalar::sum_minmax_i32,
      .rsub_i32 = scalar::rsub_i32,
      .mask_and_band_i32 = scalar::mask_and_band_i32,
      .serve_shifts_i32 = scalar::serve_shifts_i32,
      .nibble_band_sums_i32 = scalar::nibble_band_sums_i32,
      .nibble_band_sums_i64 = scalar::nibble_band_sums_i64,
      .serial_lanes_i32 = scalar::serial_lanes_i32,
      .shifted_lanes_i32 = scalar::shifted_lanes_i32,
      .shifted_lanes_i64 = scalar::shifted_lanes_i64,
      .serial_band_sums_i32 = scalar::serial_band_sums_i32,
      .serial_band_sums_i64 = scalar::serial_band_sums_i64,
      .fp16_diag_products = scalar::fp16_diag_products,
      .diag_bands_i32 = scalar::diag_bands_i32,
      .diag_band_sums_planes_i32 = scalar::diag_band_sums_planes_i32,
      .diag_band_sums_planes_i64 = scalar::diag_band_sums_planes_i64,
      .ehu_fused_i32 = scalar::ehu_fused_i32,
      .nibble_fused3x3_i16 = scalar::nibble_fused3x3_i16,
      .serial_fused_i16 = scalar::serial_fused_i16,
      .dot_i8 = scalar::dot_i8,
      .bit_masked_sum_i32 = scalar::bit_masked_sum_i32,
  };
  return &t;
}

}  // namespace mpipu::simd
