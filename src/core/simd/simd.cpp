// Backend selection and dispatch for the SIMD kernel layer (see simd.h).
#include "core/simd/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "core/simd/kernels.h"

namespace mpipu::simd {
namespace {

const KernelTable* table_for(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return scalar_kernel_table();
    case Backend::kAvx2:
      return avx2_kernel_table();
    case Backend::kNeon:
      return neon_kernel_table();
  }
  return nullptr;
}

/// Startup choice: the MPIPU_KERNEL environment variable if it names a
/// compiled-in backend (unknown or unavailable names fall through to auto),
/// otherwise the best vector backend this binary carries.
Backend select_default() {
  // Read-only env probe at first use, no concurrent setenv in this process.
  if (const char* env = std::getenv("MPIPU_KERNEL")) {  // NOLINT(concurrency-mt-unsafe)
    if (std::strcmp(env, "scalar") == 0) return Backend::kScalar;
    if (std::strcmp(env, "avx2") == 0 && avx2_kernel_table() != nullptr) {
      return Backend::kAvx2;
    }
    if (std::strcmp(env, "neon") == 0 && neon_kernel_table() != nullptr) {
      return Backend::kNeon;
    }
    // "auto" or unrecognized: fall through.
  }
  if (avx2_kernel_table() != nullptr) return Backend::kAvx2;
  if (neon_kernel_table() != nullptr) return Backend::kNeon;
  return Backend::kScalar;
}

Backend default_backend() {
  static const Backend b = select_default();
  return b;
}

std::atomic<Backend>& active_slot() {
  static std::atomic<Backend> slot{default_backend()};
  return slot;
}

}  // namespace

Backend active_backend() {
  return active_slot().load(std::memory_order_relaxed);
}

const KernelTable& kernels() { return *table_for(active_backend()); }

const KernelTable* kernels_for(Backend b) { return table_for(b); }

bool backend_compiled(Backend b) { return table_for(b) != nullptr; }

bool force_backend(Backend b) {
  if (table_for(b) == nullptr) return false;
  active_slot().store(b, std::memory_order_relaxed);
  return true;
}

void reset_backend() {
  active_slot().store(default_backend(), std::memory_order_relaxed);
}

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "scalar";
}

const char* backend_name() { return backend_name(active_backend()); }

}  // namespace mpipu::simd
