// NEON (AArch64) implementations of the SIMD kernel set (see simd.h).
//
// Same bit-identity rules as the AVX2 backend: whole 4-lane (or 2-lane for
// int64) vectors below the view length, scalar reference tails, masked
// lanes discarded via band-equality masks.  NEON's vshlq_s32/s64 shift by a
// signed per-lane count (negative = arithmetic right shift), which lets the
// shift kernels use the single net shift directly: exactly one of up/down
// is nonzero per lane, so up - down == the net shift and
// (x >> down) << up == vshlq(x, up - down) lane-for-lane.
//
// A few table entries (mask_and_band_i32, diag_bands_i32 and the fused
// whole-op kernels) delegate to the scalar reference functions: the
// division they contain is cheap relative to the loops that dominate, and
// delegating keeps the untested surface small on hosts we don't benchmark
// on.
#if defined(__ARM_NEON) && defined(__aarch64__)

#include <arm_neon.h>

#include "core/simd/kernels.h"

namespace mpipu::simd {
namespace neon {

void sum_minmax_i32(const int32_t* a, const int32_t* b, int32_t* sum, size_t n,
                    int32_t* mx, int32_t* mn) {
  size_t k = 0;
  int32x4_t vmx = vdupq_n_s32(INT32_MIN);
  int32x4_t vmn = vdupq_n_s32(INT32_MAX);
  for (; k + 4 <= n; k += 4) {
    const int32x4_t s = vaddq_s32(vld1q_s32(a + k), vld1q_s32(b + k));
    vst1q_s32(sum + k, s);
    vmx = vmaxq_s32(vmx, s);
    vmn = vminq_s32(vmn, s);
  }
  int32_t smx = vmaxvq_s32(vmx), smn = vminvq_s32(vmn);
  for (; k < n; ++k) {
    const int32_t s = a[k] + b[k];
    sum[k] = s;
    if (s > smx) smx = s;
    if (s < smn) smn = s;
  }
  *mx = smx;
  *mn = smn;
}

void rsub_i32(int32_t c, const int32_t* x, int32_t* out, size_t n) {
  const int32x4_t vc = vdupq_n_s32(c);
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    vst1q_s32(out + k, vsubq_s32(vc, vld1q_s32(x + k)));
  }
  for (; k < n; ++k) out[k] = c - x[k];
}

void serve_shifts_i32(const int32_t* align, const int32_t* band, size_t n,
                      int32_t guard, int32_t sp, int single_cycle,
                      int32_t window, int32_t* serve_band, int32_t* up,
                      int32_t* down) {
  const int32x4_t zero = vdupq_n_s32(0);
  const int32x4_t neg1 = vdupq_n_s32(-1);
  const int32x4_t vguard = vdupq_n_s32(guard);
  const int32x4_t vsp = vdupq_n_s32(sp);
  const int32x4_t vwin = vdupq_n_s32(window);
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const int32x4_t al = vld1q_s32(align + k);
    const int32x4_t bd = vld1q_s32(band + k);
    const uint32x4_t msk = vcltq_s32(bd, zero);  // masked: band < 0
    int32x4_t sb, local;
    if (single_cycle) {
      sb = zero;
      local = vminq_s32(al, vwin);
    } else {
      sb = bd;
      local = vmlsq_s32(al, bd, vsp);  // align - band * sp
    }
    const int32x4_t net = vsubq_s32(vguard, local);
    const int32x4_t upv = vmaxq_s32(net, zero);
    const int32x4_t dnv = vmaxq_s32(vnegq_s32(net), zero);
    vst1q_s32(serve_band + k, vbslq_s32(msk, neg1, sb));
    vst1q_s32(up + k, vbicq_s32(upv, vreinterpretq_s32_u32(msk)));
    vst1q_s32(down + k, vbicq_s32(dnv, vreinterpretq_s32_u32(msk)));
  }
  for (; k < n; ++k) {
    if (band[k] < 0) {
      serve_band[k] = -1;
      up[k] = 0;
      down[k] = 0;
      continue;
    }
    const int32_t local =
        single_cycle ? (align[k] < window ? align[k] : window)
                     : align[k] - band[k] * sp;
    const int32_t net = guard - local;
    serve_band[k] = single_cycle ? 0 : band[k];
    up[k] = net >= 0 ? net : 0;
    down[k] = net >= 0 ? 0 : -net;
  }
}

void nibble_band_sums_i32(const int8_t* pa, const int8_t* pb,
                          const int32_t* band, const int32_t* up,
                          const int32_t* down, size_t n, int bands,
                          int64_t* sums) {
  int32x4_t acc[kMaxBands];
  for (int c = 0; c < bands; ++c) acc[c] = vdupq_n_s32(0);
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const int16x8_t a16 = vmovl_s8(vld1_s8(pa + k));
    const int16x8_t b16 = vmovl_s8(vld1_s8(pb + k));
    const int32x4_t p_lo = vmull_s16(vget_low_s16(a16), vget_low_s16(b16));
    const int32x4_t p_hi = vmull_s16(vget_high_s16(a16), vget_high_s16(b16));
    // exactly one of up/down is nonzero, so vshlq by (up - down) matches
    // (p >> down) << up.
    const int32x4_t net_lo = vsubq_s32(vld1q_s32(up + k), vld1q_s32(down + k));
    const int32x4_t net_hi =
        vsubq_s32(vld1q_s32(up + k + 4), vld1q_s32(down + k + 4));
    const int32x4_t v_lo = vshlq_s32(p_lo, net_lo);
    const int32x4_t v_hi = vshlq_s32(p_hi, net_hi);
    const int32x4_t bd_lo = vld1q_s32(band + k);
    const int32x4_t bd_hi = vld1q_s32(band + k + 4);
    for (int c = 0; c < bands; ++c) {
      const int32x4_t vc = vdupq_n_s32(c);
      acc[c] = vaddq_s32(
          acc[c], vandq_s32(v_lo, vreinterpretq_s32_u32(vceqq_s32(bd_lo, vc))));
      acc[c] = vaddq_s32(
          acc[c], vandq_s32(v_hi, vreinterpretq_s32_u32(vceqq_s32(bd_hi, vc))));
    }
  }
  for (int c = 0; c < bands; ++c) sums[c] += vaddvq_s32(acc[c]);
  for (; k < n; ++k) {
    if (band[k] < 0) continue;
    int32_t p = static_cast<int32_t>(pa[k]) * static_cast<int32_t>(pb[k]);
    p = (p >> down[k]) << up[k];
    sums[band[k]] += p;
  }
}

void nibble_band_sums_i64(const int8_t* pa, const int8_t* pb,
                          const int32_t* band, const int32_t* up,
                          const int32_t* down, size_t n, int bands,
                          int64_t* sums) {
  int64x2_t acc[kMaxBands];
  for (int c = 0; c < bands; ++c) acc[c] = vdupq_n_s64(0);
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    // 4-byte loads (not vld1_s8's 8) so we never read past the view length.
    int32_t wa, wb;
    __builtin_memcpy(&wa, pa + k, 4);
    __builtin_memcpy(&wb, pb + k, 4);
    const int16x4_t a16 =
        vget_low_s16(vmovl_s8(vreinterpret_s8_s32(vdup_n_s32(wa))));
    const int16x4_t b16 =
        vget_low_s16(vmovl_s8(vreinterpret_s8_s32(vdup_n_s32(wb))));
    const int32x4_t p32 =
        vshlq_s32(vmull_s16(a16, b16),
                  vnegq_s32(vld1q_s32(down + k)));  // p >> down
    const int32x4_t upv = vld1q_s32(up + k);
    const int64x2_t v_lo =
        vshlq_s64(vmovl_s32(vget_low_s32(p32)), vmovl_s32(vget_low_s32(upv)));
    const int64x2_t v_hi =
        vshlq_s64(vmovl_s32(vget_high_s32(p32)), vmovl_s32(vget_high_s32(upv)));
    const int32x4_t bd = vld1q_s32(band + k);
    for (int c = 0; c < bands; ++c) {
      const int32x4_t m =
          vreinterpretq_s32_u32(vceqq_s32(bd, vdupq_n_s32(c)));
      acc[c] = vaddq_s64(acc[c],
                         vandq_s64(v_lo, vmovl_s32(vget_low_s32(m))));
      acc[c] = vaddq_s64(acc[c],
                         vandq_s64(v_hi, vmovl_s32(vget_high_s32(m))));
    }
  }
  for (int c = 0; c < bands; ++c) sums[c] += vaddvq_s64(acc[c]);
  for (; k < n; ++k) {
    if (band[k] < 0) continue;
    const int32_t p = static_cast<int32_t>(pa[k]) * static_cast<int32_t>(pb[k]);
    sums[band[k]] += static_cast<int64_t>(p >> down[k]) << up[k];
  }
}

void serial_lanes_i32(const int32_t* a_sm, const int32_t* b_sm, size_t n,
                      uint32_t* mag, int32_t* lane_p) {
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const int32x4_t b = vld1q_s32(b_sm + k);
    const int32x4_t a = vld1q_s32(a_sm + k);
    const int32x4_t sgn = vshrq_n_s32(b, 31);  // -1 where b < 0
    const int32x4_t absb = vsubq_s32(veorq_s32(b, sgn), sgn);
    vst1q_u32(mag + k, vreinterpretq_u32_s32(vshlq_n_s32(absb, 1)));
    vst1q_s32(lane_p + k, vsubq_s32(veorq_s32(a, sgn), sgn));
  }
  for (; k < n; ++k) {
    const int32_t smb = b_sm[k];
    mag[k] = static_cast<uint32_t>(smb < 0 ? -smb : smb) << 1;
    lane_p[k] = smb < 0 ? -a_sm[k] : a_sm[k];
  }
}

void shifted_lanes_i32(const int32_t* p, const int32_t* up, const int32_t* down,
                       size_t n, int32_t* v) {
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const int32x4_t net = vsubq_s32(vld1q_s32(up + k), vld1q_s32(down + k));
    vst1q_s32(v + k, vshlq_s32(vld1q_s32(p + k), net));
  }
  for (; k < n; ++k) v[k] = (p[k] >> down[k]) << up[k];
}

void shifted_lanes_i64(const int32_t* p, const int32_t* up, const int32_t* down,
                       size_t n, int64_t* v) {
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const int32x4_t x =
        vshlq_s32(vld1q_s32(p + k), vnegq_s32(vld1q_s32(down + k)));
    const int32x4_t upv = vld1q_s32(up + k);
    vst1q_s64(v + k,
              vshlq_s64(vmovl_s32(vget_low_s32(x)),
                        vmovl_s32(vget_low_s32(upv))));
    vst1q_s64(v + k + 2,
              vshlq_s64(vmovl_s32(vget_high_s32(x)),
                        vmovl_s32(vget_high_s32(upv))));
  }
  for (; k < n; ++k) v[k] = static_cast<int64_t>(p[k] >> down[k]) << up[k];
}

void serial_band_sums_i32(const int32_t* v, const uint32_t* mag, int t,
                          const int32_t* band, size_t n, int bands,
                          int64_t* sums) {
  int32x4_t acc[kMaxBands];
  for (int c = 0; c < bands; ++c) acc[c] = vdupq_n_s32(0);
  const int32x4_t lsh = vdupq_n_s32(31 - t);
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const int32x4_t m = vreinterpretq_s32_u32(vld1q_u32(mag + k));
    // -1 where bit t set: (mag << (31 - t)) >> 31 arithmetically.
    const int32x4_t bit = vshrq_n_s32(vshlq_s32(m, lsh), 31);
    const int32x4_t p = vandq_s32(vld1q_s32(v + k), bit);
    const int32x4_t bd = vld1q_s32(band + k);
    for (int c = 0; c < bands; ++c) {
      const uint32x4_t bm = vceqq_s32(bd, vdupq_n_s32(c));
      acc[c] = vaddq_s32(acc[c], vandq_s32(p, vreinterpretq_s32_u32(bm)));
    }
  }
  for (int c = 0; c < bands; ++c) sums[c] += vaddvq_s32(acc[c]);
  for (; k < n; ++k) {
    if (band[k] < 0) continue;
    if (((mag[k] >> t) & 1u) == 0) continue;
    sums[band[k]] += v[k];
  }
}

void serial_band_sums_i64(const int64_t* v, const uint32_t* mag, int t,
                          const int32_t* band, size_t n, int bands,
                          int64_t* sums) {
  int64x2_t acc[kMaxBands];
  for (int c = 0; c < bands; ++c) acc[c] = vdupq_n_s64(0);
  const int32x4_t lsh = vdupq_n_s32(31 - t);
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const int32x4_t m = vreinterpretq_s32_u32(vld1q_u32(mag + k));
    const int32x4_t bit = vshrq_n_s32(vshlq_s32(m, lsh), 31);
    const int32x4_t bd = vld1q_s32(band + k);
    const int64x2_t bit_lo = vmovl_s32(vget_low_s32(bit));
    const int64x2_t bit_hi = vmovl_s32(vget_high_s32(bit));
    const int64x2_t p_lo = vandq_s64(vld1q_s64(v + k), bit_lo);
    const int64x2_t p_hi = vandq_s64(vld1q_s64(v + k + 2), bit_hi);
    for (int c = 0; c < bands; ++c) {
      const uint32x4_t bm = vceqq_s32(bd, vdupq_n_s32(c));
      const int64x2_t bm_lo =
          vmovl_s32(vget_low_s32(vreinterpretq_s32_u32(bm)));
      const int64x2_t bm_hi =
          vmovl_s32(vget_high_s32(vreinterpretq_s32_u32(bm)));
      acc[c] = vaddq_s64(acc[c], vandq_s64(p_lo, bm_lo));
      acc[c] = vaddq_s64(acc[c], vandq_s64(p_hi, bm_hi));
    }
  }
  for (int c = 0; c < bands; ++c) sums[c] += vaddvq_s64(acc[c]);
  for (; k < n; ++k) {
    if (band[k] < 0) continue;
    if (((mag[k] >> t) & 1u) == 0) continue;
    sums[band[k]] += v[k];
  }
}

void fp16_diag_products(const int8_t* a, size_t a_stride, const int8_t* b,
                        size_t b_stride, size_t n, int16_t* diag,
                        size_t d_stride) {
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const int16x8_t a0 = vmovl_s8(vld1_s8(a + k));
    const int16x8_t a1 = vmovl_s8(vld1_s8(a + a_stride + k));
    const int16x8_t a2 = vmovl_s8(vld1_s8(a + 2 * a_stride + k));
    const int16x8_t b0 = vmovl_s8(vld1_s8(b + k));
    const int16x8_t b1 = vmovl_s8(vld1_s8(b + b_stride + k));
    const int16x8_t b2 = vmovl_s8(vld1_s8(b + 2 * b_stride + k));
    vst1q_s16(diag + k, vmulq_s16(a0, b0));
    vst1q_s16(diag + d_stride + k,
              vmlaq_s16(vmulq_s16(a0, b1), a1, b0));
    vst1q_s16(diag + 2 * d_stride + k,
              vmlaq_s16(vmlaq_s16(vmulq_s16(a0, b2), a1, b1), a2, b0));
    vst1q_s16(diag + 3 * d_stride + k,
              vmlaq_s16(vmulq_s16(a1, b2), a2, b1));
    vst1q_s16(diag + 4 * d_stride + k, vmulq_s16(a2, b2));
  }
  if (k < n) {
    const int8_t* a0 = a;
    const int8_t* a1 = a + a_stride;
    const int8_t* a2 = a + 2 * a_stride;
    const int8_t* b0 = b;
    const int8_t* b1 = b + b_stride;
    const int8_t* b2 = b + 2 * b_stride;
    for (; k < n; ++k) {
      const int16_t x0 = a0[k], x1 = a1[k], x2 = a2[k];
      const int16_t y0 = b0[k], y1 = b1[k], y2 = b2[k];
      diag[0 * d_stride + k] = static_cast<int16_t>(x0 * y0);
      diag[1 * d_stride + k] = static_cast<int16_t>(x0 * y1 + x1 * y0);
      diag[2 * d_stride + k] =
          static_cast<int16_t>(x0 * y2 + x1 * y1 + x2 * y0);
      diag[3 * d_stride + k] = static_cast<int16_t>(x1 * y2 + x2 * y1);
      diag[4 * d_stride + k] = static_cast<int16_t>(x2 * y2);
    }
  }
}

void diag_band_sums_planes_i32(const int16_t* d, const int32_t* band,
                               const int32_t* up, size_t stride, int planes,
                               size_t n, int bands, int64_t* sums) {
  int32x4_t acc[kMaxBands];
  for (int c = 0; c < bands; ++c) acc[c] = vdupq_n_s32(0);
  int64_t tail[kMaxBands] = {0};
  for (int s = 0; s < planes; ++s) {
    const size_t off = static_cast<size_t>(s) * stride;
    const int16_t* ds = d + off;
    const int32_t* bs = band + off;
    const int32_t* us = up + off;
    size_t k = 0;
    for (; k + 4 <= n; k += 4) {
      const int32x4_t x =
          vshlq_s32(vmovl_s16(vld1_s16(ds + k)), vld1q_s32(us + k));
      const int32x4_t bd = vld1q_s32(bs + k);
      for (int c = 0; c < bands; ++c) {
        const uint32x4_t m = vceqq_s32(bd, vdupq_n_s32(c));
        acc[c] = vaddq_s32(acc[c], vandq_s32(x, vreinterpretq_s32_u32(m)));
      }
    }
    for (; k < n; ++k) {
      if (bs[k] < 0) continue;
      tail[bs[k]] += static_cast<int32_t>(ds[k]) << us[k];
    }
  }
  for (int c = 0; c < bands; ++c) sums[c] = vaddvq_s32(acc[c]) + tail[c];
}

void diag_band_sums_planes_i64(const int16_t* d, const int32_t* band,
                               const int32_t* up, size_t stride, int planes,
                               size_t n, int bands, int64_t* sums) {
  int64x2_t acc[kMaxBands];
  for (int c = 0; c < bands; ++c) acc[c] = vdupq_n_s64(0);
  int64_t tail[kMaxBands] = {0};
  for (int s = 0; s < planes; ++s) {
    const size_t off = static_cast<size_t>(s) * stride;
    const int16_t* ds = d + off;
    const int32_t* bs = band + off;
    const int32_t* us = up + off;
    size_t k = 0;
    for (; k + 4 <= n; k += 4) {
      const int32x4_t d32 = vmovl_s16(vld1_s16(ds + k));
      const int32x4_t upv = vld1q_s32(us + k);
      const int64x2_t x_lo =
          vshlq_s64(vmovl_s32(vget_low_s32(d32)), vmovl_s32(vget_low_s32(upv)));
      const int64x2_t x_hi = vshlq_s64(vmovl_s32(vget_high_s32(d32)),
                                       vmovl_s32(vget_high_s32(upv)));
      const int32x4_t bd = vld1q_s32(bs + k);
      for (int c = 0; c < bands; ++c) {
        const uint32x4_t m = vceqq_s32(bd, vdupq_n_s32(c));
        const int64x2_t m_lo =
            vmovl_s32(vget_low_s32(vreinterpretq_s32_u32(m)));
        const int64x2_t m_hi =
            vmovl_s32(vget_high_s32(vreinterpretq_s32_u32(m)));
        acc[c] = vaddq_s64(acc[c], vandq_s64(x_lo, m_lo));
        acc[c] = vaddq_s64(acc[c], vandq_s64(x_hi, m_hi));
      }
    }
    for (; k < n; ++k) {
      if (bs[k] < 0) continue;
      tail[bs[k]] += static_cast<int64_t>(ds[k]) << us[k];
    }
  }
  for (int c = 0; c < bands; ++c) sums[c] = vaddvq_s64(acc[c]) + tail[c];
}

int64_t dot_i8(const int8_t* a, const int8_t* b, size_t n) {
  int64x2_t total = vdupq_n_s64(0);
  size_t k = 0;
  for (; k + 16 <= n; k += 16) {
    const int8x16_t va = vld1q_s8(a + k);
    const int8x16_t vb = vld1q_s8(b + k);
    int16x8_t p = vmull_s8(vget_low_s8(va), vget_low_s8(vb));
    p = vmlal_s8(p, vget_high_s8(va), vget_high_s8(vb));
    total = vaddq_s64(total, vmovl_s32(vget_low_s32(vpaddlq_s16(p))));
    total = vaddq_s64(total, vmovl_s32(vget_high_s32(vpaddlq_s16(p))));
  }
  int64_t s = vaddvq_s64(total);
  for (; k < n; ++k) {
    s += static_cast<int32_t>(a[k]) * static_cast<int32_t>(b[k]);
  }
  return s;
}

int64_t bit_masked_sum_i32(const int32_t* a, const int32_t* b, int t,
                           size_t n) {
  const int32x4_t lsh = vdupq_n_s32(31 - t);
  int64x2_t total = vdupq_n_s64(0);
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const int32x4_t bit = vshrq_n_s32(vshlq_s32(vld1q_s32(b + k), lsh), 31);
    const int32x4_t p = vandq_s32(vld1q_s32(a + k), bit);
    total = vaddq_s64(total, vpaddlq_s32(p));
  }
  int64_t s = vaddvq_s64(total);
  for (; k < n; ++k) {
    if ((b[k] >> t) & 1) s += a[k];
  }
  return s;
}

}  // namespace neon

const KernelTable* neon_kernel_table() {
  const KernelTable* sc = scalar_kernel_table();
  static const KernelTable t = {
      .sum_minmax_i32 = neon::sum_minmax_i32,
      .rsub_i32 = neon::rsub_i32,
      // Division-heavy setup kernels run once per op over small planes; the
      // scalar reference is fast enough and keeps this backend lean.
      .mask_and_band_i32 = sc->mask_and_band_i32,
      .serve_shifts_i32 = neon::serve_shifts_i32,
      .nibble_band_sums_i32 = neon::nibble_band_sums_i32,
      .nibble_band_sums_i64 = neon::nibble_band_sums_i64,
      .serial_lanes_i32 = neon::serial_lanes_i32,
      .shifted_lanes_i32 = neon::shifted_lanes_i32,
      .shifted_lanes_i64 = neon::shifted_lanes_i64,
      .serial_band_sums_i32 = neon::serial_band_sums_i32,
      .serial_band_sums_i64 = neon::serial_band_sums_i64,
      .fp16_diag_products = neon::fp16_diag_products,
      .diag_bands_i32 = sc->diag_bands_i32,
      .diag_band_sums_planes_i32 = neon::diag_band_sums_planes_i32,
      .diag_band_sums_planes_i64 = neon::diag_band_sums_planes_i64,
      // The fused whole-op kernels want 16-lane 16-bit registers; on NEON's
      // 128-bit vectors the per-stage kernels above already cover the win,
      // so these delegate to the (bit-identical) scalar references.
      .ehu_fused_i32 = sc->ehu_fused_i32,
      .nibble_fused3x3_i16 = sc->nibble_fused3x3_i16,
      .serial_fused_i16 = sc->serial_fused_i16,
      .dot_i8 = neon::dot_i8,
      .bit_masked_sum_i32 = neon::bit_masked_sum_i32,
  };
  return &t;
}

}  // namespace mpipu::simd

#else  // !(ARM NEON && AArch64)

#include "core/simd/kernels.h"

namespace mpipu::simd {
const KernelTable* neon_kernel_table() { return nullptr; }
}  // namespace mpipu::simd

#endif
