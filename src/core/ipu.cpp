#include "core/ipu.h"

#include <algorithm>
#include <cassert>

namespace mpipu {

Ipu::Ipu(const IpuConfig& cfg) : cfg_(cfg), acc_(cfg.accumulator) {
  assert(cfg_.n_inputs >= 1);
  assert(cfg_.adder_tree_width >= 2);
  // MC mode needs a positive safe precision (w >= 10); narrower windows can
  // only run single-cycle (they truncate even unshifted products).
  assert(!cfg_.multi_cycle || cfg_.safe_precision() >= 1);
}

void Ipu::reset_accumulator() {
  acc_.reset();
  int_acc_ = 0;
}

int Ipu::run_fp_iteration(std::span<const NibbleOperand> na,
                          std::span<const NibbleOperand> nb, int i, int j,
                          const EhuResult& ehu, int scale_bias) {
  const size_t n = na.size();
  const int w = cfg_.adder_tree_width;
  const int guard = cfg_.window_guard();  // w - 10
  const int sp = cfg_.safe_precision();   // w - 9

  // The iteration's contribution has lane-weight 2^(wi + wj) relative to the
  // signed-magnitude product, and the product pair with max_exp carries
  // value sm_a*sm_b * 2^(max_exp - 2*man_bits).
  const int wi = na[0].weight_exp[static_cast<size_t>(i)];
  const int wj = nb[0].weight_exp[static_cast<size_t>(j)];

  // The accumulator convention is value = mantissa * 2^(in_exp - frac_bits);
  // we report in_exp = max_exp so acc_exp tracks the paper's "accumulator
  // exponent".  The adder-tree output S (window-scaled by 2^-guard) then
  // needs a fixed re-scale of wi + wj - 2*man_bits - guard + frac_bits,
  // minus the band-base shift c*sp in MC mode.  Left re-scales are exact
  // (zero fill); right re-scales truncate -- the accumulator-input shifter.
  const int base_rescale =
      wi + wj - scale_bias - guard + acc_.config().frac_bits;

  const bool single_cycle = !cfg_.multi_cycle;
  const int bands = single_cycle ? 1 : ehu.mc_cycles;

  for (int c = 0; c < bands; ++c) {
    int128 tree_sum = 0;
    for (size_t k = 0; k < n; ++k) {
      if (ehu.masked[k]) continue;
      if (!single_cycle && ehu.band[k] != c) continue;
      const int32_t p = multiply_lane(na[k].v[static_cast<size_t>(i)],
                                      nb[k].v[static_cast<size_t>(j)]);
      // Local right shift within the w-bit window: full alignment in
      // single-cycle mode, band-relative remainder in MC mode.  Bits pushed
      // below the window LSB are truncated (arithmetic shift).
      const int local_shift =
          single_cycle ? std::min(ehu.align[k], w) : ehu.align[k] - c * sp;
      assert(local_shift >= 0);
      assert(single_cycle || local_shift < sp);  // Proposition 1 in MC mode.
      // Place the product at the top of the w-bit window (guard may be
      // negative for w < 10: even unshifted products then lose low bits).
      const int net_shift = guard - local_shift;
      tree_sum += net_shift >= 0 ? shl(p, net_shift) : asr(p, -net_shift);
    }
    const int rescale = base_rescale - (single_cycle ? 0 : c * sp);
    const int128 mantissa =
        rescale >= 0 ? shl(tree_sum, rescale) : asr(tree_sum, -rescale);
    acc_.add(mantissa, ehu.max_exp);
  }

  // Cycle accounting: the paper's serve loop burns a cycle per alignment
  // band; the skip-empty ablation (a smarter EHU) only pays for occupied
  // bands.  Band occupancy is an EHU-level notion (exponent based), so a
  // band of all-zero magnitudes still costs its cycle in both modes.
  const int cycles_used = single_cycle
                              ? 1
                              : (cfg_.skip_empty_bands ? ehu.mc_cycles_skip_empty
                                                       : ehu.mc_cycles);
  if (cycles_used > 1) ++stats_.multi_cycle_iterations;
  return cycles_used;
}

template <typename TreeInt>
int Ipu::run_prepared_fp16(const PreparedFp16View& a, const PreparedFp16View& b) {
  const size_t n = a.n;
  constexpr FpFormat F = kFp16Format;
  constexpr int kn = fp_nibble_count(F);
  constexpr int z = fp_pad_bits(F);

  EhuOptions eopts;
  eopts.software_precision = cfg_.software_precision;
  eopts.safe_precision = std::max(cfg_.safe_precision(), 1);
  eopts.skip_empty_bands = cfg_.skip_empty_bands;
  run_ehu(std::span<const int32_t>(a.exp, n), std::span<const int32_t>(b.exp, n),
          eopts, ehu_);

  const int sp = cfg_.safe_precision();
  const bool single_cycle = !cfg_.multi_cycle;
  const int bands = single_cycle ? 1 : ehu_.mc_cycles;
  sched_.build(ehu_, bands, single_cycle, cfg_.window_guard(), sp,
               cfg_.adder_tree_width);

  // Same per-iteration cost rule as run_fp_iteration: the serve loop burns
  // a cycle per band (occupied bands only under the skip-empty ablation).
  const int cycles_per_iter =
      single_cycle ? 1
                   : (cfg_.skip_empty_bands ? ehu_.mc_cycles_skip_empty
                                            : ehu_.mc_cycles);
  const int frac_bits = acc_.config().frac_bits;
  const int guard = cfg_.window_guard();

  int cycles = 0;
  for (int i = 0; i < kn; ++i) {
    for (int j = 0; j < kn; ++j) {
      if (cfg_.skip_zero_iterations) {
        bool all_zero = true;
        for (int32_t k : sched_.order) {
          if (a.nib[static_cast<size_t>(k) * kn + static_cast<size_t>(i)] != 0 &&
              b.nib[static_cast<size_t>(k) * kn + static_cast<size_t>(j)] != 0) {
            all_zero = false;
            break;
          }
        }
        if (all_zero) {
          ++stats_.skipped_iterations;
          continue;
        }
      }
      const int wi = 4 * i - z;
      const int wj = 4 * j - z;
      const int base_rescale = wi + wj - 2 * F.man_bits - guard + frac_bits;
      for (int c = 0; c < bands; ++c) {
        TreeInt tree_sum = 0;
        const int32_t* lane = sched_.order.data() + sched_.begin[static_cast<size_t>(c)];
        const int32_t* lane_end = sched_.order.data() + sched_.begin[static_cast<size_t>(c) + 1];
        for (; lane != lane_end; ++lane) {
          const auto k = static_cast<size_t>(*lane);
          const int32_t p =
              static_cast<int32_t>(a.nib[k * kn + static_cast<size_t>(i)]) *
              static_cast<int32_t>(b.nib[k * kn + static_cast<size_t>(j)]);
          if (p == 0) continue;  // shifting and adding zero is a no-op
          const int s = sched_.net_shift[k];
          // C++20 shifts: << on a negative TreeInt and >> arithmetic are
          // both well defined and match bits.h's shl/asr exactly.
          tree_sum += s >= 0 ? static_cast<TreeInt>(p) << s
                             : static_cast<TreeInt>(p >> -s);
        }
        const int rescale = base_rescale - (single_cycle ? 0 : c * sp);
        const auto tree128 = static_cast<int128>(tree_sum);
        acc_.add(rescale >= 0 ? shl(tree128, rescale) : asr(tree128, -rescale),
                 ehu_.max_exp);
      }
      cycles += cycles_per_iter;
      if (cycles_per_iter > 1) ++stats_.multi_cycle_iterations;
    }
  }

  ++stats_.fp_ops;
  stats_.nibble_iterations += kn * kn;
  stats_.cycles += cycles;
  for (size_t k = 0; k < n; ++k) {
    if (ehu_.masked[k]) {
      ++stats_.masked_products;
    } else {
      stats_.max_alignment_seen =
          std::max(stats_.max_alignment_seen, ehu_.align[k]);
    }
  }
  return cycles;
}

int Ipu::fp16_accumulate_prepared(const PreparedFp16View& a,
                                  const PreparedFp16View& b) {
  assert(a.n == b.n);
  assert(static_cast<int>(a.n) <= cfg_.n_inputs);
  // 9-bit lane products shifted up to window_guard and summed over n lanes:
  // stay in int64 whenever that bound fits, spill to int128 otherwise
  // (identical results either way; the adder tree is exact integer math).
  const int tree_bits =
      std::max(cfg_.window_guard(), 0) + 9 + ceil_log2(std::max(cfg_.n_inputs, 1)) + 1;
  return tree_bits <= 62 ? run_prepared_fp16<int64_t>(a, b)
                         : run_prepared_fp16<int128>(a, b);
}

int Ipu::int_accumulate_prepared(const PreparedIntView& a,
                                 const PreparedIntView& b, int a_bits,
                                 int b_bits) {
  assert(a.n == b.n);
  assert(static_cast<int>(a.n) <= cfg_.n_inputs);
  const size_t n = a.n;
  const int ka = int_nibble_count(a_bits);
  const int kb = int_nibble_count(b_bits);
  assert(a.lanes == ka && b.lanes == kb);
  const auto ska = static_cast<size_t>(ka);
  const auto skb = static_cast<size_t>(kb);

  // Mirrors int_accumulate: zero local shift, exact adder tree, 4*(i+j)
  // significance shift at the accumulator -- minus the per-op decomposition.
  int cycles = 0;
  for (int i = 0; i < ka; ++i) {
    for (int j = 0; j < kb; ++j) {
      if (cfg_.skip_zero_iterations) {
        bool all_zero = true;
        for (size_t k = 0; k < n && all_zero; ++k) {
          all_zero = a.nib[k * ska + static_cast<size_t>(i)] == 0 ||
                     b.nib[k * skb + static_cast<size_t>(j)] == 0;
        }
        if (all_zero) {
          ++stats_.skipped_iterations;
          continue;
        }
      }
      int64_t tree_sum = 0;
      for (size_t k = 0; k < n; ++k) {
        tree_sum += multiply_lane(a.nib[k * ska + static_cast<size_t>(i)],
                                  b.nib[k * skb + static_cast<size_t>(j)]);
      }
      int_acc_ += tree_sum << (4 * (i + j));
      ++cycles;
    }
  }

  ++stats_.int_ops;
  stats_.nibble_iterations += ka * kb;
  stats_.cycles += cycles;
  return cycles;
}

int Ipu::int_accumulate(std::span<const int32_t> a, std::span<const int32_t> b,
                        int a_bits, int b_bits, bool a_unsigned, bool b_unsigned) {
  assert(a.size() == b.size());
  assert(static_cast<int>(a.size()) <= cfg_.n_inputs);
  const size_t n = a.size();

  nib_a_.resize(n);
  nib_b_.resize(n);
  for (size_t k = 0; k < n; ++k) {
    nib_a_[k] = a_unsigned ? decompose_int_unsigned(a[k], a_bits)
                           : decompose_int(a[k], a_bits);
    nib_b_[k] = b_unsigned ? decompose_int_unsigned(b[k], b_bits)
                           : decompose_int(b[k], b_bits);
  }
  const int ka = int_nibble_count(a_bits);
  const int kb = int_nibble_count(b_bits);

  // INT mode: zero local shift, exact adder tree, significance shift of
  // 4*(i+j) applied at the accumulator (always a left placement into the
  // wide register, so no bits are ever lost).
  int cycles = 0;
  for (int i = 0; i < ka; ++i) {
    for (int j = 0; j < kb; ++j) {
      if (cfg_.skip_zero_iterations) {
        bool all_zero = true;
        for (size_t k = 0; k < n && all_zero; ++k) {
          all_zero = nib_a_[k].v[static_cast<size_t>(i)] == 0 ||
                     nib_b_[k].v[static_cast<size_t>(j)] == 0;
        }
        if (all_zero) {
          ++stats_.skipped_iterations;
          continue;
        }
      }
      int64_t tree_sum = 0;
      for (size_t k = 0; k < n; ++k) {
        tree_sum += multiply_lane(nib_a_[k].v[static_cast<size_t>(i)],
                                  nib_b_[k].v[static_cast<size_t>(j)]);
      }
      int_acc_ += tree_sum << (4 * (i + j));
      ++cycles;
    }
  }

  ++stats_.int_ops;
  stats_.nibble_iterations += ka * kb;
  stats_.cycles += cycles;
  return cycles;
}

}  // namespace mpipu
