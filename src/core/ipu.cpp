#include "core/ipu.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "core/simd/simd.h"

namespace mpipu {

Ipu::Ipu(const IpuConfig& cfg) : cfg_(cfg), acc_(cfg.accumulator) {
  assert(cfg_.n_inputs >= 1);
  assert(cfg_.adder_tree_width >= 2);
  // MC mode needs a positive safe precision (w >= 10); narrower windows can
  // only run single-cycle (they truncate even unshifted products).
  assert(!cfg_.multi_cycle || cfg_.safe_precision() >= 1);
}

void Ipu::reset_accumulator() {
  acc_.reset();
  int_acc_ = 0;
}

int Ipu::run_fp_iteration(std::span<const NibbleOperand> na,
                          std::span<const NibbleOperand> nb, int i, int j,
                          const EhuResult& ehu, int scale_bias) {
  const size_t n = na.size();
  const int w = cfg_.adder_tree_width;
  const int guard = cfg_.window_guard();  // w - 10
  const int sp = cfg_.safe_precision();   // w - 9

  // The iteration's contribution has lane-weight 2^(wi + wj) relative to the
  // signed-magnitude product, and the product pair with max_exp carries
  // value sm_a*sm_b * 2^(max_exp - 2*man_bits).
  const int wi = na[0].weight_exp[static_cast<size_t>(i)];
  const int wj = nb[0].weight_exp[static_cast<size_t>(j)];

  // The accumulator convention is value = mantissa * 2^(in_exp - frac_bits);
  // we report in_exp = max_exp so acc_exp tracks the paper's "accumulator
  // exponent".  The adder-tree output S (window-scaled by 2^-guard) then
  // needs a fixed re-scale of wi + wj - 2*man_bits - guard + frac_bits,
  // minus the band-base shift c*sp in MC mode.  Left re-scales are exact
  // (zero fill); right re-scales truncate -- the accumulator-input shifter.
  const int base_rescale =
      wi + wj - scale_bias - guard + acc_.config().frac_bits;

  const bool single_cycle = !cfg_.multi_cycle;
  const int bands = single_cycle ? 1 : ehu.mc_cycles;

  for (int c = 0; c < bands; ++c) {
    int128 tree_sum = 0;
    for (size_t k = 0; k < n; ++k) {
      if (ehu.masked[k]) continue;
      if (!single_cycle && ehu.band[k] != c) continue;
      const int32_t p = multiply_lane(na[k].v[static_cast<size_t>(i)],
                                      nb[k].v[static_cast<size_t>(j)]);
      // Local right shift within the w-bit window: full alignment in
      // single-cycle mode, band-relative remainder in MC mode.  Bits pushed
      // below the window LSB are truncated (arithmetic shift).
      const int local_shift =
          single_cycle ? std::min(ehu.align[k], w) : ehu.align[k] - c * sp;
      assert(local_shift >= 0);
      assert(single_cycle || local_shift < sp);  // Proposition 1 in MC mode.
      // Place the product at the top of the w-bit window (guard may be
      // negative for w < 10: even unshifted products then lose low bits).
      const int net_shift = guard - local_shift;
      tree_sum += net_shift >= 0 ? shl(p, net_shift) : asr(p, -net_shift);
    }
    const int rescale = base_rescale - (single_cycle ? 0 : c * sp);
    const int128 mantissa =
        rescale >= 0 ? shl(tree_sum, rescale) : asr(tree_sum, -rescale);
    acc_.add(mantissa, ehu.max_exp);
  }

  // Cycle accounting: the paper's serve loop burns a cycle per alignment
  // band; the skip-empty ablation (a smarter EHU) only pays for occupied
  // bands.  Band occupancy is an EHU-level notion (exponent based), so a
  // band of all-zero magnitudes still costs its cycle in both modes.
  const int cycles_used = single_cycle
                              ? 1
                              : (cfg_.skip_empty_bands ? ehu.mc_cycles_skip_empty
                                                       : ehu.mc_cycles);
  if (cycles_used > 1) ++stats_.multi_cycle_iterations;
  return cycles_used;
}

template <typename TreeInt>
int Ipu::run_prepared_fp16(const PreparedFp16View& a, const PreparedFp16View& b) {
  const size_t n = a.n;
  constexpr FpFormat F = kFp16Format;
  constexpr int kn = fp_nibble_count(F);
  constexpr int z = fp_pad_bits(F);

  EhuOptions eopts;
  eopts.software_precision = cfg_.software_precision;
  eopts.safe_precision = std::max(cfg_.safe_precision(), 1);
  eopts.skip_empty_bands = cfg_.skip_empty_bands;
  run_ehu(std::span<const int32_t>(a.exp, n), std::span<const int32_t>(b.exp, n),
          eopts, ehu_);

  const int sp = cfg_.safe_precision();
  const bool single_cycle = !cfg_.multi_cycle;
  const int bands = single_cycle ? 1 : ehu_.mc_cycles;
  sched_.build(ehu_, bands, single_cycle, cfg_.window_guard(), sp,
               cfg_.adder_tree_width);

  // Same per-iteration cost rule as run_fp_iteration: the serve loop burns
  // a cycle per band (occupied bands only under the skip-empty ablation).
  const int cycles_per_iter =
      single_cycle ? 1
                   : (cfg_.skip_empty_bands ? ehu_.mc_cycles_skip_empty
                                            : ehu_.mc_cycles);
  const int frac_bits = acc_.config().frac_bits;
  const int guard = cfg_.window_guard();

  int cycles = 0;
  for (int i = 0; i < kn; ++i) {
    for (int j = 0; j < kn; ++j) {
      const int8_t* an = a.nib_plane(i);
      const int8_t* bn = b.nib_plane(j);
      if (cfg_.skip_zero_iterations) {
        bool all_zero = true;
        for (int32_t k : sched_.order) {
          if (an[static_cast<size_t>(k)] != 0 && bn[static_cast<size_t>(k)] != 0) {
            all_zero = false;
            break;
          }
        }
        if (all_zero) {
          ++stats_.skipped_iterations;
          continue;
        }
      }
      const int wi = 4 * i - z;
      const int wj = 4 * j - z;
      const int base_rescale = wi + wj - 2 * F.man_bits - guard + frac_bits;
      for (int c = 0; c < bands; ++c) {
        TreeInt tree_sum = 0;
        const int32_t* lane = sched_.order.data() + sched_.begin[static_cast<size_t>(c)];
        const int32_t* lane_end = sched_.order.data() + sched_.begin[static_cast<size_t>(c) + 1];
        for (; lane != lane_end; ++lane) {
          const auto k = static_cast<size_t>(*lane);
          const int32_t p =
              static_cast<int32_t>(an[k]) * static_cast<int32_t>(bn[k]);
          if (p == 0) continue;  // shifting and adding zero is a no-op
          const int s = sched_.net_shift[k];
          // C++20 shifts: << on a negative TreeInt and >> arithmetic are
          // both well defined and match bits.h's shl/asr exactly.
          tree_sum += s >= 0 ? static_cast<TreeInt>(p) << s
                             : static_cast<TreeInt>(p >> -s);
        }
        const int rescale = base_rescale - (single_cycle ? 0 : c * sp);
        const auto tree128 = static_cast<int128>(tree_sum);
        acc_.add(rescale >= 0 ? shl(tree128, rescale) : asr(tree128, -rescale),
                 ehu_.max_exp);
      }
      cycles += cycles_per_iter;
      if (cycles_per_iter > 1) ++stats_.multi_cycle_iterations;
    }
  }

  ++stats_.fp_ops;
  stats_.nibble_iterations += kn * kn;
  stats_.cycles += cycles;
  for (size_t k = 0; k < n; ++k) {
    if (ehu_.masked[k]) {
      ++stats_.masked_products;
    } else {
      stats_.max_alignment_seen =
          std::max(stats_.max_alignment_seen, ehu_.align[k]);
    }
  }
  return cycles;
}

template <bool kNarrow>
int Ipu::run_prepared_fp16_simd(const PreparedFp16View& a,
                                const PreparedFp16View& b) {
  const size_t n = a.n;
  constexpr FpFormat F = kFp16Format;
  constexpr int kn = fp_nibble_count(F);
  constexpr int z = fp_pad_bits(F);
  const simd::KernelTable& K = simd::kernels();

  EhuOptions eopts;
  eopts.software_precision = cfg_.software_precision;
  eopts.safe_precision = std::max(cfg_.safe_precision(), 1);
  eopts.skip_empty_bands = cfg_.skip_empty_bands;
  run_ehu(std::span<const int32_t>(a.exp, n), std::span<const int32_t>(b.exp, n),
          eopts, ehu_);

  const int sp = cfg_.safe_precision();
  const bool single_cycle = !cfg_.multi_cycle;
  const int bands = single_cycle ? 1 : ehu_.mc_cycles;
  // One vector accumulator per band; wider alignment spreads take the
  // scalar oracle (same results -- the EHU re-run lands in the same
  // scratch).
  if (bands > simd::kMaxBands) return run_prepared_fp16<int64_t>(a, b);

  serve_band_.resize(n);
  up_.resize(n);
  down_.resize(n);
  K.serve_shifts_i32(ehu_.align.data(), ehu_.band.data(), n,
                     cfg_.window_guard(), sp, single_cycle ? 1 : 0,
                     cfg_.adder_tree_width, serve_band_.data(), up_.data(),
                     down_.data());

  const int cycles_per_iter =
      single_cycle ? 1
                   : (cfg_.skip_empty_bands ? ehu_.mc_cycles_skip_empty
                                            : ehu_.mc_cycles);
  const int frac_bits = acc_.config().frac_bits;
  const int guard = cfg_.window_guard();

  int cycles = 0;
  for (int i = 0; i < kn; ++i) {
    for (int j = 0; j < kn; ++j) {
      const int8_t* an = a.nib_plane(i);
      const int8_t* bn = b.nib_plane(j);
      if (cfg_.skip_zero_iterations) {
        bool all_zero = true;
        for (size_t k = 0; k < n; ++k) {
          if (serve_band_[k] >= 0 && an[k] != 0 && bn[k] != 0) {
            all_zero = false;
            break;
          }
        }
        if (all_zero) {
          ++stats_.skipped_iterations;
          continue;
        }
      }
      int64_t sums[simd::kMaxBands] = {0};
      if constexpr (kNarrow) {
        K.nibble_band_sums_i32(an, bn, serve_band_.data(), up_.data(),
                               down_.data(), n, bands, sums);
      } else {
        K.nibble_band_sums_i64(an, bn, serve_band_.data(), up_.data(),
                               down_.data(), n, bands, sums);
      }
      const int wi = 4 * i - z;
      const int wj = 4 * j - z;
      const int base_rescale = wi + wj - 2 * F.man_bits - guard + frac_bits;
      const bool fast = acc_.fast64_ok(kNarrow ? 31 : 62, base_rescale);
      for (int c = 0; c < bands; ++c) {
        const int rescale = base_rescale - (single_cycle ? 0 : c * sp);
        if (fast) {
          acc_.add_tree64(sums[c], rescale, ehu_.max_exp);
          continue;
        }
        const auto tree128 = static_cast<int128>(sums[c]);
        acc_.add(rescale >= 0 ? shl(tree128, rescale) : asr(tree128, -rescale),
                 ehu_.max_exp);
      }
      cycles += cycles_per_iter;
      if (cycles_per_iter > 1) ++stats_.multi_cycle_iterations;
    }
  }

  ++stats_.fp_ops;
  stats_.nibble_iterations += kn * kn;
  stats_.cycles += cycles;
  for (size_t k = 0; k < n; ++k) {
    if (ehu_.masked[k]) {
      ++stats_.masked_products;
    } else {
      stats_.max_alignment_seen =
          std::max(stats_.max_alignment_seen, ehu_.align[k]);
    }
  }
  return cycles;
}

int Ipu::run_prepared_fp16_fused(const PreparedFp16View& a,
                                 const PreparedFp16View& b) {
  const size_t n = a.n;
  constexpr FpFormat F = kFp16Format;
  static_assert(fp_nibble_count(F) == 3);  // the fused kernel is 3x3
  constexpr int z = fp_pad_bits(F);
  const simd::KernelTable& K = simd::kernels();

  const int sp = cfg_.safe_precision();
  const int guard = cfg_.window_guard();

  falign_.resize(simd::kFusedLanes);
  fband_.resize(simd::kFusedLanes);
  int32_t max_exp, max_band, n_masked, max_align;
  uint32_t occ;
  if (!K.ehu_fused_i32(a.exp, b.exp, n, cfg_.software_precision,
                       std::max(sp, 1), falign_.data(), fband_.data(), &max_exp,
                       &occ, &max_band, &n_masked, &max_align)) {
    // Alignment spread or software precision past the magic-divide bound:
    // take the scalar oracle (which re-runs the EHU into its own scratch).
    return run_prepared_fp16<int64_t>(a, b);
  }
  const int bands = std::max(max_band, 0) + 1;
  if (bands > simd::kMaxBands) return run_prepared_fp16<int64_t>(a, b);

  // Serve planes padded through kFusedLanes (band -1, shifts 0) so the
  // fused band-sum kernel can run whole 16-lane registers.
  for (size_t k = n; k < simd::kFusedLanes; ++k) {
    falign_[k] = 0;
    fband_[k] = -1;
  }
  serve_band_.resize(simd::kFusedLanes);
  up_.resize(simd::kFusedLanes);
  down_.resize(simd::kFusedLanes);
  K.serve_shifts_i32(falign_.data(), fband_.data(), simd::kFusedLanes, guard,
                     sp, 0, cfg_.adder_tree_width, serve_band_.data(),
                     up_.data(), down_.data());

  int64_t sums[9 * simd::kMaxBands];
  uint32_t nz = 0;
  K.nibble_fused3x3_i16(a.nib, a.nib_stride, b.nib, b.nib_stride,
                        serve_band_.data(), up_.data(), n, bands, sums, &nz);

  const int cycles_per_iter =
      cfg_.skip_empty_bands ? (occ ? std::popcount(occ) : 1) : bands;
  const int frac_bits = acc_.config().frac_bits;
  int cycles = 0;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      const int it = i * 3 + j;
      if (cfg_.skip_zero_iterations && ((nz >> it) & 1u) == 0) {
        ++stats_.skipped_iterations;
        continue;
      }
      const int base_rescale =
          (4 * i - z) + (4 * j - z) - 2 * F.man_bits - guard + frac_bits;
      const bool fast = acc_.fast64_ok(31, base_rescale);
      const int64_t* s = sums + static_cast<size_t>(it) * simd::kMaxBands;
      for (int c = 0; c < bands; ++c) {
        const int rescale = base_rescale - c * sp;
        if (fast) {
          acc_.add_tree64(s[c], rescale, max_exp);
          continue;
        }
        const auto tree128 = static_cast<int128>(s[c]);
        acc_.add(rescale >= 0 ? shl(tree128, rescale) : asr(tree128, -rescale),
                 max_exp);
      }
      cycles += cycles_per_iter;
      if (cycles_per_iter > 1) ++stats_.multi_cycle_iterations;
    }
  }

  ++stats_.fp_ops;
  stats_.nibble_iterations += 9;
  stats_.cycles += cycles;
  stats_.masked_products += n_masked;
  if (max_align > stats_.max_alignment_seen) {
    stats_.max_alignment_seen = max_align;
  }
  return cycles;
}

int Ipu::fp16_accumulate_prepared(const PreparedFp16View& a,
                                  const PreparedFp16View& b) {
  assert(a.n == b.n);
  assert(static_cast<int>(a.n) <= cfg_.n_inputs);
  // 9-bit lane products shifted up to window_guard and summed over n lanes:
  // stay in int64 whenever that bound fits, spill to int128 otherwise
  // (identical results either way; the adder tree is exact integer math).
  const int tree_bits =
      std::max(cfg_.window_guard(), 0) + 9 + ceil_log2(std::max(cfg_.n_inputs, 1)) + 1;
  if (simd::active_backend() != simd::Backend::kScalar) {
    // Whole-op fused kernels: MC mode guarantees up-only window shifts of
    // at most guard, and guard <= 7 keeps every shifted product in int16
    // (|a*b| <= 225, 225 << 7 < 2^15); 16 lanes of those stay far inside
    // int32, so the madd-based band sums are exact.
    if (cfg_.multi_cycle && guard_in_fused_range() && a.n >= 1 &&
        a.n <= simd::kFusedLanes) {
      return run_prepared_fp16_fused(a, b);
    }
    // Any subset of the lane products is bounded by the same tree bound
    // (sum of absolute values), so the per-band vector partial sums stay
    // exact in int32 lanes whenever the bound fits 31 bits.
    if (tree_bits <= 31) return run_prepared_fp16_simd<true>(a, b);
    if (tree_bits <= 62) return run_prepared_fp16_simd<false>(a, b);
  }
  return tree_bits <= 62 ? run_prepared_fp16<int64_t>(a, b)
                         : run_prepared_fp16<int128>(a, b);
}

int Ipu::int_accumulate_prepared(const PreparedIntView& a,
                                 const PreparedIntView& b, int a_bits,
                                 int b_bits) {
  assert(a.n == b.n);
  assert(static_cast<int>(a.n) <= cfg_.n_inputs);
  const size_t n = a.n;
  const int ka = int_nibble_count(a_bits);
  const int kb = int_nibble_count(b_bits);
  assert(a.lanes == ka && b.lanes == kb);
  const bool use_simd = simd::active_backend() != simd::Backend::kScalar;
  const simd::KernelTable& K = simd::kernels();

  // Mirrors int_accumulate: zero local shift, exact adder tree, 4*(i+j)
  // significance shift at the accumulator -- minus the per-op decomposition.
  int cycles = 0;
  for (int i = 0; i < ka; ++i) {
    for (int j = 0; j < kb; ++j) {
      const int8_t* an = a.nib_plane(i);
      const int8_t* bn = b.nib_plane(j);
      if (cfg_.skip_zero_iterations) {
        bool all_zero = true;
        for (size_t k = 0; k < n && all_zero; ++k) {
          all_zero = an[k] == 0 || bn[k] == 0;
        }
        if (all_zero) {
          ++stats_.skipped_iterations;
          continue;
        }
      }
      int64_t tree_sum;
      if (use_simd) {
        tree_sum = K.dot_i8(an, bn, n);
      } else {
        tree_sum = 0;
        for (size_t k = 0; k < n; ++k) {
          tree_sum += multiply_lane(an[k], bn[k]);
        }
      }
      int_acc_ += tree_sum << (4 * (i + j));
      ++cycles;
    }
  }

  ++stats_.int_ops;
  stats_.nibble_iterations += ka * kb;
  stats_.cycles += cycles;
  return cycles;
}

int Ipu::int_accumulate(std::span<const int32_t> a, std::span<const int32_t> b,
                        int a_bits, int b_bits, bool a_unsigned, bool b_unsigned) {
  assert(a.size() == b.size());
  assert(static_cast<int>(a.size()) <= cfg_.n_inputs);
  const size_t n = a.size();

  nib_a_.resize(n);
  nib_b_.resize(n);
  for (size_t k = 0; k < n; ++k) {
    nib_a_[k] = a_unsigned ? decompose_int_unsigned(a[k], a_bits)
                           : decompose_int(a[k], a_bits);
    nib_b_[k] = b_unsigned ? decompose_int_unsigned(b[k], b_bits)
                           : decompose_int(b[k], b_bits);
  }
  const int ka = int_nibble_count(a_bits);
  const int kb = int_nibble_count(b_bits);

  // INT mode: zero local shift, exact adder tree, significance shift of
  // 4*(i+j) applied at the accumulator (always a left placement into the
  // wide register, so no bits are ever lost).
  int cycles = 0;
  for (int i = 0; i < ka; ++i) {
    for (int j = 0; j < kb; ++j) {
      if (cfg_.skip_zero_iterations) {
        bool all_zero = true;
        for (size_t k = 0; k < n && all_zero; ++k) {
          all_zero = nib_a_[k].v[static_cast<size_t>(i)] == 0 ||
                     nib_b_[k].v[static_cast<size_t>(j)] == 0;
        }
        if (all_zero) {
          ++stats_.skipped_iterations;
          continue;
        }
      }
      int64_t tree_sum = 0;
      for (size_t k = 0; k < n; ++k) {
        tree_sum += multiply_lane(nib_a_[k].v[static_cast<size_t>(i)],
                                  nib_b_[k].v[static_cast<size_t>(j)]);
      }
      int_acc_ += tree_sum << (4 * (i + j));
      ++cycles;
    }
  }

  ++stats_.int_ops;
  stats_.nibble_iterations += ka * kb;
  stats_.cycles += cycles;
  return cycles;
}

}  // namespace mpipu
