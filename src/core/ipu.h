// Mixed-precision inner product unit -- paper Sections 2 and 3.
//
// `Ipu` is a bit-accurate model of the proposed datapath (paper Fig. 1):
// an array of n 5b x 5b signed multipliers, per-multiplier local right-shift
// units (shift-and-truncate up to w bits), a w-bit adder tree, and the
// non-normalized accumulator of src/core/accumulator.h.  Wider operands are
// realized temporally as nibble iterations (src/core/nibble.h); FP alignment
// amounts come from the EHU (src/core/ehu.h).
//
// Two alignment regimes are modeled:
//
//  * Single-cycle IPU(w): every product is locally shifted by its full
//    alignment within the w-bit window; bits shifted past the window LSB are
//    truncated (two's complement arithmetic shift, i.e. floor).  The
//    effective "IPU precision" of Section 3.1 is w.  One cycle per nibble
//    iteration, always.
//
//  * Multi-cycle MC-IPU(w) (Section 3.2): products are partitioned by the
//    EHU into alignment bands of width sp = w - 9 (the safe precision of
//    Proposition 1).  Band c is served in cycle c: its products are locally
//    shifted by (alignment - c*sp) < sp -- which Proposition 1 guarantees is
//    exact -- and the band-base shift c*sp is applied to the adder-tree
//    output on its way into the accumulator, where the only loss is the
//    architectural truncation below the accumulator LSB.  A nibble iteration
//    therefore costs floor(d_max / sp) + 1 cycles.
//
// In both regimes the EHU masks products whose alignment exceeds the
// *software precision* (16 for FP16 accumulation, 28 for FP32 accumulation;
// Section 3.1) -- such products cannot affect the bits the accumulator keeps.
//
// INT mode (Section 2.1) runs the same multipliers and adder tree with zero
// local shift and significance shifts of 4*(i+j) at the accumulator; it is
// exact by construction and costs Ka*Kb single-cycle nibble iterations.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bits.h"
#include "common/fixed_point.h"
#include "core/accumulator.h"
#include "core/band_schedule.h"
#include "core/ehu.h"
#include "core/nibble.h"
#include "core/prepared.h"
#include "core/reference.h"
#include "softfloat/softfloat.h"

namespace mpipu {

struct IpuConfig {
  /// Number of multiplier lanes n (paper: 8 for small tiles, 16 for big).
  int n_inputs = 16;
  /// Adder tree / local shifter precision w ("IPU precision").
  int adder_tree_width = 28;
  /// Software accuracy requirement: maximum alignment that must be honored
  /// (16 for FP16 accumulation, 28 for FP32 accumulation; Section 3.1).
  int software_precision = 28;
  /// MC-IPU when true; single-cycle truncating IPU(w) when false.
  bool multi_cycle = true;
  /// Ablation: let the EHU serve loop skip empty alignment bands.
  bool skip_empty_bands = false;
  /// Sparse extension (the paper's future-work direction, cf. Pragmatic /
  /// Bit-Tactical): dynamically skip nibble iterations whose lane operands
  /// are all zero on one side.  Changes cycles, never values.
  bool skip_zero_iterations = false;
  AccumulatorConfig accumulator{};

  /// Proposition 1: alignments below w - 9 lose no bits in the local shift.
  int safe_precision() const { return adder_tree_width - 9; }
  /// Guard placement: an unshifted 9-bit lane product occupies the top of
  /// the w-bit window, i.e. is pre-shifted left by w - 10.
  int window_guard() const { return adder_tree_width - 10; }
};

/// Running statistics over everything executed on one Ipu instance.
struct IpuStats {
  int64_t fp_ops = 0;                ///< FP inner-product operations.
  int64_t int_ops = 0;               ///< INT inner-product operations.
  int64_t nibble_iterations = 0;     ///< Total nibble iterations.
  int64_t cycles = 0;                ///< Total datapath cycles.
  int64_t masked_products = 0;       ///< Products dropped by EHU stage 4.
  int64_t multi_cycle_iterations = 0;///< Iterations needing > 1 cycle.
  int64_t skipped_iterations = 0;    ///< Zero-nibble iterations skipped.
  int max_alignment_seen = 0;        ///< Largest unmasked alignment.
};

class Ipu {
 public:
  explicit Ipu(const IpuConfig& cfg);

  const IpuConfig& config() const { return cfg_; }
  const IpuStats& stats() const { return stats_; }

  /// Clear the accumulator (new output pixel); stats persist.
  void reset_accumulator();

  /// Accumulate one FP inner product a.b into the accumulator.
  /// Returns the number of datapath cycles consumed.
  template <FpFormat F>
  int fp_accumulate(std::span<const Soft<F>> a, std::span<const Soft<F>> b);

  /// Prepared-operand fast path (core/prepared.h): operands were decoded
  /// and nibble-decomposed once, per tensor; per op only the EHU and the
  /// serve loop run, on reused scratch.  Bit- and cycle-identical to
  /// fp_accumulate<kFp16Format> over the same values.
  int fp16_accumulate_prepared(const PreparedFp16View& a,
                               const PreparedFp16View& b);

  /// Prepared INT fast path: radix-16 digit planes were packed once, per
  /// tensor.  Bit- and cycle-identical to int_accumulate over the same
  /// values (signed operands; unsigned encodings prepare with
  /// PreparedInt::assign(..., is_unsigned=true)).
  int int_accumulate_prepared(const PreparedIntView& a,
                              const PreparedIntView& b, int a_bits,
                              int b_bits);

  /// Accumulate one INT inner product; operands are already-quantized signed
  /// values that fit (a_bits, b_bits) two's complement (pass is_unsigned for
  /// unsigned encodings, which occupy ceil(bits/4) unsigned lanes).
  /// Returns cycles consumed (= nibble-iteration count).
  int int_accumulate(std::span<const int32_t> a, std::span<const int32_t> b,
                     int a_bits, int b_bits, bool a_unsigned = false,
                     bool b_unsigned = false);

  /// Hybrid mode (Appendix B): FP operand times quantized-integer operand.
  /// The integer operand behaves like an FP value with exponent 0 and a
  /// b_bits-wide magnitude; the result accumulates sum(a_i * q_i) exactly
  /// like FP mode (the caller applies the quantization scale afterwards).
  /// Costs fp_nibbles(F) x int_nibbles(b_bits) iterations, with the usual
  /// MC-IPU alignment cycling.
  template <FpFormat F>
  int fp_int_accumulate(std::span<const Soft<F>> a, std::span<const int32_t> b,
                        int b_bits, bool b_unsigned = false);

  /// Read the FP accumulator rounded (RNE) to the destination format.
  template <FpFormat Out>
  Soft<Out> read_fp() const {
    return Soft<Out>::round_from_fixed(acc_.value());
  }
  /// Raw non-normalized accumulator value (exact view of kept bits).
  FixedPoint read_raw() const { return acc_.value(); }
  /// INT-mode accumulator value.
  int64_t read_int() const { return int_acc_; }
  bool accumulator_overflowed() const { return acc_.overflowed(); }

 private:
  /// One nibble iteration (i, j) of an FP(-or-hybrid) op: multiply, locally
  /// shift, add, and feed the accumulator; returns cycles consumed.
  /// `scale_bias` is the total fractional scaling of the operand magnitudes
  /// (2 * man_bits for FP x FP, man_bits for FP x INT).
  int run_fp_iteration(std::span<const NibbleOperand> na,
                       std::span<const NibbleOperand> nb, int i, int j,
                       const EhuResult& ehu, int scale_bias);

  /// True when every unmasked lane product of iteration (i, j) is zero --
  /// the dynamic-skip detector of the sparse extension.
  static bool iteration_is_zero(std::span<const NibbleOperand> na,
                                std::span<const NibbleOperand> nb, int i, int j,
                                const EhuResult& ehu) {
    for (size_t k = 0; k < na.size(); ++k) {
      if (ehu.masked[k]) continue;
      if (na[k].v[static_cast<size_t>(i)] != 0 && nb[k].v[static_cast<size_t>(j)] != 0) {
        return false;
      }
    }
    return true;
  }

  /// Serve loop of the prepared fast path; TreeInt is the adder-tree sum
  /// type (int64_t whenever the window bound fits, int128 otherwise).
  template <typename TreeInt>
  int run_prepared_fp16(const PreparedFp16View& a, const PreparedFp16View& b);

  /// Vectorized serve loop (core/simd): same outputs, stats and cycles as
  /// run_prepared_fp16, computed through the active kernel backend.
  /// kNarrow selects int32 vector accumulators (tree bound <= 31 bits).
  template <bool kNarrow>
  int run_prepared_fp16_simd(const PreparedFp16View& a,
                             const PreparedFp16View& b);

  /// Whole-op fused path: one EHU kernel call and one 3x3 band-sum kernel
  /// call per op (core/simd fused kernels).  Requires MC mode, a window
  /// guard the int16 lane bound covers, and at most kFusedLanes lanes;
  /// falls back to the scalar oracle when the EHU spread is too wide.
  int run_prepared_fp16_fused(const PreparedFp16View& a,
                              const PreparedFp16View& b);

  /// True when the fused kernels' int16 product bound holds: 0 <= guard <= 7
  /// (every MC window shift is an up-shift of at most guard).
  bool guard_in_fused_range() const {
    return cfg_.window_guard() >= 0 && cfg_.window_guard() <= 7;
  }

  IpuConfig cfg_;
  Accumulator acc_;
  int64_t int_acc_ = 0;
  IpuStats stats_;
  // Scratch, sized n_inputs, reused across calls to avoid allocation.
  std::vector<Decoded> dec_a_, dec_b_;
  std::vector<NibbleOperand> nib_a_, nib_b_;
  // Prepared-path scratch (EHU output + serve schedule), reused per op.
  EhuResult ehu_;
  BandSchedule sched_;
  // Vectorized-path scratch: per-lane serve band and split window shifts.
  std::vector<int32_t> serve_band_, up_, down_;
  // Fused-path scratch: EHU align/band planes padded through kFusedLanes.
  std::vector<int32_t> falign_, fband_;
};

// ---------------------------------------------------------------------------
// Template implementation
// ---------------------------------------------------------------------------

template <FpFormat F>
int Ipu::fp_accumulate(std::span<const Soft<F>> a, std::span<const Soft<F>> b) {
  assert(a.size() == b.size());
  assert(static_cast<int>(a.size()) <= cfg_.n_inputs);
  const size_t n = a.size();

  dec_a_.resize(n);
  dec_b_.resize(n);
  nib_a_.resize(n);
  nib_b_.resize(n);
  for (size_t k = 0; k < n; ++k) {
    dec_a_[k] = a[k].decode();
    dec_b_[k] = b[k].decode();
    nib_a_[k] = decompose_fp<F>(dec_a_[k]);
    nib_b_[k] = decompose_fp<F>(dec_b_[k]);
  }

  EhuOptions eopts;
  eopts.software_precision = cfg_.software_precision;
  // Band assignment is only meaningful in MC mode; single-cycle windows
  // narrower than 10 bits have a non-positive safe precision.
  eopts.safe_precision = std::max(cfg_.safe_precision(), 1);
  eopts.skip_empty_bands = cfg_.skip_empty_bands;
  const EhuResult ehu = run_ehu(dec_a_, dec_b_, eopts);

  const int ka = fp_nibble_count(F);
  const int kb = fp_nibble_count(F);
  int cycles = 0;
  for (int i = 0; i < ka; ++i) {
    for (int j = 0; j < kb; ++j) {
      if (cfg_.skip_zero_iterations && iteration_is_zero(nib_a_, nib_b_, i, j, ehu)) {
        ++stats_.skipped_iterations;
        continue;
      }
      cycles += run_fp_iteration(nib_a_, nib_b_, i, j, ehu, 2 * F.man_bits);
    }
  }

  ++stats_.fp_ops;
  stats_.nibble_iterations += ka * kb;
  stats_.cycles += cycles;
  for (size_t k = 0; k < n; ++k) {
    if (ehu.masked[k]) {
      ++stats_.masked_products;
    } else {
      stats_.max_alignment_seen = std::max(stats_.max_alignment_seen, ehu.align[k]);
    }
  }
  return cycles;
}

template <FpFormat F>
int Ipu::fp_int_accumulate(std::span<const Soft<F>> a, std::span<const int32_t> b,
                           int b_bits, bool b_unsigned) {
  assert(a.size() == b.size());
  assert(static_cast<int>(a.size()) <= cfg_.n_inputs);
  const size_t n = a.size();

  dec_a_.resize(n);
  dec_b_.resize(n);
  nib_a_.resize(n);
  nib_b_.resize(n);
  for (size_t k = 0; k < n; ++k) {
    dec_a_[k] = a[k].decode();
    nib_a_[k] = decompose_fp<F>(dec_a_[k]);
    // The integer operand is an exponent-0 signed magnitude to the EHU.
    dec_b_[k] = Decoded{b[k] < 0, 0, b[k] < 0 ? -b[k] : b[k]};
    nib_b_[k] = b_unsigned ? decompose_int_unsigned(b[k], b_bits)
                           : decompose_int(b[k], b_bits);
  }

  EhuOptions eopts;
  eopts.software_precision = cfg_.software_precision;
  eopts.safe_precision = std::max(cfg_.safe_precision(), 1);
  eopts.skip_empty_bands = cfg_.skip_empty_bands;
  const EhuResult ehu = run_ehu(dec_a_, dec_b_, eopts);

  const int ka = fp_nibble_count(F);
  const int kb = int_nibble_count(b_bits);
  int cycles = 0;
  for (int i = 0; i < ka; ++i) {
    for (int j = 0; j < kb; ++j) {
      cycles += run_fp_iteration(nib_a_, nib_b_, i, j, ehu, F.man_bits);
    }
  }

  ++stats_.fp_ops;
  stats_.nibble_iterations += ka * kb;
  stats_.cycles += cycles;
  return cycles;
}

}  // namespace mpipu
