#include "core/prepared.h"

namespace mpipu {

void PreparedFp16::assign(std::span<const Fp16> vals) {
  resize(vals.size());
  for (size_t i = 0; i < vals.size(); ++i) set(i, vals[i]);
}

void PreparedFp16::gather(const PreparedFp16& src, std::span<const int32_t> rel,
                          int64_t base, size_t dst_offset) {
  const size_t m = rel.size();
  for (size_t t = 0; t < m; ++t) {
    const auto s = static_cast<size_t>(base + rel[t]);
    const size_t d = dst_offset + t;
    exp_[d] = src.exp_[s];
    signed_mag_[d] = src.signed_mag_[s];
  }
  // Plane-major copies: one contiguous destination run per nibble plane.
  for (int k = 0; k < kFp16NibbleLanes; ++k) {
    const int8_t* sl = src.nib_.data() + static_cast<size_t>(k) * src.stride_;
    int8_t* dl = nib_.data() + static_cast<size_t>(k) * stride_ + dst_offset;
    for (size_t t = 0; t < m; ++t) {
      dl[t] = sl[static_cast<size_t>(base + rel[t])];
    }
  }
}

void PreparedInt::assign(std::span<const int32_t> vals, int bit_width,
                         bool is_unsigned, bool with_digits) {
  configure(bit_width, is_unsigned, vals.size(), with_digits);
  for (size_t i = 0; i < vals.size(); ++i) set(i, vals[i]);
}

void PreparedInt::gather(const PreparedInt& src, std::span<const int32_t> rel,
                         int64_t base, size_t dst_offset) {
  const size_t m = rel.size();
  for (size_t t = 0; t < m; ++t) {
    value_[dst_offset + t] = src.value_[static_cast<size_t>(base + rel[t])];
  }
  for (int k = 0; k < lanes_; ++k) {  // no digit planes in bit-serial mode
    const int8_t* sl = src.nib_.data() + static_cast<size_t>(k) * src.stride_;
    int8_t* dl = nib_.data() + static_cast<size_t>(k) * stride_ + dst_offset;
    for (size_t t = 0; t < m; ++t) {
      dl[t] = sl[static_cast<size_t>(base + rel[t])];
    }
  }
}

}  // namespace mpipu
