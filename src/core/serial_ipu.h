// Bit-serial inner product unit -- the MC-SER design of Table 1 (§4.5).
//
// Modeled after Stripes (Judd et al. 2016): each lane multiplies a full
// 12-bit signed multiplicand by ONE bit of the weight per cycle (12x1
// multipliers are AND gates feeding the adder tree), so an INT-b weight
// costs b cycles and an FP16 operand costs 12 cycles ("FP16 operation
// requires at least 12 cycles per inner product in the case of 12x1
// multiplier", §4.5) -- more when MC alignment banding kicks in.
//
// MC-SER extends the serial datapath with the paper's FP16 optimizations:
// the same EHU alignment banding and the same local-shift/truncate window
// of width w apply, with the serial product occupying 13 bits (12-bit
// magnitude product + sign) at the top of the window.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.h"
#include "core/accumulator.h"
#include "core/band_schedule.h"
#include "core/ehu.h"
#include "core/prepared.h"
#include "core/reference.h"
#include "softfloat/softfloat.h"

namespace mpipu {

struct SerialIpuConfig {
  int n_inputs = 16;
  /// Adder tree width w; the serial product needs 13 bits, so the safe
  /// precision is w - 12 (cf. w - 9 for the 5-bit nibble IPU).
  int adder_tree_width = 16;
  int software_precision = 28;
  bool multi_cycle = true;
  AccumulatorConfig accumulator{};

  int safe_precision() const { return adder_tree_width - 12; }
  int window_guard() const { return adder_tree_width - 13; }
};

struct SerialIpuStats {
  int64_t fp_ops = 0;
  int64_t int_ops = 0;
  int64_t cycles = 0;
};

class SerialIpu {
 public:
  explicit SerialIpu(const SerialIpuConfig& cfg);

  const SerialIpuConfig& config() const { return cfg_; }
  const SerialIpuStats& stats() const { return stats_; }

  void reset_accumulator();

  /// FP16 inner product, weight operand processed one magnitude bit per
  /// step (11 magnitude bits + the implicit-left-shift padding = 12 steps).
  /// Returns datapath cycles (steps x alignment bands).
  int fp_accumulate(std::span<const Fp16> a, std::span<const Fp16> b);

  /// Prepared-operand fast path (core/prepared.h): per op only the EHU and
  /// the bit-serial serve loop run, on reused scratch.  Bit- and
  /// cycle-identical to fp_accumulate over the same values.
  int fp16_accumulate_prepared(const PreparedFp16View& a,
                               const PreparedFp16View& b);

  /// INT inner product: full-parallel a (<= 12 bits), bit-serial b.
  /// Costs b_bits cycles; exact.
  int int_accumulate(std::span<const int32_t> a, std::span<const int32_t> b,
                     int a_bits, int b_bits);

  template <FpFormat Out>
  Soft<Out> read_fp() const {
    return Soft<Out>::round_from_fixed(acc_.value());
  }
  FixedPoint read_raw() const { return acc_.value(); }
  int64_t read_int() const { return int_acc_; }

 private:
  template <typename TreeInt>
  int run_prepared_fp16(const PreparedFp16View& a, const PreparedFp16View& b);

  /// Vectorized serve loop (core/simd): same outputs, stats and cycles as
  /// run_prepared_fp16.  kNarrow selects int32 vector accumulators (tree
  /// bound <= 31 bits).
  template <bool kNarrow>
  int run_prepared_fp16_simd(const PreparedFp16View& a,
                             const PreparedFp16View& b);

  /// Whole-op fused path: one EHU kernel call and one 12-step band-sum
  /// kernel call per op.  Requires MC mode, 0 <= guard <= 4 (the int16 lane
  /// bound: |p| <= 2047 shifted up by at most guard) and at most kFusedLanes
  /// lanes; falls back to the scalar oracle on wide EHU spreads.
  int run_prepared_fp16_fused(const PreparedFp16View& a,
                              const PreparedFp16View& b);

  SerialIpuConfig cfg_;
  Accumulator acc_;
  int64_t int_acc_ = 0;
  SerialIpuStats stats_;
  // Prepared-path scratch (EHU output, serve schedule, per-lane operand
  // views), reused per op.
  EhuResult ehu_;
  BandSchedule sched_;
  std::vector<uint32_t> padded_mag_;  ///< weight magnitude << 1 per lane
  std::vector<int32_t> lane_p_;       ///< weight-sign-applied multiplicand
  // Vectorized-path scratch: serve bands, split window shifts, and the
  // per-lane pre-shifted multiplicands (constant across the 12 bit steps).
  std::vector<int32_t> serve_band_, up_, down_, v32_;
  std::vector<int64_t> v64_;
  // Fused-path scratch: EHU align/band planes padded through kFusedLanes.
  std::vector<int32_t> falign_, fband_;
};

}  // namespace mpipu
