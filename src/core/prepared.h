// Prepared operands: decode once, allocate never (the conv hot-loop fast
// path).
//
// Every scheme's per-op entry point used to re-run `decode()` and
// `decompose_fp` on operands that were already decoded for the previous
// output channel -- software work with no hardware analogue.  Bit-serial
// simulators in the same family (Bit-Tactical, Pragmatic, Stripes) get
// their throughput by precomputing the per-element bit decomposition once
// and streaming packed operand planes through the datapath model; this
// header is that trick for the MC-IPU repo.
//
// `PreparedFp16` holds a whole tensor's worth of FP16 operands as SoA
// planes -- one flat array per `Decoded` field plus the packed nibble
// lanes -- filled exactly once per tensor.  A `PreparedFp16View` is a
// non-owning window over those planes; `Datapath::fp16_accumulate_prepared`
// consumes views directly, so the per-op cost is the EHU and the serve
// loop, nothing else.  `PreparedInt` is the INT-mode counterpart (raw
// values for the bit-serial scheme, packed radix-16 digits for the
// temporal scheme).
//
// Everything a view exposes is derivable from the element values alone, so
// preparing per tensor, per chunk, or per op yields identical planes --
// which is what makes the span-of-Fp16 compatibility wrappers bit- and
// cycle-identical by construction.
//
// Thread-safety: prepared planes are plain SoA buffers that are only
// written during set()/assign()/gather(); once filled, a `const
// PreparedFp16`/`PreparedInt` (and any view over it) is safe to read from
// any number of threads concurrently.  The compile-once pipeline
// (api/compiled_model.h) relies on this: packed filter planes are built
// once at compile time and shared `const` across concurrent executors.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/nibble.h"
#include "softfloat/softfloat.h"

namespace mpipu {

/// Nibble lanes per prepared FP16 element (the N2/N1/N0 planes of §2.2).
inline constexpr int kFp16NibbleLanes = fp_nibble_count(kFp16Format);

/// Plane padding unit of the prepared layout (see the contract below).
inline constexpr size_t kPreparedPlanePad = 32;

/// Round an element count up to the padded plane stride.
///
/// PADDING / ALIGNMENT CONTRACT (relied on by src/core/simd):
///   * nibble data is PLANE-MAJOR: all elements' lane-i nibbles are stored
///     contiguously, one flat plane per lane, so the serve-loop kernels
///     stream one plane per nibble iteration with unit stride;
///   * every plane's stride is a multiple of kPreparedPlanePad elements, so
///     plane starts sit on 32-byte boundaries relative to the buffer base;
///   * the tail [size, stride) of every plane is ZERO-filled (resize()
///     re-zeroes it even when shrinking reuses capacity), so a vector load
///     that overhangs a full tensor's last element reads zero nibbles --
///     which multiply to zero products and cannot change any adder-tree sum.
///     Views into the middle of a tensor (conv chunking) do NOT get this
///     guarantee -- their overhang is live neighbor data -- so kernels
///     process whole vectors only below the view length and finish with a
///     scalar tail.
inline constexpr size_t prepared_plane_stride(size_t n) {
  return (n + kPreparedPlanePad - 1) & ~(kPreparedPlanePad - 1);
}

/// Non-owning SoA window over prepared FP16 operands.  `nib` is plane-major:
/// element k's lane-i nibble is nib[i*nib_stride + k], sign already applied
/// (lane weights are the static 2^(4i - z) of decompose_fp and never
/// stored).
struct PreparedFp16View {
  const int32_t* exp = nullptr;         ///< unbiased exponent (Decoded::exp)
  const int32_t* signed_mag = nullptr;  ///< (-1)^sign * magnitude
  const int8_t* nib = nullptr;          ///< packed nibble planes (plane-major)
  size_t nib_stride = 0;                ///< owner's plane stride in elements
  size_t n = 0;

  const int8_t* nib_plane(int i) const {
    return nib + static_cast<size_t>(i) * nib_stride;
  }
};

/// Owning SoA planes for FP16 operands; decode + nibble-decompose happens
/// exactly once, in set()/assign().
class PreparedFp16 {
 public:
  PreparedFp16() = default;
  explicit PreparedFp16(std::span<const Fp16> vals) { assign(vals); }

  size_t size() const { return exp_.size(); }

  size_t nib_stride() const { return stride_; }

  /// Grow/shrink without preparing; elements must be set() before use.
  /// Shrinking keeps capacity -- reuse across gathers never reallocates --
  /// but the plane pads are re-zeroed every time to uphold the padding
  /// contract above (a shrink-then-grow would otherwise expose stale lanes).
  void resize(size_t n) {
    exp_.resize(n);
    signed_mag_.resize(n);
    stride_ = prepared_plane_stride(n);
    nib_.resize(stride_ * static_cast<size_t>(kFp16NibbleLanes));
    for (int k = 0; k < kFp16NibbleLanes; ++k) {
      std::fill(nib_.begin() + static_cast<ptrdiff_t>(k * stride_ + n),
                nib_.begin() + static_cast<ptrdiff_t>((k + 1) * stride_), 0);
    }
  }

  /// Prepare one element (decode + decompose).
  void set(size_t i, Fp16 v) {
    const Decoded d = v.decode();
    exp_[i] = d.exp;
    signed_mag_[i] = d.signed_magnitude();
    const NibbleOperand nb = decompose_fp<kFp16Format>(d);
    for (int k = 0; k < kFp16NibbleLanes; ++k) {
      nib_[static_cast<size_t>(k) * stride_ + i] = nb.v[static_cast<size_t>(k)];
    }
  }

  void assign(std::span<const Fp16> vals);

  /// No-op (FP16 planes have a fixed layout); mirrors PreparedInt so
  /// plane-generic code can set up staging buffers uniformly.
  void match_layout(const PreparedFp16&) {}

  /// Stage `rel.size()` already-prepared elements of `src` at indices
  /// rel[t] + base into this object's planes starting at `dst_offset` --
  /// a plane copy, never a re-decode.  The destination must already be
  /// resize()d to cover [dst_offset, dst_offset + rel.size()).
  void gather(const PreparedFp16& src, std::span<const int32_t> rel,
              int64_t base, size_t dst_offset = 0);

  PreparedFp16View view() const { return view(0, size()); }
  PreparedFp16View view(size_t offset, size_t len) const {
    return {exp_.data() + offset, signed_mag_.data() + offset,
            nib_.data() + offset, stride_, len};
  }

 private:
  std::vector<int32_t> exp_;
  std::vector<int32_t> signed_mag_;
  std::vector<int8_t> nib_;  ///< plane-major, stride_ elements per plane
  size_t stride_ = 0;
};

/// Non-owning SoA window over prepared INT operands.  `value` feeds the
/// bit-serial scheme (which streams raw two's-complement bits); `nib` holds
/// the signed radix-16 digits of the temporal scheme, plane-major under the
/// same padding contract as PreparedFp16View (digit i of element k is
/// nib[i*nib_stride + k]).
struct PreparedIntView {
  const int32_t* value = nullptr;
  const int8_t* nib = nullptr;
  size_t nib_stride = 0;  ///< owner's digit-plane stride in elements
  int lanes = 0;          ///< digit planes; 0 when value-only (serial scheme)
  size_t n = 0;

  const int8_t* nib_plane(int i) const {
    return nib + static_cast<size_t>(i) * nib_stride;
  }
};

/// Owning planes for INT operands quantized to `bits`-wide values.
class PreparedInt {
 public:
  PreparedInt() = default;

  int bits() const { return bits_; }
  int lanes() const { return lanes_; }
  size_t size() const { return value_.size(); }

  /// Set the element width (fixes the digit-plane stride) and size.  Pass
  /// with_digits = false to pack the raw value plane only (lanes() == 0):
  /// the bit-serial scheme streams two's-complement bits and never reads
  /// the radix-16 digit planes, so packing them would be dead weight on
  /// its tensors.
  void configure(int bit_width, bool is_unsigned, size_t n,
                 bool with_digits = true) {
    bits_ = bit_width;
    unsigned_ = is_unsigned;
    lanes_ = with_digits ? int_nibble_count(bit_width) : 0;
    resize(n);
  }

  size_t nib_stride() const { return stride_; }

  void resize(size_t n) {
    value_.resize(n);
    stride_ = prepared_plane_stride(n);
    nib_.resize(stride_ * static_cast<size_t>(lanes_));
    for (int k = 0; k < lanes_; ++k) {
      std::fill(nib_.begin() + static_cast<ptrdiff_t>(
                                   static_cast<size_t>(k) * stride_ + n),
                nib_.begin() + static_cast<ptrdiff_t>(
                                   static_cast<size_t>(k + 1) * stride_),
                0);
    }
  }

  void set(size_t i, int32_t v) {
    value_[i] = v;
    if (lanes_ == 0) return;  // value-only packing
    const NibbleOperand nb =
        unsigned_ ? decompose_int_unsigned(v, bits_) : decompose_int(v, bits_);
    for (int k = 0; k < lanes_; ++k) {
      nib_[static_cast<size_t>(k) * stride_ + i] = nb.v[static_cast<size_t>(k)];
    }
  }

  void assign(std::span<const int32_t> vals, int bit_width,
              bool is_unsigned = false, bool with_digits = true);

  /// Adopt `src`'s (bits, signedness, digit stride) so gathers out of it
  /// land in a compatible layout.
  void match_layout(const PreparedInt& src) {
    bits_ = src.bits_;
    unsigned_ = src.unsigned_;
    lanes_ = src.lanes_;
  }

  void gather(const PreparedInt& src, std::span<const int32_t> rel,
              int64_t base, size_t dst_offset = 0);

  PreparedIntView view() const { return view(0, size()); }
  PreparedIntView view(size_t offset, size_t len) const {
    return {value_.data() + offset, nib_.data() + offset, stride_, lanes_, len};
  }

 private:
  int bits_ = 0;
  int lanes_ = 1;
  bool unsigned_ = false;
  std::vector<int32_t> value_;
  std::vector<int8_t> nib_;  ///< plane-major, stride_ elements per plane
  size_t stride_ = 0;
};

}  // namespace mpipu
