// Prepared operands: decode once, allocate never (the conv hot-loop fast
// path).
//
// Every scheme's per-op entry point used to re-run `decode()` and
// `decompose_fp` on operands that were already decoded for the previous
// output channel -- software work with no hardware analogue.  Bit-serial
// simulators in the same family (Bit-Tactical, Pragmatic, Stripes) get
// their throughput by precomputing the per-element bit decomposition once
// and streaming packed operand planes through the datapath model; this
// header is that trick for the MC-IPU repo.
//
// `PreparedFp16` holds a whole tensor's worth of FP16 operands as SoA
// planes -- one flat array per `Decoded` field plus the packed nibble
// lanes -- filled exactly once per tensor.  A `PreparedFp16View` is a
// non-owning window over those planes; `Datapath::fp16_accumulate_prepared`
// consumes views directly, so the per-op cost is the EHU and the serve
// loop, nothing else.  `PreparedInt` is the INT-mode counterpart (raw
// values for the bit-serial scheme, packed radix-16 digits for the
// temporal scheme).
//
// Everything a view exposes is derivable from the element values alone, so
// preparing per tensor, per chunk, or per op yields identical planes --
// which is what makes the span-of-Fp16 compatibility wrappers bit- and
// cycle-identical by construction.
//
// Thread-safety: prepared planes are plain SoA buffers that are only
// written during set()/assign()/gather(); once filled, a `const
// PreparedFp16`/`PreparedInt` (and any view over it) is safe to read from
// any number of threads concurrently.  The compile-once pipeline
// (api/compiled_model.h) relies on this: packed filter planes are built
// once at compile time and shared `const` across concurrent executors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/nibble.h"
#include "softfloat/softfloat.h"

namespace mpipu {

/// Nibble lanes per prepared FP16 element (the N2/N1/N0 planes of §2.2).
inline constexpr int kFp16NibbleLanes = fp_nibble_count(kFp16Format);

/// Non-owning SoA window over prepared FP16 operands.  `nib` is
/// element-major with stride kFp16NibbleLanes: lanes of element k are
/// nib[k*3 .. k*3+2], sign already applied (lane weights are the static
/// 2^(4i - z) of decompose_fp and never stored).
struct PreparedFp16View {
  const int32_t* exp = nullptr;         ///< unbiased exponent (Decoded::exp)
  const int32_t* signed_mag = nullptr;  ///< (-1)^sign * magnitude
  const int8_t* nib = nullptr;          ///< packed nibble lanes
  size_t n = 0;
};

/// Owning SoA planes for FP16 operands; decode + nibble-decompose happens
/// exactly once, in set()/assign().
class PreparedFp16 {
 public:
  PreparedFp16() = default;
  explicit PreparedFp16(std::span<const Fp16> vals) { assign(vals); }

  size_t size() const { return exp_.size(); }

  /// Grow/shrink without preparing; elements must be set() before use.
  /// Shrinking keeps capacity -- reuse across gathers never reallocates.
  void resize(size_t n) {
    exp_.resize(n);
    signed_mag_.resize(n);
    nib_.resize(n * static_cast<size_t>(kFp16NibbleLanes));
  }

  /// Prepare one element (decode + decompose).
  void set(size_t i, Fp16 v) {
    const Decoded d = v.decode();
    exp_[i] = d.exp;
    signed_mag_[i] = d.signed_magnitude();
    const NibbleOperand nb = decompose_fp<kFp16Format>(d);
    int8_t* lanes = &nib_[i * static_cast<size_t>(kFp16NibbleLanes)];
    for (int k = 0; k < kFp16NibbleLanes; ++k) {
      lanes[k] = nb.v[static_cast<size_t>(k)];
    }
  }

  void assign(std::span<const Fp16> vals);

  /// No-op (FP16 planes have a fixed layout); mirrors PreparedInt so
  /// plane-generic code can set up staging buffers uniformly.
  void match_layout(const PreparedFp16&) {}

  /// Stage `rel.size()` already-prepared elements of `src` at indices
  /// rel[t] + base into this object's planes starting at `dst_offset` --
  /// a plane copy, never a re-decode.  The destination must already be
  /// resize()d to cover [dst_offset, dst_offset + rel.size()).
  void gather(const PreparedFp16& src, std::span<const int32_t> rel,
              int64_t base, size_t dst_offset = 0);

  PreparedFp16View view() const { return view(0, size()); }
  PreparedFp16View view(size_t offset, size_t len) const {
    return {exp_.data() + offset, signed_mag_.data() + offset,
            nib_.data() + offset * static_cast<size_t>(kFp16NibbleLanes), len};
  }

 private:
  std::vector<int32_t> exp_;
  std::vector<int32_t> signed_mag_;
  std::vector<int8_t> nib_;
};

/// Non-owning SoA window over prepared INT operands.  `value` feeds the
/// bit-serial scheme (which streams raw two's-complement bits); `nib` holds
/// the signed radix-16 digits of the temporal scheme, element-major with
/// stride `lanes`.
struct PreparedIntView {
  const int32_t* value = nullptr;
  const int8_t* nib = nullptr;
  int lanes = 0;  ///< digit stride; 0 when packed value-only (serial scheme)
  size_t n = 0;
};

/// Owning planes for INT operands quantized to `bits`-wide values.
class PreparedInt {
 public:
  PreparedInt() = default;

  int bits() const { return bits_; }
  int lanes() const { return lanes_; }
  size_t size() const { return value_.size(); }

  /// Set the element width (fixes the digit-plane stride) and size.  Pass
  /// with_digits = false to pack the raw value plane only (lanes() == 0):
  /// the bit-serial scheme streams two's-complement bits and never reads
  /// the radix-16 digit planes, so packing them would be dead weight on
  /// its tensors.
  void configure(int bit_width, bool is_unsigned, size_t n,
                 bool with_digits = true) {
    bits_ = bit_width;
    unsigned_ = is_unsigned;
    lanes_ = with_digits ? int_nibble_count(bit_width) : 0;
    resize(n);
  }

  void resize(size_t n) {
    value_.resize(n);
    nib_.resize(n * static_cast<size_t>(lanes_));
  }

  void set(size_t i, int32_t v) {
    value_[i] = v;
    if (lanes_ == 0) return;  // value-only packing
    const NibbleOperand nb =
        unsigned_ ? decompose_int_unsigned(v, bits_) : decompose_int(v, bits_);
    int8_t* lanes = &nib_[i * static_cast<size_t>(lanes_)];
    for (int k = 0; k < lanes_; ++k) lanes[k] = nb.v[static_cast<size_t>(k)];
  }

  void assign(std::span<const int32_t> vals, int bit_width,
              bool is_unsigned = false, bool with_digits = true);

  /// Adopt `src`'s (bits, signedness, digit stride) so gathers out of it
  /// land in a compatible layout.
  void match_layout(const PreparedInt& src) {
    bits_ = src.bits_;
    unsigned_ = src.unsigned_;
    lanes_ = src.lanes_;
  }

  void gather(const PreparedInt& src, std::span<const int32_t> rel,
              int64_t base, size_t dst_offset = 0);

  PreparedIntView view() const { return view(0, size()); }
  PreparedIntView view(size_t offset, size_t len) const {
    return {value_.data() + offset,
            nib_.data() + offset * static_cast<size_t>(lanes_), lanes_, len};
  }

 private:
  int bits_ = 0;
  int lanes_ = 1;
  bool unsigned_ = false;
  std::vector<int32_t> value_;
  std::vector<int8_t> nib_;
};

}  // namespace mpipu
