// Serve-loop schedule for the prepared-operand fast paths (core/prepared.h).
//
// The per-op serve loops of the temporal and serial schemes repeatedly scan
// all n lanes per band per iteration/step ("is lane k in band c?") and
// recompute each lane's window shift every time, even though both are fixed
// for the whole op.  `BandSchedule` hoists that out: one pass over the EHU
// result groups the unmasked lanes by serve band (k-ascending within a
// band -- the adder tree's integer sum is order-independent, but a
// deterministic order keeps the loops auditable) and precomputes each
// lane's constant net window shift.  All storage is reused scratch, so a
// warm schedule never allocates.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/ehu.h"

namespace mpipu {

struct BandSchedule {
  /// Unmasked lane ids grouped by band; band c spans
  /// order[begin[c] .. begin[c+1]).
  std::vector<int32_t> order;
  std::vector<int32_t> begin;
  /// Per lane (indexed by lane id): guard - local_shift, the constant net
  /// placement shift of that lane's products inside the w-bit window.
  std::vector<int32_t> net_shift;

  /// `bands` is the serve-cycle count (1 in single-cycle mode, where every
  /// lane lands in band 0 with its full alignment clamped to the window).
  void build(const EhuResult& ehu, int bands, bool single_cycle, int guard,
             int sp, int window) {
    const size_t n = ehu.align.size();
    begin.assign(static_cast<size_t>(bands) + 1, 0);
    net_shift.resize(n);
    for (size_t k = 0; k < n; ++k) {
      if (ehu.masked[k]) continue;
      const int c = single_cycle ? 0 : ehu.band[k];
      ++begin[static_cast<size_t>(c) + 1];
      const int local_shift = single_cycle ? std::min(ehu.align[k], window)
                                           : ehu.align[k] - c * sp;
      net_shift[k] = guard - local_shift;
    }
    for (int c = 0; c < bands; ++c) {
      begin[static_cast<size_t>(c) + 1] += begin[static_cast<size_t>(c)];
    }
    order.resize(static_cast<size_t>(begin[static_cast<size_t>(bands)]));
    cursor_.assign(begin.begin(), begin.end());
    for (size_t k = 0; k < n; ++k) {
      if (ehu.masked[k]) continue;
      const int c = single_cycle ? 0 : ehu.band[k];
      order[static_cast<size_t>(cursor_[static_cast<size_t>(c)]++)] =
          static_cast<int32_t>(k);
    }
  }

 private:
  std::vector<int32_t> cursor_;
};

}  // namespace mpipu
