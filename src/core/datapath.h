// Unified datapath abstraction over the three decomposition schemes (§5).
//
// The paper's MC alignment-banding optimization "is orthogonal to the
// decomposition scheme (i.e., temporal, serial, spatial)": the same EHU,
// accumulator and reference models serve
//
//   * temporal  -- `Ipu` (src/core/ipu.h): 5x5 nibble multipliers, Ka*Kb
//                  nibble iterations per op;
//   * serial    -- `SerialIpu` (src/core/serial_ipu.h): 12x1 bit-serial
//                  lanes, 12 weight-bit steps per FP16 op;
//   * spatial   -- `SpatialIpu` (src/core/spatial_ipu.h): all Ka*Kb nibble
//                  products in parallel on Ka*Kb*n multipliers.
//
// `Datapath` is the scheme-generic view: one `DatapathConfig` (scheme enum
// plus the shared knobs) and a factory, `make_datapath`, that wraps the
// scheme implementations behind a common accumulate / dot / readout / stats
// contract while preserving the bit-exact behaviour of each scheme.  The
// conv engine (src/nn/conv_engine.h), the cycle simulator's tile costing
// (src/sim) and the decomposition-scheme benches all route through this
// interface, so every workload can run on every scheme.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>

#include "common/fixed_point.h"
#include "core/accumulator.h"
#include "core/prepared.h"
#include "softfloat/softfloat.h"

namespace mpipu {

/// The three decomposition schemes of §5.
enum class DecompositionScheme { kTemporal, kSerial, kSpatial };

const char* scheme_name(DecompositionScheme s);

/// Scheme-generic datapath parameters: the shared knobs of IpuConfig,
/// SerialIpuConfig and SpatialIpuConfig plus the scheme selector.  The
/// factory maps these onto the scheme's own config, clamping the adder-tree
/// width up to the scheme's minimum where multi-cycling requires it
/// (serial products occupy 13 bits, nibble products 10 with guard).
struct DatapathConfig {
  DecompositionScheme scheme = DecompositionScheme::kTemporal;
  /// Number of input pairs n the unit accepts per operation.
  int n_inputs = 16;
  /// Requested adder tree / local shifter precision w ("IPU precision").
  int adder_tree_width = 28;
  /// Software accuracy requirement: maximum alignment honored (16 for FP16
  /// accumulation, 28 for FP32 accumulation; §3.1).
  int software_precision = 28;
  /// MC alignment banding when true; single-cycle truncating window if not.
  bool multi_cycle = true;
  /// Count only occupied alignment bands (§3.2 partition view).  NOTE:
  /// this unified default (false, the literal Fig. 5 serve loop) matches
  /// the standalone IpuConfig but NOT SpatialIpuConfig, whose standalone
  /// default is true -- set it explicitly when porting spatial code, and
  /// note the serial scheme models the serve loop only (the flag is
  /// ignored there).
  bool skip_empty_bands = false;
  /// Sparse ablation (temporal scheme only): skip all-zero nibble iterations.
  bool skip_zero_iterations = false;
  AccumulatorConfig accumulator{};

  /// Preset matching the scheme's *standalone* config defaults, defusing the
  /// skip_empty_bands footgun above: spatial gets occupied-band counting
  /// (SpatialIpuConfig's default), temporal/serial get the literal Fig. 5
  /// serve loop.  Start from this when porting scheme-specific code.
  static DatapathConfig for_scheme(DecompositionScheme s) {
    DatapathConfig c;
    c.scheme = s;
    c.skip_empty_bands = s == DecompositionScheme::kSpatial;
    return c;
  }
  /// Shorthand for for_scheme(kSpatial): a default-knob spatial datapath
  /// that cycle-counts like a directly constructed SpatialIpu.
  static DatapathConfig spatial_defaults() {
    return for_scheme(DecompositionScheme::kSpatial);
  }

  friend bool operator==(const DatapathConfig&, const DatapathConfig&) = default;

  /// Bits one lane product occupies in the adder-tree window (9-bit nibble
  /// product + guard for temporal/spatial; 13-bit serial product).
  int product_window_bits() const {
    return scheme == DecompositionScheme::kSerial ? 13 : 10;
  }
  /// Smallest window the scheme's implementation accepts for this mode.
  int min_adder_tree_width() const {
    if (scheme == DecompositionScheme::kSerial) return 13;
    return multi_cycle ? 10 : 2;
  }
  /// Width actually instantiated: the request clamped to the scheme minimum.
  int effective_adder_tree_width() const {
    return std::max(adder_tree_width, min_adder_tree_width());
  }
  /// Safe precision sp of Proposition 1 for the effective width.
  int safe_precision() const {
    return effective_adder_tree_width() - (product_window_bits() - 1);
  }
};

/// Unified running statistics; fields a scheme does not model stay zero.
struct DatapathStats {
  int64_t fp_ops = 0;
  int64_t int_ops = 0;
  int64_t cycles = 0;
  int64_t nibble_iterations = 0;   ///< temporal only
  int64_t masked_products = 0;     ///< temporal only
  int64_t multi_cycle_ops = 0;     ///< ops (spatial) / iterations (temporal) > 1 cycle
  int64_t skipped_iterations = 0;  ///< temporal sparse ablation

  DatapathStats& operator+=(const DatapathStats& o) {
    fp_ops += o.fp_ops;
    int_ops += o.int_ops;
    cycles += o.cycles;
    nibble_iterations += o.nibble_iterations;
    masked_products += o.masked_products;
    multi_cycle_ops += o.multi_cycle_ops;
    skipped_iterations += o.skipped_iterations;
    return *this;
  }
  DatapathStats& operator-=(const DatapathStats& o) {
    fp_ops -= o.fp_ops;
    int_ops -= o.int_ops;
    cycles -= o.cycles;
    nibble_iterations -= o.nibble_iterations;
    masked_products -= o.masked_products;
    multi_cycle_ops -= o.multi_cycle_ops;
    skipped_iterations -= o.skipped_iterations;
    return *this;
  }
  /// Counter delta (e.g. per-layer work = after - before on a running unit).
  friend DatapathStats operator-(DatapathStats a, const DatapathStats& b) {
    a -= b;
    return a;
  }
  friend bool operator==(const DatapathStats&, const DatapathStats&) = default;
};

/// Result of one self-contained inner product (`Datapath::dot`).
struct DotResult {
  FixedPoint raw{0, 0};  ///< exact view of the accumulator's kept bits
  int cycles = 0;

  template <FpFormat Out>
  Soft<Out> rounded() const {
    return Soft<Out>::round_from_fixed(raw);
  }
  Fp16 fp16() const { return rounded<kFp16Format>(); }
  Fp32 fp32() const { return rounded<kFp32Format>(); }
};

/// Scheme-generic datapath: FP16 inner products accumulated bit-exactly as
/// the wrapped scheme implementation computes them.
class Datapath {
 public:
  virtual ~Datapath() = default;

  const DatapathConfig& config() const { return cfg_; }
  /// 5x5-multiplier-equivalent lanes this scheme instantiates (the area
  /// denominator of the §5 comparison).
  virtual int multipliers() const = 0;

  /// Clear the accumulator (new output pixel); stats persist.
  virtual void reset_accumulator() = 0;

  /// Accumulate one FP16 inner product from pre-decomposed SoA operand
  /// planes (core/prepared.h) -- the hot-loop contract.  Per op only the
  /// EHU and the scheme's serve loop run, on scratch the unit owns; the
  /// caller streams views over planes it prepared once per tensor.
  virtual int fp16_accumulate_prepared(const PreparedFp16View& a,
                                       const PreparedFp16View& b) = 0;

  /// Accumulate one FP16 inner product a.b; returns datapath cycles.
  /// Compatibility entry: prepares the spans on the fly into unit-owned
  /// scratch and runs the prepared path, so both entries are bit- and
  /// cycle-identical by construction.  Prefer preparing whole tensors and
  /// calling fp16_accumulate_prepared on hot paths.
  int fp16_accumulate(std::span<const Fp16> a, std::span<const Fp16> b) {
    prep_a_.assign(a);
    prep_b_.assign(b);
    return fp16_accumulate_prepared(prep_a_.view(), prep_b_.view());
  }

  /// One self-contained inner product: reset, accumulate, read.  This is
  /// the unified cross-scheme contract the differential tests pin down.
  DotResult dot(std::span<const Fp16> a, std::span<const Fp16> b) {
    reset_accumulator();
    DotResult r;
    r.cycles = fp16_accumulate(a, b);
    r.raw = read_raw();
    return r;
  }

  /// Raw non-normalized accumulator value (exact view of kept bits).
  virtual FixedPoint read_raw() const = 0;
  Fp16 read_fp16() const { return Fp16::round_from_fixed(read_raw()); }
  Fp32 read_fp32() const { return Fp32::round_from_fixed(read_raw()); }

  /// INT mode is scheme-dependent: temporal handles any nibble-decomposable
  /// width, serial is limited to 12-bit parallel operands, spatial is
  /// FP-only.  Callers must check before dispatching.
  virtual bool supports_int(int a_bits, int b_bits) const = 0;
  /// Accumulate one INT inner product from pre-packed digit/value planes
  /// (requires supports_int).
  virtual int int_accumulate_prepared(const PreparedIntView& a,
                                      const PreparedIntView& b, int a_bits,
                                      int b_bits) = 0;
  /// Compatibility entry; same prepare-on-the-fly contract as
  /// fp16_accumulate.
  int int_accumulate(std::span<const int32_t> a, std::span<const int32_t> b,
                     int a_bits, int b_bits) {
    // The bit-serial scheme streams raw values; don't pack digit planes it
    // will never read.
    const bool digits = cfg_.scheme != DecompositionScheme::kSerial;
    int_prep_a_.assign(a, a_bits, false, digits);
    int_prep_b_.assign(b, b_bits, false, digits);
    return int_accumulate_prepared(int_prep_a_.view(), int_prep_b_.view(),
                                   a_bits, b_bits);
  }
  virtual int64_t read_int() const = 0;

  virtual DatapathStats stats() const = 0;

 protected:
  explicit Datapath(const DatapathConfig& cfg) : cfg_(cfg) {}
  DatapathConfig cfg_;

 private:
  /// Scratch backing the compatibility entries, reused across ops.
  PreparedFp16 prep_a_, prep_b_;
  PreparedInt int_prep_a_, int_prep_b_;
};

/// Build the scheme implementation named by `cfg.scheme`.  The returned
/// unit computes bit-identical values and cycle counts to the directly
/// constructed Ipu / SerialIpu / SpatialIpu it wraps *with the same knob
/// values* -- the unified defaults are IpuConfig's, so a default-knob
/// SpatialIpu differs in skip_empty_bands (see the field note above).
std::unique_ptr<Datapath> make_datapath(const DatapathConfig& cfg);

// ---------------------------------------------------------------------------
// Scheme-generic tile costing (cycle simulator).
// ---------------------------------------------------------------------------

/// Sentinel exponent for a masked (zero-operand) product in the costing
/// model: far below every live product, so it is always EHU-masked.
inline constexpr int kMaskedProductExp = INT32_MIN / 4;

/// Base steps per FP16 inner product: 9 nibble iterations (temporal),
/// 12 weight-bit steps (serial), 1 all-parallel step (spatial).
int fp16_iterations_per_op(DecompositionScheme s);

/// Service time (cycles) of one FP16 inner-product op given its product
/// exponents -- the §3.2 banding model generalized across schemes.  For the
/// spatial scheme the band set combines each alignment with the nine static
/// nibble-significance offsets (significance rides on top of alignment).
int fp16_op_service_cycles(std::span<const int> product_exps,
                           const DatapathConfig& cfg);

}  // namespace mpipu
