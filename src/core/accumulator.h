// The IPU's partial-sum accumulator -- paper Section 2.2, right side of Fig 1.
//
// The accumulator keeps two values: an exponent register `acc_exp` and a
// non-normalized signed-magnitude register of 33 + t + l bits, interpreted
// as a fixed-point number with (3 + t + l) integer bits and 30 fraction bits
// relative to 2^acc_exp:
//
//      value = register * 2^(acc_exp - frac_bits),   frac_bits = 30.
//
// Incoming adder-tree results arrive with their own exponent (the EHU's
// max_exp plus nibble/band weights).  When the incoming exponent exceeds
// acc_exp, the hardware *swaps* the operands and right-shifts the old
// accumulator contents instead (there is no left shifter); otherwise the
// incoming value is right-shifted.  Bits pushed below the register LSB are
// discarded -- the architectural truncation point this whole paper is about.
//
// In INT mode acc_exp stays 0 and every add is exact (shift amounts are the
// nibble significances, always left-aligned into the wide register).
#pragma once

#include <cassert>

#include "common/bits.h"
#include "common/fixed_point.h"

namespace mpipu {

struct AccumulatorConfig {
  /// Fraction bits kept below 2^acc_exp; the paper provisions 30.
  int frac_bits = 30;
  /// Extra integer headroom: t covers adder-tree growth (ceil_log2 n),
  /// l covers accumulation depth (ceil_log2 d).  Total register width is
  /// 3 + frac_bits + t + l  (sign + int + fraction).
  int t = 4;
  int l = 9;
  /// Test-only escape hatch: accumulate exactly (no register-width clamp, no
  /// shift truncation).  Used by golden-model tests to isolate datapath
  /// truncation from accumulator truncation; never set in architecture runs.
  bool lossless = false;

  int register_width() const { return 3 + frac_bits + t + l; }

  friend bool operator==(const AccumulatorConfig&, const AccumulatorConfig&) = default;
};

class Accumulator {
 public:
  explicit Accumulator(const AccumulatorConfig& cfg = {}) : cfg_(cfg) { reset(); }

  void reset() {
    reg_ = 0;
    exp_ = kEmptyExp;
    exact_ = FixedPoint(0, 0);
  }

  const AccumulatorConfig& config() const { return cfg_; }
  bool empty() const { return exp_ == kEmptyExp; }
  int exponent() const { return exp_; }
  int128 register_value() const { return reg_; }

  /// Add `mantissa * 2^(in_exp - cfg.frac_bits)`; the incoming mantissa uses
  /// the same fixed-point convention as the register.  Models the
  /// swap-then-right-shift datapath with truncation at the register LSB.
  void add(int128 mantissa, int in_exp) {
    if (cfg_.lossless) {
      exact_ = exact_ + FixedPoint(mantissa, in_exp - cfg_.frac_bits);
      if (empty() || in_exp > exp_) exp_ = in_exp;
      return;
    }
    if (mantissa == 0 && empty()) return;
    if (empty()) {
      exp_ = in_exp;
      reg_ = clamp_width(mantissa);
      return;
    }
    if (in_exp > exp_) {
      // Swap: shift the old accumulator down to the new exponent.
      reg_ = asr(reg_, in_exp - exp_);
      exp_ = in_exp;
      reg_ = clamp_width(reg_ + mantissa);
    } else {
      reg_ = clamp_width(reg_ + asr(mantissa, exp_ - in_exp));
    }
  }

  /// True when add_tree64 may replace add(shl/asr(tree, rescale), in_exp)
  /// for adder-tree sums bounded by `tree_bits` bits at rescales up to
  /// `max_rescale`: the register and every intermediate then fit int64 and
  /// the int64 path is bit-identical to the int128 one.
  bool fast64_ok(int tree_bits, int max_rescale) const {
    return !cfg_.lossless && cfg_.register_width() <= 62 &&
           tree_bits + (max_rescale > 0 ? max_rescale : 0) <= 62;
  }

  /// int64 fast path of the serve loops (core SIMD paths): adds
  /// `tree * 2^rescale * 2^(in_exp - frac_bits)`.  Caller guarantees
  /// fast64_ok(bound(tree), rescale); results, truncation and the overflow
  /// flag match add() exactly (two's-complement >> composes like asr, and
  /// the left shift cannot overflow under the fast64_ok bound).
  void add_tree64(int64_t tree, int rescale, int in_exp) {
    const int64_t m =
        rescale >= 0
            ? tree << rescale
            : (rescale <= -63 ? tree >> 63 : tree >> -rescale);
    if (m == 0 && empty()) return;
    if (empty()) {
      exp_ = in_exp;
      reg_ = clamp_width(m);
      return;
    }
    auto r = static_cast<int64_t>(reg_);
    if (in_exp > exp_) {
      const int s = in_exp - exp_;
      r >>= s >= 63 ? 63 : s;
      exp_ = in_exp;
      reg_ = clamp_width(r + m);
    } else {
      const int s = exp_ - in_exp;
      reg_ = clamp_width(r + (s >= 63 ? m >> 63 : m >> s));
    }
  }

  /// Exact value held (for readout / rounding to the output format).
  FixedPoint value() const {
    if (cfg_.lossless) return exact_;
    if (empty()) return {0, 0};
    return {reg_, exp_ - cfg_.frac_bits};
  }

  /// True if the last add overflowed the architectural width (the paper
  /// provisions t and l so this never happens in-spec; tests assert it).
  bool overflowed() const { return overflowed_; }

 private:
  static constexpr int kEmptyExp = INT32_MIN / 2;

  int128 clamp_width(int128 v) {
    if (!fits_signed(v, cfg_.register_width())) {
      overflowed_ = true;
      return saturate_signed(v, cfg_.register_width());
    }
    return v;
  }

  AccumulatorConfig cfg_;
  int128 reg_ = 0;
  int exp_ = kEmptyExp;
  FixedPoint exact_{0, 0};
  bool overflowed_ = false;
};

}  // namespace mpipu
