// Nibble (temporal) decomposition of operands onto 5b x 5b signed multipliers.
//
// The IPU's only multiplier is a 5-bit signed x 5-bit signed unit (paper
// Fig. 1).  Wider operands are decomposed into 4-bit "nibbles" (each carried
// in a 5-bit signed lane) and realized over Ka*Kb nibble iterations:
//
//  * Integers use a signed radix-16 decomposition: the most significant
//    nibble is signed in [-8,7], all lower nibbles are unsigned in [0,15];
//    every digit fits the 5-bit signed lane.  value = sum(n_k * 16^k).
//
//  * Floating point uses the paper's signed-magnitude decomposition
//    (Section 2.2, "Converting numbers").  For FP16 the 11-bit magnitude
//    {1|0}.mantissa maps to three 5-bit lanes
//        N2 = m[10:7] (with the sign applied),
//        N1 = m[6:3],
//        N0 = m[2:0] << 1,
//    so  magnitude = N2*2^7 + N1*2^3 + N0*2^-1.  The trailing zero injected
//    into N0 ("implicit left shift") preserves one extra bit through the
//    right-shift-and-truncate alignment path.  The same scheme generalizes
//    to any format: pad the magnitude on the right with z zeros so that
//    sig_bits + z is a multiple of 4; lane k then has weight 2^(4k - z).
#pragma once

#include <array>
#include <cassert>
#include <cstdint>

#include "common/bits.h"
#include "softfloat/softfloat.h"

namespace mpipu {

/// Maximum number of 5-bit lanes an operand can decompose into
/// (INT16 -> 4 lanes; FP formats here need at most 3).
inline constexpr int kMaxNibbles = 8;

/// A decomposed operand: `count` signed lane values v[k], each in [-15,15],
/// with lane k carrying weight 2^weight_exp[k], such that
///   original signed value = sum_k v[k] * 2^weight_exp[k].
struct NibbleOperand {
  int count = 0;
  std::array<int8_t, kMaxNibbles> v{};
  std::array<int8_t, kMaxNibbles> weight_exp{};

  /// Recompose (for checking); exact.
  constexpr int64_t recompose_scaled(int scale_up) const {
    // Returns value * 2^scale_up; scale_up must clear negative weights.
    int64_t acc = 0;
    for (int k = 0; k < count; ++k) {
      const int e = weight_exp[k] + scale_up;
      assert(e >= 0 && e < 60);
      acc += static_cast<int64_t>(v[k]) << e;
    }
    return acc;
  }
};

/// Number of nibble lanes for an integer of `bit_width` bits.
constexpr int int_nibble_count(int bit_width) {
  assert(bit_width >= 1 && bit_width <= 4 * kMaxNibbles);
  return (bit_width + 3) / 4;
}

/// Signed radix-16 decomposition of a two's-complement integer.
/// `bit_width` in [2, 32]; value must fit.  For unsigned operands pass the
/// zero-extended value with bit_width+1 (the paper's IPU handles signed and
/// unsigned INT4 alike because a 5-bit signed lane covers [0,15]).
constexpr NibbleOperand decompose_int(int64_t value, int bit_width) {
  assert(fits_signed(value, bit_width));
  NibbleOperand out;
  out.count = int_nibble_count(bit_width);
  int64_t rest = value;
  for (int k = 0; k < out.count; ++k) {
    if (k + 1 < out.count) {
      const int64_t digit = rest & 0xF;  // unsigned low digit
      out.v[static_cast<size_t>(k)] = static_cast<int8_t>(digit);
      rest >>= 4;
    } else {
      assert(rest >= -8 && rest <= 7);
      out.v[static_cast<size_t>(k)] = static_cast<int8_t>(rest);
    }
    out.weight_exp[static_cast<size_t>(k)] = static_cast<int8_t>(4 * k);
  }
  return out;
}

/// Unsigned radix-16 decomposition: every digit is unsigned in [0,15] and
/// still fits the 5-bit signed lane, which is how the paper's IPU computes
/// unsigned INT4/INT8 "in a single cycle" per digit pair.
constexpr NibbleOperand decompose_int_unsigned(int64_t value, int bit_width) {
  assert(value >= 0 && (value >> bit_width) == 0);
  NibbleOperand out;
  out.count = int_nibble_count(bit_width);
  for (int k = 0; k < out.count; ++k) {
    out.v[static_cast<size_t>(k)] = static_cast<int8_t>((value >> (4 * k)) & 0xF);
    out.weight_exp[static_cast<size_t>(k)] = static_cast<int8_t>(4 * k);
  }
  return out;
}

/// Number of nibble lanes for an FP format's signed magnitude.
constexpr int fp_nibble_count(FpFormat f) { return (f.sig_bits() + 3) / 4; }

/// Right-pad amount z so sig_bits + z is a multiple of 4 (the "implicit
/// left shift" of the least significant lane).
constexpr int fp_pad_bits(FpFormat f) { return 4 * fp_nibble_count(f) - f.sig_bits(); }

/// Paper-style signed-magnitude decomposition of a decoded FP value.
/// Lane k holds sign-applied magnitude bits with weight 2^(4k - z), so that
///   signed_magnitude = sum_k v[k] * 2^(4k - z).
template <FpFormat F>
constexpr NibbleOperand decompose_fp(const Decoded& d) {
  NibbleOperand out;
  out.count = fp_nibble_count(F);
  const int z = fp_pad_bits(F);
  const uint32_t padded = static_cast<uint32_t>(d.magnitude) << z;
  for (int k = 0; k < out.count; ++k) {
    const auto nib = static_cast<int8_t>((padded >> (4 * k)) & 0xF);
    out.v[static_cast<size_t>(k)] = d.sign ? static_cast<int8_t>(-nib) : nib;
    out.weight_exp[static_cast<size_t>(k)] = static_cast<int8_t>(4 * k - z);
  }
  return out;
}

/// The 5x5 signed multiplier: lanes are in [-15,15] so the product is in
/// [-225,225] and always fits the 9-bit signed multiplier output.
constexpr int32_t multiply_lane(int8_t a, int8_t b) {
  assert(a >= -15 && a <= 15 && b >= -15 && b <= 15);
  return static_cast<int32_t>(a) * static_cast<int32_t>(b);
}

/// Magnitude bound of a lane product (used by Theorem 1): 15*15.
inline constexpr int32_t kMaxLaneProduct = 225;

}  // namespace mpipu
