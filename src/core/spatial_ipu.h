// Spatially decomposed inner product unit.
//
// The paper's Related Work contrasts its *temporal* nibble decomposition
// with *spatial* decomposition (NVDLA computes an FP16 product on two INT8
// units side by side; DP4A splits an INT32 unit into four INT8 lanes) and
// notes that "our proposed architecture optimization ... is orthogonal to
// the decomposition scheme (i.e., temporal, serial, spatial)" (§5).
//
// `SpatialIpu` realizes that claim: all Ka x Kb nibble products of every
// input pair are computed in the same cycle on Ka*Kb*n multipliers, so the
// alignment shift of lane (k, i, j) combines the EHU alignment d_k with the
// nibble-significance offset (top_weight - wi - wj).  The MC banding then
// partitions the *combined* shifts: concentrated exponents finish in one
// cycle (9x the temporal throughput for 9x the multipliers); wide
// alignments multi-cycle exactly as in the temporal design.
//
// This gives the repo all three decomposition schemes of §5 -- temporal
// (Ipu), serial (SerialIpu) and spatial (SpatialIpu) -- over the same EHU,
// accumulator and reference models.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.h"
#include "core/accumulator.h"
#include "core/ehu.h"
#include "core/nibble.h"
#include "core/reference.h"
#include "softfloat/softfloat.h"

namespace mpipu {

struct SpatialIpuConfig {
  int n_inputs = 16;
  /// Adder tree width w; safe precision w - 9 as in the temporal IPU.
  int adder_tree_width = 28;
  int software_precision = 28;
  bool multi_cycle = true;
  bool skip_empty_bands = true;  ///< occupied-band cycle counting (§3.2)
  AccumulatorConfig accumulator{};

  int safe_precision() const { return adder_tree_width - 9; }
  int window_guard() const { return adder_tree_width - 10; }
};

struct SpatialIpuStats {
  int64_t fp_ops = 0;
  int64_t cycles = 0;
  int64_t multi_cycle_ops = 0;
};

class SpatialIpu {
 public:
  explicit SpatialIpu(const SpatialIpuConfig& cfg);

  const SpatialIpuConfig& config() const { return cfg_; }
  const SpatialIpuStats& stats() const { return stats_; }
  /// Multipliers this unit instantiates (vs n for the temporal IPU).
  template <FpFormat F>
  static constexpr int multipliers_per_input() {
    return fp_nibble_count(F) * fp_nibble_count(F);
  }

  void reset_accumulator();

  /// One FP inner product, all nibble products in parallel.
  /// Returns datapath cycles (1 when every combined shift fits one band).
  template <FpFormat F>
  int fp_accumulate(std::span<const Soft<F>> a, std::span<const Soft<F>> b);

  template <FpFormat Out>
  Soft<Out> read_fp() const {
    return Soft<Out>::round_from_fixed(acc_.value());
  }
  FixedPoint read_raw() const { return acc_.value(); }

 private:
  SpatialIpuConfig cfg_;
  Accumulator acc_;
  SpatialIpuStats stats_;
};

// ---------------------------------------------------------------------------

inline SpatialIpu::SpatialIpu(const SpatialIpuConfig& cfg)
    : cfg_(cfg), acc_(cfg.accumulator) {
  assert(cfg_.n_inputs >= 1);
  assert(!cfg_.multi_cycle || cfg_.safe_precision() >= 1);
}

inline void SpatialIpu::reset_accumulator() { acc_.reset(); }

template <FpFormat F>
int SpatialIpu::fp_accumulate(std::span<const Soft<F>> a, std::span<const Soft<F>> b) {
  assert(a.size() == b.size());
  assert(static_cast<int>(a.size()) <= cfg_.n_inputs);
  const size_t n = a.size();
  const int kn = fp_nibble_count(F);
  const int top_weight = 2 * (4 * (kn - 1) - fp_pad_bits(F));  // wi+wj of (K-1,K-1)

  std::vector<Decoded> da(n), db(n);
  std::vector<NibbleOperand> na(n), nb(n);
  for (size_t k = 0; k < n; ++k) {
    da[k] = a[k].decode();
    db[k] = b[k].decode();
    na[k] = decompose_fp<F>(da[k]);
    nb[k] = decompose_fp<F>(db[k]);
  }

  EhuOptions eopts;
  eopts.software_precision = cfg_.software_precision;
  eopts.safe_precision = std::max(cfg_.safe_precision(), 1);
  const EhuResult ehu = run_ehu(da, db, eopts);

  const int w = cfg_.adder_tree_width;
  const int guard = cfg_.window_guard();
  const int sp = cfg_.safe_precision();
  const bool single_cycle = !cfg_.multi_cycle;

  // Combined shift per (k, i, j): EHU alignment + nibble-significance
  // offset, so every lane product aligns against 2^(max_exp + top_weight).
  // Find the band span first.
  int max_band = 0;
  uint64_t occupied = 1;
  if (!single_cycle) {
    for (size_t k = 0; k < n; ++k) {
      if (ehu.masked[k]) continue;
      for (int i = 0; i < kn; ++i) {
        for (int j = 0; j < kn; ++j) {
          const int wi = na[k].weight_exp[static_cast<size_t>(i)];
          const int wj = nb[k].weight_exp[static_cast<size_t>(j)];
          const int shift = ehu.align[k] + top_weight - (wi + wj);
          const int band = shift / sp;
          max_band = std::max(max_band, band);
          occupied |= uint64_t{1} << std::min(band, 63);
        }
      }
    }
  }
  const int bands = single_cycle ? 1 : max_band + 1;

  // value(lane) = p * 2^(wi+wj) * 2^(E_k - 2 man) ; aligned to the top:
  // = p * 2^(-shift) * 2^(top_weight + max_exp - 2 man).
  const int base_rescale =
      top_weight - 2 * F.man_bits - guard + acc_.config().frac_bits;

  for (int c = 0; c < bands; ++c) {
    int128 tree_sum = 0;
    for (size_t k = 0; k < n; ++k) {
      if (ehu.masked[k]) continue;
      for (int i = 0; i < kn; ++i) {
        for (int j = 0; j < kn; ++j) {
          const int wi = na[k].weight_exp[static_cast<size_t>(i)];
          const int wj = nb[k].weight_exp[static_cast<size_t>(j)];
          const int shift = ehu.align[k] + top_weight - (wi + wj);
          if (!single_cycle && shift / sp != c) continue;
          const int local = single_cycle ? std::min(shift, w) : shift - c * sp;
          const int32_t p = multiply_lane(na[k].v[static_cast<size_t>(i)],
                                          nb[k].v[static_cast<size_t>(j)]);
          const int net = guard - local;
          tree_sum += net >= 0 ? shl(p, net) : asr(p, -net);
        }
      }
    }
    const int rescale = base_rescale - (single_cycle ? 0 : c * sp);
    acc_.add(rescale >= 0 ? shl(tree_sum, rescale) : asr(tree_sum, -rescale),
             ehu.max_exp);
  }

  const int cycles =
      single_cycle
          ? 1
          : (cfg_.skip_empty_bands
                 ? __builtin_popcountll(occupied & ((max_band >= 63)
                                                        ? ~uint64_t{0}
                                                        : ((uint64_t{1} << (max_band + 1)) - 1)))
                 : bands);
  ++stats_.fp_ops;
  stats_.cycles += cycles;
  if (cycles > 1) ++stats_.multi_cycle_ops;
  return cycles;
}

}  // namespace mpipu
