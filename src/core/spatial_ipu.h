// Spatially decomposed inner product unit.
//
// The paper's Related Work contrasts its *temporal* nibble decomposition
// with *spatial* decomposition (NVDLA computes an FP16 product on two INT8
// units side by side; DP4A splits an INT32 unit into four INT8 lanes) and
// notes that "our proposed architecture optimization ... is orthogonal to
// the decomposition scheme (i.e., temporal, serial, spatial)" (§5).
//
// `SpatialIpu` realizes that claim: all Ka x Kb nibble products of every
// input pair are computed in the same cycle on Ka*Kb*n multipliers, so the
// alignment shift of lane (k, i, j) combines the EHU alignment d_k with the
// nibble-significance offset (top_weight - wi - wj).  The MC banding then
// partitions the *combined* shifts: concentrated exponents finish in one
// cycle (9x the temporal throughput for 9x the multipliers); wide
// alignments multi-cycle exactly as in the temporal design.
//
// This gives the repo all three decomposition schemes of §5 -- temporal
// (Ipu), serial (SerialIpu) and spatial (SpatialIpu) -- over the same EHU,
// accumulator and reference models.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.h"
#include "core/accumulator.h"
#include "core/ehu.h"
#include "core/nibble.h"
#include "core/prepared.h"
#include "core/reference.h"
#include "core/simd/simd.h"
#include "softfloat/softfloat.h"

namespace mpipu {

struct SpatialIpuConfig {
  int n_inputs = 16;
  /// Adder tree width w; safe precision w - 9 as in the temporal IPU.
  int adder_tree_width = 28;
  int software_precision = 28;
  bool multi_cycle = true;
  bool skip_empty_bands = true;  ///< occupied-band cycle counting (§3.2)
  AccumulatorConfig accumulator{};

  int safe_precision() const { return adder_tree_width - 9; }
  int window_guard() const { return adder_tree_width - 10; }
};

struct SpatialIpuStats {
  int64_t fp_ops = 0;
  int64_t cycles = 0;
  int64_t multi_cycle_ops = 0;
};

class SpatialIpu {
 public:
  explicit SpatialIpu(const SpatialIpuConfig& cfg);

  const SpatialIpuConfig& config() const { return cfg_; }
  const SpatialIpuStats& stats() const { return stats_; }
  /// Multipliers this unit instantiates (vs n for the temporal IPU).
  template <FpFormat F>
  static constexpr int multipliers_per_input() {
    return fp_nibble_count(F) * fp_nibble_count(F);
  }

  void reset_accumulator();

  /// One FP inner product, all nibble products in parallel.
  /// Returns datapath cycles (1 when every combined shift fits one band).
  template <FpFormat F>
  int fp_accumulate(std::span<const Soft<F>> a, std::span<const Soft<F>> b);

  /// Prepared-operand fast path (core/prepared.h): per op only the EHU and
  /// the combined-shift serve loop run, on reused scratch.  Bit- and
  /// cycle-identical to fp_accumulate<kFp16Format> over the same values.
  int fp16_accumulate_prepared(const PreparedFp16View& a,
                               const PreparedFp16View& b);

  template <FpFormat Out>
  Soft<Out> read_fp() const {
    return Soft<Out>::round_from_fixed(acc_.value());
  }
  FixedPoint read_raw() const { return acc_.value(); }

 private:
  template <typename TreeInt>
  int run_prepared_fp16(const PreparedFp16View& a, const PreparedFp16View& b);

  /// Vectorized serve loop (core/simd), MC mode only: the combined shift of
  /// lane product (k, i, j) depends only on (k, i + j), and in MC mode the
  /// net window shift is always a left shift (local < sp <= guard + 1),
  /// which distributes over addition -- so the 9 products collapse into 5
  /// diagonal pre-sums served band-by-band.  Single-cycle mode right-shifts
  /// (truncates) per product and stays on the scalar oracle.  kNarrow
  /// selects int32 vector accumulators (tree bound <= 31 bits).
  template <bool kNarrow>
  int run_prepared_fp16_simd(const PreparedFp16View& a,
                             const PreparedFp16View& b);

  SpatialIpuConfig cfg_;
  Accumulator acc_;
  SpatialIpuStats stats_;
  // Prepared-path scratch: lane products grouped by serve band, reused per
  // op (entries with a zero product are dropped -- they cannot change the
  // adder tree -- but still count toward band occupancy, which is an
  // exponent-level notion).
  EhuResult ehu_;
  std::vector<int32_t> entry_begin_;
  std::vector<int32_t> entry_cursor_;
  std::vector<int32_t> entry_p_;
  std::vector<int32_t> entry_shift_;
  // Vectorized-path scratch: 5 diagonal product planes and their per-lane
  // serve band / up-shift planes, plane-major with a shared stride, plus
  // the fused-EHU align/band planes.
  std::vector<int16_t> diag_;
  std::vector<int32_t> dband_, dup_;
  std::vector<int32_t> falign_, fband_;
};

// ---------------------------------------------------------------------------

inline SpatialIpu::SpatialIpu(const SpatialIpuConfig& cfg)
    : cfg_(cfg), acc_(cfg.accumulator) {
  assert(cfg_.n_inputs >= 1);
  assert(!cfg_.multi_cycle || cfg_.safe_precision() >= 1);
}

inline void SpatialIpu::reset_accumulator() { acc_.reset(); }

template <FpFormat F>
int SpatialIpu::fp_accumulate(std::span<const Soft<F>> a, std::span<const Soft<F>> b) {
  assert(a.size() == b.size());
  assert(static_cast<int>(a.size()) <= cfg_.n_inputs);
  const size_t n = a.size();
  const int kn = fp_nibble_count(F);
  const int top_weight = 2 * (4 * (kn - 1) - fp_pad_bits(F));  // wi+wj of (K-1,K-1)

  std::vector<Decoded> da(n), db(n);
  std::vector<NibbleOperand> na(n), nb(n);
  for (size_t k = 0; k < n; ++k) {
    da[k] = a[k].decode();
    db[k] = b[k].decode();
    na[k] = decompose_fp<F>(da[k]);
    nb[k] = decompose_fp<F>(db[k]);
  }

  EhuOptions eopts;
  eopts.software_precision = cfg_.software_precision;
  eopts.safe_precision = std::max(cfg_.safe_precision(), 1);
  const EhuResult ehu = run_ehu(da, db, eopts);

  const int w = cfg_.adder_tree_width;
  const int guard = cfg_.window_guard();
  const int sp = cfg_.safe_precision();
  const bool single_cycle = !cfg_.multi_cycle;

  // Combined shift per (k, i, j): EHU alignment + nibble-significance
  // offset, so every lane product aligns against 2^(max_exp + top_weight).
  // Find the band span first.
  int max_band = 0;
  uint64_t occupied = 1;
  if (!single_cycle) {
    for (size_t k = 0; k < n; ++k) {
      if (ehu.masked[k]) continue;
      for (int i = 0; i < kn; ++i) {
        for (int j = 0; j < kn; ++j) {
          const int wi = na[k].weight_exp[static_cast<size_t>(i)];
          const int wj = nb[k].weight_exp[static_cast<size_t>(j)];
          const int shift = ehu.align[k] + top_weight - (wi + wj);
          const int band = shift / sp;
          max_band = std::max(max_band, band);
          occupied |= uint64_t{1} << std::min(band, 63);
        }
      }
    }
  }
  const int bands = single_cycle ? 1 : max_band + 1;

  // value(lane) = p * 2^(wi+wj) * 2^(E_k - 2 man) ; aligned to the top:
  // = p * 2^(-shift) * 2^(top_weight + max_exp - 2 man).
  const int base_rescale =
      top_weight - 2 * F.man_bits - guard + acc_.config().frac_bits;

  for (int c = 0; c < bands; ++c) {
    int128 tree_sum = 0;
    for (size_t k = 0; k < n; ++k) {
      if (ehu.masked[k]) continue;
      for (int i = 0; i < kn; ++i) {
        for (int j = 0; j < kn; ++j) {
          const int wi = na[k].weight_exp[static_cast<size_t>(i)];
          const int wj = nb[k].weight_exp[static_cast<size_t>(j)];
          const int shift = ehu.align[k] + top_weight - (wi + wj);
          if (!single_cycle && shift / sp != c) continue;
          const int local = single_cycle ? std::min(shift, w) : shift - c * sp;
          const int32_t p = multiply_lane(na[k].v[static_cast<size_t>(i)],
                                          nb[k].v[static_cast<size_t>(j)]);
          const int net = guard - local;
          tree_sum += net >= 0 ? shl(p, net) : asr(p, -net);
        }
      }
    }
    const int rescale = base_rescale - (single_cycle ? 0 : c * sp);
    acc_.add(rescale >= 0 ? shl(tree_sum, rescale) : asr(tree_sum, -rescale),
             ehu.max_exp);
  }

  const int cycles =
      single_cycle
          ? 1
          : (cfg_.skip_empty_bands
                 ? __builtin_popcountll(occupied & ((max_band >= 63)
                                                        ? ~uint64_t{0}
                                                        : ((uint64_t{1} << (max_band + 1)) - 1)))
                 : bands);
  ++stats_.fp_ops;
  stats_.cycles += cycles;
  if (cycles > 1) ++stats_.multi_cycle_ops;
  return cycles;
}

template <typename TreeInt>
int SpatialIpu::run_prepared_fp16(const PreparedFp16View& a,
                                  const PreparedFp16View& b) {
  const size_t n = a.n;
  constexpr FpFormat F = kFp16Format;
  constexpr int kn = fp_nibble_count(F);
  constexpr int z = fp_pad_bits(F);
  constexpr int top_weight = 2 * (4 * (kn - 1) - z);

  EhuOptions eopts;
  eopts.software_precision = cfg_.software_precision;
  eopts.safe_precision = std::max(cfg_.safe_precision(), 1);
  run_ehu(std::span<const int32_t>(a.exp, n), std::span<const int32_t>(b.exp, n),
          eopts, ehu_);

  const int w = cfg_.adder_tree_width;
  const int guard = cfg_.window_guard();
  const int sp = cfg_.safe_precision();
  const bool single_cycle = !cfg_.multi_cycle;

  // Static significance offsets: lane product (i, j) sits top_weight -
  // (wi + wj) below the op's top-aligned product, wi = 4i - z.
  // shift(k, i, j) = align[k] + offs(i, j).
  auto offs = [](int i, int j) { return top_weight - (4 * i - z) - (4 * j - z); };

  // Band span and occupancy, exactly as the per-op path computes them
  // (exponent-level: every unmasked lane product counts, zero or not).
  int max_band = 0;
  uint64_t occupied = 1;
  if (!single_cycle) {
    for (size_t k = 0; k < n; ++k) {
      if (ehu_.masked[k]) continue;
      for (int i = 0; i < kn; ++i) {
        for (int j = 0; j < kn; ++j) {
          const int band = (ehu_.align[k] + offs(i, j)) / sp;
          max_band = std::max(max_band, band);
          occupied |= uint64_t{1} << std::min(band, 63);
        }
      }
    }
  }
  const int bands = single_cycle ? 1 : max_band + 1;

  // Group the nonzero lane products by serve band (counting sort into
  // reused scratch); zero products are dropped here -- adding a zero to the
  // adder tree is a no-op -- after occupancy was counted above.
  entry_begin_.assign(static_cast<size_t>(bands) + 1, 0);
  for (size_t k = 0; k < n; ++k) {
    if (ehu_.masked[k]) continue;
    for (int i = 0; i < kn; ++i) {
      if (a.nib_plane(i)[k] == 0) continue;
      for (int j = 0; j < kn; ++j) {
        if (b.nib_plane(j)[k] == 0) continue;
        const int shift = ehu_.align[k] + offs(i, j);
        const int c = single_cycle ? 0 : shift / sp;
        ++entry_begin_[static_cast<size_t>(c) + 1];
      }
    }
  }
  for (int c = 0; c < bands; ++c) {
    entry_begin_[static_cast<size_t>(c) + 1] += entry_begin_[static_cast<size_t>(c)];
  }
  entry_cursor_.assign(entry_begin_.begin(), entry_begin_.end());
  const auto total = static_cast<size_t>(entry_begin_[static_cast<size_t>(bands)]);
  entry_p_.resize(total);
  entry_shift_.resize(total);
  for (size_t k = 0; k < n; ++k) {
    if (ehu_.masked[k]) continue;
    for (int i = 0; i < kn; ++i) {
      const int8_t nai = a.nib_plane(i)[k];
      if (nai == 0) continue;
      for (int j = 0; j < kn; ++j) {
        const int8_t nbj = b.nib_plane(j)[k];
        if (nbj == 0) continue;
        const int shift = ehu_.align[k] + offs(i, j);
        const int c = single_cycle ? 0 : shift / sp;
        const int local = single_cycle ? std::min(shift, w) : shift - c * sp;
        const auto slot = static_cast<size_t>(entry_cursor_[static_cast<size_t>(c)]++);
        entry_p_[slot] = static_cast<int32_t>(nai) * static_cast<int32_t>(nbj);
        entry_shift_[slot] = guard - local;
      }
    }
  }

  const int base_rescale =
      top_weight - 2 * F.man_bits - guard + acc_.config().frac_bits;
  for (int c = 0; c < bands; ++c) {
    TreeInt tree_sum = 0;
    for (auto e = static_cast<size_t>(entry_begin_[static_cast<size_t>(c)]),
              end = static_cast<size_t>(entry_begin_[static_cast<size_t>(c) + 1]);
         e != end; ++e) {
      const int s = entry_shift_[e];
      tree_sum += s >= 0 ? static_cast<TreeInt>(entry_p_[e]) << s
                         : static_cast<TreeInt>(entry_p_[e] >> -s);
    }
    const int rescale = base_rescale - (single_cycle ? 0 : c * sp);
    const auto tree128 = static_cast<int128>(tree_sum);
    acc_.add(rescale >= 0 ? shl(tree128, rescale) : asr(tree128, -rescale),
             ehu_.max_exp);
  }

  const int cycles =
      single_cycle
          ? 1
          : (cfg_.skip_empty_bands
                 ? __builtin_popcountll(occupied & ((max_band >= 63)
                                                        ? ~uint64_t{0}
                                                        : ((uint64_t{1} << (max_band + 1)) - 1)))
                 : bands);
  ++stats_.fp_ops;
  stats_.cycles += cycles;
  if (cycles > 1) ++stats_.multi_cycle_ops;
  return cycles;
}

template <bool kNarrow>
int SpatialIpu::run_prepared_fp16_simd(const PreparedFp16View& a,
                                       const PreparedFp16View& b) {
  const size_t n = a.n;
  constexpr FpFormat F = kFp16Format;
  constexpr int kn = fp_nibble_count(F);
  constexpr int z = fp_pad_bits(F);
  constexpr int top_weight = 2 * (4 * (kn - 1) - z);
  constexpr int kDiags = 2 * kn - 1;
  const simd::KernelTable& K = simd::kernels();

  if (n == 0) return run_prepared_fp16<int64_t>(a, b);

  const int guard = cfg_.window_guard();
  const int sp = cfg_.safe_precision();

  falign_.resize(n);
  fband_.resize(n);
  int32_t max_exp, ehu_max_band, n_masked, max_align;
  uint32_t ehu_occ;
  if (!K.ehu_fused_i32(a.exp, b.exp, n, cfg_.software_precision,
                       std::max(sp, 1), falign_.data(), fband_.data(),
                       &max_exp, &ehu_occ, &ehu_max_band, &n_masked,
                       &max_align)) {
    return run_prepared_fp16<int64_t>(a, b);
  }

  // Combined shift of lane product (k, i, j) = align[k] + offs(i + j) with
  // offs(s) = top_weight + 2z - 4s, so band and up-shift are per (k, s).
  // One kernel call produces all kDiags planes plus the band span and
  // occupancy exactly as the oracle computes them per product: every
  // diagonal has at least one (i, j), and band(k, i, j) depends only on
  // (k, s), so the occupied set over (k, s) is identical.
  const size_t stride = prepared_plane_stride(n);
  dband_.resize(kDiags * stride);
  dup_.resize(kDiags * stride);
  int32_t dmax = -1;
  uint32_t docc = 0;
  K.diag_bands_i32(falign_.data(), fband_.data(), n, top_weight + 2 * z,
                   kDiags, sp, guard, stride, dband_.data(), dup_.data(),
                   &dmax, &docc);
  const int max_band = std::max(static_cast<int>(dmax), 0);
  const uint64_t occupied = uint64_t{docc} | 1;
  const int bands = max_band + 1;
  if (bands > simd::kMaxBands) return run_prepared_fp16<int64_t>(a, b);

  diag_.resize(kDiags * stride);
  K.fp16_diag_products(a.nib, a.nib_stride, b.nib, b.nib_stride, n,
                       diag_.data(), stride);

  int64_t sums[simd::kMaxBands];
  if constexpr (kNarrow) {
    K.diag_band_sums_planes_i32(diag_.data(), dband_.data(), dup_.data(),
                                stride, kDiags, n, bands, sums);
  } else {
    K.diag_band_sums_planes_i64(diag_.data(), dband_.data(), dup_.data(),
                                stride, kDiags, n, bands, sums);
  }

  const int base_rescale =
      top_weight - 2 * F.man_bits - guard + acc_.config().frac_bits;
  const bool fast = acc_.fast64_ok(kNarrow ? 31 : 62, base_rescale);
  for (int c = 0; c < bands; ++c) {
    const int rescale = base_rescale - c * sp;
    if (fast) {
      acc_.add_tree64(sums[c], rescale, max_exp);
      continue;
    }
    const auto tree128 = static_cast<int128>(sums[c]);
    acc_.add(rescale >= 0 ? shl(tree128, rescale) : asr(tree128, -rescale),
             max_exp);
  }

  // bands <= kMaxBands here, so max_band < 63 and the occupancy kernel's
  // min(band, 31) clamp never reaches the bits this mask keeps.
  const int cycles =
      cfg_.skip_empty_bands
          ? __builtin_popcountll(occupied & ((uint64_t{1} << (max_band + 1)) - 1))
          : bands;
  ++stats_.fp_ops;
  stats_.cycles += cycles;
  if (cycles > 1) ++stats_.multi_cycle_ops;
  return cycles;
}

inline int SpatialIpu::fp16_accumulate_prepared(const PreparedFp16View& a,
                                                const PreparedFp16View& b) {
  assert(a.n == b.n);
  assert(static_cast<int>(a.n) <= cfg_.n_inputs);
  // 9-bit lane products shifted up to window_guard, summed over n * Ka*Kb
  // parallel multipliers.
  const int tree_bits =
      std::max(cfg_.window_guard(), 0) + 9 +
      ceil_log2(std::max(cfg_.n_inputs, 1) *
                multipliers_per_input<kFp16Format>()) +
      1;
  // The vector path needs MC mode (net shifts are then pure left shifts,
  // which distribute over the diagonal pre-sums) and exact magic-multiply
  // banding (combined shift < 2^16 for every unmasked lane).
  if (simd::active_backend() != simd::Backend::kScalar && cfg_.multi_cycle &&
      cfg_.software_precision < 65000) {
    if (tree_bits <= 31) return run_prepared_fp16_simd<true>(a, b);
    if (tree_bits <= 62) return run_prepared_fp16_simd<false>(a, b);
  }
  return tree_bits <= 62 ? run_prepared_fp16<int64_t>(a, b)
                         : run_prepared_fp16<int128>(a, b);
}

}  // namespace mpipu
