// Model: the network a Session runs or estimates -- paper §4.1 evaluates at
// *network* granularity (accuracy and cycles of whole forward paths), so the
// high-level API takes a whole network too, built either
//
//   * from an ad-hoc layer list carrying real weight tensors
//     (Model::from_layers) -- the numeric path: Session::run executes it
//     layer by layer on the bit-accurate datapath; or
//   * from a `Network` shape table (Model::from_network, e.g.
//     resnet18_forward()) -- the analytical path: Session::estimate costs it
//     on the cycle simulator.  Shape tables collapse repeated blocks and
//     carry no weights, so run() rejects them unless weights are
//     materialized onto a sequentially consistent table.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "nn/conv.h"
#include "nn/tensor.h"
#include "workload/networks.h"

namespace mpipu {

/// Pooling applied after the (optional) ReLU of a layer.
enum class PoolOp { kNone, kMax2, kGlobalAvg };

/// One convolution layer of a numeric model: weights plus the post-ops the
/// forward pass applies to its output (ReLU first, then pooling).
struct ModelLayer {
  std::string name;
  FilterBank filters;
  ConvSpec spec;
  bool relu = false;
  PoolOp pool = PoolOp::kNone;
};

class Model {
 public:
  /// Build from an explicit layer chain.  Validates channel chaining
  /// (layer[i+1].cin == layer[i].cout); throws std::invalid_argument on an
  /// empty list or a break in the chain.
  static Model from_layers(std::string name, std::vector<ModelLayer> layers);

  /// Wrap a shape table (workload/networks.h).  The model is estimate-only
  /// until materialize_weights() succeeds.
  static Model from_network(Network net);

  const std::string& name() const { return name_; }
  const std::vector<ModelLayer>& layers() const { return layers_; }
  bool has_weights() const { return !layers_.empty(); }
  /// True for from_network models: shape_table() returns the wrapped table
  /// (with its own tensor statistics) rather than deriving one from the
  /// layer chain.
  bool is_shape_table_backed() const { return shape_net_.has_value(); }
  /// The wrapped shape table of a from_network model, or nullptr for
  /// from_layers models (allocation-free peek; shape_table() copies).
  const Network* wrapped_network() const {
    return shape_net_.has_value() ? &*shape_net_ : nullptr;
  }

  /// Fill random FP16-rounded weights for every row of a wrapped shape
  /// table, drawn from the network's weight distribution.  Requires the
  /// table to be a sequentially consistent chain (each row's cin equals the
  /// previous row's cout and repeat == 1); throws std::invalid_argument
  /// otherwise.  Branchy topologies (resnet18_forward()-style residual /
  /// concat structure) are no longer out of reach -- build them as a
  /// GraphModel (api/graph_model.h, e.g. workload/graph_builders.h) and
  /// call GraphModel::materialize_weights instead.
  void materialize_weights(uint64_t seed);

  /// Shape table for the cycle-sim path: the wrapped Network for
  /// from_network models (input dims ignored); derived by walking the layer
  /// chain from (input_h, input_w) for from_layers models.
  Network shape_table(int input_h = 0, int input_w = 0) const;

 private:
  std::string name_;
  std::vector<ModelLayer> layers_;
  std::optional<Network> shape_net_;
};

/// Post-ops applied to a node's output: ReLU first, then pooling.  The
/// single definition every forward path shares (Session, CompiledModel,
/// graph nodes, the reference chain).
Tensor apply_post_ops(Tensor t, bool relu, PoolOp pool);
Tensor apply_post_ops(Tensor t, const ModelLayer& l);

/// One step of the exact FP32 reference chain: host-double convolution of
/// `input` with the layer's filters, then the layer's post-ops.  Chaining
/// this over a model's layers is *the* reference forward pass -- shared by
/// Session::run's per-layer comparison, Session::reference and
/// CompiledModel's cached chain, so the three can never drift.
Tensor reference_layer(const Tensor& input, const ModelLayer& l);

}  // namespace mpipu
