#include "api/precision_policy.h"

namespace mpipu {

std::string LayerPrecision::to_string() const {
  if (kind == Kind::kFp16) {
    return accum == AccumKind::kFp32 ? "fp16+fp32acc" : "fp16+fp16acc";
  }
  return "int" + std::to_string(a_bits) + "x" + std::to_string(w_bits);
}

PrecisionPolicy PrecisionPolicy::all_fp16(AccumKind accum) {
  PrecisionPolicy p;
  p.default_ = LayerPrecision::fp16(accum);
  return p;
}

PrecisionPolicy PrecisionPolicy::all_int(int bits) {
  PrecisionPolicy p;
  p.default_ = LayerPrecision::int_bits(bits, bits);
  return p;
}

PrecisionPolicy PrecisionPolicy::int8_except_first_last() {
  PrecisionPolicy p;
  p.default_ = LayerPrecision::int_bits(8, 8);
  p.first_last_ = LayerPrecision::fp16(AccumKind::kFp32);
  return p;
}

PrecisionPolicy& PrecisionPolicy::set_default(LayerPrecision p) {
  default_ = p;
  return *this;
}

PrecisionPolicy& PrecisionPolicy::set_first_last(LayerPrecision p) {
  first_last_ = p;
  return *this;
}

PrecisionPolicy& PrecisionPolicy::set_layer(const std::string& name,
                                            LayerPrecision p) {
  by_name_[name] = p;
  return *this;
}

PrecisionPolicy& PrecisionPolicy::set_layer(size_t index, LayerPrecision p) {
  by_index_[index] = p;
  return *this;
}

LayerPrecision PrecisionPolicy::resolve(size_t index, size_t n_layers,
                                        const std::string& name) const {
  if (const auto it = by_name_.find(name); it != by_name_.end()) {
    return it->second;
  }
  if (const auto it = by_index_.find(index); it != by_index_.end()) {
    return it->second;
  }
  if (first_last_.has_value() && (index == 0 || index + 1 == n_layers)) {
    return *first_last_;
  }
  return default_;
}

}  // namespace mpipu
