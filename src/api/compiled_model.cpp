#include "api/compiled_model.h"

#include <optional>
#include <stdexcept>

namespace mpipu {

namespace {

/// Entries kept in the per-input reference-chain cache.  Sweeps re-running
/// the same input (policy/config studies) hit entry 0 forever; anything
/// streaming distinct inputs just rotates through without growing.
constexpr size_t kMaxRefCacheEntries = 4;

class Fnv1a {
 public:
  void bytes(const void* p, size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (size_t i = 0; i < n; ++i) {
      h_ ^= b[i];
      h_ *= 1099511628211ull;
    }
  }
  void str(const std::string& s) {
    const uint64_t n = s.size();
    bytes(&n, sizeof(n));
    bytes(s.data(), s.size());
  }
  template <typename T>
  void pod(const T& v) {
    bytes(&v, sizeof(v));
  }
  uint64_t value() const { return h_; }

 private:
  uint64_t h_ = 1469598103934665603ull;
};

}  // namespace

uint64_t model_fingerprint(const Model& model) {
  Fnv1a h;
  h.str(model.name());
  h.pod(static_cast<uint64_t>(model.layers().size()));
  for (const ModelLayer& l : model.layers()) {
    h.str(l.name);
    h.pod(l.spec.stride);
    h.pod(l.spec.pad);
    h.pod(static_cast<int>(l.relu));
    h.pod(static_cast<int>(l.pool));
    h.pod(l.filters.cout);
    h.pod(l.filters.cin);
    h.pod(l.filters.kh);
    h.pod(l.filters.kw);
    h.bytes(l.filters.data.data(), l.filters.data.size() * sizeof(double));
  }
  return h.value();
}

bool CompiledModel::matches(const Model& model) const {
  if (model.name() != name_) return false;
  const std::vector<ModelLayer>& theirs = model.layers();
  if (theirs.size() != layers_.size()) return false;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const ModelLayer& a = layers_[i];
    const ModelLayer& b = theirs[i];
    if (a.name != b.name || a.spec.stride != b.spec.stride ||
        a.spec.pad != b.spec.pad || a.relu != b.relu || a.pool != b.pool ||
        a.filters.cout != b.filters.cout || a.filters.cin != b.filters.cin ||
        a.filters.kh != b.filters.kh || a.filters.kw != b.filters.kw ||
        a.filters.data != b.filters.data) {
      return false;
    }
  }
  // Two from_network models can share name, specs and (seeded) weights yet
  // wrap different shape tables / tensor statistics -- which is exactly
  // what estimate() consumes.  Compare the wrapped table (in place, no
  // copy) against the one baked at compile time.  For from_layers models
  // the table is derived from the layers just compared, so equality
  // already holds and the comparison is skipped.
  const Network* wrapped = model.wrapped_network();
  if ((wrapped != nullptr) != table_backed_) return false;
  return wrapped == nullptr || *wrapped == shape_net_;
}

TileConfig composed_tile_for(const RunSpec& spec, const TileConfig& geometry) {
  TileConfig t = geometry;
  t.datapath = spec.datapath;
  if (t.c_unroll != spec.datapath.n_inputs) {
    throw std::invalid_argument(
        "RunSpec: tile c_unroll (" + std::to_string(t.c_unroll) +
        ") must equal datapath n_inputs (" +
        std::to_string(spec.datapath.n_inputs) +
        ") -- one RunSpec drives both paths");
  }
  return t;
}

CompiledModel CompiledModel::compile(const Model& model, const RunSpec& spec,
                                     const CompileOptions& opts) {
  if (opts.input_h <= 0 || opts.input_w <= 0) {
    throw std::invalid_argument(
        "CompiledModel::compile: CompileOptions must carry the input spatial "
        "dims (got " + std::to_string(opts.input_h) + "x" +
        std::to_string(opts.input_w) +
        ") -- the packed gather offsets depend on them");
  }
  if (!model.has_weights()) {
    throw std::invalid_argument(
        "CompiledModel::compile: model '" + model.name() +
        "' carries no weights -- shape-table models are estimate-only; build "
        "with Model::from_layers or call materialize_weights()");
  }
  const std::vector<ModelLayer>& layers = model.layers();

  CompiledModel cm;
  cm.spec_ = spec;
  cm.name_ = model.name();
  cm.layers_ = layers;
  cm.in_c_ = layers.front().filters.cin;
  cm.in_h_ = opts.input_h;
  cm.in_w_ = opts.input_w;
  cm.shape_net_ = model.shape_table(opts.input_h, opts.input_w);
  cm.table_backed_ = model.is_shape_table_backed();
  cm.fingerprint_ = model_fingerprint(model);
  cm.ref_cache_ = std::make_shared<RefCache>();

  // Resolve and validate the whole policy up front: an unsupported INT
  // layer must be rejected at compile time, before anything executes.
  std::unique_ptr<Datapath> probe;
  cm.precisions_.resize(layers.size());
  for (size_t i = 0; i < layers.size(); ++i) {
    cm.precisions_[i] = spec.policy.resolve(i, layers.size(), layers[i].name);
    const LayerPrecision& p = cm.precisions_[i];
    if (p.kind != LayerPrecision::Kind::kInt) continue;
    if (!probe) probe = make_datapath(spec.datapath);
    if (!probe->supports_int(p.a_bits, p.w_bits)) {
      throw std::invalid_argument(
          "CompiledModel::compile: layer '" + layers[i].name + "' requests " +
          p.to_string() + " but the " + scheme_name(spec.datapath.scheme) +
          " scheme does not support it" +
          (spec.datapath.scheme == DecompositionScheme::kSpatial
               ? " (spatial is FP-only; pick an fp16 policy or a "
                 "temporal/serial datapath)"
               : ""));
    }
  }

  // Bake every layer: walk the activation geometry through the chain and
  // pack the filter planes for each layer's resolved mode.
  int c = cm.in_c_, h = opts.input_h, w = opts.input_w;
  for (size_t i = 0; i < layers.size(); ++i) {
    const ModelLayer& l = layers[i];
    const LayerPrecision& p = cm.precisions_[i];
    const int ho = l.spec.out_dim(h, l.filters.kh);
    const int wo = l.spec.out_dim(w, l.filters.kw);
    if (ho <= 0 || wo <= 0) {
      throw std::invalid_argument(
          "CompiledModel::compile: layer '" + l.name + "' maps " +
          std::to_string(h) + "x" + std::to_string(w) + " activations to " +
          std::to_string(ho) + "x" + std::to_string(wo) +
          " -- the chain collapses at these input dims");
    }
    CompiledLayer cl;
    cl.precision = p;
    cl.precision_label = p.to_string();
    if (p.kind == LayerPrecision::Kind::kFp16) {
      const PreparedFp16 flt_planes = prepare_fp16_planes(l.filters.data);
      cl.fp16_plan.build(c, h, w, l.filters, l.spec, flt_planes);
    } else {
      cl.qw = fit_symmetric(l.filters.data, p.w_bits);
      cl.int_digits = spec.datapath.scheme != DecompositionScheme::kSerial;
      const PreparedInt flt_planes =
          prepare_int_planes(l.filters.data, cl.qw, cl.int_digits);
      cl.int_plan.build(c, h, w, l.filters, l.spec, flt_planes);
    }
    cm.compiled_.push_back(std::move(cl));
    h = ho;
    w = wo;
    switch (l.pool) {
      case PoolOp::kNone: break;
      case PoolOp::kMax2: h /= 2; w /= 2; break;
      case PoolOp::kGlobalAvg: h = 1; w = 1; break;
    }
    c = l.filters.cout;
  }
  return cm;
}

void CompiledModel::validate_input(const Tensor& input) const {
  if (input.c != in_c_ || input.h != in_h_ || input.w != in_w_) {
    throw std::invalid_argument(
        "CompiledModel::run: input is " + std::to_string(input.c) + "x" +
        std::to_string(input.h) + "x" + std::to_string(input.w) +
        " but the model was compiled for " + std::to_string(in_c_) + "x" +
        std::to_string(in_h_) + "x" + std::to_string(in_w_) +
        " -- compile once per input geometry");
  }
}

std::shared_ptr<const std::vector<Tensor>> CompiledModel::reference_chain(
    const Tensor& input) const {
  {
    std::lock_guard<std::mutex> lock(ref_cache_->mu);
    for (const auto& e : ref_cache_->entries) {
      if (e.first == input.data) return e.second;
    }
  }
  // Compute outside the lock: concurrent callers with distinct inputs must
  // not serialize on the (expensive) reference convolutions.
  auto refs = std::make_shared<std::vector<Tensor>>();
  refs->reserve(layers_.size());
  Tensor ref = input;
  for (const ModelLayer& l : layers_) {
    ref = reference_layer(ref, l);
    refs->push_back(ref);
  }
  std::lock_guard<std::mutex> lock(ref_cache_->mu);
  for (const auto& e : ref_cache_->entries) {
    // A racing caller beat us to it; both chains are deterministic and
    // identical -- keep theirs so the cache holds one entry per input.
    if (e.first == input.data) return e.second;
  }
  if (ref_cache_->entries.size() >= kMaxRefCacheEntries) {
    ref_cache_->entries.erase(ref_cache_->entries.begin());
  }
  ref_cache_->entries.emplace_back(input.data, refs);
  return refs;
}

RunReport CompiledModel::run(const Tensor& input, const RunOptions& opts,
                             ThreadPool& pool) const {
  validate_input(input);

  RunReport report;
  report.model = name_;
  report.scheme = scheme_name(spec_.datapath.scheme);
  report.threads = pool.size();

  // Per-call scratch: one private datapath per worker slot.  Fresh units
  // mean per-call stats; the plans themselves are only read.
  std::vector<std::unique_ptr<Datapath>> units;
  units.reserve(static_cast<size_t>(pool.size()));
  for (int slot = 0; slot < pool.size(); ++slot) {
    units.push_back(make_datapath(spec_.datapath));
  }
  const auto units_stats = [&units] {
    DatapathStats total;
    for (const auto& u : units) total += u->stats();
    return total;
  };

  std::shared_ptr<const std::vector<Tensor>> refs;
  if (opts.compare_reference) refs = reference_chain(input);

  Tensor x = input;
  for (size_t i = 0; i < compiled_.size(); ++i) {
    const CompiledLayer& cl = compiled_[i];
    LayerRunReport lr;
    lr.layer = layers_[i].name;
    lr.precision = cl.precision_label;

    const DatapathStats before = units_stats();
    Tensor y;
    if (cl.precision.kind == LayerPrecision::Kind::kFp16) {
      const PreparedFp16 in_planes = prepare_fp16_planes(x.data);
      y = execute_fp16_plan(cl.fp16_plan, in_planes, pool, units,
                            spec_.datapath.n_inputs, cl.precision.accum);
    } else {
      // Activation quantization depends on the input values; only the
      // weight side was frozen at compile time.
      const QuantParams qa = fit_symmetric(x.data, cl.precision.a_bits);
      const PreparedInt in_planes =
          prepare_int_planes(x.data, qa, cl.int_digits);
      y = execute_int_plan(cl.int_plan, in_planes, pool, units,
                           spec_.datapath.n_inputs, cl.precision.a_bits,
                           cl.precision.w_bits, qa, cl.qw);
    }
    lr.stats = units_stats() - before;

    x = apply_post_ops(std::move(y), layers_[i]);
    if (refs) lr.error = compare_outputs(x, (*refs)[i]);
    report.totals += lr.stats;
    report.layers.push_back(std::move(lr));
  }

  report.output = std::move(x);
  if (refs) {
    report.end_to_end = report.layers.back().error;
    report.reference_output = refs->back();
  }
  if (opts.with_estimate) report.estimate = estimate();
  return report;
}

RunReport CompiledModel::run(const Tensor& input, const RunOptions& opts) const {
  // spec().threads == 1 (the serving default) makes this pool threadless --
  // slot 0 runs inline -- so per-call construction costs nothing.
  ThreadPool pool(spec_.threads);
  return run(input, opts, pool);
}

BatchRunReport CompiledModel::run_batch(const std::vector<Tensor>& inputs,
                                        const RunOptions& opts,
                                        ThreadPool& pool) const {
  // The estimate depends only on the compiled geometry: compute it once.
  RunOptions per_run = opts;
  per_run.with_estimate = false;
  std::optional<NetworkSimResult> est;

  BatchRunReport batch;
  batch.runs.reserve(inputs.size());
  for (const Tensor& input : inputs) {
    batch.runs.push_back(run(input, per_run, pool));
    if (opts.with_estimate) {
      if (!est.has_value()) est = estimate();
      batch.runs.back().estimate = *est;
    }
    batch.totals += batch.runs.back().totals;
  }
  return batch;
}

BatchRunReport CompiledModel::run_batch(const std::vector<Tensor>& inputs,
                                        const RunOptions& opts) const {
  ThreadPool pool(spec_.threads);
  return run_batch(inputs, opts, pool);
}

NetworkSimResult CompiledModel::estimate() const {
  return simulate_network(shape_net_, composed_tile_for(spec_, spec_.tile),
                          spec_.sim);
}

}  // namespace mpipu
