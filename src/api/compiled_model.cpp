#include "api/compiled_model.h"

#include <optional>
#include <stdexcept>

#include "core/simd/simd.h"
#include "nn/elementwise.h"
#include "sim/partition.h"

namespace mpipu {

namespace {

/// Entries kept in the per-input reference-chain cache.  Sweeps re-running
/// the same input (policy/config studies) hit entry 0 forever; anything
/// streaming distinct inputs just rotates through without growing.
constexpr size_t kMaxRefCacheEntries = 4;

class Fnv1a {
 public:
  void bytes(const void* p, size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (size_t i = 0; i < n; ++i) {
      h_ ^= b[i];
      h_ *= 1099511628211ull;
    }
  }
  void str(const std::string& s) {
    const uint64_t n = s.size();
    bytes(&n, sizeof(n));
    bytes(s.data(), s.size());
  }
  template <typename T>
  void pod(const T& v) {
    bytes(&v, sizeof(v));
  }
  uint64_t value() const { return h_; }

 private:
  uint64_t h_ = 1469598103934665603ull;
};

void check_compile_dims(const CompileOptions& opts) {
  if (opts.input_h <= 0 || opts.input_w <= 0) {
    throw std::invalid_argument(
        "CompiledModel::compile: CompileOptions must carry the input spatial "
        "dims (got " + std::to_string(opts.input_h) + "x" +
        std::to_string(opts.input_w) +
        ") -- the packed gather offsets depend on them");
  }
}

}  // namespace

uint64_t model_fingerprint(const Model& model) {
  Fnv1a h;
  h.str(model.name());
  h.pod(static_cast<uint64_t>(model.layers().size()));
  for (const ModelLayer& l : model.layers()) {
    h.str(l.name);
    h.pod(l.spec.stride);
    h.pod(l.spec.pad);
    h.pod(static_cast<int>(l.relu));
    h.pod(static_cast<int>(l.pool));
    h.pod(l.filters.cout);
    h.pod(l.filters.cin);
    h.pod(l.filters.kh);
    h.pod(l.filters.kw);
    h.bytes(l.filters.data.data(), l.filters.data.size() * sizeof(double));
  }
  return h.value();
}

bool CompiledModel::matches(const Model& model) const {
  if (is_graph_) return false;
  if (model.name() != name_) return false;
  const std::vector<ModelLayer>& theirs = model.layers();
  if (theirs.size() + 1 != nodes_.size()) return false;
  for (size_t i = 0; i < theirs.size(); ++i) {
    const GraphNode& a = nodes_[i + 1];  // chain layout: node 0 is the input
    const ModelLayer& b = theirs[i];
    if (a.name != b.name || a.spec.stride != b.spec.stride ||
        a.spec.pad != b.spec.pad || a.relu != b.relu || a.pool != b.pool ||
        a.filters.cout != b.filters.cout || a.filters.cin != b.filters.cin ||
        a.filters.kh != b.filters.kh || a.filters.kw != b.filters.kw ||
        a.filters.data != b.filters.data) {
      return false;
    }
  }
  // Two from_network models can share name, specs and (seeded) weights yet
  // wrap different shape tables / tensor statistics -- which is exactly
  // what estimate() consumes.  Compare the wrapped table (in place, no
  // copy) against the one baked at compile time.  For from_layers models
  // the table is derived from the layers just compared, so equality
  // already holds and the comparison is skipped.
  const Network* wrapped = model.wrapped_network();
  if ((wrapped != nullptr) != table_backed_) return false;
  return wrapped == nullptr || *wrapped == shape_net_;
}

bool CompiledModel::matches(const GraphModel& model) const {
  if (!is_graph_) return false;
  if (model.name() != name_) return false;
  if (!model.has_weights()) return false;  // compiled graphs carry weights
  // Tensor statistics feed the shape table estimate() consumes: two graphs
  // with identical nodes but different stats must not share a plan.
  if (!(model.tensor_stats() == graph_stats_)) return false;
  return model.nodes() == nodes_;
}

TileConfig composed_tile_for(const RunSpec& spec, const TileConfig& geometry) {
  TileConfig t = geometry;
  t.datapath = spec.datapath;
  if (t.c_unroll != spec.datapath.n_inputs) {
    throw std::invalid_argument(
        "RunSpec: tile c_unroll (" + std::to_string(t.c_unroll) +
        ") must equal datapath n_inputs (" +
        std::to_string(spec.datapath.n_inputs) +
        ") -- one RunSpec drives both paths");
  }
  return t;
}

CompiledModel CompiledModel::compile_nodes(std::vector<GraphNode> nodes,
                                           const RunSpec& spec,
                                           const CompileOptions& opts) {
  CompiledModel cm;
  cm.spec_ = spec;
  cm.nodes_ = std::move(nodes);
  // Full topology validation -- acyclicity, single input/output, channel
  // agreement into convs, shape agreement at joins, collapsing geometry --
  // plus the deterministic execution order and wave structure.
  cm.topo_ = analyze_graph(cm.nodes_, opts.input_h, opts.input_w);
  cm.in_c_ = cm.topo_.input_c;
  cm.in_h_ = opts.input_h;
  cm.in_w_ = opts.input_w;
  cm.ref_cache_ = std::make_shared<RefCache>();

  size_t n_convs = 0;
  for (const GraphNode& nd : cm.nodes_) {
    if (nd.op == GraphNode::Op::kConv) ++n_convs;
  }

  // Resolve and validate the whole policy up front: an unsupported INT
  // layer must be rejected at compile time, before anything is baked.
  std::unique_ptr<Datapath> probe;
  cm.precisions_.reserve(n_convs);
  for (int id : cm.topo_.order) {
    const GraphNode& nd = cm.nodes_[static_cast<size_t>(id)];
    if (nd.op != GraphNode::Op::kConv) continue;
    const LayerPrecision p =
        spec.policy.resolve(cm.precisions_.size(), n_convs, nd.name);
    cm.precisions_.push_back(p);
    if (p.kind != LayerPrecision::Kind::kInt) continue;
    if (!probe) probe = make_datapath(spec.datapath);
    if (!probe->supports_int(p.a_bits, p.w_bits)) {
      throw std::invalid_argument(
          "CompiledModel::compile: layer '" + nd.name + "' requests " +
          p.to_string() + " but the " + scheme_name(spec.datapath.scheme) +
          " scheme does not support it" +
          (spec.datapath.scheme == DecompositionScheme::kSpatial
               ? " (spatial is FP-only; pick an fp16 policy or a "
                 "temporal/serial datapath)"
               : ""));
    }
  }

  // Bake every conv node: the plan sees the node's input geometry (its
  // predecessor's post-post-op shape) and packs the filter planes for the
  // resolved mode.
  cm.compiled_.resize(cm.nodes_.size());
  size_t conv_index = 0;
  for (int id : cm.topo_.order) {
    const GraphNode& nd = cm.nodes_[static_cast<size_t>(id)];
    if (nd.op != GraphNode::Op::kConv) continue;
    const LayerPrecision& p = cm.precisions_[conv_index++];
    const int pred = nd.inputs[0];
    const int c = cm.topo_.out_c[static_cast<size_t>(pred)];
    const int h = cm.topo_.out_h[static_cast<size_t>(pred)];
    const int w = cm.topo_.out_w[static_cast<size_t>(pred)];
    CompiledNode& cl = cm.compiled_[static_cast<size_t>(id)];
    cl.precision = p;
    cl.precision_label = p.to_string();
    if (p.kind == LayerPrecision::Kind::kFp16) {
      const PreparedFp16 flt_planes = prepare_fp16_planes(nd.filters.data);
      cl.fp16_plan.build(c, h, w, nd.filters, nd.spec, flt_planes);
    } else {
      cl.qw = fit_symmetric(nd.filters.data, p.w_bits);
      cl.int_digits = spec.datapath.scheme != DecompositionScheme::kSerial;
      const PreparedInt flt_planes =
          prepare_int_planes(nd.filters.data, cl.qw, cl.int_digits);
      cl.int_plan.build(c, h, w, nd.filters, nd.spec, flt_planes);
    }
  }
  return cm;
}

CompiledModel CompiledModel::compile(const Model& model, const RunSpec& spec,
                                     const CompileOptions& opts) {
  check_compile_dims(opts);
  if (!model.has_weights()) {
    throw std::invalid_argument(
        "CompiledModel::compile: model '" + model.name() +
        "' carries no weights -- shape-table models are estimate-only; build "
        "with Model::from_layers or call materialize_weights()");
  }

  // A chain is the degenerate graph: one input node, every layer a conv
  // node consuming the previous one.  The execution core only knows graphs.
  std::vector<GraphNode> nodes;
  nodes.reserve(model.layers().size() + 1);
  GraphNode in;
  in.op = GraphNode::Op::kInput;
  in.name = "input";
  nodes.push_back(std::move(in));
  for (size_t i = 0; i < model.layers().size(); ++i) {
    const ModelLayer& l = model.layers()[i];
    GraphNode nd;
    nd.op = GraphNode::Op::kConv;
    nd.name = l.name;
    nd.inputs = {static_cast<int>(i)};
    nd.filters = l.filters;
    nd.spec = l.spec;
    nd.relu = l.relu;
    nd.pool = l.pool;
    nodes.push_back(std::move(nd));
  }

  CompiledModel cm = compile_nodes(std::move(nodes), spec, opts);
  cm.is_graph_ = false;
  cm.name_ = model.name();
  cm.shape_net_ = model.shape_table(opts.input_h, opts.input_w);
  cm.table_backed_ = model.is_shape_table_backed();
  cm.fingerprint_ = model_fingerprint(model);
  return cm;
}

CompiledModel CompiledModel::compile(const GraphModel& model,
                                     const RunSpec& spec,
                                     const CompileOptions& opts) {
  check_compile_dims(opts);
  if (!model.has_weights()) {
    throw std::invalid_argument(
        "CompiledModel::compile: graph '" + model.name() +
        "' carries no weights -- shape-only graphs are estimate-only; call "
        "materialize_weights() first");
  }
  CompiledModel cm = compile_nodes(model.nodes(), spec, opts);
  cm.is_graph_ = true;
  cm.name_ = model.name();
  cm.graph_stats_ = model.tensor_stats();
  cm.shape_net_ = model.shape_table(opts.input_h, opts.input_w);
  cm.table_backed_ = false;
  cm.fingerprint_ = graph_fingerprint(model);
  return cm;
}

std::string CompiledModel::input_geometry_mismatch(const Tensor& input) const {
  if (input.c == in_c_ && input.h == in_h_ && input.w == in_w_ &&
      input.data.size() ==
          static_cast<size_t>(in_c_) * static_cast<size_t>(in_h_) *
              static_cast<size_t>(in_w_)) {
    return {};
  }
  return "CompiledModel::run: input is " + std::to_string(input.c) + "x" +
         std::to_string(input.h) + "x" + std::to_string(input.w) + " (" +
         std::to_string(input.data.size()) +
         " values) but the model was compiled for " + std::to_string(in_c_) +
         "x" + std::to_string(in_h_) + "x" + std::to_string(in_w_) +
         " -- compile once per input geometry";
}

void CompiledModel::validate_input(const Tensor& input) const {
  const std::string mismatch = input_geometry_mismatch(input);
  if (!mismatch.empty()) throw std::invalid_argument(mismatch);
}

std::shared_ptr<const std::vector<Tensor>> CompiledModel::reference_chain(
    const Tensor& input) const {
  {
    MutexLock lock(ref_cache_->mu);
    for (const auto& e : ref_cache_->entries) {
      if (e.first == input.data) return e.second;
    }
  }
  // Compute outside the lock: concurrent callers with distinct inputs must
  // not serialize on the (expensive) reference convolutions.
  auto refs = std::make_shared<std::vector<Tensor>>(
      graph_reference_outputs(nodes_, topo_, input));
  MutexLock lock(ref_cache_->mu);
  for (const auto& e : ref_cache_->entries) {
    // A racing caller beat us to it; both chains are deterministic and
    // identical -- keep theirs so the cache holds one entry per input.
    if (e.first == input.data) return e.second;
  }
  if (ref_cache_->entries.size() >= kMaxRefCacheEntries) {
    ref_cache_->entries.erase(ref_cache_->entries.begin());
  }
  ref_cache_->entries.emplace_back(input.data, refs);
  return refs;
}

void CompiledModel::exec_node(
    int id, std::vector<Tensor>& acts, std::vector<DatapathStats>& stats,
    ThreadPool& pool, std::span<const std::unique_ptr<Datapath>> units) const {
  const GraphNode& nd = nodes_[static_cast<size_t>(id)];
  Tensor y;
  if (nd.op == GraphNode::Op::kConv) {
    const CompiledNode& cl = compiled_[static_cast<size_t>(id)];
    const Tensor& x = acts[static_cast<size_t>(nd.inputs[0])];
    const bool fp16 = cl.precision.kind == LayerPrecision::Kind::kFp16;
    const int cout = fp16 ? cl.fp16_plan.cout : cl.int_plan.cout;
    const int ho = fp16 ? cl.fp16_plan.ho : cl.int_plan.ho;

    // Host-sharded mode (RunSpec.partition.shard_host): mirror the sim's
    // tile partition on the host pool -- one shard per tile, joined exactly.
    // Byte-identity with the unsharded path holds because (a) every output
    // element's accumulate sequence depends only on its own (co, y, x) --
    // see run_conv_plan_shard -- and (b) DatapathStats are additive per-op
    // counters, so the sum of fresh per-shard units equals the unsharded
    // before/after delta regardless of order or thread count.
    std::vector<ShardRange> shards;
    if (spec_.partition.shard_host && spec_.tile.num_tiles > 1) {
      for (const ShardRange& r : partition_output(
               cout, ho, spec_.tile.num_tiles, spec_.partition.kind)) {
        if (!r.empty()) shards.push_back(r);
      }
    }
    if (shards.size() > 1) {
      // Prepared once, shared `const` across shards: activation
      // quantization must see the FULL input (fit_symmetric over all
      // values), exactly as the unsharded path does.
      PreparedFp16 fp_planes;
      PreparedInt int_planes;
      QuantParams qa{};
      if (fp16) {
        fp_planes = prepare_fp16_planes(x.data);
      } else {
        qa = fit_symmetric(x.data, cl.precision.a_bits);
        int_planes = prepare_int_planes(x.data, qa, cl.int_digits);
      }
      std::vector<Tensor> parts(shards.size());
      std::vector<DatapathStats> part_stats(shards.size());
      pool.parallel_for(
          static_cast<int64_t>(shards.size()),
          [&](int64_t begin, int64_t end, int) {
            for (int64_t i = begin; i < end; ++i) {
              const ShardRange& r = shards[static_cast<size_t>(i)];
              // Same dispatch shape as multi-node waves: a private inline
              // (threadless) pool and a fresh datapath per shard keep
              // per-shard stats deterministic for any pool size.
              ThreadPool inline_pool(1);
              std::vector<std::unique_ptr<Datapath>> unit;
              unit.push_back(make_datapath(spec_.datapath));
              parts[static_cast<size_t>(i)] =
                  fp16 ? execute_fp16_plan_shard(
                             cl.fp16_plan, fp_planes, inline_pool, unit,
                             spec_.datapath.n_inputs, cl.precision.accum,
                             r.co_begin, r.co_end, r.row_begin, r.row_end)
                       : execute_int_plan_shard(
                             cl.int_plan, int_planes, inline_pool, unit,
                             spec_.datapath.n_inputs, cl.precision.a_bits,
                             cl.precision.w_bits, qa, cl.qw, r.co_begin,
                             r.co_end, r.row_begin, r.row_end);
              part_stats[static_cast<size_t>(i)] = unit[0]->stats();
            }
          });
      std::vector<const Tensor*> part_ptrs;
      part_ptrs.reserve(parts.size());
      for (const Tensor& t : parts) part_ptrs.push_back(&t);
      y = spec_.partition.kind == PartitionKind::kOutputChannel
              ? channel_concat(part_ptrs)
              : row_concat(part_ptrs);
      DatapathStats sum;
      for (const DatapathStats& s : part_stats) sum += s;
      stats[static_cast<size_t>(id)] = sum;
    } else {
      DatapathStats before;
      for (const auto& u : units) before += u->stats();
      if (fp16) {
        const PreparedFp16 in_planes = prepare_fp16_planes(x.data);
        y = execute_fp16_plan(cl.fp16_plan, in_planes, pool, units,
                              spec_.datapath.n_inputs, cl.precision.accum);
      } else {
        // Activation quantization depends on the input values; only the
        // weight side was frozen at compile time.
        const QuantParams qa = fit_symmetric(x.data, cl.precision.a_bits);
        const PreparedInt in_planes =
            prepare_int_planes(x.data, qa, cl.int_digits);
        y = execute_int_plan(cl.int_plan, in_planes, pool, units,
                             spec_.datapath.n_inputs, cl.precision.a_bits,
                             cl.precision.w_bits, qa, cl.qw);
      }
      DatapathStats after;
      for (const auto& u : units) after += u->stats();
      stats[static_cast<size_t>(id)] = after - before;
    }
  } else {
    // Joins are exact elementwise ops: no datapath work, no stats.
    std::vector<const Tensor*> parts;
    parts.reserve(nd.inputs.size());
    for (int p : nd.inputs) parts.push_back(&acts[static_cast<size_t>(p)]);
    y = nd.op == GraphNode::Op::kAdd ? tensor_add(parts)
                                     : channel_concat(parts);
  }
  acts[static_cast<size_t>(id)] = apply_post_ops(std::move(y), nd.relu, nd.pool);
}

RunReport CompiledModel::run(const Tensor& input, const RunOptions& opts,
                             ThreadPool& pool) const {
  // Per-call scratch: one private datapath per worker slot for single-node
  // waves (pixel-level parallelism).  The plans themselves are only read.
  std::vector<std::unique_ptr<Datapath>> units;
  units.reserve(static_cast<size_t>(pool.size()));
  for (int slot = 0; slot < pool.size(); ++slot) {
    units.push_back(make_datapath(spec_.datapath));
  }
  return run_with_units(input, opts, pool, units);
}

RunReport CompiledModel::run_with_units(
    const Tensor& input, const RunOptions& opts, ThreadPool& pool,
    std::span<const std::unique_ptr<Datapath>> units) const {
  validate_input(input);

  RunReport report;
  report.model = name_;
  report.scheme = scheme_name(spec_.datapath.scheme);
  report.kernel_backend = simd::backend_name();
  report.threads = pool.size();

  std::shared_ptr<const std::vector<Tensor>> refs;
  if (opts.compare_reference) refs = reference_chain(input);

  std::vector<Tensor> acts(nodes_.size());
  acts[static_cast<size_t>(topo_.input_node)] = input;
  std::vector<DatapathStats> node_stats(nodes_.size());

  for (const std::vector<int>& wave : topo_.waves) {
    if (wave.size() == 1) {
      // The chain fast path: one node gets the whole pool, parallel over
      // output pixels -- bit-identical to the pre-graph executor.
      exec_node(wave[0], acts, node_stats, pool, units);
      continue;
    }
    // Independent branches: one node per worker, each with a private
    // inline (threadless) pool and its own fresh datapath so per-node
    // stats stay deterministic for any pool size.
    pool.parallel_for(
        static_cast<int64_t>(wave.size()),
        [&](int64_t begin, int64_t end, int) {
          for (int64_t i = begin; i < end; ++i) {
            const int id = wave[static_cast<size_t>(i)];
            ThreadPool inline_pool(1);
            std::vector<std::unique_ptr<Datapath>> unit;
            if (nodes_[static_cast<size_t>(id)].op == GraphNode::Op::kConv) {
              unit.push_back(make_datapath(spec_.datapath));
            }
            exec_node(id, acts, node_stats, inline_pool, unit);
          }
        });
  }

  for (int id : topo_.order) {
    if (id == topo_.input_node) continue;
    const GraphNode& nd = nodes_[static_cast<size_t>(id)];
    LayerRunReport lr;
    lr.layer = nd.name;
    lr.precision = nd.op == GraphNode::Op::kConv
                       ? compiled_[static_cast<size_t>(id)].precision_label
                       : graph_op_name(nd.op);
    lr.stats = node_stats[static_cast<size_t>(id)];
    if (refs) lr.error = compare_outputs(acts[static_cast<size_t>(id)],
                                         (*refs)[static_cast<size_t>(id)]);
    report.totals += lr.stats;
    report.layers.push_back(std::move(lr));
  }

  report.output = std::move(acts[static_cast<size_t>(topo_.output_node)]);
  if (refs) {
    report.end_to_end = report.layers.back().error;
    report.reference_output = (*refs)[static_cast<size_t>(topo_.output_node)];
  }
  if (opts.with_estimate) report.estimate = estimate();
  return report;
}

RunReport CompiledModel::run(const Tensor& input, const RunOptions& opts) const {
  // spec().threads == 1 (the serving default) makes this pool threadless --
  // slot 0 runs inline -- so per-call construction costs nothing.
  ThreadPool pool(spec_.threads);
  return run(input, opts, pool);
}

BatchRunReport CompiledModel::run_batch(const std::vector<Tensor>& inputs,
                                        const RunOptions& opts,
                                        ThreadPool& pool) const {
  // The estimate depends only on the compiled geometry: compute it once.
  RunOptions per_run = opts;
  per_run.with_estimate = false;
  std::optional<NetworkSimResult> est;

  // One set of per-slot datapaths for the whole batch: per-node stats are
  // before/after deltas, so reuse across inputs is byte-identical to fresh
  // units while skipping batch_size-1 rounds of scratch construction.
  std::vector<std::unique_ptr<Datapath>> units;
  units.reserve(static_cast<size_t>(pool.size()));
  for (int slot = 0; slot < pool.size(); ++slot) {
    units.push_back(make_datapath(spec_.datapath));
  }

  BatchRunReport batch;
  batch.runs.reserve(inputs.size());
  for (const Tensor& input : inputs) {
    batch.runs.push_back(run_with_units(input, per_run, pool, units));
    if (opts.with_estimate) {
      if (!est.has_value()) est = estimate();
      batch.runs.back().estimate = *est;
    }
    batch.totals += batch.runs.back().totals;
  }
  return batch;
}

BatchRunReport CompiledModel::run_batch(const std::vector<Tensor>& inputs,
                                        const RunOptions& opts) const {
  ThreadPool pool(spec_.threads);
  return run_batch(inputs, opts, pool);
}

NetworkSimResult CompiledModel::estimate() const {
  return simulate_network(shape_net_, composed_tile_for(spec_, spec_.tile),
                          spec_.sim, spec_.partition);
}

}  // namespace mpipu
