// Per-layer precision assignment -- the paper's core scenario: a single
// nibble-based datapath serving FP16 (with FP16 or FP32 accumulation, §3.1)
// and INT(a,w) layers in one network, chosen per layer by sensitivity.
//
// A PrecisionPolicy maps layers to a LayerPrecision by (in priority order)
// explicit name override, explicit index override, the first/last-layer
// preset, then the default.  Named presets cover the paper's study points:
// all_fp16() and int8_except_first_last() (quantize the robust interior,
// keep the sensitive ends in FP16).
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>

#include "nn/conv_engine.h"

namespace mpipu {

struct LayerPrecision {
  enum class Kind { kFp16, kInt };
  Kind kind = Kind::kFp16;
  /// FP16 path: accumulation destination (§3.1).
  AccumKind accum = AccumKind::kFp32;
  /// INT path: symmetric-quantized activation / weight widths.
  int a_bits = 8, w_bits = 8;

  static LayerPrecision fp16(AccumKind accum = AccumKind::kFp32) {
    LayerPrecision p;
    p.kind = Kind::kFp16;
    p.accum = accum;
    return p;
  }
  static LayerPrecision int_bits(int a_bits, int w_bits) {
    LayerPrecision p;
    p.kind = Kind::kInt;
    p.a_bits = a_bits;
    p.w_bits = w_bits;
    return p;
  }

  /// Human/JSON label: "fp16+fp32acc", "fp16+fp16acc", "int8x8", "int4x4".
  std::string to_string() const;

  friend bool operator==(const LayerPrecision&, const LayerPrecision&) = default;
};

class PrecisionPolicy {
 public:
  /// Default-constructed policy: every layer FP16 with FP32 accumulation.
  PrecisionPolicy() = default;

  static PrecisionPolicy all_fp16(AccumKind accum = AccumKind::kFp32);
  static PrecisionPolicy all_int(int bits = 8);
  /// The paper's mixed preset: INT8 interior, FP16/FP32-accum first and
  /// last layers (the quantization-sensitive ends).
  static PrecisionPolicy int8_except_first_last();

  PrecisionPolicy& set_default(LayerPrecision p);
  /// First/last-layer override (applies when no name/index override hits).
  PrecisionPolicy& set_first_last(LayerPrecision p);
  PrecisionPolicy& set_layer(const std::string& name, LayerPrecision p);
  PrecisionPolicy& set_layer(size_t index, LayerPrecision p);

  /// Precision of layer `index` of `n_layers` named `name`.
  LayerPrecision resolve(size_t index, size_t n_layers,
                         const std::string& name) const;

 private:
  LayerPrecision default_{};
  std::optional<LayerPrecision> first_last_;
  std::map<std::string, LayerPrecision> by_name_;
  std::map<size_t, LayerPrecision> by_index_;
};

}  // namespace mpipu
