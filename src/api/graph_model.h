// GraphModel: DAG-structured models for the high-level API.
//
// The paper's accuracy and cycle studies run on ResNet-18/50 and
// InceptionV3 -- networks whose defining feature is that they are NOT layer
// chains: ResNet merges a skip path into the trunk with an elementwise ADD,
// Inception fans a tensor out over parallel branches and merges them with a
// channel CONCAT.  `Model` (api/model.h) covers the chain case; GraphModel
// covers the real shapes: a DAG whose nodes are
//
//   * kInput  -- the single graph input (exactly one per graph);
//   * kConv   -- a convolution layer (FilterBank + ConvSpec + post-ops),
//                exactly one predecessor;
//   * kAdd    -- elementwise residual add of >= 2 same-shape predecessors;
//   * kConcat -- channel concatenation of >= 2 predecessors sharing (h, w);
//
// with optional ReLU-then-pool post-ops on every non-input node (ResNet's
// add-then-ReLU is `add` with relu = true).  Joins execute in exact host
// double on BOTH the datapath path and the FP32 reference chain -- the
// paper's approximation lives entirely in the conv inner products, so joins
// compose branch errors without adding any of their own.
//
// Topology is validated at compile time (Session::compile /
// CompiledModel::compile): acyclicity, exactly one input and one output,
// channel agreement into convs, shape agreement at joins, non-collapsing
// geometry -- all via analyze_graph(), which also fixes the deterministic
// execution order (Kahn's algorithm, ascending node id among ready nodes)
// and the wave structure (topological levels) that CompiledModel uses to
// dispatch independent branches in parallel over the session's ThreadPool.
//
// PrecisionPolicy interaction: the policy resolves over *conv* nodes only,
// indexed by execution order (joins carry no inner products, hence no
// precision).  first/last presets therefore mean first/last conv in
// execution order; name overrides use the conv node's name.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/model.h"
#include "nn/conv.h"
#include "nn/tensor.h"
#include "workload/networks.h"

namespace mpipu {

/// One node of a GraphModel.  `inputs` holds predecessor node ids (indices
/// into the graph's node vector; any order -- compile topo-sorts).
struct GraphNode {
  enum class Op { kInput, kConv, kAdd, kConcat };

  Op op = Op::kConv;
  std::string name;
  std::vector<int> inputs;
  FilterBank filters;  ///< kConv only
  ConvSpec spec;       ///< kConv only
  bool relu = false;   ///< post-op: ReLU first...
  PoolOp pool{};       ///< ...then pooling (kAdd/kConcat/kConv)

  friend bool operator==(const GraphNode&, const GraphNode&);
};

/// "input" / "conv" / "add" / "concat".
const char* graph_op_name(GraphNode::Op op);

/// Validated topology of a node list at one input geometry: the
/// deterministic execution order, per-node output shapes (after post-ops),
/// the inferred input channel count, the single output node, and the wave
/// structure (topological levels -- nodes of one wave are mutually
/// independent and may execute concurrently).  Throws std::invalid_argument
/// on any structural violation: no/multiple kInput nodes, wrong arity,
/// out-of-range predecessor ids, a cycle, multiple outputs, channel
/// mismatch into a conv, shape mismatch at a join, collapsing geometry, or
/// an input node whose channel count cannot be inferred (no direct conv
/// consumer).
struct GraphTopology {
  std::vector<int> order;  ///< topo execution order, input node first
  std::vector<std::vector<int>> waves;  ///< topo levels, input excluded
  std::vector<int> out_c, out_h, out_w;  ///< per node id, after post-ops
  int input_node = 0;
  int output_node = 0;
  int input_c = 0;
};

[[nodiscard]] GraphTopology analyze_graph(const std::vector<GraphNode>& nodes,
                                          int input_h, int input_w);

class GraphModel {
 public:
  /// Incremental construction: every method returns the new node's id, and
  /// predecessors must already exist (acyclic by construction; compile
  /// re-validates everything regardless).  conv() takes real weights;
  /// conv_shape() records dimensions only -- the graph is then estimate-only
  /// until materialize_weights() fills them (mirroring Model::from_network).
  class Builder {
   public:
    explicit Builder(std::string model_name);

    int input(std::string name = "input");
    int conv(std::string name, FilterBank filters, ConvSpec spec, int from,
             bool relu = false, PoolOp pool = {});
    int conv_shape(std::string name, int cout, int cin, int kh, int kw,
                   ConvSpec spec, int from, bool relu = false, PoolOp pool = {});
    int add(std::string name, int a, int b, bool relu = false, PoolOp pool = {});
    int concat(std::string name, std::vector<int> from, bool relu = false,
               PoolOp pool = {});

    /// Tensor statistics for shape_table() / materialize_weights()
    /// (defaults to forward_stats()).
    Builder& tensor_stats(LayerTensorStats stats);

    GraphModel build();

   private:
    int push(GraphNode node);

    std::string name_;
    std::vector<GraphNode> nodes_;
    LayerTensorStats stats_;
    std::vector<int> shape_only_ids_;  ///< conv_shape() nodes awaiting weights
  };

  /// Wrap an explicit node list carrying real weights.  Structural
  /// validation happens at compile time.
  static GraphModel from_nodes(std::string name, std::vector<GraphNode> nodes);

  const std::string& name() const { return name_; }
  const std::vector<GraphNode>& nodes() const { return nodes_; }
  const LayerTensorStats& tensor_stats() const { return tensor_stats_; }
  /// False until every conv node carries weights (conv_shape graphs before
  /// materialize_weights); weightless graphs are estimate-only.
  bool has_weights() const { return has_weights_; }
  /// Number of kConv nodes (what PrecisionPolicy resolves over).
  size_t conv_count() const;

  /// Fill random FP16-rounded weights, drawn from the graph's tensor
  /// statistics in node-list order (deterministic for a given seed).  Only
  /// conv_shape() nodes are filled -- real weights passed to
  /// Builder::conv() are never overwritten (a mixed trained/shape-only
  /// builder keeps its trained filters).  On a from_nodes graph every conv
  /// node is filled.  Shape-only builders require this before run/compile.
  void materialize_weights(uint64_t seed);

  /// Equivalent shape table for the cycle-sim path: one ConvLayer row per
  /// conv node, in execution order, at the given input dims (joins
  /// contribute no rows -- exactly how the hand-built tables in
  /// workload/networks.h record branchy networks).  Validates topology.
  Network shape_table(int input_h, int input_w) const;

  friend bool operator==(const GraphModel&, const GraphModel&);

 private:
  std::string name_;
  std::vector<GraphNode> nodes_;
  LayerTensorStats tensor_stats_;
  /// Builder conv_shape() nodes: the only ones materialize_weights fills
  /// (empty = from_nodes graph, where it fills every conv node).  Not part
  /// of equality/fingerprints -- ephemeral build state.
  std::vector<int> shape_only_ids_;
  bool has_weights_ = true;
};

/// Per-node reference outputs of the exact FP32 chain mirrored over the
/// graph (host-double convs + exact joins + post-ops), indexed by node id
/// (the input node's slot is left empty).  THE reference forward pass for
/// graphs: shared by CompiledModel's cached chain and Session::reference so
/// the two can never drift.
std::vector<Tensor> graph_reference_outputs(const std::vector<GraphNode>& nodes,
                                            const GraphTopology& topo,
                                            const Tensor& input);

/// Order-sensitive content hash of a graph's name, topology, specs,
/// post-ops and weight bytes -- the graph counterpart of model_fingerprint
/// (api/compiled_model.h).  NOTE: like model_fingerprint it deliberately
/// skips the tensor statistics; CompiledModel::matches is the
/// exact-equality authority (and does compare them).
uint64_t graph_fingerprint(const GraphModel& model);

}  // namespace mpipu
