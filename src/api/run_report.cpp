#include "api/run_report.h"

namespace mpipu {

Json to_json_value(const DatapathStats& s) {
  Json j = Json::object();
  j.set("fp_ops", s.fp_ops)
      .set("int_ops", s.int_ops)
      .set("cycles", s.cycles)
      .set("nibble_iterations", s.nibble_iterations)
      .set("masked_products", s.masked_products)
      .set("multi_cycle_ops", s.multi_cycle_ops)
      .set("skipped_iterations", s.skipped_iterations);
  return j;
}

Json to_json_value(const AgreementStats& s) {
  Json j = Json::object();
  j.set("max_abs_err", s.max_abs_err)
      .set("mean_abs_err", s.mean_abs_err)
      .set("max_rel_err", s.max_rel_err)
      .set("snr_db", s.snr_db)
      .set("mismatched_fp16", s.mismatched_fp16)
      .set("total", s.total);
  return j;
}

Json to_json_value(const NetworkSimResult& r) {
  Json layers = Json::array();
  for (const LayerSimResult& l : r.layers) {
    Json tiles = Json::array();
    for (const TileSimResult& t : l.tiles) {
      Json jt = Json::object();
      jt.set("tile", t.tile)
          .set("steps", t.steps)
          .set("cycles", t.cycles)
          .set("utilization", t.utilization);
      tiles.push(std::move(jt));
    }
    Json jl = Json::object();
    jl.set("layer", l.layer)
        .set("total_steps", l.total_steps)
        .set("cycles_per_step", l.cycles_per_step)
        .set("total_cycles", l.total_cycles)
        .set("avg_iteration_cycles", l.avg_iteration_cycles)
        .set("stall_fraction", l.stall_fraction)
        .set("imbalance", l.imbalance)
        .set("critical_tile", l.critical_tile)
        .set("tiles", std::move(tiles));
    layers.push(std::move(jl));
  }
  Json j = Json::object();
  j.set("network", r.network)
      .set("tile", r.tile)
      .set("partition", r.partition)
      .set("num_tiles", r.num_tiles)
      .set("total_cycles", r.total_cycles)
      .set("mean_tile_utilization", r.mean_tile_utilization)
      .set("layers", std::move(layers));
  return j;
}

Json RunReport::to_json_value() const {
  // Error blocks exist only when the run compared against the reference
  // (total == 0 means RunOptions.compare_reference was off).
  Json jlayers = Json::array();
  for (const LayerRunReport& l : layers) {
    Json jl = Json::object();
    jl.set("layer", l.layer)
        .set("precision", l.precision)
        .set("stats", mpipu::to_json_value(l.stats));
    if (l.error.total > 0) jl.set("error", mpipu::to_json_value(l.error));
    jlayers.push(std::move(jl));
  }
  Json j = Json::object();
  j.set("model", model)
      .set("scheme", scheme)
      .set("kernel_backend", kernel_backend)
      .set("threads", threads)
      .set("totals", mpipu::to_json_value(totals));
  if (end_to_end.total > 0) {
    j.set("end_to_end", mpipu::to_json_value(end_to_end));
  }
  j.set("layers", std::move(jlayers));
  if (estimate.has_value()) {
    j.set("estimate", mpipu::to_json_value(*estimate));
  }
  return j;
}

Json BatchRunReport::to_json_value() const {
  Json jruns = Json::array();
  for (const RunReport& r : runs) jruns.push(r.to_json_value());
  Json j = Json::object();
  j.set("batch", static_cast<int64_t>(runs.size()))
      .set("totals", mpipu::to_json_value(totals))
      .set("runs", std::move(jruns));
  return j;
}

}  // namespace mpipu
