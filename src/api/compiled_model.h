// CompiledModel: the compile-once / run-many half of the high-level API.
//
// The paper's deployment scenario is fixed-weight DNN inference: weights
// are known at load time, requests arrive forever after.  Session::run
// re-paid the whole weight pipeline -- FP16 rounding / INT quantization,
// decode, nibble decomposition, per-(clip-class, output-channel) stream
// packing -- on every call.  `Session::compile` (or the static
// CompiledModel::compile) moves all of it to a single compile phase:
//
//   * the PrecisionPolicy is resolved per conv node ONCE; a CompiledModel
//     never re-resolves it (mutating the policy object you compiled from
//     has no effect on an existing CompiledModel -- recompile to change
//     precision);
//   * every conv node is baked into an immutable plan holding the prepared
//     + packed filter planes (nn/conv_plan.h) for its resolved
//     (datapath, accum / INT) mode;
//   * all validation (weightless model, INT on an FP-only scheme, empty
//     output geometry, graph topology) happens at compile time, before
//     anything executes.
//
// Since the graph extension (api/graph_model.h) the execution core is a
// DAG: a chain Model compiles into the degenerate one-node-per-wave graph,
// a GraphModel into its topological wave structure.  Waves holding several
// independent nodes (parallel ResNet/Inception branches) are dispatched
// concurrently over the caller's pool, one node per worker with a private
// single-threaded scratch; single-node waves keep the chain path's
// pixel-level parallelism.  Either way outputs AND per-node stats are
// bit-identical for 1 and N pool threads (stats are sums over a fixed op
// partition; every pixel is computed exactly once).
//
// run()/run_batch() are REENTRANT: every call builds its own scratch
// (thread pool, per-slot datapaths, staged activation planes, stats) and
// only reads the shared `const` plans, so any number of host threads may
// call them concurrently on one CompiledModel.  Each call returns its own
// RunReport whose outputs, stats and cycles are byte-identical to what
// Session::run produces for the same spec/model/input.  Unlike the legacy
// ConvEngine (whose counters accumulate across calls -- see
// ConvEngine::stats), stats here are per-call by construction.
//
// Session::run is reimplemented on top of this (compile-on-first-use with
// an exact-match model cache), so existing callers keep working unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/graph_model.h"
#include "api/model.h"
#include "api/run_report.h"
#include "api/run_spec.h"
#include "common/annotated_mutex.h"
#include "common/thread_pool.h"
#include "nn/conv_plan.h"

namespace mpipu {

struct CompileOptions {
  /// Spatial dims of the inputs run() will receive (the packed gather
  /// offsets and clip classes depend on them).  Required; run() rejects
  /// inputs with any other shape.
  int input_h = 0;
  int input_w = 0;
};

class CompiledModel {
 public:
  /// Resolve, validate and bake `model` for `spec` at the given input
  /// geometry.  Throws std::invalid_argument on a weightless model, a
  /// policy asking for INT on a datapath that does not support it, missing
  /// input dims, or a layer chain whose output collapses to nothing.
  [[nodiscard]] static CompiledModel compile(const Model& model,
                                             const RunSpec& spec,
                                             const CompileOptions& opts);

  /// Graph counterpart: additionally validates the full topology
  /// (acyclicity, single input/output, join shape agreement) via
  /// analyze_graph before anything is baked.
  [[nodiscard]] static CompiledModel compile(const GraphModel& model,
                                             const RunSpec& spec,
                                             const CompileOptions& opts);

  /// One forward pass against the immutable plan.  Thread-safe: every call
  /// owns its scratch (a private pool of spec().threads workers -- created
  /// per call, so prefer spec.threads == 1 for concurrent serving) and its
  /// RunReport stats are per-call.  Throws std::invalid_argument when the
  /// input shape differs from the compiled geometry.
  RunReport run(const Tensor& input, const RunOptions& opts = {}) const;
  /// Same, executing on a caller-owned pool (e.g. a Session's shared pool
  /// or a serving thread's long-lived pool).  The pool must not be used by
  /// two calls at once -- ThreadPool::parallel_for is not reentrant; for
  /// concurrent callers give each its own pool or use the overload above.
  RunReport run(const Tensor& input, const RunOptions& opts,
                ThreadPool& pool) const;

  /// Forward passes over a batch with the deterministic stats reduction of
  /// Session::run_batch (and the estimate computed once, not per input).
  BatchRunReport run_batch(const std::vector<Tensor>& inputs,
                           const RunOptions& opts = {}) const;
  BatchRunReport run_batch(const std::vector<Tensor>& inputs,
                           const RunOptions& opts, ThreadPool& pool) const;

  /// Cycle-sim estimate of the compiled shape table on spec().tile with
  /// spec().datapath plugged in (what RunOptions.with_estimate attaches).
  /// For graph models the table is the graph's conv rows in execution
  /// order (GraphModel::shape_table).
  NetworkSimResult estimate() const;

  const std::string& model_name() const { return name_; }
  const RunSpec& spec() const { return spec_; }
  int input_c() const { return in_c_; }
  int input_h() const { return in_h_; }
  int input_w() const { return in_w_; }
  /// Non-throwing geometry check: empty when `input` matches the compiled
  /// input dims, else the exact message validate_input/run would throw.
  /// Admission-time validation in the serving layer runs on this -- a bad
  /// request is shed as a typed value before it can reach (and poison) a
  /// batch.
  [[nodiscard]] std::string input_geometry_mismatch(const Tensor& input) const;
  /// Executable nodes: conv layers plus (for graphs) add/concat joins.
  size_t layer_count() const { return topo_.order.size() - 1; }
  /// True when compiled from a GraphModel (matches(Model) is then always
  /// false, and vice versa).
  bool is_graph() const { return is_graph_; }
  /// The compile-time-resolved precision of each conv node in execution
  /// order (frozen: no API re-resolves these after compile).
  const std::vector<LayerPrecision>& layer_precisions() const {
    return precisions_;
  }
  /// Content fingerprint of the model this plan was compiled from
  /// (model_fingerprint / graph_fingerprint of name, topology, specs,
  /// post-ops and weight bytes).
  uint64_t fingerprint() const { return fingerprint_; }
  /// Exact equality of `model` with the compiled weights/specs AND shape
  /// table (what estimate() consumes) -- the sole lookup predicate of
  /// Session's compile-on-first-use cache.  Field checks (name, dims,
  /// specs) reject mismatches before any weight bytes are compared.
  bool matches(const Model& model) const;
  /// Same for graphs: exact node-list + tensor-statistics equality.
  bool matches(const GraphModel& model) const;

 private:
  CompiledModel() = default;

  /// One conv node's immutable execution state: the resolved precision plus
  /// the plan (packed filter streams) for its mode.  Exactly one of the two
  /// plans is populated, selected by precision.kind.  Join nodes carry no
  /// plan (joins are exact elementwise ops).
  struct CompiledNode {
    LayerPrecision precision;
    std::string precision_label;
    ConvPlan<PreparedFp16> fp16_plan;
    ConvPlan<PreparedInt> int_plan;
    QuantParams qw;          ///< INT mode: weight quantization (compile-time)
    bool int_digits = true;  ///< INT mode: pack radix-16 digit planes?
  };

  /// Per-input FP32 reference chain cache (one entry = the per-node
  /// reference outputs of one exact input).  Behind a shared_ptr so the
  /// CompiledModel stays movable; guarded by its own mutex so run() is
  /// reentrant.
  struct RefCache {
    Mutex mu;
    std::vector<std::pair<std::vector<double>,
                          std::shared_ptr<const std::vector<Tensor>>>>
        entries MPIPU_GUARDED_BY(mu);
  };

  static CompiledModel compile_nodes(std::vector<GraphNode> nodes,
                                     const RunSpec& spec,
                                     const CompileOptions& opts);
  /// run() with caller-provided per-slot datapath scratch.  run_batch
  /// builds the units once and reuses them across the whole batch (exact:
  /// per-node stats are before/after deltas over the units).
  RunReport run_with_units(
      const Tensor& input, const RunOptions& opts, ThreadPool& pool,
      std::span<const std::unique_ptr<Datapath>> units) const;
  void validate_input(const Tensor& input) const;
  std::shared_ptr<const std::vector<Tensor>> reference_chain(
      const Tensor& input) const;
  /// Execute one non-input node: reads predecessor activations, writes
  /// acts[id] (post-ops applied) and stats[id].  `pool`/`units` are the
  /// caller's scratch for this node (the full per-call pool for single-node
  /// waves, a private inline unit for parallel-branch dispatch).
  void exec_node(int id, std::vector<Tensor>& acts,
                 std::vector<DatapathStats>& stats, ThreadPool& pool,
                 std::span<const std::unique_ptr<Datapath>> units) const;

  RunSpec spec_;
  std::string name_;
  int in_c_ = 0, in_h_ = 0, in_w_ = 0;
  bool is_graph_ = false;
  /// Source nodes (weights kept for the reference chain and matches());
  /// chain models are stored as their degenerate graph.
  std::vector<GraphNode> nodes_;
  GraphTopology topo_;
  std::vector<LayerPrecision> precisions_;  ///< conv nodes, execution order
  std::vector<CompiledNode> compiled_;      ///< indexed by node id
  LayerTensorStats graph_stats_;  ///< graph source: stats baked into shape_net_
  Network shape_net_;  ///< shape table at the compiled input dims
  bool table_backed_ = false;  ///< source model was from_network
  uint64_t fingerprint_ = 0;
  std::shared_ptr<RefCache> ref_cache_;
};

/// Order-sensitive content hash of a model's name, layer specs, post-ops
/// and weight bytes -- a stable identity for logging / plan registries
/// (what CompiledModel::fingerprint reports).  NOTE: it deliberately skips
/// the wrapped shape table's tensor statistics; CompiledModel::matches is
/// the exact-equality authority.
uint64_t model_fingerprint(const Model& model);

}  // namespace mpipu
