// Session: the single high-level entry point of the repo.  One RunSpec
// {datapath, tile, policy, threads} drives BOTH evaluation paths the paper
// uses at network granularity:
//
//   * the numeric path -- Session::run / run_batch execute a Model layer by
//     layer on the bit-accurate datapath through a pooled ConvEngine
//     (activation tensors threaded between layers, FP32 reference chain
//     computed alongside), producing a RunReport that unifies per-layer
//     DatapathStats, error metrics and (on request) simulated cycles;
//   * the analytical path -- Session::estimate costs the Model's shape
//     table on the cycle simulator with the same datapath config plugged
//     into the tile.
//
// The Session owns one ThreadPool, shared by every engine in its pool;
// engines are keyed by (DatapathConfig, AccumKind) so a mixed-precision
// policy touching several accumulation modes still reuses datapaths and
// threads across layers and runs.  Determinism: for a fixed spec and inputs
// the outputs and every stats counter are identical for 1 and N threads.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "api/model.h"
#include "api/precision_policy.h"
#include "api/run_report.h"
#include "common/thread_pool.h"
#include "nn/conv_engine.h"
#include "sim/cycle_sim.h"
#include "sim/tile.h"

namespace mpipu {

/// The one config driving both the numeric and the cycle-sim paths.
struct RunSpec {
  /// Datapath of every IPU: used directly by run() and plugged into the
  /// tile by estimate().  tile.datapath is ignored -- this is the source of
  /// truth (the old three-config split this API replaces).
  DatapathConfig datapath{};
  /// Tile geometry for the cycle-sim path (unrolls, clustering, buffers).
  /// tile.c_unroll must equal datapath.n_inputs.
  TileConfig tile{};
  /// Per-layer precision choices for the numeric path.
  PrecisionPolicy policy{};
  /// Worker count of the shared pool; <= 0 selects hardware_concurrency().
  int threads = 1;
  /// Sampling options for the cycle-sim path (iterations_per_op is
  /// deprecated there; the scheme derives it).
  SimOptions sim{};
};

struct RunOptions {
  /// Compute the exact FP32 reference chain and per-layer error metrics.
  bool compare_reference = true;
  /// Also run the cycle simulator on the model's shape table and attach the
  /// NetworkSimResult to the report.
  bool with_estimate = false;
};

class Session {
 public:
  explicit Session(RunSpec spec);

  const RunSpec& spec() const { return spec_; }
  int threads() const { return pool_.size(); }

  /// Full forward pass of `model` on `input`.  Throws std::invalid_argument
  /// -- before any layer executes -- on a weightless model, an input/model
  /// channel mismatch, or a policy asking for INT on a datapath that does
  /// not support it (e.g. the FP-only spatial scheme).
  RunReport run(const Model& model, const Tensor& input,
                const RunOptions& opts = {});

  /// The exact FP32 reference forward pass of the numeric path (host-double
  /// conv chain + the model's post-ops) -- what run() compares against when
  /// RunOptions.compare_reference is set.  Exposed so drivers sweeping many
  /// datapath configs over the same inputs can compute it once instead of
  /// once per sweep point.
  static Tensor reference(const Model& model, const Tensor& input);

  /// Forward passes over a batch of inputs with deterministic stats
  /// reduction (totals are sums of per-run sums).
  BatchRunReport run_batch(const Model& model,
                           const std::vector<Tensor>& inputs,
                           const RunOptions& opts = {});

  /// Cycle-sim estimate of the model's shape table on spec().tile with
  /// spec().datapath plugged in.  Ad-hoc layer models need the input
  /// spatial dims to derive their table; shape-table models ignore them.
  NetworkSimResult estimate(const Model& model, int input_h = 0,
                            int input_w = 0) const;
  /// Same, with an explicit tile geometry overriding spec().tile.
  NetworkSimResult estimate(const Model& model, const TileConfig& tile,
                            int input_h = 0, int input_w = 0) const;
  /// Lowest-level overload: estimate an explicit shape table.
  NetworkSimResult estimate(const Network& net) const;

 private:
  ConvEngine& engine_for(const DatapathConfig& dp, AccumKind accum);
  TileConfig composed_tile(const TileConfig& geometry) const;

  RunSpec spec_;
  ThreadPool pool_;
  /// Lazily built throwaway unit used only to answer supports_int() during
  /// up-front policy validation (kept so batches don't rebuild it per run).
  std::unique_ptr<Datapath> probe_;
  struct PoolEntry {
    DatapathConfig datapath;
    AccumKind accum;
    std::unique_ptr<ConvEngine> engine;
  };
  std::vector<PoolEntry> engines_;
};

}  // namespace mpipu
