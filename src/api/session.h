// Session: the single high-level entry point of the repo.  One RunSpec
// {datapath, tile, policy, threads} drives BOTH evaluation paths the paper
// uses at network granularity:
//
//   * the numeric path -- Session::run / run_batch execute a Model layer by
//     layer on the bit-accurate datapath (activation tensors threaded
//     between layers, FP32 reference chain computed alongside), producing a
//     RunReport that unifies per-layer DatapathStats, error metrics and (on
//     request) simulated cycles;
//   * the analytical path -- Session::estimate costs the Model's shape
//     table on the cycle simulator with the same datapath config plugged
//     into the tile.
//
// Since the compile/run split (api/compiled_model.h), Session::run is
// compile-on-first-use sugar: the model is compiled into an immutable
// CompiledModel on the first run (cached by exact model content --
// CompiledModel::matches -- and input geometry, so re-runs, sweeps and
// batches never re-pay the weight pipeline) and executed on the Session's
// shared ThreadPool.
// Outputs, stats and cycles are byte-identical to pre-split Session runs.
//
// run()/run_batch() are thread-safe: the compile cache is guarded by a
// mutex (a shared_ptr pins each plan across LRU eviction), and concurrent
// runs race for the shared pool -- the loser executes on a private
// per-call pool of the same width, so outputs stay byte-identical either
// way (thread-count invariance).  Use Session for conversational work --
// one caller, ad-hoc models; call Session::compile and hold the
// CompiledModel yourself for serving -- weights prepared once at load
// time, concurrent reentrant callers -- or put src/serve's ServingRuntime
// in front for queueing, batching and SLO metrics.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "api/compiled_model.h"
#include "api/model.h"
#include "api/run_report.h"
#include "api/run_spec.h"
#include "common/annotated_mutex.h"
#include "common/thread_pool.h"
#include "sim/cycle_sim.h"
#include "sim/tile.h"

namespace mpipu {

class Session {
 public:
  explicit Session(RunSpec spec);

  const RunSpec& spec() const { return spec_; }
  int threads() const { return pool_.size(); }

  /// Compile `model` against this session's spec: resolve the policy,
  /// validate everything, bake the packed filter planes.  The returned
  /// CompiledModel is self-contained (shares nothing with this Session) and
  /// safe for concurrent callers.  Throws std::invalid_argument on a
  /// weightless model, an unsupported INT layer, or missing input dims.
  [[nodiscard]] CompiledModel compile(const Model& model,
                                      const CompileOptions& opts) const;
  /// Graph counterpart (api/graph_model.h): additionally validates the DAG
  /// topology -- acyclicity, single input/output, channel agreement into
  /// convs, shape agreement at add/concat joins -- before anything is
  /// baked.  Independent branches of the compiled graph execute in
  /// parallel over the running pool.
  [[nodiscard]] CompiledModel compile(const GraphModel& model,
                                      const CompileOptions& opts) const;

  /// Full forward pass of `model` on `input`.  Compile-on-first-use: the
  /// first call (per model content and input geometry) compiles, later
  /// calls hit the cache and only execute.  Throws std::invalid_argument --
  /// before any layer executes -- on a weightless model, an input/model
  /// channel mismatch, or a policy asking for INT on a datapath that does
  /// not support it (e.g. the FP-only spatial scheme).
  RunReport run(const Model& model, const Tensor& input,
                const RunOptions& opts = {});
  /// Full forward pass of a DAG-structured model (ResNet skip connections,
  /// Inception branch/concat blocks) -- same compile-on-first-use caching,
  /// same per-node RunReport, byte-identical to CompiledModel::run.
  RunReport run(const GraphModel& model, const Tensor& input,
                const RunOptions& opts = {});

  /// The exact FP32 reference forward pass of the numeric path (host-double
  /// conv chain + the model's post-ops) -- what run() compares against when
  /// RunOptions.compare_reference is set.  Exposed so drivers sweeping many
  /// datapath configs over the same inputs can compute it once instead of
  /// once per sweep point.
  static Tensor reference(const Model& model, const Tensor& input);
  /// Graph reference: the exact FP32 chain mirrored over the DAG
  /// (host-double convs, exact joins) -- graph_reference_outputs' final
  /// node.
  static Tensor reference(const GraphModel& model, const Tensor& input);

  /// Forward passes over a batch of inputs with deterministic stats
  /// reduction (totals are sums of per-run sums).
  BatchRunReport run_batch(const Model& model,
                           const std::vector<Tensor>& inputs,
                           const RunOptions& opts = {});
  BatchRunReport run_batch(const GraphModel& model,
                           const std::vector<Tensor>& inputs,
                           const RunOptions& opts = {});

  /// Cycle-sim estimate of the model's shape table on spec().tile with
  /// spec().datapath plugged in.  Ad-hoc layer models need the input
  /// spatial dims to derive their table; shape-table models ignore them.
  NetworkSimResult estimate(const Model& model, int input_h = 0,
                            int input_w = 0) const;
  /// Same, with an explicit tile geometry overriding spec().tile.
  NetworkSimResult estimate(const Model& model, const TileConfig& tile,
                            int input_h = 0, int input_w = 0) const;
  /// Lowest-level overload: estimate an explicit shape table.
  NetworkSimResult estimate(const Network& net) const;
  /// Graph estimate: the graph's conv rows (GraphModel::shape_table) on the
  /// cycle simulator -- agrees with estimate(net) for the equivalent table
  /// by construction.  Graphs always need the input dims.
  NetworkSimResult estimate(const GraphModel& model, int input_h,
                            int input_w) const;

 private:
  /// The compile-on-first-use cache behind run(): exact-match lookup
  /// (CompiledModel::matches -- cheap field checks, then the weight bytes)
  /// keyed by model content and input geometry, LRU-evicted.  One template
  /// serves Model and GraphModel; chain and graph entries share the cache
  /// (matches() never crosses the two).  Guarded by cache_mu_; returns a
  /// shared_ptr so a concurrent eviction cannot destroy a plan mid-run.
  template <typename ModelT>
  std::shared_ptr<const CompiledModel> compiled_for(const ModelT& model,
                                                    int input_h, int input_w);
  /// Execute on the shared pool when it is free, else on a private
  /// per-call pool of the same width (byte-identical either way).
  RunReport run_compiled(const CompiledModel& compiled, const Tensor& input,
                         const RunOptions& opts);
  /// Shared body of the two run_batch overloads (defined in session.cpp;
  /// instantiated only there).
  template <typename ModelT>
  BatchRunReport run_batch_impl(const ModelT& model,
                                const std::vector<Tensor>& inputs,
                                const RunOptions& opts);

  RunSpec spec_;
  ThreadPool pool_;
  /// Claims the shared pool for one run at a time.  The pool itself is not
  /// MPIPU_GUARDED_BY(pool_mu_): threads() reads its (immutable) size
  /// lock-free, and the capability here serializes parallel_for USE, not
  /// data access.
  Mutex pool_mu_;
  struct CacheEntry {
    std::shared_ptr<const CompiledModel> compiled;
  };
  Mutex cache_mu_;
  std::vector<CacheEntry> compiled_cache_ MPIPU_GUARDED_BY(cache_mu_);
};

}  // namespace mpipu
