#include "api/graph_model.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "nn/elementwise.h"

namespace mpipu {
namespace {

std::string node_label(const GraphNode& n) {
  return std::string(graph_op_name(n.op)) + " node '" + n.name + "'";
}

/// Post-op geometry shared with Model::shape_table / CompiledModel.
void apply_pool_dims(PoolOp pool, int& h, int& w) {
  switch (pool) {
    case PoolOp::kNone: break;
    case PoolOp::kMax2: h /= 2; w /= 2; break;
    case PoolOp::kGlobalAvg: h = 1; w = 1; break;
  }
}

}  // namespace

const char* graph_op_name(GraphNode::Op op) {
  switch (op) {
    case GraphNode::Op::kInput: return "input";
    case GraphNode::Op::kConv: return "conv";
    case GraphNode::Op::kAdd: return "add";
    case GraphNode::Op::kConcat: return "concat";
  }
  return "?";
}

bool operator==(const GraphNode& a, const GraphNode& b) {
  return a.op == b.op && a.name == b.name && a.inputs == b.inputs &&
         a.spec.stride == b.spec.stride && a.spec.pad == b.spec.pad &&
         a.relu == b.relu && a.pool == b.pool &&
         a.filters.cout == b.filters.cout && a.filters.cin == b.filters.cin &&
         a.filters.kh == b.filters.kh && a.filters.kw == b.filters.kw &&
         a.filters.data == b.filters.data;
}

bool operator==(const GraphModel& a, const GraphModel& b) {
  return a.name_ == b.name_ && a.has_weights_ == b.has_weights_ &&
         a.tensor_stats_ == b.tensor_stats_ && a.nodes_ == b.nodes_;
}

GraphTopology analyze_graph(const std::vector<GraphNode>& nodes, int input_h,
                            int input_w) {
  if (nodes.empty()) {
    throw std::invalid_argument("analyze_graph: graph has no nodes");
  }
  if (input_h <= 0 || input_w <= 0) {
    throw std::invalid_argument(
        "analyze_graph: input spatial dims must be positive (got " +
        std::to_string(input_h) + "x" + std::to_string(input_w) + ")");
  }
  const int n = static_cast<int>(nodes.size());

  GraphTopology topo;
  topo.input_node = -1;

  // Structural checks: one input, per-op arity, predecessor ids in range.
  for (int i = 0; i < n; ++i) {
    const GraphNode& nd = nodes[static_cast<size_t>(i)];
    for (int p : nd.inputs) {
      if (p < 0 || p >= n || p == i) {
        throw std::invalid_argument("analyze_graph: " + node_label(nd) +
                                    " references invalid predecessor id " +
                                    std::to_string(p));
      }
    }
    switch (nd.op) {
      case GraphNode::Op::kInput:
        if (topo.input_node >= 0) {
          throw std::invalid_argument(
              "analyze_graph: graph has multiple input nodes ('" +
              nodes[static_cast<size_t>(topo.input_node)].name + "' and '" +
              nd.name + "'); exactly one is required");
        }
        if (!nd.inputs.empty() || nd.relu || nd.pool != PoolOp::kNone) {
          throw std::invalid_argument(
              "analyze_graph: input node '" + nd.name +
              "' must have no predecessors and no post-ops");
        }
        topo.input_node = i;
        break;
      case GraphNode::Op::kConv:
        if (nd.inputs.size() != 1) {
          throw std::invalid_argument("analyze_graph: " + node_label(nd) +
                                      " must have exactly one predecessor");
        }
        break;
      case GraphNode::Op::kAdd:
      case GraphNode::Op::kConcat:
        if (nd.inputs.size() < 2) {
          throw std::invalid_argument("analyze_graph: " + node_label(nd) +
                                      " needs at least two predecessors");
        }
        break;
    }
  }
  if (topo.input_node < 0) {
    throw std::invalid_argument("analyze_graph: graph has no input node");
  }

  // Infer input channels from the input node's direct conv consumers (a
  // join cannot pin channels on its own).
  topo.input_c = 0;
  for (const GraphNode& nd : nodes) {
    if (nd.op != GraphNode::Op::kConv || nd.inputs[0] != topo.input_node) {
      continue;
    }
    if (topo.input_c != 0 && topo.input_c != nd.filters.cin) {
      throw std::invalid_argument(
          "analyze_graph: conv consumers of the input disagree on its "
          "channel count (" + std::to_string(topo.input_c) + " vs " +
          std::to_string(nd.filters.cin) + " at '" + nd.name + "')");
    }
    topo.input_c = nd.filters.cin;
  }
  if (topo.input_c == 0) {
    throw std::invalid_argument(
        "analyze_graph: cannot infer the input channel count -- the input "
        "node has no direct conv consumer");
  }

  // Kahn's algorithm, taking ready nodes in ascending id order so the
  // execution order is a pure function of the graph.
  std::vector<int> indegree(static_cast<size_t>(n), 0);
  std::vector<int> outdegree(static_cast<size_t>(n), 0);
  for (const GraphNode& nd : nodes) {
    for (int p : nd.inputs) ++outdegree[static_cast<size_t>(p)];
  }
  for (int i = 0; i < n; ++i) {
    indegree[static_cast<size_t>(i)] =
        static_cast<int>(nodes[static_cast<size_t>(i)].inputs.size());
  }
  std::vector<int> level(static_cast<size_t>(n), 0);
  std::vector<char> done(static_cast<size_t>(n), 0);
  topo.order.reserve(static_cast<size_t>(n));
  for (;;) {
    int next = -1;
    for (int i = 0; i < n; ++i) {
      if (!done[static_cast<size_t>(i)] && indegree[static_cast<size_t>(i)] == 0) {
        next = i;
        break;
      }
    }
    if (next < 0) break;
    done[static_cast<size_t>(next)] = 1;
    topo.order.push_back(next);
    for (int i = 0; i < n; ++i) {
      const GraphNode& nd = nodes[static_cast<size_t>(i)];
      for (int p : nd.inputs) {
        if (p == next) {
          --indegree[static_cast<size_t>(i)];
          level[static_cast<size_t>(i)] =
              std::max(level[static_cast<size_t>(i)],
                       level[static_cast<size_t>(next)] + 1);
        }
      }
    }
  }
  if (static_cast<int>(topo.order.size()) != n) {
    throw std::invalid_argument(
        "analyze_graph: graph contains a cycle (" +
        std::to_string(n - static_cast<int>(topo.order.size())) +
        " nodes are unreachable from the input)");
  }

  // Exactly one output (sink).
  topo.output_node = -1;
  for (int i = 0; i < n; ++i) {
    if (outdegree[static_cast<size_t>(i)] != 0) continue;
    if (topo.output_node >= 0) {
      throw std::invalid_argument(
          "analyze_graph: graph has multiple outputs ('" +
          nodes[static_cast<size_t>(topo.output_node)].name + "' and '" +
          nodes[static_cast<size_t>(i)].name + "'); exactly one is required");
    }
    topo.output_node = i;
  }
  // order is nonempty and its last element has no unprocessed successors,
  // so a single sink always exists; keep the check for belt and braces.
  if (topo.output_node < 0) {
    throw std::invalid_argument("analyze_graph: graph has no output node");
  }

  // Shape propagation + join/conv agreement in execution order.
  topo.out_c.assign(static_cast<size_t>(n), 0);
  topo.out_h.assign(static_cast<size_t>(n), 0);
  topo.out_w.assign(static_cast<size_t>(n), 0);
  for (int id : topo.order) {
    const GraphNode& nd = nodes[static_cast<size_t>(id)];
    int c = 0, h = 0, w = 0;
    switch (nd.op) {
      case GraphNode::Op::kInput:
        c = topo.input_c;
        h = input_h;
        w = input_w;
        break;
      case GraphNode::Op::kConv: {
        const int p = nd.inputs[0];
        if (nodes[static_cast<size_t>(id)].filters.cin !=
            topo.out_c[static_cast<size_t>(p)]) {
          throw std::invalid_argument(
              "analyze_graph: " + node_label(nd) + " expects " +
              std::to_string(nd.filters.cin) + " input channels but '" +
              nodes[static_cast<size_t>(p)].name + "' produces " +
              std::to_string(topo.out_c[static_cast<size_t>(p)]));
        }
        c = nd.filters.cout;
        h = nd.spec.out_dim(topo.out_h[static_cast<size_t>(p)], nd.filters.kh);
        w = nd.spec.out_dim(topo.out_w[static_cast<size_t>(p)], nd.filters.kw);
        if (h <= 0 || w <= 0) {
          throw std::invalid_argument(
              "analyze_graph: " + node_label(nd) + " maps " +
              std::to_string(topo.out_h[static_cast<size_t>(p)]) + "x" +
              std::to_string(topo.out_w[static_cast<size_t>(p)]) +
              " activations to " + std::to_string(h) + "x" +
              std::to_string(w) + " -- the graph collapses at these input dims");
        }
        break;
      }
      case GraphNode::Op::kAdd: {
        const int p0 = nd.inputs[0];
        c = topo.out_c[static_cast<size_t>(p0)];
        h = topo.out_h[static_cast<size_t>(p0)];
        w = topo.out_w[static_cast<size_t>(p0)];
        for (int p : nd.inputs) {
          if (topo.out_c[static_cast<size_t>(p)] != c ||
              topo.out_h[static_cast<size_t>(p)] != h ||
              topo.out_w[static_cast<size_t>(p)] != w) {
            throw std::invalid_argument(
                "analyze_graph: " + node_label(nd) +
                " joins mismatched shapes ('" +
                nodes[static_cast<size_t>(p0)].name + "' is " +
                std::to_string(c) + "x" + std::to_string(h) + "x" +
                std::to_string(w) + ", '" +
                nodes[static_cast<size_t>(p)].name + "' is " +
                std::to_string(topo.out_c[static_cast<size_t>(p)]) + "x" +
                std::to_string(topo.out_h[static_cast<size_t>(p)]) + "x" +
                std::to_string(topo.out_w[static_cast<size_t>(p)]) + ")");
          }
        }
        break;
      }
      case GraphNode::Op::kConcat: {
        const int p0 = nd.inputs[0];
        h = topo.out_h[static_cast<size_t>(p0)];
        w = topo.out_w[static_cast<size_t>(p0)];
        for (int p : nd.inputs) {
          if (topo.out_h[static_cast<size_t>(p)] != h ||
              topo.out_w[static_cast<size_t>(p)] != w) {
            throw std::invalid_argument(
                "analyze_graph: " + node_label(nd) +
                " concatenates mismatched spatial dims ('" +
                nodes[static_cast<size_t>(p0)].name + "' is " +
                std::to_string(h) + "x" + std::to_string(w) + ", '" +
                nodes[static_cast<size_t>(p)].name + "' is " +
                std::to_string(topo.out_h[static_cast<size_t>(p)]) + "x" +
                std::to_string(topo.out_w[static_cast<size_t>(p)]) + ")");
          }
          c += topo.out_c[static_cast<size_t>(p)];
        }
        break;
      }
    }
    if (nd.op != GraphNode::Op::kInput) {
      apply_pool_dims(nd.pool, h, w);
      if (h <= 0 || w <= 0) {
        throw std::invalid_argument(
            "analyze_graph: pooling after " + node_label(nd) +
            " collapses the activation to " + std::to_string(h) + "x" +
            std::to_string(w));
      }
    }
    topo.out_c[static_cast<size_t>(id)] = c;
    topo.out_h[static_cast<size_t>(id)] = h;
    topo.out_w[static_cast<size_t>(id)] = w;
  }

  // Wave structure: topological levels.  Nodes of one wave have no edges
  // among themselves (an edge strictly increases the level), so a wave may
  // execute concurrently; waves run in ascending level order.
  int max_level = 0;
  for (int i = 0; i < n; ++i) max_level = std::max(max_level, level[static_cast<size_t>(i)]);
  topo.waves.assign(static_cast<size_t>(max_level), {});
  for (int id : topo.order) {
    if (id == topo.input_node) continue;
    topo.waves[static_cast<size_t>(level[static_cast<size_t>(id)] - 1)]
        .push_back(id);
  }
  return topo;
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

GraphModel::Builder::Builder(std::string model_name)
    : name_(std::move(model_name)), stats_(forward_stats()) {}

int GraphModel::Builder::push(GraphNode node) {
  for (int p : node.inputs) {
    if (p < 0 || p >= static_cast<int>(nodes_.size())) {
      throw std::invalid_argument(
          "GraphModel::Builder: node '" + node.name +
          "' references id " + std::to_string(p) +
          " which does not exist yet (predecessors must be built first)");
    }
  }
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

int GraphModel::Builder::input(std::string name) {
  GraphNode n;
  n.op = GraphNode::Op::kInput;
  n.name = std::move(name);
  return push(std::move(n));
}

int GraphModel::Builder::conv(std::string name, FilterBank filters,
                              ConvSpec spec, int from, bool relu, PoolOp pool) {
  GraphNode n;
  n.op = GraphNode::Op::kConv;
  n.name = std::move(name);
  n.inputs = {from};
  n.filters = std::move(filters);
  n.spec = spec;
  n.relu = relu;
  n.pool = pool;
  return push(std::move(n));
}

int GraphModel::Builder::conv_shape(std::string name, int cout, int cin,
                                    int kh, int kw, ConvSpec spec, int from,
                                    bool relu, PoolOp pool) {
  const int id = conv(std::move(name), FilterBank(cout, cin, kh, kw), spec,
                      from, relu, pool);
  shape_only_ids_.push_back(id);
  return id;
}

int GraphModel::Builder::add(std::string name, int a, int b, bool relu,
                             PoolOp pool) {
  GraphNode n;
  n.op = GraphNode::Op::kAdd;
  n.name = std::move(name);
  n.inputs = {a, b};
  n.relu = relu;
  n.pool = pool;
  return push(std::move(n));
}

int GraphModel::Builder::concat(std::string name, std::vector<int> from,
                                bool relu, PoolOp pool) {
  GraphNode n;
  n.op = GraphNode::Op::kConcat;
  n.name = std::move(name);
  n.inputs = std::move(from);
  n.relu = relu;
  n.pool = pool;
  return push(std::move(n));
}

GraphModel::Builder& GraphModel::Builder::tensor_stats(LayerTensorStats stats) {
  stats_ = stats;
  return *this;
}

GraphModel GraphModel::Builder::build() {
  GraphModel m;
  m.name_ = std::move(name_);
  m.nodes_ = std::move(nodes_);
  m.tensor_stats_ = stats_;
  m.shape_only_ids_ = std::move(shape_only_ids_);
  m.has_weights_ = m.shape_only_ids_.empty();
  return m;
}

// ---------------------------------------------------------------------------
// GraphModel
// ---------------------------------------------------------------------------

GraphModel GraphModel::from_nodes(std::string name,
                                  std::vector<GraphNode> nodes) {
  GraphModel m;
  m.name_ = std::move(name);
  m.nodes_ = std::move(nodes);
  m.tensor_stats_ = forward_stats();
  return m;
}

size_t GraphModel::conv_count() const {
  size_t n = 0;
  for (const GraphNode& nd : nodes_) {
    if (nd.op == GraphNode::Op::kConv) ++n;
  }
  return n;
}

void GraphModel::materialize_weights(uint64_t seed) {
  Rng rng(seed);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    GraphNode& nd = nodes_[i];
    if (nd.op != GraphNode::Op::kConv) continue;
    // Real weights handed to Builder::conv() are never overwritten: only
    // conv_shape() nodes (or, on a from_nodes graph, every conv node) are
    // filled.  shape_only_ids_ is ascending, so the draw order equals the
    // node order and stays deterministic.
    if (!shape_only_ids_.empty() &&
        std::find(shape_only_ids_.begin(), shape_only_ids_.end(),
                  static_cast<int>(i)) == shape_only_ids_.end()) {
      continue;
    }
    nd.filters = random_filters(rng, nd.filters.cout, nd.filters.cin,
                                nd.filters.kh, nd.filters.kw,
                                tensor_stats_.weight_dist,
                                tensor_stats_.weight_scale)
                     .rounded_to_fp16();
  }
  has_weights_ = true;
}

Network GraphModel::shape_table(int input_h, int input_w) const {
  const GraphTopology topo = analyze_graph(nodes_, input_h, input_w);
  Network net;
  net.name = name_;
  net.tensor_stats = tensor_stats_;
  for (int id : topo.order) {
    const GraphNode& nd = nodes_[static_cast<size_t>(id)];
    if (nd.op != GraphNode::Op::kConv) continue;
    const int p = nd.inputs[0];
    ConvLayer l;
    l.name = nd.name;
    l.cin = nd.filters.cin;
    l.cout = nd.filters.cout;
    l.kh = nd.filters.kh;
    l.kw = nd.filters.kw;
    l.stride = nd.spec.stride;
    // Rows record the *conv* output (pre-pool), exactly like
    // Model::shape_table and the hand-built tables in workload/networks.h.
    l.hout = nd.spec.out_dim(topo.out_h[static_cast<size_t>(p)], nd.filters.kh);
    l.wout = nd.spec.out_dim(topo.out_w[static_cast<size_t>(p)], nd.filters.kw);
    net.layers.push_back(std::move(l));
  }
  return net;
}

std::vector<Tensor> graph_reference_outputs(const std::vector<GraphNode>& nodes,
                                            const GraphTopology& topo,
                                            const Tensor& input) {
  std::vector<Tensor> refs(nodes.size());
  const auto activation = [&](int id) -> const Tensor& {
    return id == topo.input_node ? input : refs[static_cast<size_t>(id)];
  };
  for (int id : topo.order) {
    const GraphNode& nd = nodes[static_cast<size_t>(id)];
    if (nd.op == GraphNode::Op::kInput) continue;
    Tensor y;
    switch (nd.op) {
      case GraphNode::Op::kInput: break;
      case GraphNode::Op::kConv:
        y = conv_reference(activation(nd.inputs[0]), nd.filters, nd.spec);
        break;
      case GraphNode::Op::kAdd:
      case GraphNode::Op::kConcat: {
        std::vector<const Tensor*> parts;
        parts.reserve(nd.inputs.size());
        for (int p : nd.inputs) parts.push_back(&activation(p));
        y = nd.op == GraphNode::Op::kAdd ? tensor_add(parts)
                                         : channel_concat(parts);
        break;
      }
    }
    refs[static_cast<size_t>(id)] = apply_post_ops(std::move(y), nd.relu, nd.pool);
  }
  return refs;
}

uint64_t graph_fingerprint(const GraphModel& model) {
  // FNV-1a over the graph's full content (same scheme as
  // model_fingerprint; lives here so the hash sees GraphNode internals).
  uint64_t h = 1469598103934665603ull;
  const auto bytes = [&h](const void* p, size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  };
  const auto str = [&](const std::string& s) {
    const uint64_t n = s.size();
    bytes(&n, sizeof(n));
    bytes(s.data(), s.size());
  };
  const auto pod = [&](const auto& v) { bytes(&v, sizeof(v)); };

  str(model.name());
  pod(static_cast<uint64_t>(model.nodes().size()));
  for (const GraphNode& nd : model.nodes()) {
    pod(static_cast<int>(nd.op));
    str(nd.name);
    pod(static_cast<uint64_t>(nd.inputs.size()));
    for (int p : nd.inputs) pod(p);
    pod(nd.spec.stride);
    pod(nd.spec.pad);
    pod(static_cast<int>(nd.relu));
    pod(static_cast<int>(nd.pool));
    pod(nd.filters.cout);
    pod(nd.filters.cin);
    pod(nd.filters.kh);
    pod(nd.filters.kw);
    bytes(nd.filters.data.data(), nd.filters.data.size() * sizeof(double));
  }
  return h;
}

}  // namespace mpipu
