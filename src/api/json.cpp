#include "api/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace mpipu {
namespace {

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<size_t>(indent * depth), ' ');
}

}  // namespace

Json& Json::set(std::string key, Json value) {
  assert(is_object());
  std::get<Object>(v_).emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  assert(is_array());
  std::get<Array>(v_).push_back(std::move(value));
  return *this;
}

void Json::write(std::string& out, int indent, int depth) const {
  if (std::holds_alternative<std::nullptr_t>(v_)) {
    out += "null";
  } else if (const bool* b = std::get_if<bool>(&v_)) {
    out += *b ? "true" : "false";
  } else if (const int64_t* i = std::get_if<int64_t>(&v_)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(*i));
    out += buf;
  } else if (const double* d = std::get_if<double>(&v_)) {
    if (!std::isfinite(*d)) {
      out += "null";  // JSON has no Inf/NaN
    } else {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.12g", *d);
      out += buf;
    }
  } else if (const std::string* s = std::get_if<std::string>(&v_)) {
    escape_into(out, *s);
  } else if (const Array* a = std::get_if<Array>(&v_)) {
    if (a->empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (size_t k = 0; k < a->size(); ++k) {
      if (k > 0) out += ',';
      newline_indent(out, indent, depth + 1);
      (*a)[k].write(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += ']';
  } else {
    const Object& o = std::get<Object>(v_);
    if (o.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    for (size_t k = 0; k < o.size(); ++k) {
      if (k > 0) out += ',';
      newline_indent(out, indent, depth + 1);
      escape_into(out, o[k].first);
      out += indent > 0 ? ": " : ":";
      o[k].second.write(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

}  // namespace mpipu
