#include "api/session.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace mpipu {

namespace {
/// Distinct (model, input geometry) plans kept per Session.  Conversational
/// sessions touch one or two models; sweeps re-running one model hit entry
/// 0 forever.  Bounded so a session streaming many throwaway models cannot
/// hoard packed planes.
constexpr size_t kMaxCompiledCacheEntries = 8;
}  // namespace

Session::Session(RunSpec spec) : spec_(std::move(spec)), pool_(spec_.threads) {}

CompiledModel Session::compile(const Model& model,
                               const CompileOptions& opts) const {
  return CompiledModel::compile(model, spec_, opts);
}

CompiledModel Session::compile(const GraphModel& model,
                               const CompileOptions& opts) const {
  return CompiledModel::compile(model, spec_, opts);
}

template <typename ModelT>
std::shared_ptr<const CompiledModel> Session::compiled_for(const ModelT& model,
                                                           int input_h,
                                                           int input_w) {
  // Exact-match lookup via matches(): its field comparisons (name, layer
  // shapes, specs) reject non-matching entries before any weight bytes are
  // touched, and a hit costs one memcmp-grade weight pass -- cheaper than
  // hashing the weights up front on every run.  The whole
  // lookup/rotate/compile/evict sequence holds cache_mu_ so concurrent
  // first-use runs race safely (the loser re-finds the winner's entry); the
  // returned shared_ptr keeps the plan alive even if another thread evicts
  // it before the caller finishes executing.
  MutexLock lock(cache_mu_);
  for (size_t i = 0; i < compiled_cache_.size(); ++i) {
    const CacheEntry& e = compiled_cache_[i];
    if (e.compiled->input_h() == input_h && e.compiled->input_w() == input_w &&
        e.compiled->matches(model)) {
      // LRU: refresh recency so a hot model survives transient ones
      // streaming through (eviction takes the front).
      if (i + 1 != compiled_cache_.size()) {
        std::rotate(compiled_cache_.begin() + static_cast<ptrdiff_t>(i),
                    compiled_cache_.begin() + static_cast<ptrdiff_t>(i) + 1,
                    compiled_cache_.end());
      }
      return compiled_cache_.back().compiled;
    }
  }
  CompileOptions opts;
  opts.input_h = input_h;
  opts.input_w = input_w;
  // Compile before evicting: a throwing compile (bad policy, collapsing
  // geometry) must not cost an unrelated cached plan.
  auto compiled = std::make_shared<const CompiledModel>(
      CompiledModel::compile(model, spec_, opts));
  if (compiled_cache_.size() >= kMaxCompiledCacheEntries) {
    compiled_cache_.erase(compiled_cache_.begin());
  }
  compiled_cache_.push_back({std::move(compiled)});
  return compiled_cache_.back().compiled;
}

RunReport Session::run_compiled(const CompiledModel& compiled,
                                const Tensor& input, const RunOptions& opts) {
  // The shared pool serves one run at a time (parallel_for is not
  // reentrant).  A concurrent caller finding it busy executes on a private
  // per-call pool of the same width instead of queueing -- byte-identical
  // output by thread-count invariance, and spec.threads == 1 (the serving
  // default) makes the fallback pool threadless and effectively free.
  TryMutexLock pool_lock(pool_mu_);
  if (pool_lock.owns_lock()) {
    return compiled.run(input, opts, pool_);
  }
  return compiled.run(input, opts);
}

RunReport Session::run(const Model& model, const Tensor& input,
                       const RunOptions& opts) {
  if (!model.has_weights()) {
    throw std::invalid_argument(
        "Session::run: model '" + model.name() +
        "' carries no weights -- shape-table models are estimate-only; build "
        "with Model::from_layers or call materialize_weights()");
  }
  if (input.c != model.layers().front().filters.cin) {
    throw std::invalid_argument(
        "Session::run: input has " + std::to_string(input.c) +
        " channels but layer '" + model.layers().front().name + "' expects " +
        std::to_string(model.layers().front().filters.cin));
  }
  return run_compiled(*compiled_for(model, input.h, input.w), input, opts);
}

RunReport Session::run(const GraphModel& model, const Tensor& input,
                       const RunOptions& opts) {
  if (!model.has_weights()) {
    throw std::invalid_argument(
        "Session::run: graph '" + model.name() +
        "' carries no weights -- shape-only graphs are estimate-only; call "
        "materialize_weights() first");
  }
  return run_compiled(*compiled_for(model, input.h, input.w), input, opts);
}

Tensor Session::reference(const Model& model, const Tensor& input) {
  if (!model.has_weights()) {
    throw std::invalid_argument(
        "Session::reference: model '" + model.name() + "' carries no weights");
  }
  Tensor ref = input;
  for (const ModelLayer& l : model.layers()) ref = reference_layer(ref, l);
  return ref;
}

template <typename ModelT>
BatchRunReport Session::run_batch_impl(const ModelT& model,
                                       const std::vector<Tensor>& inputs,
                                       const RunOptions& opts) {
  // The estimate depends only on (model, input dims, spec): compute it once
  // per distinct input shape instead of once per input.
  RunOptions per_run = opts;
  per_run.with_estimate = false;
  std::vector<std::pair<std::pair<int, int>, NetworkSimResult>> estimates;

  BatchRunReport batch;
  batch.runs.reserve(inputs.size());
  for (const Tensor& input : inputs) {
    batch.runs.push_back(run(model, input, per_run));
    if (opts.with_estimate) {
      const std::pair<int, int> dims{input.h, input.w};
      const NetworkSimResult* cached = nullptr;
      for (const auto& e : estimates) {
        if (e.first == dims) {
          cached = &e.second;
          break;
        }
      }
      if (cached == nullptr) {
        estimates.emplace_back(dims, estimate(model, input.h, input.w));
        cached = &estimates.back().second;
      }
      batch.runs.back().estimate = *cached;
    }
    batch.totals += batch.runs.back().totals;
  }
  return batch;
}

Tensor Session::reference(const GraphModel& model, const Tensor& input) {
  if (!model.has_weights()) {
    throw std::invalid_argument(
        "Session::reference: graph '" + model.name() + "' carries no weights");
  }
  const GraphTopology topo = analyze_graph(model.nodes(), input.h, input.w);
  std::vector<Tensor> refs =
      graph_reference_outputs(model.nodes(), topo, input);
  return std::move(refs[static_cast<size_t>(topo.output_node)]);
}

BatchRunReport Session::run_batch(const Model& model,
                                  const std::vector<Tensor>& inputs,
                                  const RunOptions& opts) {
  return run_batch_impl(model, inputs, opts);
}

BatchRunReport Session::run_batch(const GraphModel& model,
                                  const std::vector<Tensor>& inputs,
                                  const RunOptions& opts) {
  return run_batch_impl(model, inputs, opts);
}

NetworkSimResult Session::estimate(const GraphModel& model, int input_h,
                                   int input_w) const {
  return estimate(model.shape_table(input_h, input_w));
}

NetworkSimResult Session::estimate(const Network& net) const {
  return simulate_network(net, composed_tile_for(spec_, spec_.tile), spec_.sim,
                          spec_.partition);
}

NetworkSimResult Session::estimate(const Model& model, int input_h,
                                   int input_w) const {
  return estimate(model.shape_table(input_h, input_w));
}

NetworkSimResult Session::estimate(const Model& model, const TileConfig& tile,
                                   int input_h, int input_w) const {
  return simulate_network(model.shape_table(input_h, input_w),
                          composed_tile_for(spec_, tile), spec_.sim,
                          spec_.partition);
}

}  // namespace mpipu
