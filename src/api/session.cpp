#include "api/session.h"

#include <stdexcept>
#include <utility>

namespace mpipu {
namespace {

Tensor global_avg_pool(const Tensor& t) {
  Tensor out(t.c, 1, 1);
  for (int c = 0; c < t.c; ++c) {
    double s = 0.0;
    for (int y = 0; y < t.h; ++y) {
      for (int x = 0; x < t.w; ++x) s += t.at(c, y, x);
    }
    out.at(c, 0, 0) = s / (static_cast<double>(t.h) * t.w);
  }
  return out;
}

Tensor apply_post_ops(Tensor t, const ModelLayer& l) {
  if (l.relu) t = relu(t);
  switch (l.pool) {
    case PoolOp::kNone: break;
    case PoolOp::kMax2: t = maxpool2(t); break;
    case PoolOp::kGlobalAvg: t = global_avg_pool(t); break;
  }
  return t;
}

}  // namespace

Session::Session(RunSpec spec) : spec_(std::move(spec)), pool_(spec_.threads) {}

ConvEngine& Session::engine_for(const DatapathConfig& dp, AccumKind accum) {
  for (const PoolEntry& e : engines_) {
    if (e.datapath == dp && e.accum == accum) return *e.engine;
  }
  ConvEngineConfig ec;
  ec.datapath = dp;
  ec.accum = accum;
  ec.threads = pool_.size();
  engines_.push_back({dp, accum, std::make_unique<ConvEngine>(ec, pool_)});
  return *engines_.back().engine;
}

RunReport Session::run(const Model& model, const Tensor& input,
                       const RunOptions& opts) {
  if (!model.has_weights()) {
    throw std::invalid_argument(
        "Session::run: model '" + model.name() +
        "' carries no weights -- shape-table models are estimate-only; build "
        "with Model::from_layers or call materialize_weights()");
  }
  const std::vector<ModelLayer>& layers = model.layers();
  if (input.c != layers.front().filters.cin) {
    throw std::invalid_argument(
        "Session::run: input has " + std::to_string(input.c) +
        " channels but layer '" + layers.front().name + "' expects " +
        std::to_string(layers.front().filters.cin));
  }

  // Resolve and validate the whole policy up front: an unsupported INT
  // layer must be rejected before anything executes.
  std::vector<LayerPrecision> precisions(layers.size());
  for (size_t i = 0; i < layers.size(); ++i) {
    precisions[i] = spec_.policy.resolve(i, layers.size(), layers[i].name);
    const LayerPrecision& p = precisions[i];
    if (p.kind != LayerPrecision::Kind::kInt) continue;
    if (!probe_) probe_ = make_datapath(spec_.datapath);
    if (!probe_->supports_int(p.a_bits, p.w_bits)) {
      throw std::invalid_argument(
          "Session::run: layer '" + layers[i].name + "' requests " +
          p.to_string() + " but the " + scheme_name(spec_.datapath.scheme) +
          " scheme does not support it" +
          (spec_.datapath.scheme == DecompositionScheme::kSpatial
               ? " (spatial is FP-only; pick an fp16 policy or a "
                 "temporal/serial datapath)"
               : ""));
    }
  }

  RunReport report;
  report.model = model.name();
  report.scheme = scheme_name(spec_.datapath.scheme);
  report.threads = pool_.size();

  Tensor x = input;
  Tensor ref = input;
  for (size_t i = 0; i < layers.size(); ++i) {
    const ModelLayer& l = layers[i];
    const LayerPrecision& p = precisions[i];
    LayerRunReport lr;
    lr.layer = l.name;
    lr.precision = p.to_string();

    Tensor y;
    if (p.kind == LayerPrecision::Kind::kFp16) {
      ConvEngine& eng = engine_for(spec_.datapath, p.accum);
      const DatapathStats before = eng.stats();
      y = eng.conv_fp16(x, l.filters, l.spec);
      lr.stats = eng.stats() - before;
    } else {
      // INT convs ignore the accumulation destination; share one engine.
      ConvEngine& eng = engine_for(spec_.datapath, AccumKind::kFp32);
      const DatapathStats before = eng.stats();
      y = eng.conv_int(x, l.filters, l.spec, p.a_bits, p.w_bits);
      lr.stats = eng.stats() - before;
    }

    x = apply_post_ops(std::move(y), l);
    if (opts.compare_reference) {
      ref = apply_post_ops(conv_reference(ref, l.filters, l.spec), l);
      lr.error = compare_outputs(x, ref);
    }
    report.totals += lr.stats;
    report.layers.push_back(std::move(lr));
  }

  report.output = std::move(x);
  if (opts.compare_reference) {
    report.end_to_end = report.layers.back().error;
    report.reference_output = std::move(ref);
  }
  if (opts.with_estimate) {
    report.estimate = estimate(model, input.h, input.w);
  }
  return report;
}

Tensor Session::reference(const Model& model, const Tensor& input) {
  if (!model.has_weights()) {
    throw std::invalid_argument(
        "Session::reference: model '" + model.name() + "' carries no weights");
  }
  Tensor ref = input;
  for (const ModelLayer& l : model.layers()) {
    ref = apply_post_ops(conv_reference(ref, l.filters, l.spec), l);
  }
  return ref;
}

BatchRunReport Session::run_batch(const Model& model,
                                  const std::vector<Tensor>& inputs,
                                  const RunOptions& opts) {
  // The estimate depends only on (model, input dims, spec): compute it once
  // per distinct input shape instead of once per input.
  RunOptions per_run = opts;
  per_run.with_estimate = false;
  std::vector<std::pair<std::pair<int, int>, NetworkSimResult>> estimates;

  BatchRunReport batch;
  batch.runs.reserve(inputs.size());
  for (const Tensor& input : inputs) {
    batch.runs.push_back(run(model, input, per_run));
    if (opts.with_estimate) {
      const std::pair<int, int> dims{input.h, input.w};
      const NetworkSimResult* cached = nullptr;
      for (const auto& e : estimates) {
        if (e.first == dims) {
          cached = &e.second;
          break;
        }
      }
      if (cached == nullptr) {
        estimates.emplace_back(dims, estimate(model, input.h, input.w));
        cached = &estimates.back().second;
      }
      batch.runs.back().estimate = *cached;
    }
    batch.totals += batch.runs.back().totals;
  }
  return batch;
}

TileConfig Session::composed_tile(const TileConfig& geometry) const {
  TileConfig t = geometry;
  t.datapath = spec_.datapath;
  if (t.c_unroll != spec_.datapath.n_inputs) {
    throw std::invalid_argument(
        "Session::estimate: tile c_unroll (" + std::to_string(t.c_unroll) +
        ") must equal datapath n_inputs (" +
        std::to_string(spec_.datapath.n_inputs) +
        ") -- one RunSpec drives both paths");
  }
  return t;
}

NetworkSimResult Session::estimate(const Network& net) const {
  return simulate_network(net, composed_tile(spec_.tile), spec_.sim);
}

NetworkSimResult Session::estimate(const Model& model, int input_h,
                                   int input_w) const {
  return estimate(model.shape_table(input_h, input_w));
}

NetworkSimResult Session::estimate(const Model& model, const TileConfig& tile,
                                   int input_h, int input_w) const {
  return simulate_network(model.shape_table(input_h, input_w),
                          composed_tile(tile), spec_.sim);
}

}  // namespace mpipu
