// RunReport: the one result structure of the high-level API.  A
// Session::run unifies, per layer and in total, the three views the repo
// used to report through three disjoint channels:
//
//   * DatapathStats   -- what the bit-accurate datapath did (ops, cycles,
//                        iterations, masking);
//   * AgreementStats  -- error of the approximate output vs the exact FP32
//                        reference chain;
//   * NetworkSimResult -- simulated tile cycles (when requested), from the
//                        same RunSpec config.
//
// to_json()/to_json_value() serialize through the single Json emitter
// (api/json.h); benches that write result files compose these values
// instead of hand-printing JSON.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "api/json.h"
#include "core/datapath.h"
#include "nn/conv.h"
#include "nn/tensor.h"
#include "sim/cycle_sim.h"

namespace mpipu {

struct LayerRunReport {
  std::string layer;
  std::string precision;  ///< LayerPrecision::to_string() of the layer
  DatapathStats stats;    ///< this layer's datapath work (delta, not total)
  AgreementStats error;   ///< vs the FP32 reference, after post-ops
};

struct RunReport {
  std::string model;
  std::string scheme;  ///< scheme_name() of the datapath that ran
  /// simd::backend_name() of the kernel backend the run executed on
  /// ("scalar", "avx2" or "neon") -- records which serve-loop
  /// implementation produced the (bit-identical) outputs.
  std::string kernel_backend;
  int threads = 1;
  std::vector<LayerRunReport> layers;
  DatapathStats totals;        ///< sum of the per-layer deltas
  AgreementStats end_to_end;   ///< final output vs the FP32 reference chain
  Tensor output;               ///< final activation tensor
  Tensor reference_output;     ///< exact FP32 chain output (when compared)
  std::optional<NetworkSimResult> estimate;  ///< cycle sim, when requested

  Json to_json_value() const;
  std::string to_json(int indent = 2) const { return to_json_value().dump(indent); }
};

/// Result of Session::run_batch: per-input reports plus the deterministic
/// stats reduction over the batch (every counter is a sum of per-run sums,
/// so the totals are identical for 1 and N threads).
struct BatchRunReport {
  std::vector<RunReport> runs;
  DatapathStats totals;

  Json to_json_value() const;
  std::string to_json(int indent = 2) const { return to_json_value().dump(indent); }
};

/// Shared emitters for the component structs (used by the report and by
/// benches composing their own documents).
Json to_json_value(const DatapathStats& s);
Json to_json_value(const AgreementStats& s);
Json to_json_value(const NetworkSimResult& r);

}  // namespace mpipu
