// RunSpec / RunOptions: the one configuration driving every high-level
// execution path -- Session's conversational run/estimate AND the
// compile-once CompiledModel pipeline (api/compiled_model.h).  Split out of
// session.h so the compile half does not depend on the Session class.
#pragma once

#include "api/precision_policy.h"
#include "core/datapath.h"
#include "sim/cycle_sim.h"
#include "sim/tile.h"

namespace mpipu {

/// The one config driving both the numeric and the cycle-sim paths.
struct RunSpec {
  /// Datapath of every IPU: used directly by run() and plugged into the
  /// tile by estimate().  tile.datapath is ignored -- this is the source of
  /// truth (the old three-config split this API replaces).
  DatapathConfig datapath{};
  /// Tile geometry for the cycle-sim path (unrolls, clustering, buffers).
  /// tile.c_unroll must equal datapath.n_inputs.
  TileConfig tile{};
  /// Per-layer precision choices for the numeric path.  Resolved per layer
  /// at compile time; a CompiledModel never re-resolves it.
  PrecisionPolicy policy{};
  /// Worker count: the Session's shared pool, or a CompiledModel's per-call
  /// scratch pool; <= 0 selects hardware_concurrency().  For concurrent
  /// serving through one CompiledModel prefer 1 (parallelism across
  /// requests, zero per-call thread spawn).
  int threads = 1;
  /// Sampling options for the cycle-sim path.
  SimOptions sim{};
  /// Multi-tile partitioning (sim/partition.h): how estimate() shards each
  /// layer across tile.num_tiles tiles, and -- when partition.shard_host is
  /// set -- whether run() mirrors the sharding on the host ThreadPool
  /// (byte-identical outputs either way; see api/compiled_model.h).
  PartitionSpec partition{};
};

struct RunOptions {
  /// Compute the exact FP32 reference chain and per-layer error metrics.
  bool compare_reference = true;
  /// Also run the cycle simulator on the model's shape table and attach the
  /// NetworkSimResult to the report.
  bool with_estimate = false;
};

/// Plug the spec's datapath into a tile geometry (the cycle-sim path's
/// config composition).  Throws std::invalid_argument when the tile's
/// c_unroll disagrees with the datapath's n_inputs -- one spec, one n.
TileConfig composed_tile_for(const RunSpec& spec, const TileConfig& geometry);

}  // namespace mpipu
