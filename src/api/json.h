// Minimal JSON document builder -- the one serialization point of the
// high-level API.  RunReport::to_json() and every bench that emits machine-
// readable results compose a `Json` value and dump it, so all JSON leaving
// this repo is formatted by a single emitter (keys keep insertion order,
// non-finite doubles become null, strings are escaped once, here).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace mpipu {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;  // insertion order

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(int i) : v_(static_cast<int64_t>(i)) {}
  Json(int64_t i) : v_(i) {}
  Json(double d) : v_(d) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(Array a) : v_(std::move(a)) {}
  Json(Object o) : v_(std::move(o)) {}

  static Json object() { return Json(Object{}); }
  static Json array() { return Json(Array{}); }

  /// Append a key to an object (callable only on objects; asserts otherwise).
  Json& set(std::string key, Json value);
  /// Append an element to an array.
  Json& push(Json value);

  bool is_object() const { return std::holds_alternative<Object>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }

  /// Serialize; indent > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 2) const;

 private:
  void write(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array, Object> v_;
};

}  // namespace mpipu
