#include "api/model.h"

#include <stdexcept>
#include <utility>

namespace mpipu {
namespace {

Tensor global_avg_pool(const Tensor& t) {
  Tensor out(t.c, 1, 1);
  for (int c = 0; c < t.c; ++c) {
    double s = 0.0;
    for (int y = 0; y < t.h; ++y) {
      for (int x = 0; x < t.w; ++x) s += t.at(c, y, x);
    }
    out.at(c, 0, 0) = s / (static_cast<double>(t.h) * t.w);
  }
  return out;
}

}  // namespace

Tensor apply_post_ops(Tensor t, bool relu_first, PoolOp pool) {
  if (relu_first) t = relu(t);
  switch (pool) {
    case PoolOp::kNone: break;
    case PoolOp::kMax2: t = maxpool2(t); break;
    case PoolOp::kGlobalAvg: t = global_avg_pool(t); break;
  }
  return t;
}

Tensor apply_post_ops(Tensor t, const ModelLayer& l) {
  return apply_post_ops(std::move(t), l.relu, l.pool);
}

Tensor reference_layer(const Tensor& input, const ModelLayer& l) {
  return apply_post_ops(conv_reference(input, l.filters, l.spec), l);
}

Model Model::from_layers(std::string name, std::vector<ModelLayer> layers) {
  if (layers.empty()) {
    throw std::invalid_argument("Model::from_layers: layer list is empty");
  }
  for (size_t i = 1; i < layers.size(); ++i) {
    if (layers[i].filters.cin != layers[i - 1].filters.cout) {
      throw std::invalid_argument(
          "Model::from_layers: layer '" + layers[i].name + "' expects " +
          std::to_string(layers[i].filters.cin) + " input channels but '" +
          layers[i - 1].name + "' produces " +
          std::to_string(layers[i - 1].filters.cout));
    }
  }
  Model m;
  m.name_ = std::move(name);
  m.layers_ = std::move(layers);
  return m;
}

Model Model::from_network(Network net) {
  Model m;
  m.name_ = net.name;
  m.shape_net_ = std::move(net);
  return m;
}

void Model::materialize_weights(uint64_t seed) {
  if (!shape_net_.has_value()) {
    throw std::invalid_argument(
        "Model::materialize_weights: model '" + name_ +
        "' was not built from a shape table");
  }
  const Network& net = *shape_net_;
  for (size_t i = 0; i < net.layers.size(); ++i) {
    const ConvLayer& l = net.layers[i];
    if (l.repeat != 1) {
      throw std::invalid_argument(
          "Model::materialize_weights: layer '" + l.name +
          "' collapses repeat=" + std::to_string(l.repeat) +
          " instances; only repeat-free chains can be materialized");
    }
    if (i > 0 && l.cin != net.layers[i - 1].cout) {
      throw std::invalid_argument(
          "Model::materialize_weights: table is not a sequential chain ('" +
          l.name + "' takes " + std::to_string(l.cin) + " channels, '" +
          net.layers[i - 1].name + "' produces " +
          std::to_string(net.layers[i - 1].cout) + ")");
    }
    // Tables record no padding; weights get "same"-style pad = (k-1)/2.
    // Reject rows whose recorded shapes do not chain under that pad, so
    // run() (which uses the pad) and estimate() (which uses the recorded
    // shapes) cannot silently disagree on layer geometry.
    if (i > 0) {
      ConvSpec s;
      s.stride = l.stride;
      s.pad = (l.kh - 1) / 2;
      const ConvLayer& prev = net.layers[i - 1];
      if (s.out_dim(prev.hout, l.kh) != l.hout ||
          s.out_dim(prev.wout, l.kw) != l.wout) {
        throw std::invalid_argument(
            "Model::materialize_weights: layer '" + l.name + "' records " +
            std::to_string(l.hout) + "x" + std::to_string(l.wout) +
            " outputs, which same-padded conv from '" + prev.name +
            "' cannot reproduce -- the numeric and cycle-sim paths would "
            "diverge; materialize only supports same-padded chains");
      }
    }
  }
  Rng rng(seed);
  layers_.clear();
  layers_.reserve(net.layers.size());
  for (const ConvLayer& l : net.layers) {
    ModelLayer ml;
    ml.name = l.name;
    ml.filters = random_filters(rng, l.cout, l.cin, l.kh, l.kw,
                                net.tensor_stats.weight_dist,
                                net.tensor_stats.weight_scale)
                     .rounded_to_fp16();
    ml.spec.stride = l.stride;
    ml.spec.pad = (l.kh - 1) / 2;  // "same"-style pad; tables record none
    layers_.push_back(std::move(ml));
  }
}

Network Model::shape_table(int input_h, int input_w) const {
  if (shape_net_.has_value()) return *shape_net_;
  if (input_h <= 0 || input_w <= 0) {
    throw std::invalid_argument(
        "Model::shape_table: model '" + name_ +
        "' is an ad-hoc layer chain; pass the input spatial dims");
  }
  Network net;
  net.name = name_;
  net.tensor_stats = forward_stats();
  int h = input_h, w = input_w;
  for (const ModelLayer& ml : layers_) {
    ConvLayer l;
    l.name = ml.name;
    l.cin = ml.filters.cin;
    l.cout = ml.filters.cout;
    l.kh = ml.filters.kh;
    l.kw = ml.filters.kw;
    l.stride = ml.spec.stride;
    l.hout = ml.spec.out_dim(h, ml.filters.kh);
    l.wout = ml.spec.out_dim(w, ml.filters.kw);
    net.layers.push_back(l);
    h = l.hout;
    w = l.wout;
    switch (ml.pool) {
      case PoolOp::kNone: break;
      case PoolOp::kMax2: h /= 2; w /= 2; break;
      case PoolOp::kGlobalAvg: h = 1; w = 1; break;
    }
  }
  return net;
}

}  // namespace mpipu
