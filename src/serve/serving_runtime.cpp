#include "serve/serving_runtime.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace mpipu::serve {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Latency samples kept for the percentile digest.  A runtime serving past
/// this simply stops recording samples (counters keep counting); at bench
/// and test scale the cap is never approached.
constexpr size_t kMaxLatencySamples = 1u << 20;

}  // namespace

const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kDeadline: return "deadline";
    case RejectReason::kShutdown: return "shutdown";
  }
  return "?";
}

Json ServerMetrics::to_json_value() const {
  Json j = Json::object();
  j.set("submitted", static_cast<double>(submitted));
  j.set("completed", static_cast<double>(completed));
  j.set("shed_queue_full", static_cast<double>(shed_queue_full));
  j.set("shed_deadline", static_cast<double>(shed_deadline));
  j.set("shed_shutdown", static_cast<double>(shed_shutdown));
  j.set("coalesced", static_cast<double>(coalesced));
  j.set("batches", static_cast<double>(batches));
  j.set("queue_high_water", static_cast<double>(queue_high_water));
  j.set("mean_batch_size", mean_batch_size);
  Json hist = Json::array();
  for (uint64_t v : batch_size_hist) hist.push(static_cast<double>(v));
  j.set("batch_size_hist", std::move(hist));
  j.set("elapsed_s", elapsed_s);
  j.set("throughput_rps", throughput_rps);
  Json lat = Json::object();
  lat.set("count", static_cast<double>(latency.count));
  lat.set("mean_s", latency.mean_s);
  lat.set("p50_s", latency.p50_s);
  lat.set("p95_s", latency.p95_s);
  lat.set("p99_s", latency.p99_s);
  lat.set("max_s", latency.max_s);
  j.set("latency", std::move(lat));
  return j;
}

ServingRuntime::ServingRuntime(RunSpec spec, ServerConfig cfg)
    : spec_(std::move(spec)), cfg_(std::move(cfg)) {
  if (cfg_.workers < 1) cfg_.workers = 1;
  if (cfg_.queue_capacity < 1) cfg_.queue_capacity = 1;
  if (cfg_.max_batch < 1) cfg_.max_batch = 1;
  if (cfg_.max_models < 1) cfg_.max_models = 1;
  counters_.batch_size_hist.assign(static_cast<size_t>(cfg_.max_batch) + 1, 0);
  start_t_ = now_seconds();
  workers_.reserve(static_cast<size_t>(cfg_.workers));
  for (int w = 0; w < cfg_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ServingRuntime::~ServingRuntime() { shutdown(Shutdown::kDrain); }

template <typename ModelT>
ModelHandle ServingRuntime::load_impl(const ModelT& model, int input_h,
                                      int input_w) {
  std::lock_guard<std::mutex> lock(models_mu_);
  for (size_t i = 0; i < models_.size(); ++i) {
    const LoadedModel& m = models_[i];
    if (m.compiled->input_h() == input_h && m.compiled->input_w() == input_w &&
        m.compiled->matches(model)) {
      // LRU refresh: a re-loaded model moves to the back (eviction takes
      // the front).
      if (i + 1 != models_.size()) {
        std::rotate(models_.begin() + static_cast<ptrdiff_t>(i),
                    models_.begin() + static_cast<ptrdiff_t>(i) + 1,
                    models_.end());
      }
      return models_.back().handle;
    }
  }
  CompileOptions opts;
  opts.input_h = input_h;
  opts.input_w = input_w;
  // Compile before evicting: a throwing compile must not cost a cached plan.
  auto compiled = std::make_shared<const CompiledModel>(
      CompiledModel::compile(model, spec_, opts));
  if (models_.size() >= cfg_.max_models) {
    models_.erase(models_.begin());
  }
  models_.push_back({next_handle_++, std::move(compiled)});
  return models_.back().handle;
}

ModelHandle ServingRuntime::load(const Model& model, int input_h,
                                 int input_w) {
  return load_impl(model, input_h, input_w);
}

ModelHandle ServingRuntime::load(const GraphModel& model, int input_h,
                                 int input_w) {
  return load_impl(model, input_h, input_w);
}

std::shared_ptr<const CompiledModel> ServingRuntime::model(
    ModelHandle h) const {
  std::lock_guard<std::mutex> lock(models_mu_);
  for (const LoadedModel& m : models_) {
    if (m.handle == h) return m.compiled;
  }
  throw std::out_of_range("ServingRuntime::model: unknown or evicted handle " +
                          std::to_string(h));
}

size_t ServingRuntime::loaded_count() const {
  std::lock_guard<std::mutex> lock(models_mu_);
  return models_.size();
}

std::future<ServeResult> ServingRuntime::submit(ModelHandle h, Tensor input,
                                                const SubmitOptions& opts) {
  Pending p;
  p.model = model(h);  // throws out_of_range for a bad handle (caller bug)
  p.handle = h;
  p.input = std::move(input);
  p.enqueue_t = now_seconds();
  if (opts.timeout_s < std::numeric_limits<double>::infinity()) {
    p.deadline = p.enqueue_t + opts.timeout_s;
  }
  std::future<ServeResult> fut = p.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    ++counters_.submitted;
  }

  RejectReason reject = RejectReason::kNone;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      reject = RejectReason::kShutdown;
    } else if (queue_.size() >= cfg_.queue_capacity) {
      reject = RejectReason::kQueueFull;
    } else if (cfg_.per_model_queue_cap > 0) {
      size_t queued = 0;
      for (const Pending& q : queue_) {
        if (q.handle == h) ++queued;
      }
      if (queued >= cfg_.per_model_queue_cap) {
        reject = RejectReason::kQueueFull;
      }
    }
    if (reject == RejectReason::kNone) {
      queue_.push_back(std::move(p));
      queue_high_water_ = std::max(queue_high_water_, queue_.size());
    }
  }
  if (reject == RejectReason::kNone) {
    queue_cv_.notify_one();
  } else {
    resolve_rejected(std::move(p), reject);
  }
  return fut;
}

ServeResult ServingRuntime::serve(ModelHandle h, Tensor input,
                                  const SubmitOptions& opts) {
  return submit(h, std::move(input), opts).get();
}

void ServingRuntime::resolve_rejected(Pending&& p, RejectReason reason) {
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    switch (reason) {
      case RejectReason::kQueueFull: ++counters_.shed_queue_full; break;
      case RejectReason::kDeadline: ++counters_.shed_deadline; break;
      case RejectReason::kShutdown: ++counters_.shed_shutdown; break;
      case RejectReason::kNone: break;
    }
  }
  ServeResult r;
  r.rejected = reason;
  r.total_s = now_seconds() - p.enqueue_t;
  p.promise.set_value(std::move(r));
}

void ServingRuntime::gather_same_model(std::vector<Pending>& batch) {
  const ModelHandle h = batch.front().handle;
  for (auto it = queue_.begin();
       it != queue_.end() &&
       static_cast<int>(batch.size()) < cfg_.max_batch;) {
    if (it->handle == h) {
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void ServingRuntime::worker_loop() {
  // Long-lived per-worker execution pool: requests never pay per-call
  // thread spawn.  spec_.threads == 1 (the serving default) keeps it
  // threadless.
  ThreadPool pool(spec_.threads);
  std::vector<Pending> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;  // drained (or aborted): done
        continue;
      }
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      gather_same_model(batch);
      if (static_cast<int>(batch.size()) < cfg_.max_batch &&
          cfg_.batch_window_s > 0.0 && !stopping_) {
        // Linger for more same-model arrivals.  Draining skips the window
        // (stopping_ breaks the loop), and every wake re-gathers whatever
        // arrived.
        const auto window_end =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(cfg_.batch_window_s));
        while (static_cast<int>(batch.size()) < cfg_.max_batch &&
               !stopping_) {
          if (queue_cv_.wait_until(lock, window_end) ==
              std::cv_status::timeout) {
            gather_same_model(batch);
            break;
          }
          gather_same_model(batch);
        }
      }
    }
    execute_batch(batch, pool);
  }
}

void ServingRuntime::execute_batch(std::vector<Pending>& batch,
                                   ThreadPool& pool) {
  const double dispatch_t = now_seconds();

  // Dispatch-time deadline shedding: expired requests never execute.
  std::vector<Pending> live;
  live.reserve(batch.size());
  for (Pending& p : batch) {
    if (dispatch_t > p.deadline) {
      resolve_rejected(std::move(p), RejectReason::kDeadline);
    } else {
      live.push_back(std::move(p));
    }
  }
  if (live.empty()) return;

  // Coalesce byte-identical inputs: every request maps to a slot in the
  // unique-input list; duplicates reuse the first twin's execution.  Exact
  // double equality on the raw data -- the same predicate the reference
  // cache uses -- and execution is deterministic, so fan-out is exact.
  std::vector<Tensor> inputs;
  std::vector<size_t> slot_of(live.size());
  if (cfg_.coalesce_identical) {
    for (size_t i = 0; i < live.size(); ++i) {
      size_t s = 0;
      while (s < inputs.size() && inputs[s].data != live[i].input.data) ++s;
      if (s == inputs.size()) inputs.push_back(live[i].input);
      slot_of[i] = s;
    }
  } else {
    inputs.reserve(live.size());
    for (size_t i = 0; i < live.size(); ++i) {
      inputs.push_back(live[i].input);
      slot_of[i] = i;
    }
  }

  // One run_batch call for the whole window, on this worker's long-lived
  // pool.  Invalid geometry surfaces here, NOT as an exception out of the
  // worker: resolve every request exceptionally instead of dying.
  BatchRunReport reports;
  try {
    reports = live.front().model->run_batch(inputs, cfg_.run_options, pool);
  } catch (...) {
    const std::exception_ptr err = std::current_exception();
    for (Pending& p : live) p.promise.set_exception(err);
    return;
  }
  const double done_t = now_seconds();

  // First twin of each slot executed; later twins are coalesced fan-outs.
  uint64_t coalesced_here = 0;
  std::vector<bool> was_coalesced(live.size(), false);
  {
    std::vector<bool> slot_used(inputs.size(), false);
    for (size_t i = 0; i < live.size(); ++i) {
      was_coalesced[i] = slot_used[slot_of[i]];
      if (was_coalesced[i]) ++coalesced_here;
      slot_used[slot_of[i]] = true;
    }
  }

  // Metrics BEFORE promises: a client whose future just resolved must see
  // its own completion in the very next metrics() snapshot.
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    counters_.completed += live.size();
    counters_.coalesced += coalesced_here;
    ++counters_.batches;
    const size_t b = std::min(live.size(),
                              counters_.batch_size_hist.size() - 1);
    ++counters_.batch_size_hist[b];
    for (const Pending& p : live) {
      if (latencies_.size() < kMaxLatencySamples) {
        latencies_.push_back(done_t - p.enqueue_t);
      }
    }
  }

  for (size_t i = 0; i < live.size(); ++i) {
    Pending& p = live[i];
    ServeResult r;
    r.rejected = RejectReason::kNone;
    r.batch_size = static_cast<int>(live.size());
    r.coalesced = was_coalesced[i];
    // The last twin of each slot may move the report; earlier ones copy.
    const bool last_use =
        [&] {
          for (size_t j = i + 1; j < live.size(); ++j) {
            if (slot_of[j] == slot_of[i]) return false;
          }
          return true;
        }();
    if (last_use) {
      r.report = std::move(reports.runs[slot_of[i]]);
    } else {
      r.report = reports.runs[slot_of[i]];
    }
    r.queue_wait_s = dispatch_t - p.enqueue_t;
    r.total_s = done_t - p.enqueue_t;
    p.promise.set_value(std::move(r));
  }
}

void ServingRuntime::shutdown(Shutdown mode) {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  std::vector<Pending> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    if (mode == Shutdown::kAbort) {
      while (!queue_.empty()) {
        dropped.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
  }
  queue_cv_.notify_all();
  for (Pending& p : dropped) {
    resolve_rejected(std::move(p), RejectReason::kShutdown);
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

ServerMetrics ServingRuntime::metrics() const {
  ServerMetrics m;
  std::vector<double> lats;
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    m = counters_;
    lats = latencies_;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    m.queue_high_water = queue_high_water_;
  }
  m.latency = summarize_latencies(std::move(lats));
  m.elapsed_s = now_seconds() - start_t_;
  m.throughput_rps =
      m.elapsed_s > 0.0 ? static_cast<double>(m.completed) / m.elapsed_s : 0.0;
  m.mean_batch_size =
      m.batches > 0
          ? static_cast<double>(m.completed) / static_cast<double>(m.batches)
          : 0.0;
  return m;
}

}  // namespace mpipu::serve
