#include "serve/serving_runtime.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace mpipu::serve {

namespace {

/// Latency samples kept for the percentile digest.  A runtime serving past
/// this simply stops recording samples (counters keep counting); at bench
/// and test scale the cap is never approached.
constexpr size_t kMaxLatencySamples = 1u << 20;

}  // namespace

const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kDeadline: return "deadline";
    case RejectReason::kShutdown: return "shutdown";
    case RejectReason::kBadInput: return "bad_input";
    case RejectReason::kUnhealthy: return "unhealthy";
    case RejectReason::kExecError: return "exec_error";
  }
  return "?";
}

Json ServerMetrics::to_json_value() const {
  Json j = Json::object();
  j.set("submitted", static_cast<double>(submitted));
  j.set("completed", static_cast<double>(completed));
  j.set("shed_queue_full", static_cast<double>(shed_queue_full));
  j.set("shed_deadline", static_cast<double>(shed_deadline));
  j.set("shed_shutdown", static_cast<double>(shed_shutdown));
  j.set("shed_bad_input", static_cast<double>(shed_bad_input));
  j.set("shed_unhealthy", static_cast<double>(shed_unhealthy));
  j.set("failed", static_cast<double>(failed));
  j.set("in_flight", static_cast<double>(in_flight));
  j.set("conserved", conserved());
  j.set("coalesced", static_cast<double>(coalesced));
  j.set("batches", static_cast<double>(batches));
  j.set("isolation_fallbacks", static_cast<double>(isolation_fallbacks));
  j.set("watchdog_stalls", static_cast<double>(watchdog_stalls));
  j.set("queue_high_water", static_cast<double>(queue_high_water));
  j.set("mean_batch_size", mean_batch_size);
  Json hist = Json::array();
  for (uint64_t v : batch_size_hist) hist.push(static_cast<double>(v));
  j.set("batch_size_hist", std::move(hist));
  Json model_health = Json::array();
  for (const ModelHealthSnapshot& s : models) {
    model_health.push(s.to_json_value());
  }
  j.set("models", std::move(model_health));
  j.set("elapsed_s", elapsed_s);
  j.set("throughput_rps", throughput_rps);
  Json lat = Json::object();
  lat.set("count", static_cast<double>(latency.count));
  lat.set("mean_s", latency.mean_s);
  lat.set("p50_s", latency.p50_s);
  lat.set("p95_s", latency.p95_s);
  lat.set("p99_s", latency.p99_s);
  lat.set("max_s", latency.max_s);
  j.set("latency", std::move(lat));
  return j;
}

ServingRuntime::ServingRuntime(RunSpec spec, ServerConfig cfg)
    : spec_(std::move(spec)), cfg_(std::move(cfg)) {
  if (cfg_.workers < 1) cfg_.workers = 1;
  if (cfg_.queue_capacity < 1) cfg_.queue_capacity = 1;
  if (cfg_.max_batch < 1) cfg_.max_batch = 1;
  if (cfg_.max_models < 1) cfg_.max_models = 1;
  clock_ = cfg_.clock != nullptr ? cfg_.clock : &real_clock();
  // Chaos hooks are compiled in always: an explicitly configured plan wins,
  // else MPIPU_FAULT, else a null plan (every hook a no-op).
  faults_ = cfg_.faults != nullptr ? cfg_.faults : FaultPlan::from_env();
  counters_.batch_size_hist.assign(static_cast<size_t>(cfg_.max_batch) + 1, 0);
  start_t_ = clock_->now();
  workers_.reserve(static_cast<size_t>(cfg_.workers));
  for (int w = 0; w < cfg_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ServingRuntime::~ServingRuntime() { shutdown(Shutdown::kDrain); }

ModelHealth& ServingRuntime::health_entry(ModelHandle h) {
  auto it = health_.find(h);
  if (it == health_.end()) {
    it = health_.emplace(h, ModelHealth{CircuitBreaker(cfg_.breaker)}).first;
  }
  return it->second;
}

template <typename ModelT>
ModelHandle ServingRuntime::load_impl(const ModelT& model, int input_h,
                                      int input_w) {
  ModelHandle handle;
  std::string name;
  {
    MutexLock lock(models_mu_);
    for (size_t i = 0; i < models_.size(); ++i) {
      const LoadedModel& m = models_[i];
      if (m.compiled->input_h() == input_h &&
          m.compiled->input_w() == input_w && m.compiled->matches(model)) {
        // LRU refresh: a re-loaded model moves to the back (eviction takes
        // the front).
        if (i + 1 != models_.size()) {
          std::rotate(models_.begin() + static_cast<ptrdiff_t>(i),
                      models_.begin() + static_cast<ptrdiff_t>(i) + 1,
                      models_.end());
        }
        return models_.back().handle;
      }
    }
    CompileOptions opts;
    opts.input_h = input_h;
    opts.input_w = input_w;
    // Compile before evicting: a throwing compile must not cost a cached
    // plan.
    auto compiled = std::make_shared<const CompiledModel>(
        CompiledModel::compile(model, spec_, opts));
    if (models_.size() >= cfg_.max_models) {
      models_.erase(models_.begin());
    }
    name = compiled->model_name();
    models_.push_back({next_handle_++, std::move(compiled)});
    handle = models_.back().handle;
  }
  // Health is born with the model (so metrics list it before any traffic)
  // and deliberately survives eviction: breaker history is diagnosis data.
  {
    MutexLock lock(health_mu_);
    health_entry(handle);
    model_names_[handle] = std::move(name);
  }
  return handle;
}

ModelHandle ServingRuntime::load(const Model& model, int input_h,
                                 int input_w) {
  return load_impl(model, input_h, input_w);
}

ModelHandle ServingRuntime::load(const GraphModel& model, int input_h,
                                 int input_w) {
  return load_impl(model, input_h, input_w);
}

std::shared_ptr<const CompiledModel> ServingRuntime::model(
    ModelHandle h) const {
  MutexLock lock(models_mu_);
  for (const LoadedModel& m : models_) {
    if (m.handle == h) return m.compiled;
  }
  // lint:allow-throw -- caller bug (bad handle), documented API contract
  throw std::out_of_range("ServingRuntime::model: unknown or evicted handle " +
                          std::to_string(h));
}

size_t ServingRuntime::loaded_count() const {
  MutexLock lock(models_mu_);
  return models_.size();
}

std::future<ServeResult> ServingRuntime::submit(ModelHandle h, Tensor input,
                                                const SubmitOptions& opts) {
  Pending p;
  p.model = model(h);  // throws out_of_range for a bad handle (caller bug)
  p.handle = h;
  p.input = std::move(input);
  p.enqueue_t = clock_->now();
  if (opts.timeout_s < std::numeric_limits<double>::infinity()) {
    p.deadline = p.enqueue_t + opts.timeout_s;
  }
  std::future<ServeResult> fut = p.promise.get_future();

  // Admission chain: bad input -> breaker -> queue.  Each stage sheds a
  // typed value; nothing on this path throws.
  RejectReason reject = RejectReason::kNone;
  std::string error;
  if (cfg_.validate_at_admission) {
    error = p.model->input_geometry_mismatch(p.input);
    if (!error.empty()) reject = RejectReason::kBadInput;
  }
  if (reject == RejectReason::kNone && cfg_.breaker.failure_threshold > 0) {
    MutexLock lock(health_mu_);
    ModelHealth& hh = health_entry(h);
    switch (hh.breaker.admit(p.enqueue_t)) {
      case AdmitDecision::kShed:
        reject = RejectReason::kUnhealthy;
        ++hh.shed_unhealthy;
        break;
      case AdmitDecision::kProbe:
        p.probe = true;
        break;
      case AdmitDecision::kAdmit:
        break;
    }
  }
  // Read before p can be moved into the queue: the rejection paths below
  // must not touch p's members once std::move(p) is a possibility on ANY
  // branch (bugprone-use-after-move).
  const bool probe = p.probe;
  const double enqueue_t = p.enqueue_t;
  if (reject == RejectReason::kNone) {
    MutexLock lock(mu_);
    if (stopping_) {
      reject = RejectReason::kShutdown;
    } else if (queue_.size() >= cfg_.queue_capacity) {
      reject = RejectReason::kQueueFull;
    } else if (cfg_.per_model_queue_cap > 0) {
      size_t queued = 0;
      for (const Pending& q : queue_) {
        if (q.handle == h) ++queued;
      }
      if (queued >= cfg_.per_model_queue_cap) {
        reject = RejectReason::kQueueFull;
      }
    }
    if (reject == RejectReason::kNone) {
      queue_.push_back(std::move(p));
      queue_high_water_ = std::max(queue_high_water_, queue_.size());
    }
  }
  if (reject != RejectReason::kNone &&
      (probe || reject == RejectReason::kBadInput)) {
    MutexLock lock(health_mu_);
    ModelHealth& hh = health_entry(h);
    // A probe that never reached the queue returns its slot so the next
    // submission can probe instead.
    if (probe) hh.breaker.release_probe();
    if (reject == RejectReason::kBadInput) ++hh.bad_inputs;
  }
  {
    // submitted and its outcome move under ONE lock acquisition, so the
    // conservation invariant holds at every instant, not just at rest.
    MutexLock lock(metrics_mu_);
    ++counters_.submitted;
    switch (reject) {
      case RejectReason::kNone: ++counters_.in_flight; break;
      case RejectReason::kQueueFull: ++counters_.shed_queue_full; break;
      case RejectReason::kShutdown: ++counters_.shed_shutdown; break;
      case RejectReason::kBadInput: ++counters_.shed_bad_input; break;
      case RejectReason::kUnhealthy: ++counters_.shed_unhealthy; break;
      case RejectReason::kDeadline:
      case RejectReason::kExecError:
        break;  // never decided at admission
    }
  }
  if (reject == RejectReason::kNone) {
    queue_cv_.notify_one();
  } else {
    ServeResult r;
    r.rejected = reject;
    r.error = std::move(error);
    r.total_s = clock_->now() - enqueue_t;
    p.promise.set_value(std::move(r));
  }
  return fut;
}

ServeResult ServingRuntime::serve(ModelHandle h, Tensor input,
                                  const SubmitOptions& opts) {
  return submit(h, std::move(input), opts).get();
}

void ServingRuntime::resolve_in_flight_rejected(Pending&& p,
                                                RejectReason reason) {
  if (p.probe) {
    MutexLock lock(health_mu_);
    health_entry(p.handle).breaker.release_probe();
  }
  {
    MutexLock lock(metrics_mu_);
    --counters_.in_flight;
    switch (reason) {
      case RejectReason::kDeadline: ++counters_.shed_deadline; break;
      case RejectReason::kShutdown: ++counters_.shed_shutdown; break;
      default: break;  // exec outcomes are accounted in execute_batch
    }
  }
  ServeResult r;
  r.rejected = reason;
  r.total_s = clock_->now() - p.enqueue_t;
  p.promise.set_value(std::move(r));
}

void ServingRuntime::maybe_inject_fault() {
  if (faults_ == nullptr) return;
  const FaultDecision d = faults_->next_attempt();
  switch (d.kind) {
    case FaultDecision::Kind::kNone:
      return;
    case FaultDecision::Kind::kDelay:
      clock_->sleep_for(d.delay_s);
      return;
    case FaultDecision::Kind::kThrow:
      // lint:allow-throw -- injected chaos: takes the same catch path as a real fault
      throw InjectedFault("injected execution fault (FaultPlan seed " +
                          std::to_string(faults_->config().seed) + ")");
  }
}

void ServingRuntime::record_outcome(ModelHealth& health,
                                    const SlotOutcome& outcome, bool probe,
                                    double now) {
  switch (outcome.reason) {
    case RejectReason::kNone:
      health.breaker.on_success(now);
      break;
    case RejectReason::kExecError:
      ++health.exec_failures;
      health.breaker.on_failure(now);
      break;
    case RejectReason::kBadInput:
      // The client's fault, not the model's: the breaker learns nothing,
      // but a probe slot spent on it frees up for a real probe.
      ++health.bad_inputs;
      if (probe) health.breaker.release_probe();
      break;
    default:
      break;
  }
}

void ServingRuntime::gather_same_model(std::vector<Pending>& batch) {
  const ModelHandle h = batch.front().handle;
  for (auto it = queue_.begin();
       it != queue_.end() &&
       static_cast<int>(batch.size()) < cfg_.max_batch;) {
    if (it->handle == h) {
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void ServingRuntime::worker_loop() {
  // Long-lived per-worker execution pool: requests never pay per-call
  // thread spawn.  spec_.threads == 1 (the serving default) keeps it
  // threadless.
  ThreadPool pool(spec_.threads);
  std::vector<Pending> batch;
  for (;;) {
    batch.clear();
    {
      UniqueLock lock(mu_);
      queue_cv_.wait(lock, [&]() MPIPU_REQUIRES(mu_) {
        return stopping_ || !queue_.empty();
      });
      if (queue_.empty()) {
        if (stopping_) return;  // drained (or aborted): done
        continue;
      }
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      gather_same_model(batch);
      if (static_cast<int>(batch.size()) < cfg_.max_batch &&
          cfg_.batch_window_s > 0.0 && !stopping_) {
        // Linger for more same-model arrivals.  Draining skips the window
        // (stopping_ breaks the loop), and every wake re-gathers whatever
        // arrived.
        const auto window_end =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(cfg_.batch_window_s));
        while (static_cast<int>(batch.size()) < cfg_.max_batch &&
               !stopping_) {
          if (queue_cv_.wait_until(lock, window_end) ==
              std::cv_status::timeout) {
            gather_same_model(batch);
            break;
          }
          gather_same_model(batch);
        }
      }
    }
    execute_batch(batch, pool);
  }
}

void ServingRuntime::execute_batch(std::vector<Pending>& batch,
                                   ThreadPool& pool) {
  // Injected window stall: the leader hangs before dispatch, exactly like
  // a genuinely stuck batch -- queued deadlines keep expiring behind it.
  if (faults_ != nullptr) {
    const double stall = faults_->window_stall_s();
    if (stall > 0.0) clock_->sleep_for(stall);
  }
  const double dispatch_t = clock_->now();

  // Dispatch-time deadline shedding: expired requests never execute.
  std::vector<Pending> live;
  live.reserve(batch.size());
  for (Pending& p : batch) {
    if (dispatch_t > p.deadline) {
      resolve_in_flight_rejected(std::move(p), RejectReason::kDeadline);
    } else {
      live.push_back(std::move(p));
    }
  }
  if (live.empty()) return;

  // Coalesce byte-identical inputs: every request maps to a slot in the
  // unique-input list; duplicates reuse the first twin's execution.  Exact
  // double equality on the raw data -- the same predicate the reference
  // cache uses -- and execution is deterministic, so fan-out is exact.
  std::vector<Tensor> inputs;
  std::vector<size_t> slot_of(live.size());
  if (cfg_.coalesce_identical) {
    for (size_t i = 0; i < live.size(); ++i) {
      size_t s = 0;
      while (s < inputs.size() && inputs[s].data != live[i].input.data) ++s;
      if (s == inputs.size()) inputs.push_back(live[i].input);
      slot_of[i] = s;
    }
  } else {
    inputs.reserve(live.size());
    for (size_t i = 0; i < live.size(); ++i) {
      inputs.push_back(live[i].input);
      slot_of[i] = i;
    }
  }

  const ModelHandle handle = live.front().handle;
  const CompiledModel& model = *live.front().model;

  // Watchdog registration: metrics() can see this dispatch as currently
  // stalled while it runs.
  uint64_t exec_id;
  {
    MutexLock lock(health_mu_);
    exec_id = next_exec_id_++;
    active_execs_.push_back({exec_id, handle, dispatch_t});
  }

  // One run_batch call for the whole window, on this worker's long-lived
  // pool.  If ANYTHING throws out of it -- one bad input (admission
  // validation off), an injected fault, a real execution failure -- the
  // batch falls back to per-request execution so the failure is isolated:
  // batchmates complete ok(), only the faulting request resolves with a
  // typed error.  The worker itself never dies.
  std::vector<SlotOutcome> outcomes(inputs.size());
  BatchRunReport reports;
  bool fell_back = false;
  try {
    maybe_inject_fault();
    reports = model.run_batch(inputs, cfg_.run_options, pool);
  } catch (...) {
    fell_back = true;
    reports.runs.clear();
    reports.runs.resize(inputs.size());
    for (size_t s = 0; s < inputs.size(); ++s) {
      try {
        maybe_inject_fault();
        reports.runs[s] = model.run(inputs[s], cfg_.run_options, pool);
      } catch (const std::invalid_argument& e) {
        outcomes[s] = {RejectReason::kBadInput, e.what()};
      } catch (const std::exception& e) {
        outcomes[s] = {RejectReason::kExecError, e.what()};
      } catch (...) {
        outcomes[s] = {RejectReason::kExecError, "unknown execution failure"};
      }
    }
  }
  const double done_t = clock_->now();
  const double exec_s = done_t - dispatch_t;
  const bool stalled = cfg_.stall_budget_s > 0.0 && exec_s > cfg_.stall_budget_s;

  // First twin of each slot executed; later twins are coalesced fan-outs.
  std::vector<bool> was_coalesced(live.size(), false);
  {
    std::vector<bool> slot_used(inputs.size(), false);
    for (size_t i = 0; i < live.size(); ++i) {
      was_coalesced[i] = slot_used[slot_of[i]];
      slot_used[slot_of[i]] = true;
    }
  }

  uint64_t n_ok = 0, n_exec_err = 0, n_bad = 0, coalesced_ok = 0;
  for (size_t i = 0; i < live.size(); ++i) {
    switch (outcomes[slot_of[i]].reason) {
      case RejectReason::kNone:
        ++n_ok;
        if (was_coalesced[i]) ++coalesced_ok;
        break;
      case RejectReason::kExecError: ++n_exec_err; break;
      case RejectReason::kBadInput: ++n_bad; break;
      default: break;
    }
  }

  // Health bookkeeping: watchdog + breaker, one lock acquisition.
  {
    MutexLock lock(health_mu_);
    for (size_t i = 0; i < active_execs_.size(); ++i) {
      if (active_execs_[i].id == exec_id) {
        active_execs_.erase(active_execs_.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
    ModelHealth& hh = health_entry(handle);
    if (stalled) ++hh.stall_events;
    if (exec_s > hh.longest_exec_s) hh.longest_exec_s = exec_s;
    for (size_t i = 0; i < live.size(); ++i) {
      record_outcome(hh, outcomes[slot_of[i]], live[i].probe, done_t);
    }
  }

  // Metrics BEFORE promises: a client whose future just resolved must see
  // its own completion in the very next metrics() snapshot.
  {
    MutexLock lock(metrics_mu_);
    counters_.in_flight -= live.size();
    counters_.completed += n_ok;
    counters_.failed += n_exec_err;
    counters_.shed_bad_input += n_bad;
    counters_.coalesced += coalesced_ok;
    ++counters_.batches;
    if (fell_back) ++counters_.isolation_fallbacks;
    if (stalled) ++counters_.watchdog_stalls;
    const size_t b = std::min(live.size(),
                              counters_.batch_size_hist.size() - 1);
    ++counters_.batch_size_hist[b];
    for (size_t i = 0; i < live.size(); ++i) {
      if (outcomes[slot_of[i]].reason == RejectReason::kNone &&
          latencies_.size() < kMaxLatencySamples) {
        latencies_.push_back(done_t - live[i].enqueue_t);
      }
    }
  }

  for (size_t i = 0; i < live.size(); ++i) {
    Pending& p = live[i];
    const SlotOutcome& oc = outcomes[slot_of[i]];
    ServeResult r;
    r.queue_wait_s = dispatch_t - p.enqueue_t;
    r.total_s = done_t - p.enqueue_t;
    if (oc.reason == RejectReason::kNone) {
      r.rejected = RejectReason::kNone;
      r.batch_size = static_cast<int>(live.size());
      r.coalesced = was_coalesced[i];
      // The last twin of each slot may move the report; earlier ones copy.
      const bool last_use =
          [&] {
            for (size_t j = i + 1; j < live.size(); ++j) {
              if (slot_of[j] == slot_of[i]) return false;
            }
            return true;
          }();
      if (last_use) {
        r.report = std::move(reports.runs[slot_of[i]]);
      } else {
        r.report = reports.runs[slot_of[i]];
      }
    } else {
      r.rejected = oc.reason;
      r.error = oc.error;
    }
    p.promise.set_value(std::move(r));
  }
}

void ServingRuntime::shutdown(Shutdown mode) {
  MutexLock shutdown_lock(shutdown_mu_);
  std::vector<Pending> dropped;
  {
    MutexLock lock(mu_);
    stopping_ = true;
    if (mode == Shutdown::kAbort) {
      while (!queue_.empty()) {
        dropped.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
  }
  queue_cv_.notify_all();
  for (Pending& p : dropped) {
    resolve_in_flight_rejected(std::move(p), RejectReason::kShutdown);
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

ServerMetrics ServingRuntime::metrics() const {
  ServerMetrics m;
  std::vector<double> lats;
  {
    MutexLock lock(metrics_mu_);
    m = counters_;
    lats = latencies_;
  }
  {
    MutexLock lock(mu_);
    m.queue_high_water = queue_high_water_;
  }
  const double now = clock_->now();
  {
    MutexLock lock(health_mu_);
    for (const auto& [handle, hh] : health_) {
      ModelHealthSnapshot s;
      s.handle = handle;
      const auto name_it = model_names_.find(handle);
      if (name_it != model_names_.end()) s.model = name_it->second;
      s.state = hh.breaker.state();
      s.consecutive_failures = hh.breaker.consecutive_failures();
      s.times_opened = hh.breaker.times_opened();
      s.cooldown_remaining_s = hh.breaker.cooldown_remaining(now);
      s.exec_failures = hh.exec_failures;
      s.bad_inputs = hh.bad_inputs;
      s.shed_unhealthy = hh.shed_unhealthy;
      s.stall_events = hh.stall_events;
      s.longest_exec_s = hh.longest_exec_s;
      if (cfg_.stall_budget_s > 0.0) {
        for (const ActiveExec& e : active_execs_) {
          if (e.handle == handle && now - e.start_t > cfg_.stall_budget_s) {
            s.currently_stalled = true;
            break;
          }
        }
      }
      m.models.push_back(std::move(s));
    }
  }
  m.latency = summarize_latencies(std::move(lats));
  m.elapsed_s = now - start_t_;
  m.throughput_rps =
      m.elapsed_s > 0.0 ? static_cast<double>(m.completed) / m.elapsed_s : 0.0;
  m.mean_batch_size =
      m.batches > 0
          ? static_cast<double>(m.completed) / static_cast<double>(m.batches)
          : 0.0;
  return m;
}

}  // namespace mpipu::serve
