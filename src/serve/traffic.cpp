#include "serve/traffic.h"

#include <cmath>
#include <stdexcept>

namespace mpipu::serve {

namespace {

/// Exponential gap with mean 1/rate; infinite-rate guard for rate <= 0
/// callers is handled by the callers (they never pass 0 for an active
/// state's arrivals).
double exp_gap(Rng& rng, double rate) {
  // Inverse CDF on a (0, 1] uniform: -log(u)/rate.  uniform() returns
  // [lo, hi), so flip to (0, 1] by subtracting from 1.
  return -std::log(1.0 - rng.uniform(0.0, 1.0)) / rate;
}

}  // namespace

std::vector<double> poisson_arrivals(Rng& rng, double rate_rps, int count) {
  if (rate_rps <= 0.0) {
    // lint:allow-throw -- test/bench traffic synthesis, not the request path
    throw std::invalid_argument("poisson_arrivals: rate must be positive");
  }
  std::vector<double> t(static_cast<size_t>(count > 0 ? count : 0));
  double clock = 0.0;
  for (auto& v : t) {
    clock += exp_gap(rng, rate_rps);
    v = clock;
  }
  return t;
}

std::vector<double> bursty_arrivals(Rng& rng, const BurstyConfig& cfg,
                                    int count) {
  if (cfg.burst_rate_rps <= 0.0 || cfg.idle_rate_rps < 0.0 ||
      cfg.mean_burst_s <= 0.0 || cfg.mean_idle_s <= 0.0) {
    // lint:allow-throw -- test/bench traffic synthesis, not the request path
    throw std::invalid_argument(
        "bursty_arrivals: burst rate and mean dwell times must be positive, "
        "idle rate non-negative");
  }
  std::vector<double> t;
  t.reserve(static_cast<size_t>(count > 0 ? count : 0));
  double clock = 0.0;
  bool bursting = true;  // streams open in a burst, so t[0] is near 0
  double state_end = exp_gap(rng, 1.0 / cfg.mean_burst_s);
  while (static_cast<int>(t.size()) < count) {
    const double rate = bursting ? cfg.burst_rate_rps : cfg.idle_rate_rps;
    // Within the idle state at rate 0 no arrival ever lands: skip straight
    // to the state boundary.
    const double next = rate > 0.0 ? clock + exp_gap(rng, rate)
                                   : state_end;
    if (next < state_end) {
      clock = next;
      t.push_back(clock);
    } else {
      clock = state_end;
      bursting = !bursting;
      state_end = clock + exp_gap(rng, 1.0 / (bursting ? cfg.mean_burst_s
                                                       : cfg.mean_idle_s));
    }
  }
  return t;
}

double bursty_mean_rate(const BurstyConfig& cfg) {
  const double cycle = cfg.mean_burst_s + cfg.mean_idle_s;
  return (cfg.burst_rate_rps * cfg.mean_burst_s +
          cfg.idle_rate_rps * cfg.mean_idle_s) /
         cycle;
}

std::vector<int> zipf_indices(Rng& rng, double s, int catalog_size,
                              int count) {
  if (catalog_size <= 0) {
    // lint:allow-throw -- test/bench traffic synthesis, not the request path
    throw std::invalid_argument("zipf_indices: catalog must be non-empty");
  }
  // CDF table once, then inverse-CDF sampling by binary search.
  std::vector<double> cdf(static_cast<size_t>(catalog_size));
  double norm = 0.0;
  for (int i = 0; i < catalog_size; ++i) {
    norm += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf[static_cast<size_t>(i)] = norm;
  }
  std::vector<int> out(static_cast<size_t>(count > 0 ? count : 0));
  for (auto& v : out) {
    const double u = rng.uniform(0.0, norm);
    int lo = 0, hi = catalog_size - 1;
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      if (cdf[static_cast<size_t>(mid)] <= u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    v = lo;
  }
  return out;
}

}  // namespace mpipu::serve
