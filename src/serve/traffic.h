// Open-loop traffic synthesis for the serving runtime benches and tests.
//
// A closed-loop client (issue, wait, issue) can never overload a server --
// its arrival rate adapts to the service rate, so queueing, batching and
// shedding are invisible to it.  Open-loop traffic fixes an arrival
// schedule UP FRONT (requests arrive whether or not the server keeps up),
// which is what exposes the saturation behavior this PR's runtime exists
// for.  Everything here is deterministic from a seed (common/rng.h), like
// every other workload synthesizer in the repo.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace mpipu::serve {

/// Poisson process at `rate_rps`: `count` arrival offsets (seconds from
/// stream start, ascending) with i.i.d. exponential inter-arrival gaps.
/// The memoryless baseline of every serving study.
std::vector<double> poisson_arrivals(Rng& rng, double rate_rps, int count);

/// Two-state modulated Poisson process (burst / idle), the classic bursty
/// approximation of production traffic: dwell times in each state are
/// exponential with the given means, arrivals within a state are Poisson at
/// that state's rate.  `idle_rate_rps` may be 0 (strict on/off traffic).
struct BurstyConfig {
  double burst_rate_rps = 100.0;
  double idle_rate_rps = 0.0;
  double mean_burst_s = 0.1;
  double mean_idle_s = 0.4;
};
std::vector<double> bursty_arrivals(Rng& rng, const BurstyConfig& cfg,
                                    int count);

/// Long-run mean arrival rate of a bursty config (for sizing offered load).
double bursty_mean_rate(const BurstyConfig& cfg);

/// Zipf-distributed catalog indices in [0, catalog_size): P(i) proportional
/// to 1/(i+1)^s.  Models the hot-key skew of real request streams (a few
/// inputs dominate) -- the regime where the runtime's dispatch-time
/// coalescing of identical requests pays off.  s = 0 degenerates to
/// uniform.
std::vector<int> zipf_indices(Rng& rng, double s, int catalog_size,
                              int count);

}  // namespace mpipu::serve
