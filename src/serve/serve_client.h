// ServeClient: the retry policy callers should wrap around submit().
//
// The runtime sheds overload as typed values (kQueueFull, kUnhealthy,
// kExecError...) precisely so a client can react per reason instead of
// catching exceptions blindly.  This is that client:
//
//   * bounded retries with exponential backoff + deterministic jitter --
//     a shed request waits initial_backoff_s * multiplier^attempt (capped),
//     scaled by a seeded jitter draw so a thundering herd of clients
//     de-synchronizes reproducibly;
//   * per-reason retry gates: queue-full / unhealthy / exec-error are
//     transient (retry by default); bad-input is deterministic and
//     deadline means the budget is already spent (never retried by
//     default);
//   * optional hedging: if the primary future has not resolved within
//     hedge_after_s, submit a duplicate and take whichever completes ok
//     first.  Against this runtime hedging is unusually cheap: if both
//     copies land in one batch window, dispatch-time coalescing executes
//     them ONCE.
//
// All waiting flows through the runtime's Clock, so backoff schedules are
// testable under a ManualClock (virtual seconds, zero wall time).  The
// client is thread-compatible: use one instance per calling thread, or
// external synchronization (stats are the only shared mutable state and
// are internally locked).
#pragma once

#include <cstdint>

#include "common/annotated_mutex.h"
#include "common/rng.h"
#include "serve/serving_runtime.h"

namespace mpipu::serve {

struct RetryPolicy {
  /// Total tries including the first (1 = no retries).
  int max_attempts = 3;
  double initial_backoff_s = 0.01;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 1.0;
  /// Jitter fraction in [0, 1]: each backoff is scaled by a uniform draw
  /// from [1 - jitter, 1].  0 = deterministic full backoff.
  double jitter = 0.5;
  /// Which typed rejections are worth another attempt.
  bool retry_queue_full = true;
  bool retry_unhealthy = true;
  bool retry_exec_error = true;
  bool retry_deadline = false;  ///< the request's own budget is spent
  /// Hedging: duplicate the request if the primary has not resolved within
  /// this much REAL time (infinity = off).  Only worth enabling with
  /// coalescing on -- twins in one window execute once.
  double hedge_after_s = std::numeric_limits<double>::infinity();
};

struct ClientStats {
  uint64_t calls = 0;     ///< call() invocations
  uint64_t attempts = 0;  ///< submissions, including hedges
  uint64_t retries = 0;   ///< attempts after a retryable rejection
  uint64_t hedges = 0;    ///< duplicate submissions issued
  uint64_t hedge_wins = 0;  ///< calls where the hedge resolved ok first
  uint64_t gave_up = 0;   ///< calls returning a rejection after max_attempts
};

class ServeClient {
 public:
  /// `clock` defaults to the runtime's clock (backoff sleeps advance a
  /// ManualClock instantly in tests).
  ServeClient(ServingRuntime& runtime, RetryPolicy policy,
              uint64_t jitter_seed = 1, Clock* clock = nullptr);

  /// Submit with retries/backoff/hedging until ok(), a non-retryable
  /// rejection, or max_attempts.  Returns the LAST attempt's result.
  /// Throws std::out_of_range only for a bad handle (caller bug).
  [[nodiscard]] ServeResult call(ModelHandle h, const Tensor& input,
                                 const SubmitOptions& opts = {});

  /// True when `policy` retries rejection `r`.
  static bool retryable(const RetryPolicy& policy, RejectReason r);
  /// The backoff before retry number `retry` (0-based), jitter applied --
  /// exposed so tests can pin the schedule.
  double backoff_s(int retry);

  ClientStats stats() const;
  const RetryPolicy& policy() const { return policy_; }

 private:
  ServingRuntime& runtime_;
  RetryPolicy policy_;
  Clock* clock_;
  Rng jitter_rng_;
  mutable Mutex stats_mu_;
  ClientStats stats_ MPIPU_GUARDED_BY(stats_mu_);
};

}  // namespace mpipu::serve
