// ServingRuntime: the serving layer above CompiledModel -- the piece every
// caller has hand-rolled since the compile/run split (PR 4).
//
//   submit(handle, input) ──> bounded MPMC queue ──> batching window ──>
//        N async workers ──> CompiledModel::run_batch ──> future<ServeResult>
//
// The runtime owns:
//   * a Session-style LRU plan cache: load() compiles a model once (exact
//     content match dedups repeat loads) and hands back a ModelHandle;
//     requests carry the handle, so the hot path never touches weight
//     bytes;
//   * a bounded MPMC request queue with typed overload shedding: a full
//     queue (global or per-model admission cap) resolves the future
//     IMMEDIATELY with Rejected{kQueueFull} -- the hot path never throws;
//   * admission-time input validation: submit() checks the request tensor
//     against the compiled geometry and resolves Rejected{kBadInput} on
//     the spot, so a malformed request can never reach (let alone poison)
//     a batch.  If a bad input does surface at execution anyway
//     (validate_at_admission = false, or a genuine execution fault), the
//     failure is ISOLATED: the batch re-executes per request, batchmates
//     complete ok(), and only the faulting request resolves with a typed
//     error;
//   * a dynamic batching window per worker: the worker takes the oldest
//     request as batch leader, gathers queued same-model requests up to
//     `max_batch`, and optionally lingers `batch_window_s` for more before
//     executing everything as ONE CompiledModel::run_batch call on the
//     worker's long-lived pool.  Requests whose deadline passed by
//     dispatch time are shed as Rejected{kDeadline} without executing;
//   * dispatch-time coalescing: byte-identical same-model inputs inside a
//     batch execute ONCE and fan the (deterministic, hence exact) report
//     out to every twin;
//   * per-model health: a consecutive-failure circuit breaker (serve/
//     health.h) sheds Rejected{kUnhealthy} in microseconds while a model
//     keeps failing, half-open probes restore service after the cooldown;
//     a watchdog counts dispatches whose execution blew the stall budget.
//     Both are visible in ServerMetrics (and its JSON);
//   * deterministic fault injection (serve/fault.h): a seeded FaultPlan --
//     configured or via MPIPU_FAULT -- can throw inside execution, delay a
//     worker, or stall the batch window.  Compiled in always, no-op when
//     absent; injected failures take the SAME paths as real ones;
//   * graceful shutdown: kDrain completes every accepted request first,
//     kAbort finishes only in-flight batches and resolves everything still
//     queued as Rejected{kShutdown}.
//
// CONTRACT: every future resolves exactly once with a TYPED outcome --
// futures never carry exceptions, whatever faults fire.  The metrics
// conserve at every instant:
//
//   submitted == completed + shed_queue_full + shed_deadline
//              + shed_shutdown + shed_bad_input + shed_unhealthy
//              + failed + in_flight
//
// (ServerMetrics::conserved()).  All time flows through common/clock.h, so
// deadline/cooldown/backoff behavior is deterministic under a ManualClock.
//
// Batched execution is byte-identical to one-at-a-time CompiledModel::run
// (outputs, per-layer stats, cycles): run_batch runs each input through the
// same deterministic executor, and coalescing only ever reuses the report
// of an identical input.  tests/test_serving_runtime.cpp pins the serving
// semantics; tests/test_serve_chaos.cpp pins the fault-tolerance contract
// under randomized fault schedules.
#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/compiled_model.h"
#include "api/json.h"
#include "common/annotated_mutex.h"
#include "common/clock.h"
#include "common/percentile.h"
#include "serve/fault.h"
#include "serve/health.h"

namespace mpipu::serve {

/// Why a request did not produce a report.  ALL failure outcomes are
/// VALUES, not exceptions: the hot path resolves the future with one of
/// these and keeps serving.
enum class RejectReason {
  kNone,       ///< not rejected: the report is valid
  kQueueFull,  ///< shed at admission (global queue or per-model cap full)
  kDeadline,   ///< deadline had passed when a worker reached the request
  kShutdown,   ///< runtime stopping: submitted after shutdown, or queued at
               ///< shutdown(kAbort)
  kBadInput,   ///< request tensor does not match the compiled geometry
               ///< (shed at admission, or isolated at execution)
  kUnhealthy,  ///< circuit breaker open for the model: failing fast
  kExecError,  ///< this request's execution failed (transient or injected
               ///< fault); batchmates were isolated and completed
};
const char* reject_reason_name(RejectReason r);

struct ServerConfig {
  /// Async worker threads consuming the queue.  Each owns a long-lived
  /// execution pool of RunSpec::threads workers.
  int workers = 1;
  /// Bounded queue capacity; submissions beyond it shed kQueueFull.
  size_t queue_capacity = 64;
  /// Per-model admission cap on QUEUED requests (0 = no cap): one model
  /// saturating the service cannot starve the others out of the queue.
  size_t per_model_queue_cap = 0;
  /// Dynamic batching: a worker coalesces up to this many queued
  /// same-model requests into one run_batch call.
  int max_batch = 8;
  /// How long the batch leader lingers for more same-model arrivals when
  /// the queue alone does not fill the batch.  0 = never wait (batch only
  /// what is already queued).  Ignored while draining.
  double batch_window_s = 0.0;
  /// LRU capacity of the plan cache behind load().  Loading past it evicts
  /// the least-recently-used plan (in-flight requests keep it alive; its
  /// handle becomes invalid for new submissions).
  size_t max_models = 8;
  /// Execute byte-identical same-model inputs in a batch once, fanning the
  /// report out (exact: execution is deterministic).
  bool coalesce_identical = true;
  /// Check request geometry against the compiled plan at submit() --
  /// Rejected{kBadInput} immediately, nothing bad ever queues.  Off, a bad
  /// input surfaces at execution and exercises the per-request isolation
  /// path instead (the regression tests do exactly that).
  bool validate_at_admission = true;
  /// Per-model circuit breaker (failure_threshold = 0 disables).
  CircuitBreakerConfig breaker;
  /// Watchdog: a dispatch whose EXECUTION takes longer than this is
  /// counted as a stall (metrics: watchdog_stalls, per-model
  /// stall_events / currently_stalled).  0 disables.
  double stall_budget_s = 0.0;
  /// Fault injection plan; nullptr falls back to MPIPU_FAULT (and to a
  /// no-op when that is unset).
  std::shared_ptr<FaultPlan> faults;
  /// Time source; nullptr = the real steady clock.  Tests install a
  /// ManualClock to elapse deadlines and breaker cooldowns instantly.
  Clock* clock = nullptr;
  /// Options every request executes with.  Serving defaults: no FP32
  /// shadow chain, no cycle-sim estimate.
  RunOptions run_options{.compare_reference = false, .with_estimate = false};
};

/// Stable identity of a loaded model.  Requests carry handles; weight bytes
/// are only ever touched inside load().
using ModelHandle = int;

struct SubmitOptions {
  /// Relative deadline (seconds from submission).  A request still queued
  /// when it expires is shed as kDeadline at dispatch time; a request
  /// already executing always completes.  Infinity = no deadline.
  double timeout_s = std::numeric_limits<double>::infinity();
};

/// [[nodiscard]]: a dropped ServeResult is a dropped typed failure -- the
/// whole point of the values-not-exceptions contract is that callers LOOK.
struct [[nodiscard]] ServeResult {
  RejectReason rejected = RejectReason::kShutdown;
  bool ok() const { return rejected == RejectReason::kNone; }
  /// kBadInput / kExecError: what went wrong (the exception text the
  /// execution path produced).  Empty for the overload sheds.
  std::string error;
  /// Valid when ok(): the same per-request RunReport a direct
  /// CompiledModel::run would have produced (byte-identical).
  RunReport report;
  /// Executed batch size (after deadline shedding), 0 when rejected.
  int batch_size = 0;
  /// True when this request was served by fanning out an identical
  /// in-batch twin's execution.
  bool coalesced = false;
  double queue_wait_s = 0.0;  ///< submission -> batch dispatch
  double total_s = 0.0;       ///< submission -> future resolution
};

/// Point-in-time metrics snapshot (ServingRuntime::metrics).
struct ServerMetrics {
  uint64_t submitted = 0;   ///< every submit() call, whatever its outcome
  uint64_t completed = 0;   ///< requests resolved with ok()
  uint64_t shed_queue_full = 0;
  uint64_t shed_deadline = 0;
  uint64_t shed_shutdown = 0;
  uint64_t shed_bad_input = 0;
  uint64_t shed_unhealthy = 0;
  uint64_t failed = 0;      ///< requests resolved kExecError
  uint64_t in_flight = 0;   ///< accepted (queued or executing), unresolved
  uint64_t coalesced = 0;   ///< completed requests served via an identical twin
  uint64_t batches = 0;     ///< run_batch dispatches
  uint64_t isolation_fallbacks = 0;  ///< batches re-executed per request
  uint64_t watchdog_stalls = 0;      ///< dispatches past the stall budget
  size_t queue_high_water = 0;  ///< deepest the queue has been
  /// batch_size_hist[b] = batches that executed exactly b requests
  /// (index 0 unused).
  std::vector<uint64_t> batch_size_hist;
  /// Per-loaded-model health: breaker state, failure counts, stalls.
  std::vector<ModelHealthSnapshot> models;
  LatencySummary latency;   ///< total_s of completed requests
  double elapsed_s = 0.0;   ///< since runtime construction
  double throughput_rps = 0.0;    ///< completed / elapsed
  double mean_batch_size = 0.0;   ///< completed / batches

  /// Every submission accounted for, exactly once: the invariant the chaos
  /// wall asserts on every snapshot.
  bool conserved() const {
    return submitted == completed + shed_queue_full + shed_deadline +
                            shed_shutdown + shed_bad_input + shed_unhealthy +
                            failed + in_flight;
  }

  Json to_json_value() const;
};

class ServingRuntime {
 public:
  enum class Shutdown {
    kDrain,  ///< stop admitting, complete every accepted request, stop
    kAbort,  ///< stop admitting, finish in-flight batches, shed the queue
  };

  /// Starts cfg.workers async workers immediately.  `spec` plays the same
  /// role as for Session: one spec drives every model this runtime serves.
  explicit ServingRuntime(RunSpec spec, ServerConfig cfg = {});
  ~ServingRuntime();  ///< shutdown(kDrain)

  ServingRuntime(const ServingRuntime&) = delete;
  ServingRuntime& operator=(const ServingRuntime&) = delete;

  /// Compile-once model registration.  Loading an exactly-matching model
  /// again (content + input geometry) returns the existing handle and
  /// refreshes its LRU recency.  Throws std::invalid_argument for anything
  /// CompiledModel::compile rejects -- load time is where exceptions
  /// belong, not the request path.
  ModelHandle load(const Model& model, int input_h, int input_w);
  ModelHandle load(const GraphModel& model, int input_h, int input_w);

  /// The compiled plan behind a handle (introspection / direct baseline
  /// runs).  Throws std::out_of_range for an unknown or evicted handle.
  std::shared_ptr<const CompiledModel> model(ModelHandle h) const;
  size_t loaded_count() const;

  /// Enqueue one request.  Never throws for overload, bad input, an
  /// unhealthy model or shutdown -- those resolve the returned future
  /// immediately with the typed rejection, and execution failures resolve
  /// it later as kExecError.  Throws std::out_of_range only for an
  /// unknown/evicted handle (a caller bug, not a load condition).
  [[nodiscard]] std::future<ServeResult> submit(ModelHandle h, Tensor input,
                                                const SubmitOptions& opts = {});

  /// Blocking convenience: submit + wait.
  ServeResult serve(ModelHandle h, Tensor input,
                    const SubmitOptions& opts = {});

  /// Idempotent; blocks until every worker has exited.  After shutdown all
  /// submissions resolve as Rejected{kShutdown}.
  void shutdown(Shutdown mode);

  ServerMetrics metrics() const;
  const ServerConfig& config() const { return cfg_; }
  const RunSpec& spec() const { return spec_; }
  Clock& clock() const { return *clock_; }

 private:
  struct Pending {
    /// Pinned at submit so LRU eviction can never pull a plan out from
    /// under a queued request.
    std::shared_ptr<const CompiledModel> model;
    ModelHandle handle = -1;
    Tensor input;
    double enqueue_t = 0.0;
    double deadline = std::numeric_limits<double>::infinity();
    bool probe = false;  ///< admitted as a half-open breaker probe
    std::promise<ServeResult> promise;
  };
  struct LoadedModel {
    ModelHandle handle = -1;
    std::shared_ptr<const CompiledModel> compiled;
  };
  /// How one unique (post-coalescing) input slot fared at execution.
  struct SlotOutcome {
    RejectReason reason = RejectReason::kNone;
    std::string error;
  };

  template <typename ModelT>
  ModelHandle load_impl(const ModelT& model, int input_h, int input_w);
  void worker_loop() MPIPU_EXCLUDES(mu_, health_mu_, metrics_mu_);
  /// Move queued same-handle requests into `batch` (FIFO order) up to
  /// max_batch.  Caller holds mu_.
  void gather_same_model(std::vector<Pending>& batch) MPIPU_REQUIRES(mu_);
  void execute_batch(std::vector<Pending>& batch, ThreadPool& pool)
      MPIPU_EXCLUDES(mu_, health_mu_, metrics_mu_);
  /// Resolve an accepted (in-flight) request with a non-exec rejection:
  /// returns its probe slot, decrements in_flight, counts the shed.
  void resolve_in_flight_rejected(Pending&& p, RejectReason reason)
      MPIPU_EXCLUDES(health_mu_, metrics_mu_);
  /// Consult the fault plan for one execution attempt: maybe delay the
  /// worker, maybe throw InjectedFault.
  void maybe_inject_fault();
  /// The health record behind a handle, created on demand with the
  /// configured breaker.  Caller holds health_mu_.
  ModelHealth& health_entry(ModelHandle h) MPIPU_REQUIRES(health_mu_);
  /// Record one request's execution outcome in its model's health (caller
  /// holds health_mu_).
  void record_outcome(ModelHealth& health, const SlotOutcome& outcome,
                      bool probe, double now) MPIPU_REQUIRES(health_mu_);

  RunSpec spec_;
  ServerConfig cfg_;
  Clock* clock_ = nullptr;
  std::shared_ptr<FaultPlan> faults_;  ///< may be null (no-op)
  double start_t_ = 0.0;

  /// Plan cache (guarded by models_mu_): LRU order, most recent at back.
  mutable Mutex models_mu_;
  std::vector<LoadedModel> models_ MPIPU_GUARDED_BY(models_mu_);
  ModelHandle next_handle_ MPIPU_GUARDED_BY(models_mu_) = 0;

  /// Request queue (guarded by mu_, signaled by queue_cv_).
  mutable Mutex mu_;
  CondVar queue_cv_;
  std::deque<Pending> queue_ MPIPU_GUARDED_BY(mu_);
  size_t queue_high_water_ MPIPU_GUARDED_BY(mu_) = 0;
  bool stopping_ MPIPU_GUARDED_BY(mu_) = false;

  /// Per-model health + the watchdog's active-execution table (guarded by
  /// health_mu_; never held together with another runtime mutex).
  struct ActiveExec {
    uint64_t id = 0;
    ModelHandle handle = -1;
    double start_t = 0.0;
  };
  mutable Mutex health_mu_;
  std::map<ModelHandle, ModelHealth> health_ MPIPU_GUARDED_BY(health_mu_);
  std::map<ModelHandle, std::string> model_names_
      MPIPU_GUARDED_BY(health_mu_);
  std::vector<ActiveExec> active_execs_ MPIPU_GUARDED_BY(health_mu_);
  uint64_t next_exec_id_ MPIPU_GUARDED_BY(health_mu_) = 0;

  /// Counters and the latency record (guarded by metrics_mu_; never held
  /// together with mu_).  Every submission is accounted under ONE lock
  /// acquisition -- submitted and its outcome (in_flight or a shed
  /// counter) move together, so conserved() holds at every instant.
  mutable Mutex metrics_mu_;
  ServerMetrics counters_ MPIPU_GUARDED_BY(metrics_mu_);
  std::vector<double> latencies_ MPIPU_GUARDED_BY(metrics_mu_);

  /// Serializes shutdown() and the destructor.  workers_ itself is written
  /// only single-threaded in the constructor and joined under shutdown_mu_,
  /// so it carries no GUARDED_BY (annotating it would falsely require the
  /// constructor to lock).
  Mutex shutdown_mu_;
  std::vector<std::thread> workers_;
};

}  // namespace mpipu::serve
