#include "serve/health.h"

namespace mpipu::serve {

const char* breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "?";
}

AdmitDecision CircuitBreaker::admit(double now) {
  if (cfg_.failure_threshold <= 0) return AdmitDecision::kAdmit;
  switch (state_) {
    case BreakerState::kClosed:
      return AdmitDecision::kAdmit;
    case BreakerState::kOpen:
      if (now - opened_at_ < cfg_.open_cooldown_s) return AdmitDecision::kShed;
      state_ = BreakerState::kHalfOpen;
      probes_in_flight_ = 0;
      [[fallthrough]];
    case BreakerState::kHalfOpen:
      if (probes_in_flight_ < cfg_.half_open_probes) {
        ++probes_in_flight_;
        return AdmitDecision::kProbe;
      }
      return AdmitDecision::kShed;
  }
  return AdmitDecision::kAdmit;
}

void CircuitBreaker::release_probe() {
  if (state_ == BreakerState::kHalfOpen && probes_in_flight_ > 0) {
    --probes_in_flight_;
  }
}

void CircuitBreaker::open(double now) {
  state_ = BreakerState::kOpen;
  opened_at_ = now;
  probes_in_flight_ = 0;
  ++times_opened_;
}

void CircuitBreaker::on_success(double) {
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    // The probe proved the model out: full service resumes.
    state_ = BreakerState::kClosed;
    probes_in_flight_ = 0;
  }
}

void CircuitBreaker::on_failure(double now) {
  ++consecutive_failures_;
  switch (state_) {
    case BreakerState::kHalfOpen:
      // The probe failed (or a straggler admitted pre-open failed while we
      // were probing -- conservative: the model has not proven itself).
      open(now);
      break;
    case BreakerState::kClosed:
      if (cfg_.failure_threshold > 0 &&
          consecutive_failures_ >= cfg_.failure_threshold) {
        open(now);
      }
      break;
    case BreakerState::kOpen:
      // A straggler from before the breaker opened; the cooldown stands.
      break;
  }
}

double CircuitBreaker::cooldown_remaining(double now) const {
  if (state_ != BreakerState::kOpen) return 0.0;
  const double left = cfg_.open_cooldown_s - (now - opened_at_);
  return left > 0.0 ? left : 0.0;
}

Json ModelHealthSnapshot::to_json_value() const {
  Json j = Json::object();
  j.set("handle", handle);
  j.set("model", model);
  j.set("breaker", breaker_state_name(state));
  j.set("consecutive_failures", consecutive_failures);
  j.set("times_opened", static_cast<double>(times_opened));
  j.set("cooldown_remaining_s", cooldown_remaining_s);
  j.set("exec_failures", static_cast<double>(exec_failures));
  j.set("bad_inputs", static_cast<double>(bad_inputs));
  j.set("shed_unhealthy", static_cast<double>(shed_unhealthy));
  j.set("stall_events", static_cast<double>(stall_events));
  j.set("longest_exec_s", longest_exec_s);
  j.set("currently_stalled", currently_stalled);
  return j;
}

}  // namespace mpipu::serve
