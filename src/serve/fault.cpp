#include "serve/fault.h"

#include <cstdlib>

namespace mpipu::serve {

namespace {

/// splitmix64: the stateless per-index generator behind the schedule.  Two
/// different salts give independent draws for the throw and delay dice of
/// one attempt.
uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double uniform01(uint64_t h) {
  // 53 high bits -> [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultDecision FaultPlan::decision_for(uint64_t attempt_index) const {
  FaultDecision d;
  if (!enabled()) return d;
  if (attempt_index < cfg_.first_attempt || attempt_index >= cfg_.last_attempt) {
    return d;
  }
  const uint64_t base = mix64(cfg_.seed) ^ attempt_index;
  if (cfg_.throw_prob > 0.0 &&
      uniform01(mix64(base ^ 0x7472686fULL)) < cfg_.throw_prob) {
    d.kind = FaultDecision::Kind::kThrow;
    return d;
  }
  if (cfg_.delay_prob > 0.0 &&
      uniform01(mix64(base ^ 0x64656c61ULL)) < cfg_.delay_prob) {
    d.kind = FaultDecision::Kind::kDelay;
    d.delay_s = cfg_.delay_s;
  }
  return d;
}

FaultDecision FaultPlan::next_attempt() {
  const uint64_t idx = next_attempt_.fetch_add(1, std::memory_order_acq_rel);
  return decision_for(idx);
}

FaultPlan::Config FaultPlan::parse(const std::string& spec) {
  Config cfg;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos) {
      // lint:allow-throw -- config-parse error, not the request path
      throw std::invalid_argument("FaultPlan: expected key=value, got '" +
                                  item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    try {
      if (key == "seed") {
        cfg.seed = std::stoull(val);
      } else if (key == "throw") {
        cfg.throw_prob = std::stod(val);
      } else if (key == "delay") {
        const size_t colon = val.find(':');
        if (colon == std::string::npos) {
          // lint:allow-throw -- config-parse error, not the request path
          throw std::invalid_argument("delay wants prob:seconds");
        }
        cfg.delay_prob = std::stod(val.substr(0, colon));
        cfg.delay_s = std::stod(val.substr(colon + 1));
      } else if (key == "stall") {
        cfg.window_stall_s = std::stod(val);
      } else if (key == "after") {
        cfg.first_attempt = std::stoull(val);
      } else if (key == "until") {
        cfg.last_attempt = std::stoull(val);
      } else {
        // lint:allow-throw -- config-parse error, not the request path
        throw std::invalid_argument("unknown key '" + key + "'");
      }
    } catch (const std::invalid_argument&) {
      // lint:allow-throw -- config-parse error, not the request path
      throw;
    } catch (const std::exception&) {
      // lint:allow-throw -- config-parse error, not the request path
      throw std::invalid_argument("FaultPlan: bad value in '" + item + "'");
    }
  }
  if (cfg.throw_prob < 0.0 || cfg.throw_prob > 1.0 || cfg.delay_prob < 0.0 ||
      cfg.delay_prob > 1.0 || cfg.delay_s < 0.0 || cfg.window_stall_s < 0.0) {
    // lint:allow-throw -- config-parse error, not the request path
    throw std::invalid_argument("FaultPlan: probabilities must be in [0,1], "
                                "durations non-negative");
  }
  return cfg;
}

std::shared_ptr<FaultPlan> FaultPlan::from_env() {
  // Read-only env probe, no concurrent setenv in this process.
  const char* env = std::getenv("MPIPU_FAULT");  // NOLINT(concurrency-mt-unsafe)
  if (env == nullptr || env[0] == '\0') return nullptr;
  return std::make_shared<FaultPlan>(parse(env));
}

}  // namespace mpipu::serve
