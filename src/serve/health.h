// Per-model health: consecutive-failure circuit breaking + stall tracking.
//
// A model whose executions keep failing (bad weights, a kernel tripping an
// assert, injected chaos) must stop costing queue slots and worker time:
// after `failure_threshold` CONSECUTIVE execution failures the breaker
// opens and submissions for that model shed Rejected{kUnhealthy}
// immediately -- microseconds instead of a queue wait ending in another
// failure.  After `open_cooldown_s` (virtual clock: tests elapse it in one
// advance) the breaker half-opens: up to `half_open_probes` requests are
// admitted as probes; one success closes the breaker (full service), one
// failure re-opens it for another cooldown.
//
// The breaker sees only EXECUTION failures.  Bad input (kBadInput) is the
// client's fault and never counts -- one buggy client must not take a
// healthy model out of service for everyone else.
//
// CircuitBreaker is a plain state machine, NOT internally locked: the
// runtime serializes access under its health mutex and passes now() in, so
// the machine stays deterministic and directly unit-testable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/json.h"

namespace mpipu::serve {

struct CircuitBreakerConfig {
  /// Consecutive execution failures that open the breaker.  0 disables
  /// circuit breaking entirely (every admit() passes).
  int failure_threshold = 5;
  /// Open -> half-open after this much clock time.
  double open_cooldown_s = 1.0;
  /// Probe requests admitted concurrently while half-open.
  int half_open_probes = 1;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };
const char* breaker_state_name(BreakerState s);

/// What admit() decided for one request.
enum class AdmitDecision {
  kShed,   ///< breaker open: shed kUnhealthy
  kAdmit,  ///< closed: normal admission
  kProbe,  ///< half-open: admitted as a probe (slot reserved)
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerConfig cfg = {}) : cfg_(cfg) {}

  /// Admission decision for one request.  May transition kOpen ->
  /// kHalfOpen when the cooldown has elapsed; a kProbe admission reserves
  /// one of the half_open_probes slots.
  [[nodiscard]] AdmitDecision admit(double now);
  /// A request admitted as a half-open probe that never reached execution
  /// (shed later in the admission chain): return its probe slot.
  void release_probe();

  /// Execution outcomes.  Failures while half-open re-open immediately
  /// (conservative: the model has not proven itself); successes while
  /// half-open close.
  void on_success(double now);
  void on_failure(double now);

  BreakerState state() const { return state_; }
  int consecutive_failures() const { return consecutive_failures_; }
  uint64_t times_opened() const { return times_opened_; }
  const CircuitBreakerConfig& config() const { return cfg_; }
  /// Seconds of cooldown left while open (0 otherwise).
  double cooldown_remaining(double now) const;

 private:
  void open(double now);

  CircuitBreakerConfig cfg_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int probes_in_flight_ = 0;
  double opened_at_ = 0.0;
  uint64_t times_opened_ = 0;
};

/// One model's health as the runtime tracks it (guarded by the runtime's
/// health mutex; snapshotted into ServerMetrics).
struct ModelHealth {
  CircuitBreaker breaker;
  uint64_t exec_failures = 0;  ///< execution attempts that failed (kExecError)
  uint64_t bad_inputs = 0;     ///< requests shed kBadInput (admission or exec)
  uint64_t shed_unhealthy = 0;
  /// Watchdog: dispatches whose execution exceeded the stall budget, and
  /// the worst observed execution time.
  uint64_t stall_events = 0;
  double longest_exec_s = 0.0;
};

/// Point-in-time copy of one model's health for metrics()/JSON.
struct ModelHealthSnapshot {
  int handle = -1;
  std::string model;
  BreakerState state = BreakerState::kClosed;
  int consecutive_failures = 0;
  uint64_t times_opened = 0;
  double cooldown_remaining_s = 0.0;
  uint64_t exec_failures = 0;
  uint64_t bad_inputs = 0;
  uint64_t shed_unhealthy = 0;
  uint64_t stall_events = 0;
  double longest_exec_s = 0.0;
  bool currently_stalled = false;  ///< executing right now, past the budget

  Json to_json_value() const;
};

}  // namespace mpipu::serve
