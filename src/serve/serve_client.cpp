#include "serve/serve_client.h"

#include <chrono>
#include <optional>
#include <thread>
#include <utility>

namespace mpipu::serve {

ServeClient::ServeClient(ServingRuntime& runtime, RetryPolicy policy,
                         uint64_t jitter_seed, Clock* clock)
    : runtime_(runtime),
      policy_(policy),
      clock_(clock != nullptr ? clock : &runtime.clock()),
      jitter_rng_(jitter_seed) {
  if (policy_.max_attempts < 1) policy_.max_attempts = 1;
  if (policy_.backoff_multiplier < 1.0) policy_.backoff_multiplier = 1.0;
  if (policy_.jitter < 0.0) policy_.jitter = 0.0;
  if (policy_.jitter > 1.0) policy_.jitter = 1.0;
}

bool ServeClient::retryable(const RetryPolicy& policy, RejectReason r) {
  switch (r) {
    case RejectReason::kQueueFull: return policy.retry_queue_full;
    case RejectReason::kUnhealthy: return policy.retry_unhealthy;
    case RejectReason::kExecError: return policy.retry_exec_error;
    case RejectReason::kDeadline: return policy.retry_deadline;
    case RejectReason::kNone:
    case RejectReason::kBadInput:   // deterministic: same request, same reject
    case RejectReason::kShutdown:   // the service is going away
      return false;
  }
  return false;
}

double ServeClient::backoff_s(int retry) {
  double b = policy_.initial_backoff_s;
  for (int i = 0; i < retry && b < policy_.max_backoff_s; ++i) {
    b *= policy_.backoff_multiplier;
  }
  if (b > policy_.max_backoff_s) b = policy_.max_backoff_s;
  if (policy_.jitter > 0.0 && b > 0.0) {
    // Deterministic de-synchronization: scale into [1 - jitter, 1] with a
    // draw from this client's seeded stream.
    const double u = jitter_rng_.uniform(0.0, 1.0);
    b *= 1.0 - policy_.jitter * u;
  }
  return b;
}

ServeResult ServeClient::call(ModelHandle h, const Tensor& input,
                              const SubmitOptions& opts) {
  {
    MutexLock lock(stats_mu_);
    ++stats_.calls;
  }
  ServeResult last;
  for (int attempt = 0;; ++attempt) {
    std::future<ServeResult> primary = runtime_.submit(h, input, opts);
    {
      MutexLock lock(stats_mu_);
      ++stats_.attempts;
    }
    bool hedge_won = false;
    if (policy_.hedge_after_s ==
        std::numeric_limits<double>::infinity()) {
      last = primary.get();
    } else if (primary.wait_for(std::chrono::duration<double>(
                   policy_.hedge_after_s)) == std::future_status::ready) {
      last = primary.get();
    } else {
      // The primary is stuck (deep queue, stalled batch): race a duplicate
      // against it.  Both futures WILL resolve -- the runtime's
      // exactly-once contract -- so take the first ok() of the two, or the
      // primary's rejection once both have resolved.
      std::future<ServeResult> hedge = runtime_.submit(h, input, opts);
      {
        MutexLock lock(stats_mu_);
        ++stats_.attempts;
        ++stats_.hedges;
      }
      std::optional<ServeResult> pr, hr;
      for (;;) {
        if (!pr.has_value() &&
            primary.wait_for(std::chrono::seconds(0)) ==
                std::future_status::ready) {
          pr = primary.get();
        }
        if (!hr.has_value() &&
            hedge.wait_for(std::chrono::seconds(0)) ==
                std::future_status::ready) {
          hr = hedge.get();
        }
        if (pr.has_value() && pr->ok()) {
          last = std::move(*pr);
          break;
        }
        if (hr.has_value() && hr->ok()) {
          last = std::move(*hr);
          hedge_won = true;
          break;
        }
        if (pr.has_value() && hr.has_value()) {
          last = std::move(*pr);
          break;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
    if (last.ok() || !retryable(policy_, last.rejected)) {
      if (hedge_won) {
        MutexLock lock(stats_mu_);
        ++stats_.hedge_wins;
      }
      return last;
    }
    if (attempt + 1 >= policy_.max_attempts) {
      MutexLock lock(stats_mu_);
      ++stats_.gave_up;
      return last;
    }
    {
      MutexLock lock(stats_mu_);
      ++stats_.retries;
    }
    clock_->sleep_for(backoff_s(attempt));
  }
}

ClientStats ServeClient::stats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

}  // namespace mpipu::serve
