// Deterministic fault injection for the serving runtime.
//
// The chaos wall (tests/test_serve_chaos.cpp) needs to make the runtime
// fail on demand -- executions that throw, workers that stall, batch
// windows that linger -- without patching the execution engine, and it
// needs the SAME fault schedule on every run of a seed.  A FaultPlan is
// that schedule: each execution attempt draws its fate from a stateless
// hash of (seed, attempt index), so the decision for attempt #17 is the
// same whichever worker thread gets there and however the scheduler
// interleaves the others.
//
// The hooks are compiled in always and cost one atomic load when no plan
// is installed (the default): ServingRuntime consults its configured plan
// (ServerConfig::faults), falling back to the process-wide MPIPU_FAULT
// environment plan so any serving binary can be chaos-tested without a
// rebuild:
//
//   MPIPU_FAULT="seed=42,throw=0.2,delay=0.1:0.005,stall=0.002"
//
//   seed=N        schedule seed (default 1)
//   throw=P       P(execution attempt throws InjectedFault)
//   delay=P:S     P(worker sleeps S seconds before executing)
//   stall=S       every batch window lingers S extra seconds pre-dispatch
//   after=N       attempts before index N are never faulted
//   until=N       attempts at/after index N are never faulted
//
// Injected failures flow through the SAME catch paths as real ones, so the
// robustness machinery they exercise (per-request isolation, the circuit
// breaker, the watchdog, client retries) never special-cases them.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

namespace mpipu::serve {

/// The exception an injected kThrow raises inside the execution path.
/// Derived from std::runtime_error, NOT std::invalid_argument: it models a
/// transient execution failure (classified kExecError, breaker-visible),
/// never a malformed request.
struct InjectedFault : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct FaultDecision {
  enum class Kind { kNone, kThrow, kDelay };
  Kind kind = Kind::kNone;
  double delay_s = 0.0;  ///< kDelay: how long the worker sleeps
};

class FaultPlan {
 public:
  struct Config {
    uint64_t seed = 1;
    double throw_prob = 0.0;  ///< P(attempt throws InjectedFault)
    double delay_prob = 0.0;  ///< P(attempt sleeps delay_s first)
    double delay_s = 0.0;
    /// Extra pre-dispatch linger injected into every batch window while the
    /// plan is enabled (stalls queued requests: deadlines expire, drains
    /// race the window).
    double window_stall_s = 0.0;
    /// Fault only attempts with index in [first_attempt, last_attempt).
    uint64_t first_attempt = 0;
    uint64_t last_attempt = std::numeric_limits<uint64_t>::max();
  };

  FaultPlan() = default;  ///< no-op plan: every decision is kNone
  explicit FaultPlan(Config cfg) : cfg_(cfg) {}

  /// Parse MPIPU_FAULT (nullptr when unset/empty).  Throws
  /// std::invalid_argument on a malformed spec -- a typo'd chaos knob must
  /// not silently run a clean experiment.
  static std::shared_ptr<FaultPlan> from_env();
  /// Same grammar, explicit string (testable without setenv).
  static Config parse(const std::string& spec);

  /// Draw the fate of the next execution attempt and advance the attempt
  /// counter.  Deterministic per index; thread-safe (the counter is the
  /// only mutable state).
  FaultDecision next_attempt();

  /// Current window stall (0 while disabled).
  double window_stall_s() const {
    return enabled() ? cfg_.window_stall_s : 0.0;
  }

  /// Master switch: a disabled plan decides kNone for everything (the
  /// attempt counter still advances, keeping schedules aligned).  Tests
  /// flip this to end the fault phase and watch the runtime recover.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_release); }
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  uint64_t attempts() const {
    return next_attempt_.load(std::memory_order_acquire);
  }
  const Config& config() const { return cfg_; }

  /// The (pure) decision for one attempt index -- next_attempt() draws
  /// from this; exposed so tests can assert schedule determinism.
  FaultDecision decision_for(uint64_t attempt_index) const;

 private:
  Config cfg_;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> next_attempt_{0};
};

}  // namespace mpipu::serve
