// Numerical-analysis metrics for the approximate FP-IP study (paper §3.1).
//
// The paper evaluates approximate FP-IP against "FP32 CPU" results with
// three metrics, all reported as medians over many sampled inner products:
//   * absolute error            |approx - exact|
//   * absolute relative error   |approx - exact| / |exact|  (in percent)
//   * contaminated bits         number of differing low-order bits between
//                               the approximate result and the exact result,
//                               both rounded to the destination format.
//
// It also states Theorem 1, an analytical bound on the absolute error of a
// single approximate nibble iteration, and sums it over iterations for a
// full-operation bound; `theorem1_*` implement those bounds so tests can
// assert the measured error never exceeds them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/fixed_point.h"
#include "softfloat/softfloat.h"

namespace mpipu {

/// |approx - exact| as a double (analysis only).
double absolute_error(const FixedPoint& approx, const FixedPoint& exact);

/// |approx - exact| / |exact| in percent; returns 0 when both are zero and
/// +inf when only `exact` is zero.
double absolute_relative_error_pct(const FixedPoint& approx, const FixedPoint& exact);

/// Number of contaminated bits between two encodings of the same FP format:
/// 0 if identical; otherwise 1 + floor(log2 |a - b|) of the *encoding*
/// distance in ULPs of the smaller-exponent operand -- i.e. how many
/// low-order result bits cannot be trusted.
int contaminated_bits(uint32_t approx_bits, uint32_t exact_bits, FpFormat fmt);

/// Theorem 1: bound on the absolute error contributed by the approximate
/// nibble iteration (i, j) of an n-input FP16 FP-IP with the given IPU
/// precision and maximum product exponent:
///     225 * 2^(4(i+j) - 22) * 2^(max_exp - precision) * (n - 1).
double theorem1_iteration_bound(int i, int j, int n, int precision, int max_exp);

/// Sum of the iteration bounds over all Ka x Kb iterations: a (loose) bound
/// on the absolute error of a whole approximate FP-IP operation.
double theorem1_operation_bound(int n, int precision, int max_exp,
                                int nibbles_per_operand = 3);

/// Rigorous truncation bound for the implemented w-bit-window datapath:
/// every non-masked product's floor truncation loses strictly less than one
/// window ULP, 2^(4(i+j) - 22 + 10 + max_exp - w), and a masked product
/// loses at most its own magnitude (smaller).  Theorem 1's published
/// constant (225 = a full lane product) covers fully-shifted-out products
/// but is up to 2^10/225 ~ 4.6x tighter than the worst-case partial
/// truncation, so tests check against this sound bound and report the
/// paper's bound alongside.
double window_truncation_iteration_bound(int i, int j, int n, int w, int max_exp);
double window_truncation_operation_bound(int n, int w, int max_exp,
                                         int nibbles_per_operand = 3);

/// Order statistics helpers used by the Fig. 3 harness.
double median(std::vector<double> v);   // by value: sorts a copy
double mean(std::span<const double> v);
double percentile(std::vector<double> v, double p);  // p in [0,100]

/// Simple fixed-bin integer histogram (used for Fig. 9).
class IntHistogram {
 public:
  explicit IntHistogram(int max_value) : counts_(static_cast<size_t>(max_value) + 2, 0) {}

  void add(int v);
  int64_t total() const { return total_; }
  /// Fraction of samples with value == v (last bin aggregates overflow).
  double fraction(int v) const;
  /// Fraction of samples with value > v.
  double fraction_above(int v) const;
  int max_bin() const { return static_cast<int>(counts_.size()) - 2; }
  int64_t count(int v) const;

 private:
  std::vector<int64_t> counts_;  // [0..max] plus one overflow bin
  int64_t total_ = 0;
};

}  // namespace mpipu
