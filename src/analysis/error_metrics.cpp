#include "analysis/error_metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace mpipu {

double absolute_error(const FixedPoint& approx, const FixedPoint& exact) {
  return std::fabs((approx - exact).to_double_value());
}

double absolute_relative_error_pct(const FixedPoint& approx, const FixedPoint& exact) {
  const double err = absolute_error(approx, exact);
  const double ref = std::fabs(exact.to_double_value());
  if (ref == 0.0) return err == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return 100.0 * err / ref;
}

int contaminated_bits(uint32_t approx_bits, uint32_t exact_bits, FpFormat fmt) {
  if (approx_bits == exact_bits) return 0;
  // Interpret encodings on the monotone integer line: for a sign-magnitude
  // FP format, value order matches (sign ? -mag : mag) of the raw encoding
  // without the sign bit.  The ULP distance between the two encodings then
  // counts how many low-order representable steps separate them.
  const auto mag_bits = static_cast<int64_t>(1) << (fmt.total_bits() - 1);
  auto line = [&](uint32_t raw) {
    const int64_t mag = static_cast<int64_t>(raw) & (mag_bits - 1);
    return (static_cast<int64_t>(raw) & mag_bits) ? -mag : mag;
  };
  const int64_t dist = std::llabs(line(approx_bits) - line(exact_bits));
  // Number of bits needed to express the ULP distance == number of
  // low-order bits of the result that differ from the exact computation.
  int bits = 0;
  for (int64_t d = dist; d != 0; d >>= 1) ++bits;
  return bits;
}

double theorem1_iteration_bound(int i, int j, int n, int precision, int max_exp) {
  assert(n >= 1);
  if (n == 1) return 0.0;
  return 225.0 * std::exp2(4.0 * (i + j) - 22.0) * std::exp2(max_exp - precision) *
         (n - 1);
}

double theorem1_operation_bound(int n, int precision, int max_exp,
                                int nibbles_per_operand) {
  double total = 0.0;
  for (int i = 0; i < nibbles_per_operand; ++i) {
    for (int j = 0; j < nibbles_per_operand; ++j) {
      total += theorem1_iteration_bound(i, j, n, precision, max_exp);
    }
  }
  return total;
}

double window_truncation_iteration_bound(int i, int j, int n, int w, int max_exp) {
  assert(n >= 1);
  if (n == 1) return 0.0;
  return std::exp2(4.0 * (i + j) - 22.0 + 10.0) * std::exp2(max_exp - w) * (n - 1);
}

double window_truncation_operation_bound(int n, int w, int max_exp,
                                         int nibbles_per_operand) {
  double total = 0.0;
  for (int i = 0; i < nibbles_per_operand; ++i) {
    for (int j = 0; j < nibbles_per_operand; ++j) {
      total += window_truncation_iteration_bound(i, j, n, w, max_exp);
    }
  }
  return total;
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid) - 1,
                   v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (hi + v[mid - 1]);
}

double mean(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  assert(p >= 0.0 && p <= 100.0);
  std::sort(v.begin(), v.end());
  const double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

void IntHistogram::add(int v) {
  assert(v >= 0);
  const size_t bin = std::min(static_cast<size_t>(v), counts_.size() - 1);
  ++counts_[bin];
  ++total_;
}

double IntHistogram::fraction(int v) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(v)) / static_cast<double>(total_);
}

double IntHistogram::fraction_above(int v) const {
  if (total_ == 0) return 0.0;
  int64_t above = 0;
  for (size_t i = static_cast<size_t>(v) + 1; i < counts_.size(); ++i) above += counts_[i];
  return static_cast<double>(above) / static_cast<double>(total_);
}

int64_t IntHistogram::count(int v) const {
  assert(v >= 0);
  const size_t bin = std::min(static_cast<size_t>(v), counts_.size() - 1);
  return counts_[bin];
}

}  // namespace mpipu
