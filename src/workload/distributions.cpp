#include "workload/distributions.h"

#include <cassert>
#include <cmath>

namespace mpipu {

const char* to_string(ValueDist d) {
  switch (d) {
    case ValueDist::kLaplace: return "laplace";
    case ValueDist::kNormal: return "normal";
    case ValueDist::kUniform: return "uniform";
    case ValueDist::kHalfNormal: return "half-normal";
    case ValueDist::kBackwardWide: return "backward-wide";
  }
  return "?";
}

double sample_value(Rng& rng, ValueDist dist, double scale) {
  switch (dist) {
    case ValueDist::kLaplace:
      return rng.laplace(0.0, scale);
    case ValueDist::kNormal:
      return rng.normal(0.0, scale);
    case ValueDist::kUniform:
      return rng.uniform(-scale, scale);
    case ValueDist::kHalfNormal:
      return std::fabs(rng.normal(0.0, scale));
    case ValueDist::kBackwardWide:
      return scale * rng.log_uniform_signed(-18.0, 0.0);
  }
  return 0.0;
}

std::vector<Fp16> sample_fp16(Rng& rng, ValueDist dist, double scale, int n) {
  std::vector<Fp16> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(Fp16::from_double(sample_value(rng, dist, scale)));
  }
  return out;
}

ExponentPool::ExponentPool(Rng& rng, ValueDist dist, double scale, int pool_size) {
  assert(pool_size > 0);
  pool_.reserve(static_cast<size_t>(pool_size));
  for (int i = 0; i < pool_size; ++i) {
    const Fp16 f = Fp16::from_double(sample_value(rng, dist, scale));
    pool_.push_back(f.is_finite() ? f.decode().exp : kFp16Format.max_exp());
  }
}

int sample_jitter(Rng& rng, const ExponentJitter& j) {
  if (rng.bernoulli(j.p_zero)) return 0;
  int depth = 1;
  while (depth < j.max_depth && rng.bernoulli(j.decay)) ++depth;
  return -depth;
}

LayerTensorStats forward_stats() {
  LayerTensorStats s;
  s.activation_dist = ValueDist::kHalfNormal;
  s.activation_scale = 1.0;
  s.weight_dist = ValueDist::kNormal;
  s.weight_scale = 0.05;
  // Forward activations within a receptive field are strongly correlated:
  // small jitters, light tail (Fig. 9(a): alignments cluster near zero with
  // ~1% above 8), and ~45% exact zeros from ReLU that the EHU masks.
  s.act_jitter = {0.72, 0.52, 30};
  s.wgt_jitter = {0.75, 0.40, 30};
  s.act_zero_prob = 0.45;
  return s;
}

LayerTensorStats backward_stats() {
  LayerTensorStats s;
  s.activation_dist = ValueDist::kBackwardWide;  // back-propagated errors
  s.activation_scale = 1.0;
  s.weight_dist = ValueDist::kNormal;
  s.weight_scale = 0.05;
  // Gradients span many octaves even within one op (Fig. 9(b)).
  s.act_jitter = {0.10, 0.84, 40};
  s.wgt_jitter = {0.75, 0.40, 30};
  s.act_zero_prob = 0.25;  // dead-ReLU gradient zeros
  return s;
}

}  // namespace mpipu
