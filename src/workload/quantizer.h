// Symmetric integer quantization (the INT4/INT8 software side of the
// mixed-precision story).  Converts real-valued tensors to the signed or
// unsigned integer grids the IPU's INT mode consumes, and back.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mpipu {

struct QuantParams {
  double scale = 1.0;  ///< real value = scale * q
  int bits = 8;
  bool is_unsigned = false;

  int64_t qmin() const { return is_unsigned ? 0 : -(int64_t{1} << (bits - 1)); }
  int64_t qmax() const {
    return is_unsigned ? (int64_t{1} << bits) - 1 : (int64_t{1} << (bits - 1)) - 1;
  }
};

/// Fit symmetric quantization parameters to the data's max magnitude
/// (max-calibration, the standard post-training scheme).
QuantParams fit_symmetric(std::span<const double> values, int bits, bool is_unsigned = false);

/// Quantize with round-to-nearest and saturation.
std::vector<int32_t> quantize(std::span<const double> values, const QuantParams& qp);

/// Dequantize.
std::vector<double> dequantize(std::span<const int32_t> q, const QuantParams& qp);

/// Dequantize an integer inner-product result computed on quantized
/// operands: result_real = acc * scale_a * scale_b.
double dequantize_accumulator(int64_t acc, const QuantParams& a, const QuantParams& b);

}  // namespace mpipu
