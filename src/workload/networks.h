// Convolution-layer shape tables for the paper's study cases (§4.1):
// ResNet-18, ResNet-50 and InceptionV3 forward paths, plus the ResNet-18
// backward (data-gradient) path.  Shapes are derived from the published
// architectures (He et al. 2016; Szegedy et al. 2016) for 224x224 / 299x299
// ImageNet inputs; `repeat` collapses identical blocks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/distributions.h"

namespace mpipu {

struct ConvLayer {
  std::string name;
  int cin = 0;      ///< input channels
  int cout = 0;     ///< output channels (K dimension)
  int kh = 0, kw = 0;
  int hout = 0, wout = 0;  ///< output spatial size
  int stride = 1;
  int repeat = 1;   ///< identical instances in the network

  /// MACs for one instance.
  int64_t macs() const {
    return static_cast<int64_t>(cin) * cout * kh * kw * hout * wout;
  }

  friend bool operator==(const ConvLayer&, const ConvLayer&) = default;
};

struct Network {
  std::string name;
  std::vector<ConvLayer> layers;
  LayerTensorStats tensor_stats;

  int64_t total_macs() const {
    int64_t t = 0;
    for (const auto& l : layers) t += l.macs() * l.repeat;
    return t;
  }

  friend bool operator==(const Network&, const Network&) = default;
};

/// Forward-path convolution stacks.
Network resnet18_forward();
Network resnet50_forward();
Network inception_v3_forward();

/// ResNet-18 backward path (data gradients): transposed-shape convolutions
/// with gradient-like (wide dynamic range) tensor statistics.
Network resnet18_backward();

/// All four study cases of §4.1 in paper order.
std::vector<Network> paper_study_cases();

}  // namespace mpipu
