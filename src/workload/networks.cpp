#include "workload/networks.h"

namespace mpipu {
namespace {

ConvLayer conv(std::string name, int cin, int cout, int k, int hout, int stride = 1,
               int repeat = 1) {
  ConvLayer l;
  l.name = std::move(name);
  l.cin = cin;
  l.cout = cout;
  l.kh = l.kw = k;
  l.hout = l.wout = hout;
  l.stride = stride;
  l.repeat = repeat;
  return l;
}

ConvLayer conv_rect(std::string name, int cin, int cout, int kh, int kw, int hout,
                    int wout, int repeat = 1) {
  ConvLayer l;
  l.name = std::move(name);
  l.cin = cin;
  l.cout = cout;
  l.kh = kh;
  l.kw = kw;
  l.hout = hout;
  l.wout = wout;
  l.repeat = repeat;
  return l;
}

}  // namespace

Network resnet18_forward() {
  Network net;
  net.name = "resnet18-fwd";
  net.tensor_stats = forward_stats();
  net.layers = {
      conv("conv1", 3, 64, 7, 112, 2),
      // layer1: two basic blocks of 3x3,64 on 56x56.
      conv("layer1.conv3x3", 64, 64, 3, 56, 1, 4),
      // layer2: downsample block + basic block on 28x28.
      conv("layer2.0.conv1", 64, 128, 3, 28, 2),
      conv("layer2.0.down", 64, 128, 1, 28, 2),
      conv("layer2.conv3x3", 128, 128, 3, 28, 1, 3),
      // layer3 on 14x14.
      conv("layer3.0.conv1", 128, 256, 3, 14, 2),
      conv("layer3.0.down", 128, 256, 1, 14, 2),
      conv("layer3.conv3x3", 256, 256, 3, 14, 1, 3),
      // layer4 on 7x7.
      conv("layer4.0.conv1", 256, 512, 3, 7, 2),
      conv("layer4.0.down", 256, 512, 1, 7, 2),
      conv("layer4.conv3x3", 512, 512, 3, 7, 1, 3),
  };
  return net;
}

Network resnet50_forward() {
  Network net;
  net.name = "resnet50-fwd";
  net.tensor_stats = forward_stats();
  net.layers = {
      conv("conv1", 3, 64, 7, 112, 2),
      // layer1 (56x56): 3 bottlenecks 64-64-256.
      conv("layer1.conv1x1a", 64, 64, 1, 56),
      conv("layer1.conv1x1a+", 256, 64, 1, 56, 1, 2),
      conv("layer1.conv3x3", 64, 64, 3, 56, 1, 3),
      conv("layer1.conv1x1b", 64, 256, 1, 56, 1, 3),
      conv("layer1.down", 64, 256, 1, 56),
      // layer2 (28x28): 4 bottlenecks 128-128-512; block 0 reduces from 256
      // channels, blocks 1-3 from 512.
      conv("layer2.conv1x1a", 256, 128, 1, 28),
      conv("layer2.conv1x1a+", 512, 128, 1, 28, 1, 3),
      conv("layer2.conv3x3s2", 128, 128, 3, 28, 2),
      conv("layer2.conv3x3", 128, 128, 3, 28, 1, 3),
      conv("layer2.conv1x1b", 128, 512, 1, 28, 1, 4),
      conv("layer2.down", 256, 512, 1, 28, 2),
      // layer3 (14x14): 6 bottlenecks 256-256-1024.
      conv("layer3.conv1x1a", 512, 256, 1, 14),
      conv("layer3.conv1x1a+", 1024, 256, 1, 14, 1, 5),
      conv("layer3.conv3x3s2", 256, 256, 3, 14, 2),
      conv("layer3.conv3x3", 256, 256, 3, 14, 1, 5),
      conv("layer3.conv1x1b", 256, 1024, 1, 14, 1, 6),
      conv("layer3.down", 512, 1024, 1, 14, 2),
      // layer4 (7x7): 3 bottlenecks 512-512-2048.
      conv("layer4.conv1x1a", 1024, 512, 1, 7),
      conv("layer4.conv1x1a+", 2048, 512, 1, 7, 1, 2),
      conv("layer4.conv3x3s2", 512, 512, 3, 7, 2),
      conv("layer4.conv3x3", 512, 512, 3, 7, 1, 2),
      conv("layer4.conv1x1b", 512, 2048, 1, 7, 1, 3),
      conv("layer4.down", 1024, 2048, 1, 7, 2),
  };
  return net;
}

Network inception_v3_forward() {
  Network net;
  net.name = "inceptionv3-fwd";
  net.tensor_stats = forward_stats();
  net.layers = {
      // Stem.
      conv("stem.conv1", 3, 32, 3, 149, 2),
      conv("stem.conv2", 32, 32, 3, 147),
      conv("stem.conv3", 32, 64, 3, 147),
      conv("stem.conv4", 64, 80, 1, 73),
      conv("stem.conv5", 80, 192, 3, 71),
      // Mixed 5b/5c/5d (35x35) -- 1x1, 5x5 and double-3x3 branches.
      conv("mixed5.b1x1", 192, 64, 1, 35),
      conv("mixed5.b1x1+", 256, 64, 1, 35),
      conv("mixed5.b1x1++", 288, 64, 1, 35),
      conv("mixed5.b5x5r", 192, 48, 1, 35),
      conv("mixed5.b5x5", 48, 64, 5, 35, 1, 3),
      conv("mixed5.b3x3r", 192, 64, 1, 35),
      conv("mixed5.b3x3a", 64, 96, 3, 35, 1, 3),
      conv("mixed5.b3x3b", 96, 96, 3, 35, 1, 3),
      conv("mixed5.pool1x1", 192, 32, 1, 35),
      conv("mixed5.pool1x1+", 256, 64, 1, 35),
      conv("mixed5.pool1x1++", 288, 64, 1, 35),
      // Mixed 6a reduction (17x17).
      conv("mixed6a.3x3s2", 288, 384, 3, 17, 2),
      conv("mixed6a.dbl1", 288, 64, 1, 35),
      conv("mixed6a.dbl2", 64, 96, 3, 35),
      conv("mixed6a.dbl3", 96, 96, 3, 17, 2),
      // Mixed 6b-6e (17x17): factorized 1x7 / 7x1 branches.
      conv("mixed6.b1x1", 768, 192, 1, 17, 1, 4),
      conv("mixed6.c7r", 768, 128, 1, 17),
      conv_rect("mixed6.c1x7", 128, 128, 1, 7, 17, 17),
      conv_rect("mixed6.c7x1", 128, 192, 7, 1, 17, 17),
      conv("mixed6.c7r+", 768, 160, 1, 17, 1, 2),
      conv_rect("mixed6.c1x7+", 160, 160, 1, 7, 17, 17, 4),
      conv_rect("mixed6.c7x1+", 160, 192, 7, 1, 17, 17, 2),
      conv("mixed6.c7r++", 768, 192, 1, 17),
      conv_rect("mixed6.c1x7++", 192, 192, 1, 7, 17, 17, 5),
      conv_rect("mixed6.c7x1++", 192, 192, 7, 1, 17, 17, 5),
      conv("mixed6.pool1x1", 768, 192, 1, 17, 1, 4),
      // Mixed 7a reduction (8x8).
      conv("mixed7a.3x3r", 768, 192, 1, 17),
      conv("mixed7a.3x3s2", 192, 320, 3, 8, 2),
      conv("mixed7a.7x7r", 768, 192, 1, 17),
      conv("mixed7a.3x3s2b", 192, 192, 3, 8, 2),
      // Mixed 7b/7c (8x8).
      conv("mixed7.b1x1", 1280, 320, 1, 8),
      conv("mixed7.b1x1+", 2048, 320, 1, 8),
      conv("mixed7.b3x3r", 1280, 384, 1, 8),
      conv("mixed7.b3x3r+", 2048, 384, 1, 8),
      conv_rect("mixed7.b1x3", 384, 384, 1, 3, 8, 8, 4),
      conv_rect("mixed7.b3x1", 384, 384, 3, 1, 8, 8, 4),
      conv("mixed7.dblr", 1280, 448, 1, 8),
      conv("mixed7.dblr+", 2048, 448, 1, 8),
      conv("mixed7.dbl3x3", 448, 384, 3, 8, 1, 2),
      conv("mixed7.pool1x1", 1280, 192, 1, 8),
      conv("mixed7.pool1x1+", 2048, 192, 1, 8),
  };
  return net;
}

Network resnet18_backward() {
  // Data-gradient convolutions: dL/dx = conv(dL/dy, W^T).  Shapes mirror the
  // forward layers with cin/cout swapped and the *input* spatial size as the
  // output; strided layers become fractionally-strided (we model the
  // arithmetic-equivalent dense shape).  conv1 has no data gradient.
  Network fwd = resnet18_forward();
  Network net;
  net.name = "resnet18-bwd";
  net.tensor_stats = backward_stats();
  for (const auto& l : fwd.layers) {
    if (l.name == "conv1") continue;
    ConvLayer g = l;
    g.name = l.name + ".dgrad";
    g.cin = l.cout;
    g.cout = l.cin;
    g.hout = l.hout * l.stride;
    g.wout = l.wout * l.stride;
    g.stride = 1;
    net.layers.push_back(g);
  }
  return net;
}

std::vector<Network> paper_study_cases() {
  return {resnet18_forward(), resnet50_forward(), inception_v3_forward(),
          resnet18_backward()};
}

}  // namespace mpipu
