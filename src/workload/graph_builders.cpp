#include "workload/graph_builders.h"

namespace mpipu {
namespace {

ConvSpec spec_of(int stride, int pad) {
  ConvSpec s;
  s.stride = stride;
  s.pad = pad;
  return s;
}

}  // namespace

int append_resnet_basic_block(GraphModel::Builder& b, const std::string& prefix,
                              int from, int cin, int cout, int stride) {
  const int c1 = b.conv_shape(prefix + ".conv1", cout, cin, 3, 3,
                              spec_of(stride, 1), from, /*relu=*/true);
  // No ReLU on conv2: the block activates after the residual add.
  const int c2 = b.conv_shape(prefix + ".conv2", cout, cout, 3, 3,
                              spec_of(1, 1), c1);
  const int skip = (cin == cout && stride == 1)
                       ? from
                       : b.conv_shape(prefix + ".down", cout, cin, 1, 1,
                                      spec_of(stride, 0), from);
  return b.add(prefix + ".add", c2, skip, /*relu=*/true);
}

GraphModel resnet_basic_block_graph(int cin, int cout, int stride,
                                    std::string name) {
  GraphModel::Builder b(std::move(name));
  const int in = b.input();
  append_resnet_basic_block(b, "block", in, cin, cout, stride);
  return b.build();
}

GraphModel resnet18_graph() {
  GraphModel::Builder b("resnet18-graph");
  int x = b.input();
  x = b.conv_shape("conv1", 64, 3, 7, 7, spec_of(2, 3), x, /*relu=*/true,
                   PoolOp::kMax2);
  const int stage_channels[4] = {64, 128, 256, 512};
  int cin = 64;
  for (int stage = 0; stage < 4; ++stage) {
    const int cout = stage_channels[stage];
    const int stride = stage == 0 ? 1 : 2;
    const std::string prefix = "layer" + std::to_string(stage + 1);
    x = append_resnet_basic_block(b, prefix + ".0", x, cin, cout, stride);
    x = append_resnet_basic_block(b, prefix + ".1", x, cout, cout, 1);
    cin = cout;
  }
  return b.build();
}

int append_inception_a_block(GraphModel::Builder& b, const std::string& prefix,
                             int from, int cin) {
  const ConvSpec s1x1 = spec_of(1, 0);
  const int b1 = b.conv_shape(prefix + ".b1x1", 64, cin, 1, 1, s1x1, from,
                              /*relu=*/true);
  const int b5r = b.conv_shape(prefix + ".b5x5r", 48, cin, 1, 1, s1x1, from,
                               /*relu=*/true);
  const int b5 = b.conv_shape(prefix + ".b5x5", 64, 48, 5, 5, spec_of(1, 2),
                              b5r, /*relu=*/true);
  const int b3r = b.conv_shape(prefix + ".b3x3r", 64, cin, 1, 1, s1x1, from,
                               /*relu=*/true);
  const int b3a = b.conv_shape(prefix + ".b3x3a", 96, 64, 3, 3, spec_of(1, 1),
                               b3r, /*relu=*/true);
  const int b3b = b.conv_shape(prefix + ".b3x3b", 96, 96, 3, 3, spec_of(1, 1),
                               b3a, /*relu=*/true);
  const int bp = b.conv_shape(prefix + ".pool1x1", 32, cin, 1, 1, s1x1, from,
                              /*relu=*/true);
  return b.concat(prefix + ".concat", {b1, b5, b3b, bp});
}

GraphModel inception_a_block_graph(int cin, std::string name) {
  GraphModel::Builder b(std::move(name));
  const int in = b.input();
  append_inception_a_block(b, "mixed5", in, cin);
  return b.build();
}

}  // namespace mpipu
