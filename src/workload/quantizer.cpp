#include "workload/quantizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mpipu {

QuantParams fit_symmetric(std::span<const double> values, int bits, bool is_unsigned) {
  assert(bits >= 2 && bits <= 16);
  QuantParams qp;
  qp.bits = bits;
  qp.is_unsigned = is_unsigned;
  double max_mag = 0.0;
  for (double v : values) max_mag = std::max(max_mag, std::fabs(v));
  if (max_mag == 0.0) max_mag = 1.0;
  qp.scale = max_mag / static_cast<double>(qp.qmax());
  return qp;
}

std::vector<int32_t> quantize(std::span<const double> values, const QuantParams& qp) {
  std::vector<int32_t> out;
  out.reserve(values.size());
  for (double v : values) {
    const double q = std::nearbyint(v / qp.scale);
    const double clamped =
        std::clamp(q, static_cast<double>(qp.qmin()), static_cast<double>(qp.qmax()));
    out.push_back(static_cast<int32_t>(clamped));
  }
  return out;
}

std::vector<double> dequantize(std::span<const int32_t> q, const QuantParams& qp) {
  std::vector<double> out;
  out.reserve(q.size());
  for (int32_t v : q) out.push_back(static_cast<double>(v) * qp.scale);
  return out;
}

double dequantize_accumulator(int64_t acc, const QuantParams& a, const QuantParams& b) {
  return static_cast<double>(acc) * a.scale * b.scale;
}

}  // namespace mpipu
