// Synthetic tensor-value distributions (paper §3.1 and the Fig. 9 workloads).
//
// The paper's numerical analysis samples operands from Laplace, Normal and
// Uniform distributions ("as they resemble the distribution of DNN tensors",
// citing Park et al. 2018) plus real ResNet tensors.  We do not have the
// ImageNet tensors, so the ResNet-like settings below are *synthetic
// substitutes* whose exponent statistics are matched to the paper's Fig. 9:
//  * forward-pass tensors: zero-mean, light spread -> product-exponent
//    differences cluster near zero, ~1% above 8;
//  * backward-pass tensors: gradients spanning many octaves -> a wide, heavy
//    tailed alignment distribution.
// The datapath's behaviour (masking, band counts, stalls) depends on tensor
// values only through these alignment statistics, so matching them exercises
// the same code paths as the real tensors (see DESIGN.md, substitutions).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "softfloat/softfloat.h"

namespace mpipu {

enum class ValueDist {
  kLaplace,       ///< Laplace(0, scale)
  kNormal,        ///< Normal(0, scale)
  kUniform,       ///< Uniform(-scale, scale) -- "re-scaled tensor" case
  kHalfNormal,    ///< |Normal(0, scale)| -- post-ReLU activations
  kBackwardWide,  ///< sign-symmetric log-uniform magnitude over
                  ///< [scale * 2^-18, scale * 2^0] -- gradient-like
};

const char* to_string(ValueDist d);

/// Draw one value.
double sample_value(Rng& rng, ValueDist dist, double scale);

/// Draw n values as FP16 (RNE conversion, the usual downcast path).
std::vector<Fp16> sample_fp16(Rng& rng, ValueDist dist, double scale, int n);

/// A pre-drawn pool of FP16 *unbiased product-operand exponents* for fast
/// per-op sampling in the cycle simulator.  Zero values are recorded with
/// the subnormal exponent, exactly as the EHU sees them.
class ExponentPool {
 public:
  ExponentPool(Rng& rng, ValueDist dist, double scale, int pool_size);

  /// Exponent of one randomly drawn operand.
  int draw(Rng& rng) const {
    return pool_[rng.next_u64() % pool_.size()];
  }

 private:
  std::vector<int> pool_;
};

/// Intra-op exponent jitter: how much an operand's exponent deviates
/// (downward) from the op-local maximum-magnitude operand.  Alignment sizes
/// depend only on these *relative* exponents -- any op-level base exponent
/// cancels in (max_exp - exp) -- so the cycle simulator samples jitters
/// directly.  delta = 0 with probability p_zero, otherwise -(1 + Geom(decay)).
/// Calibrated so the resulting alignment histograms match the paper's
/// Fig. 9 (forward: ~1% above 8; backward: wide heavy tail).
struct ExponentJitter {
  double p_zero = 0.65;
  double decay = 0.55;
  int max_depth = 30;

  friend bool operator==(const ExponentJitter&, const ExponentJitter&) = default;
};

/// Draw one jitter value (<= 0).
int sample_jitter(Rng& rng, const ExponentJitter& j);

/// Workload descriptor: the operand distributions of one layer's inputs.
struct LayerTensorStats {
  ValueDist activation_dist = ValueDist::kHalfNormal;
  double activation_scale = 1.0;
  ValueDist weight_dist = ValueDist::kNormal;
  double weight_scale = 0.05;
  /// Intra-op exponent spreads (cycle simulator).
  ExponentJitter act_jitter{};
  ExponentJitter wgt_jitter{};
  /// Fraction of zero activations (post-ReLU sparsity).  Zero operands
  /// carry the subnormal exponent, so their products fall far below the
  /// software precision and are masked by the EHU -- they contribute no
  /// alignment cycles.
  double act_zero_prob = 0.0;

  friend bool operator==(const LayerTensorStats&, const LayerTensorStats&) =
      default;
};

/// Canonical tensor statistics for the four study cases of §4.1.
LayerTensorStats forward_stats();
LayerTensorStats backward_stats();

}  // namespace mpipu
