// Graph builders for the paper's branchy study networks (§4.1): the
// residual and branch/concat structure that the flat shape tables in
// workload/networks.h can only cycle-estimate, expressed as executable
// GraphModels (api/graph_model.h).
//
// Every builder returns a shape-only graph: conv nodes carry dimensions,
// not weights -- call GraphModel::materialize_weights(seed) before
// compiling/running (exactly the Model::from_network workflow).  Input
// spatial dims are free: the same graph runs at 224x224 for paper-shape
// estimates and at 8x8 for bit-accurate tests, because the topology is
// resolution-independent.
#pragma once

#include <string>

#include "api/graph_model.h"

namespace mpipu {

/// Append one ResNet basic block (He et al. 2016) to `b`:
///
///   from -> conv3x3(stride)+relu -> conv3x3 ----+-> add -> relu
///   from -> identity or 1x1(stride) projection -+
///
/// The skip path is the identity when (cin == cout && stride == 1), else
/// the standard 1x1/stride projection.  Returns the block's output node.
int append_resnet_basic_block(GraphModel::Builder& b, const std::string& prefix,
                              int from, int cin, int cout, int stride);

/// One standalone basic block as its own graph (input node included).
GraphModel resnet_basic_block_graph(int cin, int cout, int stride,
                                    std::string name = "resnet-basic-block");

/// The full ResNet-18 convolutional trunk: conv1 (7x7/2 + pool) then four
/// stages of two basic blocks (64, 128, 256, 512 channels; stages 2-4
/// downsample).  20 conv nodes, 8 residual adds.  At 224x224 its
/// shape_table() covers exactly the rows of resnet18_forward() with the
/// repeats unrolled (identical total MACs).
GraphModel resnet18_graph();

/// Append one Inception-A branch/concat block (Szegedy et al. 2016,
/// mixed5-style) to `b`: four parallel branches
///
///   1x1 -> 64 | 1x1 -> 48 -> 5x5 -> 64 | 1x1 -> 64 -> 3x3 -> 96 -> 3x3
///   -> 96 | 1x1 -> 32  (pool projection)
///
/// concatenated to 256 channels.  NOTE: the 3x3 stride-1 average pool that
/// precedes the projection branch in the paper-exact network is not
/// modeled (the repo has no such pool op); the branch keeps its 1x1 conv
/// and the block keeps its 4-way concat topology and channel budget.
int append_inception_a_block(GraphModel::Builder& b, const std::string& prefix,
                             int from, int cin);

/// One standalone Inception-A block as its own graph.
GraphModel inception_a_block_graph(int cin = 192,
                                   std::string name = "inception-a-block");

}  // namespace mpipu
