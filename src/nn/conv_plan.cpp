#include "nn/conv_plan.h"

namespace mpipu {

PreparedFp16 prepare_fp16_planes(std::span<const double> values) {
  PreparedFp16 planes;
  planes.resize(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    planes.set(i, Fp16::from_double(values[i]));
  }
  return planes;
}

PreparedInt prepare_int_planes(std::span<const double> values,
                               const QuantParams& params, bool with_digits) {
  PreparedInt planes;
  planes.assign(quantize(values, params), params.bits, params.is_unsigned,
                with_digits);
  return planes;
}

Tensor execute_fp16_plan_shard(const ConvPlan<PreparedFp16>& plan,
                               const PreparedFp16& in_planes, ThreadPool& pool,
                               std::span<const std::unique_ptr<Datapath>> units,
                               int n_inputs, AccumKind accum, int co_begin,
                               int co_end, int y_begin, int y_end) {
  const bool to_fp16 = accum == AccumKind::kFp16;
  return run_conv_plan_shard<PreparedFp16>(
      plan, in_planes, pool, units, n_inputs, co_begin, co_end, y_begin, y_end,
      [](Datapath& dp, const PreparedFp16View& a, const PreparedFp16View& b) {
        dp.fp16_accumulate_prepared(a, b);
      },
      [to_fp16](Datapath& dp) {
        return to_fp16 ? dp.read_fp16().to_double() : dp.read_fp32().to_double();
      });
}

Tensor execute_fp16_plan(const ConvPlan<PreparedFp16>& plan,
                         const PreparedFp16& in_planes, ThreadPool& pool,
                         std::span<const std::unique_ptr<Datapath>> units,
                         int n_inputs, AccumKind accum) {
  return execute_fp16_plan_shard(plan, in_planes, pool, units, n_inputs, accum,
                                 0, plan.cout, 0, plan.ho);
}

Tensor execute_int_plan_shard(const ConvPlan<PreparedInt>& plan,
                              const PreparedInt& in_planes, ThreadPool& pool,
                              std::span<const std::unique_ptr<Datapath>> units,
                              int n_inputs, int a_bits, int w_bits,
                              const QuantParams& qa, const QuantParams& qw,
                              int co_begin, int co_end, int y_begin,
                              int y_end) {
  return run_conv_plan_shard<PreparedInt>(
      plan, in_planes, pool, units, n_inputs, co_begin, co_end, y_begin, y_end,
      [a_bits, w_bits](Datapath& dp, const PreparedIntView& a,
                       const PreparedIntView& b) {
        dp.int_accumulate_prepared(a, b, a_bits, w_bits);
      },
      [&qa, &qw](Datapath& dp) {
        return dequantize_accumulator(dp.read_int(), qa, qw);
      });
}

Tensor execute_int_plan(const ConvPlan<PreparedInt>& plan,
                        const PreparedInt& in_planes, ThreadPool& pool,
                        std::span<const std::unique_ptr<Datapath>> units,
                        int n_inputs, int a_bits, int w_bits,
                        const QuantParams& qa, const QuantParams& qw) {
  return execute_int_plan_shard(plan, in_planes, pool, units, n_inputs, a_bits,
                                w_bits, qa, qw, 0, plan.cout, 0, plan.ho);
}

}  // namespace mpipu
