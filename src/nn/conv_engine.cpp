#include "nn/conv_engine.h"

#include <cstdio>
#include <cstdlib>

#include "nn/conv.h"
#include "nn/conv_plan.h"
#include "workload/quantizer.h"

namespace mpipu {

ConvEngine::ConvEngine(const ConvEngineConfig& cfg)
    : cfg_(cfg),
      owned_pool_(std::make_unique<ThreadPool>(cfg.threads)),
      pool_(owned_pool_.get()) {
  units_.reserve(static_cast<size_t>(pool_->size()));
  for (int slot = 0; slot < pool_->size(); ++slot) {
    units_.push_back(make_datapath(cfg_.datapath));
  }
}

ConvEngine::ConvEngine(const ConvEngineConfig& cfg, ThreadPool& pool)
    : cfg_(cfg), pool_(&pool) {
  units_.reserve(static_cast<size_t>(pool_->size()));
  for (int slot = 0; slot < pool_->size(); ++slot) {
    units_.push_back(make_datapath(cfg_.datapath));
  }
}

Tensor ConvEngine::conv_fp16(const Tensor& input, const FilterBank& filters,
                             const ConvSpec& spec) {
  // Decode once, allocate never: each tensor is rounded to FP16 AND
  // decomposed into prepared SoA planes exactly once; the plan packs the
  // per-clip-class filter streams and the executor streams plane views
  // through fp16_accumulate_prepared.
  const PreparedFp16 in_planes = prepare_fp16_planes(input.data);
  const PreparedFp16 flt_planes = prepare_fp16_planes(filters.data);
  ConvPlan<PreparedFp16> plan;
  plan.build(input.c, input.h, input.w, filters, spec, flt_planes);
  return execute_fp16_plan(plan, in_planes, *pool_, units_,
                           cfg_.datapath.n_inputs, cfg_.accum);
}

Tensor ConvEngine::conv_int(const Tensor& input, const FilterBank& filters,
                            const ConvSpec& spec, int a_bits, int w_bits) {
  // Hard check (not an assert): in a Release build a silently unsupported
  // scheme would otherwise yield an all-zero tensor with no diagnostic.
  if (!units_[0]->supports_int(a_bits, w_bits)) {
    std::fprintf(stderr,
                 "ConvEngine::conv_int: %s scheme does not support INT%dxINT%d\n",
                 scheme_name(cfg_.datapath.scheme), a_bits, w_bits);
    std::abort();
  }
  const QuantParams qa = fit_symmetric(input.data, a_bits);
  const QuantParams qw = fit_symmetric(filters.data, w_bits);

  // The bit-serial scheme streams raw values and never reads digit planes;
  // skip packing them on its tensors.
  const bool digits = cfg_.datapath.scheme != DecompositionScheme::kSerial;
  const PreparedInt in_planes = prepare_int_planes(input.data, qa, digits);
  const PreparedInt flt_planes = prepare_int_planes(filters.data, qw, digits);
  ConvPlan<PreparedInt> plan;
  plan.build(input.c, input.h, input.w, filters, spec, flt_planes);
  return execute_int_plan(plan, in_planes, *pool_, units_,
                          cfg_.datapath.n_inputs, a_bits, w_bits, qa, qw);
}

Tensor ConvEngine::dgrad_fp16(const Tensor& grad_out, const FilterBank& filters,
                              int fwd_pad) {
  const FilterBank t = transpose_for_dgrad(filters);
  ConvSpec spec;
  spec.stride = 1;
  spec.pad = filters.kh - 1 - fwd_pad;
  return conv_fp16(grad_out, t, spec);
}

DatapathStats ConvEngine::stats() const {
  DatapathStats total;
  for (const auto& u : units_) total += u->stats();
  return total;
}

void ConvEngine::reset_stats() {
  // The scheme implementations expose no counter reset; rebuilding the
  // per-slot datapaths zeroes every counter and leaves behaviour untouched
  // (units carry no cross-call numeric state -- the accumulator is reset
  // per output pixel anyway).
  for (auto& u : units_) u = make_datapath(cfg_.datapath);
}

}  // namespace mpipu
