#include "nn/conv_engine.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "nn/conv.h"
#include "workload/quantizer.h"

namespace mpipu {

namespace {

/// One in-bounds kernel-window shape ("clip class") and everything the
/// per-(pixel, co) loop needs for it, computed once per convolution:
///
///   * `rel_input`: base-relative input offsets of the window's taps in the
///     canonical ky -> kx -> ci gather order (the same order the legacy
///     loop streamed operands in, so results stay bit-identical); a pixel's
///     absolute tap index is rel_input[t] + (iy0*W + ix0);
///   * `filters`: the per-output-channel filter operand streams, packed
///     into contiguous prepared planes (co's stream = [co*len, (co+1)*len))
///     -- the old loop re-gathered these len values for every single pixel.
///
/// Interior pixels all share one class; border pixels fall into at most
/// (kh+1) x (kw+1) distinct ky-range x kx-range combinations, so the
/// packing cost is a handful of filter-bank sweeps.
template <typename Planes>
struct ClipClass {
  std::vector<int32_t> rel_input;
  Planes filters;
  int len = 0;
};

/// Axis factorization of the clip classes: the in-bounds kernel range along
/// y depends only on y (likewise x), so class(y, x) = y_class[y] * nx +
/// x_class[x] over the cross product of distinct per-axis ranges.
struct AxisRanges {
  std::vector<int32_t> class_of;          // output coordinate -> range id
  std::vector<std::pair<int, int>> uniq;  // range id -> [k0, k1)

  void build(int out, int stride, int pad, int k, int in) {
    class_of.resize(static_cast<size_t>(out));
    uniq.clear();
    for (int o = 0; o < out; ++o) {
      const int i0 = o * stride - pad;
      const std::pair<int, int> r{std::max(0, -i0), std::min(k, in - i0)};
      size_t id = 0;
      while (id < uniq.size() && uniq[id] != r) ++id;
      if (id == uniq.size()) uniq.push_back(r);
      class_of[static_cast<size_t>(o)] = static_cast<int32_t>(id);
    }
  }
};

template <typename Planes>
struct ConvPlan {
  std::vector<ClipClass<Planes>> classes;
  AxisRanges ys, xs;

  int class_of(int y, int x) const {
    return ys.class_of[static_cast<size_t>(y)] *
               static_cast<int>(xs.uniq.size()) +
           xs.class_of[static_cast<size_t>(x)];
  }

  void build(const Tensor& input, const FilterBank& f, const ConvSpec& spec,
             const Planes& flt_planes, int ho, int wo) {
    ys.build(ho, spec.stride, spec.pad, f.kh, input.h);
    xs.build(wo, spec.stride, spec.pad, f.kw, input.w);
    const size_t filter_block =
        static_cast<size_t>(f.cin) * f.kh * f.kw;
    classes.resize(ys.uniq.size() * xs.uniq.size());
    std::vector<int32_t> rel_filter;
    for (size_t yr = 0; yr < ys.uniq.size(); ++yr) {
      for (size_t xr = 0; xr < xs.uniq.size(); ++xr) {
        ClipClass<Planes>& cls = classes[yr * xs.uniq.size() + xr];
        rel_filter.clear();
        for (int ky = ys.uniq[yr].first; ky < ys.uniq[yr].second; ++ky) {
          for (int kx = xs.uniq[xr].first; kx < xs.uniq[xr].second; ++kx) {
            for (int ci = 0; ci < input.c; ++ci) {
              cls.rel_input.push_back(static_cast<int32_t>(
                  (static_cast<size_t>(ci) * input.h + ky) *
                      static_cast<size_t>(input.w) +
                  kx));
              rel_filter.push_back(static_cast<int32_t>(
                  (static_cast<size_t>(ci) * f.kh + ky) *
                      static_cast<size_t>(f.kw) +
                  kx));
            }
          }
        }
        cls.len = static_cast<int>(cls.rel_input.size());
        cls.filters.match_layout(flt_planes);
        cls.filters.resize(static_cast<size_t>(cls.len) * f.cout);
        for (int co = 0; co < f.cout; ++co) {
          cls.filters.gather(flt_planes, rel_filter,
                             static_cast<int64_t>(co) * static_cast<int64_t>(filter_block),
                             static_cast<size_t>(co) * static_cast<size_t>(cls.len));
        }
      }
    }
  }
};

/// The shared conv driver over prepared operand planes: per pixel, one
/// plane-copy gather stages the input patch (shared across all output
/// channels); per (pixel, co) the inner loop is contiguous streaming over
/// the staged input and the clip class's packed filter stream -- zero
/// gathers, zero allocations, zero re-decodes.  `accumulate` runs one
/// <= n_inputs chunk on the datapath; `readout` extracts the finished
/// pixel.
template <typename Planes, typename AccumulateFn, typename ReadoutFn>
Tensor run_conv(ThreadPool& pool, std::vector<std::unique_ptr<Datapath>>& units,
                int n_inputs, const Tensor& input, const FilterBank& filters,
                const ConvSpec& spec, const Planes& in_planes,
                const Planes& flt_planes, AccumulateFn&& accumulate,
                ReadoutFn&& readout) {
  assert(input.c == filters.cin);
  const int ho = spec.out_dim(input.h, filters.kh);
  const int wo = spec.out_dim(input.w, filters.kw);
  Tensor out(filters.cout, ho, wo);

  ConvPlan<Planes> plan;
  plan.build(input, filters, spec, flt_planes, ho, wo);

  pool.parallel_for(
      static_cast<int64_t>(ho) * wo, [&](int64_t begin, int64_t end, int slot) {
        Datapath& dp = *units[static_cast<size_t>(slot)];
        Planes staged;  // per-slot staging planes, reused across pixels
        staged.match_layout(in_planes);
        for (int64_t p = begin; p < end; ++p) {
          const int y = static_cast<int>(p / wo);
          const int x = static_cast<int>(p % wo);
          const ClipClass<Planes>& cls =
              plan.classes[static_cast<size_t>(plan.class_of(y, x))];
          const int len = cls.len;
          const int64_t base =
              static_cast<int64_t>(y * spec.stride - spec.pad) * input.w +
              (x * spec.stride - spec.pad);
          staged.resize(static_cast<size_t>(len));
          staged.gather(in_planes, cls.rel_input, base);
          for (int co = 0; co < filters.cout; ++co) {
            const auto stream_base =
                static_cast<size_t>(co) * static_cast<size_t>(len);
            dp.reset_accumulator();
            for (int c0 = 0; c0 < len; c0 += n_inputs) {
              const auto chunk =
                  static_cast<size_t>(std::min(n_inputs, len - c0));
              accumulate(dp, staged.view(static_cast<size_t>(c0), chunk),
                         cls.filters.view(stream_base + static_cast<size_t>(c0),
                                          chunk));
            }
            out.at(co, y, x) = readout(dp);
          }
        }
      });
  return out;
}

}  // namespace

ConvEngine::ConvEngine(const ConvEngineConfig& cfg)
    : cfg_(cfg),
      owned_pool_(std::make_unique<ThreadPool>(cfg.threads)),
      pool_(owned_pool_.get()) {
  units_.reserve(static_cast<size_t>(pool_->size()));
  for (int slot = 0; slot < pool_->size(); ++slot) {
    units_.push_back(make_datapath(cfg_.datapath));
  }
}

ConvEngine::ConvEngine(const ConvEngineConfig& cfg, ThreadPool& pool)
    : cfg_(cfg), pool_(&pool) {
  units_.reserve(static_cast<size_t>(pool_->size()));
  for (int slot = 0; slot < pool_->size(); ++slot) {
    units_.push_back(make_datapath(cfg_.datapath));
  }
}

Tensor ConvEngine::conv_fp16(const Tensor& input, const FilterBank& filters,
                             const ConvSpec& spec) {
  // Decode once, allocate never: each tensor is rounded to FP16 AND
  // decomposed into prepared SoA planes exactly once; the hot loop streams
  // plane views through fp16_accumulate_prepared.
  PreparedFp16 in_planes;
  in_planes.resize(input.data.size());
  for (size_t i = 0; i < input.data.size(); ++i) {
    in_planes.set(i, Fp16::from_double(input.data[i]));
  }
  PreparedFp16 flt_planes;
  flt_planes.resize(filters.data.size());
  for (size_t i = 0; i < filters.data.size(); ++i) {
    flt_planes.set(i, Fp16::from_double(filters.data[i]));
  }

  const bool to_fp16 = cfg_.accum == AccumKind::kFp16;
  return run_conv<PreparedFp16>(
      *pool_, units_, cfg_.datapath.n_inputs, input, filters, spec, in_planes,
      flt_planes,
      [](Datapath& dp, const PreparedFp16View& a, const PreparedFp16View& b) {
        dp.fp16_accumulate_prepared(a, b);
      },
      [to_fp16](Datapath& dp) {
        return to_fp16 ? dp.read_fp16().to_double() : dp.read_fp32().to_double();
      });
}

Tensor ConvEngine::conv_int(const Tensor& input, const FilterBank& filters,
                            const ConvSpec& spec, int a_bits, int w_bits) {
  // Hard check (not an assert): in a Release build a silently unsupported
  // scheme would otherwise yield an all-zero tensor with no diagnostic.
  if (!units_[0]->supports_int(a_bits, w_bits)) {
    std::fprintf(stderr,
                 "ConvEngine::conv_int: %s scheme does not support INT%dxINT%d\n",
                 scheme_name(cfg_.datapath.scheme), a_bits, w_bits);
    std::abort();
  }
  const QuantParams qa = fit_symmetric(input.data, a_bits);
  const QuantParams qw = fit_symmetric(filters.data, w_bits);

  // The bit-serial scheme streams raw values and never reads digit planes;
  // skip packing them on its tensors.
  const bool digits = cfg_.datapath.scheme != DecompositionScheme::kSerial;
  PreparedInt in_planes;
  in_planes.assign(quantize(input.data, qa), a_bits, false, digits);
  PreparedInt flt_planes;
  flt_planes.assign(quantize(filters.data, qw), w_bits, false, digits);

  return run_conv<PreparedInt>(
      *pool_, units_, cfg_.datapath.n_inputs, input, filters, spec, in_planes,
      flt_planes,
      [a_bits, w_bits](Datapath& dp, const PreparedIntView& a,
                       const PreparedIntView& b) {
        dp.int_accumulate_prepared(a, b, a_bits, w_bits);
      },
      [&qa, &qw](Datapath& dp) {
        return dequantize_accumulator(dp.read_int(), qa, qw);
      });
}

Tensor ConvEngine::dgrad_fp16(const Tensor& grad_out, const FilterBank& filters,
                              int fwd_pad) {
  const FilterBank t = transpose_for_dgrad(filters);
  ConvSpec spec;
  spec.stride = 1;
  spec.pad = filters.kh - 1 - fwd_pad;
  return conv_fp16(grad_out, t, spec);
}

DatapathStats ConvEngine::stats() const {
  DatapathStats total;
  for (const auto& u : units_) total += u->stats();
  return total;
}

}  // namespace mpipu
