#include "nn/conv_engine.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "nn/conv.h"
#include "workload/quantizer.h"

namespace mpipu {

namespace {

/// Patch geometry of one output pixel: for every in-bounds kernel tap, the
/// flat input index and the offset inside one output channel's filter
/// block, in the canonical ky -> kx -> ci gather order (the same order the
/// legacy single-threaded loop streamed operands in, so results stay
/// bit-identical).
struct PatchIndices {
  std::vector<int32_t> input;       ///< flat index into CHW input data
  std::vector<int32_t> filter_off;  ///< offset inside a [ci][kh][kw] block

  void build(const Tensor& input_t, const FilterBank& f, const ConvSpec& spec,
             int y, int x) {
    input.clear();
    filter_off.clear();
    for (int ky = 0; ky < f.kh; ++ky) {
      for (int kx = 0; kx < f.kw; ++kx) {
        const int iy = y * spec.stride + ky - spec.pad;
        const int ix = x * spec.stride + kx - spec.pad;
        if (iy < 0 || iy >= input_t.h || ix < 0 || ix >= input_t.w) continue;
        for (int ci = 0; ci < input_t.c; ++ci) {
          input.push_back(
              static_cast<int32_t>((static_cast<size_t>(ci) * input_t.h + iy) *
                                       static_cast<size_t>(input_t.w) +
                                   ix));
          filter_off.push_back(static_cast<int32_t>(
              (static_cast<size_t>(ci) * f.kh + ky) * static_cast<size_t>(f.kw) +
              kx));
        }
      }
    }
  }

  int size() const { return static_cast<int>(input.size()); }
};

/// The shared conv driver: gather each output pixel's operand stream from
/// pre-converted element buffers (the im2col batching), chunk it through a
/// per-slot datapath, and read one value per (co, y, x).  `accumulate` runs
/// one chunk on the datapath; `readout` extracts the finished pixel.
template <typename T, typename AccumulateFn, typename ReadoutFn>
Tensor run_conv(ThreadPool& pool, std::vector<std::unique_ptr<Datapath>>& units,
                int n_inputs, const Tensor& input, const FilterBank& filters,
                const ConvSpec& spec, const std::vector<T>& in_vals,
                const std::vector<T>& flt_vals, AccumulateFn&& accumulate,
                ReadoutFn&& readout) {
  assert(input.c == filters.cin);
  const int ho = spec.out_dim(input.h, filters.kh);
  const int wo = spec.out_dim(input.w, filters.kw);
  Tensor out(filters.cout, ho, wo);
  const size_t filter_block =
      static_cast<size_t>(filters.cin) * filters.kh * filters.kw;

  pool.parallel_for(
      static_cast<int64_t>(ho) * wo, [&](int64_t begin, int64_t end, int slot) {
        Datapath& dp = *units[static_cast<size_t>(slot)];
        PatchIndices patch;
        std::vector<T> pa, pb;
        for (int64_t p = begin; p < end; ++p) {
          const int y = static_cast<int>(p / wo);
          const int x = static_cast<int>(p % wo);
          patch.build(input, filters, spec, y, x);
          const int len = patch.size();
          pa.resize(static_cast<size_t>(len));
          pb.resize(static_cast<size_t>(len));
          for (int t = 0; t < len; ++t) {
            pa[static_cast<size_t>(t)] =
                in_vals[static_cast<size_t>(patch.input[static_cast<size_t>(t)])];
          }
          for (int co = 0; co < filters.cout; ++co) {
            const size_t base = static_cast<size_t>(co) * filter_block;
            for (int t = 0; t < len; ++t) {
              pb[static_cast<size_t>(t)] =
                  flt_vals[base + static_cast<size_t>(
                                      patch.filter_off[static_cast<size_t>(t)])];
            }
            dp.reset_accumulator();
            for (int c0 = 0; c0 < len; c0 += n_inputs) {
              const size_t chunk =
                  static_cast<size_t>(std::min(n_inputs, len - c0));
              accumulate(dp,
                         std::span<const T>(pa).subspan(static_cast<size_t>(c0), chunk),
                         std::span<const T>(pb).subspan(static_cast<size_t>(c0), chunk));
            }
            out.at(co, y, x) = readout(dp);
          }
        }
      });
  return out;
}

}  // namespace

ConvEngine::ConvEngine(const ConvEngineConfig& cfg)
    : cfg_(cfg),
      owned_pool_(std::make_unique<ThreadPool>(cfg.threads)),
      pool_(owned_pool_.get()) {
  units_.reserve(static_cast<size_t>(pool_->size()));
  for (int slot = 0; slot < pool_->size(); ++slot) {
    units_.push_back(make_datapath(cfg_.datapath));
  }
}

ConvEngine::ConvEngine(const ConvEngineConfig& cfg, ThreadPool& pool)
    : cfg_(cfg), pool_(&pool) {
  units_.reserve(static_cast<size_t>(pool_->size()));
  for (int slot = 0; slot < pool_->size(); ++slot) {
    units_.push_back(make_datapath(cfg_.datapath));
  }
}

Tensor ConvEngine::conv_fp16(const Tensor& input, const FilterBank& filters,
                             const ConvSpec& spec) {
  // im2col-style batching: round each tensor to FP16 exactly once.  The
  // legacy loop re-converted every input element for every output pixel
  // that touched it (kh*kw times on average).
  std::vector<Fp16> in16(input.data.size());
  for (size_t i = 0; i < input.data.size(); ++i) {
    in16[i] = Fp16::from_double(input.data[i]);
  }
  std::vector<Fp16> flt16(filters.data.size());
  for (size_t i = 0; i < filters.data.size(); ++i) {
    flt16[i] = Fp16::from_double(filters.data[i]);
  }

  const bool to_fp16 = cfg_.accum == AccumKind::kFp16;
  return run_conv<Fp16>(
      *pool_, units_, cfg_.datapath.n_inputs, input, filters, spec, in16, flt16,
      [](Datapath& dp, std::span<const Fp16> a, std::span<const Fp16> b) {
        dp.fp16_accumulate(a, b);
      },
      [to_fp16](Datapath& dp) {
        return to_fp16 ? dp.read_fp16().to_double() : dp.read_fp32().to_double();
      });
}

Tensor ConvEngine::conv_int(const Tensor& input, const FilterBank& filters,
                            const ConvSpec& spec, int a_bits, int w_bits) {
  // Hard check (not an assert): in a Release build a silently unsupported
  // scheme would otherwise yield an all-zero tensor with no diagnostic.
  if (!units_[0]->supports_int(a_bits, w_bits)) {
    std::fprintf(stderr,
                 "ConvEngine::conv_int: %s scheme does not support INT%dxINT%d\n",
                 scheme_name(cfg_.datapath.scheme), a_bits, w_bits);
    std::abort();
  }
  const QuantParams qa = fit_symmetric(input.data, a_bits);
  const QuantParams qw = fit_symmetric(filters.data, w_bits);
  const std::vector<int32_t> in_q = quantize(input.data, qa);
  const std::vector<int32_t> flt_q = quantize(filters.data, qw);

  return run_conv<int32_t>(
      *pool_, units_, cfg_.datapath.n_inputs, input, filters, spec, in_q, flt_q,
      [a_bits, w_bits](Datapath& dp, std::span<const int32_t> a,
                       std::span<const int32_t> b) {
        dp.int_accumulate(a, b, a_bits, w_bits);
      },
      [&qa, &qw](Datapath& dp) {
        return dequantize_accumulator(dp.read_int(), qa, qw);
      });
}

Tensor ConvEngine::dgrad_fp16(const Tensor& grad_out, const FilterBank& filters,
                              int fwd_pad) {
  const FilterBank t = transpose_for_dgrad(filters);
  ConvSpec spec;
  spec.stride = 1;
  spec.pad = filters.kh - 1 - fwd_pad;
  return conv_fp16(grad_out, t, spec);
}

DatapathStats ConvEngine::stats() const {
  DatapathStats total;
  for (const auto& u : units_) total += u->stats();
  return total;
}

}  // namespace mpipu
