#include "nn/elementwise.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace mpipu {
namespace {

std::string shape_str(const Tensor& t) {
  return std::to_string(t.c) + "x" + std::to_string(t.h) + "x" +
         std::to_string(t.w);
}

}  // namespace

Tensor tensor_add(const std::vector<const Tensor*>& parts) {
  if (parts.size() < 2) {
    throw std::invalid_argument("tensor_add: needs at least two operands");
  }
  const Tensor& first = *parts.front();
  Tensor out = first;
  for (size_t i = 1; i < parts.size(); ++i) {
    const Tensor& p = *parts[i];
    if (p.c != first.c || p.h != first.h || p.w != first.w) {
      throw std::invalid_argument("tensor_add: operand " + std::to_string(i) +
                                  " is " + shape_str(p) + " but operand 0 is " +
                                  shape_str(first));
    }
    for (size_t e = 0; e < out.data.size(); ++e) out.data[e] += p.data[e];
  }
  return out;
}

Tensor tensor_add(const Tensor& a, const Tensor& b) {
  return tensor_add(std::vector<const Tensor*>{&a, &b});
}

Tensor channel_concat(const std::vector<const Tensor*>& parts) {
  if (parts.size() < 2) {
    throw std::invalid_argument("channel_concat: needs at least two operands");
  }
  const Tensor& first = *parts.front();
  int c_total = 0;
  for (size_t i = 0; i < parts.size(); ++i) {
    const Tensor& p = *parts[i];
    if (p.h != first.h || p.w != first.w) {
      throw std::invalid_argument(
          "channel_concat: operand " + std::to_string(i) + " is " +
          shape_str(p) + " but operand 0 has spatial dims " +
          std::to_string(first.h) + "x" + std::to_string(first.w));
    }
    c_total += p.c;
  }
  Tensor out(c_total, first.h, first.w);
  size_t at = 0;
  for (const Tensor* p : parts) {
    std::copy(p->data.begin(), p->data.end(), out.data.begin() + static_cast<ptrdiff_t>(at));
    at += p->data.size();
  }
  return out;
}

Tensor row_concat(const std::vector<const Tensor*>& parts) {
  if (parts.size() < 2) {
    throw std::invalid_argument("row_concat: needs at least two operands");
  }
  const Tensor& first = *parts.front();
  int h_total = 0;
  for (size_t i = 0; i < parts.size(); ++i) {
    const Tensor& p = *parts[i];
    if (p.c != first.c || p.w != first.w) {
      throw std::invalid_argument(
          "row_concat: operand " + std::to_string(i) + " is " + shape_str(p) +
          " but operand 0 has " + std::to_string(first.c) + " channels x width " +
          std::to_string(first.w));
    }
    h_total += p.h;
  }
  Tensor out(first.c, h_total, first.w);
  // CHW layout: each channel's plane is the parts' row blocks in order, so
  // copy one (part, channel) row block at a time.
  for (int c = 0; c < first.c; ++c) {
    int y_at = 0;
    for (const Tensor* p : parts) {
      const size_t rows = static_cast<size_t>(p->h) * static_cast<size_t>(p->w);
      const auto src = p->data.begin() +
                       static_cast<ptrdiff_t>(static_cast<size_t>(c) * rows);
      std::copy(src, src + static_cast<ptrdiff_t>(rows),
                out.data.begin() +
                    static_cast<ptrdiff_t>(
                        (static_cast<size_t>(c) * h_total + y_at) *
                        static_cast<size_t>(first.w)));
      y_at += p->h;
    }
  }
  return out;
}

}  // namespace mpipu
