// Minimal dense CHW tensor used by the end-to-end agreement study (§3.1's
// accuracy experiment).  Host doubles are the "framework" representation;
// the datapath consumes FP16/INT views produced by explicit conversion.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "softfloat/softfloat.h"
#include "workload/distributions.h"

namespace mpipu {

struct Tensor {
  int c = 0, h = 0, w = 0;
  std::vector<double> data;  // CHW layout

  Tensor() = default;
  Tensor(int c_, int h_, int w_) : c(c_), h(h_), w(w_), data(size(), 0.0) {}

  size_t size() const {
    return static_cast<size_t>(c) * static_cast<size_t>(h) * static_cast<size_t>(w);
  }
  double& at(int ci, int hi, int wi) {
    assert(ci < c && hi < h && wi < w);
    return data[(static_cast<size_t>(ci) * static_cast<size_t>(h) + static_cast<size_t>(hi)) *
                    static_cast<size_t>(w) +
                static_cast<size_t>(wi)];
  }
  double at(int ci, int hi, int wi) const {
    return const_cast<Tensor*>(this)->at(ci, hi, wi);
  }

  /// Quantize every element to its nearest FP16 (the downcast a framework
  /// performs before feeding an FP16 datapath).
  Tensor rounded_to_fp16() const {
    Tensor t = *this;
    for (auto& v : t.data) v = Fp16::from_double(v).to_double();
    return t;
  }
};

/// 4-D filter bank: cout filters of cin x kh x kw.
struct FilterBank {
  int cout = 0, cin = 0, kh = 0, kw = 0;
  std::vector<double> data;  // [cout][cin][kh][kw]

  FilterBank() = default;
  FilterBank(int co, int ci, int kh_, int kw_)
      : cout(co), cin(ci), kh(kh_), kw(kw_),
        data(static_cast<size_t>(co) * static_cast<size_t>(ci) * static_cast<size_t>(kh_) *
                 static_cast<size_t>(kw_),
             0.0) {}

  double& at(int co, int ci, int y, int x) {
    return data[((static_cast<size_t>(co) * static_cast<size_t>(cin) + static_cast<size_t>(ci)) *
                     static_cast<size_t>(kh) +
                 static_cast<size_t>(y)) *
                    static_cast<size_t>(kw) +
                static_cast<size_t>(x)];
  }
  double at(int co, int ci, int y, int x) const {
    return const_cast<FilterBank*>(this)->at(co, ci, y, x);
  }

  FilterBank rounded_to_fp16() const {
    FilterBank f = *this;
    for (auto& v : f.data) v = Fp16::from_double(v).to_double();
    return f;
  }
};

Tensor random_tensor(Rng& rng, int c, int h, int w, ValueDist dist, double scale);
FilterBank random_filters(Rng& rng, int cout, int cin, int kh, int kw, ValueDist dist,
                          double scale);

}  // namespace mpipu
