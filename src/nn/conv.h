// Convolution executors: an exact host-double reference ("FP32 CPU") and
// bit-accurate paths that run every inner product through the datapath.
// Used by the §3.1 end-to-end agreement study and the examples.
//
// conv_ipu_fp16 / conv_ipu_int / dgrad_ipu_fp16 are retained for API
// compatibility as thin single-threaded wrappers over the scheme-generic
// ConvEngine (nn/conv_engine.h) configured for the temporal scheme; new
// code should drive ConvEngine directly.
#pragma once

#include <cstdint>

#include "core/ipu.h"
#include "nn/conv_engine.h"
#include "nn/tensor.h"
#include "workload/quantizer.h"

namespace mpipu {

struct ConvSpec {
  int stride = 1;
  int pad = 0;

  int out_dim(int in, int k) const { return (in + 2 * pad - k) / stride + 1; }
};

/// Exact reference convolution in host double ("FP32 CPU" stand-in; double
/// is a strict superset of FP32 for these magnitudes).
Tensor conv_reference(const Tensor& input, const FilterBank& filters,
                      const ConvSpec& spec);

/// Map the temporal scheme's IpuConfig onto the unified datapath config
/// (used by the legacy wrappers below and anything else still holding an
/// IpuConfig).
DatapathConfig datapath_config_from_ipu(const IpuConfig& cfg);

struct IpuConvStats {
  int64_t fp_ops = 0;
  int64_t cycles = 0;
};

/// Convolution with every inner product executed on the given IPU datapath:
/// inputs/weights are first rounded to FP16, partial sums accumulate in the
/// IPU accumulator and are rounded to the destination once per output pixel.
Tensor conv_ipu_fp16(const Tensor& input, const FilterBank& filters, const ConvSpec& spec,
                     const IpuConfig& ipu_cfg, AccumKind accum,
                     IpuConvStats* stats = nullptr);

/// Convolution with operands quantized to (a_bits, w_bits) integers and
/// executed on the IPU's INT mode; the result is dequantized to real values.
Tensor conv_ipu_int(const Tensor& input, const FilterBank& filters, const ConvSpec& spec,
                    const IpuConfig& ipu_cfg, int a_bits, int w_bits,
                    IpuConvStats* stats = nullptr);

/// Elementwise ReLU.
Tensor relu(const Tensor& t);
/// 2x2 max pool, stride 2.
Tensor maxpool2(const Tensor& t);

/// Rotate a filter bank for the data-gradient (backward) convolution:
/// dL/dx = conv(dL/dy, W^T) with W spatially flipped and cin/cout swapped.
FilterBank transpose_for_dgrad(const FilterBank& f);

/// Data-gradient convolution (stride-1 layers): given the output gradient,
/// compute the input gradient through the same datapath -- the backward-path
/// workload the paper studies in §4.3 / Fig. 9(b).  Pads by k-1 ("full"
/// convolution) so shapes invert conv with pad p = k-1-p_fwd.
Tensor dgrad_reference(const Tensor& grad_out, const FilterBank& filters, int fwd_pad);
Tensor dgrad_ipu_fp16(const Tensor& grad_out, const FilterBank& filters, int fwd_pad,
                      const IpuConfig& ipu_cfg, AccumKind accum,
                      IpuConvStats* stats = nullptr);

/// Output-agreement metrics between a datapath result and the reference.
struct AgreementStats {
  double max_abs_err = 0.0;
  double mean_abs_err = 0.0;
  double max_rel_err = 0.0;   ///< on elements with |ref| > 1e-6
  double snr_db = 0.0;        ///< signal-to-error ratio
  int64_t mismatched_fp16 = 0;  ///< elements whose FP16 rounding differs
  int64_t total = 0;
};

AgreementStats compare_outputs(const Tensor& test, const Tensor& reference);

}  // namespace mpipu
