// Scheme-generic, multi-threaded convolution engine.
//
// Rebuilds the single-threaded conv_ipu_* loops (src/nn/conv.h) on top of
// the unified `Datapath` interface so any convolution can run on any
// decomposition scheme (temporal / serial / spatial) through one config:
//
//   * prepared-operand pipeline (core/prepared.h): inputs and filters are
//     rounded to FP16 (or quantized to INT) AND decoded + nibble-decomposed
//     once, per tensor, into SoA planes -- never once per op;
//   * clip-class packing (nn/conv_plan.h): output pixels sharing one
//     in-bounds kernel window (all interior pixels, plus at most
//     (kh+1)*(kw+1) border shapes) share one im2col plan, and each class's
//     per-output-channel filter operand streams are packed into contiguous
//     prepared planes once, so the per-(pixel, co) inner loop is pure
//     streaming -- zero gathers, zero allocations, zero re-decodes (one
//     staging plane-copy per pixel covers the input side for all output
//     channels).  The engine builds this ConvPlan per call; compile-once
//     callers (api/compiled_model.h) build it per layer and share it;
//   * a fixed-size thread pool (src/common/thread_pool.h) parallelizes over
//     output pixels, with one private `Datapath` instance per worker slot;
//   * statistics reduce deterministically: every counter is a sum (or the
//     whole-run totals of pixels computed exactly once), so the aggregate
//     is identical for 1 thread and N threads, as is the output tensor
//     (each pixel is computed on a freshly reset accumulator).
//
// The legacy conv_ipu_fp16 / conv_ipu_int entry points are thin wrappers
// over this engine with scheme = temporal and threads = 1.
#pragma once

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "core/datapath.h"
#include "nn/tensor.h"

namespace mpipu {

struct ConvSpec;

/// Accumulation destination for the FP16 datapath convolution.
enum class AccumKind { kFp16, kFp32 };

struct ConvEngineConfig {
  /// Datapath every worker instantiates (scheme + shared knobs).
  DatapathConfig datapath{};
  /// Output rounding: FP16 or FP32 accumulation destination (§3.1).
  AccumKind accum = AccumKind::kFp32;
  /// Worker count; <= 0 selects std::thread::hardware_concurrency().
  int threads = 1;
};

class ConvEngine {
 public:
  /// Owns a private thread pool sized by cfg.threads.
  explicit ConvEngine(const ConvEngineConfig& cfg);
  /// Shares `pool` with other engines (e.g. a Session's engine pool);
  /// cfg.threads is ignored, one datapath is created per pool slot.  The
  /// pool must outlive the engine.
  ConvEngine(const ConvEngineConfig& cfg, ThreadPool& pool);

  const ConvEngineConfig& config() const { return cfg_; }
  int threads() const { return pool_->size(); }

  /// FP16 convolution: operands rounded to FP16 once, every inner product
  /// executed on the scheme's datapath, partial sums held in the datapath
  /// accumulator and rounded to the destination once per output pixel.
  Tensor conv_fp16(const Tensor& input, const FilterBank& filters,
                   const ConvSpec& spec);

  /// INT convolution: operands quantized to (a_bits, w_bits) symmetric
  /// integers, executed in the datapath's INT mode, dequantized on readout.
  /// Requires config().datapath to support INT at these widths (the
  /// spatial scheme is FP-only).
  Tensor conv_int(const Tensor& input, const FilterBank& filters,
                  const ConvSpec& spec, int a_bits, int w_bits);

  /// Data-gradient convolution through the same datapath (§4.3 workload).
  Tensor dgrad_fp16(const Tensor& grad_out, const FilterBank& filters,
                    int fwd_pad);

  /// Stats aggregated over all worker datapaths (deterministic: every
  /// counter is a sum over pixels, and each pixel is computed exactly once
  /// regardless of the thread count).
  ///
  /// CONTRACT: this engine's counters accumulate silently across calls --
  /// the legacy whole-lifetime view.  Callers wanting per-conv numbers must
  /// difference stats() around the call or reset_stats() between calls.
  /// The compile-once executors (api/compiled_model.h) have the other
  /// contract: fresh per-call scratch, so every RunReport's stats are
  /// per-call by construction.
  DatapathStats stats() const;

  /// Zero every counter (rebuilds the per-slot datapaths; numeric behaviour
  /// is unaffected -- units carry no cross-call numeric state).
  void reset_stats();

 private:
  ConvEngineConfig cfg_;
  std::unique_ptr<ThreadPool> owned_pool_;  ///< null when sharing a pool
  ThreadPool* pool_;
  /// One private datapath per worker slot (index = slot).
  std::vector<std::unique_ptr<Datapath>> units_;
};

}  // namespace mpipu
