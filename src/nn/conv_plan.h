// ConvPlan: the planning half of the convolution pipeline, split out of
// ConvEngine so it can be built once and shared immutably.
//
// A plan captures everything about one conv layer that does not depend on
// the activation values: the output geometry, the clip classes (in-bounds
// kernel-window shapes) with their base-relative input gather offsets, and
// -- the expensive part -- each class's per-output-channel *filter* operand
// streams packed into contiguous prepared planes (core/prepared.h).  PR 3
// built this per ConvEngine call; compile-once callers (api/compiled_model.h)
// build it once per layer at model-compile time and share it `const` across
// any number of concurrent executions.
//
// The execution half is stateless with respect to the plan: `run_conv_plan`
// streams per-call prepared activation planes against a `const` plan, using
// caller-supplied scratch (a thread pool plus one private Datapath per
// worker slot).  Nothing in the plan is written during execution, so one
// plan serves N threads and M concurrent calls; determinism and
// bit-exactness are inherited unchanged from the PR 3 hot loop this code
// was lifted from.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/datapath.h"
#include "nn/conv.h"
#include "nn/tensor.h"
#include "workload/quantizer.h"

namespace mpipu {

/// One in-bounds kernel-window shape ("clip class") and everything the
/// per-(pixel, co) loop needs for it, computed once per plan:
///
///   * `rel_input`: base-relative input offsets of the window's taps in the
///     canonical ky -> kx -> ci gather order (the same order the legacy
///     loop streamed operands in, so results stay bit-identical); a pixel's
///     absolute tap index is rel_input[t] + (iy0*W + ix0);
///   * `filters`: the per-output-channel filter operand streams, packed
///     into contiguous prepared planes (co's stream = [co*len, (co+1)*len))
///     -- the old loop re-gathered these len values for every single pixel.
///
/// Interior pixels all share one class; border pixels fall into at most
/// (kh+1) x (kw+1) distinct ky-range x kx-range combinations, so the
/// packing cost is a handful of filter-bank sweeps.
template <typename Planes>
struct ClipClass {
  std::vector<int32_t> rel_input;
  Planes filters;
  int len = 0;
};

/// Axis factorization of the clip classes: the in-bounds kernel range along
/// y depends only on y (likewise x), so class(y, x) = y_class[y] * nx +
/// x_class[x] over the cross product of distinct per-axis ranges.
struct AxisRanges {
  std::vector<int32_t> class_of;          // output coordinate -> range id
  std::vector<std::pair<int, int>> uniq;  // range id -> [k0, k1)

  void build(int out, int stride, int pad, int k, int in) {
    class_of.resize(static_cast<size_t>(out));
    uniq.clear();
    for (int o = 0; o < out; ++o) {
      const int i0 = o * stride - pad;
      const std::pair<int, int> r{std::max(0, -i0), std::min(k, in - i0)};
      size_t id = 0;
      while (id < uniq.size() && uniq[id] != r) ++id;
      if (id == uniq.size()) uniq.push_back(r);
      class_of[static_cast<size_t>(o)] = static_cast<int32_t>(id);
    }
  }
};

/// The immutable per-layer plan: geometry + clip classes + packed filter
/// streams for one (filter bank, conv spec, input dims) triple.  Built once
/// (build()), then only read -- safe to share `const` across threads.
template <typename Planes>
struct ConvPlan {
  int in_c = 0, in_h = 0, in_w = 0;  ///< activation dims the plan was built for
  int ho = 0, wo = 0, cout = 0;      ///< conv output geometry
  int stride = 1, pad = 0;
  std::vector<ClipClass<Planes>> classes;
  AxisRanges ys, xs;

  int class_of(int y, int x) const {
    return ys.class_of[static_cast<size_t>(y)] *
               static_cast<int>(xs.uniq.size()) +
           xs.class_of[static_cast<size_t>(x)];
  }

  void build(int input_c, int input_h, int input_w, const FilterBank& f,
             const ConvSpec& spec, const Planes& flt_planes) {
    assert(input_c == f.cin);
    in_c = input_c;
    in_h = input_h;
    in_w = input_w;
    ho = spec.out_dim(input_h, f.kh);
    wo = spec.out_dim(input_w, f.kw);
    cout = f.cout;
    stride = spec.stride;
    pad = spec.pad;
    ys.build(ho, spec.stride, spec.pad, f.kh, input_h);
    xs.build(wo, spec.stride, spec.pad, f.kw, input_w);
    const size_t filter_block =
        static_cast<size_t>(f.cin) * f.kh * f.kw;
    classes.clear();
    classes.resize(ys.uniq.size() * xs.uniq.size());
    std::vector<int32_t> rel_filter;
    for (size_t yr = 0; yr < ys.uniq.size(); ++yr) {
      for (size_t xr = 0; xr < xs.uniq.size(); ++xr) {
        ClipClass<Planes>& cls = classes[yr * xs.uniq.size() + xr];
        rel_filter.clear();
        for (int ky = ys.uniq[yr].first; ky < ys.uniq[yr].second; ++ky) {
          for (int kx = xs.uniq[xr].first; kx < xs.uniq[xr].second; ++kx) {
            for (int ci = 0; ci < input_c; ++ci) {
              cls.rel_input.push_back(static_cast<int32_t>(
                  (static_cast<size_t>(ci) * input_h + ky) *
                      static_cast<size_t>(input_w) +
                  kx));
              rel_filter.push_back(static_cast<int32_t>(
                  (static_cast<size_t>(ci) * f.kh + ky) *
                      static_cast<size_t>(f.kw) +
                  kx));
            }
          }
        }
        cls.len = static_cast<int>(cls.rel_input.size());
        cls.filters.match_layout(flt_planes);
        cls.filters.resize(static_cast<size_t>(cls.len) * f.cout);
        for (int co = 0; co < f.cout; ++co) {
          cls.filters.gather(flt_planes, rel_filter,
                             static_cast<int64_t>(co) * static_cast<int64_t>(filter_block),
                             static_cast<size_t>(co) * static_cast<size_t>(cls.len));
        }
      }
    }
  }
};

/// The stateless conv executor over a const plan and prepared activation
/// planes, restricted to the output shard [co_begin, co_end) x
/// [y_begin, y_end) (x is never split -- rows are the spatial shard unit).
/// Per pixel, one plane-copy gather stages the input patch (shared across
/// the shard's output channels); per (pixel, co) the inner loop is
/// contiguous streaming over the staged input and the clip class's packed
/// filter stream -- zero gathers, zero allocations, zero re-decodes.
/// `accumulate` runs one <= n_inputs chunk on the datapath; `readout`
/// extracts the finished pixel.  All mutable state lives in the caller's
/// scratch (`pool` + one private `Datapath` per worker slot + per-slot
/// staging planes), so concurrent calls against the same plan never
/// interfere.  Every output element's accumulate sequence depends only on
/// its own (co, y, x) -- the datapath accumulator is reset per (pixel, co)
/// -- so a shard computes exactly the bytes the full-range call would, and
/// concatenating shards reproduces the unsharded output bit for bit.
///
/// The returned tensor holds only the shard: (co_end-co_begin) channels x
/// (y_end-y_begin) rows x wo cols.
template <typename Planes, typename AccumulateFn, typename ReadoutFn>
Tensor run_conv_plan_shard(const ConvPlan<Planes>& plan,
                           const Planes& in_planes, ThreadPool& pool,
                           std::span<const std::unique_ptr<Datapath>> units,
                           int n_inputs, int co_begin, int co_end, int y_begin,
                           int y_end, AccumulateFn&& accumulate,
                           ReadoutFn&& readout) {
  assert(static_cast<int>(units.size()) >= pool.size());
  assert(0 <= co_begin && co_begin <= co_end && co_end <= plan.cout);
  assert(0 <= y_begin && y_begin <= y_end && y_end <= plan.ho);
  const int rows = y_end - y_begin;
  const int wo = plan.wo;
  Tensor out(co_end - co_begin, rows, wo);

  pool.parallel_for(
      static_cast<int64_t>(rows) * wo,
      [&](int64_t begin, int64_t end, int slot) {
        Datapath& dp = *units[static_cast<size_t>(slot)];
        Planes staged;  // per-slot staging planes, reused across pixels
        staged.match_layout(in_planes);
        for (int64_t p = begin; p < end; ++p) {
          const int y = y_begin + static_cast<int>(p / wo);
          const int x = static_cast<int>(p % wo);
          const ClipClass<Planes>& cls =
              plan.classes[static_cast<size_t>(plan.class_of(y, x))];
          const int len = cls.len;
          const int64_t base =
              static_cast<int64_t>(y * plan.stride - plan.pad) * plan.in_w +
              (x * plan.stride - plan.pad);
          staged.resize(static_cast<size_t>(len));
          staged.gather(in_planes, cls.rel_input, base);
          for (int co = co_begin; co < co_end; ++co) {
            const auto stream_base =
                static_cast<size_t>(co) * static_cast<size_t>(len);
            dp.reset_accumulator();
            for (int c0 = 0; c0 < len; c0 += n_inputs) {
              const auto chunk =
                  static_cast<size_t>(std::min(n_inputs, len - c0));
              accumulate(dp, staged.view(static_cast<size_t>(c0), chunk),
                         cls.filters.view(stream_base + static_cast<size_t>(c0),
                                          chunk));
            }
            out.at(co - co_begin, y - y_begin, x) = readout(dp);
          }
        }
      });
  return out;
}

/// Full-range executor: the shard executor over the whole output.  The
/// pixel index space and per-(pixel, co) operand streams are identical to
/// the pre-shard loop, so this stays bit-identical to PR 3 by construction.
template <typename Planes, typename AccumulateFn, typename ReadoutFn>
Tensor run_conv_plan(const ConvPlan<Planes>& plan, const Planes& in_planes,
                     ThreadPool& pool,
                     std::span<const std::unique_ptr<Datapath>> units,
                     int n_inputs, AccumulateFn&& accumulate,
                     ReadoutFn&& readout) {
  return run_conv_plan_shard(plan, in_planes, pool, units, n_inputs, 0,
                             plan.cout, 0, plan.ho,
                             std::forward<AccumulateFn>(accumulate),
                             std::forward<ReadoutFn>(readout));
}

// ---------------------------------------------------------------------------
// Concrete plan builders / executors shared by ConvEngine (plan-per-call)
// and CompiledModel (plan-per-model).  Keeping both callers on these exact
// functions is what makes compile-once execution bit-identical to the
// engine path by construction.
// ---------------------------------------------------------------------------

/// Round a double tensor to FP16 and decode + nibble-decompose it into
/// prepared SoA planes (exactly once).
PreparedFp16 prepare_fp16_planes(std::span<const double> values);

/// Quantize a double tensor to `params` and pack prepared INT planes.
/// `with_digits` = false skips the radix-16 digit planes (the bit-serial
/// scheme streams raw values and never reads them).
PreparedInt prepare_int_planes(std::span<const double> values,
                               const QuantParams& params, bool with_digits);

/// FP16 plan executor: every inner product on the scheme datapath, partial
/// sums in the datapath accumulator, rounded to `accum` once per pixel.
Tensor execute_fp16_plan(const ConvPlan<PreparedFp16>& plan,
                         const PreparedFp16& in_planes, ThreadPool& pool,
                         std::span<const std::unique_ptr<Datapath>> units,
                         int n_inputs, AccumKind accum);

/// INT plan executor: quantized operands through the datapath's INT mode,
/// dequantized on readout with the two quant scales.
Tensor execute_int_plan(const ConvPlan<PreparedInt>& plan,
                        const PreparedInt& in_planes, ThreadPool& pool,
                        std::span<const std::unique_ptr<Datapath>> units,
                        int n_inputs, int a_bits, int w_bits,
                        const QuantParams& qa, const QuantParams& qw);

/// Shard executors: the same loops restricted to [co_begin, co_end) x
/// [y_begin, y_end).  Used by CompiledModel's host-sharded mode
/// (RunSpec.partition.shard_host); concatenating the shard outputs is
/// byte-identical to the full executor above (see run_conv_plan_shard).
Tensor execute_fp16_plan_shard(const ConvPlan<PreparedFp16>& plan,
                               const PreparedFp16& in_planes, ThreadPool& pool,
                               std::span<const std::unique_ptr<Datapath>> units,
                               int n_inputs, AccumKind accum, int co_begin,
                               int co_end, int y_begin, int y_end);

Tensor execute_int_plan_shard(const ConvPlan<PreparedInt>& plan,
                              const PreparedInt& in_planes, ThreadPool& pool,
                              std::span<const std::unique_ptr<Datapath>> units,
                              int n_inputs, int a_bits, int w_bits,
                              const QuantParams& qa, const QuantParams& qw,
                              int co_begin, int co_end, int y_begin,
                              int y_end);

}  // namespace mpipu
