// Elementwise joining ops for graph-structured models (api/graph_model.h):
// the two ways the paper's study networks merge branches -- ResNet's
// residual ADD (He et al. 2016) and Inception's channel CONCAT (Szegedy et
// al. 2016).
//
// Both execute in exact host-double arithmetic, on the datapath path AND on
// the FP32 reference chain: the paper's approximation lives entirely in the
// inner products (nibble-decomposed FP16 / INT through the IPU), so joins
// contribute no error of their own and the per-branch error metrics compose
// transparently through them.  Deterministic by construction: add sums its
// operands in argument order, concat stacks channels in argument order.
#pragma once

#include <vector>

#include "nn/tensor.h"

namespace mpipu {

/// Elementwise sum of two or more same-shape tensors (the residual join).
/// Operands are summed left to right in `parts` order, so the result is
/// bit-deterministic.  Throws std::invalid_argument on a shape mismatch or
/// fewer than two operands.
Tensor tensor_add(const std::vector<const Tensor*>& parts);

/// Two-operand convenience overload: a + b.
Tensor tensor_add(const Tensor& a, const Tensor& b);

/// Channel concatenation of two or more tensors sharing (h, w) -- the
/// Inception branch join.  Channels stack in `parts` order.  Throws
/// std::invalid_argument on a spatial mismatch or fewer than two operands.
Tensor channel_concat(const std::vector<const Tensor*>& parts);

/// Row concatenation of two or more tensors sharing (c, w): the join for
/// spatial-row shards (sim/partition.h kSpatialRows).  Rows stack along h
/// in `parts` order; because tensors are CHW, each output channel plane
/// interleaves one row block per part (not a flat copy).  Throws
/// std::invalid_argument on a channel/width mismatch or fewer than two
/// operands.
Tensor row_concat(const std::vector<const Tensor*>& parts);

}  // namespace mpipu
