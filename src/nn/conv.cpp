#include "nn/conv.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mpipu {

Tensor random_tensor(Rng& rng, int c, int h, int w, ValueDist dist, double scale) {
  Tensor t(c, h, w);
  for (auto& v : t.data) v = sample_value(rng, dist, scale);
  return t;
}

FilterBank random_filters(Rng& rng, int cout, int cin, int kh, int kw, ValueDist dist,
                          double scale) {
  FilterBank f(cout, cin, kh, kw);
  for (auto& v : f.data) v = sample_value(rng, dist, scale);
  return f;
}

Tensor conv_reference(const Tensor& input, const FilterBank& filters,
                      const ConvSpec& spec) {
  assert(input.c == filters.cin);
  const int ho = spec.out_dim(input.h, filters.kh);
  const int wo = spec.out_dim(input.w, filters.kw);
  Tensor out(filters.cout, ho, wo);
  for (int co = 0; co < filters.cout; ++co) {
    for (int y = 0; y < ho; ++y) {
      for (int x = 0; x < wo; ++x) {
        double acc = 0.0;
        for (int ci = 0; ci < input.c; ++ci) {
          for (int ky = 0; ky < filters.kh; ++ky) {
            for (int kx = 0; kx < filters.kw; ++kx) {
              const int iy = y * spec.stride + ky - spec.pad;
              const int ix = x * spec.stride + kx - spec.pad;
              if (iy < 0 || iy >= input.h || ix < 0 || ix >= input.w) continue;
              acc += input.at(ci, iy, ix) * filters.at(co, ci, ky, kx);
            }
          }
        }
        out.at(co, y, x) = acc;
      }
    }
  }
  return out;
}

DatapathConfig datapath_config_from_ipu(const IpuConfig& cfg) {
  DatapathConfig d;
  d.scheme = DecompositionScheme::kTemporal;
  d.n_inputs = cfg.n_inputs;
  d.adder_tree_width = cfg.adder_tree_width;
  d.software_precision = cfg.software_precision;
  d.multi_cycle = cfg.multi_cycle;
  d.skip_empty_bands = cfg.skip_empty_bands;
  d.skip_zero_iterations = cfg.skip_zero_iterations;
  d.accumulator = cfg.accumulator;
  return d;
}

Tensor conv_ipu_fp16(const Tensor& input, const FilterBank& filters, const ConvSpec& spec,
                     const IpuConfig& ipu_cfg, AccumKind accum, IpuConvStats* stats) {
  ConvEngineConfig ec;
  ec.datapath = datapath_config_from_ipu(ipu_cfg);
  ec.accum = accum;
  ec.threads = 1;
  ConvEngine engine(ec);
  Tensor out = engine.conv_fp16(input, filters, spec);
  if (stats != nullptr) {
    stats->fp_ops = engine.stats().fp_ops;
    stats->cycles = engine.stats().cycles;
  }
  return out;
}

Tensor conv_ipu_int(const Tensor& input, const FilterBank& filters, const ConvSpec& spec,
                    const IpuConfig& ipu_cfg, int a_bits, int w_bits,
                    IpuConvStats* stats) {
  ConvEngineConfig ec;
  ec.datapath = datapath_config_from_ipu(ipu_cfg);
  ec.threads = 1;
  ConvEngine engine(ec);
  Tensor out = engine.conv_int(input, filters, spec, a_bits, w_bits);
  if (stats != nullptr) {
    stats->fp_ops = engine.stats().int_ops;
    stats->cycles = engine.stats().cycles;
  }
  return out;
}

Tensor relu(const Tensor& t) {
  Tensor out = t;
  for (auto& v : out.data) v = std::max(v, 0.0);
  return out;
}

Tensor maxpool2(const Tensor& t) {
  Tensor out(t.c, t.h / 2, t.w / 2);
  for (int c = 0; c < t.c; ++c) {
    for (int y = 0; y < out.h; ++y) {
      for (int x = 0; x < out.w; ++x) {
        out.at(c, y, x) = std::max(std::max(t.at(c, 2 * y, 2 * x), t.at(c, 2 * y, 2 * x + 1)),
                                   std::max(t.at(c, 2 * y + 1, 2 * x), t.at(c, 2 * y + 1, 2 * x + 1)));
      }
    }
  }
  return out;
}

FilterBank transpose_for_dgrad(const FilterBank& f) {
  FilterBank t(f.cin, f.cout, f.kh, f.kw);
  for (int co = 0; co < f.cout; ++co) {
    for (int ci = 0; ci < f.cin; ++ci) {
      for (int y = 0; y < f.kh; ++y) {
        for (int x = 0; x < f.kw; ++x) {
          t.at(ci, co, f.kh - 1 - y, f.kw - 1 - x) = f.at(co, ci, y, x);
        }
      }
    }
  }
  return t;
}

namespace {

ConvSpec dgrad_spec(const FilterBank& f, int fwd_pad) {
  ConvSpec s;
  s.stride = 1;
  s.pad = f.kh - 1 - fwd_pad;
  return s;
}

}  // namespace

Tensor dgrad_reference(const Tensor& grad_out, const FilterBank& filters, int fwd_pad) {
  const FilterBank t = transpose_for_dgrad(filters);
  return conv_reference(grad_out, t, dgrad_spec(filters, fwd_pad));
}

Tensor dgrad_ipu_fp16(const Tensor& grad_out, const FilterBank& filters, int fwd_pad,
                      const IpuConfig& ipu_cfg, AccumKind accum, IpuConvStats* stats) {
  const FilterBank t = transpose_for_dgrad(filters);
  return conv_ipu_fp16(grad_out, t, dgrad_spec(filters, fwd_pad), ipu_cfg, accum, stats);
}

AgreementStats compare_outputs(const Tensor& test, const Tensor& reference) {
  assert(test.size() == reference.size());
  AgreementStats s;
  s.total = static_cast<int64_t>(test.size());
  double err_energy = 0.0, sig_energy = 0.0, abs_sum = 0.0;
  for (size_t i = 0; i < test.data.size(); ++i) {
    const double e = test.data[i] - reference.data[i];
    const double r = reference.data[i];
    s.max_abs_err = std::max(s.max_abs_err, std::fabs(e));
    abs_sum += std::fabs(e);
    if (std::fabs(r) > 1e-6) s.max_rel_err = std::max(s.max_rel_err, std::fabs(e / r));
    err_energy += e * e;
    sig_energy += r * r;
    if (Fp16::from_double(test.data[i]).raw_bits() != Fp16::from_double(r).raw_bits()) {
      ++s.mismatched_fp16;
    }
  }
  s.mean_abs_err = abs_sum / static_cast<double>(test.size());
  s.snr_db = err_energy == 0.0
                 ? 300.0
                 : 10.0 * std::log10(sig_energy / err_energy);
  return s;
}

}  // namespace mpipu
