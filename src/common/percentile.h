// Nearest-rank percentiles and latency summaries -- the ONE definition
// every serving report in the repo uses (ServerMetrics in src/serve, the
// serving benches via bench/bench_util.h).
//
// Nearest-rank: for integer percent p in (0, 100], the value at 1-based
// rank ceil(p/100 * n) of the ascending-sorted sample.  Integer arithmetic
// throughout -- ceil(0.95 * 20) computed in doubles lands on 19.0000...02
// and rounds the rank UP, silently reporting the max instead of the 19th
// value; (n*p + 99)/100 cannot.  For tiny samples the high percentiles
// degenerate to the max, which nearest-rank defines them to be.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace mpipu {

/// Percentile of an ascending-sorted, non-empty sample (0.0 when empty).
/// `pct` is an integer percent in (0, 100].
inline double percentile_nearest_rank_sorted(const std::vector<double>& sorted,
                                             int pct) {
  if (sorted.empty()) return 0.0;
  const size_t n = sorted.size();
  size_t rank = (n * static_cast<size_t>(pct) + 99) / 100;
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

/// The latency digest every serving surface reports: count, mean, and the
/// nearest-rank p50/p95/p99 tail.
struct LatencySummary {
  size_t count = 0;
  double mean_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double max_s = 0.0;
};

/// Summarize a sample of latencies (seconds).  Takes the samples by value:
/// the summary sorts its own copy, leaving the caller's recording order
/// intact.
inline LatencySummary summarize_latencies(std::vector<double> samples) {
  LatencySummary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean_s = sum / static_cast<double>(samples.size());
  s.p50_s = percentile_nearest_rank_sorted(samples, 50);
  s.p95_s = percentile_nearest_rank_sorted(samples, 95);
  s.p99_s = percentile_nearest_rank_sorted(samples, 99);
  s.max_s = samples.back();
  return s;
}

}  // namespace mpipu
