// Virtual clock: the ONE time source of the serving layer.
//
// Deadline shedding, circuit-breaker cooldowns, watchdog stall budgets and
// client retry backoff are all "compare now() against a budget" logic.
// Against the real clock those tests are either slow (sleep through real
// cooldowns) or flaky (assert that N milliseconds "should" have passed on
// an arbitrarily loaded CI box).  Everything in src/serve therefore reads
// time through this interface: production uses real_clock() (steady,
// monotonic), tests plug a ManualClock whose time only moves when the test
// advances it -- a 30 s breaker cooldown elapses in one advance() call,
// deterministically.
//
// sleep_for() belongs to the same interface because backoff and fault
// delays are "spend this much time": under ManualClock a sleep advances
// virtual time instantly instead of stalling the test.
//
// NOT virtualized: condition-variable waits (the batching window's linger
// uses the real cv clock -- waking a cv on virtual-time advance would need
// a scheduler, not a clock).  Code mixing a cv wait with deadline checks
// reads the deadline through the Clock and only uses real time for the
// wait itself.
#pragma once

#include <atomic>
#include <chrono>
#include <thread>

namespace mpipu {

class Clock {
 public:
  virtual ~Clock() = default;
  /// Seconds from an arbitrary fixed origin; monotonic, never decreases.
  virtual double now() = 0;
  /// Block the caller for `seconds` of THIS clock's time.
  virtual void sleep_for(double seconds) = 0;
};

/// The production clock: std::chrono::steady_clock.  Stateless; one shared
/// instance serves every caller.
class SteadyClock final : public Clock {
 public:
  double now() override {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  void sleep_for(double seconds) override {
    if (seconds <= 0.0) return;
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
};

inline Clock& real_clock() {
  static SteadyClock clock;
  return clock;
}

/// Test clock: time moves only when advance()d (or via sleep_for, which
/// advances instead of blocking).  Thread-safe -- serving workers read
/// now() while the test thread advances.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(double start = 0.0) : t_(start) {}

  double now() override { return t_.load(std::memory_order_acquire); }

  void sleep_for(double seconds) override { advance(seconds); }

  void advance(double seconds) {
    if (seconds <= 0.0) return;
    double cur = t_.load(std::memory_order_relaxed);
    while (!t_.compare_exchange_weak(cur, cur + seconds,
                                     std::memory_order_acq_rel)) {
    }
  }

 private:
  std::atomic<double> t_;
};

}  // namespace mpipu
