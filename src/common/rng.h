// Deterministic, seedable random number generation for workload synthesis.
//
// A thin wrapper over std::mt19937_64 so every experiment in the repo is
// reproducible from a single seed, plus the distribution families the paper
// uses for its numerical analysis (Laplace, Normal, Uniform) and a log-scale
// "wide dynamic range" family used to emulate backward-pass tensors.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>

namespace mpipu {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed1234ULL) : gen_(seed) {}

  uint64_t next_u64() { return gen_(); }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t uniform_int(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(gen_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }

  /// Laplace(mu, b) via inverse CDF.
  double laplace(double mu, double b) {
    const double u = uniform(-0.5, 0.5);
    return mu - b * std::copysign(1.0, u) * std::log1p(-2.0 * std::fabs(u));
  }

  /// Sign-symmetric log-uniform magnitude: |x| = 2^U(e_lo, e_hi).  Produces
  /// the wide exponent spread characteristic of back-propagated gradients
  /// (paper Fig. 9(b)).
  double log_uniform_signed(double e_lo, double e_hi) {
    const double mag = std::exp2(uniform(e_lo, e_hi));
    return (gen_() & 1) ? mag : -mag;
  }

  bool bernoulli(double p) { return std::bernoulli_distribution(p)(gen_); }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace mpipu
