// A small signed fixed-point value type used by the exact FP-IP reference
// model and by the accumulator emulation.
//
// Values are (mantissa, lsb_exponent): value = mantissa * 2^lsb_exp.
// All arithmetic is exact unless an explicit truncating operation is called,
// mirroring how the datapath only loses bits at architecturally defined
// truncation points.
#pragma once

#include <algorithm>
#include <cassert>

#include "common/bits.h"

namespace mpipu {

class FixedPoint {
 public:
  constexpr FixedPoint() = default;
  constexpr FixedPoint(int128 mantissa, int lsb_exp) : m_(mantissa), e_(lsb_exp) {}

  constexpr int128 mantissa() const { return m_; }
  constexpr int lsb_exp() const { return e_; }
  constexpr bool is_zero() const { return m_ == 0; }

  /// Canonical form: strip trailing zero bits from the mantissa (raises the
  /// LSB exponent).  Keeps intermediate widths minimal so exact sums of
  /// values with wildly different scales still fit 128 bits.
  constexpr FixedPoint normalized() const {
    if (m_ == 0) return {0, 0};
    int128 m = m_;
    int e = e_;
    while ((m & 1) == 0) {
      m >>= 1;
      ++e;
    }
    return {m, e};
  }

  /// Exact re-expression with a lower LSB exponent (left shift of mantissa).
  constexpr FixedPoint with_lsb(int new_lsb) const {
    if (m_ == 0) return {0, new_lsb};
    assert(new_lsb <= e_);
    const int shift = e_ - new_lsb;
    assert(magnitude_bits(m_) + shift <= 126);
    return {shl(m_, shift), new_lsb};
  }

  /// Truncating re-expression with a higher LSB exponent: bits below the new
  /// LSB are discarded (arithmetic shift right, floors toward -inf).
  constexpr FixedPoint truncated_to_lsb(int new_lsb) const {
    if (new_lsb <= e_) return with_lsb(new_lsb);
    return {asr(m_, new_lsb - e_), new_lsb};
  }

  /// Exact addition; operands are normalized first so the aligned mantissas
  /// stay as narrow as possible.
  friend constexpr FixedPoint operator+(const FixedPoint& a, const FixedPoint& b) {
    const FixedPoint an = a.normalized(), bn = b.normalized();
    if (an.m_ == 0) return bn;
    if (bn.m_ == 0) return an;
    const int lsb = std::min(an.e_, bn.e_);
    return {an.with_lsb(lsb).m_ + bn.with_lsb(lsb).m_, lsb};
  }

  friend constexpr FixedPoint operator-(const FixedPoint& a, const FixedPoint& b) {
    return a + FixedPoint(-b.m_, b.e_);
  }

  friend constexpr bool operator==(const FixedPoint& a, const FixedPoint& b) {
    const FixedPoint an = a.normalized(), bn = b.normalized();
    return an.m_ == bn.m_ && (an.m_ == 0 || an.e_ == bn.e_);
  }

  /// Exact conversion to double when representable; used by analysis only.
  double to_double_value() const {
    double d = to_double(m_);
    int e = e_;
    while (e > 0) { d *= 2.0; --e; }
    while (e < 0) { d *= 0.5; ++e; }
    return d;
  }

 private:
  int128 m_ = 0;
  int e_ = 0;
};

}  // namespace mpipu
