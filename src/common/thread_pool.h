// Fixed-size thread pool with a deterministic parallel-for.
//
// Workers are started once and reused across calls; `parallel_for` splits
// an index range into one contiguous slice per worker slot so the work a
// slot executes depends only on (range, pool size) -- never on scheduling.
// Slot 0 runs on the calling thread, so a pool of size 1 adds no threading
// overhead at all (the body runs inline) and results are trivially
// identical to a sequential loop.
//
// Lock discipline (compile-time checked, common/annotated_mutex.h): the
// job descriptor (job_, job_total_, pending_, generation_, stop_) is
// guarded by mu_; workers sleep on work_ready_, the caller sleeps on
// work_done_.  parallel_for is NOT reentrant -- one job at a time.
#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotated_mutex.h"

namespace mpipu {

class ThreadPool {
 public:
  /// `num_threads` <= 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads) {
    if (num_threads <= 0) {
      num_threads = static_cast<int>(std::thread::hardware_concurrency());
      if (num_threads <= 0) num_threads = 1;
    }
    size_ = num_threads;
    workers_.reserve(static_cast<size_t>(size_ - 1));
    for (int slot = 1; slot < size_; ++slot) {
      workers_.emplace_back([this, slot] { worker_loop(slot); });
    }
  }

  ~ThreadPool() {
    {
      MutexLock lock(mu_);
      stop_ = true;
    }
    work_ready_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return size_; }

  /// Run `body(begin, end, slot)` over a static partition of [0, total):
  /// slot s gets the contiguous slice [s*total/size, (s+1)*total/size).
  /// Blocks until every slice is done.  Slot 0 executes on the caller.
  void parallel_for(int64_t total,
                    const std::function<void(int64_t, int64_t, int)>& body)
      MPIPU_EXCLUDES(mu_) {
    if (total <= 0) return;
    if (size_ == 1) {
      body(0, total, 0);
      return;
    }
    {
      MutexLock lock(mu_);
      job_ = &body;
      job_total_ = total;
      pending_ = size_ - 1;
      ++generation_;
    }
    work_ready_.notify_all();
    run_slice(total, 0, body);
    UniqueLock lock(mu_);
    work_done_.wait(lock, [this]() MPIPU_REQUIRES(mu_) {
      return pending_ == 0;
    });
    job_ = nullptr;
  }

 private:
  void run_slice(int64_t total, int slot,
                 const std::function<void(int64_t, int64_t, int)>& body) {
    const int64_t begin = total * slot / size_;
    const int64_t end = total * (slot + 1) / size_;
    if (begin < end) body(begin, end, slot);
  }

  void worker_loop(int slot) MPIPU_EXCLUDES(mu_) {
    uint64_t seen = 0;
    for (;;) {
      const std::function<void(int64_t, int64_t, int)>* job = nullptr;
      int64_t total = 0;
      {
        UniqueLock lock(mu_);
        work_ready_.wait(lock, [&]() MPIPU_REQUIRES(mu_) {
          return stop_ || generation_ != seen;
        });
        if (stop_) return;
        seen = generation_;
        job = job_;
        total = job_total_;
      }
      run_slice(total, slot, *job);
      {
        MutexLock lock(mu_);
        if (--pending_ == 0) work_done_.notify_all();
      }
    }
  }

  int size_ = 1;
  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar work_ready_;
  CondVar work_done_;
  const std::function<void(int64_t, int64_t, int)>* job_
      MPIPU_GUARDED_BY(mu_) = nullptr;
  int64_t job_total_ MPIPU_GUARDED_BY(mu_) = 0;
  int pending_ MPIPU_GUARDED_BY(mu_) = 0;
  uint64_t generation_ MPIPU_GUARDED_BY(mu_) = 0;
  bool stop_ MPIPU_GUARDED_BY(mu_) = false;
};

}  // namespace mpipu
