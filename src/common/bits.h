// Bit-manipulation utilities used throughout the bit-accurate datapath model.
//
// The datapath emulation (src/core) needs exact, well-defined semantics for
// the operations real RTL performs: arithmetic right shifts with truncation,
// sign extension of arbitrary-width fields, leading-zero / leading-sign
// counts, and width-bounded wrap-around.  Everything here is constexpr and
// branch-light so the simulator stays fast.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace mpipu {

/// 128-bit signed integer used wherever the paper's worst-case widths
/// (80-bit aligned products, 58-bit shifts) exceed 64 bits.
using int128 = __int128;
using uint128 = unsigned __int128;

/// Number of bits in a type.
template <typename T>
inline constexpr int kBitWidth = static_cast<int>(sizeof(T) * 8);

/// Arithmetic shift right that is well defined for any shift in [0, 127].
/// Shifting a negative value floors toward -inf, exactly like a hardware
/// arithmetic shifter discarding the bits pushed past the LSB.
constexpr int128 asr(int128 v, int shift) {
  assert(shift >= 0);
  if (shift >= 127) return v < 0 ? -1 : 0;
  return v >> shift;
}

/// Logical shift left; asserts the result is representable (no silent UB).
constexpr int128 shl(int128 v, int shift) {
  assert(shift >= 0 && shift < 127);
  return static_cast<int128>(static_cast<uint128>(v) << shift);
}

/// Sign-extend the low `width` bits of `v` (width in [1,128]).
constexpr int128 sign_extend(int128 v, int width) {
  assert(width >= 1 && width <= 128);
  if (width == 128) return v;
  const int s = 128 - width;
  return static_cast<int128>(static_cast<uint128>(v) << s) >> s;
}

/// Mask of the low `n` bits (n in [0,128]).
constexpr uint128 low_mask(int n) {
  assert(n >= 0 && n <= 128);
  if (n == 128) return ~uint128{0};
  return (uint128{1} << n) - 1;
}

/// True iff `v` fits in a signed field of `width` bits.
constexpr bool fits_signed(int128 v, int width) {
  assert(width >= 1 && width <= 128);
  return sign_extend(v, width) == v;
}

/// Truncate `v` to a signed `width`-bit field, i.e. keep the low bits and
/// reinterpret as two's complement.  This models writes into a fixed-width
/// register where upper bits are simply not stored.
constexpr int128 truncate_signed(int128 v, int width) {
  return sign_extend(static_cast<int128>(static_cast<uint128>(v) & low_mask(width)), width);
}

/// Saturate `v` into a signed `width`-bit field.
constexpr int128 saturate_signed(int128 v, int width) {
  assert(width >= 2 && width <= 127);
  const int128 hi = static_cast<int128>(low_mask(width - 1));
  const int128 lo = -hi - 1;
  return v > hi ? hi : (v < lo ? lo : v);
}

/// Position of the most significant set bit of a positive value
/// (0 for v==1); -1 for v==0.
constexpr int msb_index(uint128 v) {
  int idx = -1;
  while (v != 0) {
    v >>= 1;
    ++idx;
  }
  return idx;
}

/// Count of significant bits of the magnitude of `v` (0 for v==0).
constexpr int magnitude_bits(int128 v) {
  const uint128 mag = v < 0 ? static_cast<uint128>(-v) : static_cast<uint128>(v);
  return msb_index(mag) + 1;
}

/// ceil(log2(v)) for v >= 1.
constexpr int ceil_log2(int64_t v) {
  assert(v >= 1);
  int r = 0;
  int64_t p = 1;
  while (p < v) {
    p <<= 1;
    ++r;
  }
  return r;
}

/// Extract bit field v[hi:lo] (inclusive), zero-based, returned unsigned.
constexpr uint64_t bits(uint64_t v, int hi, int lo) {
  assert(hi >= lo && hi < 64 && lo >= 0);
  return (v >> lo) & ((hi - lo == 63) ? ~uint64_t{0} : ((uint64_t{1} << (hi - lo + 1)) - 1));
}

/// Convert an int128 to double exactly when |v| < 2^53, otherwise with the
/// usual rounding; used only by analysis/reporting code, never the datapath.
inline double to_double(int128 v) {
  const bool neg = v < 0;
  uint128 mag = neg ? static_cast<uint128>(-v) : static_cast<uint128>(v);
  const double hi = static_cast<double>(static_cast<uint64_t>(mag >> 64));
  const double lo = static_cast<double>(static_cast<uint64_t>(mag));
  const double d = hi * 18446744073709551616.0 + lo;
  return neg ? -d : d;
}

}  // namespace mpipu
