// Annotated mutex layer: Clang Thread Safety Analysis over std::mutex.
//
// The serving stack's lock discipline -- which state each mutex guards,
// which functions must (or must not) be entered with a lock held -- was
// enforced only dynamically, by TSan and the chaos wall.  This header makes
// it a COMPILE-TIME contract: every mutex/condvar in src/ is one of these
// wrappers, every guarded member carries MPIPU_GUARDED_BY, and a clang
// build with -Wthread-safety -Werror rejects any access that violates the
// annotations (tests/compile_fail/thread_safety_negative.cpp proves the
// analysis actually fires).  Under GCC (or any non-clang compiler) every
// macro expands to nothing and the wrappers are zero-cost shims over the
// std primitives, so portable builds are unaffected.
//
// What -Wthread-safety proves vs what TSan proves:
//   * the static analysis proves every annotated access site acquires the
//     right capability on EVERY path through the code, including paths no
//     test reaches -- but only for state that is annotated;
//   * TSan proves the absence of data races on the interleavings a test
//     actually executes -- including unannotated state and lock-free code
//     (atomics, fault.h, clock.h), which the static analysis cannot see.
// The two are complementary; this repo runs both.
//
// The repo-invariant linter (tools/lint) enforces the flip side: no raw
// std::mutex / std::condition_variable / std::lock_guard / std::unique_lock
// anywhere in src/ outside this header, so new code cannot silently opt out
// of the analysis.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// Clang exposes the analysis attributes via __has_attribute; everything
// else (GCC, MSVC) compiles the annotations away.
#if defined(__clang__) && defined(__has_attribute)
#define MPIPU_TSA(x) __attribute__((x))
#else
#define MPIPU_TSA(x)  // no-op off clang
#endif

/// Marks a class as a lockable capability ("mutex" names it in diagnostics).
#define MPIPU_CAPABILITY(x) MPIPU_TSA(capability(x))
/// Marks an RAII class whose constructor acquires and destructor releases.
#define MPIPU_SCOPED_CAPABILITY MPIPU_TSA(scoped_lockable)
/// Member data that may only be touched while holding the given mutex.
#define MPIPU_GUARDED_BY(x) MPIPU_TSA(guarded_by(x))
/// Pointer member whose POINTEE is guarded by the given mutex.
#define MPIPU_PT_GUARDED_BY(x) MPIPU_TSA(pt_guarded_by(x))
/// Function that must be called WITH the listed capabilities held.
#define MPIPU_REQUIRES(...) MPIPU_TSA(requires_capability(__VA_ARGS__))
/// Function that must be called WITHOUT the listed capabilities held
/// (deadlock prevention: e.g. metrics_mu_ is never taken under mu_).
#define MPIPU_EXCLUDES(...) MPIPU_TSA(locks_excluded(__VA_ARGS__))
/// Function that acquires the listed capabilities (and does not release).
#define MPIPU_ACQUIRE(...) MPIPU_TSA(acquire_capability(__VA_ARGS__))
/// Function that releases the listed capabilities.
#define MPIPU_RELEASE(...) MPIPU_TSA(release_capability(__VA_ARGS__))
/// Function that tries to acquire; first arg is the success return value.
#define MPIPU_TRY_ACQUIRE(...) MPIPU_TSA(try_acquire_capability(__VA_ARGS__))
/// Escape hatch for code the analysis cannot model; every use must carry a
/// comment saying why (tools/lint has no rule here -- review does).
#define MPIPU_NO_THREAD_SAFETY_ANALYSIS MPIPU_TSA(no_thread_safety_analysis)
/// Function returning a reference to a capability.
#define MPIPU_RETURN_CAPABILITY(x) MPIPU_TSA(lock_returned(x))
/// Assert (at runtime trust, not analysis) that a capability is held.
#define MPIPU_ASSERT_CAPABILITY(x) MPIPU_TSA(assert_capability(x))

namespace mpipu {

class CondVar;

/// std::mutex with the capability attribute: the analysis tracks which
/// scopes hold it and checks every MPIPU_GUARDED_BY member against it.
class MPIPU_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MPIPU_ACQUIRE() { mu_.lock(); }
  void unlock() MPIPU_RELEASE() { mu_.unlock(); }
  bool try_lock() MPIPU_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class UniqueLock;
  std::mutex mu_;
};

/// RAII lock (std::lock_guard analog).  Not movable: a MutexLock IS the
/// critical section.
class MPIPU_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MPIPU_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() MPIPU_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII try-lock (std::unique_lock + std::try_to_lock analog): never
/// blocks; owns_lock() says whether the critical section was entered.
/// Session::run_compiled uses this to fall back to a private pool instead
/// of queueing on the shared one.
class MPIPU_SCOPED_CAPABILITY TryMutexLock {
 public:
  explicit TryMutexLock(Mutex& mu) MPIPU_TRY_ACQUIRE(true, mu)
      : mu_(mu), owned_(mu.try_lock()) {}
  ~TryMutexLock() MPIPU_RELEASE() {
    if (owned_) mu_.unlock();
  }

  TryMutexLock(const TryMutexLock&) = delete;
  TryMutexLock& operator=(const TryMutexLock&) = delete;

  bool owns_lock() const { return owned_; }

 private:
  Mutex& mu_;
  bool owned_;
};

/// RAII lock that a CondVar can wait on (std::unique_lock analog).  Always
/// constructed locked; CondVar::wait* atomically release and reacquire it.
/// The analysis treats the capability as held for the whole scope -- the
/// standard condition-variable convention: the guarded predicate is only
/// ever read between waits, when the lock IS held.
class MPIPU_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) MPIPU_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~UniqueLock() MPIPU_RELEASE() {}  // lock_ member unlocks

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable over Mutex/UniqueLock.  Waits release and reacquire
/// the UniqueLock's mutex exactly like std::condition_variable; timed waits
/// run on the REAL clock (see common/clock.h: cv waits are deliberately not
/// virtualized -- code mixing a wait with deadline logic reads the deadline
/// through the Clock and only uses real time for the wait itself).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(UniqueLock& lock) { cv_.wait(lock.lock_); }

  template <typename Predicate>
  void wait(UniqueLock& lock, Predicate pred) {
    cv_.wait(lock.lock_, std::move(pred));
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(UniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& dur) {
    return cv_.wait_for(lock.lock_, dur);
  }

  template <typename ClockT, typename Duration>
  std::cv_status wait_until(
      UniqueLock& lock,
      const std::chrono::time_point<ClockT, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace mpipu
