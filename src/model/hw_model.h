// Analytical hardware area / power / efficiency model (paper §4.2, §4.4, §4.5).
//
// The paper synthesizes SystemVerilog with 7nm libraries; we replace that
// flow with a gate-count-style component model whose coefficients are
// calibrated so the paper's published *relative* results hold:
//   * dropping the adder tree from 38b to 28b saves ~17% tile area,
//   * dropping to 12b saves ~39%,
//   * MC-IPU(12) costs ~43% more area than an INT-only tile,
//   * Baseline2 peaks at 4 TOPS / 455 GFLOPS at 1 GHz (so do we).
// Component scaling laws are first-principles (multiplier ~ a*b, barrel
// shifter ~ w log w, adder tree ~ n*(w + log n), registers ~ width); only
// the per-component constants are fit.  See DESIGN.md (substitutions).
//
// The model emits the same component split as Fig. 7: multipliers (MULT),
// weight buffers (WBuf), EHUs (ShCNT), local shifters (Shft), adder trees
// (AT) and accumulators (FAcc).
#pragma once

#include <string>

#include "sim/tile.h"

namespace mpipu {

/// A full datapath design point (Table 1 column / Fig. 7 bar).
struct DesignConfig {
  std::string name;
  TileConfig tile{};
  /// Multiplier payload bits per operand (excluding the sign lane bit):
  /// the proposed IPU is 4x4 (5b x 5b signed); MC-IPU8 is 8x8, etc.
  int mult_a_payload = 4;
  int mult_b_payload = 4;
  /// Whether the design carries FP alignment hardware (shifters, EHU, FP
  /// accumulator).  INT-only designs omit them.
  bool fp_support = true;
  /// Temporal/spatial units consumed per FP16 MAC before alignment stalls
  /// (9 nibble iterations for the 4x4 design; 2 spatially-fused INT8 units
  /// for NVDLA-style 8x8; 12 for bit-serial).
  int fp16_units_per_mac = 9;
  /// Clock (GHz); the paper's throughput numbers imply 1 GHz.
  double clock_ghz = 1.0;
};

/// Gate-equivalent counts per tile, split as in Fig. 7.
struct GateBreakdown {
  double mult = 0.0;
  double wbuf = 0.0;
  double shifter = 0.0;      ///< "Shft": local alignment shifters
  double adder_tree = 0.0;   ///< "AT"
  double accumulator = 0.0;  ///< "FAcc"
  double ehu = 0.0;          ///< "ShCNT"

  double total() const {
    return mult + wbuf + shifter + adder_tree + accumulator + ehu;
  }
};

/// Gate counts for one tile of the design.
GateBreakdown tile_gates(const DesignConfig& d);

/// Dynamic-power proxy per tile (gate count x per-component activity), in
/// arbitrary units convertible to watts via kWattsPerPowerUnit.  `fp_mode`
/// selects the activity profile: in INT mode the FP-only logic is clock- or
/// data-gated but still taxes the design through its (small) idle activity
/// and through the area it adds.
GateBreakdown tile_power(const DesignConfig& d, bool fp_mode);

/// Area of the full accelerator (all tiles), mm^2 (calibrated constant).
double total_area_mm2(const DesignConfig& d);
/// Power of the full accelerator, W.
double total_power_w(const DesignConfig& d, bool fp_mode);

/// Peak integer throughput in TOPS (1 OP = one AxW MAC) for operand widths
/// (a_bits x w_bits); accounts for the temporal iterations the multiplier
/// needs.  Zero if the design cannot run the mode.
double peak_tops(const DesignConfig& d, int a_bits, int w_bits);

/// Peak FP16 throughput in TFLOPS assuming `cycles_per_unit` datapath
/// cycles per unit (1.0 = no alignment stalls; feed the cycle simulator's
/// average for effective throughput).  Zero if FP is unsupported.
double fp16_tflops(const DesignConfig& d, double cycles_per_unit = 1.0);

/// Efficiency summaries.
double tops_per_mm2(const DesignConfig& d, int a_bits, int w_bits);
double tops_per_w(const DesignConfig& d, int a_bits, int w_bits);
double tflops_per_mm2(const DesignConfig& d, double cycles_per_unit = 1.0);
double tflops_per_w(const DesignConfig& d, double cycles_per_unit = 1.0);

/// Named design points from the paper.
DesignConfig proposed_design(int adder_tree_width, int ipus_per_cluster,
                             bool big = true, int software_precision = 28);
DesignConfig int_only_design(bool big = true);   ///< Fig. 7 "INT"
DesignConfig nvdla_like_design();                ///< 38b ADT baseline tile
DesignConfig mc_ser_design();                    ///< Table 1 MC-SER (12x1)
DesignConfig mc_ipu4_design();                   ///< Table 1 MC-IPU4 (4x4, 16b)
DesignConfig mc_ipu84_design();                  ///< Table 1 MC-IPU84 (8x4, 20b)
DesignConfig mc_ipu8_design();                   ///< Table 1 MC-IPU8 (8x8, 23b)
DesignConfig nvdla_table_design();               ///< Table 1 NVDLA (8x8, 36b)
DesignConfig fp16_fma_design();                  ///< Table 1 FP16 (12x12, 36b)
DesignConfig int8_only_design();                 ///< Table 1 INT8 (8x8, 16b)
DesignConfig int4_only_design();                 ///< Table 1 INT4 (4x4, 9b)

}  // namespace mpipu
