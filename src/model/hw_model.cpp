#include "model/hw_model.h"

#include <cassert>
#include <cmath>

namespace mpipu {
namespace {

// --- Calibrated component coefficients (gate-equivalents) -------------------
// Scaling laws are structural; constants are fit to the paper's published
// relative area results (see hw_model.h header comment and DESIGN.md).

// Array multiplier: ~one full-adder cell per operand-bit pair (incl. sign).
constexpr double kMultGatesPerBitPair = 5.0;
// Weight buffer: 9 bytes per multiplier lane (paper: "depth of 9B"),
// register-file density.
constexpr double kWbufGatesPerByte = 5.3;
constexpr double kWbufDepthBytes = 9.0;
// Barrel shifter: w bits x ceil(log2 w) mux stages.
constexpr double kShifterGatesPerBitStage = 0.64;
// Adder tree: (n-1) adders of ~(w + 2) bits.
constexpr double kAdderGatesPerBit = 5.0;
// FP accumulator (register + swap/right-shift + wide add + rounding).
constexpr double kFpAccGatesPerBit = 35.0;
// INT-only accumulator (register + add; shift amounts are 4k muxes).
constexpr double kIntAccGatesPerBit = 7.0;
// EHU: exponent adders, max tree, subtractors, serve logic; per input lane.
constexpr double kEhuGatesPerLane = 90.0;

// 7nm-ish effective density including routing/overheads; calibrated so the
// INT4-only design lands at the Table 1 scale (~30 TOPS/mm^2).
constexpr double kMm2PerGate = 1.63e-7;
// Per activity-weighted gate at 1 GHz; calibrated to the Table 1 power scale.
constexpr double kWattsPerPowerUnit = 1.18e-6;

// Activity factors (fraction of gates toggling) per component and mode.
struct Activity {
  double mult, wbuf, shifter, adder_tree, accumulator, ehu;
};
constexpr Activity kFpActivity{1.0, 0.15, 0.90, 1.00, 0.90, 0.70};
// In INT mode the FP-only logic (shifters, EHU, the FP parts of the
// accumulator) is data-gated: it still costs area but only residual power.
constexpr Activity kIntActivity{1.0, 0.15, 0.05, 1.00, 0.60, 0.05};

int ceil_log2i(int v) { return ceil_log2(v); }

}  // namespace

GateBreakdown tile_gates(const DesignConfig& d) {
  const TileConfig& t = d.tile;
  const int n = t.c_unroll;
  const int ipus = t.ipus_per_tile();
  const int mults = t.multipliers_per_tile();
  const int w = t.datapath.effective_adder_tree_width();

  GateBreakdown g;
  g.mult = mults * kMultGatesPerBitPair * (d.mult_a_payload + 1) * (d.mult_b_payload + 1);
  g.wbuf = mults * kWbufGatesPerByte * kWbufDepthBytes;
  g.adder_tree = ipus * kAdderGatesPerBit * (n - 1) * (w + 2);
  if (d.fp_support) {
    g.shifter = mults * kShifterGatesPerBitStage * w * ceil_log2i(w + 1);
    const int acc_bits = 3 + t.datapath.accumulator.frac_bits + t.datapath.accumulator.t +
                         t.datapath.accumulator.l;
    g.accumulator = ipus * kFpAccGatesPerBit * acc_bits;
    // One EHU serves ~9 IPUs: its result is reused across all nine nibble
    // iterations of an FP16 op (paper §2.2), independent of clustering.
    g.ehu = ((ipus + 8) / 9) * kEhuGatesPerLane * n;
  } else {
    g.shifter = 0.0;
    const int acc_bits = 33 + t.datapath.accumulator.t + t.datapath.accumulator.l;
    g.accumulator = ipus * kIntAccGatesPerBit * acc_bits;
    g.ehu = 0.0;
  }
  return g;
}

GateBreakdown tile_power(const DesignConfig& d, bool fp_mode) {
  const GateBreakdown g = tile_gates(d);
  const Activity& a = fp_mode ? kFpActivity : kIntActivity;
  GateBreakdown p;
  p.mult = g.mult * a.mult;
  p.wbuf = g.wbuf * a.wbuf;
  p.shifter = g.shifter * a.shifter;
  p.adder_tree = g.adder_tree * a.adder_tree;
  p.accumulator = g.accumulator * a.accumulator;
  p.ehu = g.ehu * a.ehu;
  return p;
}

double total_area_mm2(const DesignConfig& d) {
  return tile_gates(d).total() * d.tile.num_tiles * kMm2PerGate;
}

double total_power_w(const DesignConfig& d, bool fp_mode) {
  return tile_power(d, fp_mode).total() * d.tile.num_tiles * kWattsPerPowerUnit *
         d.clock_ghz;
}

double peak_tops(const DesignConfig& d, int a_bits, int w_bits) {
  const int ia = (a_bits + d.mult_a_payload - 1) / d.mult_a_payload;
  const int iw = (w_bits + d.mult_b_payload - 1) / d.mult_b_payload;
  const double macs_per_cycle =
      static_cast<double>(d.tile.total_multipliers()) / (ia * iw);
  return macs_per_cycle * d.clock_ghz * 1e9 / 1e12;
}

double fp16_tflops(const DesignConfig& d, double cycles_per_unit) {
  if (!d.fp_support) return 0.0;
  const double macs_per_cycle = static_cast<double>(d.tile.total_multipliers()) /
                                (d.fp16_units_per_mac * cycles_per_unit);
  return macs_per_cycle * d.clock_ghz * 1e9 / 1e12;
}

double tops_per_mm2(const DesignConfig& d, int a_bits, int w_bits) {
  return peak_tops(d, a_bits, w_bits) / total_area_mm2(d);
}

double tops_per_w(const DesignConfig& d, int a_bits, int w_bits) {
  return peak_tops(d, a_bits, w_bits) / total_power_w(d, /*fp_mode=*/false);
}

double tflops_per_mm2(const DesignConfig& d, double cycles_per_unit) {
  return fp16_tflops(d, cycles_per_unit) / total_area_mm2(d);
}

double tflops_per_w(const DesignConfig& d, double cycles_per_unit) {
  if (!d.fp_support) return 0.0;
  return fp16_tflops(d, cycles_per_unit) / total_power_w(d, /*fp_mode=*/true);
}

// --- Named designs -----------------------------------------------------------

DesignConfig proposed_design(int adder_tree_width, int ipus_per_cluster, bool big,
                             int software_precision) {
  DesignConfig d;
  d.name = "mc-ipu(" + std::to_string(adder_tree_width) + ")," +
           std::to_string(ipus_per_cluster);
  d.tile = big ? big_tile(adder_tree_width, software_precision, ipus_per_cluster)
               : small_tile(adder_tree_width, software_precision, ipus_per_cluster);
  d.mult_a_payload = 4;
  d.mult_b_payload = 4;
  d.fp_support = true;
  d.fp16_units_per_mac = 9;
  return d;
}

DesignConfig int_only_design(bool big) {
  DesignConfig d;
  d.name = "int-only";
  d.tile = big ? big_tile(12, 0, 64) : small_tile(12, 0, 32);
  d.tile.datapath.multi_cycle = false;
  d.fp_support = false;
  d.fp16_units_per_mac = 0;
  return d;
}

DesignConfig nvdla_like_design() {
  DesignConfig d = proposed_design(38, 64, /*big=*/true);
  d.name = "baseline-38b";
  d.tile.datapath.multi_cycle = false;
  return d;
}

namespace {

DesignConfig table1_base(std::string name, int pa, int pb, int adt, bool fp,
                         int fp16_units) {
  DesignConfig d;
  d.name = std::move(name);
  d.tile = big_tile(adt, 28, 64);
  d.tile.datapath.multi_cycle = fp && adt < 38;
  d.mult_a_payload = pa;
  d.mult_b_payload = pb;
  d.fp_support = fp;
  d.fp16_units_per_mac = fp16_units;
  return d;
}

}  // namespace

// Table 1 columns: ADT and MUL widths straight from the paper.
DesignConfig mc_ser_design() { return table1_base("MC-SER", 12, 1, 16, true, 12); }
DesignConfig mc_ipu4_design() { return table1_base("MC-IPU4", 4, 4, 16, true, 9); }
DesignConfig mc_ipu84_design() { return table1_base("MC-IPU84", 8, 4, 20, true, 6); }
DesignConfig mc_ipu8_design() { return table1_base("MC-IPU8", 8, 8, 23, true, 2); }
DesignConfig nvdla_table_design() { return table1_base("NVDLA", 8, 8, 36, true, 2); }
DesignConfig fp16_fma_design() { return table1_base("FP16", 12, 12, 36, true, 1); }
DesignConfig int8_only_design() { return table1_base("INT8", 8, 8, 16, false, 0); }
DesignConfig int4_only_design() { return table1_base("INT4", 4, 4, 9, false, 0); }

}  // namespace mpipu
