// Multi-tile partitioning (ROADMAP item 1): shard one conv layer across the
// N tiles of a TileConfig, for BOTH evaluation paths:
//
//   * the cycle sim (sim/cycle_sim.h) partitions every layer, simulates each
//     tile's broadcast stream and reports per-tile utilization, load
//     imbalance and the critical-tile cycles -- replacing the single
//     ceil_div(cout, num_tiles) that used to hide the whole multi-tile
//     story inside layer_broadcast_steps;
//   * host execution (api/compiled_model.h) mirrors the same shard
//     geometry: each shard runs as an independent unit of work on the
//     thread pool and the shard outputs are joined exactly
//     (nn/elementwise.h channel_concat / row_concat), byte-identical to
//     unsharded execution.
//
// Two partition schemes, the two natural axes of a weight-stationary tile:
//
//   kOutputChannel  each tile owns a contiguous slice of output channels
//                   (its own filters; activations broadcast to every tile).
//                   This is the paper's implicit §4.1 mapping.
//   kSpatialRows    each tile owns a contiguous band of output rows (all
//                   output channels; filters replicated, activation halo
//                   rows shared with neighbouring tiles).
//
// Splits are balanced-contiguous: extent E over T tiles gives tile i the
// range [i*E/T, (i+1)*E/T), so shard sizes differ by at most one and the
// largest shard is exactly ceil(E/T) -- the same critical-tile size the
// legacy arithmetic modeled, which keeps default cycle-sim results
// byte-identical.
#pragma once

#include <string>
#include <vector>

#include "workload/networks.h"

namespace mpipu {

struct TileConfig;

/// The two ways a conv layer shards across tiles.
enum class PartitionKind { kOutputChannel, kSpatialRows };

const char* partition_kind_name(PartitionKind kind);

/// The partition choice carried by RunSpec: one knob drives the multi-tile
/// cycle sim AND (opt-in) host-side sharded execution.
struct PartitionSpec {
  /// Axis the layer shards along.  kOutputChannel is the default and
  /// reproduces the legacy single-tile-view arithmetic exactly for evenly
  /// divisible couts.
  PartitionKind kind = PartitionKind::kOutputChannel;
  /// When true, CompiledModel::run executes every conv node as
  /// tile.num_tiles host shards joined exactly (byte-identical to
  /// unsharded execution -- see tests/test_partition.cpp).  Off by
  /// default: host sharding mirrors the hardware partition, it is not a
  /// host-side speedup on its own.
  bool shard_host = false;

  friend bool operator==(const PartitionSpec&, const PartitionSpec&) = default;
};

/// One shard's slice of a conv output: channels [co_begin, co_end) x output
/// rows [row_begin, row_end).  Exactly one axis is a strict sub-range per
/// PartitionKind; the other always spans the full extent.  Empty shards
/// (co_begin == co_end or row_begin == row_end) model idle tiles when the
/// extent is smaller than the tile count.
struct ShardRange {
  int tile = 0;
  int co_begin = 0, co_end = 0;
  int row_begin = 0, row_end = 0;

  int cout() const { return co_end - co_begin; }
  int rows() const { return row_end - row_begin; }
  bool empty() const { return cout() <= 0 || rows() <= 0; }

  friend bool operator==(const ShardRange&, const ShardRange&) = default;
};

/// Split output geometry (cout x hout) into `num_tiles` balanced contiguous
/// shards along the partition axis.  Always returns exactly `num_tiles`
/// entries (idle tiles appear as empty ranges).  Throws
/// std::invalid_argument on num_tiles < 1 or negative extents.
std::vector<ShardRange> partition_output(int cout, int hout, int num_tiles,
                                         PartitionKind kind);

/// One tile's shard of a conv layer: the output range plus the sub-layer
/// seen by that tile (cout / hout restricted; everything else inherited).
struct LayerShard {
  ShardRange range;
  ConvLayer layer;  ///< the shard as a ConvLayer (cout/hout restricted)
  /// kSpatialRows only: input rows this shard reads that neighbouring
  /// shards also read (the halo).  Zero for kOutputChannel, where the
  /// whole input is broadcast to every tile anyway.
  int halo_rows = 0;
};

/// A conv layer partitioned across tiles.
struct LayerPartition {
  PartitionKind kind = PartitionKind::kOutputChannel;
  int num_tiles = 1;
  std::vector<LayerShard> shards;  ///< exactly num_tiles entries

  /// Sum of shard MACs == layer MACs (no work lost or double-counted);
  /// asserted by the partition test wall.
  int64_t total_macs() const {
    int64_t t = 0;
    for (const LayerShard& s : shards) t += s.layer.macs();
    return t;
  }
};

/// Partition `layer` across `num_tiles` tiles.  Shards are balanced within
/// one unit of the partitioned extent; union of shards covers the layer
/// exactly (every output channel / row in exactly one shard).  Throws
/// std::invalid_argument on num_tiles < 1.
LayerPartition partition_layer(const ConvLayer& layer, int num_tiles,
                               PartitionKind kind);

/// Broadcast steps ONE tile executes for (its shard of) a layer: the
/// per-tile mapping arithmetic with no cross-tile division --
/// kh * kw * ceil(cin/c_unroll) * ceil(cout/k_unroll)
///         * ceil(hout/h_unroll) * ceil(wout/w_unroll).
/// layer_broadcast_steps (sim/cycle_sim.h) is the critical tile's value of
/// this over the default output-channel partition.
int64_t tile_broadcast_steps(const ConvLayer& shard_layer,
                             const TileConfig& tile);

}  // namespace mpipu
