#include "sim/cycle_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace mpipu {
namespace {

/// Sentinel for a masked (zero-operand) product: the EHU sees a subnormal
/// exponent far below every live product, so its alignment always exceeds
/// the software precision.
constexpr int kMaskedExp = kMaskedProductExp;

/// Steady-state behaviour of one tile's broadcast stream over a sampled
/// window (the per-layer metrics that do not depend on the step count).
struct StreamResult {
  double cycles_per_step = 0.0;
  double avg_iteration_cycles = 0.0;
  double stall_fraction = 0.0;
};

}  // namespace

int64_t layer_broadcast_steps(const ConvLayer& layer, const TileConfig& tile) {
  // The critical tile of the default output-channel partition: the largest
  // shard holds ceil(cout / num_tiles) channels, so this reproduces the
  // legacy ceil_div(ceil_div(cout, num_tiles), k_unroll) arithmetic while
  // the per-shard counts now come from the partitioner.
  const LayerPartition part =
      partition_layer(layer, tile.num_tiles, PartitionKind::kOutputChannel);
  int64_t critical = 0;
  for (const LayerShard& s : part.shards) {
    critical = std::max(critical, tile_broadcast_steps(s.layer, tile));
  }
  return critical;
}

NetworkSimResult simulate_network(const Network& net, const TileConfig& tile,
                                  const SimOptions& opts,
                                  const PartitionSpec& partition) {
  // Release-mode validation: the num_clusters() assert vanishes under
  // NDEBUG, so an indivisible ipus_per_cluster used to silently simulate
  // fewer IPUs than configured.  validate() throws in every build mode.
  tile.validate();
  if (opts.sampled_steps < 1) {
    throw std::invalid_argument(
        "SimOptions: sampled_steps must be >= 1, got " +
        std::to_string(opts.sampled_steps));
  }

  NetworkSimResult result;
  result.network = net.name;
  result.tile = tile.name;
  result.partition = partition_kind_name(partition.kind);
  result.num_tiles = tile.num_tiles;

  Rng rng(opts.seed);
  const ExponentJitter act_jitter = net.tensor_stats.act_jitter;
  const ExponentJitter wgt_jitter = net.tensor_stats.wgt_jitter;

  const int n = tile.c_unroll;
  const int clusters = tile.num_clusters();
  const int per_cluster = tile.ipus_per_cluster;
  const int spatial_copies = tile.h_unroll * tile.w_unroll;
  const int B = tile.input_buffer_depth;
  const int iters_per_op =
      opts.effective_iterations_per_op(tile.datapath.scheme);

  std::vector<int> product_exps(static_cast<size_t>(n));
  std::vector<int> act_exps(static_cast<size_t>(spatial_copies * n));

  // Simulate one tile's broadcast stream of `steps_total` ops, modeling the
  // broadcast/buffer handshake:
  //   issue(t)   >= issue(t-1) + 1                      (one op per cycle)
  //   issue(t)   >= finish(c, t-B) for every cluster c  (buffer capacity)
  //   start(c,t)  = max(issue(t), finish(c, t-1))
  //   finish(c,t) = start(c,t) + service(c,t)
  // Draws from the shared `rng`, so streams are simulated in a fixed,
  // documented order (critical shard first within each layer).
  auto simulate_stream = [&](int64_t steps_total) {
    // The int cast is in-bounds by construction: the min with
    // opts.sampled_steps (an int, validated >= 1 above) caps the value, so
    // 1 <= sampled <= opts.sampled_steps always holds.
    const int sampled = static_cast<int>(
        std::min<int64_t>(opts.sampled_steps, std::max<int64_t>(steps_total, 1)));
    assert(sampled >= 1 && sampled <= opts.sampled_steps);

    std::vector<std::vector<double>> finish(
        static_cast<size_t>(clusters),
        std::vector<double>(static_cast<size_t>(sampled), 0.0));
    double issue_prev = -1.0;
    int64_t stall_slots = 0;
    double iteration_cycles_sum = 0.0;
    int64_t iteration_count = 0;

    for (int t = 0; t < sampled; ++t) {
      // Fresh activation jitters per spatial copy (shared across K) and
      // fresh weight jitters per IPU (each IPU holds a different output
      // channel's filter; every step is a new kernel position / chunk).
      // Only relative exponents matter: the op's base exponent cancels in
      // the alignment computation, so jitters are sampled directly.  Zero
      // activations (ReLU sparsity) yield EHU-masked products.
      for (auto& e : act_exps) {
        e = rng.bernoulli(net.tensor_stats.act_zero_prob)
                ? kMaskedExp
                : sample_jitter(rng, act_jitter);
      }

      double issue = issue_prev + 1.0;
      for (int c = 0; c < clusters; ++c) {
        if (t >= B) {
          issue = std::max(
              issue, finish[static_cast<size_t>(c)][static_cast<size_t>(t - B)]);
        }
      }
      stall_slots += issue > issue_prev + 1.0 ? 1 : 0;
      issue_prev = issue;

      for (int c = 0; c < clusters; ++c) {
        int service = 0;
        for (int i = 0; i < per_cluster; ++i) {
          const int ipu_idx = c * per_cluster + i;
          const int copy = ipu_idx % spatial_copies;  // interleave spatial copies
          for (int p = 0; p < n; ++p) {
            const int ae = act_exps[static_cast<size_t>(copy * n + p)];
            product_exps[static_cast<size_t>(p)] =
                ae == kMaskedExp ? kMaskedExp : ae + sample_jitter(rng, wgt_jitter);
          }
          // Service time of one FP-IP op: iterations x bands, per the
          // scheme-generic §3.2 banding model of core/datapath.h.
          const int cyc = fp16_op_service_cycles(product_exps, tile.datapath);
          service = std::max(service, cyc);
          iteration_cycles_sum += static_cast<double>(cyc) / iters_per_op;
          ++iteration_count;
        }
        const double start = std::max(
            issue,
            t > 0 ? finish[static_cast<size_t>(c)][static_cast<size_t>(t - 1)]
                  : 0.0);
        finish[static_cast<size_t>(c)][static_cast<size_t>(t)] = start + service;
      }
    }

    double total = 0.0;
    for (int c = 0; c < clusters; ++c) {
      total = std::max(
          total, finish[static_cast<size_t>(c)][static_cast<size_t>(sampled - 1)]);
    }

    StreamResult sr;
    sr.cycles_per_step = total / sampled;
    sr.avg_iteration_cycles =
        iteration_cycles_sum / static_cast<double>(iteration_count);
    sr.stall_fraction = static_cast<double>(stall_slots) / sampled;
    return sr;
  };

  double util_cycles_sum = 0.0;  // sum over layers: layer_cycles * mean_util

  for (const auto& layer : net.layers) {
    const LayerPartition part =
        partition_layer(layer, tile.num_tiles, partition.kind);

    // Per-tile step counts (x repeat), then one simulated stream per
    // DISTINCT step count: shards with equal step counts see statistically
    // identical broadcast streams (the service distribution depends only on
    // tensor stats and the tile config), so they share one sampled stream
    // -- which also makes equal shards report exactly equal cycles (zero
    // imbalance for even splits).  Streams are simulated in descending step
    // order so the critical shard consumes the RNG first: with a single
    // group (every evenly-divisible layer) the draw sequence is identical
    // to the legacy single-stream simulator.
    std::vector<int64_t> tile_steps(part.shards.size(), 0);
    for (size_t i = 0; i < part.shards.size(); ++i) {
      tile_steps[i] =
          tile_broadcast_steps(part.shards[i].layer, tile) * layer.repeat;
    }
    std::vector<int64_t> distinct;
    for (int64_t s : tile_steps) {
      if (s > 0 && std::find(distinct.begin(), distinct.end(), s) == distinct.end()) {
        distinct.push_back(s);
      }
    }
    std::sort(distinct.begin(), distinct.end(), std::greater<int64_t>());
    std::vector<StreamResult> stream_of(distinct.size());
    for (size_t g = 0; g < distinct.size(); ++g) {
      stream_of[g] = simulate_stream(distinct[g]);
    }
    auto stream_for = [&](int64_t steps) -> const StreamResult& {
      const size_t g = static_cast<size_t>(
          std::find(distinct.begin(), distinct.end(), steps) - distinct.begin());
      return stream_of[g];
    };

    LayerSimResult lr;
    lr.layer = layer.name;
    lr.tiles.resize(part.shards.size());
    double max_cycles = 0.0;
    double cycles_sum = 0.0;
    for (size_t i = 0; i < part.shards.size(); ++i) {
      TileSimResult& tr = lr.tiles[i];
      tr.tile = static_cast<int>(i);
      tr.steps = tile_steps[i];
      tr.cycles = tile_steps[i] > 0
                      ? stream_for(tile_steps[i]).cycles_per_step *
                            static_cast<double>(tile_steps[i])
                      : 0.0;
      cycles_sum += tr.cycles;
      if (tr.cycles > max_cycles) {
        max_cycles = tr.cycles;
        lr.critical_tile = tr.tile;
      }
    }
    double util_sum = 0.0;
    for (TileSimResult& tr : lr.tiles) {
      tr.utilization = max_cycles > 0.0 ? tr.cycles / max_cycles : 0.0;
      util_sum += tr.utilization;
    }
    const double mean_cycles =
        cycles_sum / static_cast<double>(part.shards.size());
    lr.imbalance = mean_cycles > 0.0 ? max_cycles / mean_cycles - 1.0 : 0.0;

    // Layer totals are the critical tile's view: tiles run concurrently,
    // the slowest one gates the layer.
    const TileSimResult& crit = lr.tiles[static_cast<size_t>(lr.critical_tile)];
    lr.total_steps = crit.steps;
    lr.total_cycles = crit.cycles;
    if (crit.steps > 0) {
      const StreamResult& sr = stream_for(crit.steps);
      lr.cycles_per_step = sr.cycles_per_step;
      lr.avg_iteration_cycles = sr.avg_iteration_cycles;
      lr.stall_fraction = sr.stall_fraction;
    }
    util_cycles_sum +=
        lr.total_cycles * (util_sum / static_cast<double>(lr.tiles.size()));
    result.total_cycles += lr.total_cycles;
    result.layers.push_back(std::move(lr));
  }
  result.mean_tile_utilization =
      result.total_cycles > 0.0 ? util_cycles_sum / result.total_cycles : 0.0;
  return result;
}

IntHistogram alignment_histogram(const Network& net, int n_inputs,
                                 int samples_per_layer, uint64_t seed) {
  IntHistogram hist(64);
  Rng rng(seed);
  std::vector<int> exps(static_cast<size_t>(n_inputs));
  for (size_t l = 0; l < net.layers.size(); ++l) {
    for (int s = 0; s < samples_per_layer; ++s) {
      int max_exp = INT32_MIN;
      int live = 0;
      for (auto& e : exps) {
        if (rng.bernoulli(net.tensor_stats.act_zero_prob)) {
          e = INT32_MIN;  // zero operand: excluded, as in the paper's
                          // histogram of live product alignments
          continue;
        }
        e = sample_jitter(rng, net.tensor_stats.act_jitter) +
            sample_jitter(rng, net.tensor_stats.wgt_jitter);
        max_exp = std::max(max_exp, e);
        ++live;
      }
      if (live == 0) continue;
      for (int e : exps) {
        if (e != INT32_MIN) hist.add(max_exp - e);
      }
    }
  }
  return hist;
}

}  // namespace mpipu
