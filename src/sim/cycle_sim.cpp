#include "sim/cycle_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mpipu {
namespace {

int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }

/// Sentinel for a masked (zero-operand) product: the EHU sees a subnormal
/// exponent far below every live product, so its alignment always exceeds
/// the software precision.
constexpr int kMaskedExp = kMaskedProductExp;

}  // namespace

int64_t layer_broadcast_steps(const ConvLayer& layer, const TileConfig& tile) {
  // One broadcast step feeds C channels of one kernel position to every IPU;
  // the tile computes H x Wo output positions for K output channels at once.
  const int64_t cin_chunks = ceil_div(layer.cin, tile.c_unroll);
  const int64_t k_groups = ceil_div(ceil_div(layer.cout, tile.num_tiles), tile.k_unroll);
  const int64_t spatial_groups =
      ceil_div(layer.hout, tile.h_unroll) * ceil_div(layer.wout, tile.w_unroll);
  return static_cast<int64_t>(layer.kh) * layer.kw * cin_chunks * k_groups *
         spatial_groups;
}

NetworkSimResult simulate_network(const Network& net, const TileConfig& tile,
                                  const SimOptions& opts) {
  NetworkSimResult result;
  result.network = net.name;
  result.tile = tile.name;

  Rng rng(opts.seed);
  const ExponentJitter act_jitter = net.tensor_stats.act_jitter;
  const ExponentJitter wgt_jitter = net.tensor_stats.wgt_jitter;

  const int n = tile.c_unroll;
  const int ipus = tile.ipus_per_tile();
  const int clusters = tile.num_clusters();
  const int per_cluster = tile.ipus_per_cluster;
  const int spatial_copies = tile.h_unroll * tile.w_unroll;
  const int B = tile.input_buffer_depth;
  const int iters_per_op =
      opts.effective_iterations_per_op(tile.datapath.scheme);

  for (const auto& layer : net.layers) {
    const int64_t steps_total = layer_broadcast_steps(layer, tile) * layer.repeat;
    const int sampled = static_cast<int>(
        std::min<int64_t>(opts.sampled_steps, std::max<int64_t>(steps_total, 1)));

    // Per-cluster completion times over the sampled stream, modeling the
    // broadcast/buffer handshake:
    //   issue(t)   >= issue(t-1) + 1                      (one op per cycle)
    //   issue(t)   >= finish(c, t-B) for every cluster c  (buffer capacity)
    //   start(c,t)  = max(issue(t), finish(c, t-1))
    //   finish(c,t) = start(c,t) + service(c,t)
    std::vector<std::vector<double>> finish(
        static_cast<size_t>(clusters), std::vector<double>(static_cast<size_t>(sampled), 0.0));
    double issue_prev = -1.0;
    int64_t stall_slots = 0;

    std::vector<int> product_exps(static_cast<size_t>(n));
    std::vector<int> act_exps(static_cast<size_t>(spatial_copies * n));
    double iteration_cycles_sum = 0.0;
    int64_t iteration_count = 0;

    for (int t = 0; t < sampled; ++t) {
      // Fresh activation jitters per spatial copy (shared across K) and
      // fresh weight jitters per IPU (each IPU holds a different output
      // channel's filter; every step is a new kernel position / chunk).
      // Only relative exponents matter: the op's base exponent cancels in
      // the alignment computation, so jitters are sampled directly.  Zero
      // activations (ReLU sparsity) yield EHU-masked products.
      for (auto& e : act_exps) {
        e = rng.bernoulli(net.tensor_stats.act_zero_prob) ? kMaskedExp
                                                          : sample_jitter(rng, act_jitter);
      }

      double issue = issue_prev + 1.0;
      for (int c = 0; c < clusters; ++c) {
        if (t >= B) issue = std::max(issue, finish[static_cast<size_t>(c)][static_cast<size_t>(t - B)]);
      }
      stall_slots += issue > issue_prev + 1.0 ? 1 : 0;
      issue_prev = issue;

      for (int c = 0; c < clusters; ++c) {
        int service = 0;
        for (int i = 0; i < per_cluster; ++i) {
          const int ipu_idx = c * per_cluster + i;
          const int copy = ipu_idx % spatial_copies;  // interleave spatial copies
          for (int p = 0; p < n; ++p) {
            const int ae = act_exps[static_cast<size_t>(copy * n + p)];
            product_exps[static_cast<size_t>(p)] =
                ae == kMaskedExp ? kMaskedExp : ae + sample_jitter(rng, wgt_jitter);
          }
          // Service time of one FP-IP op: iterations x bands, per the
          // scheme-generic §3.2 banding model of core/datapath.h.
          const int cyc = fp16_op_service_cycles(product_exps, tile.datapath);
          service = std::max(service, cyc);
          iteration_cycles_sum += static_cast<double>(cyc) / iters_per_op;
          ++iteration_count;
        }
        const double start =
            std::max(issue, t > 0 ? finish[static_cast<size_t>(c)][static_cast<size_t>(t - 1)] : 0.0);
        finish[static_cast<size_t>(c)][static_cast<size_t>(t)] = start + service;
      }
      (void)ipus;
    }

    double total = 0.0;
    for (int c = 0; c < clusters; ++c) {
      total = std::max(total, finish[static_cast<size_t>(c)][static_cast<size_t>(sampled - 1)]);
    }

    LayerSimResult lr;
    lr.layer = layer.name;
    lr.total_steps = steps_total;
    lr.cycles_per_step = total / sampled;
    lr.total_cycles = lr.cycles_per_step * static_cast<double>(steps_total);
    lr.avg_iteration_cycles = iteration_cycles_sum / static_cast<double>(iteration_count);
    lr.stall_fraction = static_cast<double>(stall_slots) / sampled;
    result.total_cycles += lr.total_cycles;
    result.layers.push_back(std::move(lr));
  }
  return result;
}

IntHistogram alignment_histogram(const Network& net, int n_inputs,
                                 int samples_per_layer, uint64_t seed) {
  IntHistogram hist(64);
  Rng rng(seed);
  std::vector<int> exps(static_cast<size_t>(n_inputs));
  for (size_t l = 0; l < net.layers.size(); ++l) {
    for (int s = 0; s < samples_per_layer; ++s) {
      int max_exp = INT32_MIN;
      int live = 0;
      for (auto& e : exps) {
        if (rng.bernoulli(net.tensor_stats.act_zero_prob)) {
          e = INT32_MIN;  // zero operand: excluded, as in the paper's
                          // histogram of live product alignments
          continue;
        }
        e = sample_jitter(rng, net.tensor_stats.act_jitter) +
            sample_jitter(rng, net.tensor_stats.wgt_jitter);
        max_exp = std::max(max_exp, e);
        ++live;
      }
      if (live == 0) continue;
      for (int e : exps) {
        if (e != INT32_MIN) hist.add(max_exp - e);
      }
    }
  }
  return hist;
}

}  // namespace mpipu
