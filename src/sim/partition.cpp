#include "sim/partition.h"

#include <algorithm>
#include <stdexcept>

#include "sim/tile.h"

namespace mpipu {
namespace {

int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace

const char* partition_kind_name(PartitionKind kind) {
  switch (kind) {
    case PartitionKind::kOutputChannel:
      return "output_channel";
    case PartitionKind::kSpatialRows:
      return "spatial_rows";
  }
  return "unknown";
}

std::vector<ShardRange> partition_output(int cout, int hout, int num_tiles,
                                         PartitionKind kind) {
  if (num_tiles < 1) {
    throw std::invalid_argument(
        "partition_output: num_tiles must be >= 1, got " +
        std::to_string(num_tiles));
  }
  if (cout < 0 || hout < 0) {
    throw std::invalid_argument(
        "partition_output: negative output extent (" + std::to_string(cout) +
        " channels x " + std::to_string(hout) + " rows)");
  }
  std::vector<ShardRange> shards(static_cast<size_t>(num_tiles));
  // Balanced contiguous split of the partitioned extent E: tile i gets
  // [i*E/T, (i+1)*E/T).  Sizes differ by at most one; the largest shard is
  // ceil(E/T), matching the legacy critical-tile arithmetic.
  const int64_t extent = kind == PartitionKind::kOutputChannel ? cout : hout;
  for (int i = 0; i < num_tiles; ++i) {
    ShardRange& s = shards[static_cast<size_t>(i)];
    s.tile = i;
    const int begin = static_cast<int>(extent * i / num_tiles);
    const int end = static_cast<int>(extent * (i + 1) / num_tiles);
    if (kind == PartitionKind::kOutputChannel) {
      s.co_begin = begin;
      s.co_end = end;
      s.row_begin = 0;
      s.row_end = hout;
    } else {
      s.co_begin = 0;
      s.co_end = cout;
      s.row_begin = begin;
      s.row_end = end;
    }
  }
  return shards;
}

LayerPartition partition_layer(const ConvLayer& layer, int num_tiles,
                               PartitionKind kind) {
  LayerPartition part;
  part.kind = kind;
  part.num_tiles = num_tiles;
  const std::vector<ShardRange> ranges =
      partition_output(layer.cout, layer.hout, num_tiles, kind);
  part.shards.reserve(ranges.size());
  for (const ShardRange& r : ranges) {
    LayerShard shard;
    shard.range = r;
    shard.layer = layer;
    shard.layer.cout = r.cout();
    shard.layer.hout = r.rows();
    if (kind == PartitionKind::kSpatialRows && !r.empty()) {
      // Halo: input rows this shard reads that a neighbour also reads.  An
      // interior boundary shares max(0, kh - stride) input rows; a shard
      // with work on both sides pays it twice.  (For kOutputChannel the
      // full input is broadcast to every tile, so there is no extra
      // sharing to report.)
      const int overlap = std::max(0, layer.kh - layer.stride);
      const bool has_prev = r.row_begin > 0;
      const bool has_next = r.row_end < layer.hout;
      shard.halo_rows =
          (has_prev ? overlap : 0) + (has_next ? overlap : 0);
    }
    part.shards.push_back(std::move(shard));
  }
  return part;
}

int64_t tile_broadcast_steps(const ConvLayer& shard_layer,
                             const TileConfig& tile) {
  if (shard_layer.cout <= 0 || shard_layer.hout <= 0 ||
      shard_layer.wout <= 0) {
    return 0;  // idle tile: no channels / rows assigned
  }
  const int64_t cin_chunks = ceil_div(shard_layer.cin, tile.c_unroll);
  const int64_t k_groups = ceil_div(shard_layer.cout, tile.k_unroll);
  const int64_t spatial_groups = ceil_div(shard_layer.hout, tile.h_unroll) *
                                 ceil_div(shard_layer.wout, tile.w_unroll);
  return static_cast<int64_t>(shard_layer.kh) * shard_layer.kw * cin_chunks *
         k_groups * spatial_groups;
}

}  // namespace mpipu
