// Convolution-tile architecture description (paper §4.1, Fig. 6).
//
// A tile unrolls (C, K, H, Wo): each of the K*H*Wo IPUs takes C products per
// cycle; the K dimension maps output channels, H/Wo are spatial output
// copies sharing weights (weight-stationary).  IPUs are grouped into
// clusters with private input/output buffers (§3.3): the activation bank
// broadcasts one input vector per cycle to every cluster's input buffer and
// stalls when any buffer is full.
#pragma once

#include <cassert>
#include <string>

#include "common/bits.h"
#include "core/datapath.h"

namespace mpipu {

struct TileConfig {
  std::string name = "big";
  int c_unroll = 16;  ///< products per IPU (n_inputs)
  int k_unroll = 16;  ///< output channels per tile
  int h_unroll = 2;   ///< spatial output rows computed in parallel
  int w_unroll = 2;   ///< spatial output cols computed in parallel
  int num_tiles = 4;
  /// IPUs per cluster; k_unroll * h_unroll * w_unroll means one cluster per
  /// tile (i.e. no clustering, the NO-OPT behaviour).
  int ipus_per_cluster = 64;
  /// Ops each cluster's private input buffer can hold (§3.3).
  int input_buffer_depth = 8;
  /// Unified datapath parameters of every IPU in the tile (any
  /// decomposition scheme; the paper's tiles are temporal).
  DatapathConfig datapath{};

  int ipus_per_tile() const { return k_unroll * h_unroll * w_unroll; }
  /// NOTE: callers must ensure ipus_per_cluster divides ipus_per_tile()
  /// (validate() is the Release-mode gate -- this assert vanishes under
  /// NDEBUG and integer division would otherwise silently simulate fewer
  /// IPUs than configured).
  int num_clusters() const {
    assert(ipus_per_tile() % ipus_per_cluster == 0);
    return ipus_per_tile() / ipus_per_cluster;
  }
  int multipliers_per_tile() const { return c_unroll * ipus_per_tile(); }
  int total_multipliers() const { return multipliers_per_tile() * num_tiles; }

  /// Reject an inconsistent tile in EVERY build mode (the asserts above are
  /// debug-only): throws std::invalid_argument on non-positive unrolls /
  /// tile count / buffer depth, and -- the historical silent-truncation bug
  /// -- on an ipus_per_cluster that does not divide ipus_per_tile().
  /// simulate_network calls this on entry, so Session::estimate and
  /// CompiledModel::estimate surface the error like the existing c_unroll
  /// mismatch rejection.
  void validate() const;
};

/// The paper's small tile: (8, 8, 2, 2), four tiles.
TileConfig small_tile(int adder_tree_width, int software_precision,
                      int ipus_per_cluster = 32);
/// The paper's big tile: (16, 16, 2, 2), four tiles.
TileConfig big_tile(int adder_tree_width, int software_precision,
                    int ipus_per_cluster = 64);

/// Baseline1 / Baseline2 (§4.1): 38-bit adder trees, single cycle per nibble
/// iteration, no clustering.  (1 TOPS / 113 GFLOPS and 4 TOPS / 455 GFLOPS
/// at 1 GHz.)
TileConfig baseline1();
TileConfig baseline2();

}  // namespace mpipu
