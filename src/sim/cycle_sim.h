// Cycle-accurate convolution-tile simulator (paper §4.1).
//
// Models, for each convolution layer, the stream of broadcast operations a
// weight-stationary tile executes and the per-IPU alignment cycles they
// cost.  Three architectural effects determine the cycle count:
//
//   1. nibble iterations: 9 per FP16 inner product (3x3 nibble pairs);
//   2. MC-IPU multi-cycling: a nibble iteration costs floor(d_max/sp) + 1
//      cycles, where d_max is the op's largest unmasked alignment on that
//      IPU (§3.2);
//   3. clustering: IPUs in a cluster proceed in lockstep (an op's service
//      time is the max over the cluster), clusters proceed independently
//      behind private input buffers, and the broadcaster stalls when any
//      cluster's buffer is full (§3.3).
//
// Operand exponents are drawn from the layer's tensor distributions
// (activations shared by all IPUs of a spatial copy; weights independent
// per output channel), reproducing the correlation structure that makes
// clustering effective.  The simulator samples a bounded number of
// broadcast steps per layer and scales to the layer's full op count --
// the same sampling strategy the paper uses (5% tensor samples).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/error_metrics.h"
#include "common/rng.h"
#include "sim/tile.h"
#include "workload/distributions.h"
#include "workload/networks.h"

namespace mpipu {

struct SimOptions {
  /// Broadcast steps sampled per layer (scaled up to the true step count).
  int sampled_steps = 1500;
  /// Exponent pool size per distribution.
  int exponent_pool = 1 << 15;
  uint64_t seed = 0xC0FFEE;

  /// The one derivation point for the per-op base step count: the tile's
  /// decomposition scheme fixes it (9 nibble iterations temporal, 12 bit
  /// steps serial, 1 spatial).  The deprecated `iterations_per_op` override
  /// this method folded in (PR 2) has been removed.
  int effective_iterations_per_op(DecompositionScheme scheme) const {
    return fp16_iterations_per_op(scheme);
  }
};

struct LayerSimResult {
  std::string layer;
  int64_t total_steps = 0;      ///< broadcast ops per tile for this layer
  double cycles_per_step = 0.0; ///< simulated steady-state service rate
  double total_cycles = 0.0;    ///< cycles_per_step * total_steps (per tile)
  double avg_iteration_cycles = 0.0;  ///< mean cycles per nibble iteration
  double stall_fraction = 0.0;  ///< fraction of broadcast issue slots stalled
};

struct NetworkSimResult {
  std::string network;
  std::string tile;
  std::vector<LayerSimResult> layers;
  double total_cycles = 0.0;

  /// Execution time normalized to a baseline run of the same network.
  double normalized_to(const NetworkSimResult& base) const {
    return total_cycles / base.total_cycles;
  }
};

/// Number of broadcast steps one tile executes for a layer (weight
/// stationary mapping; utilization losses from cin < C or cout < K are
/// modeled by ceil()).
int64_t layer_broadcast_steps(const ConvLayer& layer, const TileConfig& tile);

/// Simulate one network on one tile configuration.
NetworkSimResult simulate_network(const Network& net, const TileConfig& tile,
                                  const SimOptions& opts = {});

/// Collect the distribution of product alignments (exponent differences)
/// for a network on n-input IPUs -- reproduces Fig. 9.
IntHistogram alignment_histogram(const Network& net, int n_inputs,
                                 int samples_per_layer = 4000,
                                 uint64_t seed = 0xFEED);

}  // namespace mpipu
