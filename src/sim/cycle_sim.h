// Cycle-accurate convolution-tile simulator (paper §4.1).
//
// Models, for each convolution layer, the stream of broadcast operations a
// weight-stationary tile executes and the per-IPU alignment cycles they
// cost.  Three architectural effects determine the cycle count:
//
//   1. nibble iterations: 9 per FP16 inner product (3x3 nibble pairs);
//   2. MC-IPU multi-cycling: a nibble iteration costs floor(d_max/sp) + 1
//      cycles, where d_max is the op's largest unmasked alignment on that
//      IPU (§3.2);
//   3. clustering: IPUs in a cluster proceed in lockstep (an op's service
//      time is the max over the cluster), clusters proceed independently
//      behind private input buffers, and the broadcaster stalls when any
//      cluster's buffer is full (§3.3).
//
// Operand exponents are drawn from the layer's tensor distributions
// (activations shared by all IPUs of a spatial copy; weights independent
// per output channel), reproducing the correlation structure that makes
// clustering effective.  The simulator samples a bounded number of
// broadcast steps per layer and scales to the layer's full op count --
// the same sampling strategy the paper uses (5% tensor samples).
//
// Multi-tile: every layer is partitioned across tile.num_tiles tiles
// (sim/partition.h -- by output channel or by spatial rows), each tile's
// broadcast stream is simulated, and the layer reports per-tile cycles /
// utilization plus the load imbalance; the layer's total_cycles is the
// critical (slowest) tile's -- tiles run concurrently.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/error_metrics.h"
#include "common/rng.h"
#include "sim/partition.h"
#include "sim/tile.h"
#include "workload/distributions.h"
#include "workload/networks.h"

namespace mpipu {

struct SimOptions {
  /// Broadcast steps sampled per layer (scaled up to the true step count).
  /// Must be >= 1; simulate_network rejects anything else.
  int sampled_steps = 1500;
  // NOTE: an `exponent_pool` knob (a pool of pre-drawn exponents per
  // distribution) lived here through PR 9 but was never read anywhere: the
  // simulator draws jitters directly per sampled step (see
  // simulate_network).  Removed rather than wired up -- pinned by
  // SimOptionsTest.ExponentPoolKnobStaysRemoved so it cannot silently
  // reappear unread.
  uint64_t seed = 0xC0FFEE;

  /// The one derivation point for the per-op base step count: the tile's
  /// decomposition scheme fixes it (9 nibble iterations temporal, 12 bit
  /// steps serial, 1 spatial).  The deprecated `iterations_per_op` override
  /// this method folded in (PR 2) has been removed.
  int effective_iterations_per_op(DecompositionScheme scheme) const {
    return fp16_iterations_per_op(scheme);
  }
};

/// One tile's share of one layer under the active partition.
struct TileSimResult {
  int tile = 0;
  int64_t steps = 0;        ///< broadcast ops this tile executes (x repeat)
  double cycles = 0.0;      ///< simulated cycles for this tile's stream
  /// cycles / critical-tile cycles: 1.0 for the critical tile, 0.0 for an
  /// idle tile (layers run tile-synchronously, so a faster tile waits).
  double utilization = 0.0;
};

struct LayerSimResult {
  std::string layer;
  int64_t total_steps = 0;      ///< critical tile's broadcast ops
  double cycles_per_step = 0.0; ///< critical tile's steady-state rate
  double total_cycles = 0.0;    ///< critical tile's cycles (tiles run
                                ///< concurrently; the slowest gates the layer)
  double avg_iteration_cycles = 0.0;  ///< mean cycles per nibble iteration
  double stall_fraction = 0.0;  ///< fraction of broadcast issue slots stalled
  /// Per-tile breakdown under the active partition (tile.num_tiles entries).
  std::vector<TileSimResult> tiles;
  /// max tile cycles / mean tile cycles - 1 over ALL tiles (idle tiles
  /// included): 0 when perfectly balanced, e.g. evenly divisible couts
  /// under kOutputChannel.
  double imbalance = 0.0;
  int critical_tile = 0;  ///< index of the slowest tile
};

struct NetworkSimResult {
  std::string network;
  std::string tile;
  std::string partition;  ///< partition_kind_name of the active partition
  int num_tiles = 1;
  std::vector<LayerSimResult> layers;
  double total_cycles = 0.0;
  /// Cycle-weighted mean of per-tile utilization over layers: 1.0 means
  /// every tile busy whenever any tile is (perfect balance).
  double mean_tile_utilization = 0.0;

  /// Execution time normalized to a baseline run of the same network.
  double normalized_to(const NetworkSimResult& base) const {
    return total_cycles / base.total_cycles;
  }
};

/// Broadcast steps of the CRITICAL tile for a layer under the default
/// output-channel partition (the largest shard holds ceil(cout/num_tiles)
/// channels); utilization losses from cin < C or cout < K are modeled by
/// ceil().  Per-shard counts come from tile_broadcast_steps
/// (sim/partition.h), which this wraps.
int64_t layer_broadcast_steps(const ConvLayer& layer, const TileConfig& tile);

/// Simulate one network on one tile configuration, partitioned across the
/// tile count per `partition`.  Throws std::invalid_argument on an
/// inconsistent tile (TileConfig::validate -- notably an ipus_per_cluster
/// that does not divide ipus_per_tile) or opts.sampled_steps < 1.
NetworkSimResult simulate_network(const Network& net, const TileConfig& tile,
                                  const SimOptions& opts = {},
                                  const PartitionSpec& partition = {});

/// Collect the distribution of product alignments (exponent differences)
/// for a network on n-input IPUs -- reproduces Fig. 9.
IntHistogram alignment_histogram(const Network& net, int n_inputs,
                                 int samples_per_layer = 4000,
                                 uint64_t seed = 0xFEED);

}  // namespace mpipu
