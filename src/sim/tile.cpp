#include "sim/tile.h"

namespace mpipu {
namespace {

TileConfig make_tile(std::string name, int c, int k, int w, int precision,
                     int cluster) {
  TileConfig t;
  t.name = std::move(name);
  t.c_unroll = c;
  t.k_unroll = k;
  t.ipus_per_cluster = cluster;
  t.datapath.n_inputs = c;
  t.datapath.adder_tree_width = w;
  t.datapath.software_precision = precision;
  t.datapath.multi_cycle = w < precision + 10;  // single cycle once the window
                                                // covers every unmasked shift
  // §3.2 partitions: only occupied alignment bands cost cycles.
  t.datapath.skip_empty_bands = true;
  t.datapath.accumulator.t = ceil_log2(c);
  return t;
}

}  // namespace

TileConfig small_tile(int adder_tree_width, int software_precision, int ipus_per_cluster) {
  return make_tile("small", 8, 8, adder_tree_width, software_precision,
                   ipus_per_cluster);
}

TileConfig big_tile(int adder_tree_width, int software_precision, int ipus_per_cluster) {
  return make_tile("big", 16, 16, adder_tree_width, software_precision,
                   ipus_per_cluster);
}

TileConfig baseline1() {
  TileConfig t = small_tile(38, 28, 32);
  t.name = "baseline1";
  t.datapath.multi_cycle = false;
  return t;
}

TileConfig baseline2() {
  TileConfig t = big_tile(38, 28, 64);
  t.name = "baseline2";
  t.datapath.multi_cycle = false;
  return t;
}

}  // namespace mpipu
